#include "cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fluxfp::lint {

namespace {

/// Bump whenever a rule's behavior or the cached format changes: stale
/// results must miss, not deserialize into wrong output.
constexpr const char* kCacheHeader = "fluxfp-lint-cache v1 rules-10";

void fnv_bytes(std::uint64_t& h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  // Length terminator so {"ab","c"} and {"a","bc"} hash differently.
  h ^= 0xFFu;
  h *= 1099511628211ULL;
}

void fnv_int(std::uint64_t& h, long long v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<unsigned char>(v >> (i * 8));
    h *= 1099511628211ULL;
  }
}

}  // namespace

std::uint64_t fnv1a(const std::string& bytes, std::uint64_t seed) {
  std::uint64_t h = seed == 0 ? 1469598103934665603ULL : seed;
  fnv_bytes(h, bytes);
  return h;
}

std::uint64_t file_content_key(const LexedFile& file) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Token& t : file.tokens) {
    fnv_int(h, static_cast<int>(t.kind));
    fnv_bytes(h, t.text);
    fnv_int(h, t.line);
  }
  for (const auto& [line, rules] : file.allows) {
    fnv_int(h, line);
    for (const std::string& r : rules) {
      fnv_bytes(h, r);
    }
  }
  return h;
}

std::uint64_t context_digest(const GlobalCtx& ctx) {
  std::uint64_t h = 1469598103934665603ULL;
  fnv_bytes(h, kCacheHeader);
  for (const std::string& n : ctx.unordered_names) {
    fnv_bytes(h, n);
  }
  for (const auto& [name, model] : ctx.classes) {
    fnv_bytes(h, name);
    for (const std::string& m : model.mutexes) {
      fnv_bytes(h, m);
    }
    for (const auto& [member, mutex] : model.guarded) {
      fnv_bytes(h, member);
      fnv_bytes(h, mutex);
    }
    // Atomic declaration *sites* are excluded: a line shift in the
    // declaring file already changes that file's own content key, and
    // no other file's findings depend on the position.
    for (const auto& [member, site] : model.atomics) {
      fnv_bytes(h, member);
    }
    for (const std::string& m : model.members) {
      fnv_bytes(h, m);
    }
  }
  for (const auto& [fn, mutexes] : ctx.fn_requires) {
    fnv_bytes(h, fn);
    for (const std::string& m : mutexes) {
      fnv_bytes(h, m);
    }
  }
  return h;
}

bool LintCache::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string line;
  if (!std::getline(in, line) || line != kCacheHeader) {
    return false;
  }
  while (std::getline(in, line)) {
    // Entry header: "E <hex-key>".
    if (line.size() < 3 || line[0] != 'E' || line[1] != ' ') {
      return false;  // corrupt tail: keep what parsed so far
    }
    std::uint64_t key = 0;
    try {
      key = std::stoull(line.substr(2), nullptr, 16);
    } catch (...) {
      return false;
    }
    CachedFileResult result;
    bool closed = false;
    while (std::getline(in, line)) {
      if (line == ".") {
        closed = true;
        break;
      }
      if (line.size() >= 2 && line[0] == 'V' && line[1] == ' ') {
        // "V <line> <rule> <message...>"
        std::istringstream ss(line.substr(2));
        CachedFileResult::Finding fnd;
        if (!(ss >> fnd.line >> fnd.rule)) {
          return false;
        }
        std::getline(ss, fnd.message);
        if (!fnd.message.empty() && fnd.message.front() == ' ') {
          fnd.message.erase(0, 1);
        }
        result.findings.push_back(std::move(fnd));
      } else if (line.size() >= 2 && line[0] == 'S' && line[1] == ' ') {
        // "S <count> <rule>"
        std::istringstream ss(line.substr(2));
        int count = 0;
        std::string rule;
        if (!(ss >> count >> rule)) {
          return false;
        }
        result.used[rule] = count;
      } else {
        return false;
      }
    }
    if (!closed) {
      return false;  // truncated entry: drop it
    }
    entries_[key] = std::move(result);
  }
  return true;
}

bool LintCache::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << kCacheHeader << '\n';
    for (const auto& [key, result] : entries_) {
      char keybuf[32];
      std::snprintf(keybuf, sizeof(keybuf), "%016llx",
                    static_cast<unsigned long long>(key));
      out << "E " << keybuf << '\n';
      for (const auto& fnd : result.findings) {
        out << "V " << fnd.line << ' ' << fnd.rule << ' ' << fnd.message
            << '\n';
      }
      for (const auto& [rule, count] : result.used) {
        out << "S " << count << ' ' << rule << '\n';
      }
      out << ".\n";
    }
    if (!out) {
      return false;
    }
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

const CachedFileResult* LintCache::lookup(std::uint64_t key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void LintCache::store(std::uint64_t key, CachedFileResult result) {
  entries_[key] = std::move(result);
}

}  // namespace fluxfp::lint
