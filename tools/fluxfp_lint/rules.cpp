#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>

namespace fluxfp::lint {

namespace {

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is_header(const std::string& path) {
  return path.size() > 4 && (path.rfind(".hpp") == path.size() - 4 ||
                             path.rfind(".h") == path.size() - 2);
}

/// Directories where merge/iteration order is result-bearing: the numeric
/// engine, the streaming runtime, the trackers, and everything that emits
/// committed artifacts (eval tables, trace files). src/obs/ qualifies too:
/// metric exports are part of the bit-identical-replay guarantee, so their
/// iteration order must never depend on an unordered container. (obs is
/// deliberately NOT raw-thread-sanctioned — it observes workers, it does
/// not own any.)
bool order_sensitive_dir(const std::string& path) {
  return starts_with(path, "src/numeric/") || starts_with(path, "src/stream/") ||
         starts_with(path, "src/core/") || starts_with(path, "src/eval/") ||
         starts_with(path, "src/trace/") || starts_with(path, "src/obs/") ||
         starts_with(path, "src/netio/") ||
         // Observation-model site layers: link enumeration defines the
         // stable site keys of the RSS backend, and detection sampling's
         // draw order is part of the replay contract.
         starts_with(path, "src/net/links") ||
         starts_with(path, "src/sim/detection");
}

/// The only places allowed to own raw threads: the pool itself, the
/// streaming runtime's sharded workers, and the network service's
/// accept/connection threads.
bool raw_thread_sanctioned(const std::string& path) {
  return starts_with(path, "src/stream/") ||
         starts_with(path, "src/netio/") ||
         path.find("src/numeric/parallel") != std::string::npos;
}

/// The only home for raw socket syscalls: the netio transport layer.
/// Everything else talks to the service through netio::Socket / Listener /
/// Client, so fd lifetimes, EINTR handling, and SIGPIPE suppression are
/// audited in one place.
bool sockets_sanctioned(const std::string& path) {
  return starts_with(path, "src/netio/");
}

/// The only home for architecture-specific vector code: the SIMD kernel
/// layer. Everything else must call the portable kernels in
/// numeric/simd/kernels.hpp, so one TU carries the arch flags and the
/// scalar/vector numeric contract stays auditable in one place.
bool intrinsics_sanctioned(const std::string& path) {
  return starts_with(path, "src/numeric/simd/");
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Index of the matching closer for the opener at `open`, or tokens.size().
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], open_text)) {
      ++depth;
    } else if (is_punct(toks[i], close_text)) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

/// Skips a balanced template-argument list starting at the `<` at `i`.
/// `>>` counts as two closers. Returns the index just past the closing `>`.
std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "<")) {
      ++depth;
    } else if (is_punct(t, ">")) {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (is_punct(t, ">>")) {
      depth -= 2;
      if (depth <= 0) {
        return i + 1;
      }
    } else if (is_punct(t, ";") || is_punct(t, "{")) {
      break;  // malformed; give up on this site
    }
  }
  return toks.size();
}

bool is_unordered_container(const Token& t) {
  return t.kind == TokKind::kIdent &&
         (t.text == "unordered_map" || t.text == "unordered_set" ||
          t.text == "unordered_multimap" || t.text == "unordered_multiset");
}

/// NaN sentinel spellings: the project constant, any k*Missing* sibling a
/// future module might add, and the raw quiet_NaN it wraps.
bool is_nan_sentinel(const Token& t) {
  if (t.kind != TokKind::kIdent) {
    return false;
  }
  if (t.text == "kMissingReading" || t.text == "quiet_NaN") {
    return true;
  }
  return t.text.size() > 1 && t.text[0] == 'k' &&
         t.text.find("Missing") != std::string::npos;
}

// ---------------------------------------------------------------------------
// Reporting with suppression accounting
// ---------------------------------------------------------------------------

struct Reporter {
  const LexedFile& file;
  std::vector<Violation>& out;
  SuppressionTally& used;

  void report(int line, const std::string& rule, std::string message) {
    auto it = file.allows.find(line);
    if (it != file.allows.end() &&
        (it->second.count(rule) || it->second.count("all"))) {
      ++used[rule];
      return;
    }
    out.push_back(Violation{file.path, line, rule, std::move(message)});
  }
};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// no-nan-compare: kMissingReading is a NaN — `x == kMissingReading` is
/// always false and silently breaks the missing-reading protocol. Require
/// net::is_missing().
void rule_no_nan_compare(const LexedFile& f, Reporter& r) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_punct(toks[i], "==") && !is_punct(toks[i], "!=")) {
      continue;
    }
    // Asymmetric window: `== std::numeric_limits<double>::quiet_NaN()` puts
    // the sentinel 8 tokens to the right of the operator.
    const std::size_t lo = i >= 6 ? i - 6 : 0;
    const std::size_t hi = std::min(toks.size(), i + 11);
    for (std::size_t j = lo; j < hi; ++j) {
      if (j != i && toks[j].line == toks[i].line && is_nan_sentinel(toks[j])) {
        r.report(toks[i].line, "no-nan-compare",
                 "'" + toks[i].text + "' against NaN sentinel '" +
                     toks[j].text +
                     "' is always " +
                     (toks[i].text == "==" ? std::string("false")
                                           : std::string("true")) +
                     "; use net::is_missing()");
        break;
      }
    }
  }
}

/// no-nondeterminism: entropy and ordering sources that break the
/// bit-identical-at-any-thread-count contract. RNG/clock/thread-id bans
/// apply everywhere; the unordered range-for ban applies where iteration
/// order is result-bearing.
void rule_no_nondeterminism(const LexedFile& f, const GlobalCtx& ctx,
                            Reporter& r) {
  const auto& toks = f.tokens;
  const char* kRule = "no-nondeterminism";
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_ident(t, "random_device")) {
      r.report(t.line, kRule,
               "std::random_device is a fresh entropy source; derive seeds "
               "deterministically (eval::derive_seed) instead");
      continue;
    }
    if ((is_ident(t, "rand") || is_ident(t, "srand")) &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        (i == 0 || (!is_punct(toks[i - 1], ".") &&
                    !is_punct(toks[i - 1], "->")))) {
      r.report(t.line, kRule,
               t.text + "() uses hidden global state; use a seeded geom::Rng");
      continue;
    }
    if (is_ident(t, "time") && i + 2 < toks.size() &&
        is_punct(toks[i + 1], "(") &&
        (is_ident(toks[i + 2], "nullptr") || is_ident(toks[i + 2], "NULL") ||
         (toks[i + 2].kind == TokKind::kNumber && toks[i + 2].text == "0")) &&
        (i == 0 || (!is_punct(toks[i - 1], ".") &&
                    !is_punct(toks[i - 1], "->")))) {
      r.report(t.line, kRule,
               "wall-clock seeding makes runs irreproducible; thread a seed "
               "through instead");
      continue;
    }
    if (is_ident(t, "this_thread") && i + 2 < toks.size() &&
        is_punct(toks[i + 1], "::") && is_ident(toks[i + 2], "get_id")) {
      r.report(t.line, kRule,
               "thread-id-keyed logic varies run to run; key work by index, "
               "never by worker identity");
      continue;
    }
  }

  if (!order_sensitive_dir(f.path)) {
    return;
  }
  // Range-for over a name declared anywhere as an unordered container:
  // bucket order is unspecified, so any fold over it is order-dependent.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == toks.size()) {
      continue;
    }
    // Find the top-level ':' separating declaration from range expression.
    std::size_t colon = toks.size();
    int depth = 0;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (is_punct(toks[j], "(") || is_punct(toks[j], "[") ||
          is_punct(toks[j], "{")) {
        ++depth;
      } else if (is_punct(toks[j], ")") || is_punct(toks[j], "]") ||
                 is_punct(toks[j], "}")) {
        --depth;
      } else if (depth == 0 && is_punct(toks[j], ":")) {
        colon = j;
        break;
      } else if (depth == 0 && is_punct(toks[j], ";")) {
        break;  // classic for loop
      }
    }
    if (colon == toks.size()) {
      continue;
    }
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind == TokKind::kIdent &&
          ctx.unordered_names.count(toks[j].text)) {
        r.report(toks[i].line, "no-nondeterminism",
                 "range-for over unordered container '" + toks[j].text +
                     "': iteration order is unspecified and this path is "
                     "result-bearing; iterate sorted keys or index order");
        break;
      }
    }
  }
}

/// no-raw-thread: every parallel construct outside the pool and the stream
/// runtime must go through numeric::parallel_for, or determinism and the
/// single-external-caller pool protocol cannot be audited.
void rule_no_raw_thread(const LexedFile& f, Reporter& r) {
  if (raw_thread_sanctioned(f.path)) {
    return;
  }
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (is_ident(toks[i], "pthread_create")) {
      r.report(toks[i].line, "no-raw-thread",
               "pthread_create bypasses the parallel engine; use "
               "numeric::parallel_for");
      continue;
    }
    if (!is_ident(toks[i], "std") || !is_punct(toks[i + 1], "::")) {
      continue;
    }
    const Token& what = toks[i + 2];
    if (is_ident(what, "async") || is_ident(what, "jthread") ||
        (is_ident(what, "thread") &&
         // std::thread::hardware_concurrency() etc. is a query, not a spawn.
         (i + 3 >= toks.size() || !is_punct(toks[i + 3], "::")))) {
      r.report(what.line, "no-raw-thread",
               "raw std::" + what.text +
                   " outside src/numeric/parallel*, src/stream/, and "
                   "src/netio/; use numeric::parallel_for (or justify with "
                   "an inline allow)");
    }
  }
}

/// pool-serial-guard: a body handed to a raw thread that then calls
/// pool-reentrant code (tracker steps, parallel_for) must hold a
/// numeric::SerialRegionGuard — the shared pool admits one external caller.
void rule_pool_serial_guard(const LexedFile& f, Reporter& r) {
  if (f.path.find("src/numeric/parallel") != std::string::npos) {
    return;  // the pool implements the protocol it enforces
  }
  const auto& toks = f.tokens;

  const std::set<std::string> reentrant = {
      "parallel_for", "parallel_for_ranges", "on_event",
      "evaluate_batch", "step", "flush", "reseed"};
  // `keyword (` is control flow, not a call or a definition.
  const std::set<std::string> keywords = {
      "for", "while", "if", "switch", "return", "catch",
      "sizeof", "alignof", "decltype", "static_cast", "assert"};

  // Collect [start, end) token ranges of same-file function definitions so
  // lambda bodies can be expanded one call level deep.
  struct Def {
    std::string name;
    std::size_t begin, end;
  };
  std::vector<Def> defs;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !is_punct(toks[i + 1], "(") ||
        keywords.count(toks[i].text)) {
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == toks.size()) {
      continue;
    }
    // Definition if '{' follows within a few specifier tokens.
    std::size_t j = close + 1;
    std::size_t budget = 4;
    while (j < toks.size() && budget > 0 &&
           (is_ident(toks[j], "const") || is_ident(toks[j], "noexcept") ||
            is_ident(toks[j], "override") || is_ident(toks[j], "final") ||
            is_punct(toks[j], "->") || toks[j].kind == TokKind::kIdent ||
            is_punct(toks[j], "::"))) {
      if (is_punct(toks[j], "{")) {
        break;
      }
      ++j;
      --budget;
    }
    if (j < toks.size() && is_punct(toks[j], "{")) {
      const std::size_t bend = match_forward(toks, j, "{", "}");
      defs.push_back(Def{toks[i].text, j, bend});
    }
  }

  auto scan_range = [&](std::size_t begin, std::size_t end, bool& guarded,
                        bool& reenters, std::vector<std::string>& calls) {
    for (std::size_t j = begin; j < end && j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kIdent) {
        continue;
      }
      if (toks[j].text == "SerialRegionGuard") {
        guarded = true;
      }
      if (j + 1 < toks.size() && is_punct(toks[j + 1], "(") &&
          !keywords.count(toks[j].text)) {
        if (reentrant.count(toks[j].text)) {
          reenters = true;
        }
        calls.push_back(toks[j].text);
      }
    }
  };

  for (std::size_t i = 1; i < toks.size(); ++i) {
    if (!is_punct(toks[i], "[")) {
      continue;
    }
    // Lambda in a thread-launch argument position? Look back for an
    // identifier mentioning thread/async (std::thread ctor,
    // threads_.emplace_back, std::async, ...).
    if (!is_punct(toks[i - 1], "(") && !is_punct(toks[i - 1], ",")) {
      continue;
    }
    bool launch_ctx = false;
    const std::size_t lb = i >= 8 ? i - 8 : 0;
    for (std::size_t j = lb; j < i; ++j) {
      if (toks[j].kind == TokKind::kIdent) {
        const std::string l = lower(toks[j].text);
        if (l.find("thread") != std::string::npos || l == "async") {
          launch_ctx = true;
          break;
        }
      }
    }
    if (!launch_ctx) {
      continue;
    }
    // Parse the lambda: capture list, optional params, body.
    const std::size_t cap_end = match_forward(toks, i, "[", "]");
    if (cap_end == toks.size()) {
      continue;
    }
    std::size_t j = cap_end + 1;
    if (j < toks.size() && is_punct(toks[j], "(")) {
      j = match_forward(toks, j, "(", ")") + 1;
    }
    while (j < toks.size() && !is_punct(toks[j], "{") &&
           !is_punct(toks[j], ";") && !is_punct(toks[j], ")")) {
      ++j;  // mutable / noexcept / -> ret
    }
    if (j >= toks.size() || !is_punct(toks[j], "{")) {
      continue;
    }
    const std::size_t body_end = match_forward(toks, j, "{", "}");

    bool guarded = false;
    bool reenters = false;
    std::vector<std::string> calls;
    scan_range(j, body_end, guarded, reenters, calls);
    // One level of same-file call expansion (worker_loop pattern).
    for (const std::string& name : calls) {
      for (const Def& d : defs) {
        if (d.name == name) {
          std::vector<std::string> ignored;
          scan_range(d.begin, d.end, guarded, reenters, ignored);
        }
      }
    }
    if (reenters && !guarded) {
      r.report(toks[i].line, "pool-serial-guard",
               "worker-thread body calls pool-reentrant code without "
               "numeric::SerialRegionGuard; the shared pool admits one "
               "external caller at a time");
    }
  }
}

/// no-raw-intrinsics: SIMD intrinsics headers and identifiers are confined
/// to src/numeric/simd/. A stray _mm256_* in a localizer would be compiled
/// without the kernel TU's arch flags and -ffp-contract=off, silently
/// breaking both portability and the element-wise bit-exactness contract.
void rule_no_raw_intrinsics(const LexedFile& f, Reporter& r) {
  if (intrinsics_sanctioned(f.path)) {
    return;
  }
  const char* kRule = "no-raw-intrinsics";
  static const char* const kHeaders[] = {
      "immintrin", "emmintrin", "xmmintrin", "pmmintrin", "tmmintrin",
      "smmintrin", "nmmintrin", "wmmintrin", "x86intrin", "x86gprintrin",
      "arm_neon",  "arm_sve"};
  static const char* const kIdentPrefixes[] = {
      "_mm",     "__m128", "__m256", "__m512", "__builtin_ia32",
      "vld1q_",  "vst1q_", "vaddq_", "vsubq_", "vmulq_",
      "vdivq_",  "vminq_", "vmaxq_", "vsqrtq_", "vdupq_",
      "vbslq_",  "vceqq_", "vcltq_", "vcgtq_", "vnegq_"};
  static const char* const kIdentExact[] = {
      "float64x2_t", "float32x4_t", "uint64x2_t", "uint32x4_t", "int64x2_t"};
  int last_line = -1;  // one finding per source line, not per token
  for (const Token& t : f.tokens) {
    if (t.line == last_line) {
      continue;
    }
    if (t.kind == TokKind::kPreproc &&
        t.text.find("include") != std::string::npos) {
      for (const char* header : kHeaders) {
        if (t.text.find(header) != std::string::npos) {
          r.report(t.line, kRule,
                   std::string("intrinsics header <") + header +
                       ".h> outside src/numeric/simd/; call the portable "
                       "kernels in numeric/simd/kernels.hpp instead");
          last_line = t.line;
          break;
        }
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) {
      continue;
    }
    bool hit = false;
    for (const char* prefix : kIdentPrefixes) {
      if (starts_with(t.text, prefix)) {
        hit = true;
        break;
      }
    }
    if (!hit) {
      for (const char* exact : kIdentExact) {
        if (t.text == exact) {
          hit = true;
          break;
        }
      }
    }
    if (hit) {
      r.report(t.line, kRule,
               "raw SIMD intrinsic '" + t.text +
                   "' outside src/numeric/simd/; extend the kernel layer "
                   "instead of inlining architecture-specific code");
      last_line = t.line;
    }
  }
}

/// no-raw-sockets: BSD socket headers and syscalls are confined to
/// src/netio/. A stray ::connect() elsewhere would dodge the Socket
/// wrapper's EINTR retries and MSG_NOSIGNAL discipline, and network I/O
/// would no longer be auditable in one directory. Member calls
/// (`client.connect(...)`) and class-qualified names (`Client::connect`)
/// are fine — only free/global-scope calls of the syscall names count.
void rule_no_raw_sockets(const LexedFile& f, Reporter& r) {
  if (sockets_sanctioned(f.path)) {
    return;
  }
  const char* kRule = "no-raw-sockets";
  static const char* const kHeaders[] = {"sys/socket", "sys/un", "netinet/",
                                         "arpa/inet", "netdb"};
  static const std::set<std::string> kCalls = {
      "socket",      "bind",        "listen",      "accept",
      "accept4",     "connect",     "recv",        "send",
      "recvfrom",    "sendto",      "recvmsg",     "sendmsg",
      "setsockopt",  "getsockopt",  "getsockname", "getpeername",
      "shutdown",    "inet_pton",   "inet_ntop",   "getaddrinfo",
      "freeaddrinfo"};
  const auto& toks = f.tokens;
  int last_line = -1;  // one finding per source line, not per token
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.line == last_line) {
      continue;
    }
    if (t.kind == TokKind::kPreproc &&
        t.text.find("include") != std::string::npos) {
      for (const char* header : kHeaders) {
        if (t.text.find(header) != std::string::npos) {
          r.report(t.line, kRule,
                   std::string("socket header (") + header +
                       ") outside src/netio/; route network I/O through "
                       "netio::Socket/Listener");
          last_line = t.line;
          break;
        }
      }
      continue;
    }
    if (t.kind != TokKind::kIdent || !kCalls.count(t.text)) {
      continue;
    }
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) {
      continue;
    }
    if (i > 0) {
      const Token& prev = toks[i - 1];
      if (is_punct(prev, ".") || is_punct(prev, "->")) {
        continue;  // member call on a wrapper object
      }
      if (is_punct(prev, "::") && i >= 2 &&
          toks[i - 2].kind == TokKind::kIdent) {
        continue;  // class/namespace-qualified (std::bind, Client::connect)
      }
      // `int listen(` / `vector<int> accept(` / `char* recv(` are
      // declarations, not calls: a call is never preceded by a bare
      // identifier (two adjacent identifiers form a declaration) except
      // after statement keywords.
      static const std::set<std::string> kCallKeywords = {
          "return", "else", "do", "throw", "case", "co_return", "co_await",
          "co_yield"};
      if (prev.kind == TokKind::kIdent && !kCallKeywords.count(prev.text)) {
        continue;
      }
      if (is_punct(prev, "*") || is_punct(prev, "&") || is_punct(prev, ">")) {
        continue;  // pointer/ref/template return type of a declaration
      }
    }
    r.report(t.line, kRule,
             "raw socket call '" + t.text +
                 "' outside src/netio/; route network I/O through "
                 "netio::Socket/Listener");
    last_line = t.line;
  }
}

/// include-hygiene: headers must open with #pragma once and must not leak
/// `using namespace` into includers. (Self-containment is compile-checked
/// by the generated lint_include_hygiene target.)
void rule_include_hygiene(const LexedFile& f, Reporter& r) {
  if (!is_header(f.path)) {
    return;
  }
  const auto& toks = f.tokens;
  if (toks.empty()) {
    return;
  }
  const Token& first = toks.front();
  const bool pragma_once =
      first.kind == TokKind::kPreproc &&
      first.text.find("pragma") != std::string::npos &&
      first.text.find("once") != std::string::npos;
  if (!pragma_once) {
    r.report(first.line, "include-hygiene",
             "header must start with #pragma once");
  }
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_ident(toks[i], "using") && is_ident(toks[i + 1], "namespace")) {
      r.report(toks[i].line, "include-hygiene",
               "'using namespace' in a header leaks into every includer");
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "no-nan-compare",   "no-nondeterminism", "no-raw-thread",
      "pool-serial-guard", "include-hygiene",  "no-raw-intrinsics",
      "no-raw-sockets",   "guarded-member",    "lock-order",
      "atomics-policy"};
  return kNames;
}

void collect_declarations(const LexedFile& file, GlobalCtx& ctx) {
  // Class concurrency models, FLUXFP_REQUIRES tables, and the per-file
  // suppression tables the global rules need (concurrency.cpp).
  collect_concurrency_decls(file, ctx);

  const auto& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_unordered_container(toks[i])) {
      continue;
    }
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "<")) {
      continue;
    }
    std::size_t j = skip_template_args(toks, i + 1);
    // Skip ref/pointer/const qualifiers between type and name.
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      ctx.unordered_names.insert(toks[j].text);
    }
  }
}

void check_file(const LexedFile& file, const GlobalCtx& ctx,
                std::vector<Violation>& out, SuppressionTally& used) {
  Reporter r{file, out, used};
  rule_no_nan_compare(file, r);
  rule_no_nondeterminism(file, ctx, r);
  rule_no_raw_thread(file, r);
  rule_pool_serial_guard(file, r);
  rule_include_hygiene(file, r);
  rule_no_raw_intrinsics(file, r);
  rule_no_raw_sockets(file, r);
  // guarded-member + atomics-policy (concurrency.cpp); routed through the
  // same Reporter so inline allows and the budget apply uniformly.
  for (Violation& v : concurrency_file_findings(file, ctx)) {
    r.report(v.line, v.rule, std::move(v.message));
  }
}

}  // namespace fluxfp::lint
