#include "lexer.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fluxfp::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators, longest first so max-munch works. `::` in
/// particular must stay one token or every qualified name would split.
const char* kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "==", "!=", "<=", ">=", "&&", "||",
    "<<", ">>", "->", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", ".*",
};

/// Parses `fluxfp-lint: allow(rule-a, rule-b)` out of a comment body.
/// Returns the rules named, empty if the comment is not a suppression.
std::set<std::string> parse_allow(const std::string& comment) {
  std::set<std::string> rules;
  const std::string key = "fluxfp-lint:";
  std::size_t at = comment.find(key);
  if (at == std::string::npos) {
    return rules;
  }
  std::size_t p = at + key.size();
  while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) {
    ++p;
  }
  const std::string verb = "allow(";
  if (comment.compare(p, verb.size(), verb) != 0) {
    return rules;
  }
  p += verb.size();
  const std::size_t close = comment.find(')', p);
  if (close == std::string::npos) {
    return rules;
  }
  std::string name;
  for (std::size_t i = p; i <= close; ++i) {
    const char c = comment[i];
    if (c == ',' || c == ')') {
      if (!name.empty()) {
        rules.insert(name);
      }
      name.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      name += c;
    }
  }
  return rules;
}

}  // namespace

LexedFile lex(const std::string& path, const std::string& text) {
  LexedFile out;
  out.path = path;

  // Lines that carry at least one token; standalone suppression comments
  // are re-targeted to the next such line after the main scan.
  std::set<int> token_lines;
  // (line, rules, had_tokens_before_comment_on_line)
  struct PendingAllow {
    int line;
    std::set<std::string> rules;
    bool trailing;
  };
  std::vector<PendingAllow> pending;

  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;

  auto push = [&](TokKind kind, std::string s) {
    token_lines.insert(line);
    out.tokens.push_back(Token{kind, std::move(s), line});
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && (text[i + 1] == '/' || text[i + 1] == '*')) {
      const int start_line = line;
      const bool trailing = token_lines.count(line) > 0;
      std::string body;
      if (text[i + 1] == '/') {
        i += 2;
        while (i < n && text[i] != '\n') {
          body += text[i++];
        }
      } else {
        i += 2;
        while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
          if (text[i] == '\n') {
            ++line;
          }
          body += text[i++];
        }
        i = (i + 1 < n) ? i + 2 : n;
      }
      std::set<std::string> rules = parse_allow(body);
      if (!rules.empty()) {
        pending.push_back({start_line, std::move(rules), trailing});
      }
      continue;
    }
    // Preprocessor directive: swallow the (possibly continued) line.
    if (c == '#') {
      std::string directive;
      const int start_line = line;
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          i += 2;
          ++line;
          directive += ' ';
          continue;
        }
        if (text[i] == '\n') {
          break;
        }
        // Strip trailing // comment inside the directive.
        if (text[i] == '/' && i + 1 < n && text[i + 1] == '/') {
          while (i < n && text[i] != '\n') {
            ++i;
          }
          break;
        }
        directive += text[i++];
      }
      token_lines.insert(start_line);
      out.tokens.push_back(Token{TokKind::kPreproc, directive, start_line});
      continue;
    }
    // Raw string literal R"delim( ... )delim", with optional encoding
    // prefix (LR, uR, UR, u8R). The delimiter is validated per the
    // grammar (<= 16 chars, no space/paren/backslash/quote); a malformed
    // opener — including `R"` at EOF — falls through to the ordinary
    // ident/string paths instead of crashing or mis-lexing.
    {
      std::size_t r = std::string::npos;  // index of the 'R' in R"
      if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
        r = i;
      } else if (c == 'L' || c == 'u' || c == 'U') {
        std::size_t q = i + 1;
        if (c == 'u' && q < n && text[q] == '8') {
          ++q;
        }
        if (q + 1 < n && text[q] == 'R' && text[q + 1] == '"') {
          r = q;
        }
      }
      if (r != std::string::npos) {
        std::size_t j = r + 2;
        std::string delim;
        bool ok = true;
        while (j < n && text[j] != '(') {
          const char d = text[j];
          if (delim.size() >= 16 || d == ')' || d == '\\' || d == '"' ||
              std::isspace(static_cast<unsigned char>(d))) {
            ok = false;
            break;
          }
          delim += d;
          ++j;
        }
        if (j >= n) {
          ok = false;  // opener never closed with '('
        }
        if (ok) {
          const std::string closer = ")" + delim + "\"";
          const std::size_t end = text.find(closer, j + 1);
          std::string body =
              text.substr(j + 1, end == std::string::npos ? std::string::npos
                                                          : end - j - 1);
          push(TokKind::kString, body);
          for (char b : body) {
            if (b == '\n') {
              ++line;
            }
          }
          i = (end == std::string::npos) ? n : end + closer.size();
          continue;
        }
      }
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::string body;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          if (text[i + 1] == '\n') {
            ++line;  // line splice inside the literal
          }
          body += text[i];
          body += text[i + 1];
          i += 2;
          continue;
        }
        if (text[i] == '\n') {
          // Unterminated literal; bail to keep line counts right.
          break;
        }
        body += text[i++];
      }
      if (i < n && text[i] == quote) {
        ++i;
      }
      push(TokKind::kString, body);
      continue;
    }
    // Identifiers / keywords.
    if (ident_start(c)) {
      std::string s;
      while (i < n && ident_cont(text[i])) {
        s += text[i++];
      }
      push(TokKind::kIdent, s);
      continue;
    }
    // Numbers (incl. hex, digit separators, floats).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::string s;
      while (i < n && (ident_cont(text[i]) || text[i] == '.' ||
                       text[i] == '\'' ||
                       ((text[i] == '+' || text[i] == '-') && !s.empty() &&
                        (s.back() == 'e' || s.back() == 'E' ||
                         s.back() == 'p' || s.back() == 'P')))) {
        s += text[i++];
      }
      push(TokKind::kNumber, s);
      continue;
    }
    // Punctuation, max-munch.
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (text.compare(i, len, p) == 0) {
        push(TokKind::kPunct, p);
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      push(TokKind::kPunct, std::string(1, c));
      ++i;
    }
  }

  // Attach suppressions: trailing comments bind to their own line;
  // standalone comments bind to the next line that has tokens.
  for (PendingAllow& pa : pending) {
    int target = pa.line;
    if (!pa.trailing) {
      auto it = token_lines.upper_bound(pa.line);
      if (it != token_lines.end()) {
        target = *it;
      }
    }
    out.allows[target].insert(pa.rules.begin(), pa.rules.end());
    // A suppression also covers its own line (multi-line statements).
    if (target != pa.line) {
      out.allows[pa.line].insert(pa.rules.begin(), pa.rules.end());
    }
  }
  return out;
}

LexedFile lex_file(const std::string& path, const std::string& display_path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("fluxfp-lint: cannot read " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return lex(display_path, ss.str());
}

}  // namespace fluxfp::lint
