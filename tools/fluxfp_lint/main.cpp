// fluxfp-lint: the project-invariant checker.
//
// Lexes every C++ file under the given paths (no libclang; the rules are
// token/AST-lite) and enforces the contracts PRs 1-3 made load-bearing:
//
//   no-nan-compare     missing readings are a NaN sentinel; == / != against
//                      them is always false/true — require net::is_missing()
//   no-nondeterminism  no entropy sources, wall-clock seeding, thread-id
//                      keying; no range-for over unordered containers where
//                      iteration order is result-bearing
//   no-raw-thread      std::thread / std::async only in src/numeric/parallel*,
//                      src/stream/, and src/netio/ — everything else uses
//                      parallel_for
//   pool-serial-guard  worker-thread bodies that re-enter the shared pool
//                      must hold numeric::SerialRegionGuard
//   include-hygiene    headers start with #pragma once, never
//                      `using namespace` (self-containment is compile-checked
//                      by the lint_include_hygiene CMake target)
//   no-raw-sockets     BSD socket headers/syscalls only in src/netio/ —
//                      everything else goes through netio::Socket/Listener
//   guarded-member     in classes that own a mutex, members written under a
//                      lock must be declared FLUXFP_GUARDED_BY, and guarded
//                      members are never touched without their guard held
//   lock-order         the cross-file lock-acquisition graph must be acyclic
//                      and follow the canonical order pinned in DESIGN.md
//                      (conns -> ingest -> flow -> queue -> pool -> registry)
//   atomics-policy     non-relaxed memory orders only in src/obs/ and
//                      src/support/; no implicit-seq_cst ops on modeled
//                      atomic members; no atomic member mixed with a mutex
//                      in one class without an inline justification
//
// Violations print `file:line: rule: message` and exit 1. Intended
// exceptions carry `// fluxfp-lint: allow(rule) -- why` inline; every
// suppression is tallied in the budget report, --suppression-budget N
// fails the run if the total grows past N, and --expect-suppressions N
// fails it when the tally drifts from N in either direction.
//
// Per-file results are cached by content hash (<root>/build/.fluxfp_lint_cache
// when that build directory exists; --cache-file overrides, --no-cache
// disables). Only per-file findings are cached — the lock-order rule is
// global and recomputed every run — and cached output is byte-identical
// to a cold run.

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "cache.hpp"
#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;
using namespace fluxfp::lint;

namespace {

constexpr int kExitClean = 0;
constexpr int kExitViolations = 1;
constexpr int kExitUsage = 2;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

/// Directories never scanned when walking: build trees, VCS metadata, and
/// the linter's own violation fixtures.
bool skip_dir(const std::string& name) {
  return name == ".git" || name.rfind("build", 0) == 0 || name == "fixtures";
}

std::string to_display(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  return (ec || rel.empty() ? p : rel).generic_string();
}

void usage(std::ostream& os) {
  os << "usage: fluxfp_lint [--root DIR] [--rule NAME]... "
        "[--suppression-budget N]\n"
        "                   [--expect-suppressions N] [--cache-file PATH] "
        "[--no-cache]\n"
        "                   [--list-rules] PATH...\n"
        "Paths are files or directories, resolved relative to --root "
        "(default: cwd).\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> inputs;
  std::vector<std::string> only_rules;
  long suppression_budget = -1;
  long expect_suppressions = -1;
  bool use_cache = true;
  std::string cache_file;  // empty = default under <root>/build when present

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = fs::path(argv[++i]);
    } else if (arg == "--rule" && i + 1 < argc) {
      only_rules.push_back(argv[++i]);
    } else if (arg == "--suppression-budget" && i + 1 < argc) {
      suppression_budget = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--expect-suppressions" && i + 1 < argc) {
      expect_suppressions = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--cache-file" && i + 1 < argc) {
      cache_file = argv[++i];
    } else if (arg == "--no-cache") {
      use_cache = false;
    } else if (arg == "--list-rules") {
      for (const std::string& r : rule_names()) {
        std::cout << r << '\n';
      }
      return kExitClean;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return kExitClean;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "fluxfp-lint: unknown option " << arg << '\n';
      usage(std::cerr);
      return kExitUsage;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    usage(std::cerr);
    return kExitUsage;
  }
  for (const std::string& r : only_rules) {
    if (std::find(rule_names().begin(), rule_names().end(), r) ==
        rule_names().end()) {
      std::cerr << "fluxfp-lint: unknown rule '" << r << "'\n";
      return kExitUsage;
    }
  }

  // Gather files. Explicit file arguments are always taken; directory
  // walks skip build trees and fixtures.
  std::vector<fs::path> files;
  for (const std::string& in : inputs) {
    fs::path p = fs::path(in).is_absolute() ? fs::path(in) : root / in;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (ec) {
          break;
        }
        if (it->is_directory() && skip_dir(it->path().filename().string())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec) && !ec) {
      files.push_back(p);
    } else {
      std::cerr << "fluxfp-lint: no such file or directory: " << in << '\n';
      return kExitUsage;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Pass 1: lex everything and harvest cross-file declarations (unordered
  // containers, class concurrency models, FLUXFP_REQUIRES tables).
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  GlobalCtx ctx;
  for (const fs::path& f : files) {
    try {
      lexed.push_back(lex_file(f.string(), to_display(f, root)));
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      return kExitUsage;
    }
    collect_declarations(lexed.back(), ctx);
  }

  // Pass 2: lock-scope walk over every function body, building the global
  // acquisition graph. Needs every class model, so it cannot fold into
  // pass 1; feeds a global rule, so it runs on every file every time and
  // is never cached.
  for (const LexedFile& f : lexed) {
    collect_lock_graph(f, ctx);
  }

  // Cache setup. The default location lives inside the build tree and is
  // only used when that directory already exists — the linter never
  // plants a build/ directory into a checkout on its own.
  LintCache cache;
  if (use_cache && cache_file.empty()) {
    const fs::path candidate = root / "build";
    std::error_code ec;
    if (fs::is_directory(candidate, ec)) {
      cache_file = (candidate / ".fluxfp_lint_cache").string();
    } else {
      use_cache = false;
    }
  }
  if (use_cache) {
    cache.load(cache_file);  // missing/corrupt cache = cold cache
  }
  const std::uint64_t ctx_digest = context_digest(ctx);

  // Pass 3: per-file rules, cached by (content, context) key.
  std::vector<Violation> violations;
  SuppressionTally used;
  bool cache_dirty = false;
  for (const LexedFile& f : lexed) {
    const std::uint64_t key =
        fnv1a(std::to_string(ctx_digest), file_content_key(f));
    if (use_cache) {
      if (const CachedFileResult* hit = cache.lookup(key)) {
        for (const auto& fnd : hit->findings) {
          violations.push_back(
              Violation{f.path, fnd.line, fnd.rule, fnd.message});
        }
        for (const auto& [rule, count] : hit->used) {
          used[rule] += count;
        }
        continue;
      }
    }
    std::vector<Violation> file_violations;
    SuppressionTally file_used;
    check_file(f, ctx, file_violations, file_used);
    if (use_cache) {
      CachedFileResult entry;
      for (const Violation& v : file_violations) {
        entry.findings.push_back(
            CachedFileResult::Finding{v.line, v.rule, v.message});
      }
      entry.used = file_used;
      cache.store(key, std::move(entry));
      cache_dirty = true;
    }
    for (Violation& v : file_violations) {
      violations.push_back(std::move(v));
    }
    for (const auto& [rule, count] : file_used) {
      used[rule] += count;
    }
  }
  if (use_cache && cache_dirty) {
    cache.save(cache_file);  // best effort; a failed save costs a re-lint
  }

  // Global rules: lock-order over the graph pass 2 built. Runs before the
  // --rule filter so `--rule lock-order` works like any other rule.
  check_global(ctx, violations, used);

  if (!only_rules.empty()) {
    violations.erase(
        std::remove_if(violations.begin(), violations.end(),
                       [&](const Violation& v) {
                         return std::find(only_rules.begin(), only_rules.end(),
                                          v.rule) == only_rules.end();
                       }),
        violations.end());
  }
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.path != b.path) {
                return a.path < b.path;
              }
              if (a.line != b.line) {
                return a.line < b.line;
              }
              if (a.rule != b.rule) {
                return a.rule < b.rule;
              }
              return a.message < b.message;
            });
  violations.erase(
      std::unique(violations.begin(), violations.end(),
                  [](const Violation& a, const Violation& b) {
                    return a.path == b.path && a.line == b.line &&
                           a.rule == b.rule && a.message == b.message;
                  }),
      violations.end());
  for (const Violation& v : violations) {
    std::cout << v.path << ':' << v.line << ": " << v.rule << ": "
              << v.message << '\n';
  }

  // Budget report: every inline allow() that actually masked a finding.
  long total_suppressed = 0;
  std::string detail;
  for (const auto& [rule, count] : used) {
    total_suppressed += count;
    if (!detail.empty()) {
      detail += ", ";
    }
    detail += rule + " x" + std::to_string(count);
  }
  std::cout << "fluxfp-lint: " << files.size() << " files, "
            << violations.size() << " violations, " << total_suppressed
            << " suppressions"
            << (detail.empty() ? std::string() : " (" + detail + ")") << '\n';
  bool tally_failed = false;
  if (suppression_budget >= 0 && total_suppressed > suppression_budget) {
    std::cout << "fluxfp-lint: suppression budget exceeded ("
              << total_suppressed << " > " << suppression_budget
              << "); trim allows or raise --suppression-budget\n";
    tally_failed = true;
  }
  if (expect_suppressions >= 0 && total_suppressed != expect_suppressions) {
    std::cout << "fluxfp-lint: suppression tally drifted (" << total_suppressed
              << " != expected " << expect_suppressions
              << "); audit the changed allows, then update "
                 "FLUXFP_LINT_SUPPRESSION_EXPECTED\n";
    tally_failed = true;
  }
  if (tally_failed) {
    return kExitViolations;
  }
  return violations.empty() ? kExitClean : kExitViolations;
}
