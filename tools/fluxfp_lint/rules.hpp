#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace fluxfp::lint {

/// One finding, printed as `path:line: rule: message`.
struct Violation {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

/// What the concurrency rules know about one class: which members are
/// mutexes, which members are declared FLUXFP_GUARDED_BY which mutex, and
/// which members are std::atomic. Built from class bodies in pass 1; a
/// class is "modeled" (guarded-member applies) iff it owns >= 1 mutex.
struct ClassModel {
  std::set<std::string> mutexes;
  /// member name -> guarding mutex member name.
  std::map<std::string, std::string> guarded;
  /// atomic member name -> declaration site (path, line) for the
  /// atomics-policy mixing check.
  std::map<std::string, std::pair<std::string, int>> atomics;
  /// Every recognized data member (trailing-underscore convention, plus
  /// all guarded/atomic/mutex members regardless of suffix).
  std::set<std::string> members;
};

/// One observed "mutex B acquired while mutex A is held" site. Mutex names
/// are qualified `Class::member`.
struct LockEdge {
  std::string from;
  std::string to;
  std::string path;
  int line = 0;
};

/// A call made while holding locks, resolved against fn_acquires in
/// check_global (callees are keyed by bare name; definitions may live in
/// other files, so resolution must wait until every file is harvested).
struct PendingLockCall {
  std::vector<std::string> held;  ///< qualified mutexes held at the call
  std::string callee;
  std::string path;
  int line = 0;
};

/// Cross-file state: rules that need to know what *other* files declared.
/// Built in a first pass over every scanned file; the lock graph is
/// filled by a second pass (collect_lock_graph) once every class model
/// exists.
struct GlobalCtx {
  /// Variable / member names declared anywhere with an
  /// std::unordered_{map,set,multimap,multiset} type. Range-for loops over
  /// these names are order-nondeterministic wherever they appear.
  std::set<std::string> unordered_names;

  /// Class name -> concurrency model. Same-named classes from different
  /// files merge (a header declares, a .cpp defines methods).
  std::map<std::string, ClassModel> classes;

  /// "Class::method" -> mutex member names from FLUXFP_REQUIRES on the
  /// declaration (out-of-line definitions carry no annotation of their
  /// own, so the requirement must travel across files).
  std::map<std::string, std::set<std::string>> fn_requires;

  /// bare method name -> qualified mutexes the method's body directly
  /// locks. Call sites only see bare names, so collisions are unioned;
  /// self-edges are dropped at resolution time to keep STL-name overlap
  /// (size, stats, ...) harmless.
  std::map<std::string, std::set<std::string>> fn_acquires;

  /// Lock-order graph inputs (collect_lock_graph).
  std::vector<LockEdge> direct_edges;
  std::vector<PendingLockCall> lock_calls;

  /// path -> (line -> allowed rules): per-file suppression tables kept for
  /// the global rules, which report outside any single file's check pass.
  std::map<std::string, std::map<int, std::set<std::string>>> allows_by_path;
};

/// Per-run tally of inline suppressions actually exercised, keyed by rule.
using SuppressionTally = std::map<std::string, int>;

/// All rule names, in report order.
const std::vector<std::string>& rule_names();

/// First pass: harvest declarations from one file into the global context
/// (unordered containers, class concurrency models, FLUXFP_REQUIRES
/// annotations, suppression tables).
void collect_declarations(const LexedFile& file, GlobalCtx& ctx);

/// Second pass (after every collect_declarations): walk one file's
/// function bodies tracking lock scopes, and record direct lock-nesting
/// edges, lock-holding call sites, and per-function acquire sets.
void collect_lock_graph(const LexedFile& file, GlobalCtx& ctx);

/// Third pass: run every per-file rule over one file. Violations on lines
/// carrying a matching `// fluxfp-lint: allow(rule)` are counted into
/// `used` instead of reported.
void check_file(const LexedFile& file, const GlobalCtx& ctx,
                std::vector<Violation>& out, SuppressionTally& used);

/// Global rules (lock-order): resolve the lock graph accumulated by
/// collect_lock_graph, reject acquisition cycles, and pin the documented
/// canonical order. Runs once per invocation, never cached.
void check_global(const GlobalCtx& ctx, std::vector<Violation>& out,
                  SuppressionTally& used);

/// Concurrency per-file findings (guarded-member, atomics-policy),
/// reported by check_file through the normal suppression machinery.
/// Exposed for reuse between passes; implemented in concurrency.cpp.
std::vector<Violation> concurrency_file_findings(const LexedFile& file,
                                                 const GlobalCtx& ctx);

/// concurrency.cpp internals shared with collect_declarations.
void collect_concurrency_decls(const LexedFile& file, GlobalCtx& ctx);

}  // namespace fluxfp::lint
