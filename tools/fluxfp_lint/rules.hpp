#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace fluxfp::lint {

/// One finding, printed as `path:line: rule: message`.
struct Violation {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Cross-file state: rules that need to know what *other* files declared.
/// Built in a first pass over every scanned file.
struct GlobalCtx {
  /// Variable / member names declared anywhere with an
  /// std::unordered_{map,set,multimap,multiset} type. Range-for loops over
  /// these names are order-nondeterministic wherever they appear.
  std::set<std::string> unordered_names;
};

/// Per-run tally of inline suppressions actually exercised, keyed by rule.
using SuppressionTally = std::map<std::string, int>;

/// All rule names, in report order.
const std::vector<std::string>& rule_names();

/// First pass: harvest declarations from one file into the global context.
void collect_declarations(const LexedFile& file, GlobalCtx& ctx);

/// Second pass: run every rule over one file. Violations on lines carrying
/// a matching `// fluxfp-lint: allow(rule)` are counted into `used`
/// instead of reported.
void check_file(const LexedFile& file, const GlobalCtx& ctx,
                std::vector<Violation>& out, SuppressionTally& used);

}  // namespace fluxfp::lint
