// Concurrency-contract rules: the AST-lite dataflow half of fluxfp-lint.
//
// Three rules ride on one shared analysis:
//
//   guarded-member   inside a method of a class that owns a mutex, any
//                    member WRITE made while a lock is held must target a
//                    member declared FLUXFP_GUARDED_BY, and any access to
//                    a guarded member must happen with its guard held
//   lock-order       every "acquire B while holding A" site (direct
//                    nesting plus one level of call resolution) feeds a
//                    global graph; cycles are rejected and edges between
//                    pinned mutexes must follow the canonical order
//   atomics-policy   non-relaxed atomic orderings are confined to
//                    src/obs/ + src/support/; an implicit-seq_cst op on a
//                    modeled atomic member is flagged everywhere; a class
//                    mixing a std::atomic member with a mutex must justify
//                    the split-brain state with an inline allow
//
// The analysis mirrors Clang's -Wthread-safety shape on purpose (lock
// scopes from RAII declarations, REQUIRES as entry-held capabilities,
// assert_held() re-establishing a scope, constructors/destructors exempt,
// lambda bodies analyzed as separate functions) so that what the compiler
// enforces under Clang stays enforced — by this tool — under GCC builds
// and in CI environments without the capability analysis.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "rules.hpp"

namespace fluxfp::lint {

namespace {

// ---------------------------------------------------------------------------
// Token helpers (local copies; rules.cpp keeps its own in its TU)
// ---------------------------------------------------------------------------

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Index of the matching closer for the opener at `open`, or tokens.size().
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], open_text)) {
      ++depth;
    } else if (is_punct(toks[i], close_text)) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

/// Skips a balanced template-argument list starting at the `<` at `i`.
std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "<")) {
      ++depth;
    } else if (is_punct(t, ">")) {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (is_punct(t, ">>")) {
      depth -= 2;
      if (depth <= 0) {
        return i + 1;
      }
    } else if (is_punct(t, ";") || is_punct(t, "{")) {
      break;  // malformed; give up on this site
    }
  }
  return toks.size();
}

bool ends_with_underscore(const std::string& s) {
  return !s.empty() && s.back() == '_';
}

/// Statement keywords that look like `ident (` but are never calls or
/// function definitions.
const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "for",      "while",    "if",          "switch",  "return",
      "catch",    "sizeof",   "alignof",     "decltype", "static_cast",
      "assert",   "new",      "delete",      "throw",   "case",
      "co_await", "co_return", "co_yield",   "static_assert"};
  return kw;
}

/// Mutex type spellings recognized in member declarations.
bool is_mutex_type_ident(const Token& t) {
  return t.kind == TokKind::kIdent &&
         (t.text == "Mutex" || t.text == "mutex" ||
          t.text == "shared_mutex" || t.text == "recursive_mutex" ||
          t.text == "timed_mutex");
}

/// Member method calls that read without mutating: allowed on unguarded
/// members under a lock, and excluded from the write heuristic.
const std::set<std::string>& read_method_whitelist() {
  static const std::set<std::string> names = {
      "size",     "empty",      "at",          "count",      "find",
      "begin",    "end",        "cbegin",      "cend",       "front",
      "back",     "load",       "value",       "data",       "capacity",
      "get",      "c_str",      "native",      "str",        "stats",
      "joinable", "contains",   "lower_bound", "upper_bound",
      // Condition-variable traffic is synchronization, not guarded state.
      "notify_one", "notify_all", "wait", "wait_for", "wait_until"};
  return names;
}

// ---------------------------------------------------------------------------
// Class ranges
// ---------------------------------------------------------------------------

struct ClassRange {
  std::string name;
  std::size_t body_begin = 0;  // index of '{'
  std::size_t body_end = 0;    // index of matching '}'
};

/// Finds every `class X {...}` / `struct X {...}` definition, including
/// ones behind capability macros (`class FLUXFP_CAPABILITY("mutex") X`)
/// and base clauses. Forward declarations and `enum class` are skipped.
std::vector<ClassRange> find_class_ranges(const std::vector<Token>& toks) {
  std::vector<ClassRange> out;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i], "class") && !is_ident(toks[i], "struct")) {
      continue;
    }
    if (i > 0 && is_ident(toks[i - 1], "enum")) {
      continue;
    }
    std::string name;
    std::size_t j = i + 1;
    bool fwd = false;
    while (j < toks.size()) {
      const Token& t = toks[j];
      if (is_punct(t, ";")) {
        fwd = true;  // forward declaration / friend
        break;
      }
      if (is_punct(t, "{") || is_punct(t, ":")) {
        break;
      }
      if (t.kind == TokKind::kIdent) {
        if (t.text != "final" && t.text != "alignas") {
          name = t.text;
        }
        if (j + 1 < toks.size() && is_punct(toks[j + 1], "(")) {
          // Attribute macro with arguments: FLUXFP_CAPABILITY("mutex").
          j = match_forward(toks, j + 1, "(", ")") + 1;
          continue;
        }
      }
      ++j;
    }
    if (fwd || name.empty()) {
      continue;
    }
    while (j < toks.size() && !is_punct(toks[j], "{")) {
      ++j;  // base clause
    }
    if (j >= toks.size()) {
      continue;
    }
    const std::size_t end = match_forward(toks, j, "{", "}");
    out.push_back(ClassRange{name, j, end});
  }
  return out;
}

/// Innermost class whose body contains token index `i`, or empty.
std::string enclosing_class(const std::vector<ClassRange>& classes,
                            std::size_t i) {
  std::string best;
  std::size_t best_span = static_cast<std::size_t>(-1);
  for (const ClassRange& c : classes) {
    if (i > c.body_begin && i < c.body_end &&
        c.body_end - c.body_begin < best_span) {
      best = c.name;
      best_span = c.body_end - c.body_begin;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Member harvesting (pass 1)
// ---------------------------------------------------------------------------

/// Walks one class body at member depth and records mutex / guarded /
/// atomic / plain members into the model.
void harvest_members(const LexedFile& f, const ClassRange& cls,
                     ClassModel& model) {
  const auto& toks = f.tokens;
  int paren = 0;
  std::size_t stmt_begin = cls.body_begin + 1;
  for (std::size_t i = cls.body_begin + 1; i < cls.body_end; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) {
      // Nested body (method, nested class, brace initializer): skip.
      i = match_forward(toks, i, "{", "}");
      stmt_begin = i + 1;
      continue;
    }
    if (is_punct(t, "(")) {
      ++paren;
      continue;
    }
    if (is_punct(t, ")")) {
      --paren;
      continue;
    }
    if (paren != 0) {
      continue;
    }
    if (is_punct(t, ";") || is_punct(t, ":")) {
      stmt_begin = i + 1;
      continue;
    }
    if (t.kind != TokKind::kIdent) {
      continue;
    }
    // A declared member name is an identifier followed by `;`, `=`, `{`
    // (brace init), or the FLUXFP_GUARDED_BY annotation.
    const bool followed_by_guard =
        i + 1 < toks.size() && is_ident(toks[i + 1], "FLUXFP_GUARDED_BY");
    const bool decl_tail =
        i + 1 < toks.size() &&
        (is_punct(toks[i + 1], ";") || is_punct(toks[i + 1], "=") ||
         is_punct(toks[i + 1], "{"));
    if (!followed_by_guard && !decl_tail) {
      continue;
    }
    // Reject `= default`, enum values, using-aliases: require either the
    // trailing-underscore member convention or a recognizable type.
    bool is_mutex = false;
    bool is_atomic = false;
    for (std::size_t j = stmt_begin; j < i; ++j) {
      if (is_mutex_type_ident(toks[j])) {
        // `unique_lock<std::mutex>` / `lock_guard<std::mutex>` template
        // arguments are not mutex declarations.
        if (j + 1 < toks.size() &&
            (is_punct(toks[j + 1], ">") || is_punct(toks[j + 1], ",") ||
             is_punct(toks[j + 1], ">>"))) {
          continue;
        }
        is_mutex = true;
      }
      if (is_ident(toks[j], "atomic")) {
        is_atomic = true;
      }
      if (is_ident(toks[j], "using") || is_ident(toks[j], "typedef") ||
          is_ident(toks[j], "return")) {
        is_mutex = false;
        is_atomic = false;
        break;
      }
    }
    if (is_mutex) {
      model.mutexes.insert(t.text);
      model.members.insert(t.text);
    } else if (is_atomic) {
      model.atomics.emplace(t.text, std::make_pair(f.path, t.line));
      model.members.insert(t.text);
    } else if (followed_by_guard || ends_with_underscore(t.text)) {
      model.members.insert(t.text);
    } else {
      continue;
    }
    if (followed_by_guard && i + 2 < toks.size() &&
        is_punct(toks[i + 2], "(")) {
      for (std::size_t j = i + 3; j < toks.size(); ++j) {
        if (is_punct(toks[j], ")")) {
          break;
        }
        if (toks[j].kind == TokKind::kIdent && !is_ident(toks[j], "this")) {
          model.guarded[t.text] = toks[j].text;
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Function regions
// ---------------------------------------------------------------------------

struct Region {
  std::string cls;        ///< enclosing/qualifying class ("" = free)
  std::string name;       ///< function name
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::set<std::string> requires_mutexes;  ///< from inline FLUXFP_REQUIRES
  bool ctor_dtor = false;
};

/// After a parameter list's `)` at `close`, walk the specifier trail to
/// the function body's `{`. Returns the body index (or npos when this is
/// a declaration / something else) and harvests FLUXFP_REQUIRES args.
std::optional<std::size_t> find_body(const std::vector<Token>& toks,
                                     std::size_t close,
                                     std::set<std::string>& requires_out) {
  std::size_t j = close + 1;
  int budget = 64;
  bool in_init_list = false;
  while (j < toks.size() && budget-- > 0) {
    const Token& t = toks[j];
    if (is_punct(t, "{")) {
      if (in_init_list) {
        // Member brace-init (`factory_{...}`) follows an ident or a
        // template closer; the body never does inside an init list.
        const Token& prev = toks[j - 1];
        if (prev.kind == TokKind::kIdent || is_punct(prev, ">") ||
            is_punct(prev, ">>")) {
          j = match_forward(toks, j, "{", "}") + 1;
          continue;
        }
      }
      return j;
    }
    if (is_punct(t, ";") || is_punct(t, "=")) {
      return std::nullopt;  // declaration, = default / = delete / = 0
    }
    if (t.kind == TokKind::kIdent && starts_with(t.text, "FLUXFP_") &&
        j + 1 < toks.size() && is_punct(toks[j + 1], "(")) {
      const std::size_t arg_close = match_forward(toks, j + 1, "(", ")");
      if (t.text == "FLUXFP_REQUIRES") {
        for (std::size_t k = j + 2; k < arg_close; ++k) {
          if (toks[k].kind == TokKind::kIdent &&
              !is_ident(toks[k], "this")) {
            requires_out.insert(toks[k].text);
          }
        }
      }
      j = arg_close + 1;
      continue;
    }
    if (is_punct(t, ":")) {
      in_init_list = true;
      ++j;
      continue;
    }
    if (is_punct(t, "(")) {
      j = match_forward(toks, j, "(", ")") + 1;
      continue;
    }
    if (is_punct(t, "<")) {
      j = skip_template_args(toks, j);
      continue;
    }
    if (t.kind == TokKind::kIdent || is_punct(t, "::") ||
        is_punct(t, "->") || is_punct(t, ",") || is_punct(t, "&") ||
        is_punct(t, "&&") || is_punct(t, "*")) {
      ++j;
      continue;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

/// Every function definition in the file, classified by enclosing class.
std::vector<Region> find_regions(const LexedFile& f,
                                 const std::vector<ClassRange>& classes) {
  const auto& toks = f.tokens;
  std::vector<Region> out;
  std::size_t resume = 0;  // skip past bodies already claimed
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (i < resume) {
      continue;
    }
    if (toks[i].kind != TokKind::kIdent || !is_punct(toks[i + 1], "(") ||
        control_keywords().count(toks[i].text)) {
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close == toks.size()) {
      continue;
    }
    Region reg;
    const auto body = find_body(toks, close, reg.requires_mutexes);
    if (!body) {
      continue;
    }
    reg.name = toks[i].text;
    reg.body_begin = *body;
    reg.body_end = match_forward(toks, *body, "{", "}");
    // Out-of-line `Class::method`, in-class method, or free function.
    bool dtor = i > 0 && is_punct(toks[i - 1], "~");
    const std::size_t qual = dtor ? i - 1 : i;
    if (qual >= 2 && is_punct(toks[qual - 1], "::") &&
        toks[qual - 2].kind == TokKind::kIdent) {
      reg.cls = toks[qual - 2].text;
    } else {
      reg.cls = enclosing_class(classes, i);
    }
    reg.ctor_dtor = dtor || (!reg.cls.empty() && reg.name == reg.cls);
    out.push_back(reg);
    resume = reg.body_end;  // no nested named functions in C++
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lock-scope walk
// ---------------------------------------------------------------------------

struct LockScope {
  std::string mutex;    ///< class-local mutex member name
  int depth = 0;        ///< brace depth the scope was opened at
  bool active = true;
  std::string lockvar;  ///< RAII variable name, "" for REQUIRES/assert
};

/// Callbacks a walk client provides; the walker itself only understands
/// scopes. All mutex names passed to callbacks are class-local.
struct WalkHooks {
  /// A mutex was acquired (RAII decl, .lock(), lockvar re-lock) with
  /// `held` the set of mutexes already held. NOT fired for REQUIRES or
  /// assert_held scopes (those assert, they don't acquire).
  std::function<void(const std::string& mutex, int line,
                     const std::vector<std::string>& held)>
      on_acquire;
  /// A call site `name(...)` executed while `held` is non-empty.
  std::function<void(const std::string& callee, int line,
                     const std::vector<std::string>& held)>
      on_call;
  /// A bare / this-> member access. `write` per the mutation heuristic.
  std::function<void(const std::string& member, int line, bool write,
                     const std::vector<std::string>& held)>
      on_member;
};

class ScopeWalker {
 public:
  ScopeWalker(const LexedFile& f, const ClassModel* model,
              const WalkHooks& hooks)
      : f_(f), model_(model), hooks_(hooks) {}

  /// Walks [begin, end) (a `{...}` body, braces included) with the given
  /// entry-held mutexes. Lambda bodies encountered inside are walked
  /// recursively with an EMPTY held set — a lambda may run on any thread,
  /// so it must re-establish its capabilities (assert_held) itself.
  void walk(std::size_t begin, std::size_t end,
            const std::set<std::string>& entry_held) {
    std::vector<LockScope> scopes;
    for (const std::string& m : entry_held) {
      scopes.push_back(LockScope{m, 0, true, ""});
    }
    walk_range(begin, end, scopes);
  }

 private:
  const LexedFile& f_;
  const ClassModel* model_;  // null for free functions / unmodeled classes
  const WalkHooks& hooks_;

  bool is_class_mutex(const std::string& name) const {
    return model_ != nullptr && model_->mutexes.count(name) > 0;
  }

  static std::vector<std::string> held_of(
      const std::vector<LockScope>& scopes) {
    std::vector<std::string> held;
    for (const LockScope& s : scopes) {
      if (s.active && !std::count(held.begin(), held.end(), s.mutex)) {
        held.push_back(s.mutex);
      }
    }
    return held;
  }

  /// The mutex member named inside a lock declaration's `( ... )`,
  /// accepting `m_`, `this->m_`, and `obj.m_` forms (the member name is
  /// the last identifier of the first argument).
  std::string mutex_arg(std::size_t open, std::size_t close) const {
    std::string last;
    for (std::size_t k = open + 1; k < close; ++k) {
      const Token& t = f_.tokens[k];
      if (is_punct(t, ",")) {
        break;
      }
      if (t.kind == TokKind::kIdent && !is_ident(t, "this")) {
        last = t.text;
      }
      if (is_punct(t, "(")) {
        break;  // expression argument (m.native()) — take what we have
      }
    }
    return last;
  }

  void walk_range(std::size_t begin, std::size_t end,
                  std::vector<LockScope>& scopes) {
    const auto& toks = f_.tokens;
    int depth = 0;
    for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (is_punct(t, "{")) {
        ++depth;
        continue;
      }
      if (is_punct(t, "}")) {
        --depth;
        for (LockScope& s : scopes) {
          if (s.active && s.depth > depth) {
            s.active = false;
          }
        }
        continue;
      }
      // Lambda literal: `[` not a subscript — walk its body separately
      // with an empty held set, then skip past it.
      if (is_punct(t, "[") && i > begin) {
        const Token& prev = toks[i - 1];
        const bool subscript = prev.kind == TokKind::kIdent ||
                               is_punct(prev, "]") || is_punct(prev, ")");
        if (!subscript && !(i + 1 < end && is_punct(toks[i + 1], "["))) {
          const std::size_t cap_end = match_forward(toks, i, "[", "]");
          std::size_t j = cap_end + 1;
          if (j < end && is_punct(toks[j], "(")) {
            j = match_forward(toks, j, "(", ")") + 1;
          }
          while (j < end && !is_punct(toks[j], "{") &&
                 !is_punct(toks[j], ";") && !is_punct(toks[j], ")") &&
                 !is_punct(toks[j], ",")) {
            ++j;  // mutable / noexcept / -> ret
          }
          if (j < end && is_punct(toks[j], "{")) {
            const std::size_t lam_end = match_forward(toks, j, "{", "}");
            std::vector<LockScope> empty;
            walk_range(j, lam_end, empty);
            i = lam_end;
            continue;
          }
        }
        if (i + 1 < end && is_punct(toks[i + 1], "[")) {
          i = match_forward(toks, i, "[", "]");  // [[attribute]]
          continue;
        }
        continue;
      }
      if (t.kind != TokKind::kIdent) {
        continue;
      }

      // RAII lock declarations:
      //   support::MutexLock lk(m_);     support::UniqueLock lk(m_);
      //   std::lock_guard<std::mutex> lk(m_);   std::unique_lock<...> ...
      //   std::scoped_lock lk(m_);
      if (t.text == "MutexLock" || t.text == "UniqueLock" ||
          t.text == "lock_guard" || t.text == "unique_lock" ||
          t.text == "scoped_lock") {
        std::size_t j = i + 1;
        if (j < end && is_punct(toks[j], "<")) {
          j = skip_template_args(toks, j);
        }
        if (j < end && toks[j].kind == TokKind::kIdent &&
            j + 1 < end && is_punct(toks[j + 1], "(")) {
          const std::string lockvar = toks[j].text;
          const std::size_t close = match_forward(toks, j + 1, "(", ")");
          const std::string m = mutex_arg(j + 1, close);
          if (is_class_mutex(m)) {
            if (hooks_.on_acquire) {
              hooks_.on_acquire(m, toks[j].line, held_of(scopes));
            }
            scopes.push_back(LockScope{m, depth, true, lockvar});
          }
          i = close;
          continue;
        }
      }

      // `x.lock()` / `x.unlock()` / `m_.assert_held()` where x is a live
      // lock variable or a class mutex.
      if (i + 3 < end && is_punct(toks[i + 1], ".") &&
          toks[i + 2].kind == TokKind::kIdent &&
          is_punct(toks[i + 3], "(")) {
        const std::string& obj = t.text;
        const std::string& method = toks[i + 2].text;
        bool handled = false;
        if (method == "lock" || method == "unlock") {
          for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            if (it->lockvar == obj && !it->lockvar.empty()) {
              if (method == "lock" && !it->active) {
                it->active = true;
                if (hooks_.on_acquire) {
                  hooks_.on_acquire(it->mutex, t.line, held_of(scopes));
                }
              } else if (method == "unlock") {
                it->active = false;
              }
              handled = true;
              break;
            }
          }
          if (!handled && is_class_mutex(obj)) {
            if (method == "lock") {
              if (hooks_.on_acquire) {
                hooks_.on_acquire(obj, t.line, held_of(scopes));
              }
              scopes.push_back(LockScope{obj, depth, true, ""});
            } else {
              for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
                if (it->active && it->mutex == obj) {
                  it->active = false;
                  break;
                }
              }
            }
            handled = true;
          }
        } else if (method == "assert_held" && is_class_mutex(obj)) {
          scopes.push_back(LockScope{obj, depth, true, ""});
          handled = true;
        }
        if (handled) {
          i = match_forward(toks, i + 3, "(", ")");
          continue;
        }
      }

      // Call site: `name(` — includes member calls (obj.name(...)); the
      // resolver keys by bare name. Skip declarations (`Type name(`,
      // preceded by a bare identifier) the same way no-raw-sockets does.
      if (i + 1 < end && is_punct(toks[i + 1], "(") &&
          !control_keywords().count(t.text)) {
        bool decl_like = false;
        if (i > begin) {
          const Token& prev = toks[i - 1];
          static const std::set<std::string> kCallKeywords = {
              "return", "else", "do", "throw", "case", "co_return",
              "co_await", "co_yield"};
          if (prev.kind == TokKind::kIdent &&
              !kCallKeywords.count(prev.text)) {
            decl_like = true;
          }
          if (is_punct(prev, "*") || is_punct(prev, "&")) {
            decl_like = true;
          }
        }
        if (!decl_like && hooks_.on_call) {
          const std::vector<std::string> held = held_of(scopes);
          if (!held.empty()) {
            hooks_.on_call(t.text, t.line, held);
          }
        }
        // Fall through: the callee name may itself be a member access
        // (handled below only for bare members, so no double handling).
      }

      // Member access: bare identifier or `this->x`. Identifiers behind
      // `.`, `->`, or `::` belong to some other object/scope.
      if (model_ != nullptr && model_->members.count(t.text)) {
        bool qualified = false;
        if (i > begin) {
          const Token& prev = toks[i - 1];
          if (is_punct(prev, ".") || is_punct(prev, "::")) {
            qualified = true;
          }
          if (is_punct(prev, "->") &&
              !(i >= 2 && is_ident(toks[i - 2], "this"))) {
            qualified = true;
          }
        }
        if (!qualified && hooks_.on_member) {
          hooks_.on_member(t.text, t.line, is_write_access(i, end),
                           held_of(scopes));
        }
      }
    }
  }

  /// Mutation heuristic for the member at index i: direct assignment,
  /// compound assignment, increment/decrement (either side), subscripted
  /// assignment, or a non-whitelisted method call.
  bool is_write_access(std::size_t i, std::size_t end) const {
    const auto& toks = f_.tokens;
    if (i > 0 &&
        (is_punct(toks[i - 1], "++") || is_punct(toks[i - 1], "--"))) {
      return true;
    }
    std::size_t j = i + 1;
    bool subscripted = false;
    if (j < end && is_punct(toks[j], "[")) {
      j = match_forward(toks, j, "[", "]") + 1;
      subscripted = true;
    }
    if (j >= end) {
      return false;
    }
    const Token& nxt = toks[j];
    static const char* const kAssignOps[] = {"=",  "+=", "-=", "*=", "/=",
                                             "%=", "&=", "|=", "^=", "<<=",
                                             ">>=", "++", "--"};
    for (const char* op : kAssignOps) {
      if (is_punct(nxt, op)) {
        return true;
      }
    }
    if ((is_punct(nxt, ".") || is_punct(nxt, "->")) && j + 2 < end &&
        toks[j + 1].kind == TokKind::kIdent &&
        is_punct(toks[j + 2], "(")) {
      if (subscripted && is_punct(nxt, "->")) {
        // queues_[i]->evict_one(): a container of pointers — the call
        // mutates the pointee, not the container member itself.
        return false;
      }
      return read_method_whitelist().count(toks[j + 1].text) == 0;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// atomics-policy path scoping
// ---------------------------------------------------------------------------

/// Files where non-relaxed orderings are sanctioned: the observability
/// layer (clock_ uses acquire/release by design) and the support
/// primitives themselves.
bool atomics_sanctioned(const std::string& path) {
  return starts_with(path, "src/obs/") || starts_with(path, "src/support/");
}

const std::set<std::string>& non_relaxed_orders() {
  static const std::set<std::string> names = {
      "memory_order_acquire", "memory_order_release", "memory_order_acq_rel",
      "memory_order_seq_cst", "memory_order_consume"};
  return names;
}

const std::set<std::string>& atomic_rmw_methods() {
  static const std::set<std::string> names = {
      "load",         "store",         "exchange",
      "fetch_add",    "fetch_sub",     "fetch_and",
      "fetch_or",     "fetch_xor",     "compare_exchange_weak",
      "compare_exchange_strong"};
  return names;
}

// ---------------------------------------------------------------------------
// Region analysis drivers
// ---------------------------------------------------------------------------

std::string qualify(const std::string& cls, const std::string& mutex) {
  return cls.empty() ? mutex : cls + "::" + mutex;
}

/// Entry-held set for a region: inline FLUXFP_REQUIRES plus the
/// cross-file fn_requires table (annotations live on declarations; the
/// bodies are usually elsewhere).
std::set<std::string> region_entry_held(const Region& reg,
                                        const GlobalCtx& ctx) {
  std::set<std::string> held = reg.requires_mutexes;
  const auto it = ctx.fn_requires.find(reg.cls + "::" + reg.name);
  if (it != ctx.fn_requires.end()) {
    held.insert(it->second.begin(), it->second.end());
  }
  return held;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 1: declarations
// ---------------------------------------------------------------------------

void collect_concurrency_decls(const LexedFile& f, GlobalCtx& ctx) {
  const std::vector<ClassRange> classes = find_class_ranges(f.tokens);
  for (const ClassRange& c : classes) {
    harvest_members(f, c, ctx.classes[c.name]);
  }
  // FLUXFP_REQUIRES on declarations: `ret name(args) FLUXFP_REQUIRES(m);`
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "FLUXFP_REQUIRES") ||
        !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    std::set<std::string> mutexes;
    for (std::size_t k = i + 2; k < close; ++k) {
      if (toks[k].kind == TokKind::kIdent && !is_ident(toks[k], "this")) {
        mutexes.insert(toks[k].text);
      }
    }
    if (mutexes.empty()) {
      continue;
    }
    // Walk back over the parameter list to the function name.
    std::size_t j = i;
    while (j > 0 && !is_punct(toks[j - 1], ")")) {
      --j;
      if (i - j > 4) {  // other specifiers between `)` and the annotation
        if (is_punct(toks[j], ";") || is_punct(toks[j], "{")) {
          j = 0;
          break;
        }
      }
    }
    if (j == 0) {
      continue;
    }
    // toks[j-1] is ')': find its '(' by walking backwards.
    int depth = 0;
    std::size_t open = toks.size();
    for (std::size_t k = j - 1; k != static_cast<std::size_t>(-1); --k) {
      if (is_punct(toks[k], ")")) {
        ++depth;
      } else if (is_punct(toks[k], "(")) {
        if (--depth == 0) {
          open = k;
          break;
        }
      }
      if (k == 0) {
        break;
      }
    }
    if (open == toks.size() || open == 0 ||
        toks[open - 1].kind != TokKind::kIdent) {
      continue;
    }
    const std::string method = toks[open - 1].text;
    std::string cls;
    if (open >= 3 && is_punct(toks[open - 2], "::") &&
        toks[open - 3].kind == TokKind::kIdent) {
      cls = toks[open - 3].text;
    } else {
      cls = enclosing_class(classes, open - 1);
    }
    ctx.fn_requires[cls + "::" + method].insert(mutexes.begin(),
                                                mutexes.end());
  }
  // Per-file suppression table, kept for the global (cross-file) rules.
  if (!f.allows.empty()) {
    ctx.allows_by_path[f.path] = f.allows;
  }
}

// ---------------------------------------------------------------------------
// Pass 2: lock graph
// ---------------------------------------------------------------------------

void collect_lock_graph(const LexedFile& f, GlobalCtx& ctx) {
  const std::vector<ClassRange> classes = find_class_ranges(f.tokens);
  for (const Region& reg : find_regions(f, classes)) {
    if (reg.ctor_dtor) {
      continue;  // mirrors -Wthread-safety: ctors/dtors are exempt
    }
    const ClassModel* model = nullptr;
    const auto it = ctx.classes.find(reg.cls);
    if (it != ctx.classes.end() && !it->second.mutexes.empty()) {
      model = &it->second;
    }
    if (model == nullptr) {
      // A region without a modeled class can still *call* into locking
      // code, but it cannot hold a modeled mutex, so it contributes no
      // edges. Skip it.
      continue;
    }
    WalkHooks hooks;
    std::set<std::string>& acquires = ctx.fn_acquires[reg.name];
    hooks.on_acquire = [&](const std::string& m, int line,
                           const std::vector<std::string>& held) {
      acquires.insert(qualify(reg.cls, m));
      for (const std::string& h : held) {
        if (h != m) {
          ctx.direct_edges.push_back(LockEdge{
              qualify(reg.cls, h), qualify(reg.cls, m), f.path, line});
        }
      }
    };
    hooks.on_call = [&](const std::string& callee, int line,
                        const std::vector<std::string>& held) {
      std::vector<std::string> qheld;
      qheld.reserve(held.size());
      for (const std::string& h : held) {
        qheld.push_back(qualify(reg.cls, h));
      }
      ctx.lock_calls.push_back(
          PendingLockCall{std::move(qheld), callee, f.path, line});
    };
    ScopeWalker walker(f, model, hooks);
    walker.walk(reg.body_begin, reg.body_end, region_entry_held(reg, ctx));
  }
  // The obs instrumentation macros register metrics on first hit, taking
  // the registry mutex; seed them as known acquirers so a macro fired
  // inside a critical section contributes its leaf edge.
  for (const char* macro :
       {"FLUXFP_OBS_COUNTER_INC", "FLUXFP_OBS_COUNTER_ADD",
        "FLUXFP_OBS_COUNTER_INC_SCHED", "FLUXFP_OBS_COUNTER_ADD_SCHED",
        "FLUXFP_OBS_GAUGE_SET", "FLUXFP_OBS_GAUGE_SET_SCHED",
        "FLUXFP_OBS_GAUGE_MAX_SCHED", "FLUXFP_OBS_HISTOGRAM_OBSERVE",
        "FLUXFP_OBS_HISTOGRAM_OBSERVE_SCHED", "FLUXFP_OBS_SPAN"}) {
    ctx.fn_acquires[macro].insert("MetricsRegistry::mutex_");
  }
}

// ---------------------------------------------------------------------------
// Per-file rules: guarded-member + atomics-policy
// ---------------------------------------------------------------------------

std::vector<Violation> concurrency_file_findings(const LexedFile& f,
                                                 const GlobalCtx& ctx) {
  std::vector<Violation> out;
  const std::vector<ClassRange> classes = find_class_ranges(f.tokens);
  const bool sanctioned = atomics_sanctioned(f.path);

  // atomics-policy (1): non-relaxed orderings outside sanctioned files.
  if (!sanctioned) {
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      std::string order;
      if (t.kind == TokKind::kIdent && non_relaxed_orders().count(t.text)) {
        order = t.text;
      } else if (is_ident(t, "memory_order") && i + 2 < toks.size() &&
                 is_punct(toks[i + 1], "::") &&
                 toks[i + 2].kind == TokKind::kIdent &&
                 toks[i + 2].text != "relaxed") {
        order = "memory_order::" + toks[i + 2].text;
      }
      if (!order.empty()) {
        out.push_back(Violation{
            f.path, t.line, "atomics-policy",
            order +
                " outside src/obs/ and src/support/: real synchronization "
                "belongs to mutexes and joins; use "
                "std::memory_order_relaxed with a comment, or justify "
                "with an inline allow"});
      }
    }
  }

  // atomics-policy (2): a class mixing an atomic member with a mutex.
  // Reported at the atomic's declaration site, in the declaring file.
  if (!sanctioned) {
    for (const ClassRange& c : classes) {
      const auto it = ctx.classes.find(c.name);
      if (it == ctx.classes.end() || it->second.mutexes.empty()) {
        continue;
      }
      for (const auto& [name, site] : it->second.atomics) {
        if (site.first != f.path) {
          continue;
        }
        out.push_back(Violation{
            f.path, site.second, "atomics-policy",
            "atomic member '" + name + "' in class '" + c.name +
                "', which also owns mutex '" + *it->second.mutexes.begin() +
                "': state split between an atomic and a lock is a race "
                "magnet; fold it under the mutex or justify with an "
                "inline allow"});
      }
    }
  }

  // guarded-member + atomics-policy (3, implicit seq_cst member ops):
  // walk every non-ctor region of a modeled class.
  for (const Region& reg : find_regions(f, classes)) {
    const auto it = ctx.classes.find(reg.cls);
    if (it == ctx.classes.end()) {
      continue;
    }
    const ClassModel& model = it->second;
    if (model.mutexes.empty() && model.atomics.empty()) {
      continue;
    }
    if (reg.ctor_dtor) {
      continue;
    }
    WalkHooks hooks;
    std::set<int> reported;  // one finding per (line), not per token
    hooks.on_member = [&](const std::string& member, int line, bool write,
                          const std::vector<std::string>& held) {
      if (reported.count(line)) {
        return;
      }
      const auto guard = model.guarded.find(member);
      if (guard != model.guarded.end()) {
        if (!std::count(held.begin(), held.end(), guard->second)) {
          reported.insert(line);
          out.push_back(Violation{
              f.path, line, "guarded-member",
              "member '" + member + "' is FLUXFP_GUARDED_BY(" +
                  guard->second + ") but accessed here without it held; "
                  "take the lock (or assert_held in a lock-held lambda)"});
        }
        return;
      }
      if (write && !held.empty() && !model.mutexes.count(member) &&
          !model.atomics.count(member) && !model.mutexes.empty()) {
        reported.insert(line);
        out.push_back(Violation{
            f.path, line, "guarded-member",
            "member '" + member + "' written while holding '" + held.front() +
                "' but not declared FLUXFP_GUARDED_BY; annotate the "
                "declaration so Clang and this lint enforce the guard"});
      }
    };
    ScopeWalker walker(f, &model, hooks);
    walker.walk(reg.body_begin, reg.body_end, region_entry_held(reg, ctx));

    // Implicit seq_cst ops on modeled atomic members.
    if (!sanctioned && !model.atomics.empty()) {
      const auto& toks = f.tokens;
      for (std::size_t i = reg.body_begin;
           i < reg.body_end && i + 3 < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != TokKind::kIdent || !model.atomics.count(t.text)) {
          continue;
        }
        if (i > 0 && (is_punct(toks[i - 1], ".") ||
                      is_punct(toks[i - 1], "::"))) {
          continue;
        }
        if (is_punct(toks[i + 1], ".") &&
            toks[i + 2].kind == TokKind::kIdent &&
            atomic_rmw_methods().count(toks[i + 2].text) &&
            is_punct(toks[i + 3], "(")) {
          const std::size_t close = match_forward(toks, i + 3, "(", ")");
          bool explicit_order = false;
          for (std::size_t k = i + 4; k < close; ++k) {
            if (toks[k].kind == TokKind::kIdent &&
                starts_with(toks[k].text, "memory_order")) {
              explicit_order = true;
              break;
            }
          }
          if (!explicit_order) {
            out.push_back(Violation{
                f.path, t.line, "atomics-policy",
                "atomic member '" + t.text + "." + toks[i + 2].text +
                    "()' without an explicit memory_order defaults to "
                    "seq_cst; state the ordering (relaxed unless this is "
                    "sanctioned synchronization code)"});
          }
        } else {
          static const char* const kOps[] = {"=",  "+=", "-=", "&=", "|=",
                                             "^=", "++", "--"};
          for (const char* op : kOps) {
            if (is_punct(toks[i + 1], op) ||
                (i > 0 && (is_punct(toks[i - 1], "++") ||
                           is_punct(toks[i - 1], "--")))) {
              out.push_back(Violation{
                  f.path, t.line, "atomics-policy",
                  "operator on atomic member '" + t.text +
                      "' is an implicit seq_cst op; spell out "
                      "load/store/fetch_* with an explicit memory_order"});
              break;
            }
          }
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Global rule: lock-order
// ---------------------------------------------------------------------------

namespace {

/// The canonical acquisition order (DESIGN.md "Invariants & static
/// analysis"). Lower rank first; every edge between two pinned mutexes
/// must point down this list. The registry mutex is the leaf: acquirable
/// under anything, never holding anything.
const std::vector<std::string>& pinned_order() {
  static const std::vector<std::string> order = {
      "Server::conns_mutex_",        "Server::ingest_mutex_",
      "TrackerManager::flow_mutex_", "EventQueue::mutex_",
      "Pool::mutex_",                "MetricsRegistry::mutex_"};
  return order;
}

int pinned_rank(const std::string& m) {
  const auto& order = pinned_order();
  const auto it = std::find(order.begin(), order.end(), m);
  return it == order.end() ? -1 : static_cast<int>(it - order.begin());
}

void report_global(const GlobalCtx& ctx, std::vector<Violation>& out,
                   SuppressionTally& used, const std::string& path, int line,
                   const std::string& rule, std::string message) {
  const auto fit = ctx.allows_by_path.find(path);
  if (fit != ctx.allows_by_path.end()) {
    const auto lit = fit->second.find(line);
    if (lit != fit->second.end() &&
        (lit->second.count(rule) || lit->second.count("all"))) {
      ++used[rule];
      return;
    }
  }
  out.push_back(Violation{path, line, rule, std::move(message)});
}

}  // namespace

void check_global(const GlobalCtx& ctx, std::vector<Violation>& out,
                  SuppressionTally& used) {
  // Union of direct-nesting edges and call-resolved edges. Self-edges are
  // dropped: bare-name callee resolution makes `items_.size()` under the
  // queue lock look like EventQueue::size() (which takes the same lock),
  // and a mutex can never order against itself.
  std::vector<LockEdge> edges = ctx.direct_edges;
  for (const PendingLockCall& call : ctx.lock_calls) {
    // Names the standard containers also use (size, find, ...) are
    // unresolvable by bare name — `workers_.size()` under the pool lock
    // must not resolve to EventQueue::size(). Any lock such a method
    // takes inline is still seen by the direct-edge pass.
    if (read_method_whitelist().count(call.callee) > 0) {
      continue;
    }
    const auto it = ctx.fn_acquires.find(call.callee);
    if (it == ctx.fn_acquires.end()) {
      continue;
    }
    for (const std::string& h : call.held) {
      for (const std::string& m : it->second) {
        if (h != m) {
          edges.push_back(LockEdge{h, m, call.path, call.line});
        }
      }
    }
  }

  // One representative site per (from, to) pair.
  std::map<std::pair<std::string, std::string>, const LockEdge*> graph;
  for (const LockEdge& e : edges) {
    graph.emplace(std::make_pair(e.from, e.to), &e);
  }

  // Pinned-order check: an edge between two pinned mutexes must go
  // forward in rank.
  std::set<std::pair<std::string, std::string>> bad;
  for (const auto& [key, e] : graph) {
    const int rf = pinned_rank(e->from);
    const int rt = pinned_rank(e->to);
    if (rf >= 0 && rt >= 0 && rf >= rt) {
      bad.insert(key);
      report_global(ctx, out, used, e->path, e->line, "lock-order",
                    "'" + e->to + "' acquired while holding '" + e->from +
                        "', against the canonical order (conns -> ingest "
                        "-> flow -> queue -> pool -> registry); invert the "
                        "nesting or move the work outside the lock");
    }
  }

  // Cycle detection over the remaining edges (colors: 0 new, 1 on stack,
  // 2 done). Reports every edge of the first cycle found through each
  // back edge.
  std::map<std::string, std::vector<std::pair<std::string, const LockEdge*>>>
      adj;
  for (const auto& [key, e] : graph) {
    if (!bad.count(key)) {
      adj[e->from].push_back({e->to, e});
    }
  }
  std::map<std::string, int> color;
  std::vector<std::pair<std::string, const LockEdge*>> stack;
  std::set<std::pair<std::string, std::string>> reported_cycle_edges;
  std::function<void(const std::string&)> dfs = [&](const std::string& n) {
    color[n] = 1;
    for (const auto& [next, e] : adj[n]) {
      if (color[next] == 1) {
        // Back edge: the cycle is e plus the stack suffix from `next`.
        std::vector<const LockEdge*> cycle;
        bool in_cycle = false;
        for (const auto& [node, se] : stack) {
          if (node == next) {
            in_cycle = true;
          }
          if (in_cycle && se != nullptr) {
            cycle.push_back(se);
          }
        }
        cycle.push_back(e);
        for (const LockEdge* ce : cycle) {
          if (reported_cycle_edges.insert({ce->from, ce->to}).second) {
            report_global(
                ctx, out, used, ce->path, ce->line, "lock-order",
                "acquisition cycle: '" + ce->to + "' taken while holding '" +
                    ce->from +
                    "' is part of a loop in the lock graph; two threads "
                    "interleaving these chains deadlock");
          }
        }
      } else if (color[next] == 0) {
        stack.push_back({next, e});
        dfs(next);
        stack.pop_back();
      }
    }
    color[n] = 2;
  };
  for (const auto& [node, _] : adj) {
    if (color[node] == 0) {
      stack.clear();
      stack.push_back({node, nullptr});
      dfs(node);
    }
  }
}

}  // namespace fluxfp::lint
