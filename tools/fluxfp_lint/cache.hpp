#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace fluxfp::lint {

/// The per-file result of check_file, as stored in the cache. Violations
/// are kept pathless: the key is pure content, so identical files at two
/// paths legitimately share an entry and the caller re-attaches its own
/// display path.
struct CachedFileResult {
  struct Finding {
    int line = 0;
    std::string rule;
    std::string message;
  };
  std::vector<Finding> findings;
  SuppressionTally used;
};

/// FNV-1a 64-bit over a byte string. The cache key; not cryptographic,
/// just stable and collision-resistant enough for a lint cache.
std::uint64_t fnv1a(const std::string& bytes, std::uint64_t seed = 0);

/// Content key of one lexed file: every token (kind, text, line) plus the
/// suppression table. Line numbers are included on purpose — findings
/// carry them, so a pure-whitespace shift must miss the cache.
std::uint64_t file_content_key(const LexedFile& file);

/// Digest of the cross-file context a cached per-file result depends on:
/// class models (structure only, no source positions), FLUXFP_REQUIRES
/// tables, unordered-container names, and the rule-set version. The lock
/// graph is deliberately excluded — lock-order is a global rule computed
/// fresh every run and never cached.
std::uint64_t context_digest(const GlobalCtx& ctx);

/// On-disk cache: `fluxfp-lint-cache v1` header, one block per entry.
/// Load tolerates a missing, truncated, or corrupt file by returning an
/// empty (or partially read) cache — the cache is an accelerator, never a
/// source of truth.
class LintCache {
 public:
  /// Reads `path`. Returns false (empty cache) when unreadable or when
  /// the header/version does not match.
  bool load(const std::string& path);

  /// Writes atomically (temp file + rename). Returns false on I/O errors,
  /// which callers are expected to ignore.
  bool save(const std::string& path) const;

  const CachedFileResult* lookup(std::uint64_t key) const;
  void store(std::uint64_t key, CachedFileResult result);

  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::uint64_t, CachedFileResult> entries_;
};

}  // namespace fluxfp::lint
