#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace fluxfp::lint {

/// Token categories the rules care about. Comments never become tokens —
/// they are routed to the suppression table instead — and a whole
/// preprocessor line collapses into one Preproc token so that, e.g.,
/// `#include <unordered_map>` cannot masquerade as a container
/// declaration.
enum class TokKind {
  kIdent,
  kNumber,
  kString,   // string or char literal, text excludes quotes
  kPunct,    // multi-char operators are max-munched: ::, ==, !=, ->, ...
  kPreproc,  // full directive line, text starts with '#'
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based
};

/// One lexed translation unit plus the side tables rules need.
struct LexedFile {
  std::string path;  // as given to lex_file (repo-relative in practice)
  std::vector<Token> tokens;

  /// line -> rule names allowed on that line via
  ///   // fluxfp-lint: allow(rule[, rule...]) -- optional justification
  /// A suppression comment standing alone on its line applies to the next
  /// line that carries tokens; a trailing comment applies to its own line.
  std::map<int, std::set<std::string>> allows;
};

/// Lexes C++ source text. The lexer is deliberately approximate (no
/// preprocessing, no template disambiguation) but handles comments,
/// string/char literals including raw strings, and digit separators, so
/// rule matching never fires inside a literal or comment.
LexedFile lex(const std::string& path, const std::string& text);

/// Reads and lexes a file. Throws std::runtime_error if unreadable.
LexedFile lex_file(const std::string& path, const std::string& display_path);

}  // namespace fluxfp::lint
