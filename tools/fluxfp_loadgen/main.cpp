// fluxfp_loadgen: replays a FLUXFPT1 trace against a running FXN1 tracking
// service at Nx speed over M concurrent connections.
//
// The trace is partitioned by session: connection c carries every event of
// users u with u % M == c, so each session's events stay on one connection
// and arrive in trace order — the property that makes accepted-event
// folding bit-identical under AdmissionPolicy::kBlock. Connection c
// authenticates as tenant c % T, which matches the server's session->tenant
// map (session s belongs to tenant s % T) exactly when M is a multiple of
// T; the tool enforces that so a foreign-event rejection is always a real
// finding, never a partitioning artifact.
//
// All connections pace against the SAME stream epoch clock (the global
// first event's timestamp), so the offered interleaving across connections
// tracks the recorded one at any speedup. After the replay, one control
// connection fetches METRICS — the server quiesces first, so
// events_processed and the ingest-to-estimate percentiles are exact.
//
// --check turns the report into a gate: nonzero processed events, zero
// error frames, and (kBlock servers) processed == accepted, or exit 1.

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "netio/client.hpp"
#include "stream/trace_io.hpp"

namespace {

using namespace fluxfp;

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

constexpr const char* kUsage =
    "usage: fluxfp_loadgen ADDR --trace PATH [--connections M] "
    "[--tenants T]\n"
    "                      [--speed N] [--batch B] [--token T:TOK]... "
    "[--check]\n"
    "\n"
    "  ADDR              unix:/path/to.sock or tcp:HOST:PORT\n"
    "  --trace PATH      FLUXFPT1 trace to replay (required)\n"
    "  --connections M   concurrent client connections (default 4)\n"
    "  --tenants T       tenant count of the target server (default 1;\n"
    "                    M must be a multiple of T)\n"
    "  --speed N         replay speedup vs trace time (default 10;\n"
    "                    0 = as fast as the server accepts)\n"
    "  --batch B         events per EVENT_BATCH frame (default 64)\n"
    "  --token T:TOK     auth token for tenant T (repeatable)\n"
    "  --check           exit 1 unless the server processed >0 events,\n"
    "                    sent 0 error frames, and processed == accepted\n"
    "\n"
    "exit status: 0 ok, 1 runtime or --check failure, 2 usage error.\n";

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "fluxfp_loadgen: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    usage_error(std::string(flag) + " needs a non-negative integer, got '" +
                text + "'");
  }
  return v;
}

double parse_f64(const char* flag, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    usage_error(std::string(flag) + " needs a number, got '" + text + "'");
  }
  return v;
}

/// One connection's share of the replay and what came back for it.
struct ConnResult {
  std::uint64_t sent = 0;
  netio::BatchAckMsg acks;
  double max_behind = 0.0;
  bool ok = true;
  std::string error;
};

void run_connection(const netio::Endpoint& endpoint, std::uint32_t tenant,
                    std::uint64_t token,
                    const std::vector<stream::FluxEvent>& events,
                    double speed, double epoch_time, std::size_t batch_size,
                    ConnResult& out) {
  netio::Client client;
  if (!client.connect(endpoint, tenant, token)) {
    out.ok = false;
    out.error = client.last_error();
    return;
  }
  stream::ReplayPacer pacer(speed, epoch_time);
  std::vector<stream::FluxEvent> batch;
  batch.reserve(batch_size);
  auto flush = [&]() {
    if (batch.empty()) {
      return true;
    }
    netio::BatchAckMsg ack;
    if (!client.send_batch(batch, ack)) {
      out.ok = false;
      out.error = client.last_error();
      return false;
    }
    out.acks.accepted += ack.accepted;
    out.acks.shed += ack.shed;
    out.acks.unknown += ack.unknown;
    out.acks.foreign += ack.foreign;
    out.acks.closed += ack.closed;
    batch.clear();
    return true;
  };
  for (const stream::FluxEvent& event : events) {
    if (g_stop != 0 ||
        !pacer.pace(event.time, [] { return g_stop != 0; })) {
      break;
    }
    batch.push_back(event);
    ++out.sent;
    if (batch.size() >= batch_size && !flush()) {
      return;
    }
  }
  flush();
  out.max_behind = pacer.max_behind_seconds();
  if (out.ok) {
    client.goodbye();
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string addr;
  std::string trace_path;
  std::size_t connections = 4;
  std::size_t tenants = 1;
  double speed = 10.0;
  std::size_t batch_size = 64;
  bool check = false;
  std::map<std::uint32_t, std::uint64_t> tokens;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage_error(std::string(a) + " needs a value");
      }
      return argv[++i];
    };
    if (!std::strcmp(a, "--trace")) {
      trace_path = value();
    } else if (!std::strcmp(a, "--connections")) {
      connections = parse_u64(a, value());
    } else if (!std::strcmp(a, "--tenants")) {
      tenants = parse_u64(a, value());
    } else if (!std::strcmp(a, "--speed")) {
      speed = parse_f64(a, value());
    } else if (!std::strcmp(a, "--batch")) {
      batch_size = parse_u64(a, value());
    } else if (!std::strcmp(a, "--token")) {
      const std::string pair = value();
      const std::size_t colon = pair.find(':');
      if (colon == std::string::npos) {
        usage_error("--token needs TENANT:TOKEN, got '" + pair + "'");
      }
      tokens[static_cast<std::uint32_t>(
          parse_u64("--token tenant", pair.substr(0, colon)))] =
          parse_u64("--token value", pair.substr(colon + 1));
    } else if (!std::strcmp(a, "--check")) {
      check = true;
    } else if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (a[0] == '-') {
      usage_error(std::string("unknown flag '") + a + "'");
    } else if (addr.empty()) {
      addr = a;
    } else {
      usage_error(std::string("unexpected operand '") + a + "'");
    }
  }
  if (addr.empty()) {
    usage_error("ADDR operand is required");
  }
  if (trace_path.empty()) {
    usage_error("--trace is required");
  }
  if (connections == 0 || tenants == 0 || batch_size == 0) {
    usage_error("--connections/--tenants/--batch must be >= 1");
  }
  if (connections % tenants != 0) {
    usage_error("--connections must be a multiple of --tenants so the "
                "connection->tenant map matches the server's "
                "session->tenant map");
  }
  std::string why;
  const auto endpoint = netio::Endpoint::parse(addr, &why);
  if (!endpoint) {
    usage_error(why);
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::vector<stream::FluxEvent> events;
  try {
    events = stream::read_trace_file(trace_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fluxfp_loadgen: %s\n", e.what());
    return 1;
  }
  if (events.empty()) {
    std::fprintf(stderr, "fluxfp_loadgen: %s holds no events\n",
                 trace_path.c_str());
    return 1;
  }
  double epoch_time = events.front().time;
  for (const stream::FluxEvent& e : events) {
    epoch_time = std::min(epoch_time, e.time);
  }

  // Session-stable partition: all of user u rides connection u % M.
  std::vector<std::vector<stream::FluxEvent>> shares(connections);
  for (const stream::FluxEvent& e : events) {
    shares[e.user % connections].push_back(e);
  }

  std::printf("replaying %zu events from %s to %s\n", events.size(),
              trace_path.c_str(), endpoint->to_string().c_str());
  std::printf("%zu connections over %zu tenants, %.0fx speed, batch %zu\n",
              connections, tenants, speed, batch_size);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<ConnResult> results(connections);
  {
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c) {
      const auto tenant = static_cast<std::uint32_t>(c % tenants);
      const auto it = tokens.find(tenant);
      const std::uint64_t token = it == tokens.end() ? 0 : it->second;
      threads.emplace_back(run_connection, std::cref(*endpoint), tenant,
                           token, std::cref(shares[c]), speed, epoch_time,
                           batch_size, std::ref(results[c]));
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::puts("\nconn  tenant     sent  accepted   shed  unknown  foreign  "
            "closed  lag-ms");
  netio::BatchAckMsg totals;
  std::uint64_t sent_total = 0;
  bool all_ok = true;
  for (std::size_t c = 0; c < connections; ++c) {
    const ConnResult& r = results[c];
    std::printf("%4zu  %6zu  %7llu  %8llu  %5llu  %7llu  %7llu  %6llu  "
                "%6.1f\n",
                c, c % tenants, static_cast<unsigned long long>(r.sent),
                static_cast<unsigned long long>(r.acks.accepted),
                static_cast<unsigned long long>(r.acks.shed),
                static_cast<unsigned long long>(r.acks.unknown),
                static_cast<unsigned long long>(r.acks.foreign),
                static_cast<unsigned long long>(r.acks.closed),
                1e3 * r.max_behind);
    sent_total += r.sent;
    totals.accepted += r.acks.accepted;
    totals.shed += r.acks.shed;
    totals.unknown += r.acks.unknown;
    totals.foreign += r.acks.foreign;
    totals.closed += r.acks.closed;
    if (!r.ok) {
      std::fprintf(stderr, "conn %zu failed: %s\n", c, r.error.c_str());
      all_ok = false;
    }
  }
  std::printf("\noffered %llu events in %.3fs (%.0f events/s aggregate)\n",
              static_cast<unsigned long long>(sent_total), wall,
              wall > 0.0 ? static_cast<double>(sent_total) / wall : 0.0);

  // The control connection quiesces the server, so the processed count and
  // latency percentiles below cover everything accepted above.
  netio::Client control;
  netio::MetricsMsg m;
  const std::uint64_t control_token =
      tokens.empty() ? 0 : tokens.begin()->second;
  const std::uint32_t control_tenant =
      tokens.empty() ? 0 : tokens.begin()->first;
  if (!control.connect(*endpoint, control_tenant, control_token) ||
      !control.metrics(m)) {
    std::fprintf(stderr, "fluxfp_loadgen: metrics fetch failed: %s\n",
                 control.last_error().c_str());
    return 1;
  }
  control.goodbye();
  std::printf("server: %llu accepted, %llu processed, %llu shed, %llu "
              "foreign, %llu error frames, %llu restarts\n",
              static_cast<unsigned long long>(m.events_accepted),
              static_cast<unsigned long long>(m.events_processed),
              static_cast<unsigned long long>(m.events_shed),
              static_cast<unsigned long long>(m.events_foreign),
              static_cast<unsigned long long>(m.error_frames),
              static_cast<unsigned long long>(m.restarts));
  std::printf("ingest-to-estimate us: p50 %.0f  p99 %.0f  max %.0f "
              "(%llu samples)\n",
              m.ingest_p50_us, m.ingest_p99_us, m.ingest_max_us,
              static_cast<unsigned long long>(m.ingest_samples));

  if (check) {
    bool pass = all_ok;
    if (m.events_processed == 0) {
      std::fputs("check: FAIL — server processed no events\n", stderr);
      pass = false;
    }
    if (m.error_frames != 0) {
      std::fprintf(stderr, "check: FAIL — %llu error frames\n",
                   static_cast<unsigned long long>(m.error_frames));
      pass = false;
    }
    if (m.events_processed != m.events_accepted) {
      std::fprintf(stderr,
                   "check: FAIL — processed %llu != accepted %llu\n",
                   static_cast<unsigned long long>(m.events_processed),
                   static_cast<unsigned long long>(m.events_accepted));
      pass = false;
    }
    if (!pass) {
      return 1;
    }
    std::puts("check: PASS");
  }
  return all_ok ? 0 : 1;
}
