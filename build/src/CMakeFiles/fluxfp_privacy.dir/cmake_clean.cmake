file(REMOVE_RECURSE
  "CMakeFiles/fluxfp_privacy.dir/privacy/countermeasure.cpp.o"
  "CMakeFiles/fluxfp_privacy.dir/privacy/countermeasure.cpp.o.d"
  "libfluxfp_privacy.a"
  "libfluxfp_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxfp_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
