file(REMOVE_RECURSE
  "libfluxfp_privacy.a"
)
