
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/countermeasure.cpp" "src/CMakeFiles/fluxfp_privacy.dir/privacy/countermeasure.cpp.o" "gcc" "src/CMakeFiles/fluxfp_privacy.dir/privacy/countermeasure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
