# Empty dependencies file for fluxfp_privacy.
# This may be replaced when dependencies are built.
