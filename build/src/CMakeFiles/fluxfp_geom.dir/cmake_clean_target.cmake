file(REMOVE_RECURSE
  "libfluxfp_geom.a"
)
