# Empty dependencies file for fluxfp_geom.
# This may be replaced when dependencies are built.
