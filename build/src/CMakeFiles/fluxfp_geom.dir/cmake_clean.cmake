file(REMOVE_RECURSE
  "CMakeFiles/fluxfp_geom.dir/geom/field.cpp.o"
  "CMakeFiles/fluxfp_geom.dir/geom/field.cpp.o.d"
  "CMakeFiles/fluxfp_geom.dir/geom/polyline.cpp.o"
  "CMakeFiles/fluxfp_geom.dir/geom/polyline.cpp.o.d"
  "CMakeFiles/fluxfp_geom.dir/geom/sampling.cpp.o"
  "CMakeFiles/fluxfp_geom.dir/geom/sampling.cpp.o.d"
  "libfluxfp_geom.a"
  "libfluxfp_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxfp_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
