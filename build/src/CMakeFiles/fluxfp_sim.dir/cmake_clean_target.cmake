file(REMOVE_RECURSE
  "libfluxfp_sim.a"
)
