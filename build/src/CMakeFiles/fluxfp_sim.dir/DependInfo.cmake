
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/measurement.cpp" "src/CMakeFiles/fluxfp_sim.dir/sim/measurement.cpp.o" "gcc" "src/CMakeFiles/fluxfp_sim.dir/sim/measurement.cpp.o.d"
  "/root/repo/src/sim/mobility.cpp" "src/CMakeFiles/fluxfp_sim.dir/sim/mobility.cpp.o" "gcc" "src/CMakeFiles/fluxfp_sim.dir/sim/mobility.cpp.o.d"
  "/root/repo/src/sim/packet_sim.cpp" "src/CMakeFiles/fluxfp_sim.dir/sim/packet_sim.cpp.o" "gcc" "src/CMakeFiles/fluxfp_sim.dir/sim/packet_sim.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/CMakeFiles/fluxfp_sim.dir/sim/scenario.cpp.o" "gcc" "src/CMakeFiles/fluxfp_sim.dir/sim/scenario.cpp.o.d"
  "/root/repo/src/sim/sniffer.cpp" "src/CMakeFiles/fluxfp_sim.dir/sim/sniffer.cpp.o" "gcc" "src/CMakeFiles/fluxfp_sim.dir/sim/sniffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
