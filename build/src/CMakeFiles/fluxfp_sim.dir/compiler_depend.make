# Empty compiler generated dependencies file for fluxfp_sim.
# This may be replaced when dependencies are built.
