file(REMOVE_RECURSE
  "CMakeFiles/fluxfp_sim.dir/sim/measurement.cpp.o"
  "CMakeFiles/fluxfp_sim.dir/sim/measurement.cpp.o.d"
  "CMakeFiles/fluxfp_sim.dir/sim/mobility.cpp.o"
  "CMakeFiles/fluxfp_sim.dir/sim/mobility.cpp.o.d"
  "CMakeFiles/fluxfp_sim.dir/sim/packet_sim.cpp.o"
  "CMakeFiles/fluxfp_sim.dir/sim/packet_sim.cpp.o.d"
  "CMakeFiles/fluxfp_sim.dir/sim/scenario.cpp.o"
  "CMakeFiles/fluxfp_sim.dir/sim/scenario.cpp.o.d"
  "CMakeFiles/fluxfp_sim.dir/sim/sniffer.cpp.o"
  "CMakeFiles/fluxfp_sim.dir/sim/sniffer.cpp.o.d"
  "libfluxfp_sim.a"
  "libfluxfp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxfp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
