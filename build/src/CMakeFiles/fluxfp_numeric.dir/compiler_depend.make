# Empty compiler generated dependencies file for fluxfp_numeric.
# This may be replaced when dependencies are built.
