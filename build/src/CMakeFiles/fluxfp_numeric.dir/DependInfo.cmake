
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/hungarian.cpp" "src/CMakeFiles/fluxfp_numeric.dir/numeric/hungarian.cpp.o" "gcc" "src/CMakeFiles/fluxfp_numeric.dir/numeric/hungarian.cpp.o.d"
  "/root/repo/src/numeric/linalg.cpp" "src/CMakeFiles/fluxfp_numeric.dir/numeric/linalg.cpp.o" "gcc" "src/CMakeFiles/fluxfp_numeric.dir/numeric/linalg.cpp.o.d"
  "/root/repo/src/numeric/lm.cpp" "src/CMakeFiles/fluxfp_numeric.dir/numeric/lm.cpp.o" "gcc" "src/CMakeFiles/fluxfp_numeric.dir/numeric/lm.cpp.o.d"
  "/root/repo/src/numeric/matrix.cpp" "src/CMakeFiles/fluxfp_numeric.dir/numeric/matrix.cpp.o" "gcc" "src/CMakeFiles/fluxfp_numeric.dir/numeric/matrix.cpp.o.d"
  "/root/repo/src/numeric/nnls.cpp" "src/CMakeFiles/fluxfp_numeric.dir/numeric/nnls.cpp.o" "gcc" "src/CMakeFiles/fluxfp_numeric.dir/numeric/nnls.cpp.o.d"
  "/root/repo/src/numeric/stats.cpp" "src/CMakeFiles/fluxfp_numeric.dir/numeric/stats.cpp.o" "gcc" "src/CMakeFiles/fluxfp_numeric.dir/numeric/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
