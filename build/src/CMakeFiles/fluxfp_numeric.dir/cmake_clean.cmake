file(REMOVE_RECURSE
  "CMakeFiles/fluxfp_numeric.dir/numeric/hungarian.cpp.o"
  "CMakeFiles/fluxfp_numeric.dir/numeric/hungarian.cpp.o.d"
  "CMakeFiles/fluxfp_numeric.dir/numeric/linalg.cpp.o"
  "CMakeFiles/fluxfp_numeric.dir/numeric/linalg.cpp.o.d"
  "CMakeFiles/fluxfp_numeric.dir/numeric/lm.cpp.o"
  "CMakeFiles/fluxfp_numeric.dir/numeric/lm.cpp.o.d"
  "CMakeFiles/fluxfp_numeric.dir/numeric/matrix.cpp.o"
  "CMakeFiles/fluxfp_numeric.dir/numeric/matrix.cpp.o.d"
  "CMakeFiles/fluxfp_numeric.dir/numeric/nnls.cpp.o"
  "CMakeFiles/fluxfp_numeric.dir/numeric/nnls.cpp.o.d"
  "CMakeFiles/fluxfp_numeric.dir/numeric/stats.cpp.o"
  "CMakeFiles/fluxfp_numeric.dir/numeric/stats.cpp.o.d"
  "libfluxfp_numeric.a"
  "libfluxfp_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxfp_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
