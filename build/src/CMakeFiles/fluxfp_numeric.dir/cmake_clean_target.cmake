file(REMOVE_RECURSE
  "libfluxfp_numeric.a"
)
