# Empty compiler generated dependencies file for fluxfp_trace.
# This may be replaced when dependencies are built.
