file(REMOVE_RECURSE
  "CMakeFiles/fluxfp_trace.dir/trace/ap.cpp.o"
  "CMakeFiles/fluxfp_trace.dir/trace/ap.cpp.o.d"
  "CMakeFiles/fluxfp_trace.dir/trace/format.cpp.o"
  "CMakeFiles/fluxfp_trace.dir/trace/format.cpp.o.d"
  "CMakeFiles/fluxfp_trace.dir/trace/generator.cpp.o"
  "CMakeFiles/fluxfp_trace.dir/trace/generator.cpp.o.d"
  "CMakeFiles/fluxfp_trace.dir/trace/replay.cpp.o"
  "CMakeFiles/fluxfp_trace.dir/trace/replay.cpp.o.d"
  "libfluxfp_trace.a"
  "libfluxfp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxfp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
