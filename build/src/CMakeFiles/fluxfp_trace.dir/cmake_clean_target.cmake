file(REMOVE_RECURSE
  "libfluxfp_trace.a"
)
