file(REMOVE_RECURSE
  "libfluxfp_net.a"
)
