# Empty dependencies file for fluxfp_net.
# This may be replaced when dependencies are built.
