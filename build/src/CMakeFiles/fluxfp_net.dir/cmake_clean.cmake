file(REMOVE_RECURSE
  "CMakeFiles/fluxfp_net.dir/net/deployment.cpp.o"
  "CMakeFiles/fluxfp_net.dir/net/deployment.cpp.o.d"
  "CMakeFiles/fluxfp_net.dir/net/flux.cpp.o"
  "CMakeFiles/fluxfp_net.dir/net/flux.cpp.o.d"
  "CMakeFiles/fluxfp_net.dir/net/graph.cpp.o"
  "CMakeFiles/fluxfp_net.dir/net/graph.cpp.o.d"
  "CMakeFiles/fluxfp_net.dir/net/io.cpp.o"
  "CMakeFiles/fluxfp_net.dir/net/io.cpp.o.d"
  "CMakeFiles/fluxfp_net.dir/net/routing.cpp.o"
  "CMakeFiles/fluxfp_net.dir/net/routing.cpp.o.d"
  "libfluxfp_net.a"
  "libfluxfp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxfp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
