# Empty dependencies file for fluxfp_core.
# This may be replaced when dependencies are built.
