file(REMOVE_RECURSE
  "libfluxfp_core.a"
)
