file(REMOVE_RECURSE
  "CMakeFiles/fluxfp_core.dir/core/adversary.cpp.o"
  "CMakeFiles/fluxfp_core.dir/core/adversary.cpp.o.d"
  "CMakeFiles/fluxfp_core.dir/core/baseline.cpp.o"
  "CMakeFiles/fluxfp_core.dir/core/baseline.cpp.o.d"
  "CMakeFiles/fluxfp_core.dir/core/briefing.cpp.o"
  "CMakeFiles/fluxfp_core.dir/core/briefing.cpp.o.d"
  "CMakeFiles/fluxfp_core.dir/core/flux_model.cpp.o"
  "CMakeFiles/fluxfp_core.dir/core/flux_model.cpp.o.d"
  "CMakeFiles/fluxfp_core.dir/core/identity.cpp.o"
  "CMakeFiles/fluxfp_core.dir/core/identity.cpp.o.d"
  "CMakeFiles/fluxfp_core.dir/core/localizer.cpp.o"
  "CMakeFiles/fluxfp_core.dir/core/localizer.cpp.o.d"
  "CMakeFiles/fluxfp_core.dir/core/nls.cpp.o"
  "CMakeFiles/fluxfp_core.dir/core/nls.cpp.o.d"
  "CMakeFiles/fluxfp_core.dir/core/smc.cpp.o"
  "CMakeFiles/fluxfp_core.dir/core/smc.cpp.o.d"
  "CMakeFiles/fluxfp_core.dir/core/smooth_localizer.cpp.o"
  "CMakeFiles/fluxfp_core.dir/core/smooth_localizer.cpp.o.d"
  "CMakeFiles/fluxfp_core.dir/core/trajectory.cpp.o"
  "CMakeFiles/fluxfp_core.dir/core/trajectory.cpp.o.d"
  "CMakeFiles/fluxfp_core.dir/core/user_count.cpp.o"
  "CMakeFiles/fluxfp_core.dir/core/user_count.cpp.o.d"
  "libfluxfp_core.a"
  "libfluxfp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxfp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
