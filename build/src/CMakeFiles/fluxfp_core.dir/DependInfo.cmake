
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adversary.cpp" "src/CMakeFiles/fluxfp_core.dir/core/adversary.cpp.o" "gcc" "src/CMakeFiles/fluxfp_core.dir/core/adversary.cpp.o.d"
  "/root/repo/src/core/baseline.cpp" "src/CMakeFiles/fluxfp_core.dir/core/baseline.cpp.o" "gcc" "src/CMakeFiles/fluxfp_core.dir/core/baseline.cpp.o.d"
  "/root/repo/src/core/briefing.cpp" "src/CMakeFiles/fluxfp_core.dir/core/briefing.cpp.o" "gcc" "src/CMakeFiles/fluxfp_core.dir/core/briefing.cpp.o.d"
  "/root/repo/src/core/flux_model.cpp" "src/CMakeFiles/fluxfp_core.dir/core/flux_model.cpp.o" "gcc" "src/CMakeFiles/fluxfp_core.dir/core/flux_model.cpp.o.d"
  "/root/repo/src/core/identity.cpp" "src/CMakeFiles/fluxfp_core.dir/core/identity.cpp.o" "gcc" "src/CMakeFiles/fluxfp_core.dir/core/identity.cpp.o.d"
  "/root/repo/src/core/localizer.cpp" "src/CMakeFiles/fluxfp_core.dir/core/localizer.cpp.o" "gcc" "src/CMakeFiles/fluxfp_core.dir/core/localizer.cpp.o.d"
  "/root/repo/src/core/nls.cpp" "src/CMakeFiles/fluxfp_core.dir/core/nls.cpp.o" "gcc" "src/CMakeFiles/fluxfp_core.dir/core/nls.cpp.o.d"
  "/root/repo/src/core/smc.cpp" "src/CMakeFiles/fluxfp_core.dir/core/smc.cpp.o" "gcc" "src/CMakeFiles/fluxfp_core.dir/core/smc.cpp.o.d"
  "/root/repo/src/core/smooth_localizer.cpp" "src/CMakeFiles/fluxfp_core.dir/core/smooth_localizer.cpp.o" "gcc" "src/CMakeFiles/fluxfp_core.dir/core/smooth_localizer.cpp.o.d"
  "/root/repo/src/core/trajectory.cpp" "src/CMakeFiles/fluxfp_core.dir/core/trajectory.cpp.o" "gcc" "src/CMakeFiles/fluxfp_core.dir/core/trajectory.cpp.o.d"
  "/root/repo/src/core/user_count.cpp" "src/CMakeFiles/fluxfp_core.dir/core/user_count.cpp.o" "gcc" "src/CMakeFiles/fluxfp_core.dir/core/user_count.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
