file(REMOVE_RECURSE
  "libfluxfp_eval.a"
)
