file(REMOVE_RECURSE
  "CMakeFiles/fluxfp_eval.dir/eval/config.cpp.o"
  "CMakeFiles/fluxfp_eval.dir/eval/config.cpp.o.d"
  "CMakeFiles/fluxfp_eval.dir/eval/experiment.cpp.o"
  "CMakeFiles/fluxfp_eval.dir/eval/experiment.cpp.o.d"
  "CMakeFiles/fluxfp_eval.dir/eval/metrics.cpp.o"
  "CMakeFiles/fluxfp_eval.dir/eval/metrics.cpp.o.d"
  "CMakeFiles/fluxfp_eval.dir/eval/table.cpp.o"
  "CMakeFiles/fluxfp_eval.dir/eval/table.cpp.o.d"
  "libfluxfp_eval.a"
  "libfluxfp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxfp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
