# Empty compiler generated dependencies file for fluxfp_eval.
# This may be replaced when dependencies are built.
