
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/numeric/test_hungarian.cpp" "tests/CMakeFiles/test_numeric.dir/numeric/test_hungarian.cpp.o" "gcc" "tests/CMakeFiles/test_numeric.dir/numeric/test_hungarian.cpp.o.d"
  "/root/repo/tests/numeric/test_linalg.cpp" "tests/CMakeFiles/test_numeric.dir/numeric/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/test_numeric.dir/numeric/test_linalg.cpp.o.d"
  "/root/repo/tests/numeric/test_lm.cpp" "tests/CMakeFiles/test_numeric.dir/numeric/test_lm.cpp.o" "gcc" "tests/CMakeFiles/test_numeric.dir/numeric/test_lm.cpp.o.d"
  "/root/repo/tests/numeric/test_matrix.cpp" "tests/CMakeFiles/test_numeric.dir/numeric/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_numeric.dir/numeric/test_matrix.cpp.o.d"
  "/root/repo/tests/numeric/test_nnls.cpp" "tests/CMakeFiles/test_numeric.dir/numeric/test_nnls.cpp.o" "gcc" "tests/CMakeFiles/test_numeric.dir/numeric/test_nnls.cpp.o.d"
  "/root/repo/tests/numeric/test_properties.cpp" "tests/CMakeFiles/test_numeric.dir/numeric/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_numeric.dir/numeric/test_properties.cpp.o.d"
  "/root/repo/tests/numeric/test_stats.cpp" "tests/CMakeFiles/test_numeric.dir/numeric/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_numeric.dir/numeric/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxfp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
