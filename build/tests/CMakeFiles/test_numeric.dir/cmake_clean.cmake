file(REMOVE_RECURSE
  "CMakeFiles/test_numeric.dir/numeric/test_hungarian.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/test_hungarian.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/test_linalg.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/test_linalg.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/test_lm.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/test_lm.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/test_matrix.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/test_matrix.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/test_nnls.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/test_nnls.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/test_properties.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/test_properties.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/test_stats.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/test_stats.cpp.o.d"
  "test_numeric"
  "test_numeric.pdb"
  "test_numeric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
