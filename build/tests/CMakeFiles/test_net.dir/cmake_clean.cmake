file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/test_clustered.cpp.o"
  "CMakeFiles/test_net.dir/net/test_clustered.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_deployment.cpp.o"
  "CMakeFiles/test_net.dir/net/test_deployment.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_flux.cpp.o"
  "CMakeFiles/test_net.dir/net/test_flux.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_graph.cpp.o"
  "CMakeFiles/test_net.dir/net/test_graph.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_invariants.cpp.o"
  "CMakeFiles/test_net.dir/net/test_invariants.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_io.cpp.o"
  "CMakeFiles/test_net.dir/net/test_io.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_multipath.cpp.o"
  "CMakeFiles/test_net.dir/net/test_multipath.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_routing.cpp.o"
  "CMakeFiles/test_net.dir/net/test_routing.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
