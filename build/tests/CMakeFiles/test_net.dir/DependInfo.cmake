
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_clustered.cpp" "tests/CMakeFiles/test_net.dir/net/test_clustered.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_clustered.cpp.o.d"
  "/root/repo/tests/net/test_deployment.cpp" "tests/CMakeFiles/test_net.dir/net/test_deployment.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_deployment.cpp.o.d"
  "/root/repo/tests/net/test_flux.cpp" "tests/CMakeFiles/test_net.dir/net/test_flux.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_flux.cpp.o.d"
  "/root/repo/tests/net/test_graph.cpp" "tests/CMakeFiles/test_net.dir/net/test_graph.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_graph.cpp.o.d"
  "/root/repo/tests/net/test_invariants.cpp" "tests/CMakeFiles/test_net.dir/net/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_invariants.cpp.o.d"
  "/root/repo/tests/net/test_io.cpp" "tests/CMakeFiles/test_net.dir/net/test_io.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_io.cpp.o.d"
  "/root/repo/tests/net/test_multipath.cpp" "tests/CMakeFiles/test_net.dir/net/test_multipath.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_multipath.cpp.o.d"
  "/root/repo/tests/net/test_routing.cpp" "tests/CMakeFiles/test_net.dir/net/test_routing.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxfp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
