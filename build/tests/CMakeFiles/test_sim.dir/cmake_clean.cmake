file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_gauss_markov.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_gauss_markov.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_measurement.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_measurement.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_mobility.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_mobility.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_packet_sim.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_packet_sim.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_scenario.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_scenario.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_sniffer.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_sniffer.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
