
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_gauss_markov.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_gauss_markov.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_gauss_markov.cpp.o.d"
  "/root/repo/tests/sim/test_measurement.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_measurement.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_measurement.cpp.o.d"
  "/root/repo/tests/sim/test_mobility.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_mobility.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_mobility.cpp.o.d"
  "/root/repo/tests/sim/test_packet_sim.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_packet_sim.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_packet_sim.cpp.o.d"
  "/root/repo/tests/sim/test_scenario.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_scenario.cpp.o.d"
  "/root/repo/tests/sim/test_sniffer.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_sniffer.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_sniffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxfp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
