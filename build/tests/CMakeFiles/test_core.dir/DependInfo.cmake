
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_adversary.cpp" "tests/CMakeFiles/test_core.dir/core/test_adversary.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_adversary.cpp.o.d"
  "/root/repo/tests/core/test_alt_localizers.cpp" "tests/CMakeFiles/test_core.dir/core/test_alt_localizers.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_alt_localizers.cpp.o.d"
  "/root/repo/tests/core/test_baseline.cpp" "tests/CMakeFiles/test_core.dir/core/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_baseline.cpp.o.d"
  "/root/repo/tests/core/test_briefing.cpp" "tests/CMakeFiles/test_core.dir/core/test_briefing.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_briefing.cpp.o.d"
  "/root/repo/tests/core/test_flux_model.cpp" "tests/CMakeFiles/test_core.dir/core/test_flux_model.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_flux_model.cpp.o.d"
  "/root/repo/tests/core/test_identity.cpp" "tests/CMakeFiles/test_core.dir/core/test_identity.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_identity.cpp.o.d"
  "/root/repo/tests/core/test_localizer.cpp" "tests/CMakeFiles/test_core.dir/core/test_localizer.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_localizer.cpp.o.d"
  "/root/repo/tests/core/test_nls.cpp" "tests/CMakeFiles/test_core.dir/core/test_nls.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_nls.cpp.o.d"
  "/root/repo/tests/core/test_noise_robustness.cpp" "tests/CMakeFiles/test_core.dir/core/test_noise_robustness.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_noise_robustness.cpp.o.d"
  "/root/repo/tests/core/test_smc.cpp" "tests/CMakeFiles/test_core.dir/core/test_smc.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_smc.cpp.o.d"
  "/root/repo/tests/core/test_smooth_localizer.cpp" "tests/CMakeFiles/test_core.dir/core/test_smooth_localizer.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_smooth_localizer.cpp.o.d"
  "/root/repo/tests/core/test_trajectory.cpp" "tests/CMakeFiles/test_core.dir/core/test_trajectory.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_trajectory.cpp.o.d"
  "/root/repo/tests/core/test_user_count.cpp" "tests/CMakeFiles/test_core.dir/core/test_user_count.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_user_count.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxfp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
