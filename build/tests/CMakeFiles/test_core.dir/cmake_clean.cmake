file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_adversary.cpp.o"
  "CMakeFiles/test_core.dir/core/test_adversary.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_alt_localizers.cpp.o"
  "CMakeFiles/test_core.dir/core/test_alt_localizers.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_baseline.cpp.o"
  "CMakeFiles/test_core.dir/core/test_baseline.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_briefing.cpp.o"
  "CMakeFiles/test_core.dir/core/test_briefing.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_flux_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_flux_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_identity.cpp.o"
  "CMakeFiles/test_core.dir/core/test_identity.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_localizer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_localizer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_nls.cpp.o"
  "CMakeFiles/test_core.dir/core/test_nls.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_noise_robustness.cpp.o"
  "CMakeFiles/test_core.dir/core/test_noise_robustness.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_smc.cpp.o"
  "CMakeFiles/test_core.dir/core/test_smc.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_smooth_localizer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_smooth_localizer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_trajectory.cpp.o"
  "CMakeFiles/test_core.dir/core/test_trajectory.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_user_count.cpp.o"
  "CMakeFiles/test_core.dir/core/test_user_count.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
