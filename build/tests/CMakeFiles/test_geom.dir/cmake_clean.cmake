file(REMOVE_RECURSE
  "CMakeFiles/test_geom.dir/geom/test_circle_field.cpp.o"
  "CMakeFiles/test_geom.dir/geom/test_circle_field.cpp.o.d"
  "CMakeFiles/test_geom.dir/geom/test_field.cpp.o"
  "CMakeFiles/test_geom.dir/geom/test_field.cpp.o.d"
  "CMakeFiles/test_geom.dir/geom/test_polyline.cpp.o"
  "CMakeFiles/test_geom.dir/geom/test_polyline.cpp.o.d"
  "CMakeFiles/test_geom.dir/geom/test_sampling.cpp.o"
  "CMakeFiles/test_geom.dir/geom/test_sampling.cpp.o.d"
  "CMakeFiles/test_geom.dir/geom/test_vec2.cpp.o"
  "CMakeFiles/test_geom.dir/geom/test_vec2.cpp.o.d"
  "test_geom"
  "test_geom.pdb"
  "test_geom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
