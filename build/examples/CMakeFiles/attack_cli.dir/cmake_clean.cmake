file(REMOVE_RECURSE
  "CMakeFiles/attack_cli.dir/attack_cli.cpp.o"
  "CMakeFiles/attack_cli.dir/attack_cli.cpp.o.d"
  "attack_cli"
  "attack_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
