# Empty compiler generated dependencies file for attack_cli.
# This may be replaced when dependencies are built.
