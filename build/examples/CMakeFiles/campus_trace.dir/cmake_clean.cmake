file(REMOVE_RECURSE
  "CMakeFiles/campus_trace.dir/campus_trace.cpp.o"
  "CMakeFiles/campus_trace.dir/campus_trace.cpp.o.d"
  "campus_trace"
  "campus_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
