# Empty dependencies file for campus_trace.
# This may be replaced when dependencies are built.
