file(REMOVE_RECURSE
  "CMakeFiles/track_intruders.dir/track_intruders.cpp.o"
  "CMakeFiles/track_intruders.dir/track_intruders.cpp.o.d"
  "track_intruders"
  "track_intruders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/track_intruders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
