# Empty compiler generated dependencies file for track_intruders.
# This may be replaced when dependencies are built.
