# Empty dependencies file for flux_briefing.
# This may be replaced when dependencies are built.
