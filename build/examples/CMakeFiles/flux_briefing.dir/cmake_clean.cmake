file(REMOVE_RECURSE
  "CMakeFiles/flux_briefing.dir/flux_briefing.cpp.o"
  "CMakeFiles/flux_briefing.dir/flux_briefing.cpp.o.d"
  "flux_briefing"
  "flux_briefing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_briefing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
