# Empty compiler generated dependencies file for exp_fig7_tracking_cases.
# This may be replaced when dependencies are built.
