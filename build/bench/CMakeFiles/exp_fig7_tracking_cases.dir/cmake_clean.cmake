file(REMOVE_RECURSE
  "CMakeFiles/exp_fig7_tracking_cases.dir/exp_fig7_tracking_cases.cpp.o"
  "CMakeFiles/exp_fig7_tracking_cases.dir/exp_fig7_tracking_cases.cpp.o.d"
  "exp_fig7_tracking_cases"
  "exp_fig7_tracking_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig7_tracking_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
