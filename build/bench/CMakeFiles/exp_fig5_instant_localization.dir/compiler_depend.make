# Empty compiler generated dependencies file for exp_fig5_instant_localization.
# This may be replaced when dependencies are built.
