file(REMOVE_RECURSE
  "CMakeFiles/exp_fig5_instant_localization.dir/exp_fig5_instant_localization.cpp.o"
  "CMakeFiles/exp_fig5_instant_localization.dir/exp_fig5_instant_localization.cpp.o.d"
  "exp_fig5_instant_localization"
  "exp_fig5_instant_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig5_instant_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
