# Empty dependencies file for exp_fig4_briefing.
# This may be replaced when dependencies are built.
