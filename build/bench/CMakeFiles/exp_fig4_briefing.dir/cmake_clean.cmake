file(REMOVE_RECURSE
  "CMakeFiles/exp_fig4_briefing.dir/exp_fig4_briefing.cpp.o"
  "CMakeFiles/exp_fig4_briefing.dir/exp_fig4_briefing.cpp.o.d"
  "exp_fig4_briefing"
  "exp_fig4_briefing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig4_briefing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
