file(REMOVE_RECURSE
  "CMakeFiles/exp_fig8_tracking_sweep.dir/exp_fig8_tracking_sweep.cpp.o"
  "CMakeFiles/exp_fig8_tracking_sweep.dir/exp_fig8_tracking_sweep.cpp.o.d"
  "exp_fig8_tracking_sweep"
  "exp_fig8_tracking_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig8_tracking_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
