# Empty dependencies file for exp_fig8_tracking_sweep.
# This may be replaced when dependencies are built.
