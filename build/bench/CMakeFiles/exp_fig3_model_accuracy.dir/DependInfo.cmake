
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_fig3_model_accuracy.cpp" "bench/CMakeFiles/exp_fig3_model_accuracy.dir/exp_fig3_model_accuracy.cpp.o" "gcc" "bench/CMakeFiles/exp_fig3_model_accuracy.dir/exp_fig3_model_accuracy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fluxfp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fluxfp_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
