file(REMOVE_RECURSE
  "CMakeFiles/exp_fig3_model_accuracy.dir/exp_fig3_model_accuracy.cpp.o"
  "CMakeFiles/exp_fig3_model_accuracy.dir/exp_fig3_model_accuracy.cpp.o.d"
  "exp_fig3_model_accuracy"
  "exp_fig3_model_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig3_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
