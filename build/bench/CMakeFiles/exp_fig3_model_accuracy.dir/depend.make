# Empty dependencies file for exp_fig3_model_accuracy.
# This may be replaced when dependencies are built.
