# Empty compiler generated dependencies file for exp_fig3_model_accuracy.
# This may be replaced when dependencies are built.
