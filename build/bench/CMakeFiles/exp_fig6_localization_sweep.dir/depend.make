# Empty dependencies file for exp_fig6_localization_sweep.
# This may be replaced when dependencies are built.
