file(REMOVE_RECURSE
  "CMakeFiles/exp_fig6_localization_sweep.dir/exp_fig6_localization_sweep.cpp.o"
  "CMakeFiles/exp_fig6_localization_sweep.dir/exp_fig6_localization_sweep.cpp.o.d"
  "exp_fig6_localization_sweep"
  "exp_fig6_localization_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig6_localization_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
