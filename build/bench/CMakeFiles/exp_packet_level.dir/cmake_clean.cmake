file(REMOVE_RECURSE
  "CMakeFiles/exp_packet_level.dir/exp_packet_level.cpp.o"
  "CMakeFiles/exp_packet_level.dir/exp_packet_level.cpp.o.d"
  "exp_packet_level"
  "exp_packet_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_packet_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
