# Empty compiler generated dependencies file for exp_packet_level.
# This may be replaced when dependencies are built.
