# Empty dependencies file for exp_fig10_trace_driven.
# This may be replaced when dependencies are built.
