file(REMOVE_RECURSE
  "CMakeFiles/exp_fig10_trace_driven.dir/exp_fig10_trace_driven.cpp.o"
  "CMakeFiles/exp_fig10_trace_driven.dir/exp_fig10_trace_driven.cpp.o.d"
  "exp_fig10_trace_driven"
  "exp_fig10_trace_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig10_trace_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
