# SIMD backend selection for the candidate-evaluation kernels.
#
# Exactly one translation unit (src/numeric/simd/kernels.cpp) is compiled
# with architecture flags; everything else in the tree stays on the default
# target so object files remain portable. The chosen backend is exported as:
#
#   FLUXFP_SIMD_BACKEND       - "AVX2", "SSE2", "NEON", or "SCALAR"
#   FLUXFP_SIMD_KERNEL_FLAGS  - compile options for kernels.cpp only
#   FLUXFP_SIMD_KERNEL_DEFS   - compile definitions for kernels.cpp only
#
# FLUXFP_SIMD=OFF is the strict-determinism mode: the scalar backend
# reproduces the pre-SIMD tree bit for bit (see DESIGN.md section 14).
# AUTO probes, in order, AVX2 then SSE2 then NEON with run tests, so a
# baked baseline never selects an ISA the build host cannot execute.

include(CheckCXXSourceRuns)

set(FLUXFP_SIMD "AUTO" CACHE STRING
    "SIMD backend for numeric kernels: AUTO, AVX2, SSE2, NEON, or OFF")
set_property(CACHE FLUXFP_SIMD PROPERTY STRINGS AUTO AVX2 SSE2 NEON OFF)

set(_fluxfp_avx2_src "
#include <immintrin.h>
int main() {
  __m256d a = _mm256_set1_pd(2.0);
  __m256d b = _mm256_mul_pd(a, a);
  double out[4];
  _mm256_storeu_pd(out, b);
  return out[3] == 4.0 ? 0 : 1;
}
")

set(_fluxfp_sse2_src "
#include <emmintrin.h>
int main() {
  __m128d a = _mm_set1_pd(2.0);
  __m128d b = _mm_mul_pd(a, a);
  double out[2];
  _mm_storeu_pd(out, b);
  return out[1] == 4.0 ? 0 : 1;
}
")

set(_fluxfp_neon_src "
#include <arm_neon.h>
int main() {
  float64x2_t a = vdupq_n_f64(2.0);
  float64x2_t b = vmulq_f64(a, a);
  return vgetq_lane_f64(b, 1) == 4.0 ? 0 : 1;
}
")

function(_fluxfp_probe_simd flags source result_var)
  set(CMAKE_REQUIRED_FLAGS "${flags}")
  check_cxx_source_runs("${source}" ${result_var})
endfunction()

set(FLUXFP_SIMD_BACKEND "SCALAR")
set(FLUXFP_SIMD_KERNEL_FLAGS "")
set(FLUXFP_SIMD_KERNEL_DEFS "")

if(NOT FLUXFP_SIMD STREQUAL "OFF")
  if(FLUXFP_SIMD STREQUAL "AVX2" OR FLUXFP_SIMD STREQUAL "AUTO")
    _fluxfp_probe_simd("-mavx2" "${_fluxfp_avx2_src}" FLUXFP_SIMD_HAS_AVX2)
    if(FLUXFP_SIMD_HAS_AVX2)
      set(FLUXFP_SIMD_BACKEND "AVX2")
      set(FLUXFP_SIMD_KERNEL_FLAGS "-mavx2")
      set(FLUXFP_SIMD_KERNEL_DEFS "FLUXFP_SIMD_AVX2")
    elseif(FLUXFP_SIMD STREQUAL "AVX2")
      message(FATAL_ERROR "FLUXFP_SIMD=AVX2 requested but an AVX2 test "
                          "program failed to compile or run on this host")
    endif()
  endif()
  if(FLUXFP_SIMD_BACKEND STREQUAL "SCALAR"
     AND (FLUXFP_SIMD STREQUAL "SSE2" OR FLUXFP_SIMD STREQUAL "AUTO"))
    _fluxfp_probe_simd("" "${_fluxfp_sse2_src}" FLUXFP_SIMD_HAS_SSE2)
    if(FLUXFP_SIMD_HAS_SSE2)
      set(FLUXFP_SIMD_BACKEND "SSE2")
      set(FLUXFP_SIMD_KERNEL_FLAGS "")
      set(FLUXFP_SIMD_KERNEL_DEFS "FLUXFP_SIMD_SSE2")
    elseif(FLUXFP_SIMD STREQUAL "SSE2")
      message(FATAL_ERROR "FLUXFP_SIMD=SSE2 requested but an SSE2 test "
                          "program failed to compile or run on this host")
    endif()
  endif()
  if(FLUXFP_SIMD_BACKEND STREQUAL "SCALAR"
     AND (FLUXFP_SIMD STREQUAL "NEON" OR FLUXFP_SIMD STREQUAL "AUTO"))
    _fluxfp_probe_simd("" "${_fluxfp_neon_src}" FLUXFP_SIMD_HAS_NEON)
    if(FLUXFP_SIMD_HAS_NEON)
      set(FLUXFP_SIMD_BACKEND "NEON")
      set(FLUXFP_SIMD_KERNEL_FLAGS "")
      set(FLUXFP_SIMD_KERNEL_DEFS "FLUXFP_SIMD_NEON")
    elseif(FLUXFP_SIMD STREQUAL "NEON")
      message(FATAL_ERROR "FLUXFP_SIMD=NEON requested but a NEON test "
                          "program failed to compile or run on this host")
    endif()
  endif()
endif()

# The kernel TU must never see FMA contraction: element-wise lanes are
# documented to round exactly like the scalar formulas.
if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  list(APPEND FLUXFP_SIMD_KERNEL_FLAGS "-ffp-contract=off")
endif()

message(STATUS "fluxfp SIMD backend: ${FLUXFP_SIMD_BACKEND} "
               "(FLUXFP_SIMD=${FLUXFP_SIMD})")
