// Figure 3 — accuracy of the network flux model (§3.B).
//
// (a) CDF of the per-node approximation error rate |F_model - F| / F for
//     uniform random networks of 2500 nodes at average degrees ~12/16/27.
//     Paper: 80%+ of nodes below 0.4 error rate; denser networks do better.
// (b) Measured vs modeled flux by hop distance from the sink (degree ~12);
//     nodes >= 3 hops away fit much better yet still carry > 70% of the
//     flux energy.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <numbers>
#include <vector>

#include "bench_util.hpp"
#include "eval/table.hpp"
#include "net/deployment.hpp"
#include "net/flux.hpp"
#include "net/routing.hpp"
#include "numeric/stats.hpp"

using namespace fluxfp;

namespace {

struct ErrorSample {
  std::vector<double> error_rates;                 // per node, flux > 0
  std::vector<double> measured_by_hop;             // mean per hop
  std::vector<double> modeled_by_hop;              // mean per hop
  std::vector<double> err_by_hop;                  // mean error rate per hop
  double energy_beyond_3 = 0.0;
};

/// Builds one 2500-node random network at the target average degree,
/// roots a tree at a random sink, and compares smoothed measured flux
/// against the model with the empirical r.
ErrorSample run_once(double degree, std::uint64_t seed) {
  const std::size_t n = 2500;
  const geom::RectField field(50.0, 50.0);  // density 1 node per unit area
  const double radius = std::sqrt(degree / std::numbers::pi);
  geom::Rng rng(seed);
  eval::NetworkSpec spec;
  spec.kind = net::DeploymentKind::kUniformRandom;
  spec.nodes = n;
  spec.radius = radius;
  const net::UnitDiskGraph graph =
      eval::build_connected_network(spec, field, rng);

  const geom::Vec2 sink = geom::uniform_in_disc(field.center(), 10.0, rng);
  const net::CollectionTree tree =
      net::build_collection_tree(graph, sink, rng);
  const double r = net::average_hop_length(graph, tree);
  const net::FluxMap raw = net::tree_flux(tree, 1.0);
  // §3.B's neighborhood averaging; a second pass further damps the
  // randomness of tree construction toward the continuum model.
  const net::FluxMap flux =
      net::smooth_flux(graph, net::smooth_flux(graph, raw));
  const core::FluxModel model(field, r);

  // The paper fits s/r as one integrated factor (§4.A) rather than
  // computing r physically; do the same via least squares over all nodes.
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    if (!tree.reachable(i)) {
      continue;
    }
    const double phi = model.shape(sink, graph.position(i));
    num += phi * flux[i];
    den += phi * phi;
  }
  const double scale = den > 0.0 ? num / den : 0.0;

  ErrorSample out;
  const int max_hop = 18;
  std::vector<double> m_sum(max_hop + 1, 0.0), f_sum(max_hop + 1, 0.0),
      e_sum(max_hop + 1, 0.0);
  std::vector<int> cnt(max_hop + 1, 0);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    if (!tree.reachable(i) || flux[i] <= 0.0) {
      continue;
    }
    const double predicted = scale * model.shape(sink, graph.position(i));
    const double err = std::abs(predicted - flux[i]) / flux[i];
    out.error_rates.push_back(err);
    const int h = std::min(tree.hop[i], max_hop);
    m_sum[h] += flux[i];
    f_sum[h] += predicted;
    e_sum[h] += err;
    ++cnt[h];
  }
  for (int h = 0; h <= max_hop; ++h) {
    out.measured_by_hop.push_back(cnt[h] ? m_sum[h] / cnt[h] : 0.0);
    out.modeled_by_hop.push_back(cnt[h] ? f_sum[h] / cnt[h] : 0.0);
    out.err_by_hop.push_back(cnt[h] ? e_sum[h] / cnt[h] : 0.0);
  }
  out.energy_beyond_3 = net::flux_energy_fraction_beyond(tree, raw, 3);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const int trials = opts.quick ? 1 : 3;

  eval::print_banner(std::cout, "Figure 3(a): CDF of model approximation "
                             "error rate (2500-node random networks)");
  const std::vector<double> degrees{12.0, 16.0, 27.0};
  std::vector<std::vector<double>> pooled(degrees.size());
  std::vector<double> energy3;
  for (std::size_t d = 0; d < degrees.size(); ++d) {
    for (int t = 0; t < trials; ++t) {
      const ErrorSample s = run_once(
          degrees[d], eval::derive_seed(opts.seed, {d, static_cast<std::uint64_t>(t)}));
      pooled[d].insert(pooled[d].end(), s.error_rates.begin(),
                       s.error_rates.end());
      if (d == 0) {
        energy3.push_back(s.energy_beyond_3);
      }
    }
  }
  eval::Table cdf({"error rate", "deg~12", "deg~16", "deg~27"});
  for (double x = 0.1; x <= 2.0001; x += 0.1) {
    std::vector<std::string> row{eval::Table::fmt(x, 1)};
    for (auto& sample : pooled) {
      const numeric::EmpiricalCdf c(sample);
      row.push_back(eval::Table::fmt(c.evaluate(x), 3));
    }
    cdf.add_row(row);
  }
  cdf.print(std::cout);
  for (std::size_t d = 0; d < degrees.size(); ++d) {
    const numeric::EmpiricalCdf c(pooled[d]);
    std::printf("deg~%.0f: %.1f%% of nodes below 0.4 error rate "
                "(paper: 80%%+)\n",
                degrees[d], 100.0 * c.evaluate(0.4));
  }

  eval::print_banner(std::cout, "Figure 3(b): measured vs modeled flux by hop "
                             "(degree ~12)");
  const ErrorSample s =
      run_once(12.0, eval::derive_seed(opts.seed, {99}));
  eval::Table byhop({"hop", "measured", "modeled", "err rate"});
  for (std::size_t h = 1; h < s.measured_by_hop.size(); ++h) {
    if (s.measured_by_hop[h] <= 0.0) {
      continue;
    }
    byhop.add_row({std::to_string(h), eval::Table::fmt(s.measured_by_hop[h]),
                   eval::Table::fmt(s.modeled_by_hop[h]),
                   eval::Table::fmt(s.err_by_hop[h], 3)});
  }
  byhop.print(std::cout);
  std::printf("flux energy carried by nodes >= 3 hops from the sink: "
              "%.1f%% (paper: > 70%%)\n",
              100.0 * numeric::mean(energy3));
  return 0;
}
