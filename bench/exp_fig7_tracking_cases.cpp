// Figure 7 — instant tracking cases (§5.B).
//
// Mobile users move along straight trajectories through the 900-node
// network; the SMC tracker (N=1000, M=10, v_max=5/round) estimates their
// positions every round from 10% flux samples. Per-round identity-free
// errors are printed for (a) one user, (b) two users, (c) three users,
// and (d) two users whose trajectories cross — where identities may mix
// while positions stay accurate.

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/smc.hpp"
#include "eval/metrics.hpp"
#include "eval/table.hpp"
#include "numeric/stats.hpp"
#include "sim/scenario.hpp"
#include "sim/sniffer.hpp"

using namespace fluxfp;

namespace {

sim::SimUser line_user(geom::Vec2 from, geom::Vec2 to, double stretch,
                       int rounds) {
  sim::SimUser u;
  u.stretch = stretch;
  u.mobility = std::make_shared<sim::PathMobility>(
      geom::Polyline({from, to}), geom::distance(from, to) / rounds);
  return u;
}

struct Case {
  const char* name;
  std::vector<sim::SimUser> users;
};

/// Per-round identity-free errors, averaged over trials.
std::vector<double> run_case(const Case& c, const geom::RectField& field,
                             int rounds, int trials, std::uint64_t seed) {
  std::vector<double> per_round(static_cast<std::size_t>(rounds), 0.0);
  for (int t = 0; t < trials; ++t) {
    geom::Rng rng(eval::derive_seed(seed, {static_cast<std::uint64_t>(t)}));
    const bench::Testbed tb({}, field, rng);
    sim::ScenarioConfig scfg;
    scfg.rounds = rounds;
    const auto obs = sim::run_scenario(tb.graph, c.users, scfg, rng);
    const auto samples =
        sim::sample_nodes_fraction(tb.graph.size(), 0.10, rng);
    core::SmcConfig tcfg;  // paper: N=1000, M=10, vmax=5
    core::SmcTracker tracker(field, c.users.size(), tcfg, rng);
    for (std::size_t roundI = 0; roundI < obs.size(); ++roundI) {
      const core::SparseObjective obj = eval::make_objective(
          tb.model, tb.graph, obs[roundI].flux, samples);
      tracker.step(obs[roundI].time, obj, rng);
      std::vector<geom::Vec2> est;
      for (std::size_t u = 0; u < c.users.size(); ++u) {
        est.push_back(tracker.estimate(u));
      }
      per_round[roundI] +=
          eval::matched_mean_error(est, obs[roundI].true_positions);
    }
  }
  for (double& v : per_round) {
    v /= trials;
  }
  return per_round;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const int trials = opts.quick ? 2 : 6;
  const int rounds = 10;
  const geom::RectField field = bench::paper_field();

  std::vector<Case> cases;
  cases.push_back({"(a) 1 user",
                   {line_user({4, 6}, {26, 24}, 2.0, rounds)}});
  cases.push_back({"(b) 2 users",
                   {line_user({3, 8}, {27, 8}, 2.0, rounds),
                    line_user({27, 22}, {3, 22}, 2.5, rounds)}});
  cases.push_back({"(c) 3 users",
                   {line_user({3, 5}, {27, 5}, 2.0, rounds),
                    line_user({27, 15}, {3, 15}, 1.5, rounds),
                    line_user({3, 25}, {27, 25}, 2.5, rounds)}});
  cases.push_back({"(d) 2 users crossing",
                   {line_user({3, 3}, {27, 27}, 2.0, rounds),
                    line_user({27, 3}, {3, 27}, 2.0, rounds)}});

  eval::print_banner(std::cout,
                     "Figure 7: SMC tracking (N=1000, M=10, vmax=5, 10 "
                     "rounds, 10% sampling) — identity-free error per "
                     "round");
  eval::Table table({"round", "(a) 1 user", "(b) 2 users", "(c) 3 users",
                     "(d) crossing"});
  std::vector<std::vector<double>> series;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    series.push_back(run_case(cases[i], field, rounds, trials,
                              eval::derive_seed(opts.seed, {i})));
  }
  for (int roundI = 0; roundI < rounds; ++roundI) {
    std::vector<std::string> row{std::to_string(roundI + 1)};
    for (const auto& s : series) {
      row.push_back(
          eval::Table::fmt(s[static_cast<std::size_t>(roundI)]));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::puts("(paper: estimates converge from initial deviations; final "
            "error below ~2; in (d) identities mix at the intersection "
            "but positions stay accurate)");
  return 0;
}
