// Packet-level validation of the flux abstraction (§3.A).
//
// The paper's flux is an abstraction over per-node frame counts in an
// observation window ΔT. The discrete-event packet simulator provides the
// mechanistic ground truth; this harness verifies:
//   (1) lossless frame counts reproduce the analytic tree flux exactly;
//   (2) a full 900-node collection's makespan fits a "seconds"-level ΔT
//       (the paper's stated bound) across traffic stretches;
//   (3) localization accuracy from *packet-count* observations matches the
//       analytic-flux pipeline, and degrades gracefully with link loss.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/localizer.hpp"
#include "eval/table.hpp"
#include "net/routing.hpp"
#include "numeric/stats.hpp"
#include "sim/packet_sim.hpp"
#include "sim/sniffer.hpp"

using namespace fluxfp;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const int trials = opts.quick ? 2 : 6;
  const geom::RectField field = bench::paper_field();

  // ---- (1) + (2): equivalence and makespan ---------------------------
  eval::print_banner(std::cout,
                     "Packet-level vs analytic flux (900-node grid, "
                     "1 ms frames)");
  eval::Table eq({"stretch", "max |tx - analytic|", "makespan (s)",
                  "delivered"});
  {
    geom::Rng rng(eval::derive_seed(opts.seed, {1}));
    const bench::Testbed tb({}, field, rng);
    for (double stretch : {1.0, 2.0, 3.0}) {
      const net::CollectionTree tree = net::build_collection_tree(
          tb.graph, geom::uniform_in_field(field, rng), rng);
      const sim::PacketLevelSimulator sim;
      const sim::PacketSimResult res =
          sim.simulate(tb.graph, tree, stretch, rng);
      const net::FluxMap analytic = net::tree_flux(tree, stretch);
      double max_dev = 0.0;
      for (std::size_t i = 0; i < tb.graph.size(); ++i) {
        if (i == tree.root) {
          continue;  // the root absorbs for the sink by construction
        }
        max_dev = std::max(max_dev,
                           std::abs(res.tx_counts[i] - analytic[i]));
      }
      eq.add_row({eval::Table::fmt(stretch, 0), eval::Table::fmt(max_dev, 1),
                  eval::Table::fmt(res.makespan, 3),
                  std::to_string(res.delivered) + "/" +
                      std::to_string(res.generated)});
    }
  }
  eq.print(std::cout);
  std::puts("(lossless packet counts == stretch x subtree size exactly; a "
            "whole collection completes well inside a seconds-level ΔT, "
            "§3.A)");

  // ---- (3): localization from packet counts under loss ---------------
  eval::print_banner(std::cout,
                     "Localization from sniffed packet counts vs link "
                     "loss (1 user, 10% sampling)");
  eval::Table loss_tab({"loss prob", "mean err", "delivered frac"});
  for (double loss : {0.0, 0.1, 0.3}) {
    numeric::RunningStats errs;
    numeric::RunningStats delivered;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(eval::derive_seed(
          opts.seed, {2, static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(loss * 100)}));
      const bench::Testbed tb({}, field, rng);
      const geom::Vec2 truth = geom::uniform_in_field(field, rng);
      const net::CollectionTree tree =
          net::build_collection_tree(tb.graph, truth, rng);
      sim::PacketSimConfig pcfg;
      pcfg.loss_prob = loss;
      const sim::PacketLevelSimulator sim(pcfg);
      const sim::PacketSimResult res =
          sim.simulate(tb.graph, tree, 2.0, rng);
      delivered.add(static_cast<double>(res.delivered) /
                    static_cast<double>(std::max<std::size_t>(
                        res.generated, 1)));
      // The sniffed observable: per-node frame counts.
      const auto samples =
          sim::sample_nodes_fraction(tb.graph.size(), 0.10, rng);
      const core::SparseObjective obj =
          eval::make_objective(tb.model, tb.graph, res.tx_counts, samples);
      core::LocalizerConfig lcfg;
      lcfg.candidates_per_user = 5000;
      const core::InstantLocalizer loc(field, lcfg);
      errs.add(geom::distance(loc.localize(obj, 1, rng).positions[0],
                              truth));
    }
    loss_tab.add_row({eval::Table::fmt(loss, 1),
                      eval::Table::fmt(errs.mean()),
                      eval::Table::fmt(delivered.mean(), 2)});
  }
  loss_tab.print(std::cout);
  std::puts("(the attack needs only frame *counts*; even heavy link loss "
            "leaves the spatial flux pattern intact enough to localize)");
  return 0;
}
