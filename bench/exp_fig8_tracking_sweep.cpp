// Figure 8 — tracking accuracy sweeps (§5.B).
//
// Final-round tracking error of the SMC tracker:
// (a) vs percentage of sampling nodes (40/20/10/5%), 1–4 users — stable
//     until below ~5%;
// (b) vs network density (900–1800 nodes, 90 reports) — no significant
//     effect.

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/smc.hpp"
#include "eval/metrics.hpp"
#include "eval/table.hpp"
#include "numeric/stats.hpp"
#include "sim/scenario.hpp"
#include "sim/sniffer.hpp"

using namespace fluxfp;

namespace {

/// Straight random trajectories whose speed stays below vmax = 5/round.
std::vector<sim::SimUser> random_users(std::size_t k, int rounds,
                                       const geom::RectField& field,
                                       geom::Rng& rng) {
  std::uniform_real_distribution<double> stretch(1.0, 3.0);
  std::vector<sim::SimUser> users;
  for (std::size_t j = 0; j < k; ++j) {
    const geom::Vec2 from = geom::uniform_in_field(field, rng);
    geom::Vec2 to = geom::uniform_in_field(field, rng);
    // Cap the per-round displacement at 4 (< vmax).
    const double d = geom::distance(from, to);
    const double max_d = 4.0 * rounds;
    if (d > max_d) {
      to = from + (to - from) * (max_d / d);
    }
    sim::SimUser u;
    u.stretch = stretch(rng);
    u.mobility = std::make_shared<sim::PathMobility>(
        geom::Polyline({from, to}), geom::distance(from, to) / rounds);
    users.push_back(std::move(u));
  }
  return users;
}

/// Final-round identity-free error.
double run_instance(const eval::NetworkSpec& spec,
                    const geom::RectField& field, std::size_t k,
                    double fraction, std::size_t fixed_reports, int rounds,
                    std::uint64_t seed) {
  geom::Rng rng(seed);
  const bench::Testbed tb(spec, field, rng);
  const auto users = random_users(k, rounds, field, rng);
  sim::ScenarioConfig scfg;
  scfg.rounds = rounds;
  const auto obs = sim::run_scenario(tb.graph, users, scfg, rng);
  const auto samples =
      fixed_reports > 0
          ? sim::sample_nodes(tb.graph.size(), fixed_reports, rng)
          : sim::sample_nodes_fraction(tb.graph.size(), fraction, rng);
  core::SmcConfig tcfg;
  core::SmcTracker tracker(field, k, tcfg, rng);
  double final_err = 0.0;
  for (const auto& o : obs) {
    const core::SparseObjective obj =
        eval::make_objective(tb.model, tb.graph, o.flux, samples);
    tracker.step(o.time, obj, rng);
    std::vector<geom::Vec2> est;
    for (std::size_t u = 0; u < k; ++u) {
      est.push_back(tracker.estimate(u));
    }
    final_err = eval::matched_mean_error(est, o.true_positions);
  }
  return final_err;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const int trials = opts.quick ? 2 : 5;
  const int rounds = 10;
  const geom::RectField field = bench::paper_field();

  eval::print_banner(std::cout,
                     "Figure 8(a): final tracking error vs percentage of "
                     "sampling nodes");
  eval::Table a({"% nodes", "1 user", "2 users", "3 users", "4 users"});
  for (double pct : {40.0, 20.0, 10.0, 5.0, 2.0}) {
    std::vector<std::string> row{eval::Table::fmt(pct, 0)};
    for (std::size_t k = 1; k <= 4; ++k) {
      // Trials are independent (per-trial derived seeds), so they fan out
      // over the thread pool; slot t keeps trial t's error, making the
      // mean identical to the serial loop at any thread count.
      const std::vector<double> errs = eval::run_trials(
          static_cast<std::size_t>(trials), [&](std::size_t t) {
            return run_instance(
                {}, field, k, pct / 100.0, 0, rounds,
                eval::derive_seed(opts.seed,
                                  {static_cast<std::uint64_t>(pct * 10), k, t}));
          });
      row.push_back(eval::Table::fmt(numeric::mean(errs)));
    }
    a.add_row(row);
  }
  bench::emit_table(a, opts, "fig8a");
  std::puts("(paper: accuracy stable until sampling drops below ~5%)");

  eval::print_banner(std::cout,
                     "Figure 8(b): final tracking error vs network density "
                     "(90 reports fixed)");
  eval::Table b({"nodes", "1 user", "2 users", "3 users", "4 users"});
  for (std::size_t nodes : {900u, 1200u, 1500u, 1800u}) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (std::size_t k = 1; k <= 4; ++k) {
      const std::vector<double> errs = eval::run_trials(
          static_cast<std::size_t>(trials), [&](std::size_t t) {
            eval::NetworkSpec spec;
            spec.nodes = nodes;
            return run_instance(
                spec, field, k, 0.0, 90, rounds,
                eval::derive_seed(opts.seed, {nodes, k, t}));
          });
      row.push_back(eval::Table::fmt(numeric::mean(errs)));
    }
    b.add_row(row);
  }
  bench::emit_table(b, opts, "fig8b");
  std::puts("(paper: density does not significantly affect tracking "
            "accuracy)");
  return 0;
}
