// Cross-model evaluation — the pluggable observation-model harness.
//
// Runs the same localization task through all three sensing backends:
//   flux          — tree-traffic fingerprints at sniffed nodes (the paper);
//   rss-link      — link-crossing RSS attenuation on sniffer pairs
//                   (Patwari & Wilson's ellipse gate);
//   passive-trace — binary detection events with a quadratic
//                   detection-radius falloff.
// Each backend forward-generates noise-free readings on its own site
// geometry (points for flux/passive, link endpoint pairs for RSS), fits
// them with the identical SparseObjective + InstantLocalizer machinery,
// and reports the top-candidate error over eval::run_trials — so the
// table is a direct check that the model seam, not flux-specific code,
// carries the pipeline. A short SMC tracking run per backend exercises
// the sequential path the same way.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/localizer.hpp"
#include "core/observation_model.hpp"
#include "core/passive_trace_model.hpp"
#include "core/rss_link_model.hpp"
#include "core/smc.hpp"
#include "eval/models.hpp"
#include "net/links.hpp"
#include "numeric/stats.hpp"

using namespace fluxfp;

namespace {

/// Site geometry of one backend on one deployed network.
std::vector<core::Site> sites_for(const core::ObservationModel& model,
                                  const net::UnitDiskGraph& graph) {
  if (model.sites_are_links()) {
    // Every 4th link keeps the column count near the point backends'
    // (~18/2 links per node otherwise) without biasing the geometry.
    const std::vector<net::Link> all = net::enumerate_links(graph);
    std::vector<net::Link> kept;
    for (std::size_t i = 0; i < all.size(); i += 4) {
      kept.push_back(all[i]);
    }
    return eval::link_sites(graph, kept);
  }
  std::vector<geom::Vec2> positions(graph.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    positions[i] = graph.position(i);
  }
  return eval::point_sites(positions);
}

double instant_trial(const core::ObservationModel& model,
                     const geom::RectField& field, std::uint64_t seed,
                     std::size_t candidates) {
  geom::Rng rng(seed);
  const net::UnitDiskGraph graph =
      eval::build_connected_network({}, field, rng);
  const std::vector<core::Site> sites = sites_for(model, graph);

  const geom::Vec2 user = geom::uniform_in_field(field, rng);
  std::uniform_real_distribution<double> stretch(1.0, 3.0);
  const double s = stretch(rng);
  const std::vector<double> readings =
      eval::forward_readings(model, sites, {&user, 1}, {&s, 1});

  const core::SparseObjective obj(model, sites, readings);
  core::LocalizerConfig config;
  config.candidates_per_user = candidates;
  const core::InstantLocalizer loc(field, config);
  const core::LocalizationResult res = loc.localize(obj, 1, rng);
  return geom::distance(res.positions[0], user);
}

double tracked_error(const core::ObservationModel& model,
                     const geom::RectField& field, std::uint64_t seed,
                     int rounds) {
  geom::Rng rng(seed);
  const net::UnitDiskGraph graph =
      eval::build_connected_network({}, field, rng);
  const std::vector<core::Site> sites = sites_for(model, graph);

  geom::Vec2 user = geom::uniform_in_field(field, rng);
  std::uniform_real_distribution<double> jitter(-0.4, 0.4);
  core::SmcConfig config;
  config.num_predictions = 400;
  core::SmcTracker tracker(field, 1, config, rng);
  double err = 0.0;
  for (int t = 1; t <= rounds; ++t) {
    user = field.clamp(
        geom::Vec2{user.x + jitter(rng), user.y + jitter(rng)});
    const double s = 2.0;
    const std::vector<double> readings =
        eval::forward_readings(model, sites, {&user, 1}, {&s, 1});
    const core::SparseObjective obj(model, sites, readings);
    tracker.step(static_cast<double>(t), obj, rng);
    err = geom::distance(tracker.estimate(0), user);
  }
  return err;  // error after the final round, once the filter has locked on
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const int trials = opts.quick ? 2 : 8;
  const std::size_t candidates = opts.quick ? 2000 : 10000;
  const int rounds = opts.quick ? 8 : 25;
  const geom::RectField field = bench::paper_field();

  eval::print_banner(std::cout,
                     "Cross-model evaluation: one localization pipeline, "
                     "three sensing backends");

  // d_min for the flux model comes from one probe deployment, like the
  // figure harnesses do.
  geom::Rng probe_rng(eval::derive_seed(opts.seed, {99}));
  const bench::Testbed probe({}, field, probe_rng);
  const core::FluxModel flux = probe.model;
  const core::RssLinkModel rss(/*lambda=*/1.0, /*min_link_length=*/0.05);
  const core::PassiveTraceModel passive(/*detection_radius=*/4.0);
  const core::ObservationModel* models[] = {&flux, &rss, &passive};

  eval::Table table({"model", "sites", "avg inst err", "max inst err",
                     "tracked err"});
  bool all_finite = true;
  for (std::size_t m = 0; m < 3; ++m) {
    const core::ObservationModel& model = *models[m];
    const std::vector<double> errors = eval::run_trials(
        static_cast<std::size_t>(trials), [&](std::size_t t) {
          return instant_trial(
              model, field,
              eval::derive_seed(opts.seed, {m, static_cast<std::uint64_t>(t)}),
              candidates);
        });
    const double tracked =
        tracked_error(model, field, eval::derive_seed(opts.seed, {m, 1000}),
                      rounds);
    for (double e : errors) {
      all_finite = all_finite && std::isfinite(e);
    }
    all_finite = all_finite && std::isfinite(tracked);

    // Site count of a representative deployment, for the table only.
    geom::Rng rng(eval::derive_seed(opts.seed, {m, 0}));
    const net::UnitDiskGraph graph =
        eval::build_connected_network({}, field, rng);
    table.add_row({core::model_name(model.id()),
                   std::to_string(sites_for(model, graph).size()),
                   eval::Table::fmt(numeric::mean(errors)),
                   eval::Table::fmt(*std::max_element(errors.begin(),
                                                      errors.end())),
                   eval::Table::fmt(tracked)});
  }
  bench::emit_table(table, opts, "exp_models");
  std::printf("(%d instances per row, %zu candidates/user, %d SMC rounds; "
              "noise-free forward readings)\n",
              trials, candidates, rounds);
  if (!all_finite) {
    std::fprintf(stderr, "exp_models: non-finite error metric — a model "
                         "backend produced garbage through the shared "
                         "pipeline\n");
    return 1;
  }
  return 0;
}
