// Figures 1 & 4 — briefing the full network flux (§3.C).
//
// Three users collect simultaneously on the standard 900-node network;
// the recursive briefing extracts one user per round (global peak ->
// model fit -> subtraction). The table reports, per round, the residual
// peak fraction and the extracted position's error — the quantitative
// content of the Fig. 4 maps.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/briefing.hpp"
#include "eval/metrics.hpp"
#include "eval/table.hpp"
#include "net/routing.hpp"
#include "numeric/stats.hpp"
#include "sim/measurement.hpp"

using namespace fluxfp;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const int trials = opts.quick ? 2 : 10;
  const geom::RectField field = bench::paper_field();

  eval::print_banner(std::cout,
                     "Figure 4: recursive briefing of 3 mixed users "
                     "(900-node perturbed grid, full flux map)");

  std::vector<double> final_errors;
  std::vector<std::vector<double>> peak_fraction(4);  // after round 0..3
  std::vector<std::vector<double>> round_err(3);
  for (int t = 0; t < trials; ++t) {
    geom::Rng rng(eval::derive_seed(opts.seed, {static_cast<std::uint64_t>(t)}));
    const bench::Testbed tb({}, field, rng);

    // Three users at random well-separated positions, stretches U[1,3].
    std::uniform_real_distribution<double> stretch(1.0, 3.0);
    std::vector<geom::Vec2> sinks;
    while (sinks.size() < 3) {
      const geom::Vec2 p = geom::uniform_in_field(field, rng);
      bool ok = true;
      for (const geom::Vec2& q : sinks) {
        ok = ok && geom::distance(p, q) > 8.0;
      }
      if (ok) {
        sinks.push_back(p);
      }
    }
    const sim::FluxEngine engine(tb.graph);
    std::vector<sim::Collection> window;
    for (std::size_t j = 0; j < sinks.size(); ++j) {
      window.push_back({j, sinks[j], stretch(rng)});
    }
    net::FluxMap working = engine.measure(window, rng);
    const double peak0 =
        *std::max_element(working.begin(), working.end());
    peak_fraction[0].push_back(1.0);

    core::BriefingConfig bcfg;
    bcfg.max_users = 3;
    const core::FluxBriefing briefing(tb.graph, tb.model, bcfg);
    std::vector<geom::Vec2> found;
    for (int round = 0; round < 3; ++round) {
      const core::BriefedUser u = briefing.extract_dominant(working);
      found.push_back(u.position);
      peak_fraction[static_cast<std::size_t>(round) + 1].push_back(
          *std::max_element(working.begin(), working.end()) / peak0);
      // Error of this extraction against its nearest unclaimed truth.
      double best = 1e18;
      for (const geom::Vec2& s : sinks) {
        best = std::min(best, geom::distance(u.position, s));
      }
      round_err[static_cast<std::size_t>(round)].push_back(best);
    }
    final_errors.push_back(eval::matched_mean_error(found, sinks));
  }

  eval::Table table({"round", "residual peak / original", "extraction err"});
  for (int round = 0; round < 3; ++round) {
    table.add_row(
        {std::to_string(round + 1),
         eval::Table::fmt(
             numeric::mean(peak_fraction[static_cast<std::size_t>(round) + 1]),
             3),
         eval::Table::fmt(
             numeric::mean(round_err[static_cast<std::size_t>(round)]))});
  }
  table.print(std::cout);
  std::printf("mean matched position error over %d trials: %.2f "
              "(flux mixing notwithstanding — cf. Fig. 4)\n",
              trials, numeric::mean(final_errors));
  return 0;
}
