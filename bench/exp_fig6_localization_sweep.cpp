// Figure 6 — localization accuracy sweeps (§5.A).
//
// (a) error vs percentage of sampling nodes (40/20/10/5%), 1–4 users.
//     Paper @10%: 1.23 / 1.52 / 1.84 / 2.01; robust until ~10%, dramatic
//     blow-up below 5%.
// (b) error vs network density (900–1800 nodes, 90 reports fixed): density
//     helps slightly but the impact is limited.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/localizer.hpp"
#include "eval/metrics.hpp"
#include "eval/table.hpp"
#include "numeric/stats.hpp"
#include "sim/measurement.hpp"
#include "sim/sniffer.hpp"

using namespace fluxfp;

namespace {

/// One localization instance; returns the matched mean error of the best
/// estimates.
double run_instance(const eval::NetworkSpec& spec,
                    const geom::RectField& field, std::size_t k,
                    double fraction, std::size_t fixed_reports,
                    std::uint64_t seed) {
  geom::Rng rng(seed);
  const bench::Testbed tb(spec, field, rng);
  std::uniform_real_distribution<double> stretch(1.0, 3.0);
  std::vector<geom::Vec2> sinks;
  std::vector<sim::Collection> window;
  for (std::size_t j = 0; j < k; ++j) {
    sinks.push_back(geom::uniform_in_field(field, rng));
    window.push_back({j, sinks[j], stretch(rng)});
  }
  const sim::FluxEngine engine(tb.graph);
  const net::FluxMap flux = engine.measure(window, rng);
  const auto samples =
      fixed_reports > 0
          ? sim::sample_nodes(tb.graph.size(), fixed_reports, rng)
          : sim::sample_nodes_fraction(tb.graph.size(), fraction, rng);
  const core::SparseObjective obj =
      eval::make_objective(tb.model, tb.graph, flux, samples);
  const core::InstantLocalizer loc(field);
  const core::LocalizationResult res = loc.localize(obj, k, rng);
  return eval::matched_mean_error(res.positions, sinks);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const int trials = opts.quick ? 2 : 8;
  const geom::RectField field = bench::paper_field();

  eval::print_banner(std::cout,
                     "Figure 6(a): localization error vs percentage of "
                     "sampling nodes (900-node perturbed grid)");
  eval::Table a({"% nodes", "1 user", "2 users", "3 users", "4 users"});
  for (double pct : {40.0, 20.0, 10.0, 5.0, 2.0}) {
    std::vector<std::string> row{eval::Table::fmt(pct, 0)};
    for (std::size_t k = 1; k <= 4; ++k) {
      // Independent per-trial seeds: trials fan out over the thread pool
      // and slot t keeps trial t's error, so the mean matches the serial
      // loop at any thread count.
      const std::vector<double> errs = eval::run_trials(
          static_cast<std::size_t>(trials), [&](std::size_t t) {
            return run_instance(
                {}, field, k, pct / 100.0, 0,
                eval::derive_seed(opts.seed,
                                  {static_cast<std::uint64_t>(pct * 10), k, t}));
          });
      row.push_back(eval::Table::fmt(numeric::mean(errs)));
    }
    a.add_row(row);
  }
  bench::emit_table(a, opts, "fig6a");
  std::puts("(paper @10%: 1.23 / 1.52 / 1.84 / 2.01; dramatic increase "
            "below 5%)");

  eval::print_banner(std::cout,
                     "Figure 6(b): localization error vs network density "
                     "(90 node reports fixed)");
  eval::Table b({"nodes", "1 user", "2 users", "3 users", "4 users"});
  for (std::size_t nodes : {900u, 1200u, 1500u, 1800u}) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (std::size_t k = 1; k <= 4; ++k) {
      const std::vector<double> errs = eval::run_trials(
          static_cast<std::size_t>(trials), [&](std::size_t t) {
            eval::NetworkSpec spec;
            spec.nodes = nodes;
            return run_instance(spec, field, k, 0.0, 90,
                                eval::derive_seed(opts.seed, {nodes, k, t}));
          });
      row.push_back(eval::Table::fmt(numeric::mean(errs)));
    }
    b.add_row(row);
  }
  bench::emit_table(b, opts, "fig6b");
  std::puts("(paper: error decreases slightly with density; impact is "
            "fairly limited)");
  return 0;
}
