// Fault tolerance — degradation curves of the localization pipeline under
// injected faults (not a paper figure; robustness validation).
//
// (a) localization error vs sniffer outage rate, masked-missing fit vs the
//     seed's zero-poisoned fit — masking must win from 10% outage up;
// (b) localization error vs fraction of crashed nodes (flux generated over
//     the surviving subnetwork only) — graceful degradation, no cliff;
// (c) localization error vs fraction of byzantine sniffers, plain NLS vs
//     the Huber-reweighted robust fit;
// (d) tracking timeline across a 3-round total sniffer blackout during
//     which the user relocates: the seed-style tracker (zero-filled
//     readings, no recovery) stays lost, divergence recovery re-acquires.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/localizer.hpp"
#include "core/smc.hpp"
#include "eval/table.hpp"
#include "net/flux.hpp"
#include "sim/faults.hpp"
#include "sim/measurement.hpp"
#include "sim/sniffer.hpp"

using namespace fluxfp;

namespace {

struct TrialWorld {
  geom::Vec2 truth;
  std::vector<std::size_t> samples;
  std::vector<double> readings;  // smoothed, gathered, pre-fault
};

/// One clean single-user window on the testbed: truth, sniffers, readings.
TrialWorld clean_window(const bench::Testbed& tb, const geom::Field& field,
                        geom::Rng& rng) {
  TrialWorld w;
  w.truth = geom::uniform_in_field(field, rng);
  const sim::FluxEngine engine(tb.graph);
  const std::vector<sim::Collection> window{{0, w.truth, 2.0}};
  const net::FluxMap flux = engine.measure(window, rng);
  w.samples = sim::sample_nodes_fraction(tb.graph.size(), 0.10, rng);
  w.readings = eval::sniffed_readings(tb.graph, flux, w.samples);
  return w;
}

double localize_error(const bench::Testbed& tb, const geom::Field& field,
                      const TrialWorld& w, std::vector<double> readings,
                      const core::LocalizerConfig& cfg, geom::Rng& rng) {
  const auto obj = eval::make_objective_from_readings(tb.model, tb.graph,
                                                      w.samples,
                                                      std::move(readings));
  const core::InstantLocalizer loc(field, cfg);
  return geom::distance(loc.localize(obj, 1, rng).positions[0], w.truth);
}

void sweep_outage(const bench::Options& opts, const bench::Testbed& tb,
                  const geom::RectField& field, int trials,
                  const core::LocalizerConfig& cfg) {
  eval::print_banner(std::cout, "(a) sniffer outage: masked vs zero-poisoned");
  eval::Table table({"outage %", "masked err", "zero-poisoned err"});
  for (const double outage : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    double masked = 0.0;
    double zeroed = 0.0;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(eval::derive_seed(opts.seed, {1, static_cast<std::uint64_t>(t)}));
      const TrialWorld w = clean_window(tb, field, rng);
      std::vector<double> corrupted = w.readings;
      sim::FaultPlan plan;
      plan.seed = eval::derive_seed(
          opts.seed, {2, static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(outage * 100)});
      plan.outage_prob = outage;
      sim::FaultInjector inj(plan, tb.graph.size(), w.samples);
      inj.corrupt(corrupted);
      std::vector<double> zero_filled = corrupted;
      net::zero_fill_missing(zero_filled);
      geom::Rng rng_m(eval::derive_seed(opts.seed, {3, static_cast<std::uint64_t>(t)}));
      geom::Rng rng_z(eval::derive_seed(opts.seed, {3, static_cast<std::uint64_t>(t)}));
      masked += localize_error(tb, field, w, corrupted, cfg, rng_m);
      zeroed += localize_error(tb, field, w, zero_filled, cfg, rng_z);
    }
    table.add_row({eval::Table::fmt(outage * 100, 0),
                   eval::Table::fmt(masked / trials),
                   eval::Table::fmt(zeroed / trials)});
  }
  bench::emit_table(table, opts, "fault_outage");
}

void sweep_crashes(const bench::Options& opts, const bench::Testbed& tb,
                   const geom::RectField& field, int trials,
                   const core::LocalizerConfig& cfg) {
  eval::print_banner(std::cout, "(b) node crashes: surviving-network flux");
  eval::Table table({"crashed %", "err", "masked sniffers"});
  for (const double crash : {0.0, 0.1, 0.2, 0.3}) {
    double err = 0.0;
    double masked_sniffers = 0.0;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(eval::derive_seed(opts.seed, {4, static_cast<std::uint64_t>(t)}));
      const geom::Vec2 truth = geom::uniform_in_field(field, rng);
      const auto samples =
          sim::sample_nodes_fraction(tb.graph.size(), 0.10, rng);
      sim::FaultPlan plan;
      plan.seed = eval::derive_seed(
          opts.seed, {5, static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(crash * 100)});
      plan.crash_fraction = crash;
      sim::FaultInjector inj(plan, tb.graph.size(), samples);
      // Flux is generated over the survivors only; a dead node's flux is a
      // true zero in the original indexing (it transmits nothing).
      const sim::SurvivingNetwork sn =
          sim::surviving_network(tb.graph, inj.crashed());
      const sim::FluxEngine engine(sn.graph);
      const std::vector<sim::Collection> window{{0, truth, 2.0}};
      const net::FluxMap flux =
          sim::expand_to_original(sn, engine.measure(window, rng));
      std::vector<double> readings =
          eval::sniffed_readings(tb.graph, flux, samples);
      inj.corrupt(readings);  // crashed sniffers cannot report: missing
      const auto obj = eval::make_objective_from_readings(tb.model, tb.graph,
                                                          samples, readings);
      masked_sniffers += static_cast<double>(obj.masked_count());
      geom::Rng rng_l(eval::derive_seed(opts.seed, {6, static_cast<std::uint64_t>(t)}));
      const core::InstantLocalizer loc(field, cfg);
      err += geom::distance(loc.localize(obj, 1, rng_l).positions[0], truth);
    }
    table.add_row({eval::Table::fmt(crash * 100, 0),
                   eval::Table::fmt(err / trials),
                   eval::Table::fmt(masked_sniffers / trials, 1)});
  }
  bench::emit_table(table, opts, "fault_crashes");
}

void sweep_byzantine(const bench::Options& opts, const bench::Testbed& tb,
                     const geom::RectField& field, int trials,
                     const core::LocalizerConfig& cfg) {
  eval::print_banner(std::cout, "(c) byzantine sniffers: plain vs Huber");
  eval::Table table({"byzantine %", "plain err", "huber err"});
  core::LocalizerConfig robust_cfg = cfg;
  robust_cfg.robust.loss = core::RobustLoss::kHuber;
  for (const double byz : {0.0, 0.1, 0.2, 0.3}) {
    double plain = 0.0;
    double huber = 0.0;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(eval::derive_seed(opts.seed, {7, static_cast<std::uint64_t>(t)}));
      const TrialWorld w = clean_window(tb, field, rng);
      std::vector<double> corrupted = w.readings;
      sim::FaultPlan plan;
      plan.seed = eval::derive_seed(
          opts.seed, {8, static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(byz * 100)});
      plan.byzantine_fraction = byz;
      plan.byzantine_gain = 8.0;
      sim::FaultInjector inj(plan, tb.graph.size(), w.samples);
      inj.corrupt(corrupted);
      geom::Rng rng_p(eval::derive_seed(opts.seed, {9, static_cast<std::uint64_t>(t)}));
      geom::Rng rng_r(eval::derive_seed(opts.seed, {9, static_cast<std::uint64_t>(t)}));
      plain += localize_error(tb, field, w, corrupted, cfg, rng_p);
      huber += localize_error(tb, field, w, corrupted, robust_cfg, rng_r);
    }
    table.add_row({eval::Table::fmt(byz * 100, 0),
                   eval::Table::fmt(plain / trials),
                   eval::Table::fmt(huber / trials)});
  }
  bench::emit_table(table, opts, "fault_byzantine");
}

void blackout_tracking(const bench::Options& opts, const bench::Testbed& tb,
                       const geom::RectField& field) {
  eval::print_banner(std::cout,
                     "(d) 3-round blackout + relocation: recovery");
  geom::Rng rng(eval::derive_seed(opts.seed, {10}));
  core::SmcConfig seed_cfg;
  seed_cfg.num_predictions = 600;
  core::SmcConfig rec_cfg = seed_cfg;
  rec_cfg.divergence_recovery = true;
  rec_cfg.divergence_rounds = 2;
  core::SmcTracker seed_tracker(field, 1, seed_cfg, rng);
  core::SmcTracker rec_tracker(field, 1, rec_cfg, rng);
  const sim::FluxEngine engine(tb.graph);
  const auto samples = sim::sample_nodes_fraction(tb.graph.size(), 0.10, rng);

  eval::Table table({"round", "phase", "seed err", "recovery err", "event"});
  sim::FaultPlan plan;
  plan.seed = eval::derive_seed(opts.seed, {11});
  plan.burst_start = 6;
  plan.burst_length = 3;
  sim::FaultInjector inj(plan, tb.graph.size(), samples);

  double seed_final = 0.0;
  double rec_final = 0.0;
  for (int round = 1; round <= 12; ++round) {
    inj.begin_round(round);
    const geom::Vec2 truth =
        round <= 5 ? geom::Vec2{2.0 + 0.5 * round, 2.0}
                   : geom::Vec2{28.0, 28.0};  // relocated during blackout
    const std::vector<sim::Collection> window{{0, truth, 2.0}};
    const net::FluxMap flux = engine.measure(window, rng);
    std::vector<double> readings =
        eval::sniffed_readings(tb.graph, flux, samples);
    inj.corrupt(readings);  // burst rounds: every reading missing

    // Seed-style pipeline: missing readings are zero-filled, no recovery.
    std::vector<double> zero_filled = readings;
    net::zero_fill_missing(zero_filled);
    const auto seed_obj = eval::make_objective_from_readings(
        tb.model, tb.graph, samples, zero_filled);
    const auto rec_obj = eval::make_objective_from_readings(
        tb.model, tb.graph, samples, readings);
    seed_tracker.step(round, seed_obj, rng);
    const auto res = rec_tracker.step(round, rec_obj, rng);

    seed_final = geom::distance(seed_tracker.estimate(0), truth);
    rec_final = geom::distance(rec_tracker.estimate(0), truth);
    table.add_row({std::to_string(round),
                   inj.burst_active() ? "blackout" : "normal",
                   eval::Table::fmt(seed_final), eval::Table::fmt(rec_final),
                   res.recovered ? "re-seeded" : ""});
  }
  bench::emit_table(table, opts, "fault_blackout");
  std::printf("  final error: seed %.2f, recovery %.2f -> %s\n", seed_final,
              rec_final,
              rec_final < 4.0 && seed_final > 2.0 * rec_final
                  ? "recovery re-acquired, seed did not"
                  : "UNEXPECTED");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const geom::RectField field = bench::paper_field();
  geom::Rng rng(opts.seed);
  const bench::Testbed tb({}, field, rng);
  const int trials = opts.quick ? 4 : 20;
  core::LocalizerConfig cfg;
  cfg.candidates_per_user = opts.quick ? 2000 : 4000;

  sweep_outage(opts, tb, field, trials, cfg);
  sweep_crashes(opts, tb, field, trials, cfg);
  sweep_byzantine(opts, tb, field, trials, cfg);
  blackout_tracking(opts, tb, field);
  return 0;
}
