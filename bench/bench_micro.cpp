// Microbenchmarks for the core computational kernels (google-benchmark).
// These quantify the costs behind the experiment harnesses: tree
// construction, flux accumulation, model evaluation, Gram-space NNLS, the
// conditional candidate evaluation, and whole SMC rounds.

#include <benchmark/benchmark.h>

#include <fstream>
#include <span>
#include <string>

#include "core/localizer.hpp"
#include "core/nls.hpp"
#include "core/passive_trace_model.hpp"
#include "core/rss_link_model.hpp"
#include "core/smc.hpp"
#include "eval/experiment.hpp"
#include "net/deployment.hpp"
#include "net/flux.hpp"
#include "net/routing.hpp"
#include "numeric/arena.hpp"
#include "numeric/hungarian.hpp"
#include "numeric/parallel.hpp"
#include "numeric/simd/kernels.hpp"
#include "sim/measurement.hpp"
#include "sim/sniffer.hpp"
#include "stream/emit.hpp"
#include "stream/event_queue.hpp"
#include "stream/manager.hpp"
#include "stream/supervisor.hpp"

#if defined(FLUXFP_OBS_ENABLED)
#include "obs/obs.hpp"
#endif

namespace {

using namespace fluxfp;

const geom::RectField& field() {
  static const geom::RectField f(30.0, 30.0);
  return f;
}

const net::UnitDiskGraph& graph() {
  static const net::UnitDiskGraph g = [] {
    geom::Rng rng(1);
    return eval::build_connected_network({}, field(), rng);
  }();
  return g;
}

core::SparseObjective make_objective(std::size_t n_samples,
                                     std::size_t users) {
  geom::Rng rng(2);
  const core::FluxModel model(field(), 1.2);
  const sim::FluxEngine engine(graph());
  std::vector<sim::Collection> window;
  for (std::size_t j = 0; j < users; ++j) {
    window.push_back({j, geom::uniform_in_field(field(), rng), 2.0});
  }
  const net::FluxMap flux = engine.measure(window, rng);
  const auto samples = sim::sample_nodes(graph().size(), n_samples, rng);
  return eval::make_objective(model, graph(), flux, samples);
}

void BM_BuildGraph900(benchmark::State& state) {
  geom::Rng rng(3);
  const auto positions = net::perturbed_grid(field(), 30, 30, 0.5, rng);
  for (auto _ : state) {
    net::UnitDiskGraph g(positions, 2.4);
    benchmark::DoNotOptimize(g.average_degree());
  }
}
BENCHMARK(BM_BuildGraph900);

void BM_CollectionTree900(benchmark::State& state) {
  geom::Rng rng(4);
  for (auto _ : state) {
    const net::CollectionTree t =
        net::build_collection_tree(graph(), {15.0, 15.0}, rng);
    benchmark::DoNotOptimize(t.root);
  }
}
BENCHMARK(BM_CollectionTree900);

void BM_TreeFlux900(benchmark::State& state) {
  geom::Rng rng(5);
  const net::CollectionTree t =
      net::build_collection_tree(graph(), {15.0, 15.0}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::tree_flux(t, 2.0));
  }
}
BENCHMARK(BM_TreeFlux900);

void BM_SmoothFlux900(benchmark::State& state) {
  geom::Rng rng(6);
  const net::CollectionTree t =
      net::build_collection_tree(graph(), {15.0, 15.0}, rng);
  const net::FluxMap flux = net::tree_flux(t, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::smooth_flux(graph(), flux));
  }
}
BENCHMARK(BM_SmoothFlux900);

// One shape column at a time — the latency floor of a single candidate.
// The throughput path is BM_ShapeColumns (batch ColumnBlock build) below;
// the two used to differ by one letter, hence the explicit "Single".
void BM_ShapeColumnSingle(benchmark::State& state) {
  const core::SparseObjective obj =
      make_objective(static_cast<std::size_t>(state.range(0)), 1);
  std::vector<double> col;
  geom::Rng rng(7);
  for (auto _ : state) {
    obj.shape_column(geom::uniform_in_field(field(), rng), col);
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_ShapeColumnSingle)->Arg(90)->Arg(360);

void BM_ConditionalFitEvaluate(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const core::SparseObjective obj = make_objective(90, k);
  geom::Rng rng(8);
  std::vector<std::vector<double>> cols(k - 1);
  std::vector<std::span<const double>> fixed;
  for (std::size_t j = 0; j + 1 < k; ++j) {
    obj.shape_column(geom::uniform_in_field(field(), rng), cols[j]);
    fixed.push_back(cols[j]);
  }
  const core::ConditionalFit cond(obj, fixed, 0);
  std::vector<double> cand;
  obj.shape_column(geom::uniform_in_field(field(), rng), cand);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cond.evaluate(cand).residual);
  }
}
BENCHMARK(BM_ConditionalFitEvaluate)->Arg(1)->Arg(3)->Arg(8)->Arg(20);

// ConditionalFit construction: the fixed Gram block + fixed c dot products
// that every conditional sweep pays before its first candidate.
void BM_GramBuild(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const core::SparseObjective obj = make_objective(90, k);
  geom::Rng rng(8);
  std::vector<std::vector<double>> cols(k - 1);
  std::vector<std::span<const double>> fixed;
  for (std::size_t j = 0; j + 1 < k; ++j) {
    obj.shape_column(geom::uniform_in_field(field(), rng), cols[j]);
    fixed.push_back(cols[j]);
  }
  for (auto _ : state) {
    const core::ConditionalFit cond(obj, fixed, 0);
    benchmark::DoNotOptimize(&cond);
  }
}
BENCHMARK(BM_GramBuild)->Arg(3)->Arg(8)->Arg(20);

// Arena bump-allocation round trip: the per-epoch scratch pattern of the
// SMC step (a handful of spans, then reset). Steady state must be a few ns
// per alloc — no heap traffic once the high-water mark is reached.
void BM_ArenaScratch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  numeric::Arena arena;
  for (auto _ : state) {
    arena.reset();
    const auto a = arena.alloc<double>(n);
    const auto b = arena.alloc<double>(n);
    const auto c = arena.alloc<std::size_t>(n);
    a[0] = 1.0;
    b[n - 1] = 2.0;
    c[n / 2] = 3;
    benchmark::DoNotOptimize(a.data());
    benchmark::DoNotOptimize(b.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 3);
}
BENCHMARK(BM_ArenaScratch)->Arg(1000)->Arg(100000);

void BM_NnlsFromGram(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  geom::Rng rng(9);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const std::size_t n = 90;
  std::vector<std::vector<double>> a(k, std::vector<double>(n));
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = u(rng);
    for (std::size_t j = 0; j < k; ++j) {
      a[j][i] = u(rng);
    }
  }
  std::vector<double> g(k * k, 0.0);
  std::vector<double> c(k, 0.0);
  double b2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    b2 += b[i] * b[i];
    for (std::size_t x = 0; x < k; ++x) {
      c[x] += a[x][i] * b[i];
      for (std::size_t y = 0; y < k; ++y) {
        g[x * k + y] += a[x][i] * a[y][i];
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::nnls_from_gram(g, k, c, b2).residual);
  }
}
BENCHMARK(BM_NnlsFromGram)->Arg(2)->Arg(4)->Arg(12)->Arg(24);

void BM_LocalizeOneUser(benchmark::State& state) {
  const core::SparseObjective obj = make_objective(90, 1);
  core::LocalizerConfig cfg;
  cfg.candidates_per_user = static_cast<std::size_t>(state.range(0));
  const core::InstantLocalizer loc(field(), cfg);
  geom::Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(loc.localize(obj, 1, rng).residual);
  }
}
BENCHMARK(BM_LocalizeOneUser)->Arg(1000)->Arg(10000);

void BM_ShapeColumns(benchmark::State& state) {
  const core::SparseObjective obj = make_objective(90, 1);
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  geom::Rng rng(13);
  std::vector<geom::Vec2> sinks(batch);
  for (geom::Vec2& s : sinks) {
    s = geom::uniform_in_field(field(), rng);
  }
  core::ColumnBlock block;
  for (auto _ : state) {
    obj.shape_columns(sinks, block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_ShapeColumns)->Arg(1000)->Arg(10000);

// The same batched ColumnBlock build through the other two observation
// backends — shows the virtual-dispatch-at-column-granularity seam keeps
// every model on the SIMD row kernels (per-column dispatch, per-element
// vector math).
core::SparseObjective make_model_objective(const core::ObservationModel& m,
                                           std::size_t n_sites) {
  geom::Rng rng(2);
  std::vector<core::Site> sites;
  for (std::size_t i = 0; i < n_sites; ++i) {
    const geom::Vec2 a = geom::uniform_in_field(field(), rng);
    const geom::Vec2 b = m.sites_are_links()
                             ? geom::uniform_in_field(field(), rng)
                             : a;
    sites.push_back(core::Site{a, b});
  }
  std::vector<double> readings(n_sites, 1.0);
  return core::SparseObjective(m, std::move(sites), std::move(readings));
}

template <typename Model>
void shape_columns_model(benchmark::State& state, const Model& model) {
  const core::SparseObjective obj = make_model_objective(model, 90);
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  geom::Rng rng(13);
  std::vector<geom::Vec2> sinks(batch);
  for (geom::Vec2& s : sinks) {
    s = geom::uniform_in_field(field(), rng);
  }
  core::ColumnBlock block;
  for (auto _ : state) {
    obj.shape_columns(sinks, block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}

void BM_ShapeColumnsRss(benchmark::State& state) {
  shape_columns_model(state, core::RssLinkModel(1.0, 0.05));
}
BENCHMARK(BM_ShapeColumnsRss)->Arg(1000)->Arg(10000);

void BM_ShapeColumnsPassive(benchmark::State& state) {
  shape_columns_model(state, core::PassiveTraceModel(4.0));
}
BENCHMARK(BM_ShapeColumnsPassive)->Arg(1000)->Arg(10000);

// One full SMC round (2 users, default 1000 predictions) at 1/2/4/8 worker
// threads. Output is bit-identical across the thread counts (all RNG stays
// on the calling thread); only the wall-clock should move.
void BM_SmcRound(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  numeric::set_thread_count(threads);
  const core::SparseObjective obj = make_objective(90, 2);
  geom::Rng rng(11);
  core::SmcConfig cfg;
  core::SmcTracker tracker(field(), 2, cfg, rng);
  double time = 0.0;
  for (auto _ : state) {
    time += 1.0;
    benchmark::DoNotOptimize(tracker.step(time, obj, rng).residual);
  }
  numeric::set_thread_count(0);
}
BENCHMARK(BM_SmcRound)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_SmcStepTwoUsers(benchmark::State& state) {
  const core::SparseObjective obj = make_objective(90, 2);
  geom::Rng rng(11);
  core::SmcConfig cfg;
  cfg.num_predictions = static_cast<std::size_t>(state.range(0));
  core::SmcTracker tracker(field(), 2, cfg, rng);
  double time = 0.0;
  for (auto _ : state) {
    time += 1.0;
    benchmark::DoNotOptimize(tracker.step(time, obj, rng).residual);
  }
}
BENCHMARK(BM_SmcStepTwoUsers)->Arg(200)->Arg(1000);

// Streaming ingestion overhead: bounded-queue push+pop cost per event,
// excluding any filtering work.
void BM_EventIngest(benchmark::State& state) {
  stream::EventQueue queue(1024, stream::QueuePolicy::kBlock);
  stream::FluxEvent out;
  double time = 0.0;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < 512; ++i) {
      time += 1e-3;
      queue.push({time, 0, 0, i, 1.0});
    }
    for (std::uint32_t i = 0; i < 512; ++i) {
      queue.try_pop(out);
      benchmark::DoNotOptimize(out.reading);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_EventIngest);

// One streaming service run (8 sessions x 4 epochs over 90 sniffers) at
// Shared fixture for the stream benchmarks: 8 sessions x 4 rounds over 90
// sniffers, merged into one interleaved event stream.
constexpr std::size_t kStreamSessions = 8;
constexpr int kStreamRounds = 4;

const std::vector<std::size_t>& stream_sniffers() {
  static const std::vector<std::size_t> sniffers = [] {
    geom::Rng rng(14);
    return sim::sample_nodes(graph().size(), 90, rng);
  }();
  return sniffers;
}

const std::vector<stream::FluxEvent>& stream_events() {
  static const std::vector<stream::FluxEvent> events = [] {
    std::vector<std::vector<stream::FluxEvent>> streams;
    for (std::uint32_t u = 0; u < kStreamSessions; ++u) {
      geom::Rng rng(15 + u);
      const sim::FluxEngine engine(graph());
      std::vector<stream::FluxEvent> mine;
      for (int round = 0; round < kStreamRounds; ++round) {
        const std::vector<sim::Collection> window = {
            {0, geom::uniform_in_field(field(), rng), 2.0}};
        const net::FluxMap flux = engine.measure(window, rng);
        const auto burst = stream::window_events(
            graph(), flux, stream_sniffers(), u,
            static_cast<std::uint32_t>(round),
            static_cast<double>(round) + 0.01 * u);
        mine.insert(mine.end(), burst.begin(), burst.end());
      }
      streams.push_back(std::move(mine));
    }
    return stream::merge_by_time(streams);
  }();
  return events;
}

/// One full replay of the fixture stream through a fresh TrackerManager.
std::uint64_t run_stream_epochs(std::size_t workers) {
  static const core::FluxModel model(field(), 1.2);
  stream::StreamTrackerConfig tcfg;
  tcfg.smc.num_predictions = 200;
  tcfg.expected_readings = stream_sniffers().size();
  stream::ManagerConfig mcfg;
  mcfg.workers = workers;
  stream::TrackerManager manager(mcfg);
  for (std::uint32_t u = 0; u < kStreamSessions; ++u) {
    manager.add_session(
        u, stream::StreamTracker(model, graph(), stream_sniffers(), 1, tcfg,
                                 100 + u));
  }
  manager.start();
  for (const stream::FluxEvent& e : stream_events()) {
    manager.push(e);
  }
  manager.finish();
  return manager.stats().epochs_fired;
}

// 1/2/4/8 workers. The parallelism axis is sessions — per-session results
// are bit-identical across the worker counts; only wall-clock should move
// (it cannot on a single-core machine; see BENCH_micro.json notes).
void BM_StreamEpoch(benchmark::State& state) {
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_stream_epochs(workers));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kStreamSessions * kStreamRounds);
}
BENCHMARK(BM_StreamEpoch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// Same workload through the crash-recovery loop at the default checkpoint
/// cadence — the cost of supervision (journal + periodic quiesce/encode)
/// on the hot path. Acceptance bar: within 2% of BM_StreamEpoch at the
/// same worker count. On the single-core reference container run-to-run
/// noise exceeds that bar; measure the pair with --benchmark_repetitions
/// and --benchmark_enable_random_interleaving and compare medians.
void BM_StreamEpochSupervised(benchmark::State& state) {
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  static const core::FluxModel model(field(), 1.2);
  const auto make_manager = [workers] {
    stream::StreamTrackerConfig tcfg;
    tcfg.smc.num_predictions = 200;
    tcfg.expected_readings = stream_sniffers().size();
    stream::ManagerConfig mcfg;
    mcfg.workers = workers;
    auto manager = std::make_unique<stream::TrackerManager>(mcfg);
    for (std::uint32_t u = 0; u < kStreamSessions; ++u) {
      manager->add_session(
          u, stream::StreamTracker(model, graph(), stream_sniffers(), 1,
                                   tcfg, 100 + u));
    }
    return manager;
  };
  for (auto _ : state) {
    stream::Supervisor sup(make_manager, {});  // default cadence
    sup.start();
    for (const stream::FluxEvent& e : stream_events()) {
      sup.offer(e);
    }
    sup.finish();
    benchmark::DoNotOptimize(sup.stats().checkpoints);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kStreamSessions * kStreamRounds);
}
BENCHMARK(BM_StreamEpochSupervised)->Arg(2)->UseRealTime();

// Arg(0) = obs runtime-disabled, Arg(1) = obs recording. Same binary, same
// workload as BM_StreamEpoch at 2 workers: the pair quantifies the cost of
// the instrumentation macros on the hottest path. The acceptance bar is
// under 2% delta; with FLUXFP_OBS=OFF the macros compile away entirely and
// this benchmark is not built.
#if defined(FLUXFP_OBS_ENABLED)
void BM_ObsOverhead(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_stream_epochs(2));
  }
  obs::set_enabled(was_enabled);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kStreamSessions * kStreamRounds);
}
BENCHMARK(BM_ObsOverhead)->Arg(0)->Arg(1)->UseRealTime();
#endif

void BM_Hungarian(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  geom::Rng rng(12);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  numeric::Matrix cost(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      cost(r, c) = u(rng);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric::hungarian_assign(cost));
  }
}
BENCHMARK(BM_Hungarian)->Arg(4)->Arg(20);

/// First "model name" line of /proc/cpuinfo, or "unknown".
std::string cpu_model_name() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto colon = line.find(':');
    if (line.rfind("model name", 0) == 0 && colon != std::string::npos) {
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') {
        ++start;
      }
      return line.substr(start);
    }
  }
  return "unknown";
}

/// cpu0's cpufreq governor, or "unknown" (containers often hide cpufreq).
std::string cpu_governor() {
  std::ifstream in(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  std::string governor;
  if (in >> governor) {
    return governor;
  }
  return "unknown";
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): stamps the machine/build context
// the perf-regression gate needs into the JSON "context" block, so a
// baseline and a fresh run can be checked for comparability (same SIMD
// backend, same CPU, same governor) before their medians are diffed.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("fluxfp_simd_backend",
                              fluxfp::numeric::simd::backend_name());
  benchmark::AddCustomContext(
      "fluxfp_simd_lanes",
      std::to_string(fluxfp::numeric::simd::lane_count()));
  benchmark::AddCustomContext("fluxfp_cpu_model", cpu_model_name());
  benchmark::AddCustomContext("fluxfp_cpu_governor", cpu_governor());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
