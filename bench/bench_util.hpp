#pragma once

// Shared fixtures for the experiment harnesses. Each exp_* binary
// regenerates one of the paper's figures as a printed table; absolute
// numbers come from our simulator, the *shape* (who wins, where the knees
// are) is what reproduces the paper. All binaries are deterministic for a
// fixed --seed.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/flux_model.hpp"
#include "eval/table.hpp"
#include "eval/experiment.hpp"
#include "geom/field.hpp"
#include "numeric/parallel.hpp"

namespace fluxfp::bench {

/// Command-line options shared by every experiment binary.
struct Options {
  std::uint64_t seed = 2010;
  /// Scales trial counts down for smoke runs (--quick).
  bool quick = false;
  /// When set (--csv DIR), sweep tables are also written to DIR/<name>.csv.
  std::string csv_dir;
};

inline Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      opts.csv_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      // Worker count for the candidate-evaluation engine (0 = hardware
      // concurrency, 1 = serial). Results are bit-identical either way;
      // this knob trades wall-clock only.
      numeric::set_thread_count(std::strtoull(argv[++i], nullptr, 10));
    }
  }
  return opts;
}

/// Prints the table and, when --csv was given, also dumps it to
/// <csv_dir>/<name>.csv for plotting.
inline void emit_table(const eval::Table& table, const Options& opts,
                       const char* name) {
  table.print(std::cout);
  if (!opts.csv_dir.empty()) {
    const std::string path = opts.csv_dir + "/" + name + ".csv";
    std::ofstream out(path);
    if (out) {
      table.write_csv(out);
      std::cout << "  [csv written to " << path << "]\n";
    } else {
      std::cerr << "  [failed to open " << path << "]\n";
    }
  }
}

/// The paper's standard field (30 x 30, §5.A).
inline geom::RectField paper_field() { return geom::RectField(30.0, 30.0); }

/// Builds the standard network and a matching flux model in one go.
struct Testbed {
  net::UnitDiskGraph graph;
  core::FluxModel model;

  Testbed(const eval::NetworkSpec& spec, const geom::Field& field,
          geom::Rng& rng)
      : graph(eval::build_connected_network(spec, field, rng)),
        model(field, eval::estimate_d_min(graph, field, rng)) {}
};

}  // namespace fluxfp::bench
