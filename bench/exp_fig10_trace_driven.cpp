// Figure 10 — trace-driven experiment (§5.C).
//
// 20 mobile users per run follow synthetic Dartmouth-style AP-association
// traces (timeline compressed x100) and collect data asynchronously; the
// asynchronous-updating SMC tracker (Algorithm 4.1) estimates their
// positions. The error metric is the paper's: distance between calculated
// locations and the user's movement trajectory.
//
// (a) error vs percentage of sampling nodes, perturbed-grid vs random
//     deployment. Paper: grid < 3 at >= 10% reports; random ~1.5x grid.
// (b) error vs the resampling radius (max speed v_max), 10% reports —
//     robust, slight increase with radius.

// The tracking loop runs through the streaming runtime (StreamTracker over
// the windows' FluxEvent stream) and each sweep point fans its runs out
// with eval::run_trials, so --threads N parallelizes the independent runs
// while keeping the sweep bit-identical at any thread count.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/smc.hpp"
#include "eval/table.hpp"
#include "numeric/stats.hpp"
#include "sim/scenario.hpp"
#include "sim/sniffer.hpp"
#include "stream/emit.hpp"
#include "stream/stream_tracker.hpp"
#include "trace/generator.hpp"
#include "trace/replay.hpp"

using namespace fluxfp;

namespace {

/// One trace-driven run; returns the mean distance-to-trajectory over all
/// users and windows (after each user's first update).
double run_once(net::DeploymentKind kind, double fraction, double vmax,
                const geom::RectField& field, std::uint64_t seed) {
  geom::Rng rng(seed);
  eval::NetworkSpec spec;
  spec.kind = kind;
  const bench::Testbed tb(spec, field, rng);

  trace::TraceGenConfig gcfg;
  gcfg.num_users = 20;
  gcfg.duration = 30000.0;
  gcfg.median_dwell = 300.0;  // active trace segment (§5.C intercepts one)
  const trace::Trace tr =
      trace::generate_trace(trace::grid_aps(field, 5, 10), gcfg, rng);
  const auto replayed = trace::replay_users(tr, {}, rng);

  std::vector<sim::SimUser> users;
  for (const auto& u : replayed) {
    users.push_back(u.sim);
  }
  sim::ScenarioConfig scfg;
  scfg.rounds = std::min(
      50, static_cast<int>(trace::compressed_end_time(replayed)) + 1);
  const auto obs = sim::run_scenario(tb.graph, users, scfg, rng);

  const auto samples =
      sim::sample_nodes_fraction(tb.graph.size(), fraction, rng);
  core::SmcConfig tcfg;
  tcfg.num_predictions = 400;
  tcfg.vmax = vmax;

  // Consume the windows through the streaming runtime: readings as a
  // FluxEvent stream folded by a one-session StreamTracker (all users
  // jointly — the window flux is shared evidence).
  stream::StreamTrackerConfig stcfg;
  stcfg.smc = tcfg;
  stcfg.expected_readings = samples.size();
  stream::StreamTracker tracker(tb.model, tb.graph, samples, users.size(),
                                stcfg, seed);
  std::vector<stream::EpochResult> fired;
  for (const stream::FluxEvent& e :
       stream::scenario_events(tb.graph, obs, samples, /*user=*/0)) {
    for (auto& r : tracker.on_event(e)) {
      fired.push_back(std::move(r));
    }
  }
  for (auto& r : tracker.flush()) {
    fired.push_back(std::move(r));
  }

  numeric::RunningStats err;
  std::vector<bool> seen(users.size(), false);
  for (const stream::EpochResult& res : fired) {
    for (std::size_t u = 0; u < users.size(); ++u) {
      if (res.step.updated[u]) {
        seen[u] = true;
      }
      if (seen[u]) {
        err.add(replayed[u].path.distance_to(res.estimates[u]));
      }
    }
  }
  return err.mean();
}

/// Runs `runs` independent repetitions of (grid, random) for one sweep
/// point through eval::run_trials — trial t < runs is the perturbed grid,
/// the rest are random deployments. Returns {grid mean, random mean};
/// bit-identical at any --threads value.
std::pair<double, double> sweep_point(int runs, double fraction, double vmax,
                                      const geom::RectField& field,
                                      std::uint64_t base_seed,
                                      std::uint64_t salt,
                                      std::uint64_t salt_offset) {
  const auto n = static_cast<std::size_t>(runs);
  const std::vector<double> results = eval::run_trials(
      2 * n, [&](std::size_t t) {
        const bool grid = t < n;
        const std::uint64_t runI = t % n;
        return run_once(grid ? net::DeploymentKind::kPerturbedGrid
                             : net::DeploymentKind::kUniformRandom,
                        fraction, vmax, field,
                        eval::derive_seed(base_seed,
                                          {salt,
                                           salt_offset + (grid ? 0 : 1),
                                           runI}));
      });
  double grid = 0.0;
  double random = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    grid += results[t];
    random += results[n + t];
  }
  return {grid / runs, random / runs};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const int runs = opts.quick ? 1 : 3;
  const geom::RectField field = bench::paper_field();

  eval::print_banner(std::cout,
                     "Figure 10(a): trace-driven tracking error vs "
                     "percentage of sampling nodes (20 users/run, "
                     "asynchronous updating)");
  eval::Table a({"% nodes", "perturbed grid", "random"});
  for (double pct : {40.0, 20.0, 10.0, 5.0}) {
    const auto [grid, random] = sweep_point(
        runs, pct / 100.0, 5.0, field, opts.seed, static_cast<std::uint64_t>(pct * 10),
        0);
    a.add_row({eval::Table::fmt(pct, 0), eval::Table::fmt(grid),
               eval::Table::fmt(random)});
  }
  bench::emit_table(a, opts, "fig10a");
  std::puts("(paper: grid error < 3 at >= 10% reports; random deployment "
            "about 1.5x the grid error)");

  eval::print_banner(std::cout,
                     "Figure 10(b): trace-driven tracking error vs "
                     "resampling radius (10% reports)");
  eval::Table b({"radius (vmax)", "perturbed grid", "random"});
  for (double vmax : {4.0, 6.0, 8.0, 10.0, 12.0}) {
    const auto [grid, random] =
        sweep_point(runs, 0.10, vmax, field, opts.seed, static_cast<std::uint64_t>(vmax),
                    2);
    b.add_row({eval::Table::fmt(vmax, 0), eval::Table::fmt(grid),
               eval::Table::fmt(random)});
  }
  bench::emit_table(b, opts, "fig10b");
  std::puts("(paper: robust to the enlarged resampling area — only a "
            "slight error increase with the maximum speed)");
  return 0;
}
