// Ablation bench — the design choices DESIGN.md calls out:
//
//  1. SMC tracker vs instant-NLS vs EKF baseline (is sequential filtering
//     needed?).
//  2. Importance sampling (§4.D) on vs off.
//  3. Neighborhood flux smoothing (§3.B) on vs off for localization.
//  4. Conditional sweeps 1 vs 3 for multi-user search.
//  5. Countermeasures (§6 future work): how much traffic reshaping breaks
//     the attack, and at what overhead.

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/baseline.hpp"
#include "core/smooth_localizer.hpp"
#include "core/trajectory.hpp"
#include "core/smc.hpp"
#include "eval/metrics.hpp"
#include "net/routing.hpp"
#include "eval/table.hpp"
#include "numeric/stats.hpp"
#include "privacy/countermeasure.hpp"
#include "sim/scenario.hpp"
#include "sim/sniffer.hpp"

using namespace fluxfp;

namespace {

std::vector<sim::SimUser> two_line_users(int rounds) {
  auto mk = [&](geom::Vec2 from, geom::Vec2 to, double stretch) {
    sim::SimUser u;
    u.stretch = stretch;
    u.mobility = std::make_shared<sim::PathMobility>(
        geom::Polyline({from, to}), geom::distance(from, to) / rounds);
    return u;
  };
  return {mk({3, 8}, {27, 8}, 2.0), mk({27, 22}, {3, 22}, 2.5)};
}

struct TrackStats {
  double mean = 0.0;
  double final = 0.0;
};

template <typename StepFn>
TrackStats run_tracked(const bench::Testbed& tb,
                       const std::vector<sim::RoundObservation>& obs,
                       std::span<const std::size_t> samples, StepFn step) {
  numeric::RunningStats all;
  double final_err = 0.0;
  for (const auto& o : obs) {
    const core::SparseObjective obj =
        eval::make_objective(tb.model, tb.graph, o.flux, samples);
    const std::vector<geom::Vec2> est = step(o, obj);
    final_err = eval::matched_mean_error(est, o.true_positions);
    all.add(final_err);
  }
  return {all.mean(), final_err};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const int trials = opts.quick ? 2 : 5;
  const int rounds = 10;
  const geom::RectField field = bench::paper_field();

  // ------------------------------------------------------------------
  eval::print_banner(std::cout,
                     "Ablation 1+2: tracker comparison, 2 moving users "
                     "(mean / final identity-free error)");
  eval::Table t1({"tracker", "sampling", "mean err", "final err"});
  struct Agg {
    numeric::RunningStats mean, fin;
  };
  for (const double fraction : {0.10, 0.03}) {
  Agg smc, smc_noimp, instant, ekf;
  for (int t = 0; t < trials; ++t) {
    geom::Rng rng(eval::derive_seed(
        opts.seed, {1, static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(fraction * 100)}));
    const bench::Testbed tb({}, field, rng);
    const auto users = two_line_users(rounds);
    sim::ScenarioConfig scfg;
    scfg.rounds = rounds;
    const auto obs = sim::run_scenario(tb.graph, users, scfg, rng);
    const auto samples =
        sim::sample_nodes_fraction(tb.graph.size(), fraction, rng);

    {
      core::SmcConfig cfg;
      core::SmcTracker tracker(field, 2, cfg, rng);
      const TrackStats s = run_tracked(
          tb, obs, samples, [&](const auto& o, const auto& obj) {
            tracker.step(o.time, obj, rng);
            return std::vector<geom::Vec2>{tracker.estimate(0),
                                           tracker.estimate(1)};
          });
      smc.mean.add(s.mean);
      smc.fin.add(s.final);
    }
    {
      core::SmcConfig cfg;
      cfg.importance_sampling = false;
      core::SmcTracker tracker(field, 2, cfg, rng);
      const TrackStats s = run_tracked(
          tb, obs, samples, [&](const auto& o, const auto& obj) {
            tracker.step(o.time, obj, rng);
            return std::vector<geom::Vec2>{tracker.estimate(0),
                                           tracker.estimate(1)};
          });
      smc_noimp.mean.add(s.mean);
      smc_noimp.fin.add(s.final);
    }
    {
      core::LocalizerConfig lcfg;
      lcfg.candidates_per_user = 4000;
      core::InstantNlsTracker tracker(field, 2, lcfg);
      const TrackStats s = run_tracked(
          tb, obs, samples, [&](const auto&, const auto& obj) {
            return tracker.step(obj, rng);
          });
      instant.mean.add(s.mean);
      instant.fin.add(s.final);
    }
    {
      core::EkfConfig ecfg;
      ecfg.localizer.candidates_per_user = 4000;
      core::EkfTracker tracker(field, 2, ecfg);
      const TrackStats s = run_tracked(
          tb, obs, samples, [&](const auto&, const auto& obj) {
            return tracker.step(obj, 1.0, rng);
          });
      ekf.mean.add(s.mean);
      ekf.fin.add(s.final);
    }
  }
  auto add = [&](const char* name, const Agg& a) {
    t1.add_row({name, eval::Table::fmt(100.0 * fraction, 0) + "%",
                eval::Table::fmt(a.mean.mean()),
                eval::Table::fmt(a.fin.mean())});
  };
  add("SMC (Alg. 4.1)", smc);
  add("SMC, no importance sampling", smc_noimp);
  add("instant NLS (no filtering)", instant);
  add("EKF on instant NLS", ekf);
  }
  t1.print(std::cout);

  // ------------------------------------------------------------------
  eval::print_banner(std::cout,
                     "Ablation 1b: offline trajectory smoothing — Viterbi "
                     "over per-round top-10 lists vs per-round best "
                     "(1 user, sparse 3% sampling, mean error)");
  eval::Table t1b({"estimator", "mean err"});
  {
    numeric::RunningStats naive_err, smooth_err;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(eval::derive_seed(opts.seed, {11, static_cast<std::uint64_t>(t)}));
      const bench::Testbed tb({}, field, rng);
      sim::SimUser u;
      u.stretch = 2.0;
      u.mobility = std::make_shared<sim::PathMobility>(
          geom::Polyline({{4, 8}, {26, 20}}), 2.5);
      sim::ScenarioConfig scfg;
      scfg.rounds = rounds;
      const auto obs = sim::run_scenario(tb.graph, {u}, scfg, rng);
      const auto samples =
          sim::sample_nodes_fraction(tb.graph.size(), 0.03, rng);
      core::LocalizerConfig lcfg;
      lcfg.candidates_per_user = 4000;
      const core::InstantLocalizer loc(field, lcfg);
      std::vector<core::RoundCandidates> cand_rounds;
      numeric::RunningStats naive_run;
      for (const auto& o : obs) {
        const core::SparseObjective obj =
            eval::make_objective(tb.model, tb.graph, o.flux, samples);
        const core::LocalizationResult res = loc.localize(obj, 1, rng);
        core::RoundCandidates rc;
        rc.time = o.time;
        rc.positions = res.top_positions[0];
        rc.residuals = res.top_residuals[0];
        cand_rounds.push_back(std::move(rc));
        naive_run.add(
            geom::distance(res.positions[0], o.true_positions[0]));
      }
      core::TrajectoryConfig tcfg;
      const auto path = core::smooth_trajectory(cand_rounds, tcfg);
      numeric::RunningStats smooth_run;
      for (std::size_t r2 = 0; r2 < path.size(); ++r2) {
        smooth_run.add(geom::distance(path[r2], obs[r2].true_positions[0]));
      }
      naive_err.add(naive_run.mean());
      smooth_err.add(smooth_run.mean());
    }
    t1b.add_row({"per-round best (no memory)",
                 eval::Table::fmt(naive_err.mean())});
    t1b.add_row({"Viterbi smoother (offline)",
                 eval::Table::fmt(smooth_err.mean())});
  }
  t1b.print(std::cout);
  std::puts("(with all rounds in hand, time consistency repairs the "
            "outliers an online estimator must commit to)");

  // ------------------------------------------------------------------
  eval::print_banner(std::cout,
                     "Ablation 3+4: localization design choices (3 users, "
                     "10% sampling)");
  eval::Table t2({"variant", "mean err"});
  struct Variant {
    const char* name;
    bool smooth;
    int sweeps;
  };
  const std::vector<Variant> variants{
      Variant{"smoothing on, 3 sweeps", true, 3},
      Variant{"smoothing off, 3 sweeps", false, 3},
      Variant{"smoothing on, 1 sweep", true, 1}};
  std::vector<numeric::RunningStats> variant_errs(variants.size());
  for (int t = 0; t < trials; ++t) {
    // Every variant sees the identical instance (network, users, samples);
    // only the objective/search configuration differs.
    geom::Rng rng(eval::derive_seed(opts.seed, {2, static_cast<std::uint64_t>(t)}));
    const bench::Testbed tb({}, field, rng);
    std::uniform_real_distribution<double> stretch(1.0, 3.0);
    std::vector<geom::Vec2> sinks;
    std::vector<sim::Collection> window;
    for (std::size_t j = 0; j < 3; ++j) {
      sinks.push_back(geom::uniform_in_field(field, rng));
      window.push_back({j, sinks[j], stretch(rng)});
    }
    const sim::FluxEngine engine(tb.graph);
    const net::FluxMap flux = engine.measure(window, rng);
    const auto samples =
        sim::sample_nodes_fraction(tb.graph.size(), 0.10, rng);
    for (std::size_t v = 0; v < variants.size(); ++v) {
      geom::Rng search_rng(
          eval::derive_seed(opts.seed, {20, static_cast<std::uint64_t>(t), v}));
      const core::SparseObjective obj = eval::make_objective(
          tb.model, tb.graph, flux, samples, variants[v].smooth);
      core::LocalizerConfig lcfg;
      lcfg.sweeps = variants[v].sweeps;
      const core::InstantLocalizer loc(field, lcfg);
      const auto res = loc.localize(obj, 3, search_rng);
      variant_errs[v].add(eval::matched_mean_error(res.positions, sinks));
    }
  }
  for (std::size_t v = 0; v < variants.size(); ++v) {
    t2.add_row({variants[v].name,
                eval::Table::fmt(variant_errs[v].mean())});
  }
  t2.print(std::cout);

  // ------------------------------------------------------------------
  eval::print_banner(std::cout,
                     "Ablation 5: countermeasures (§6) — localization "
                     "error vs reshaping overhead (1 user, 10% sampling)");
  eval::Table t3({"countermeasure", "localization err",
                  "overhead (x user traffic)"});
  struct Cm {
    const char* name;
    privacy::CountermeasureConfig cfg;
  };
  std::vector<Cm> cms;
  cms.push_back({"none", {}});
  {
    privacy::CountermeasureConfig c;
    c.kind = privacy::CountermeasureKind::kConstantPadding;
    c.pad_level = 30.0;
    cms.push_back({"padding to 30", c});
    c.pad_level = 120.0;
    cms.push_back({"padding to 120", c});
  }
  {
    privacy::CountermeasureConfig c;
    c.kind = privacy::CountermeasureKind::kDummyTrees;
    c.dummy_count = 1;
    c.dummy_stretch = 2.0;
    cms.push_back({"1 dummy tree", c});
    c.dummy_count = 4;
    cms.push_back({"4 dummy trees", c});
  }
  {
    privacy::CountermeasureConfig c;
    c.kind = privacy::CountermeasureKind::kStretchJitter;
    c.jitter_sigma = 0.5;
    cms.push_back({"jitter sigma 0.5", c});
    c.jitter_sigma = 1.5;
    cms.push_back({"jitter sigma 1.5", c});
  }
  for (const Cm& cm : cms) {
    numeric::RunningStats errs;
    numeric::RunningStats overheads;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(eval::derive_seed(
          opts.seed,
          {3, static_cast<std::uint64_t>(t),
           static_cast<std::uint64_t>(cm.cfg.kind)}));
      const bench::Testbed tb({}, field, rng);
      const geom::Vec2 truth = geom::uniform_in_field(field, rng);
      const sim::FluxEngine engine(tb.graph);
      const std::vector<sim::Collection> window{{0, truth, 2.0}};
      net::FluxMap flux = engine.measure(window, rng);
      const double user_traffic =
          numeric::sum(std::span<const double>(flux));
      const privacy::Countermeasure defense(cm.cfg);
      defense.apply(flux, tb.graph, rng);
      overheads.add(defense.last_overhead() / user_traffic);
      const auto samples =
          sim::sample_nodes_fraction(tb.graph.size(), 0.10, rng);
      const core::SparseObjective obj =
          eval::make_objective(tb.model, tb.graph, flux, samples);
      core::LocalizerConfig lcfg;
      lcfg.candidates_per_user = 5000;
      const core::InstantLocalizer loc(field, lcfg);
      const auto res = loc.localize(obj, 1, rng);
      errs.add(geom::distance(res.positions[0], truth));
    }
    t3.add_row({cm.name, eval::Table::fmt(errs.mean()),
                eval::Table::fmt(overheads.mean())});
  }
  // Routing-layer defense: multipath splitting. Zero overhead by design —
  // and, as the flux-field argument predicts, zero protection: splitting
  // only removes the variance that neighborhood smoothing removes anyway.
  {
    numeric::RunningStats errs;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(eval::derive_seed(opts.seed, {33, static_cast<std::uint64_t>(t)}));
      const bench::Testbed tb({}, field, rng);
      const geom::Vec2 truth = geom::uniform_in_field(field, rng);
      const std::size_t root = tb.graph.nearest_node(truth);
      const auto hop = net::hop_distances(tb.graph, root);
      const net::FluxMap flux =
          net::multipath_flux(tb.graph, hop, root, 2.0);
      const auto samples =
          sim::sample_nodes_fraction(tb.graph.size(), 0.10, rng);
      const core::SparseObjective obj =
          eval::make_objective(tb.model, tb.graph, flux, samples);
      core::LocalizerConfig lcfg;
      lcfg.candidates_per_user = 5000;
      const core::InstantLocalizer loc(field, lcfg);
      errs.add(geom::distance(loc.localize(obj, 1, rng).positions[0],
                              truth));
    }
    t3.add_row({"multipath routing", eval::Table::fmt(errs.mean()),
                eval::Table::fmt(0.0)});
  }
  t3.print(std::cout);
  std::puts("(larger localization error = better privacy; overhead is the "
            "defense's extra traffic relative to the user's own)");

  // ------------------------------------------------------------------
  eval::print_banner(std::cout,
                     "Ablation 5b: chaff vs tracker capacity — dummy trees "
                     "against attackers of different K "
                     "(1 moving user, 10 rounds, 10% sampling)");
  eval::Table t3b({"attacker", "defense", "final err"});
  for (const bool use_chaff : {false, true}) {
    numeric::RunningStats smc_err;
    numeric::RunningStats smc3_err;
    numeric::RunningStats inst_err;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(eval::derive_seed(
          opts.seed, {7, static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(use_chaff)}));
      const bench::Testbed tb({}, field, rng);
      sim::SimUser u;
      u.stretch = 2.0;
      u.mobility = std::make_shared<sim::PathMobility>(
          geom::Polyline({{4, 9}, {26, 21}}), 2.5);
      sim::ScenarioConfig scfg;
      scfg.rounds = rounds;
      const auto obs = sim::run_scenario(tb.graph, {u}, scfg, rng);
      const auto samples =
          sim::sample_nodes_fraction(tb.graph.size(), 0.10, rng);
      privacy::CountermeasureConfig dcfg;
      if (use_chaff) {
        dcfg.kind = privacy::CountermeasureKind::kDummyTrees;
        dcfg.dummy_count = 2;
        dcfg.dummy_stretch = 2.0;
      }
      const privacy::Countermeasure defense(dcfg);

      core::SmcConfig smc_cfg;
      smc_cfg.num_predictions = 600;
      core::SmcTracker smc_tracker(field, 1, smc_cfg, rng);
      core::SmcTracker smc3_tracker(field, 3, smc_cfg, rng);
      core::LocalizerConfig lcfg;
      lcfg.candidates_per_user = 4000;
      const core::InstantLocalizer inst(field, lcfg);
      double smc_last = 0.0;
      double smc3_last = 0.0;
      double inst_last = 0.0;
      for (const auto& o : obs) {
        net::FluxMap flux = o.flux;
        defense.apply(flux, tb.graph, rng);
        const core::SparseObjective obj =
            eval::make_objective(tb.model, tb.graph, flux, samples);
        smc_tracker.step(o.time, obj, rng);
        smc_last =
            geom::distance(smc_tracker.estimate(0), o.true_positions[0]);
        // Conservative-K adversary: track 3 slots (user + chaff capacity)
        // and score the slot that ends up on the persistent user.
        smc3_tracker.step(o.time, obj, rng);
        smc3_last = field.diameter();
        for (std::size_t s = 0; s < 3; ++s) {
          smc3_last = std::min(
              smc3_last, geom::distance(smc3_tracker.estimate(s),
                                        o.true_positions[0]));
        }
        inst_last = geom::distance(inst.localize(obj, 1, rng).positions[0],
                                   o.true_positions[0]);
      }
      smc_err.add(smc_last);
      smc3_err.add(smc3_last);
      inst_err.add(inst_last);
    }
    const char* d = use_chaff ? "2 dummy trees" : "none";
    t3b.add_row({"instant NLS (K=1)", d, eval::Table::fmt(inst_err.mean())});
    t3b.add_row({"SMC tracker (K=1)", d, eval::Table::fmt(smc_err.mean())});
    t3b.add_row({"SMC tracker (K=3, best slot)", d,
                 eval::Table::fmt(smc3_err.mean())});
  }
  t3b.print(std::cout);
  std::puts("(random chaff captures K=1 attackers — the single SMC slot "
            "even sticks to a dummy once captured; a conservative-K "
            "adversary keeps one slot on the persistent user, so chaff "
            "must outnumber the attacker's K budget to protect)");

  // ------------------------------------------------------------------
  eval::print_banner(std::cout,
                     "Ablation 6: derivative-based fitting (§4.A) — "
                     "Levenberg–Marquardt vs candidate search by boundary "
                     "shape (1 user, 10% sampling)");
  eval::Table t4({"field / method", "mean err", "converged"});
  {
    const geom::CircleField circle({15.0, 15.0}, 15.0);
    const geom::RectField rect(30.0, 30.0);
    struct Setup {
      const char* name;
      const geom::Field* field;
      bool use_lm;
    };
    const Setup setups[] = {
        {"circle / LM", &circle, true},
        {"circle / candidate search", &circle, false},
        {"rectangle / LM", &rect, true},
        {"rectangle / candidate search", &rect, false},
    };
    for (const Setup& s : setups) {
      numeric::RunningStats errs;
      int converged = 0;
      for (int t = 0; t < trials; ++t) {
        geom::Rng rng(eval::derive_seed(
            opts.seed, {4, static_cast<std::uint64_t>(t),
                        static_cast<std::uint64_t>(s.use_lm),
                        static_cast<std::uint64_t>(s.field == &circle)}));
        eval::NetworkSpec spec;
        spec.kind = net::DeploymentKind::kUniformRandom;
        const bench::Testbed tb(spec, *s.field, rng);
        const geom::Vec2 truth = geom::uniform_in_field(*s.field, rng);
        const sim::FluxEngine engine(tb.graph);
        const std::vector<sim::Collection> window{{0, truth, 2.0}};
        const net::FluxMap flux = engine.measure(window, rng);
        const auto samples =
            sim::sample_nodes_fraction(tb.graph.size(), 0.10, rng);
        const core::SparseObjective obj =
            eval::make_objective(tb.model, tb.graph, flux, samples);
        if (s.use_lm) {
          core::SmoothLocalizerConfig scfg;
          scfg.restarts = 8;
          const core::SmoothLocalizer loc(*s.field, scfg);
          const auto res = loc.localize(obj, 1, rng);
          errs.add(geom::distance(res.positions[0], truth));
          converged += res.converged ? 1 : 0;
        } else {
          core::LocalizerConfig lcfg;
          lcfg.candidates_per_user = 5000;
          const core::InstantLocalizer loc(*s.field, lcfg);
          const auto res = loc.localize(obj, 1, rng);
          errs.add(geom::distance(res.positions[0], truth));
          ++converged;
        }
      }
      t4.add_row({s.name, eval::Table::fmt(errs.mean()),
                  std::to_string(converged) + "/" + std::to_string(trials)});
    }
  }
  t4.print(std::cout);
  std::puts("(§4.A: classical LM applies on the smooth circular boundary; "
            "the rectangle's kinked objective favors candidate search)");

  // ------------------------------------------------------------------
  eval::print_banner(std::cout,
                     "Ablation 7: heading-aware prediction (§4.C "
                     "refinement) — 1 user on a straight track, sparse "
                     "3% sampling");
  eval::Table t5({"prediction", "mean err", "final err"});
  for (const bool heading : {false, true}) {
    numeric::RunningStats mean_err;
    numeric::RunningStats fin_err;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(eval::derive_seed(opts.seed, {5, static_cast<std::uint64_t>(t)}));
      const bench::Testbed tb({}, field, rng);
      sim::SimUser u;
      u.stretch = 2.0;
      u.mobility = std::make_shared<sim::PathMobility>(
          geom::Polyline({{3, 10}, {27, 20}}), 2.6);
      sim::ScenarioConfig scfg;
      scfg.rounds = rounds;
      const auto obs = sim::run_scenario(tb.graph, {u}, scfg, rng);
      const auto samples =
          sim::sample_nodes_fraction(tb.graph.size(), 0.03, rng);
      geom::Rng track_rng(
          eval::derive_seed(opts.seed, {6, static_cast<std::uint64_t>(t)}));
      core::SmcConfig cfg;
      cfg.heading_aware = heading;
      core::SmcTracker tracker(field, 1, cfg, track_rng);
      numeric::RunningStats errs;
      double last = 0.0;
      for (const auto& o : obs) {
        const core::SparseObjective obj =
            eval::make_objective(tb.model, tb.graph, o.flux, samples);
        tracker.step(o.time, obj, track_rng);
        last = geom::distance(tracker.estimate(0), o.true_positions[0]);
        errs.add(last);
      }
      mean_err.add(errs.mean());
      fin_err.add(last);
    }
    t5.add_row({heading ? "heading cone (§4.C)" : "uniform disc (Eq. 4.2)",
                eval::Table::fmt(mean_err.mean()),
                eval::Table::fmt(fin_err.mean())});
  }
  t5.print(std::cout);

  // ------------------------------------------------------------------
  eval::print_banner(std::cout,
                     "Ablation 8: search strategy for the NLS fit "
                     "(1 user, 10% sampling)");
  eval::Table t6({"strategy", "mean err"});
  {
    numeric::RunningStats random_err, grid_err, centroid_err;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(eval::derive_seed(opts.seed, {8, static_cast<std::uint64_t>(t)}));
      const bench::Testbed tb({}, field, rng);
      const geom::Vec2 truth = geom::uniform_in_field(field, rng);
      const sim::FluxEngine engine(tb.graph);
      const std::vector<sim::Collection> window{{0, truth, 2.0}};
      const net::FluxMap flux = engine.measure(window, rng);
      const auto samples =
          sim::sample_nodes_fraction(tb.graph.size(), 0.10, rng);
      const core::SparseObjective obj =
          eval::make_objective(tb.model, tb.graph, flux, samples);

      const core::InstantLocalizer rand_loc(field);  // 10k random
      random_err.add(geom::distance(
          rand_loc.localize(obj, 1, rng).positions[0], truth));
      const core::GridLocalizer grid_loc(field);  // deterministic 24x24 x4
      grid_err.add(
          geom::distance(grid_loc.localize(obj, 1).positions[0], truth));
      centroid_err.add(geom::distance(
          core::CentroidLocalizer{}.localize(obj), truth));
    }
    t6.add_row({"random candidates (10k, paper)",
                eval::Table::fmt(random_err.mean())});
    t6.add_row({"grid refinement (24^2 x 4 levels)",
                eval::Table::fmt(grid_err.mean())});
    t6.add_row({"weighted centroid (no model)",
                eval::Table::fmt(centroid_err.mean())});
  }
  t6.print(std::cout);
  std::puts("(model fitting beats the model-free heuristic; grid and "
            "random search are interchangeable given equal budgets)");

  // ------------------------------------------------------------------
  eval::print_banner(std::cout,
                     "Ablation 9: deployment irregularity — localization "
                     "error by node layout (1 user, 10% sampling)");
  eval::Table t7({"deployment", "avg degree", "mean err"});
  for (const net::DeploymentKind kind :
       {net::DeploymentKind::kPerturbedGrid,
        net::DeploymentKind::kUniformRandom,
        net::DeploymentKind::kClustered}) {
    numeric::RunningStats errs;
    numeric::RunningStats degs;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(eval::derive_seed(
          opts.seed, {9, static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(kind)}));
      eval::NetworkSpec spec;
      spec.kind = kind;
      // Clustered layouts need a larger radius to stay connected.
      if (kind == net::DeploymentKind::kClustered) {
        spec.radius = 4.5;
      }
      const bench::Testbed tb(spec, field, rng);
      degs.add(tb.graph.average_degree());
      const geom::Vec2 truth = geom::uniform_in_field(field, rng);
      const sim::FluxEngine engine(tb.graph);
      const std::vector<sim::Collection> window{{0, truth, 2.0}};
      const net::FluxMap flux = engine.measure(window, rng);
      const auto samples =
          sim::sample_nodes_fraction(tb.graph.size(), 0.10, rng);
      const core::SparseObjective obj =
          eval::make_objective(tb.model, tb.graph, flux, samples);
      core::LocalizerConfig lcfg;
      lcfg.candidates_per_user = 5000;
      const core::InstantLocalizer loc(field, lcfg);
      errs.add(geom::distance(loc.localize(obj, 1, rng).positions[0],
                              truth));
    }
    t7.add_row({net::to_string(kind), eval::Table::fmt(degs.mean(), 1),
                eval::Table::fmt(errs.mean())});
  }
  t7.print(std::cout);
  std::puts("(the flux model assumes quasi-uniform density; clustered "
            "layouts strain it the most — the paper's grid-vs-random gap, "
            "extended)");

  // ------------------------------------------------------------------
  eval::print_banner(std::cout,
                     "Ablation 10: sniffer placement at sparse budgets "
                     "(1 user) — random vs spatially stratified");
  eval::Table t8({"budget", "random", "stratified"});
  for (const double fraction : {0.05, 0.02}) {
    numeric::RunningStats rand_err, strat_err;
    for (int t = 0; t < trials * 2; ++t) {
      geom::Rng rng(eval::derive_seed(
          opts.seed, {10, static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(fraction * 100)}));
      const bench::Testbed tb({}, field, rng);
      const geom::Vec2 truth = geom::uniform_in_field(field, rng);
      const sim::FluxEngine engine(tb.graph);
      const std::vector<sim::Collection> window{{0, truth, 2.0}};
      const net::FluxMap flux = engine.measure(window, rng);
      const auto count = static_cast<std::size_t>(
          fraction * static_cast<double>(tb.graph.size()));
      const auto rand_nodes = sim::sample_nodes(tb.graph.size(), count, rng);
      const auto strat_nodes =
          sim::sample_nodes_stratified(tb.graph, count, rng);
      core::LocalizerConfig lcfg;
      lcfg.candidates_per_user = 5000;
      const core::InstantLocalizer loc(field, lcfg);
      {
        const core::SparseObjective obj =
            eval::make_objective(tb.model, tb.graph, flux, rand_nodes);
        rand_err.add(geom::distance(loc.localize(obj, 1, rng).positions[0],
                                    truth));
      }
      {
        const core::SparseObjective obj =
            eval::make_objective(tb.model, tb.graph, flux, strat_nodes);
        strat_err.add(geom::distance(loc.localize(obj, 1, rng).positions[0],
                                     truth));
      }
    }
    t8.add_row({eval::Table::fmt(100.0 * fraction, 0) + "%",
                eval::Table::fmt(rand_err.mean()),
                eval::Table::fmt(strat_err.mean())});
  }
  t8.print(std::cout);
  std::puts("(honest negative: placement barely matters — the flux field "
            "is global, every node's reading constrains the sink through "
            "l and d, so the attack needs no coverage planning; this is "
            "the structural reason sparse sampling suffices at all, §4)");
  return 0;
}
