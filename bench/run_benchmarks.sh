#!/usr/bin/env bash
# Builds bench_micro in Release and regenerates the benchmark-regression
# baseline BENCH_micro.json at the repo root — or, with --check, measures
# into a scratch file and diffs medians against the committed baseline.
#
# Usage: bench/run_benchmarks.sh [--lint] [--check] [extra --benchmark_* flags...]
#
# --lint runs the static-analysis gate (fluxfp-lint including the
# concurrency rules guarded-member / lock-order / atomics-policy, header
# hygiene, clang-tidy when installed) first and refuses to measure a tree
# that fails it: numbers from a tree that violates the determinism or
# locking contracts are not comparable to the committed baseline.
#
# --check is the perf-regression gate: a fresh run is compared
# per-benchmark (median real_time) against the committed BENCH_micro.json;
# any benchmark slower than the baseline median by more than the tolerance
# (FLUXFP_BENCH_TOLERANCE, default 25% — sized for the reference
# container's host-contention noise) exits 3. Benchmarks present on only
# one side (renames, additions) are listed, not failed. The comparison
# refuses to judge runs from a different CPU model or SIMD backend than
# the baseline records — regenerate the baseline on the new machine
# instead.
#
# Regenerating the baseline (after an intentional perf change, a new
# benchmark, or a machine change):
#   bench/run_benchmarks.sh          # rewrites BENCH_micro.json in place
#   git add BENCH_micro.json         # commit it with the change
# then re-run `bench/run_benchmarks.sh --check` once to confirm the fresh
# baseline passes its own gate.
#
# The baseline is machine-specific: compare candidate runs only against a
# baseline produced on the same hardware (google-benchmark's
# tools/compare.py does this well). The committed baseline records the
# reference machine's numbers so regressions in the *shape* (e.g. BM_SmcRound
# scaling across thread counts) are visible in review.
#
# BM_SmcRound@1/2/4/8 and BM_StreamEpoch@1/2/4/8 sweep worker counts; on
# the single-core reference container their wall-clock is flat across the
# sweep (num_cpus=1 in the JSON) — the scaling shape only shows on
# multicore hardware. Per-session results are bit-identical either way.
#
# The reference container's run-to-run noise (host contention) can exceed
# the 2% acceptance bars, so the baseline records *medians over
# interleaved repetitions*: repetitions are randomly interleaved across
# benchmarks (--benchmark_enable_random_interleaving) so slow host phases
# hit every benchmark equally instead of biasing whichever ran during
# them, and the median discards the outlier repetitions entirely.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-bench}"

run_lint=0
run_check=0
while [[ "${1:-}" == "--lint" || "${1:-}" == "--check" ]]; do
  if [[ "$1" == "--lint" ]]; then
    run_lint=1
  else
    run_check=1
  fi
  shift
done

out_json="$repo_root/BENCH_micro.json"
if [[ "$run_check" == 1 ]]; then
  if [[ ! -f "$repo_root/BENCH_micro.json" ]]; then
    echo "run_benchmarks.sh: --check needs a committed BENCH_micro.json" >&2
    exit 1
  fi
  out_json="$(mktemp /tmp/fluxfp-bench-XXXXXX.json)"
fi

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=Release \
  -DFLUXFP_BUILD_TESTS=OFF \
  -DFLUXFP_BUILD_EXAMPLES=OFF

if [[ "$run_lint" == 1 ]]; then
  echo "== lint preflight =="
  if ! cmake --build "$build_dir" --target lint -j "$(nproc)"; then
    echo "run_benchmarks.sh: lint gate failed; refusing to measure a tree" \
         "that violates the project invariants" >&2
    exit 1
  fi
fi

cmake --build "$build_dir" --target bench_micro -j "$(nproc)"

"$build_dir/bench/bench_micro" \
  --benchmark_out="$out_json" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_enable_random_interleaving \
  --benchmark_report_aggregates_only=true \
  "$@"

echo "Wrote $out_json"

if [[ "$run_check" == 1 ]]; then
  echo "== perf-regression gate: fresh medians vs committed baseline =="
  python3 - "$repo_root/BENCH_micro.json" "$out_json" \
      "${FLUXFP_BENCH_TOLERANCE:-25}" <<'EOF'
import json
import sys

baseline_path, fresh_path, tolerance_pct = sys.argv[1:4]
tolerance = float(tolerance_pct) / 100.0

def load(path):
    with open(path) as f:
        report = json.load(f)
    medians = {}
    for b in report.get("benchmarks", []):
        name = b["name"]
        if name.endswith("_median") or name.endswith("/real_time_median"):
            key = name.rsplit("_median", 1)[0]
            key = key[: -len("/real_time")] if key.endswith("/real_time") else key
            medians[key] = float(b["real_time"])
    return report.get("context", {}), medians

base_ctx, base = load(baseline_path)
fresh_ctx, fresh = load(fresh_path)

# Comparability preflight: numbers from a different machine or SIMD
# backend are not regressions, they are a different baseline.
for key in ("fluxfp_simd_backend", "fluxfp_cpu_model"):
    b, f = base_ctx.get(key), fresh_ctx.get(key)
    if b is not None and f is not None and b != f:
        print(f"INCOMPARABLE: {key} baseline={b!r} fresh={f!r}; "
              "regenerate the baseline on this machine/build instead")
        sys.exit(2)

failures = []
for name in sorted(base):
    if name not in fresh:
        print(f"  baseline-only (renamed/removed?): {name}")
        continue
    ratio = fresh[name] / base[name] if base[name] > 0 else 1.0
    status = "ok"
    if ratio > 1.0 + tolerance:
        status = "REGRESSION"
        failures.append(name)
    print(f"  {status:>10}  {name}: {base[name]:.0f} -> {fresh[name]:.0f} ns"
          f"  ({(ratio - 1.0) * 100.0:+.1f}%)")
for name in sorted(set(fresh) - set(base)):
    print(f"  fresh-only (new benchmark?): {name}")

if failures:
    print(f"perf gate FAILED: {len(failures)} benchmark(s) regressed more "
          f"than {tolerance_pct}% over the committed baseline")
    sys.exit(3)
print(f"perf gate passed (tolerance {tolerance_pct}%)")
EOF
fi

# Surface the observability-overhead delta recorded in the baseline:
# BM_ObsOverhead/0 (obs disabled) vs BM_ObsOverhead/1 (obs recording) run
# the BM_StreamEpoch workload in the same binary, so their ratio is the
# instrumentation cost on the hottest path. The acceptance bar is < 2%.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out_json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)
times = {
    b["name"]: b["real_time"]
    for b in report.get("benchmarks", [])
    if b["name"].startswith("BM_ObsOverhead")
}
off = times.get("BM_ObsOverhead/0/real_time_median",
                times.get("BM_ObsOverhead/0/real_time"))
on = times.get("BM_ObsOverhead/1/real_time_median",
               times.get("BM_ObsOverhead/1/real_time"))
if off and on:
    delta = 100.0 * (on - off) / off
    print(f"obs overhead: off {off:.0f}ns  on {on:.0f}ns  delta {delta:+.2f}%")
else:
    print("obs overhead: BM_ObsOverhead not in this run (FLUXFP_OBS=OFF?)")
EOF
fi
