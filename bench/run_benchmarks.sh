#!/usr/bin/env bash
# Builds bench_micro in Release and regenerates the benchmark-regression
# baseline BENCH_micro.json at the repo root.
#
# Usage: bench/run_benchmarks.sh [--lint] [extra --benchmark_* flags...]
#
# --lint runs the static-analysis gate (fluxfp-lint, header hygiene,
# clang-tidy when installed) first and refuses to measure a tree that
# fails it: numbers from a tree that violates the determinism contracts
# are not comparable to the committed baseline.
#
# The baseline is machine-specific: compare candidate runs only against a
# baseline produced on the same hardware (google-benchmark's
# tools/compare.py does this well). The committed baseline records the
# reference machine's numbers so regressions in the *shape* (e.g. BM_SmcRound
# scaling across thread counts) are visible in review.
#
# BM_SmcRound@1/2/4/8 and BM_StreamEpoch@1/2/4/8 sweep worker counts; on
# the single-core reference container their wall-clock is flat across the
# sweep (num_cpus=1 in the JSON) — the scaling shape only shows on
# multicore hardware. Per-session results are bit-identical either way.
#
# The reference container's run-to-run noise (host contention) can exceed
# the 2% acceptance bars, so the baseline records *medians over
# interleaved repetitions*: repetitions are randomly interleaved across
# benchmarks (--benchmark_enable_random_interleaving) so slow host phases
# hit every benchmark equally instead of biasing whichever ran during
# them, and the median discards the outlier repetitions entirely.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-bench}"

run_lint=0
if [[ "${1:-}" == "--lint" ]]; then
  run_lint=1
  shift
fi

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=Release \
  -DFLUXFP_BUILD_TESTS=OFF \
  -DFLUXFP_BUILD_EXAMPLES=OFF

if [[ "$run_lint" == 1 ]]; then
  echo "== lint preflight =="
  if ! cmake --build "$build_dir" --target lint -j "$(nproc)"; then
    echo "run_benchmarks.sh: lint gate failed; refusing to measure a tree" \
         "that violates the project invariants" >&2
    exit 1
  fi
fi

cmake --build "$build_dir" --target bench_micro -j "$(nproc)"

"$build_dir/bench/bench_micro" \
  --benchmark_out="$repo_root/BENCH_micro.json" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_enable_random_interleaving \
  --benchmark_report_aggregates_only=true \
  "$@"

echo "Wrote $repo_root/BENCH_micro.json"

# Surface the observability-overhead delta recorded in the baseline:
# BM_ObsOverhead/0 (obs disabled) vs BM_ObsOverhead/1 (obs recording) run
# the BM_StreamEpoch workload in the same binary, so their ratio is the
# instrumentation cost on the hottest path. The acceptance bar is < 2%.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$repo_root/BENCH_micro.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)
times = {
    b["name"]: b["real_time"]
    for b in report.get("benchmarks", [])
    if b["name"].startswith("BM_ObsOverhead")
}
off = times.get("BM_ObsOverhead/0/real_time_median",
                times.get("BM_ObsOverhead/0/real_time"))
on = times.get("BM_ObsOverhead/1/real_time_median",
               times.get("BM_ObsOverhead/1/real_time"))
if off and on:
    delta = 100.0 * (on - off) / off
    print(f"obs overhead: off {off:.0f}ns  on {on:.0f}ns  delta {delta:+.2f}%")
else:
    print("obs overhead: BM_ObsOverhead not in this run (FLUXFP_OBS=OFF?)")
EOF
fi
