// Figure 5 — instant localization cases (§5.A).
//
// 900 nodes, 30x30 perturbed grid, radius 2.4, stretches U[1,3]; 10,000
// random location samples per user, top-10 kept. The paper's single
// instances report average top-10 error 0.97 (1 user), 1.27 (2 users),
// 1.63 (3 users), with rare outliers up to 1.78 / 2.06. We aggregate the
// same statistics over several instances.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/localizer.hpp"
#include "eval/metrics.hpp"
#include "eval/table.hpp"
#include "numeric/stats.hpp"
#include "sim/measurement.hpp"
#include "sim/sniffer.hpp"

using namespace fluxfp;

int main(int argc, char** argv) {
  const bench::Options opts = bench::parse_options(argc, argv);
  const int trials = opts.quick ? 2 : 10;
  const geom::RectField field = bench::paper_field();

  eval::print_banner(std::cout,
                     "Figure 5: instant localization, full flux map, "
                     "10,000 candidates/user, top-10 kept");

  eval::Table table({"users", "avg top-10 err", "max top-10 err",
                     "paper avg", "paper max"});
  const char* paper_avg[] = {"0.97", "1.27", "1.63"};
  const char* paper_max[] = {"-", "1.78", "2.06"};

  for (std::size_t k = 1; k <= 3; ++k) {
    std::vector<double> all_errors;
    double worst = 0.0;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(eval::derive_seed(opts.seed, {k, static_cast<std::uint64_t>(t)}));
      const bench::Testbed tb({}, field, rng);
      std::uniform_real_distribution<double> stretch(1.0, 3.0);
      std::vector<geom::Vec2> sinks;
      std::vector<sim::Collection> window;
      for (std::size_t j = 0; j < k; ++j) {
        sinks.push_back(geom::uniform_in_field(field, rng));
        window.push_back({j, sinks[j], stretch(rng)});
      }
      const sim::FluxEngine engine(tb.graph);
      const net::FluxMap flux = engine.measure(window, rng);

      // Full map: every node reports (Fig. 5 uses complete flux).
      std::vector<std::size_t> all(tb.graph.size());
      for (std::size_t i = 0; i < all.size(); ++i) {
        all[i] = i;
      }
      const core::SparseObjective obj =
          eval::make_objective(tb.model, tb.graph, flux, all);
      const core::InstantLocalizer loc(field);  // defaults: 10k, top-10
      const core::LocalizationResult res = loc.localize(obj, k, rng);

      // Score every kept candidate against the nearest true user — the
      // Fig. 5 dots-vs-stars scatter. (Candidates of nearby users may
      // legitimately interleave; flux carries no identities.)
      for (std::size_t j = 0; j < k; ++j) {
        for (const geom::Vec2& cand : res.top_positions[j]) {
          double e = geom::distance(cand, sinks[0]);
          for (std::size_t s = 1; s < k; ++s) {
            e = std::min(e, geom::distance(cand, sinks[s]));
          }
          all_errors.push_back(e);
          worst = std::max(worst, e);
        }
      }
    }
    table.add_row({std::to_string(k),
                   eval::Table::fmt(numeric::mean(all_errors)),
                   eval::Table::fmt(worst), paper_avg[k - 1],
                   paper_max[k - 1]});
  }
  table.print(std::cout);
  std::printf("(%d instances per row; errors grow with concurrent users "
              "as their flux cumulates)\n",
              trials);
  return 0;
}
