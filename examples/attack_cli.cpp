// Config-driven attack runner: the whole pipeline (deploy -> simulate ->
// sniff -> track) parameterized from `key = value` config files and/or
// --key value command-line overrides. A scriptable front door to the
// library for parameter studies beyond the canned benchmarks.
//
// Usage:
//   ./attack_cli [scenario.cfg] [--key value ...]
//
// Keys (defaults in parentheses):
//   nodes (900)        sensor count            radius (2.4)   comm radius
//   deployment (grid)  grid|random             users (2)      mobile users
//   rounds (10)        observation windows     fraction (0.1) sniffed nodes
//   vmax (5)           tracker max speed       seed (2010)    RNG seed
//   tracker (smc)      smc|instant|ekf         stretch (2.0)  traffic stretch
//   noise (0)          relative flux noise     dropout (0)    sniffer dropout
//   defense (none)     none|pad|dummy|jitter   pad_level (50) padding floor
//   dummy_count (2)    chaff trees per window  jitter_sigma (0.5)

#include <cstdio>
#include <iostream>
#include <memory>

#include "core/baseline.hpp"
#include "core/smc.hpp"
#include "eval/config.hpp"
#include "privacy/countermeasure.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "eval/table.hpp"
#include "sim/scenario.hpp"
#include "sim/sniffer.hpp"

int main(int argc, char** argv) {
  using namespace fluxfp;

  eval::Config cfg;
  const eval::Config args = eval::Config::parse_args(argc, argv);
  try {
    for (const std::string& path : args.positional()) {
      cfg.merge(eval::Config::parse_file(path));
    }
    cfg.merge(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "config error: %s\n", e.what());
    return 1;
  }

  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 900));
  const double radius = cfg.get_double("radius", 2.4);
  const std::string deployment = cfg.get_string("deployment", "grid");
  const auto users = static_cast<std::size_t>(cfg.get_int("users", 2));
  const int rounds = static_cast<int>(cfg.get_int("rounds", 10));
  const double fraction = cfg.get_double("fraction", 0.10);
  const double vmax = cfg.get_double("vmax", 5.0);
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 2010));
  const std::string tracker_kind = cfg.get_string("tracker", "smc");
  const double stretch = cfg.get_double("stretch", 2.0);
  sim::FluxNoise noise;
  noise.relative_sigma = cfg.get_double("noise", 0.0);
  noise.dropout_prob = cfg.get_double("dropout", 0.0);

  // Optional traffic-reshaping defense applied by the network each window.
  privacy::CountermeasureConfig def_cfg;
  const std::string defense = cfg.get_string("defense", "none");
  if (defense == "pad") {
    def_cfg.kind = privacy::CountermeasureKind::kConstantPadding;
    def_cfg.pad_level = cfg.get_double("pad_level", 50.0);
  } else if (defense == "dummy") {
    def_cfg.kind = privacy::CountermeasureKind::kDummyTrees;
    def_cfg.dummy_count =
        static_cast<std::size_t>(cfg.get_int("dummy_count", 2));
    def_cfg.dummy_stretch = cfg.get_double("stretch", 2.0);
  } else if (defense == "jitter") {
    def_cfg.kind = privacy::CountermeasureKind::kStretchJitter;
    def_cfg.jitter_sigma = cfg.get_double("jitter_sigma", 0.5);
  } else if (defense != "none") {
    std::fprintf(stderr, "unknown defense '%s' (none|pad|dummy|jitter)\n",
                 defense.c_str());
    return 1;
  }
  const privacy::Countermeasure defense_impl(def_cfg);

  geom::Rng rng(seed);
  const geom::RectField field(30.0, 30.0);
  eval::NetworkSpec spec;
  spec.nodes = nodes;
  spec.radius = radius;
  if (deployment == "random") {
    spec.kind = net::DeploymentKind::kUniformRandom;
  } else if (deployment != "grid") {
    std::fprintf(stderr, "unknown deployment '%s' (grid|random)\n",
                 deployment.c_str());
    return 1;
  }
  const net::UnitDiskGraph graph =
      eval::build_connected_network(spec, field, rng);
  const core::FluxModel model(field,
                              eval::estimate_d_min(graph, field, rng));
  std::printf("network: %zu nodes (%s), avg degree %.1f | %zu users, "
              "%d rounds, %.0f%% sniffed, tracker=%s\n",
              graph.size(), deployment.c_str(), graph.average_degree(),
              users, rounds, 100.0 * fraction, tracker_kind.c_str());

  // Random straight-line users below vmax.
  std::vector<sim::SimUser> sim_users;
  for (std::size_t j = 0; j < users; ++j) {
    const geom::Vec2 from = geom::uniform_in_field(field, rng);
    geom::Vec2 to = geom::uniform_in_field(field, rng);
    const double d = geom::distance(from, to);
    const double max_d = 0.8 * vmax * rounds;
    if (d > max_d) {
      to = from + (to - from) * (max_d / d);
    }
    sim::SimUser u;
    u.stretch = stretch;
    u.mobility = std::make_shared<sim::PathMobility>(
        geom::Polyline({from, to}), geom::distance(from, to) / rounds);
    sim_users.push_back(std::move(u));
  }

  sim::ScenarioConfig scfg;
  scfg.rounds = rounds;
  scfg.noise = noise;
  const auto observations = sim::run_scenario(graph, sim_users, scfg, rng);
  const auto sniffed = sim::sample_nodes_fraction(graph.size(), fraction, rng);

  // Tracker selection.
  std::unique_ptr<core::SmcTracker> smc;
  std::unique_ptr<core::InstantNlsTracker> instant;
  std::unique_ptr<core::EkfTracker> ekf;
  if (tracker_kind == "smc") {
    core::SmcConfig tcfg;
    tcfg.vmax = vmax;
    smc = std::make_unique<core::SmcTracker>(field, users, tcfg, rng);
  } else if (tracker_kind == "instant") {
    instant = std::make_unique<core::InstantNlsTracker>(field, users);
  } else if (tracker_kind == "ekf") {
    ekf = std::make_unique<core::EkfTracker>(field, users);
  } else {
    std::fprintf(stderr, "unknown tracker '%s' (smc|instant|ekf)\n",
                 tracker_kind.c_str());
    return 1;
  }

  eval::Table table({"round", "mean err", "max err"});
  double final_err = 0.0;
  double defense_overhead = 0.0;
  for (const auto& obs : observations) {
    net::FluxMap flux = obs.flux;
    defense_impl.apply(flux, graph, rng);
    defense_overhead += defense_impl.last_overhead();
    const core::SparseObjective objective =
        eval::make_objective(model, graph, flux, sniffed);
    std::vector<geom::Vec2> est;
    if (smc) {
      smc->step(obs.time, objective, rng);
      for (std::size_t j = 0; j < users; ++j) {
        est.push_back(smc->estimate(j));
      }
    } else if (instant) {
      est = instant->step(objective, rng);
    } else {
      est = ekf->step(objective, 1.0, rng);
    }
    final_err = eval::matched_mean_error(est, obs.true_positions);
    table.add_row({eval::Table::fmt(obs.time, 0),
                   eval::Table::fmt(final_err),
                   eval::Table::fmt(
                       eval::matched_max_error(est, obs.true_positions))});
  }
  table.print(std::cout);
  std::printf("final identity-free error: %.2f (field diameter %.1f)\n",
              final_err, field.diameter());
  if (def_cfg.kind != privacy::CountermeasureKind::kNone) {
    std::printf("defense '%s': total reshaping overhead %.0f flux units "
                "across %d windows\n",
                defense.c_str(), defense_overhead, rounds);
  }
  return 0;
}
