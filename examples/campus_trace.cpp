// Trace-driven demo (§5.C): a synthetic Dartmouth-style campus trace drives
// 20 mobile users who collect data asynchronously, each at its own times.
// The adversary runs the asynchronous-updating SMC tracker and reports the
// tracking error per user. Demonstrates the paper's key practical point:
// with asynchronous collections only a few users are active per window, so
// 20 coexisting users stay tractable.
//
// The windows are consumed through the streaming runtime: sniffer readings
// become a FluxEvent stream, recorded to an in-memory binary trace and
// replayed through a TrackerManager session — the same estimates the batch
// loop produced, now from a record/replay pipeline.
//
// Run: ./campus_trace [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/smc.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "numeric/hungarian.hpp"
#include "numeric/stats.hpp"
#include "sim/scenario.hpp"
#include "sim/sniffer.hpp"
#include "stream/emit.hpp"
#include "stream/manager.hpp"
#include "stream/trace_io.hpp"
#include "trace/generator.hpp"
#include "trace/replay.hpp"

int main(int argc, char** argv) {
  using namespace fluxfp;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  geom::Rng rng(seed);

  const geom::RectField field(30.0, 30.0);
  const net::UnitDiskGraph graph =
      eval::build_connected_network({}, field, rng);
  const core::FluxModel model(field,
                              eval::estimate_d_min(graph, field, rng));

  // 50 AP landmarks in a rectangular region; syslog-style association
  // trace; timeline compressed by 100 (as in §5.C).
  const auto aps = trace::grid_aps(field, 5, 10);
  // Figure 9 analogue: the AP landmark layout used as location references.
  std::puts("AP landmarks (Fig. 9 analogue, 50 APs in a rectangular "
            "region):");
  for (int row = 4; row >= 0; --row) {
    std::fputs("  ", stdout);
    for (int col = 0; col < 10; ++col) {
      std::printf("A%d%d ", row, col);
    }
    std::putchar('\n');
  }
  trace::TraceGenConfig gcfg;
  gcfg.num_users = 20;
  gcfg.duration = 40000.0;
  // Active segment of the records (§5.C intercepts segments): users
  // reassociate every few minutes, i.e. every few compressed windows.
  gcfg.median_dwell = 300.0;
  const trace::Trace tr = trace::generate_trace(aps, gcfg, rng);
  std::printf("trace: %zu association events across %zu users, %zu APs\n",
              tr.events.size(), tr.users().size(), tr.aps.size());

  const auto replayed = trace::replay_users(tr, {}, rng);
  std::vector<sim::SimUser> sim_users;
  for (const auto& u : replayed) {
    sim_users.push_back(u.sim);
  }

  sim::ScenarioConfig scfg;
  scfg.rounds = std::min(
      80, static_cast<int>(trace::compressed_end_time(replayed)) + 1);
  const auto observations = sim::run_scenario(graph, sim_users, scfg, rng);

  const auto sniffed = sim::sample_nodes_fraction(graph.size(), 0.10, rng);
  core::SmcConfig tcfg;
  tcfg.num_predictions = 600;

  // Streaming pipeline: emit each window's sniffer readings as events,
  // record the interleaved stream to an (in-memory) binary trace, then
  // replay the recording into a one-session tracking service. All 20 users
  // are tracked jointly by the session — the window flux is shared
  // evidence, so the session is the sharding unit, not the user.
  const auto events = stream::scenario_events(graph, observations, sniffed,
                                              /*user=*/0);
  std::stringstream trace_buffer;
  stream::TraceRecorder recorder(trace_buffer);
  recorder.write(std::span<const stream::FluxEvent>(events));

  stream::StreamTrackerConfig stcfg;
  stcfg.smc = tcfg;
  stcfg.expected_readings = sniffed.size();
  stream::TrackerManager manager({});
  manager.add_session(0, stream::StreamTracker(model, graph, sniffed,
                                               sim_users.size(), stcfg,
                                               seed));
  manager.start();
  stream::TraceReplayer replayer(trace_buffer);
  stream::replay_trace(replayer, manager);
  manager.finish();
  const stream::ManagerStats mstats = manager.stats();
  std::printf("replayed %llu recorded events (%.0f events/s, p99 filter "
              "latency %.0f us)\n",
              static_cast<unsigned long long>(mstats.events_processed),
              mstats.events_per_second,
              eval::summarize_latencies(mstats.filter_micros).p99);

  // Identity-free instant accuracy: per window, match the updated slots'
  // positions against the *active* users' true positions (min-cost
  // assignment). Flux alone cannot distinguish identities (Fig. 7(d)), so
  // this measures whether each detected collection is located correctly.
  auto identity_free_error = [](std::vector<geom::Vec2> est,
                                std::vector<geom::Vec2> truth) -> double {
    if (est.empty() || truth.empty()) {
      return -1.0;
    }
    if (est.size() > truth.size()) {
      std::swap(est, truth);
    }
    numeric::Matrix cost(est.size(), truth.size());
    for (std::size_t i = 0; i < est.size(); ++i) {
      for (std::size_t j = 0; j < truth.size(); ++j) {
        cost(i, j) = geom::distance(est[i], truth[j]);
      }
    }
    const auto assign = numeric::hungarian_assign(cost);
    return numeric::assignment_cost(cost, assign) /
           static_cast<double>(est.size());
  };

  std::vector<int> updates(sim_users.size(), 0);
  // Error at update instants (position known fresh) and against the whole
  // movement trajectory (§5.C scores calculated locations against the
  // user's movement trajectory).
  std::vector<std::vector<double>> update_errors(sim_users.size());
  std::vector<std::vector<double>> path_errors(sim_users.size());
  std::vector<double> window_errors;  // identity-free, per window
  int active_total = 0;
  for (const stream::EpochResult& res : manager.results(0)) {
    const auto& obs = observations[res.epoch];
    std::vector<geom::Vec2> updated_est;
    std::vector<geom::Vec2> active_truth;
    for (std::size_t u = 0; u < sim_users.size(); ++u) {
      active_total += obs.active[u] ? 1 : 0;
      if (obs.active[u]) {
        active_truth.push_back(obs.true_positions[u]);
      }
      if (res.step.updated[u]) {
        ++updates[u];
        updated_est.push_back(res.estimates[u]);
        update_errors[u].push_back(
            geom::distance(res.estimates[u], obs.true_positions[u]));
      }
      if (updates[u] > 0) {
        path_errors[u].push_back(
            replayed[u].path.distance_to(res.estimates[u]));
      }
    }
    const double we = identity_free_error(updated_est, active_truth);
    if (we >= 0.0) {
      window_errors.push_back(we);
    }
  }
  std::printf("windows simulated: %d, avg active users per window: %.2f\n",
              scfg.rounds,
              static_cast<double>(active_total) / scfg.rounds);

  std::puts("\nuser        updates  err@update  err-to-trajectory");
  std::vector<double> upd_means;
  std::vector<double> path_means;
  for (std::size_t u = 0; u < sim_users.size(); ++u) {
    if (update_errors[u].empty()) {
      std::printf("%-10s  %7d  %10s  %17s\n", replayed[u].name.c_str(),
                  updates[u], "-", "-");
      continue;
    }
    const double upd = numeric::mean(update_errors[u]);
    const double pth = numeric::mean(path_errors[u]);
    upd_means.push_back(upd);
    path_means.push_back(pth);
    std::printf("%-10s  %7d  %10.2f  %17.2f\n", replayed[u].name.c_str(),
                updates[u], upd, pth);
  }
  if (!upd_means.empty()) {
    std::printf("\nper-slot error at update instants: %.2f (identities mix "
                "freely, cf. Fig. 7(d))\n",
                numeric::mean(upd_means));
    std::printf("identity-free per-window location error: %.2f\n",
                numeric::mean(window_errors));
    std::printf("mean distance to movement trajectory (the §5.C metric): "
                "%.2f (field diameter %.1f)\n",
                numeric::mean(path_means), field.diameter());
  }
  return 0;
}
