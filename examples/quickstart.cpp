// Quickstart: the complete attack in ~60 lines.
//
// 1. Deploy a 900-node sensor network on a 30x30 field (the paper's §5.A
//    setting) and let one mobile user collect data over a collection tree.
// 2. Passively sniff the traffic *amount* at just 10% of the nodes.
// 3. Fit the flux model by NLS candidate search and recover the user's
//    position — no packet contents needed.
//
// Run: ./quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "core/localizer.hpp"
#include "eval/experiment.hpp"
#include "sim/measurement.hpp"
#include "sim/sniffer.hpp"

int main(int argc, char** argv) {
  using namespace fluxfp;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2010;
  geom::Rng rng(seed);

  // -- The victim network and user ------------------------------------
  const geom::RectField field(30.0, 30.0);
  const net::UnitDiskGraph graph =
      eval::build_connected_network({}, field, rng);
  std::printf("network: %zu nodes, avg degree %.1f\n", graph.size(),
              graph.average_degree());

  const geom::Vec2 true_position = geom::uniform_in_field(field, rng);
  std::uniform_real_distribution<double> stretch_dist(1.0, 3.0);
  const double stretch = stretch_dist(rng);
  std::printf("mobile user at (%.2f, %.2f), traffic stretch %.2f\n",
              true_position.x, true_position.y, stretch);

  // The user collects data: every node forwards toward it along a
  // collection tree, producing the network flux pattern.
  const sim::FluxEngine engine(graph);
  const std::vector<sim::Collection> window{{0, true_position, stretch}};
  const net::FluxMap flux = engine.measure(window, rng);

  // -- The adversary ---------------------------------------------------
  // Sniff traffic amounts at 10% of the nodes, picked at random.
  const auto sniffed = sim::sample_nodes_fraction(graph.size(), 0.10, rng);
  std::printf("adversary sniffs %zu of %zu nodes (10%%)\n", sniffed.size(),
              graph.size());

  const core::FluxModel model(field,
                              eval::estimate_d_min(graph, field, rng));
  const core::SparseObjective objective =
      eval::make_objective(model, graph, flux, sniffed);

  const core::InstantLocalizer localizer(field);  // 10,000 candidates
  const core::LocalizationResult result =
      localizer.localize(objective, /*num_users=*/1, rng);

  // -- Result ----------------------------------------------------------
  const double err = geom::distance(result.positions[0], true_position);
  std::printf("estimated position (%.2f, %.2f)  |  error %.2f "
              "(%.1f%% of field diameter)\n",
              result.positions[0].x, result.positions[0].y, err,
              100.0 * err / field.diameter());
  std::printf("fitted s/r %.2f, fit residual %.1f\n", result.stretches[0],
              result.residual);
  std::puts(err < 3.0 ? "attack succeeded: user located from traffic "
                        "volumes alone"
                      : "attack imprecise this run; try another seed");
  return 0;
}
