// Streaming tracking service demo: the full online pipeline of the
// streaming runtime. A simulator drives several concurrent tracking
// sessions (asynchronous collections, §4.E/§5.C); their sniffer reports
// become a single interleaved FluxEvent stream, optionally mangled by
// event-level transport faults (drops / duplicates / stragglers /
// reordering), recorded to a binary trace, then replayed into a sharded
// TrackerManager at a configurable speed. Because window deadlines are
// virtual time, the same trace produces bit-identical estimates at any
// replay speed and any worker count (under the blocking queue policy).
//
// Run: ./stream_daemon [--sessions N] [--rounds R] [--workers W]
//                      [--speed S] [--seed X] [--trace PATH] [--faulty]
//                      [--metrics]
//   --speed 0 (default) replays as fast as the service accepts;
//   --speed 1 is real time, 8 is 8x real time.
//   --metrics dumps the Prometheus text exposition of every metric the
//   run recorded (requires a build with FLUXFP_OBS=ON).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/flux_model.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "geom/field.hpp"
#include "numeric/stats.hpp"
#include "sim/faults.hpp"
#include "sim/scenario.hpp"
#include "sim/sniffer.hpp"
#include "stream/emit.hpp"
#include "stream/manager.hpp"
#include "stream/trace_io.hpp"

#if defined(FLUXFP_OBS_ENABLED)
#include "obs/obs.hpp"
#endif

int main(int argc, char** argv) {
  using namespace fluxfp;

  std::size_t sessions = 4;
  int rounds = 30;
  std::size_t workers = 2;
  double speed = 0.0;
  std::uint64_t seed = 42;
  std::string trace_path = "stream_daemon.trace";
  bool faulty = false;
  bool metrics = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--sessions")) {
      sessions = std::strtoull(next("--sessions"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--rounds")) {
      rounds = std::atoi(next("--rounds"));
    } else if (!std::strcmp(argv[i], "--workers")) {
      workers = std::strtoull(next("--workers"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--speed")) {
      speed = std::atof(next("--speed"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace_path = next("--trace");
    } else if (!std::strcmp(argv[i], "--faulty")) {
      faulty = true;
    } else if (!std::strcmp(argv[i], "--metrics")) {
      metrics = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }
  if (sessions == 0 || rounds <= 0 || workers == 0) {
    std::fputs("need sessions/rounds/workers >= 1\n", stderr);
    return 2;
  }

  // Shared deployment: one sensor field, one calibrated flux model, one
  // sniffer set — the tracking service watches many users on it at once.
  geom::Rng rng(seed);
  const geom::RectField field(20.0, 20.0);
  const net::UnitDiskGraph graph =
      eval::build_connected_network({}, field, rng);
  const core::FluxModel model(field, eval::estimate_d_min(graph, field, rng));
  const auto sniffed = sim::sample_nodes_fraction(graph.size(), 0.12, rng);
  std::printf("network: %zu nodes, %zu sniffers, field %.0fx%.0f\n",
              graph.size(), sniffed.size(), 20.0, 20.0);

  // Simulate each session independently with a staggered start so the
  // merged stream interleaves sessions (asynchronous collections).
  std::vector<std::vector<stream::FluxEvent>> per_session;
  std::vector<std::vector<geom::Vec2>> truths(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    geom::Rng srng(seed + 1000 * (s + 1));
    sim::SimUser user;
    user.mobility = std::make_shared<sim::RandomWaypointMobility>(
        field, 0.8, static_cast<double>(rounds) + 1.0, srng);
    sim::ScenarioConfig scfg;
    scfg.rounds = rounds;
    scfg.start_time = 0.13 * static_cast<double>(s);
    const auto obs = sim::run_scenario(graph, {user}, scfg, srng);
    for (const auto& o : obs) {
      truths[s].push_back(o.true_positions[0]);
    }
    per_session.push_back(stream::scenario_events(
        graph, obs, sniffed, static_cast<std::uint32_t>(s)));
  }
  std::vector<stream::FluxEvent> events =
      stream::merge_by_time(per_session);

  if (faulty) {
    sim::EventFaultPlan fplan;
    fplan.seed = seed + 7;
    fplan.drop_prob = 0.02;
    fplan.dup_prob = 0.05;
    fplan.late_prob = 0.02;
    fplan.jitter = 0.3;
    events = sim::apply_event_faults(events, fplan);
    std::puts("transport faults on: 2% drop, 5% dup, 2% late, 0.3 jitter");
  }

  stream::write_trace_file(trace_path, events);
  std::printf("recorded %zu events to %s (%zu bytes)\n", events.size(),
              trace_path.c_str(),
              stream::kTraceHeaderBytes +
                  events.size() * stream::kTraceRecordBytes);

  stream::ManagerConfig mcfg;
  mcfg.workers = workers;
  stream::TrackerManager manager(mcfg);
  stream::StreamTrackerConfig tcfg;
  tcfg.expected_readings = sniffed.size();
  for (std::size_t s = 0; s < sessions; ++s) {
    manager.add_session(
        static_cast<std::uint32_t>(s),
        stream::StreamTracker(model, graph, sniffed, 1, tcfg,
                              seed + 500 * (s + 1)));
  }
  manager.start();
  const std::uint64_t pushed =
      stream::replay_trace_file(trace_path, manager, speed);
  manager.finish();

  const stream::ManagerStats stats = manager.stats();
  std::printf("\nreplayed %llu events at %s over %zu workers in %.3fs "
              "(%.0f events/s)\n",
              static_cast<unsigned long long>(pushed),
              speed <= 0.0 ? "max speed" : "paced speed", manager.workers(),
              stats.wall_seconds, stats.events_per_second);
  const eval::LatencySummary lat =
      eval::summarize_latencies(stats.filter_micros);
  std::printf("epochs fired: %llu, filter latency us: p50 %.0f  p99 %.0f  "
              "max %.0f\n",
              static_cast<unsigned long long>(stats.epochs_fired), lat.p50,
              lat.p99, lat.max);

  std::puts("\nsession  epochs  dup  late  forced  mean-err");
  for (std::size_t s = 0; s < sessions; ++s) {
    const auto user = static_cast<std::uint32_t>(s);
    const stream::StreamStats& ss = manager.session(user).stats();
    std::vector<double> errors;
    for (const stream::EpochResult& r : manager.results(user)) {
      if (r.epoch < truths[s].size()) {
        errors.push_back(
            geom::distance(r.estimates[0], truths[s][r.epoch]));
      }
    }
    std::printf("%7zu  %6llu  %3llu  %4llu  %6llu  %8.2f\n", s,
                static_cast<unsigned long long>(ss.epochs_fired),
                static_cast<unsigned long long>(ss.duplicates),
                static_cast<unsigned long long>(ss.late),
                static_cast<unsigned long long>(ss.forced_closes),
                errors.empty() ? -1.0 : numeric::mean(errors));
  }

  if (metrics) {
#if defined(FLUXFP_OBS_ENABLED)
    std::puts("\n# metrics (Prometheus text exposition)");
    std::fputs(obs::MetricsRegistry::global().export_text().c_str(), stdout);
#else
    std::puts("\nmetrics: this binary was built with FLUXFP_OBS=OFF");
#endif
  }
  return 0;
}
