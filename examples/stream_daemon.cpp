// Streaming tracking service CLI — four subcommands over one seeded
// deployment:
//
//   local      the self-contained demo: simulate sessions, record the
//              event stream to a FLUXFPT1 trace, replay it into a
//              supervised TrackerManager in-process (crash recovery via
//              --checkpoint/--restore, see README "Surviving crashes");
//   serve      run the FXN1 network service: the same deployment behind
//              a TCP/Unix socket, multi-tenant admission, supervised
//              crash recovery under live connections;
//   replay-to  stream a recorded trace to a running server at Nx speed
//              over one connection (netio::Client);
//   query      ask a running server for a quiesced estimate, service
//              metrics, or the newest checkpoint image.
//
// Invoked with flags only (no subcommand), `local` is assumed — the
// pre-subcommand invocations in older docs keep working.
//
// Every parse failure — unknown subcommand, unknown flag, missing or
// non-numeric value — goes through one usage_error() path: message to
// stderr, brief usage, exit 2. `--help` prints the full help to stdout
// and exits 0.

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/flux_model.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "geom/field.hpp"
#include "netio/client.hpp"
#include "netio/server.hpp"
#include "numeric/stats.hpp"
#include "sim/faults.hpp"
#include "sim/scenario.hpp"
#include "sim/sniffer.hpp"
#include "stream/emit.hpp"
#include "stream/manager.hpp"
#include "stream/supervisor.hpp"
#include "stream/trace_io.hpp"

#if defined(FLUXFP_OBS_ENABLED)
#include "obs/obs.hpp"
#endif

namespace {

using namespace fluxfp;

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

constexpr const char* kUsageBrief =
    "usage: stream_daemon [local|serve|replay-to ADDR|query ADDR] "
    "[flags]\n"
    "       stream_daemon --help\n";

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "stream_daemon: %s\n%s", message.c_str(),
               kUsageBrief);
  std::exit(2);
}

void print_help() {
  std::puts(
      "stream_daemon - streaming tracking service\n"
      "\n"
      "  stream_daemon local [flags]       in-process demo "
      "(default subcommand)\n"
      "  stream_daemon serve [flags]       run the FXN1 network service\n"
      "  stream_daemon replay-to ADDR      stream a trace to a server\n"
      "  stream_daemon query ADDR          query a running server\n"
      "\n"
      "ADDR is unix:/path/to.sock or tcp:HOST:PORT.\n"
      "\n"
      "shared deployment flags (local, serve):\n"
      "  --sessions N          tracking sessions (default 4)\n"
      "  --workers W           worker threads (default 2)\n"
      "  --seed X              deployment + mobility seed (default 42)\n"
      "\n"
      "local:\n"
      "  --rounds R            observation rounds per session (default 30)\n"
      "  --speed S             replay pacing: 0 = max speed (default),\n"
      "                        1 = real time, 8 = 8x real time\n"
      "  --trace PATH          event trace file (default "
      "stream_daemon.trace)\n"
      "  --faulty              apply transport faults "
      "(drop/dup/late/jitter)\n"
      "  --checkpoint PATH     write FLUXFPC1 snapshots to PATH and the\n"
      "                        covered trace offset to PATH.pos\n"
      "  --checkpoint-every N  snapshot cadence in accepted events "
      "(default 256)\n"
      "  --restore PATH        resume from PATH (+ PATH.pos)\n"
      "  --metrics             print the Prometheus exposition at exit\n"
      "\n"
      "serve:\n"
      "  --listen ADDR         endpoint (default tcp:127.0.0.1:7440;\n"
      "                        tcp port 0 = ephemeral, printed at start)\n"
      "  --tenants T           spread sessions over T tenants, session s\n"
      "                        owned by tenant s%T, priority s (default 1)\n"
      "  --token T:TOK         require token TOK for tenant T "
      "(repeatable;\n"
      "                        none = open auth)\n"
      "  --quota N             max in-flight events per tenant "
      "(default 0 = off)\n"
      "  --admission P         over-quota policy: block, shed-newest,\n"
      "                        shed-lowest (default block)\n"
      "  --queue-capacity N    per-worker ingest queue bound "
      "(default 256)\n"
      "  --checkpoint PATH     persist FLUXFPC1 snapshots to PATH\n"
      "  --checkpoint-epochs N snapshot cadence in fired epochs "
      "(default 32)\n"
      "  --latency-sample N    sample every Nth accepted event "
      "(default 16)\n"
      "\n"
      "replay-to ADDR:\n"
      "  --trace PATH          trace to stream (default "
      "stream_daemon.trace)\n"
      "  --tenant T --token K  authenticate as tenant T (default 0, "
      "open)\n"
      "  --speed S             pacing as in local (default 0 = max)\n"
      "  --batch B             events per EVENT_BATCH frame (default 64)\n"
      "\n"
      "query ADDR:\n"
      "  --tenant T --token K  authenticate as tenant T\n"
      "  --user U              print the quiesced estimate of session U\n"
      "  --metrics             print the server's METRICS report\n"
      "  --snapshot PATH       save the newest checkpoint image to PATH\n"
      "\n"
      "exit status: 0 ok, 1 runtime failure, 2 usage error.");
}

std::uint64_t parse_u64(const char* flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    usage_error(std::string(flag) + " needs a non-negative integer, got '" +
                text + "'");
  }
  return v;
}

double parse_f64(const char* flag, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    usage_error(std::string(flag) + " needs a number, got '" + text + "'");
  }
  return v;
}

netio::Endpoint parse_endpoint(const std::string& spec) {
  std::string why;
  const auto ep = netio::Endpoint::parse(spec, &why);
  if (!ep) {
    usage_error(why);
  }
  return *ep;
}

/// Pulls flag values off argv; missing values go through usage_error.
struct ArgCursor {
  int argc;
  char** argv;
  int i;

  std::string value(const char* flag) {
    if (i + 1 >= argc) {
      usage_error(std::string(flag) + " needs a value");
    }
    return argv[++i];
  }
};

/// The shared seeded deployment: one sensor field, one calibrated flux
/// model, one sniffer set. Everything derives from the seed — `serve` on
/// one host and `local --restore` on another rebuild the same network,
/// and a snapshot taken against it restores cleanly.
struct Deployment {
  geom::Rng rng;
  geom::RectField field;
  net::UnitDiskGraph graph;
  core::FluxModel model;
  std::vector<std::size_t> sniffed;

  explicit Deployment(std::uint64_t seed)
      : rng(seed),
        field(20.0, 20.0),
        graph(eval::build_connected_network({}, field, rng)),
        model(field, eval::estimate_d_min(graph, field, rng)),
        sniffed(sim::sample_nodes_fraction(graph.size(), 0.12, rng)) {}
};

/// Supervisor factory over the shared deployment: sessions 0..N-1, tenant
/// s%tenants, priority s. Every incarnation gets the same construction
/// inputs (the restore contract of the checkpoint format).
stream::Supervisor::ManagerFactory make_factory(
    const Deployment& dep, std::size_t sessions, std::size_t tenants,
    stream::ManagerConfig mcfg, std::uint64_t seed,
    const stream::ManagerCheckpoint* restored) {
  stream::StreamTrackerConfig tcfg;
  tcfg.expected_readings = dep.sniffed.size();
  return [&dep, sessions, tenants, mcfg, tcfg, seed, restored]() {
    auto m = std::make_unique<stream::TrackerManager>(mcfg);
    for (std::size_t s = 0; s < sessions; ++s) {
      stream::SessionOptions opts;
      opts.tenant = static_cast<std::uint32_t>(s % tenants);
      opts.priority = static_cast<std::uint32_t>(s);
      m->add_session(static_cast<std::uint32_t>(s),
                     stream::StreamTracker(dep.model, dep.graph, dep.sniffed,
                                           1, tcfg, seed + 500 * (s + 1)),
                     opts);
    }
    if (restored != nullptr) {
      m->restore(*restored);
    }
    return m;
  };
}

bool read_pos_file(const std::string& path, std::uint64_t& out) {
  std::ifstream in(path);
  return static_cast<bool>(in >> out);
}

void write_pos_file(const std::string& path, std::uint64_t pos) {
  std::ofstream out(path, std::ios::trunc);
  out << pos << "\n";
}

// ---------------------------------------------------------------------------
// local
// ---------------------------------------------------------------------------

int run_local(int argc, char** argv, int first) {
  std::size_t sessions = 4;
  int rounds = 30;
  std::size_t workers = 2;
  double speed = 0.0;
  std::uint64_t seed = 42;
  std::string trace_path = "stream_daemon.trace";
  std::string checkpoint_path;
  std::string restore_path;
  std::size_t checkpoint_every = 256;
  bool faulty = false;
  bool metrics = false;
  ArgCursor args{argc, argv, first};
  for (; args.i < argc; ++args.i) {
    const char* a = argv[args.i];
    if (!std::strcmp(a, "--sessions")) {
      sessions = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--rounds")) {
      rounds = static_cast<int>(parse_u64(a, args.value(a)));
    } else if (!std::strcmp(a, "--workers")) {
      workers = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--speed")) {
      speed = parse_f64(a, args.value(a));
    } else if (!std::strcmp(a, "--seed")) {
      seed = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--trace")) {
      trace_path = args.value(a);
    } else if (!std::strcmp(a, "--checkpoint")) {
      checkpoint_path = args.value(a);
    } else if (!std::strcmp(a, "--checkpoint-every")) {
      checkpoint_every = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--restore")) {
      restore_path = args.value(a);
    } else if (!std::strcmp(a, "--faulty")) {
      faulty = true;
    } else if (!std::strcmp(a, "--metrics")) {
      metrics = true;
    } else if (!std::strcmp(a, "--help")) {
      print_help();
      return 0;
    } else {
      usage_error(std::string("unknown flag '") + a + "' for local");
    }
  }
  if (sessions == 0 || rounds <= 0 || workers == 0) {
    usage_error("need --sessions/--rounds/--workers >= 1");
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  Deployment dep(seed);
  std::printf("network: %zu nodes, %zu sniffers, field %.0fx%.0f\n",
              dep.graph.size(), dep.sniffed.size(), 20.0, 20.0);

  // Simulate each session independently with a staggered start so the
  // merged stream interleaves sessions (asynchronous collections).
  std::vector<std::vector<stream::FluxEvent>> per_session;
  std::vector<std::vector<geom::Vec2>> truths(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    geom::Rng srng(seed + 1000 * (s + 1));
    sim::SimUser user;
    user.mobility = std::make_shared<sim::RandomWaypointMobility>(
        dep.field, 0.8, static_cast<double>(rounds) + 1.0, srng);
    sim::ScenarioConfig scfg;
    scfg.rounds = rounds;
    scfg.start_time = 0.13 * static_cast<double>(s);
    const auto obs = sim::run_scenario(dep.graph, {user}, scfg, srng);
    for (const auto& o : obs) {
      truths[s].push_back(o.true_positions[0]);
    }
    per_session.push_back(stream::scenario_events(
        dep.graph, obs, dep.sniffed, static_cast<std::uint32_t>(s)));
  }
  std::vector<stream::FluxEvent> events =
      stream::merge_by_time(per_session);

  if (faulty) {
    sim::EventFaultPlan fplan;
    fplan.seed = seed + 7;
    fplan.drop_prob = 0.02;
    fplan.dup_prob = 0.05;
    fplan.late_prob = 0.02;
    fplan.jitter = 0.3;
    events = sim::apply_event_faults(events, fplan);
    std::puts("transport faults on: 2% drop, 5% dup, 2% late, 0.3 jitter");
  }

  stream::write_trace_file(trace_path, events);
  std::printf("recorded %zu events to %s (%zu bytes)\n", events.size(),
              trace_path.c_str(),
              stream::kTraceHeaderBytes +
                  events.size() * stream::kTraceRecordBytes);

  // Resume state: the snapshot plus the trace offset it covers.
  stream::ManagerCheckpoint restored;
  bool have_restore = false;
  std::uint64_t skip = 0;
  if (!restore_path.empty()) {
    if (const auto err =
            stream::read_checkpoint_file(restore_path, restored)) {
      std::fprintf(stderr, "restore %s: %s\n", restore_path.c_str(),
                   err->to_string().c_str());
      return 1;
    }
    if (!read_pos_file(restore_path + ".pos", skip)) {
      std::fprintf(stderr, "restore: cannot read %s.pos\n",
                   restore_path.c_str());
      return 1;
    }
    have_restore = true;
    std::printf("restoring %zu sessions from %s, skipping %llu committed "
                "events\n",
                restored.sessions.size(), restore_path.c_str(),
                static_cast<unsigned long long>(skip));
  }

  stream::ManagerConfig mcfg;
  mcfg.workers = workers;
  const auto factory = make_factory(dep, sessions, 1, mcfg, seed,
                                    have_restore ? &restored : nullptr);

  stream::SupervisorConfig scfg2;
  // The daemon advances the .pos resume offset per committed snapshot, so
  // its cadence is the exact-event-count flag; the default epoch cadence
  // is turned off to keep --checkpoint-every the single knob.
  scfg2.checkpoint_every_events = checkpoint_every;
  scfg2.checkpoint_every_epochs = 0;
  scfg2.checkpoint_path = checkpoint_path;
  stream::Supervisor supervisor(factory, scfg2);
  supervisor.start();

  // The replay loop is the daemon's own (rather than replay_trace_file)
  // so SIGINT/SIGTERM can stop it between events and pacing sleeps stay
  // interruptible; the resume offset advances in lockstep with committed
  // checkpoints.
  std::ifstream trace_in(trace_path, std::ios::binary);
  stream::TraceReplayer replayer(trace_in);
  std::uint64_t offered = 0;
  std::uint64_t checkpoints_seen = supervisor.stats().checkpoints;
  {
    stream::FluxEvent skipped;
    for (std::uint64_t i = 0; i < skip && replayer.next(skipped); ++i) {
    }
  }
  std::optional<stream::ReplayPacer> pacer;
  stream::FluxEvent event;
  bool trace_ok = true;
  while (!g_stop && replayer.try_next(event)) {
    if (speed > 0.0) {
      if (!pacer) {
        pacer.emplace(speed, event.time);
      }
      if (!pacer->pace(event.time, [] { return g_stop != 0; })) {
        break;  // the un-offered event replays on the next --restore run
      }
    }
    supervisor.offer(event);
    ++offered;
    if (!checkpoint_path.empty() &&
        supervisor.stats().checkpoints != checkpoints_seen) {
      // A snapshot just committed; everything up to `offered` is in it.
      checkpoints_seen = supervisor.stats().checkpoints;
      write_pos_file(checkpoint_path + ".pos", skip + offered);
    }
  }
  if (replayer.error()) {
    std::fprintf(stderr, "trace %s: %s\n", trace_path.c_str(),
                 replayer.error()->to_string().c_str());
    trace_ok = false;
  }
  if (g_stop) {
    std::puts("\nsignal received: draining...");
  }
  supervisor.finish();
  if (!checkpoint_path.empty()) {
    // finish() wrote the final post-flush snapshot; record its coverage.
    write_pos_file(checkpoint_path + ".pos", skip + offered);
  }

  const stream::TrackerManager* manager = supervisor.manager();
  if (manager == nullptr) {
    std::fputs("service unrecoverable; committed results only\n", stderr);
    return 1;
  }
  const stream::ManagerStats stats = manager->stats();
  const stream::SupervisorStats sstats = supervisor.stats();
  std::printf("\nreplayed %llu events at %s over %zu workers in %.3fs "
              "(%.0f events/s)\n",
              static_cast<unsigned long long>(offered),
              speed <= 0.0 ? "max speed" : "paced speed", manager->workers(),
              stats.wall_seconds, stats.events_per_second);
  if (pacer && pacer->max_behind_seconds() > 0.0) {
    std::printf("pacing: worst lag behind schedule %.1f ms\n",
                1e3 * pacer->max_behind_seconds());
  }
  std::printf("checkpoints: %llu committed, newest %llu bytes%s%s\n",
              static_cast<unsigned long long>(sstats.checkpoints),
              static_cast<unsigned long long>(sstats.checkpoint_bytes),
              checkpoint_path.empty() ? "" : ", persisted to ",
              checkpoint_path.c_str());
  const eval::LatencySummary lat =
      eval::summarize_latencies(stats.filter_micros);
  std::printf("epochs fired: %llu, filter latency us: p50 %.0f  p99 %.0f  "
              "max %.0f\n",
              static_cast<unsigned long long>(stats.epochs_fired), lat.p50,
              lat.p99, lat.max);

  std::puts("\nsession  epochs  dup  late  forced  mean-err");
  for (std::size_t s = 0; s < sessions; ++s) {
    const auto user = static_cast<std::uint32_t>(s);
    const stream::StreamStats& ss = manager->session(user).stats();
    std::vector<double> errors;
    for (const stream::EpochResult& r : supervisor.results(user)) {
      if (r.epoch < truths[s].size()) {
        errors.push_back(
            geom::distance(r.estimates[0], truths[s][r.epoch]));
      }
    }
    std::printf("%7zu  %6llu  %3llu  %4llu  %6llu  %8.2f\n", s,
                static_cast<unsigned long long>(ss.epochs_fired),
                static_cast<unsigned long long>(ss.duplicates),
                static_cast<unsigned long long>(ss.late),
                static_cast<unsigned long long>(ss.forced_closes),
                errors.empty() ? -1.0 : numeric::mean(errors));
  }

  if (metrics) {
#if defined(FLUXFP_OBS_ENABLED)
    std::puts("\n# metrics (Prometheus text exposition)");
    std::fputs(obs::MetricsRegistry::global().export_text().c_str(), stdout);
#else
    std::puts("\nmetrics: this binary was built with FLUXFP_OBS=OFF");
#endif
  }
  return trace_ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

int run_serve(int argc, char** argv, int first) {
  std::string listen = "tcp:127.0.0.1:7440";
  std::size_t sessions = 4;
  std::size_t tenants = 1;
  std::size_t workers = 2;
  std::uint64_t seed = 42;
  std::size_t quota = 0;
  std::size_t queue_capacity = 256;
  std::size_t checkpoint_epochs = 32;
  std::size_t latency_sample = 16;
  std::string checkpoint_path;
  stream::AdmissionPolicy admission = stream::AdmissionPolicy::kBlock;
  std::map<std::uint32_t, std::uint64_t> tokens;
  ArgCursor args{argc, argv, first};
  for (; args.i < argc; ++args.i) {
    const char* a = argv[args.i];
    if (!std::strcmp(a, "--listen")) {
      listen = args.value(a);
    } else if (!std::strcmp(a, "--sessions")) {
      sessions = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--tenants")) {
      tenants = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--workers")) {
      workers = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--seed")) {
      seed = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--quota")) {
      quota = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--queue-capacity")) {
      queue_capacity = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--checkpoint")) {
      checkpoint_path = args.value(a);
    } else if (!std::strcmp(a, "--checkpoint-epochs")) {
      checkpoint_epochs = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--latency-sample")) {
      latency_sample = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--admission")) {
      const std::string policy = args.value(a);
      if (policy == "block") {
        admission = stream::AdmissionPolicy::kBlock;
      } else if (policy == "shed-newest") {
        admission = stream::AdmissionPolicy::kShedNewest;
      } else if (policy == "shed-lowest") {
        admission = stream::AdmissionPolicy::kShedLowestPriority;
      } else {
        usage_error("--admission must be block, shed-newest, or "
                    "shed-lowest, got '" +
                    policy + "'");
      }
    } else if (!std::strcmp(a, "--token")) {
      const std::string pair = args.value(a);
      const std::size_t colon = pair.find(':');
      if (colon == std::string::npos) {
        usage_error("--token needs TENANT:TOKEN, got '" + pair + "'");
      }
      const std::uint64_t tenant =
          parse_u64("--token tenant", pair.substr(0, colon));
      tokens[static_cast<std::uint32_t>(tenant)] =
          parse_u64("--token value", pair.substr(colon + 1));
    } else if (!std::strcmp(a, "--help")) {
      print_help();
      return 0;
    } else {
      usage_error(std::string("unknown flag '") + a + "' for serve");
    }
  }
  if (sessions == 0 || tenants == 0 || workers == 0) {
    usage_error("need --sessions/--tenants/--workers >= 1");
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  Deployment dep(seed);
  stream::ManagerConfig mcfg;
  mcfg.workers = workers;
  mcfg.queue_capacity = queue_capacity;
  mcfg.tenant_quota = quota;
  mcfg.admission = admission;
  const auto factory =
      make_factory(dep, sessions, tenants, mcfg, seed, nullptr);
  stream::SupervisorConfig scfg;
  scfg.checkpoint_every_epochs = checkpoint_epochs;
  scfg.checkpoint_path = checkpoint_path;

  netio::ServerConfig ncfg;
  ncfg.endpoint = parse_endpoint(listen);
  ncfg.tenant_tokens = std::move(tokens);
  ncfg.latency_sample_every = latency_sample;

  netio::Server server(factory, scfg, ncfg);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve: %s\n", e.what());
    return 1;
  }
  std::printf("serving %zu sessions (%zu tenants) on %s over %zu workers; "
              "Ctrl-C to stop\n",
              sessions, tenants, server.endpoint().to_string().c_str(),
              workers);
  std::fflush(stdout);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const netio::MetricsMsg m = server.metrics();
  server.stop();
  std::printf("\nserved %llu connections: %llu events accepted, %llu "
              "processed, %llu shed, %llu foreign, %llu error frames\n",
              static_cast<unsigned long long>(m.connections_opened),
              static_cast<unsigned long long>(m.events_accepted),
              static_cast<unsigned long long>(m.events_processed),
              static_cast<unsigned long long>(m.events_shed),
              static_cast<unsigned long long>(m.events_foreign),
              static_cast<unsigned long long>(m.error_frames));
  std::printf("checkpoints %llu, restarts %llu, ingest-to-estimate us: "
              "p50 %.0f  p99 %.0f (%llu samples)\n",
              static_cast<unsigned long long>(m.checkpoints),
              static_cast<unsigned long long>(m.restarts), m.ingest_p50_us,
              m.ingest_p99_us,
              static_cast<unsigned long long>(m.ingest_samples));
  return 0;
}

// ---------------------------------------------------------------------------
// replay-to
// ---------------------------------------------------------------------------

int run_replay_to(int argc, char** argv, int first) {
  if (first >= argc || argv[first][0] == '-') {
    usage_error("replay-to needs an ADDR operand");
  }
  const netio::Endpoint endpoint = parse_endpoint(argv[first]);
  std::string trace_path = "stream_daemon.trace";
  std::uint64_t tenant = 0;
  std::uint64_t token = 0;
  double speed = 0.0;
  std::size_t batch_size = 64;
  ArgCursor args{argc, argv, first + 1};
  for (; args.i < argc; ++args.i) {
    const char* a = argv[args.i];
    if (!std::strcmp(a, "--trace")) {
      trace_path = args.value(a);
    } else if (!std::strcmp(a, "--tenant")) {
      tenant = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--token")) {
      token = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--speed")) {
      speed = parse_f64(a, args.value(a));
    } else if (!std::strcmp(a, "--batch")) {
      batch_size = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--help")) {
      print_help();
      return 0;
    } else {
      usage_error(std::string("unknown flag '") + a + "' for replay-to");
    }
  }
  if (batch_size == 0) {
    usage_error("--batch must be >= 1");
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::ifstream trace_in(trace_path, std::ios::binary);
  if (!trace_in) {
    std::fprintf(stderr, "replay-to: cannot open %s\n", trace_path.c_str());
    return 1;
  }

  netio::Client client;
  if (!client.connect(endpoint, static_cast<std::uint32_t>(tenant),
                      token)) {
    std::fprintf(stderr, "replay-to: %s\n", client.last_error().c_str());
    return 1;
  }
  std::printf("connected to %s as tenant %llu (%u sessions registered)\n",
              endpoint.to_string().c_str(),
              static_cast<unsigned long long>(tenant),
              client.welcome().sessions);

  netio::BatchAckMsg totals;
  auto flush = [&](std::vector<stream::FluxEvent>& batch) {
    if (batch.empty()) {
      return true;
    }
    netio::BatchAckMsg ack;
    if (!client.send_batch(batch, ack)) {
      std::fprintf(stderr, "replay-to: %s\n", client.last_error().c_str());
      return false;
    }
    totals.accepted += ack.accepted;
    totals.shed += ack.shed;
    totals.unknown += ack.unknown;
    totals.foreign += ack.foreign;
    totals.closed += ack.closed;
    batch.clear();
    return true;
  };

  const auto wall_start = std::chrono::steady_clock::now();
  std::optional<stream::ReplayPacer> pacer;
  std::vector<stream::FluxEvent> batch;
  stream::FluxEvent event;
  std::uint64_t sent = 0;
  bool ok = true;
  try {
    stream::TraceReplayer replayer(trace_in);
    while (!g_stop && replayer.next(event)) {
      if (speed > 0.0) {
        if (!pacer) {
          pacer.emplace(speed, event.time);
        }
        if (!pacer->pace(event.time, [] { return g_stop != 0; })) {
          break;
        }
      }
      batch.push_back(event);
      ++sent;
      if (batch.size() >= batch_size && !flush(batch)) {
        ok = false;
        break;
      }
    }
    if (ok && !flush(batch)) {
      ok = false;
    }
  } catch (const stream::TraceFormatError& e) {
    std::fprintf(stderr, "replay-to: trace %s: %s\n", trace_path.c_str(),
                 e.what());
    ok = false;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  std::printf("streamed %llu events in %.3fs (%.0f events/s offered): "
              "%llu accepted, %llu shed, %llu unknown, %llu foreign, "
              "%llu closed\n",
              static_cast<unsigned long long>(sent), wall,
              wall > 0.0 ? static_cast<double>(sent) / wall : 0.0,
              static_cast<unsigned long long>(totals.accepted),
              static_cast<unsigned long long>(totals.shed),
              static_cast<unsigned long long>(totals.unknown),
              static_cast<unsigned long long>(totals.foreign),
              static_cast<unsigned long long>(totals.closed));
  if (pacer && pacer->max_behind_seconds() > 0.0) {
    std::printf("pacing: worst lag behind schedule %.1f ms\n",
                1e3 * pacer->max_behind_seconds());
  }
  if (ok) {
    client.goodbye();
  }
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// query
// ---------------------------------------------------------------------------

int run_query(int argc, char** argv, int first) {
  if (first >= argc || argv[first][0] == '-') {
    usage_error("query needs an ADDR operand");
  }
  const netio::Endpoint endpoint = parse_endpoint(argv[first]);
  std::uint64_t tenant = 0;
  std::uint64_t token = 0;
  std::optional<std::uint32_t> user;
  bool metrics = false;
  std::string snapshot_path;
  ArgCursor args{argc, argv, first + 1};
  for (; args.i < argc; ++args.i) {
    const char* a = argv[args.i];
    if (!std::strcmp(a, "--tenant")) {
      tenant = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--token")) {
      token = parse_u64(a, args.value(a));
    } else if (!std::strcmp(a, "--user")) {
      user = static_cast<std::uint32_t>(parse_u64(a, args.value(a)));
    } else if (!std::strcmp(a, "--metrics")) {
      metrics = true;
    } else if (!std::strcmp(a, "--snapshot")) {
      snapshot_path = args.value(a);
    } else if (!std::strcmp(a, "--help")) {
      print_help();
      return 0;
    } else {
      usage_error(std::string("unknown flag '") + a + "' for query");
    }
  }
  if (!user && !metrics && snapshot_path.empty()) {
    usage_error("query needs --user, --metrics, or --snapshot");
  }

  netio::Client client;
  if (!client.connect(endpoint, static_cast<std::uint32_t>(tenant),
                      token)) {
    std::fprintf(stderr, "query: %s\n", client.last_error().c_str());
    return 1;
  }

  if (user) {
    netio::EstimateMsg est;
    if (!client.query_estimate(*user, est)) {
      std::fprintf(stderr, "query: %s\n", client.last_error().c_str());
      return 1;
    }
    std::printf("session %u: %llu epochs fired, %llu events folded, "
                "t=%.3f\n",
                est.user,
                static_cast<unsigned long long>(est.epochs_fired),
                static_cast<unsigned long long>(est.events_folded),
                est.time);
    for (std::size_t slot = 0; slot < est.estimates.size(); ++slot) {
      std::printf("  slot %zu: (%.3f, %.3f)\n", slot,
                  est.estimates[slot].x, est.estimates[slot].y);
    }
  }
  if (metrics) {
    netio::MetricsMsg m;
    if (!client.metrics(m)) {
      std::fprintf(stderr, "query: %s\n", client.last_error().c_str());
      return 1;
    }
    std::printf("events: %llu accepted, %llu processed, %llu shed, %llu "
                "unknown, %llu foreign (%llu batches, %llu error frames)\n",
                static_cast<unsigned long long>(m.events_accepted),
                static_cast<unsigned long long>(m.events_processed),
                static_cast<unsigned long long>(m.events_shed),
                static_cast<unsigned long long>(m.events_unknown),
                static_cast<unsigned long long>(m.events_foreign),
                static_cast<unsigned long long>(m.batches),
                static_cast<unsigned long long>(m.error_frames));
    std::printf("connections: %llu opened, %llu active; sessions %llu; "
                "checkpoints %llu; restarts %llu\n",
                static_cast<unsigned long long>(m.connections_opened),
                static_cast<unsigned long long>(m.connections_active),
                static_cast<unsigned long long>(m.sessions),
                static_cast<unsigned long long>(m.checkpoints),
                static_cast<unsigned long long>(m.restarts));
    std::printf("throughput %.0f events/s over %.3fs; ingest-to-estimate "
                "us: p50 %.0f  p99 %.0f  max %.0f (%llu samples)\n",
                m.events_per_second, m.wall_seconds, m.ingest_p50_us,
                m.ingest_p99_us, m.ingest_max_us,
                static_cast<unsigned long long>(m.ingest_samples));
  }
  if (!snapshot_path.empty()) {
    std::string image;
    if (!client.snapshot(image)) {
      std::fprintf(stderr, "query: %s\n", client.last_error().c_str());
      return 1;
    }
    std::ofstream out(snapshot_path, std::ios::binary | std::ios::trunc);
    out.write(image.data(),
              static_cast<std::streamsize>(image.size()));
    if (!out) {
      std::fprintf(stderr, "query: cannot write %s\n",
                   snapshot_path.c_str());
      return 1;
    }
    std::printf("snapshot: %zu bytes -> %s\n", image.size(),
                snapshot_path.c_str());
  }
  client.goodbye();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (!std::strcmp(argv[1], "--help") ||
                    !std::strcmp(argv[1], "help"))) {
    print_help();
    return 0;
  }
  // Flags-only invocation (or none) keeps the historical behavior: local.
  std::string cmd = "local";
  int first = 1;
  if (argc >= 2 && argv[1][0] != '-') {
    cmd = argv[1];
    first = 2;
  }
  if (cmd == "local") {
    return run_local(argc, argv, first);
  }
  if (cmd == "serve") {
    return run_serve(argc, argv, first);
  }
  if (cmd == "replay-to") {
    return run_replay_to(argc, argv, first);
  }
  if (cmd == "query") {
    return run_query(argc, argv, first);
  }
  usage_error("unknown subcommand '" + cmd + "'");
}
