// Streaming tracking service demo: the full online pipeline of the
// streaming runtime. A simulator drives several concurrent tracking
// sessions (asynchronous collections, §4.E/§5.C); their sniffer reports
// become a single interleaved FluxEvent stream, optionally mangled by
// event-level transport faults (drops / duplicates / stragglers /
// reordering), recorded to a binary trace, then replayed into a sharded,
// supervised TrackerManager at a configurable speed. Because window
// deadlines are virtual time, the same trace produces bit-identical
// estimates at any replay speed and any worker count (under the blocking
// queue policy).
//
// Crash recovery recipe (see README "Surviving crashes"): the trace file
// is the durable journal. With --checkpoint the supervisor periodically
// snapshots the quiesced service as a FLUXFPC1 image and the daemon
// records the trace offset the snapshot covers in PATH.pos; a later run
// with --restore PATH rebuilds the same deployment from the seed,
// restores the snapshot, skips the already-committed trace prefix, and
// folds the rest bit-identically to a run that never died.
//
// SIGINT/SIGTERM drain cleanly: the replay loop stops, open windows
// flush, the final snapshot + resume offset are written, --metrics prints
// once, and the daemon exits 0.
//
// Run: ./stream_daemon --help for the full flag list.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/flux_model.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "geom/field.hpp"
#include "numeric/stats.hpp"
#include "sim/faults.hpp"
#include "sim/scenario.hpp"
#include "sim/sniffer.hpp"
#include "stream/emit.hpp"
#include "stream/manager.hpp"
#include "stream/supervisor.hpp"
#include "stream/trace_io.hpp"

#if defined(FLUXFP_OBS_ENABLED)
#include "obs/obs.hpp"
#endif

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

void print_help() {
  std::puts(
      "stream_daemon - streaming tracking service demo\n"
      "\n"
      "  --sessions N          concurrent tracking sessions (default 4)\n"
      "  --rounds R            observation rounds per session (default 30)\n"
      "  --workers W           worker threads (default 2)\n"
      "  --speed S             replay pacing: 0 = max speed (default),\n"
      "                        1 = real time, 8 = 8x real time\n"
      "  --seed X              deployment + mobility seed (default 42)\n"
      "  --trace PATH          event trace file (default "
      "stream_daemon.trace)\n"
      "  --faulty              apply transport faults "
      "(drop/dup/late/jitter)\n"
      "  --checkpoint PATH     write FLUXFPC1 snapshots to PATH and the\n"
      "                        covered trace offset to PATH.pos\n"
      "  --checkpoint-every N  snapshot cadence in accepted events "
      "(default 256)\n"
      "  --restore PATH        resume from PATH (+ PATH.pos): restore the\n"
      "                        snapshot, skip the committed trace prefix,\n"
      "                        continue (same seed/flags as the run that\n"
      "                        wrote it)\n"
      "  --metrics             print the Prometheus text exposition once "
      "at exit\n"
      "  --help                this text\n"
      "\n"
      "SIGINT/SIGTERM drain cleanly: replay stops, open windows flush, "
      "the\n"
      "final snapshot + resume offset are written, --metrics prints once,\n"
      "exit status 0.");
}

bool read_pos_file(const std::string& path, std::uint64_t& out) {
  std::ifstream in(path);
  return static_cast<bool>(in >> out);
}

void write_pos_file(const std::string& path, std::uint64_t pos) {
  std::ofstream out(path, std::ios::trunc);
  out << pos << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fluxfp;

  std::size_t sessions = 4;
  int rounds = 30;
  std::size_t workers = 2;
  double speed = 0.0;
  std::uint64_t seed = 42;
  std::string trace_path = "stream_daemon.trace";
  std::string checkpoint_path;
  std::string restore_path;
  std::size_t checkpoint_every = 256;
  bool faulty = false;
  bool metrics = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--sessions")) {
      sessions = std::strtoull(next("--sessions"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--rounds")) {
      rounds = std::atoi(next("--rounds"));
    } else if (!std::strcmp(argv[i], "--workers")) {
      workers = std::strtoull(next("--workers"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--speed")) {
      speed = std::atof(next("--speed"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace_path = next("--trace");
    } else if (!std::strcmp(argv[i], "--checkpoint")) {
      checkpoint_path = next("--checkpoint");
    } else if (!std::strcmp(argv[i], "--checkpoint-every")) {
      checkpoint_every = std::strtoull(next("--checkpoint-every"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--restore")) {
      restore_path = next("--restore");
    } else if (!std::strcmp(argv[i], "--faulty")) {
      faulty = true;
    } else if (!std::strcmp(argv[i], "--metrics")) {
      metrics = true;
    } else if (!std::strcmp(argv[i], "--help")) {
      print_help();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", argv[i]);
      return 2;
    }
  }
  if (sessions == 0 || rounds <= 0 || workers == 0) {
    std::fputs("need sessions/rounds/workers >= 1\n", stderr);
    return 2;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // Shared deployment: one sensor field, one calibrated flux model, one
  // sniffer set — the tracking service watches many users on it at once.
  // Everything derives from the seed, which is what makes --restore able
  // to rebuild the deployment a snapshot was taken against.
  geom::Rng rng(seed);
  const geom::RectField field(20.0, 20.0);
  const net::UnitDiskGraph graph =
      eval::build_connected_network({}, field, rng);
  const core::FluxModel model(field, eval::estimate_d_min(graph, field, rng));
  const auto sniffed = sim::sample_nodes_fraction(graph.size(), 0.12, rng);
  std::printf("network: %zu nodes, %zu sniffers, field %.0fx%.0f\n",
              graph.size(), sniffed.size(), 20.0, 20.0);

  // Simulate each session independently with a staggered start so the
  // merged stream interleaves sessions (asynchronous collections).
  std::vector<std::vector<stream::FluxEvent>> per_session;
  std::vector<std::vector<geom::Vec2>> truths(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    geom::Rng srng(seed + 1000 * (s + 1));
    sim::SimUser user;
    user.mobility = std::make_shared<sim::RandomWaypointMobility>(
        field, 0.8, static_cast<double>(rounds) + 1.0, srng);
    sim::ScenarioConfig scfg;
    scfg.rounds = rounds;
    scfg.start_time = 0.13 * static_cast<double>(s);
    const auto obs = sim::run_scenario(graph, {user}, scfg, srng);
    for (const auto& o : obs) {
      truths[s].push_back(o.true_positions[0]);
    }
    per_session.push_back(stream::scenario_events(
        graph, obs, sniffed, static_cast<std::uint32_t>(s)));
  }
  std::vector<stream::FluxEvent> events =
      stream::merge_by_time(per_session);

  if (faulty) {
    sim::EventFaultPlan fplan;
    fplan.seed = seed + 7;
    fplan.drop_prob = 0.02;
    fplan.dup_prob = 0.05;
    fplan.late_prob = 0.02;
    fplan.jitter = 0.3;
    events = sim::apply_event_faults(events, fplan);
    std::puts("transport faults on: 2% drop, 5% dup, 2% late, 0.3 jitter");
  }

  stream::write_trace_file(trace_path, events);
  std::printf("recorded %zu events to %s (%zu bytes)\n", events.size(),
              trace_path.c_str(),
              stream::kTraceHeaderBytes +
                  events.size() * stream::kTraceRecordBytes);

  // Resume state: the snapshot plus the trace offset it covers.
  stream::ManagerCheckpoint restored;
  bool have_restore = false;
  std::uint64_t skip = 0;
  if (!restore_path.empty()) {
    if (const auto err =
            stream::read_checkpoint_file(restore_path, restored)) {
      std::fprintf(stderr, "restore %s: %s\n", restore_path.c_str(),
                   err->to_string().c_str());
      return 1;
    }
    if (!read_pos_file(restore_path + ".pos", skip)) {
      std::fprintf(stderr, "restore: cannot read %s.pos\n",
                   restore_path.c_str());
      return 1;
    }
    have_restore = true;
    std::printf("restoring %zu sessions from %s, skipping %llu committed "
                "events\n",
                restored.sessions.size(), restore_path.c_str(),
                static_cast<unsigned long long>(skip));
  }

  stream::ManagerConfig mcfg;
  mcfg.workers = workers;
  stream::StreamTrackerConfig tcfg;
  tcfg.expected_readings = sniffed.size();
  // The supervisor rebuilds incarnations through this factory; every
  // incarnation gets the same construction inputs, which is the restore
  // contract of the checkpoint format.
  auto factory = [&]() {
    auto m = std::make_unique<stream::TrackerManager>(mcfg);
    for (std::size_t s = 0; s < sessions; ++s) {
      m->add_session(
          static_cast<std::uint32_t>(s),
          stream::StreamTracker(model, graph, sniffed, 1, tcfg,
                                seed + 500 * (s + 1)));
    }
    if (have_restore) {
      m->restore(restored);
    }
    return m;
  };

  stream::SupervisorConfig scfg2;
  // The daemon advances the .pos resume offset per committed snapshot, so
  // its cadence is the exact-event-count flag; the default epoch cadence
  // is turned off to keep --checkpoint-every the single knob.
  scfg2.checkpoint_every_events = checkpoint_every;
  scfg2.checkpoint_every_epochs = 0;
  scfg2.checkpoint_path = checkpoint_path;
  stream::Supervisor supervisor(factory, scfg2);
  supervisor.start();

  // The replay loop is the daemon's own (rather than replay_trace_file)
  // so SIGINT/SIGTERM can stop it between events and pacing sleeps stay
  // interruptible; the resume offset advances in lockstep with committed
  // checkpoints.
  std::ifstream trace_in(trace_path, std::ios::binary);
  stream::TraceReplayer replayer(trace_in);
  std::uint64_t offered = 0;
  std::uint64_t checkpoints_seen = supervisor.stats().checkpoints;
  {
    stream::FluxEvent skipped;
    for (std::uint64_t i = 0; i < skip && replayer.next(skipped); ++i) {
    }
  }
  const auto wall_start = std::chrono::steady_clock::now();
  bool have_origin = false;
  double time_origin = 0.0;
  stream::FluxEvent event;
  bool trace_ok = true;
  while (!g_stop && replayer.try_next(event)) {
    if (speed > 0.0) {
      if (!have_origin) {
        time_origin = event.time;
        have_origin = true;
      }
      // Deliver no earlier than the event's trace-time offset, scaled —
      // in short sleeps, so a signal drains within ~50ms.
      const auto due =
          wall_start + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               (event.time - time_origin) / speed));
      while (!g_stop && std::chrono::steady_clock::now() < due) {
        const auto remaining = due - std::chrono::steady_clock::now();
        std::this_thread::sleep_for(
            std::min<std::chrono::steady_clock::duration>(
                remaining, std::chrono::milliseconds(50)));
      }
      if (g_stop) {
        break;  // the un-offered event replays on the next --restore run
      }
    }
    supervisor.offer(event);
    ++offered;
    if (!checkpoint_path.empty() &&
        supervisor.stats().checkpoints != checkpoints_seen) {
      // A snapshot just committed; everything up to `offered` is in it.
      checkpoints_seen = supervisor.stats().checkpoints;
      write_pos_file(checkpoint_path + ".pos", skip + offered);
    }
  }
  if (replayer.error()) {
    std::fprintf(stderr, "trace %s: %s\n", trace_path.c_str(),
                 replayer.error()->to_string().c_str());
    trace_ok = false;
  }
  if (g_stop) {
    std::puts("\nsignal received: draining...");
  }
  supervisor.finish();
  if (!checkpoint_path.empty()) {
    // finish() wrote the final post-flush snapshot; record its coverage.
    write_pos_file(checkpoint_path + ".pos", skip + offered);
  }

  const stream::TrackerManager* manager = supervisor.manager();
  if (manager == nullptr) {
    std::fputs("service unrecoverable; committed results only\n", stderr);
    return 1;
  }
  const stream::ManagerStats stats = manager->stats();
  const stream::SupervisorStats sstats = supervisor.stats();
  std::printf("\nreplayed %llu events at %s over %zu workers in %.3fs "
              "(%.0f events/s)\n",
              static_cast<unsigned long long>(offered),
              speed <= 0.0 ? "max speed" : "paced speed", manager->workers(),
              stats.wall_seconds, stats.events_per_second);
  std::printf("checkpoints: %llu committed, newest %llu bytes%s%s\n",
              static_cast<unsigned long long>(sstats.checkpoints),
              static_cast<unsigned long long>(sstats.checkpoint_bytes),
              checkpoint_path.empty() ? "" : ", persisted to ",
              checkpoint_path.c_str());
  const eval::LatencySummary lat =
      eval::summarize_latencies(stats.filter_micros);
  std::printf("epochs fired: %llu, filter latency us: p50 %.0f  p99 %.0f  "
              "max %.0f\n",
              static_cast<unsigned long long>(stats.epochs_fired), lat.p50,
              lat.p99, lat.max);

  std::puts("\nsession  epochs  dup  late  forced  mean-err");
  for (std::size_t s = 0; s < sessions; ++s) {
    const auto user = static_cast<std::uint32_t>(s);
    const stream::StreamStats& ss = manager->session(user).stats();
    std::vector<double> errors;
    for (const stream::EpochResult& r : supervisor.results(user)) {
      if (r.epoch < truths[s].size()) {
        errors.push_back(
            geom::distance(r.estimates[0], truths[s][r.epoch]));
      }
    }
    std::printf("%7zu  %6llu  %3llu  %4llu  %6llu  %8.2f\n", s,
                static_cast<unsigned long long>(ss.epochs_fired),
                static_cast<unsigned long long>(ss.duplicates),
                static_cast<unsigned long long>(ss.late),
                static_cast<unsigned long long>(ss.forced_closes),
                errors.empty() ? -1.0 : numeric::mean(errors));
  }

  if (metrics) {
#if defined(FLUXFP_OBS_ENABLED)
    std::puts("\n# metrics (Prometheus text exposition)");
    std::fputs(obs::MetricsRegistry::global().export_text().c_str(), stdout);
#else
    std::puts("\nmetrics: this binary was built with FLUXFP_OBS=OFF");
#endif
  }
  return trace_ok ? 0 : 1;
}
