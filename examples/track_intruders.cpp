// Tracking demo: two mobile users walk through the network while an
// adversary, sniffing 10% of the nodes, runs the Sequential Monte Carlo
// tracker (Algorithm 4.1) on the windowed flux observations. Prints a
// per-round table of true vs estimated positions — the Fig. 7 scenario,
// including the trajectory-crossing case where identities may swap while
// positions remain accurate.
//
// Run: ./track_intruders [seed] [--cross]

#include <cstdio>
#include <cstring>
#include <memory>

#include "core/smc.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/sniffer.hpp"

int main(int argc, char** argv) {
  using namespace fluxfp;
  std::uint64_t seed = 7;
  bool cross = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cross") == 0) {
      cross = true;
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }
  geom::Rng rng(seed);

  const geom::RectField field(30.0, 30.0);
  const net::UnitDiskGraph graph =
      eval::build_connected_network({}, field, rng);
  const core::FluxModel model(field,
                              eval::estimate_d_min(graph, field, rng));

  // Two users on straight trajectories; with --cross they intersect
  // mid-field (the Fig. 7(d) identity-mixing case).
  auto make_user = [](geom::Vec2 from, geom::Vec2 to, double stretch) {
    sim::SimUser u;
    u.stretch = stretch;
    u.mobility = std::make_shared<sim::PathMobility>(
        geom::Polyline({from, to}), geom::distance(from, to) / 10.0);
    return u;
  };
  std::vector<sim::SimUser> users;
  if (cross) {
    users.push_back(make_user({3, 3}, {27, 27}, 2.0));
    users.push_back(make_user({27, 3}, {3, 27}, 2.0));
    std::puts("scenario: two users on crossing diagonals");
  } else {
    users.push_back(make_user({3, 8}, {27, 8}, 2.0));
    users.push_back(make_user({27, 22}, {3, 22}, 2.0));
    std::puts("scenario: two users on parallel opposite tracks");
  }

  sim::ScenarioConfig scfg;
  scfg.rounds = 10;
  const auto observations = sim::run_scenario(graph, users, scfg, rng);

  const auto sniffed = sim::sample_nodes_fraction(graph.size(), 0.10, rng);
  core::SmcConfig tcfg;  // paper: N=1000, M=10, vmax=5 per round
  core::SmcTracker tracker(field, users.size(), tcfg, rng);

  std::printf("%-6s %-18s %-18s %-18s %-18s %-8s\n", "round", "true A",
              "est A", "true B", "est B", "err");
  for (const auto& obs : observations) {
    const core::SparseObjective objective =
        eval::make_objective(model, graph, obs.flux, sniffed);
    tracker.step(obs.time, objective, rng);
    const std::vector<geom::Vec2> est{tracker.estimate(0),
                                      tracker.estimate(1)};
    const double err = eval::matched_mean_error(est, obs.true_positions);
    auto fmt = [](geom::Vec2 p) {
      static char buf[4][32];
      static int slot = 0;
      slot = (slot + 1) % 4;
      std::snprintf(buf[slot], sizeof(buf[slot]), "(%5.1f,%5.1f)", p.x, p.y);
      return buf[slot];
    };
    std::printf("%-6.0f %-18s %-18s %-18s %-18s %-8.2f\n", obs.time,
                fmt(obs.true_positions[0]), fmt(est[0]),
                fmt(obs.true_positions[1]), fmt(est[1]), err);
  }
  std::puts("\n(err = identity-free mean matched error; estimates converge "
            "to the trajectories as flux inputs accumulate)");
  return 0;
}
