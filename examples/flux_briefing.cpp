// Briefing demo (§3.C, Figures 1 & 4): three users collect data
// simultaneously; their traffic cumulates into one flux pattern. With the
// *full* flux map, the recursive briefing detects the dominant traffic
// peak, fits and subtracts that user's modeled flux, and repeats — printing
// an ASCII heat map of the shrinking residual after each extraction.
//
// Run: ./flux_briefing [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/briefing.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "net/routing.hpp"
#include "sim/measurement.hpp"

namespace {

using namespace fluxfp;

/// Renders the flux map as a 15x15 ASCII heat map (cells aggregate nodes).
void print_heatmap(const net::UnitDiskGraph& graph,
                   const geom::RectField& field, const net::FluxMap& flux,
                   const std::vector<geom::Vec2>& marks) {
  constexpr int kCells = 15;
  double cell_sum[kCells][kCells] = {};
  int cell_cnt[kCells][kCells] = {};
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const geom::Vec2 p = graph.position(i);
    const int cx = std::min(kCells - 1,
                            static_cast<int>(p.x / field.width() * kCells));
    const int cy = std::min(kCells - 1,
                            static_cast<int>(p.y / field.height() * kCells));
    cell_sum[cy][cx] += flux[i];
    cell_cnt[cy][cx] += 1;
  }
  double peak = 1e-9;
  for (auto& row : cell_sum) {
    for (double v : row) {
      peak = std::max(peak, v);
    }
  }
  const char* shades = " .:-=+*#%@";
  for (int y = kCells - 1; y >= 0; --y) {
    std::fputs("  |", stdout);
    for (int x = 0; x < kCells; ++x) {
      bool marked = false;
      for (const geom::Vec2& m : marks) {
        if (static_cast<int>(m.x / field.width() * kCells) == x &&
            static_cast<int>(m.y / field.height() * kCells) == y) {
          marked = true;
        }
      }
      if (marked) {
        std::putchar('X');
        continue;
      }
      const double v = cell_cnt[y][x] > 0 ? cell_sum[y][x] : 0.0;
      const int shade =
          std::min(9, static_cast<int>(v / peak * 9.999));
      std::putchar(shades[shade]);
    }
    std::puts("|");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;
  geom::Rng rng(seed);

  const geom::RectField field(30.0, 30.0);
  const net::UnitDiskGraph graph =
      eval::build_connected_network({}, field, rng);
  const core::FluxModel model(field,
                              eval::estimate_d_min(graph, field, rng));

  // Three users collecting simultaneously (the Fig. 1 scenario).
  const std::vector<geom::Vec2> sinks{{6, 7}, {24, 10}, {13, 24}};
  const std::vector<double> stretches{2.0, 2.5, 1.5};
  const sim::FluxEngine engine(graph);
  std::vector<sim::Collection> window;
  for (std::size_t j = 0; j < sinks.size(); ++j) {
    window.push_back({j, sinks[j], stretches[j]});
  }
  net::FluxMap working = engine.measure(window, rng);

  std::puts("combined network flux of 3 users (X = true user positions):");
  print_heatmap(graph, field, working, sinks);

  core::BriefingConfig bcfg;
  bcfg.max_users = 3;
  const core::FluxBriefing briefing(graph, model, bcfg);

  std::vector<geom::Vec2> found;
  for (int round = 1; round <= 3; ++round) {
    const core::BriefedUser user = briefing.extract_dominant(working);
    found.push_back(user.position);
    std::printf("\nround %d: peak user at (%.1f, %.1f), s/r = %.2f — "
                "residual map after subtraction:\n",
                round, user.position.x, user.position.y,
                user.stretch_over_r);
    print_heatmap(graph, field, working, found);
  }

  const double err = fluxfp::eval::matched_mean_error(found, sinks);
  std::printf("\nall three users identified; mean position error %.2f\n",
              err);
  return 0;
}
