// End-to-end integration tests: real network simulation -> passive sniffing
// -> NLS localization / SMC tracking, i.e. the full attack pipeline the
// paper describes, on reduced problem sizes to keep test runtime modest.
#include <gtest/gtest.h>

#include "core/localizer.hpp"
#include "core/adversary.hpp"
#include "core/smc.hpp"
#include "eval/experiment.hpp"
#include "net/routing.hpp"
#include "eval/metrics.hpp"
#include "sim/packet_sim.hpp"
#include "sim/scenario.hpp"
#include "sim/sniffer.hpp"
#include "trace/generator.hpp"
#include "trace/replay.hpp"

namespace fluxfp {
namespace {

struct Pipeline {
  geom::RectField field{30.0, 30.0};
  net::UnitDiskGraph graph;
  core::FluxModel model;

  explicit Pipeline(std::uint64_t seed)
      : graph(build(seed)), model(field, 1.0) {
    geom::Rng rng(eval::derive_seed(seed, {1}));
    model = core::FluxModel(field, eval::estimate_d_min(graph, field, rng));
  }

  static net::UnitDiskGraph build(std::uint64_t seed) {
    geom::Rng rng(seed);
    const geom::RectField f(30.0, 30.0);
    eval::NetworkSpec spec;  // paper defaults: 900 nodes, radius 2.4
    return eval::build_connected_network(spec, f, rng);
  }
};

TEST(EndToEnd, InstantLocalizationOneUserSparseSampling) {
  Pipeline p(100);
  geom::Rng rng(101);
  const sim::FluxEngine engine(p.graph);
  const geom::Vec2 truth{14.0, 17.0};
  const std::vector<sim::Collection> cs{{0, truth, 2.0}};
  const net::FluxMap flux = engine.measure(cs, rng);
  // Sniff only 10% of nodes (paper's robust operating point).
  const auto samples = sim::sample_nodes_fraction(p.graph.size(), 0.10, rng);
  const core::SparseObjective obj =
      eval::make_objective(p.model, p.graph, flux, samples);
  const core::InstantLocalizer loc(p.field);  // paper defaults: 10k samples
  const auto res = loc.localize(obj, 1, rng);
  EXPECT_LT(geom::distance(res.positions[0], truth), 2.5);
}

TEST(EndToEnd, InstantLocalizationTwoUsers) {
  Pipeline p(102);
  geom::Rng rng(103);
  const sim::FluxEngine engine(p.graph);
  const std::vector<geom::Vec2> truths{{7.0, 8.0}, {23.0, 21.0}};
  const std::vector<sim::Collection> cs{{0, truths[0], 1.5},
                                        {1, truths[1], 2.5}};
  const net::FluxMap flux = engine.measure(cs, rng);
  const auto samples = sim::sample_nodes_fraction(p.graph.size(), 0.20, rng);
  const core::SparseObjective obj =
      eval::make_objective(p.model, p.graph, flux, samples);
  core::LocalizerConfig cfg;
  cfg.candidates_per_user = 4000;
  const core::InstantLocalizer loc(p.field, cfg);
  const auto res = loc.localize(obj, 2, rng);
  EXPECT_LT(eval::matched_mean_error(res.positions, truths), 3.0);
}

TEST(EndToEnd, SmcTracksMovingUserThroughSimulatedNetwork) {
  Pipeline p(104);
  geom::Rng rng(105);
  // User walks a straight line; all rounds active (synchronous setting).
  sim::SimUser user;
  user.stretch = 2.0;
  user.mobility = std::make_shared<sim::PathMobility>(
      geom::Polyline({{4.0, 15.0}, {26.0, 15.0}}), 2.0);
  sim::ScenarioConfig scfg;
  scfg.rounds = 10;
  const auto obs = sim::run_scenario(p.graph, {user}, scfg, rng);

  const auto samples = sim::sample_nodes_fraction(p.graph.size(), 0.10, rng);
  core::SmcConfig tcfg;
  tcfg.num_predictions = 600;
  tcfg.vmax = 5.0;
  core::SmcTracker tracker(p.field, 1, tcfg, rng);
  double final_err = 1e18;
  for (const auto& o : obs) {
    const core::SparseObjective obj =
        eval::make_objective(p.model, p.graph, o.flux, samples);
    tracker.step(o.time, obj, rng);
    final_err = geom::distance(tracker.estimate(0), o.true_positions[0]);
  }
  // Paper Fig. 7(a): converges with error below ~2; allow simulator slack.
  EXPECT_LT(final_err, 3.0);
}

TEST(EndToEnd, AsynchronousTraceReplayRunsAndTracks) {
  Pipeline p(106);
  geom::Rng rng(107);
  // Small synthetic campus trace: 3 users, asynchronous collections.
  trace::TraceGenConfig gcfg;
  gcfg.num_users = 3;
  gcfg.duration = 40000.0;
  gcfg.median_dwell = 1000.0;
  const trace::Trace tr =
      trace::generate_trace(trace::grid_aps(p.field, 5, 10), gcfg, rng);
  const auto users = trace::replay_users(tr, {}, rng);
  ASSERT_EQ(users.size(), 3u);

  std::vector<sim::SimUser> sim_users;
  for (const auto& u : users) {
    sim_users.push_back(u.sim);
  }
  sim::ScenarioConfig scfg;
  scfg.rounds = static_cast<int>(trace::compressed_end_time(users)) + 1;
  scfg.rounds = std::min(scfg.rounds, 40);
  const auto obs = sim::run_scenario(p.graph, sim_users, scfg, rng);

  const auto samples = sim::sample_nodes_fraction(p.graph.size(), 0.10, rng);
  core::SmcConfig tcfg;
  tcfg.num_predictions = 400;
  tcfg.vmax = 5.0;
  core::SmcTracker tracker(p.field, users.size(), tcfg, rng);

  int updates = 0;
  std::vector<double> errors;
  for (const auto& o : obs) {
    const core::SparseObjective obj =
        eval::make_objective(p.model, p.graph, o.flux, samples);
    const auto res = tracker.step(o.time, obj, rng);
    for (std::size_t u = 0; u < users.size(); ++u) {
      if (res.updated[u]) {
        ++updates;
      }
    }
  }
  // Asynchronous schedule: some rounds update some users, never all blindly.
  EXPECT_GT(updates, 0);
  EXPECT_LT(updates, scfg.rounds * static_cast<int>(users.size()));
  // Late-stage estimates stay inside the field and weights stay normalized.
  for (std::size_t u = 0; u < users.size(); ++u) {
    EXPECT_TRUE(p.field.contains(tracker.estimate(u)));
    double wsum = 0.0;
    for (const auto& particle : tracker.particles(u)) {
      wsum += particle.weight;
    }
    EXPECT_NEAR(wsum, 1.0, 1e-9);
  }
}

TEST(EndToEnd, AdversaryFacadeOverPacketLevelCounts) {
  // The deepest stack: discrete-event packet simulation produces raw
  // per-node frame counts; the Adversary facade (sniffer + model
  // calibration + SMC tracker) consumes them directly and still tracks
  // the moving sink.
  Pipeline p(120);
  geom::Rng rng(121);
  core::AdversaryConfig acfg;
  acfg.tracker.num_predictions = 500;
  core::Adversary adversary(p.field, p.graph, acfg, rng);

  sim::PacketSimConfig pcfg;
  pcfg.loss_prob = 0.05;  // a mildly lossy real radio
  const sim::PacketLevelSimulator packet_sim(pcfg);

  geom::Vec2 truth;
  for (int round = 1; round <= 10; ++round) {
    truth = {5.0 + 2.0 * round, 14.0};
    const net::CollectionTree tree =
        net::build_collection_tree(p.graph, truth, rng);
    const sim::PacketSimResult res =
        packet_sim.simulate(p.graph, tree, 2.0, rng);
    adversary.observe(static_cast<double>(round), res.tx_counts, rng);
  }
  EXPECT_LT(geom::distance(adversary.estimate(0), truth), 3.5);
}

TEST(EndToEnd, SparserSamplingDegradesAccuracy) {
  Pipeline p(108);
  const sim::FluxEngine engine(p.graph);
  auto run_with_fraction = [&](double fraction) {
    double total = 0.0;
    const int trials = 5;
    for (int trial = 0; trial < trials; ++trial) {
      geom::Rng rng(eval::derive_seed(
          109, {static_cast<std::uint64_t>(trial),
                static_cast<std::uint64_t>(fraction * 1000)}));
      const geom::Vec2 truth = geom::uniform_in_field(p.field, rng);
      const std::vector<sim::Collection> cs{{0, truth, 2.0}};
      const net::FluxMap flux = engine.measure(cs, rng);
      const auto samples =
          sim::sample_nodes_fraction(p.graph.size(), fraction, rng);
      const core::SparseObjective obj =
          eval::make_objective(p.model, p.graph, flux, samples);
      core::LocalizerConfig cfg;
      cfg.candidates_per_user = 3000;
      const core::InstantLocalizer loc(p.field, cfg);
      total += geom::distance(loc.localize(obj, 1, rng).positions[0], truth);
    }
    return total / trials;
  };
  const double err_dense = run_with_fraction(0.40);
  const double err_tiny = run_with_fraction(0.005);  // ~5 sniffed nodes
  // The paper's Fig. 6(a) shape: errors blow up once sampling gets scarce.
  EXPECT_LT(err_dense, 2.5);
  EXPECT_GT(err_tiny, err_dense);
}

}  // namespace
}  // namespace fluxfp
