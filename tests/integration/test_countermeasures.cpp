// End-to-end defense evaluation: traffic reshaping (§6 future work) against
// the sparse-sampling localization attack.
#include <gtest/gtest.h>

#include "core/localizer.hpp"
#include "eval/experiment.hpp"
#include "privacy/countermeasure.hpp"
#include "sim/measurement.hpp"
#include "sim/sniffer.hpp"

namespace fluxfp {
namespace {

struct DefenseWorld {
  geom::RectField field{30.0, 30.0};
  net::UnitDiskGraph graph;
  core::FluxModel model;

  explicit DefenseWorld(std::uint64_t seed)
      : graph(build(seed)), model(field, 1.0) {
    geom::Rng rng(seed + 1);
    model = core::FluxModel(field, eval::estimate_d_min(graph, field, rng));
  }

  static net::UnitDiskGraph build(std::uint64_t seed) {
    geom::Rng rng(seed);
    const geom::RectField f(30.0, 30.0);
    return eval::build_connected_network({}, f, rng);
  }

  /// Mean localization error over `trials` with the given defense applied.
  double attack_error(const privacy::CountermeasureConfig& cfg, int trials,
                      std::uint64_t salt) const {
    const privacy::Countermeasure defense(cfg);
    double total = 0.0;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(eval::derive_seed(salt, {static_cast<std::uint64_t>(t)}));
      const geom::Vec2 truth = geom::uniform_in_field(field, rng);
      const sim::FluxEngine engine(graph);
      const std::vector<sim::Collection> w{{0, truth, 2.0}};
      net::FluxMap flux = engine.measure(w, rng);
      defense.apply(flux, graph, rng);
      const auto samples =
          sim::sample_nodes_fraction(graph.size(), 0.10, rng);
      const core::SparseObjective obj =
          eval::make_objective(model, graph, flux, samples);
      core::LocalizerConfig lcfg;
      lcfg.candidates_per_user = 4000;
      const core::InstantLocalizer loc(field, lcfg);
      total += geom::distance(loc.localize(obj, 1, rng).positions[0], truth);
    }
    return total / trials;
  }
};

TEST(Countermeasures, UndefendedAttackSucceeds) {
  const DefenseWorld w(400);
  EXPECT_LT(w.attack_error({}, 4, 401), 2.5);
}

TEST(Countermeasures, HeavyPaddingBreaksTheAttack) {
  const DefenseWorld w(410);
  privacy::CountermeasureConfig cfg;
  cfg.kind = privacy::CountermeasureKind::kConstantPadding;
  // Pad every node up to roughly the mid-field flux level.
  cfg.pad_level = 150.0;
  const double defended = w.attack_error(cfg, 4, 411);
  const double undefended = w.attack_error({}, 4, 411);
  EXPECT_GT(defended, 2.0 * undefended);
}

TEST(Countermeasures, LightPaddingIsInsufficient) {
  const DefenseWorld w(420);
  privacy::CountermeasureConfig cfg;
  cfg.kind = privacy::CountermeasureKind::kConstantPadding;
  cfg.pad_level = 5.0;  // below almost every real reading
  EXPECT_LT(w.attack_error(cfg, 4, 421), 4.0);
}

TEST(Countermeasures, DummyTreesConfuseSingleUserFit) {
  const DefenseWorld w(430);
  privacy::CountermeasureConfig cfg;
  cfg.kind = privacy::CountermeasureKind::kDummyTrees;
  cfg.dummy_count = 3;
  cfg.dummy_stretch = 2.0;
  const double defended = w.attack_error(cfg, 4, 431);
  const double undefended = w.attack_error({}, 4, 431);
  EXPECT_GT(defended, undefended);
}

TEST(Countermeasures, AdversaryWithLargerKSeesThroughChaff) {
  // If the adversary conservatively fits K = 4 users, one chaff tree is
  // absorbed as just another "user" and the true user is still among the
  // estimates (nearest-estimate error stays moderate).
  const DefenseWorld w(440);
  privacy::CountermeasureConfig cfg;
  cfg.kind = privacy::CountermeasureKind::kDummyTrees;
  cfg.dummy_count = 1;
  cfg.dummy_stretch = 2.0;
  const privacy::Countermeasure defense(cfg);
  double total = 0.0;
  const int trials = 4;
  for (int t = 0; t < trials; ++t) {
    geom::Rng rng(eval::derive_seed(441, {static_cast<std::uint64_t>(t)}));
    const geom::Vec2 truth = geom::uniform_in_field(w.field, rng);
    const sim::FluxEngine engine(w.graph);
    const std::vector<sim::Collection> window{{0, truth, 2.0}};
    net::FluxMap flux = engine.measure(window, rng);
    defense.apply(flux, w.graph, rng);
    const auto samples =
        sim::sample_nodes_fraction(w.graph.size(), 0.10, rng);
    const core::SparseObjective obj =
        eval::make_objective(w.model, w.graph, flux, samples);
    core::LocalizerConfig lcfg;
    lcfg.candidates_per_user = 3000;
    const core::InstantLocalizer loc(w.field, lcfg);
    const auto res = loc.localize(obj, 2, rng);
    double best = w.field.diameter();
    for (const geom::Vec2& p : res.positions) {
      best = std::min(best, geom::distance(p, truth));
    }
    total += best;
  }
  EXPECT_LT(total / trials, 4.0);
}

TEST(Countermeasures, JitterCostsLessThanPaddingForSameScale) {
  // Sanity on the overhead accounting: strong padding costs more extra
  // traffic than moderate jitter.
  const DefenseWorld w(450);
  geom::Rng rng(451);
  const sim::FluxEngine engine(w.graph);
  const std::vector<sim::Collection> window{{0, {15, 15}, 2.0}};

  privacy::CountermeasureConfig pad;
  pad.kind = privacy::CountermeasureKind::kConstantPadding;
  pad.pad_level = 150.0;
  const privacy::Countermeasure pad_def(pad);
  net::FluxMap f1 = engine.measure(window, rng);
  pad_def.apply(f1, w.graph, rng);

  privacy::CountermeasureConfig jit;
  jit.kind = privacy::CountermeasureKind::kStretchJitter;
  jit.jitter_sigma = 0.5;
  const privacy::Countermeasure jit_def(jit);
  net::FluxMap f2 = engine.measure(window, rng);
  jit_def.apply(f2, w.graph, rng);

  EXPECT_GT(pad_def.last_overhead(), jit_def.last_overhead());
}

}  // namespace
}  // namespace fluxfp
