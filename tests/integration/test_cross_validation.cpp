// Cross-method validation: the independent implementations of the attack
// (full-map briefing, sparse candidate search, smooth LM fitting) must
// agree with each other on the same instances — a strong end-to-end check
// that the model, objective, and searches are consistent.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/briefing.hpp"
#include "core/localizer.hpp"
#include "core/smooth_localizer.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "sim/measurement.hpp"
#include "sim/sniffer.hpp"

namespace fluxfp {
namespace {

struct Instance {
  geom::RectField field{30.0, 30.0};
  net::UnitDiskGraph graph;
  core::FluxModel model;
  std::vector<geom::Vec2> sinks;
  net::FluxMap flux;

  Instance(std::uint64_t seed, std::vector<geom::Vec2> users,
           std::vector<double> stretches)
      : graph(build(seed)), model(field, 1.0), sinks(std::move(users)) {
    geom::Rng rng(seed + 1);
    model = core::FluxModel(field, eval::estimate_d_min(graph, field, rng));
    const sim::FluxEngine engine(graph);
    std::vector<sim::Collection> window;
    for (std::size_t j = 0; j < sinks.size(); ++j) {
      window.push_back({j, sinks[j], stretches[j]});
    }
    flux = engine.measure(window, rng);
  }

  static net::UnitDiskGraph build(std::uint64_t seed) {
    geom::Rng rng(seed);
    const geom::RectField f(30.0, 30.0);
    return eval::build_connected_network({}, f, rng);
  }
};

TEST(CrossValidation, BriefingAndSparseLocalizerAgree) {
  const Instance inst(500, {{8, 9}, {22, 20}}, {2.0, 2.5});
  geom::Rng rng(501);

  // Full-map briefing.
  core::BriefingConfig bcfg;
  bcfg.max_users = 2;
  const core::FluxBriefing briefing(inst.graph, inst.model, bcfg);
  const auto briefed = briefing.brief(inst.flux);
  ASSERT_EQ(briefed.size(), 2u);
  std::vector<geom::Vec2> briefed_pos;
  for (const auto& u : briefed) {
    briefed_pos.push_back(u.position);
  }

  // Sparse candidate search on 15% of nodes.
  const auto samples =
      sim::sample_nodes_fraction(inst.graph.size(), 0.15, rng);
  const core::SparseObjective obj =
      eval::make_objective(inst.model, inst.graph, inst.flux, samples);
  core::LocalizerConfig lcfg;
  lcfg.candidates_per_user = 4000;
  const core::InstantLocalizer loc(inst.field, lcfg);
  const auto sparse = loc.localize(obj, 2, rng);

  // Both methods near the truth, hence near each other.
  EXPECT_LT(eval::matched_mean_error(briefed_pos, inst.sinks), 3.0);
  EXPECT_LT(eval::matched_mean_error(sparse.positions, inst.sinks), 3.0);
  EXPECT_LT(eval::matched_mean_error(sparse.positions, briefed_pos), 5.0);
}

TEST(CrossValidation, SparseAndSmoothLocalizerAgreeOnSyntheticData) {
  // On model-generated (noise-free) measurements over a *smooth* boundary
  // both searches find the same global optimum. (On the rectangle, LM may
  // stall on the boundary-distance kinks — that is §4.A's point and is
  // covered by the ablation bench instead.)
  const geom::CircleField field({15.0, 15.0}, 16.0);
  const core::FluxModel model(field, 1.0);
  geom::Rng rng(502);
  const std::vector<geom::Vec2> samples =
      geom::uniform_points(field, 60, rng);
  const geom::Vec2 truth{17.0, 12.0};
  std::vector<double> measured(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    measured[i] = 2.0 * model.shape(truth, samples[i]);
  }
  const core::SparseObjective obj(model, samples, measured);

  const core::InstantLocalizer cand(field);
  const auto via_cand = cand.localize(obj, 1, rng);

  core::SmoothLocalizerConfig scfg;
  scfg.restarts = 12;
  const core::SmoothLocalizer smooth(field, scfg);
  const auto via_lm = smooth.localize(obj, 1, rng);

  EXPECT_LT(geom::distance(via_cand.positions[0], truth), 1.0);
  EXPECT_LT(geom::distance(via_lm.positions[0], truth), 1.0);
  EXPECT_LT(geom::distance(via_cand.positions[0], via_lm.positions[0]), 1.5);
}

TEST(CrossValidation, FittedStretchOrderingMatchesTruth) {
  // With two users of very different stretch, every method should assign
  // the larger fitted stretch to the heavier user.
  const Instance inst(510, {{7, 20}, {23, 9}}, {1.0, 3.0});
  geom::Rng rng(511);
  const auto samples =
      sim::sample_nodes_fraction(inst.graph.size(), 0.20, rng);
  const core::SparseObjective obj =
      eval::make_objective(inst.model, inst.graph, inst.flux, samples);
  core::LocalizerConfig lcfg;
  lcfg.candidates_per_user = 4000;
  const core::InstantLocalizer loc(inst.field, lcfg);
  const auto res = loc.localize(obj, 2, rng);
  // Identify which estimate corresponds to the heavy user by distance.
  const auto assign = eval::match_estimates(res.positions, inst.sinks);
  double heavy_stretch = 0.0;
  double light_stretch = 0.0;
  for (std::size_t j = 0; j < 2; ++j) {
    if (assign[j] == 1) {
      heavy_stretch = res.stretches[j];
    } else {
      light_stretch = res.stretches[j];
    }
  }
  EXPECT_GT(heavy_stretch, light_stretch);
}

TEST(CrossValidation, ModelPredictedFluxCorrelatesWithSimulated) {
  // Pearson correlation between model predictions (at the truth) and the
  // simulated smoothed flux across sampled nodes should be strong.
  const Instance inst(520, {{15, 15}}, {2.0});
  geom::Rng rng(521);
  const auto samples =
      sim::sample_nodes_fraction(inst.graph.size(), 0.30, rng);
  const core::SparseObjective obj =
      eval::make_objective(inst.model, inst.graph, inst.flux, samples);
  const std::vector<double> predicted = obj.shape_column({15, 15});
  const std::vector<double>& measured = obj.measured();
  const std::size_t n = predicted.size();
  double mp = 0.0, mm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mp += predicted[i];
    mm += measured[i];
  }
  mp /= n;
  mm /= n;
  double cov = 0.0, vp = 0.0, vm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (predicted[i] - mp) * (measured[i] - mm);
    vp += (predicted[i] - mp) * (predicted[i] - mp);
    vm += (measured[i] - mm) * (measured[i] - mm);
  }
  const double pearson = cov / std::sqrt(vp * vm);
  EXPECT_GT(pearson, 0.85);
}

}  // namespace
}  // namespace fluxfp
