// Tier-1 coverage for the linter itself: each rule has positive, negative,
// and suppressed fixtures under tests/tools/fixtures/, laid out like the
// real tree so directory-scoped rules scope the same way. The tests run
// the actual fluxfp_lint binary (paths injected by CMake) and assert
// exact `file:line: rule` output and exit codes.

#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#ifndef FLUXFP_LINT_BIN
#error "FLUXFP_LINT_BIN must be defined by the build"
#endif
#ifndef FLUXFP_LINT_FIXTURES
#error "FLUXFP_LINT_FIXTURES must be defined by the build"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run_lint(const std::string& args) {
  const std::string cmd =
      std::string(FLUXFP_LINT_BIN) + " " + args + " 2>&1";
  RunResult res;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << cmd;
    return res;
  }
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    res.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  res.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status)
                                                     : -1;
  return res;
}

std::string fixture_args(const std::string& paths) {
  return "--root " + std::string(FLUXFP_LINT_FIXTURES) + " " + paths;
}

std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

bool has_line_starting(const RunResult& r, const std::string& prefix) {
  for (const std::string& line : lines_of(r.output)) {
    if (line.rfind(prefix, 0) == 0) {
      return true;
    }
  }
  return false;
}

constexpr int kClean = 0;
constexpr int kViolations = 1;
constexpr int kUsage = 2;

// ---------------------------------------------------------------------------
// no-nan-compare
// ---------------------------------------------------------------------------

TEST(NoNanCompare, FlagsEqAndNeAgainstSentinel) {
  const RunResult r = run_lint(fixture_args("src/core/nan_compare_bad.cpp"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/core/nan_compare_bad.cpp:11: no-nan-compare:"))
      << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/core/nan_compare_bad.cpp:15: no-nan-compare:"))
      << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/core/nan_compare_bad.cpp:19: no-nan-compare:"))
      << r.output;
}

TEST(NoNanCompare, IsMissingAndAssignmentAreClean) {
  const RunResult r = run_lint(fixture_args("src/core/nan_compare_ok.cpp"));
  EXPECT_EQ(r.exit_code, kClean) << r.output;
}

TEST(NoNanCompare, InlineAllowSuppressesAndIsTallied) {
  const RunResult r = run_lint(fixture_args("src/core/nan_compare_ok.cpp"));
  EXPECT_NE(r.output.find("1 suppressions (no-nan-compare x1)"),
            std::string::npos)
      << r.output;
}

TEST(NoNanCompare, SuppressionBudgetZeroFailsTheRun) {
  const RunResult r = run_lint(
      fixture_args("--suppression-budget 0 src/core/nan_compare_ok.cpp"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  EXPECT_NE(r.output.find("suppression budget exceeded"), std::string::npos)
      << r.output;
}

// ---------------------------------------------------------------------------
// no-nondeterminism
// ---------------------------------------------------------------------------

TEST(NoNondeterminism, FlagsEveryEntropyAndOrderSource) {
  const RunResult r = run_lint(fixture_args("src/numeric/nondet_bad.cpp"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  const char* expected[] = {
      "src/numeric/nondet_bad.cpp:15: no-nondeterminism:",  // random_device
      "src/numeric/nondet_bad.cpp:20: no-nondeterminism:",  // srand
      "src/numeric/nondet_bad.cpp:21: no-nondeterminism:",  // rand
      "src/numeric/nondet_bad.cpp:25: no-nondeterminism:",  // time(nullptr)
      "src/numeric/nondet_bad.cpp:29: no-nondeterminism:",  // get_id
      "src/numeric/nondet_bad.cpp:34: no-nondeterminism:",  // unordered for
  };
  for (const char* prefix : expected) {
    EXPECT_TRUE(has_line_starting(r, prefix)) << prefix << "\n" << r.output;
  }
}

TEST(NoNondeterminism, UnorderedIterationOutsideResultBearingDirsIsClean) {
  const RunResult r = run_lint(fixture_args("src/sim/nondet_scope_ok.cpp"));
  EXPECT_EQ(r.exit_code, kClean) << r.output;
}

TEST(NoNondeterminism, ObsDirectoryIsOrderSensitive) {
  // Metric exports are part of the bit-identical-replay guarantee, so
  // src/obs/ folds over unordered containers are violations too.
  const RunResult r = run_lint(fixture_args("src/obs/nondet_bad.cpp"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/obs/nondet_bad.cpp:12: no-nondeterminism:"))
      << r.output;
}

// ---------------------------------------------------------------------------
// no-raw-thread
// ---------------------------------------------------------------------------

TEST(NoRawThread, FlagsThreadAndAsyncOutsideSanctionedDirs) {
  const RunResult r = run_lint(fixture_args("src/sim/raw_thread_bad.cpp"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/sim/raw_thread_bad.cpp:8: no-raw-thread:"))
      << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/sim/raw_thread_bad.cpp:13: no-raw-thread:"))
      << r.output;
  // hardware_concurrency() is a query, not a spawn.
  EXPECT_FALSE(has_line_starting(
      r, "src/sim/raw_thread_bad.cpp:19:"))
      << r.output;
}

TEST(NoRawThread, StreamRuntimeIsSanctioned) {
  const RunResult r = run_lint(fixture_args("src/stream/raw_thread_ok.cpp"));
  EXPECT_EQ(r.exit_code, kClean) << r.output;
}

// ---------------------------------------------------------------------------
// pool-serial-guard
// ---------------------------------------------------------------------------

TEST(PoolSerialGuard, FlagsUnguardedWorkerBody) {
  const RunResult r = run_lint(fixture_args("src/stream/guard_bad.cpp"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/stream/guard_bad.cpp:22: pool-serial-guard:"))
      << r.output;
}

TEST(PoolSerialGuard, GuardFoundThroughOneCallLevel) {
  const RunResult r = run_lint(fixture_args("src/stream/guard_ok.cpp"));
  EXPECT_EQ(r.exit_code, kClean) << r.output;
}

// ---------------------------------------------------------------------------
// include-hygiene
// ---------------------------------------------------------------------------

TEST(IncludeHygiene, FlagsMissingPragmaOnceAndUsingNamespace) {
  const RunResult r = run_lint(fixture_args("src/core/hygiene_bad.hpp"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/core/hygiene_bad.hpp:3: include-hygiene:"))
      << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/core/hygiene_bad.hpp:7: include-hygiene:"))
      << r.output;
}

TEST(IncludeHygiene, WellFormedHeaderIsClean) {
  const RunResult r = run_lint(fixture_args("src/core/hygiene_ok.hpp"));
  EXPECT_EQ(r.exit_code, kClean) << r.output;
}

// ---------------------------------------------------------------------------
// no-raw-intrinsics
// ---------------------------------------------------------------------------

TEST(NoRawIntrinsics, FlagsHeaderTypeAndCallsOutsideSimdDir) {
  const RunResult r = run_lint(fixture_args("src/core/intrinsics_bad.cpp"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  // The include, the __m128d/_mm_loadu_pd line, and each intrinsic call
  // line — one finding per source line.
  EXPECT_TRUE(has_line_starting(
      r, "src/core/intrinsics_bad.cpp:3: no-raw-intrinsics:"))
      << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/core/intrinsics_bad.cpp:9: no-raw-intrinsics:"))
      << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/core/intrinsics_bad.cpp:10: no-raw-intrinsics:"))
      << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/core/intrinsics_bad.cpp:12: no-raw-intrinsics:"))
      << r.output;
}

TEST(NoRawIntrinsics, SimdKernelDirIsSanctioned) {
  const RunResult r =
      run_lint(fixture_args("src/numeric/simd/kernels_ok.cpp"));
  EXPECT_EQ(r.exit_code, kClean) << r.output;
}

TEST(NoRawIntrinsics, InlineAllowSuppressesAndIsTallied) {
  const RunResult r =
      run_lint(fixture_args("src/core/intrinsics_allowed.cpp"));
  EXPECT_EQ(r.exit_code, kClean) << r.output;
  EXPECT_NE(r.output.find("1 suppressions (no-raw-intrinsics x1)"),
            std::string::npos)
      << r.output;
}

// ---------------------------------------------------------------------------
// no-raw-sockets
// ---------------------------------------------------------------------------

TEST(NoRawSockets, FlagsHeaderAndFreeCallsOutsideNetio) {
  const RunResult r = run_lint(fixture_args("src/sim/raw_socket_bad.cpp"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  const char* expected[] = {
      "src/sim/raw_socket_bad.cpp:5: no-raw-sockets:",   // <sys/socket.h>
      "src/sim/raw_socket_bad.cpp:10: no-raw-sockets:",  // socket(
      "src/sim/raw_socket_bad.cpp:11: no-raw-sockets:",  // ::connect(
      "src/sim/raw_socket_bad.cpp:12: no-raw-sockets:",  // send(
      "src/sim/raw_socket_bad.cpp:15: no-raw-sockets:",  // return shutdown(
  };
  for (const char* prefix : expected) {
    EXPECT_TRUE(has_line_starting(r, prefix)) << prefix << "\n" << r.output;
  }
  // The in-struct declaration `int shutdown(int)` on line 14 is not a call.
  EXPECT_FALSE(has_line_starting(r, "src/sim/raw_socket_bad.cpp:14:"))
      << r.output;
}

TEST(NoRawSockets, NetioTransportLayerIsSanctioned) {
  const RunResult r = run_lint(fixture_args("src/netio/raw_socket_ok.cpp"));
  EXPECT_EQ(r.exit_code, kClean) << r.output;
}

TEST(NoRawSockets, MemberCallsAndQualifiedNamesAreClean) {
  const RunResult r =
      run_lint(fixture_args("src/core/socket_member_ok.cpp"));
  EXPECT_EQ(r.exit_code, kClean) << r.output;
}

// ---------------------------------------------------------------------------
// CLI contract
// ---------------------------------------------------------------------------

TEST(Cli, WholeFixtureTreeReportsEveryViolation) {
  const RunResult r = run_lint(fixture_args("src"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  EXPECT_NE(r.output.find("34 violations"), std::string::npos) << r.output;
}

TEST(Cli, RuleFilterNarrowsFindings) {
  const RunResult r = run_lint(fixture_args("--rule no-raw-thread src"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/sim/raw_thread_bad.cpp:8: no-raw-thread:"))
      << r.output;
  EXPECT_EQ(r.output.find("no-nan-compare:"), std::string::npos) << r.output;
}

TEST(Cli, ListRulesNamesAllTen) {
  const RunResult r = run_lint("--list-rules");
  EXPECT_EQ(r.exit_code, kClean) << r.output;
  for (const char* rule :
       {"no-nan-compare", "no-nondeterminism", "no-raw-thread",
        "pool-serial-guard", "include-hygiene", "no-raw-intrinsics",
        "no-raw-sockets", "guarded-member", "lock-order",
        "atomics-policy"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << r.output;
  }
}

TEST(Cli, ExpectSuppressionsFailsOnDriftEitherWay) {
  // The fixture has exactly one exercised suppression; expecting two must
  // fail even though two is ABOVE the actual count (drift, not budget).
  const RunResult drift = run_lint(
      fixture_args("--expect-suppressions 2 src/core/nan_compare_ok.cpp"));
  EXPECT_EQ(drift.exit_code, kViolations) << drift.output;
  EXPECT_NE(drift.output.find("suppression tally drifted"),
            std::string::npos)
      << drift.output;
  const RunResult exact = run_lint(
      fixture_args("--expect-suppressions 1 src/core/nan_compare_ok.cpp"));
  EXPECT_EQ(exact.exit_code, kClean) << exact.output;
}

TEST(Cli, MissingPathExitsUsage) {
  const RunResult r = run_lint(fixture_args("no/such/dir.cpp"));
  EXPECT_EQ(r.exit_code, kUsage) << r.output;
}

TEST(Cli, UnknownRuleExitsUsage) {
  const RunResult r = run_lint(fixture_args("--rule no-such-rule src"));
  EXPECT_EQ(r.exit_code, kUsage) << r.output;
}

// ---------------------------------------------------------------------------
// guarded-member
// ---------------------------------------------------------------------------

TEST(GuardedMember, FlagsUnannotatedWriteAndBareGuardedRead) {
  const RunResult r =
      run_lint(fixture_args("src/stream/guarded_member_bad.cpp"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  // ++hits_ under mu_ with no FLUXFP_GUARDED_BY on the declaration.
  EXPECT_TRUE(has_line_starting(
      r, "src/stream/guarded_member_bad.cpp:14: guarded-member:"))
      << r.output;
  // total_ is guarded but read with no lock held.
  EXPECT_TRUE(has_line_starting(
      r, "src/stream/guarded_member_bad.cpp:18: guarded-member:"))
      << r.output;
}

TEST(GuardedMember, AnnotatedAccessRequiresHelperAndAllowAreClean) {
  const RunResult r =
      run_lint(fixture_args("src/stream/guarded_member_ok.cpp"));
  EXPECT_EQ(r.exit_code, kClean) << r.output;
  EXPECT_NE(r.output.find("1 suppressions (guarded-member x1)"),
            std::string::npos)
      << r.output;
}

// ---------------------------------------------------------------------------
// atomics-policy
// ---------------------------------------------------------------------------

TEST(AtomicsPolicy, FlagsOrderingMixingAndImplicitSeqCst) {
  const RunResult r = run_lint(fixture_args("src/stream/atomics_bad.cpp"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  const char* expected[] = {
      "src/stream/atomics_bad.cpp:13: atomics-policy:",  // release order
      "src/stream/atomics_bad.cpp:17: atomics-policy:",  // implicit ++
      "src/stream/atomics_bad.cpp:23: atomics-policy:",  // flag_ + mutex
      "src/stream/atomics_bad.cpp:24: atomics-policy:",  // ticks_ + mutex
  };
  for (const char* prefix : expected) {
    EXPECT_TRUE(has_line_starting(r, prefix)) << prefix << "\n" << r.output;
  }
}

TEST(AtomicsPolicy, RelaxedOnlyAndJustifiedMixAreClean) {
  const RunResult r = run_lint(fixture_args("src/stream/atomics_ok.cpp"));
  EXPECT_EQ(r.exit_code, kClean) << r.output;
  EXPECT_NE(r.output.find("1 suppressions (atomics-policy x1)"),
            std::string::npos)
      << r.output;
}

TEST(AtomicsPolicy, ObsDirectoryIsSanctionedForAcquireRelease) {
  const RunResult r =
      run_lint(fixture_args("src/obs/atomics_sanctioned_ok.cpp"));
  EXPECT_EQ(r.exit_code, kClean) << r.output;
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

TEST(LockOrder, FlagsPinnedRankInversionAndCycle) {
  const RunResult r = run_lint(fixture_args("src/stream/lock_order_bad.cpp"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  // queue -> conns runs backwards through the canonical order.
  EXPECT_TRUE(has_line_starting(
      r, "src/stream/lock_order_bad.cpp:21: lock-order:"))
      << r.output;
  // Both edges of the ping/pong cycle are reported.
  EXPECT_TRUE(has_line_starting(
      r, "src/stream/lock_order_bad.cpp:42: lock-order:"))
      << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/stream/lock_order_bad.cpp:51: lock-order:"))
      << r.output;
  EXPECT_NE(r.output.find("acquisition cycle"), std::string::npos)
      << r.output;
}

TEST(LockOrder, ForwardNestingIsCleanAndBackEdgeAllowIsTallied) {
  const RunResult r = run_lint(fixture_args("src/stream/lock_order_ok.cpp"));
  EXPECT_EQ(r.exit_code, kClean) << r.output;
  EXPECT_NE(r.output.find("1 suppressions (lock-order x1)"),
            std::string::npos)
      << r.output;
}

// ---------------------------------------------------------------------------
// lexer regressions
// ---------------------------------------------------------------------------

TEST(Lexer, LineNumbersSurviveRawStringsSplicesAndSeparators) {
  // The fixture stacks prefixed raw strings (incl. a fake `)"` closer and
  // a multi-line body), a line splice inside a literal, and digit
  // separators above a single violation: the finding must land on its
  // exact line, and nothing above it may be flagged.
  const RunResult r =
      run_lint(fixture_args("src/core/lexer_tricky_bad.cpp"));
  EXPECT_EQ(r.exit_code, kViolations) << r.output;
  EXPECT_TRUE(has_line_starting(
      r, "src/core/lexer_tricky_bad.cpp:31: no-nan-compare:"))
      << r.output;
  EXPECT_NE(r.output.find("1 violations"), std::string::npos) << r.output;
}

TEST(Lexer, RawStringOpenerAtEofDoesNotCrash) {
  const RunResult r =
      run_lint(fixture_args("src/core/lexer_unterminated_ok.cpp"));
  EXPECT_EQ(r.exit_code, kClean) << r.output;
}

// ---------------------------------------------------------------------------
// incremental cache
// ---------------------------------------------------------------------------

TEST(Cache, SecondRunIsByteIdenticalAndPopulatesCacheFile) {
  const std::string cache_path =
      std::string(::testing::TempDir()) + "fluxfp_lint_cache_test_" +
      std::to_string(::getpid());
  std::remove(cache_path.c_str());
  const std::string args =
      fixture_args("--cache-file " + cache_path + " src");
  const RunResult cold = run_lint(args);
  const RunResult warm = run_lint(args);
  EXPECT_EQ(cold.exit_code, kViolations) << cold.output;
  EXPECT_EQ(warm.exit_code, cold.exit_code);
  EXPECT_EQ(warm.output, cold.output)
      << "cache hit must reproduce the cold run byte for byte";
  FILE* f = std::fopen(cache_path.c_str(), "r");
  ASSERT_NE(f, nullptr) << "cache file was not written";
  std::fclose(f);
  // A poisoned cache must be ignored, not trusted.
  f = std::fopen(cache_path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not a cache\n", f);
  std::fclose(f);
  const RunResult repaired = run_lint(args);
  EXPECT_EQ(repaired.output, cold.output) << repaired.output;
  std::remove(cache_path.c_str());
}

TEST(Cache, NoCacheFlagMatchesCachedOutput) {
  const RunResult uncached = run_lint(fixture_args("--no-cache src"));
  const std::string cache_path =
      std::string(::testing::TempDir()) + "fluxfp_lint_nocache_test_" +
      std::to_string(::getpid());
  std::remove(cache_path.c_str());
  const std::string args =
      fixture_args("--cache-file " + cache_path + " src");
  run_lint(args);  // populate
  const RunResult warm = run_lint(args);
  EXPECT_EQ(warm.output, uncached.output);
  std::remove(cache_path.c_str());
}

}  // namespace
