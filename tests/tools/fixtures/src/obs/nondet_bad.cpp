// Fixture: src/obs/ is order-sensitive — a metric export folded from an
// unordered container would break the byte-identical-export guarantee.
#include <string>
#include <unordered_map>

namespace fluxfp::obs {

std::unordered_map<std::string, double> gauges_;

std::string export_in_bucket_order() {
  std::string out;
  for (const auto& [name, value] : gauges_) {  // line 12: flagged
    out += name + " " + std::to_string(value) + "\n";
  }
  return out;
}

}  // namespace fluxfp::obs
