// Fixture: src/obs/ is a sanctioned path — acquire/release orderings are
// the observability layer's documented design and must not be flagged.
#include <atomic>
#include <cstdint>

namespace fluxfp {

class ObsClockCell {
 public:
  void publish(std::uint64_t v) {
    value_.store(v, std::memory_order_release);
  }
  std::uint64_t read() const {
    return value_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

}  // namespace fluxfp
