// Fixture: every entropy/order source no-nondeterminism bans, in a
// result-bearing directory (src/numeric).
#include <cstdlib>
#include <ctime>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>

namespace fluxfp {

std::unordered_map<int, double> weights_;

double entropy_seed() {
  std::random_device rd;  // line 15: flagged
  return static_cast<double>(rd());
}

double libc_rand() {
  std::srand(42);            // line 20: flagged
  return std::rand() / 2.0;  // line 21: flagged
}

unsigned long wall_clock_seed() {
  return static_cast<unsigned long>(time(nullptr));  // line 25: flagged
}

bool on_first_thread() {
  return std::this_thread::get_id() == std::thread::id{};  // line 29: flagged
}

double order_dependent_sum() {
  double total = 0.0;
  for (const auto& [k, v] : weights_) {  // line 34: flagged
    total = total * 0.5 + v + k;
  }
  return total;
}

}  // namespace fluxfp
