// Fixture: the same intrinsics are sanctioned inside src/numeric/simd/ —
// the kernel layer is where architecture-specific code lives.
#include <immintrin.h>

namespace fluxfp::numeric::simd {

double sum2(const double* p) {
  __m128d v = _mm_loadu_pd(p);
  v = _mm_add_pd(v, v);
  double out[2];
  _mm_storeu_pd(out, v);
  return out[0] + out[1];
}

}  // namespace fluxfp::numeric::simd
