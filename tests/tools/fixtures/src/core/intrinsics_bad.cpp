// Fixture: raw SIMD intrinsics outside src/numeric/simd/ — the include,
// the vector type, and the intrinsic calls must each be flagged (once per
#include <immintrin.h>
// line). Never compiled; linted only.

namespace fluxfp {

double sum2(const double* p) {
  __m128d v = _mm_loadu_pd(p);
  v = _mm_add_pd(v, v);
  double out[2];
  _mm_storeu_pd(out, v);
  return out[0] + out[1];
}

}  // namespace fluxfp
