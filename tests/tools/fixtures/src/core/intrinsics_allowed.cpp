// Fixture: a justified one-off intrinsic under an inline allow — tallied
// as a suppression, not reported.

namespace fluxfp {

void warm(const char* p) {
  // fluxfp-lint: allow(no-raw-intrinsics) -- fixture: justified one-off.
  __builtin_ia32_pause();
  (void)p;
}

}  // namespace fluxfp
