// Fixture: direct comparisons against the NaN sentinel. Every one is a
// bug — kMissingReading is a NaN, so == is always false.
#include <limits>

namespace fluxfp {

inline constexpr double kMissingReading =
    std::numeric_limits<double>::quiet_NaN();

bool broken_eq(double reading) {
  return reading == kMissingReading;  // line 11: flagged
}

bool broken_ne(double reading) {
  return kMissingReading != reading;  // line 15: flagged
}

bool broken_raw(double reading) {
  return reading == std::numeric_limits<double>::quiet_NaN();  // line 19
}

}  // namespace fluxfp
