// Fixture: a raw-string opener cut off at end-of-file. The lexer must
// degrade gracefully (no crash, no violations) — this file once threw
// std::out_of_range scanning for the delimiter.
namespace fluxfp {
inline const char* kCut = R"