// Fixture header: missing #pragma once (line 4 reports on the first
// token) and a namespace-polluting using-directive (line 7).
#include <vector>

namespace fluxfp {

using namespace std;

inline vector<int> make() { return {}; }

}  // namespace fluxfp
