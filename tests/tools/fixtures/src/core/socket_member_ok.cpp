// Fixture: syscall-shaped names used as member calls or class-qualified
// names are clean — only free/global-scope calls of the BSD socket names
// are confined to src/netio/.
#include <functional>

namespace fluxfp::core {

struct FakeClient {
  bool connect(int) { return true; }
  int send(const char*, int) { return 0; }
  static int listen(int backlog) { return backlog; }
};

int drive(FakeClient& c, FakeClient* p) {
  c.connect(1);
  p->send("x", 1);
  FakeClient::listen(8);
  auto bound = std::bind(&FakeClient::listen, 4);
  return bound();
}

}  // namespace fluxfp::core
