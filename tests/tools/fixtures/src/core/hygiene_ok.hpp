#pragma once

// Fixture header: well-behaved — #pragma once first, no using-directives.
#include <vector>

namespace fluxfp {

inline std::vector<int> make() { return {}; }

}  // namespace fluxfp
