// Fixture: the sanctioned ways to handle the sentinel — is_missing() for
// the test, plain assignment, and one justified suppressed comparison.
#include <cmath>
#include <limits>

namespace fluxfp {

inline constexpr double kMissingReading =
    std::numeric_limits<double>::quiet_NaN();

bool is_missing(double v) { return std::isnan(v); }

double clean(double reading) {
  if (is_missing(reading)) {
    return 0.0;
  }
  double out = kMissingReading;  // assignment is fine
  out = reading;
  return out;
}

bool suppressed(double reading) {
  // fluxfp-lint: allow(no-nan-compare) -- fixture: proves == is dead code.
  return reading == kMissingReading;
}

}  // namespace fluxfp
