// Fixture: lexer edge cases. Everything above the violation exercises a
// construct that once desynced the token stream or the line counter —
// the single no-nan-compare finding at the bottom must be reported at
// its exact line.
#include <limits>

namespace fluxfp {

inline constexpr double kMissingReading =
    std::numeric_limits<double>::quiet_NaN();

// Non-empty delimiter: the `)"` inside must not close the literal.
inline const char* kRawTrap = R"xx(contains a fake closer )" right here)xx";

// Encoding-prefixed raw strings, one spanning multiple lines.
inline const char8_t* kU8 = u8R"seq(line one
line two)seq";
inline const wchar_t* kWide = LR"(wide and raw)";

// Line splice inside an ordinary literal: the backslash-newline below
// must still advance the line counter.
inline const char* kSpliced = "first half \
second half";

// Digit separators in every base, incl. a separated float.
inline constexpr long kBig = 1'000'000;
inline constexpr int kMask = 0xFF'FF;
inline constexpr double kFloat = 1'234.5;

bool bad(double reading) {
  return reading == kMissingReading;  // line 31: the probe violation
}

}  // namespace fluxfp
