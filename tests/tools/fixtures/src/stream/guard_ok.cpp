// Fixture: the sanctioned worker shape — the thread body (via one level of
// same-file call expansion) holds a SerialRegionGuard before stepping.
#include <cstddef>
#include <thread>
#include <vector>

namespace fluxfp {

namespace numeric {
struct SerialRegionGuard {
  SerialRegionGuard();
  ~SerialRegionGuard();
};
}  // namespace numeric

struct Tracker {
  void on_event(int e);
};

struct Shard {
  std::vector<Tracker> sessions_;
  std::vector<std::thread> threads_;

  void worker_loop(std::size_t w) {
    numeric::SerialRegionGuard serial;
    sessions_[w].on_event(static_cast<int>(w));
  }

  void start() {
    threads_.emplace_back([this] { worker_loop(0); });  // guarded: clean
  }
};

}  // namespace fluxfp
