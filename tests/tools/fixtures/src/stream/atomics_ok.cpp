// Fixture: the sanctioned shapes — relaxed-only stats in a lock-free
// class, and an atomic beside a mutex carrying an inline justification.
#include <atomic>
#include <cstdint>
#include <vector>

#include "support/thread_annotations.hpp"

namespace fluxfp {

class ApOkCounter {
 public:
  void tick() { hits_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t read() const {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> hits_{0};
};

class ApOkMixed {
 public:
  void add(int v) {
    support::MutexLock lock(mu_);
    items_.push_back(v);
  }
  bool closed() const { return closed_.load(std::memory_order_relaxed); }

 private:
  support::Mutex mu_;
  std::vector<int> items_ FLUXFP_GUARDED_BY(mu_);
  std::atomic<bool> closed_{false};  // fluxfp-lint: allow(atomics-policy) -- fixture: advisory close flag, real publication elsewhere
};

}  // namespace fluxfp
