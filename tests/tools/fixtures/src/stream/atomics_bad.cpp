// Fixture: every atomics-policy failure mode outside the sanctioned
// paths — a non-relaxed ordering, atomics mixed with a mutex in one
// class without justification, and an implicit-seq_cst operation.
#include <atomic>

#include "support/thread_annotations.hpp"

namespace fluxfp {

class ApBadGate {
 public:
  void open() {
    flag_.store(true, std::memory_order_release);  // line 13: non-relaxed
  }

  void tick() {
    ++ticks_;  // line 17: implicit seq_cst on an atomic member
  }

 private:
  support::Mutex mu_;
  int state_ FLUXFP_GUARDED_BY(mu_) = 0;
  std::atomic<bool> flag_{false};  // line 23: mixed with mu_, no allow
  std::atomic<int> ticks_{0};      // line 24: mixed with mu_, no allow
};

}  // namespace fluxfp
