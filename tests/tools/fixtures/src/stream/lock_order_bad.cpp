// Fixture: both lock-order failure modes — a pinned-rank inversion
// (EventQueue::mutex_ held while taking Server::conns_mutex_, backwards
// in the canonical order) and a two-mutex acquisition cycle between
// unpinned locks.
#include "support/thread_annotations.hpp"

namespace fluxfp {

class Server {
 public:
  void kick_everyone() { support::MutexLock lock(conns_mutex_); }

 private:
  support::Mutex conns_mutex_;
};

class EventQueue {
 public:
  void drain(Server& srv) {
    support::MutexLock lock(mutex_);
    srv.kick_everyone();  // line 21: queue -> conns, against the order
  }

 private:
  support::Mutex mutex_;
};

class LoPong;

class LoPing {
 public:
  void grab_then_pong(LoPong& p);
  void grab_ping() { support::MutexLock lock(ping_mutex_); }

  support::Mutex ping_mutex_;
};

class LoPong {
 public:
  void grab_then_ping(LoPing& p) {
    support::MutexLock lock(pong_mutex_);
    p.grab_ping();  // edge pong -> ping
  }
  void grab_pong() { support::MutexLock lock(pong_mutex_); }

  support::Mutex pong_mutex_;
};

void LoPing::grab_then_pong(LoPong& p) {
  support::MutexLock lock(ping_mutex_);
  p.grab_pong();  // edge ping -> pong: completes the cycle
}

}  // namespace fluxfp
