// Fixture: both halves of the guarded-member contract broken — a member
// written under the lock without FLUXFP_GUARDED_BY, and a guarded member
// read with no lock held.
#include <cstddef>

#include "support/thread_annotations.hpp"

namespace fluxfp {

class GmBadCounter {
 public:
  void bump() {
    support::MutexLock lock(mu_);
    ++hits_;  // line 14: written under mu_ but not declared guarded
  }

  std::size_t peek() const {
    return total_;  // line 18: guarded by mu_, accessed bare
  }

 private:
  support::Mutex mu_;
  std::size_t hits_ = 0;
  std::size_t total_ FLUXFP_GUARDED_BY(mu_) = 0;
};

}  // namespace fluxfp
