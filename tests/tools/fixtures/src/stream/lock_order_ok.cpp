// Fixture: nesting that follows the canonical order (flow -> queue) is
// clean, and a documented back-edge carries a lock-order suppression.
#include "support/thread_annotations.hpp"

namespace fluxfp {

class EventQueue {
 public:
  void push_one() { support::MutexLock lock(mutex_); }

 private:
  support::Mutex mutex_;
};

class TrackerManager {
 public:
  void route(EventQueue& q) {
    support::MutexLock lock(flow_mutex_);
    q.push_one();  // flow -> queue: forward in the canonical order
  }

 private:
  support::Mutex flow_mutex_;
};

class Pool {
 public:
  void flush(EventQueue& q) {
    support::MutexLock lock(mutex_);
    q.push_one();  // fluxfp-lint: allow(lock-order) -- fixture: documented pool->queue exception
  }

 private:
  support::Mutex mutex_;
};

}  // namespace fluxfp
