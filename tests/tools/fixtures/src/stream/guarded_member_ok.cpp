// Fixture: the sanctioned shapes — every guarded access under the lock,
// FLUXFP_REQUIRES carrying the obligation to a helper, and one justified
// suppressed bare read.
#include <cstddef>

#include "support/thread_annotations.hpp"

namespace fluxfp {

class GmOkCounter {
 public:
  void bump() {
    support::MutexLock lock(mu_);
    ++hits_;
    trim_locked();
  }

  std::size_t snapshot() {
    support::MutexLock lock(mu_);
    return hits_;
  }

  std::size_t racy_peek() const {
    // fluxfp-lint: allow(guarded-member) -- fixture: approximate stats
    // read; staleness is acceptable and torn reads impossible for size_t.
    return hits_;
  }

 private:
  void trim_locked() FLUXFP_REQUIRES(mu_) {
    if (hits_ > 1000) {
      hits_ = 0;  // fine: caller holds mu_ per the annotation
    }
  }

  support::Mutex mu_;
  std::size_t hits_ FLUXFP_GUARDED_BY(mu_) = 0;
};

}  // namespace fluxfp
