// Fixture: src/stream/ owns its sharded workers — raw std::thread is
// sanctioned here (no finding expected).
#include <thread>
#include <vector>

namespace fluxfp {

void sanctioned_workers() {
  std::vector<std::thread> threads;
  threads.emplace_back([] {});
  for (std::thread& t : threads) {
    t.join();
  }
}

}  // namespace fluxfp
