// Fixture: a worker thread that re-enters pool-using code without holding
// numeric::SerialRegionGuard — the single-external-caller protocol breaks.
#include <cstddef>
#include <thread>
#include <vector>

namespace fluxfp {

struct Tracker {
  void on_event(int e);
};

struct Shard {
  std::vector<Tracker> sessions_;
  std::vector<std::thread> threads_;

  void worker_loop(std::size_t w) {
    sessions_[w].on_event(static_cast<int>(w));  // pool-reentrant, unguarded
  }

  void start() {
    threads_.emplace_back([this] { worker_loop(0); });  // line 22: flagged
  }
};

}  // namespace fluxfp
