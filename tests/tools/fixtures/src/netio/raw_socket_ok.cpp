// Fixture: the same raw socket usage is sanctioned inside src/netio/ —
// the transport layer is the one place allowed to own fds and syscalls.
#include <cstdint>
#include <sys/socket.h>
#include <sys/un.h>

namespace fluxfp::netio {

int open_listener() {
  const int fd = socket(1, 1, 0);
  const int one = 1;
  setsockopt(fd, 1, 2, &one, sizeof(one));
  bind(fd, nullptr, 0);
  listen(fd, 64);
  return accept(fd, nullptr, nullptr);
}

}  // namespace fluxfp::netio
