// Fixture: raw socket usage outside src/netio/. Every flagged line is a
// syscall-shaped free call or a socket header include; the rule must hit
// lines 5, 10, 11, 12, and 15.
#include <cstdint>
#include <sys/socket.h>

namespace fluxfp::sim {

int leak_telemetry(const char* buf, std::uint64_t n) {
  const int fd = socket(2, 1, 0);
  ::connect(fd, nullptr, 0);
  send(fd, buf, n, 0);
  // A member call must NOT be flagged even on a hit name:
  struct Wrapper { int shutdown(int) { return 0; } } w;
  return shutdown(fd, 2) + w.shutdown(2);
}

}  // namespace fluxfp::sim
