// Fixture: raw parallelism outside the sanctioned directories.
#include <future>
#include <thread>

namespace fluxfp {

void spawn_worker() {
  std::thread t([] {});  // line 8: flagged
  t.join();
}

void spawn_async() {
  auto f = std::async([] { return 1; });  // line 13: flagged
  f.get();
}

unsigned query_is_fine() {
  // A capability query, not a spawn: must NOT be flagged.
  return std::thread::hardware_concurrency();
}

}  // namespace fluxfp
