// Fixture: range-for over an unordered container in src/sim — outside the
// result-bearing directories, so no-nondeterminism stays quiet about the
// iteration (the commutative fold below is order-safe).
#include <unordered_set>

namespace fluxfp {

std::unordered_set<int> scratch_ids_;

int count_ids() {
  int n = 0;
  for (int id : scratch_ids_) {
    n += id > 0 ? 1 : 0;
  }
  return n;
}

}  // namespace fluxfp
