# Thread-safety-analysis smoke driver, run as a ctest under Clang only.
# Proves the -Werror=thread-safety gate both accepts correct code and
# rejects a dropped guard — a green build that cannot fail is no gate.
#
# Expects: -DCXX=<clang++> -DSRC_DIR=<repo root> -DSMOKE_DIR=<this dir>

foreach(var CXX SRC_DIR SMOKE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_smoke.cmake: missing -D${var}=")
  endif()
endforeach()

set(flags -std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety
    -I${SRC_DIR}/src)

execute_process(
  COMMAND ${CXX} ${flags} ${SMOKE_DIR}/annotated_ok.cpp
  RESULT_VARIABLE ok_rc
  ERROR_VARIABLE ok_err)
if(NOT ok_rc EQUAL 0)
  message(FATAL_ERROR
      "annotated_ok.cpp must compile under -Werror=thread-safety but "
      "failed:\n${ok_err}")
endif()

execute_process(
  COMMAND ${CXX} ${flags} ${SMOKE_DIR}/guard_dropped_fail.cpp
  RESULT_VARIABLE bad_rc
  ERROR_VARIABLE bad_err)
if(bad_rc EQUAL 0)
  message(FATAL_ERROR
      "guard_dropped_fail.cpp compiled clean: thread-safety analysis is "
      "not catching a dropped guard — the annotation gate is dead")
endif()
if(NOT bad_err MATCHES "thread-safety|guarded_by|guarded by")
  message(FATAL_ERROR
      "guard_dropped_fail.cpp failed for the wrong reason:\n${bad_err}")
endif()

message(STATUS "thread-safety smoke: gate accepts good code, rejects "
        "a dropped guard")
