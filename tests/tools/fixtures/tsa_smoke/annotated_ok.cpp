// TSA smoke, passing half: a correctly annotated miniature of the
// EventQueue shape. Must compile clean under Clang with
// -Werror=thread-safety; if it does not, the annotation macros or the
// compiler wiring are broken.
#include <cstddef>
#include <deque>

#include "support/thread_annotations.hpp"

namespace fluxfp {

class SmokeQueue {
 public:
  void push(int v) {
    support::MutexLock lock(mutex_);
    items_.push_back(v);
  }

  std::size_t size() const {
    support::MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  mutable support::Mutex mutex_;
  std::deque<int> items_ FLUXFP_GUARDED_BY(mutex_);
};

}  // namespace fluxfp
