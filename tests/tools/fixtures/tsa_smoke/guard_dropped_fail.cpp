// TSA smoke, failing half: identical to annotated_ok.cpp except push()
// drops the lock, exactly what deleting a FLUXFP_GUARDED_BY-protected
// acquisition looks like. Clang with -Werror=thread-safety MUST refuse
// to compile this file; if it compiles, the analysis is not running and
// the guard annotations have silently stopped being enforced.
#include <cstddef>
#include <deque>

#include "support/thread_annotations.hpp"

namespace fluxfp {

class SmokeQueue {
 public:
  void push(int v) {
    items_.push_back(v);  // guarded member, no lock: must not compile
  }

  std::size_t size() const {
    support::MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  mutable support::Mutex mutex_;
  std::deque<int> items_ FLUXFP_GUARDED_BY(mutex_);
};

}  // namespace fluxfp
