// CLI contract of the stream_daemon binary: every argument-parsing
// failure — unknown subcommand, unknown flag, missing value, non-numeric
// value, missing positional — exits 2 through the single usage_error path
// with a one-line diagnostic plus the brief usage; --help exits 0. These
// run the real binary (path injected by CMake) so the contract covers the
// actual main(), not a reimplementation.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#ifndef STREAM_DAEMON_BIN
#error "STREAM_DAEMON_BIN must be defined by the build"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run_daemon(const std::string& args) {
  const std::string cmd =
      std::string(STREAM_DAEMON_BIN) + " " + args + " 2>&1";
  RunResult res;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << cmd;
    return res;
  }
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    res.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  res.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status)
                                                     : -1;
  return res;
}

void expect_usage_error(const std::string& args, const std::string& needle) {
  const RunResult res = run_daemon(args);
  EXPECT_EQ(res.exit_code, 2) << args << "\n" << res.output;
  EXPECT_NE(res.output.find("stream_daemon:"), std::string::npos)
      << args << "\n" << res.output;
  EXPECT_NE(res.output.find("usage:"), std::string::npos)
      << args << "\n" << res.output;
  EXPECT_NE(res.output.find(needle), std::string::npos)
      << args << "\n" << res.output;
}

TEST(StreamDaemonCli, HelpExitsZeroAndListsSubcommands) {
  const RunResult res = run_daemon("--help");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  for (const char* sub : {"local", "serve", "replay-to", "query"}) {
    EXPECT_NE(res.output.find(sub), std::string::npos) << res.output;
  }
  const RunResult help_word = run_daemon("help");
  EXPECT_EQ(help_word.exit_code, 0) << help_word.output;
}

TEST(StreamDaemonCli, UnknownSubcommandExitsTwo) {
  expect_usage_error("frobnicate", "unknown subcommand");
}

TEST(StreamDaemonCli, UnknownFlagExitsTwoInEverySubcommand) {
  expect_usage_error("local --no-such-flag", "--no-such-flag");
  expect_usage_error("serve --bogus", "--bogus");
  expect_usage_error("replay-to tcp:127.0.0.1:1 --bogus", "--bogus");
  expect_usage_error("query tcp:127.0.0.1:1 --bogus", "--bogus");
}

TEST(StreamDaemonCli, MissingFlagValueExitsTwo) {
  expect_usage_error("local --sessions", "--sessions");
  expect_usage_error("serve --listen", "--listen");
}

TEST(StreamDaemonCli, NonNumericValueExitsTwoInsteadOfParsingAsZero) {
  // The historical bug: strtoull silently turned "abc" into 0. Every
  // numeric flag now goes through checked parsing.
  expect_usage_error("local --sessions abc", "--sessions");
  expect_usage_error("local --rounds 3x", "--rounds");
  expect_usage_error("local --speed fast", "--speed");
  expect_usage_error("serve --queue-capacity -", "--queue-capacity");
}

TEST(StreamDaemonCli, ClientSubcommandsRequireAnAddress) {
  expect_usage_error("replay-to", "ADDR");
  expect_usage_error("query", "ADDR");
}

TEST(StreamDaemonCli, MalformedEndpointExitsTwo) {
  expect_usage_error("serve --listen nonsense", "nonsense");
}

TEST(StreamDaemonCli, BareFlagsStillMeanLocalForBackCompat) {
  // The pre-subcommand invocation `stream_daemon --sessions N ...` must
  // keep working; a tiny run proves it routes to `local` and succeeds.
  const std::string trace = "/tmp/fxn_cli_smoke.trace";
  const RunResult res = run_daemon(
      "--sessions 1 --rounds 1 --workers 1 --trace " + trace);
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("replayed"), std::string::npos) << res.output;
  std::remove(trace.c_str());
}

TEST(StreamDaemonCli, BadTokenSpecExitsTwo) {
  expect_usage_error("serve --token notanumber", "--token");
  expect_usage_error("serve --token 3", "--token");
}

}  // namespace
