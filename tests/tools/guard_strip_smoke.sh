#!/usr/bin/env bash
# Guard-strip smoke: deleting any single FLUXFP_GUARDED_BY from the
# event-queue or server headers must trip the guarded-member lint rule.
# This is the compiler-independent half of the acceptance gate (the
# Clang -Werror=thread-safety smoke is the other half): annotations only
# protect the code while removing one is loud.
#
# Usage: guard_strip_smoke.sh <fluxfp_lint binary> <repo root>
set -u

LINT="${1:?usage: guard_strip_smoke.sh <lint-bin> <repo-root>}"
ROOT="${2:?usage: guard_strip_smoke.sh <lint-bin> <repo-root>}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cp -r "$ROOT/src" "$TMP/src"

# Baseline: the pristine tree must be clean, or every strip "fails" for
# free and the smoke proves nothing.
if ! "$LINT" --root "$TMP" --no-cache --rule guarded-member src \
    > "$TMP/baseline.out" 2>&1; then
  echo "guard_strip_smoke: pristine tree is not clean:" >&2
  cat "$TMP/baseline.out" >&2
  exit 1
fi

total=0
uncaught=0
for f in src/stream/event_queue.hpp src/netio/server.hpp; do
  count=$(grep -o 'FLUXFP_GUARDED_BY([^)]*)' "$ROOT/$f" | wc -l)
  if [ "$count" -eq 0 ]; then
    echo "guard_strip_smoke: no FLUXFP_GUARDED_BY left in $f" >&2
    exit 1
  fi
  for k in $(seq 1 "$count"); do
    total=$((total + 1))
    # Strip occurrence k (and only it), preserving every line number.
    awk -v k="$k" '
      { line = $0; outline = ""; c = seen
        while (match(line, /FLUXFP_GUARDED_BY\([^)]*\)/)) {
          c++
          if (c == k) {
            outline = outline substr(line, 1, RSTART - 1)
            line = substr(line, RSTART + RLENGTH)
          } else {
            outline = outline substr(line, 1, RSTART + RLENGTH - 1)
            line = substr(line, RSTART + RLENGTH)
          }
        }
        seen = c
        print outline line
      }' "$ROOT/$f" > "$TMP/$f"
    out=$("$LINT" --root "$TMP" --no-cache --rule guarded-member src 2>&1)
    rc=$?
    if [ "$rc" -eq 0 ] || ! printf '%s' "$out" | grep -q guarded-member; then
      echo "guard_strip_smoke: stripping occurrence $k from $f was NOT" \
           "caught (rc=$rc)" >&2
      printf '%s\n' "$out" | head -5 >&2
      uncaught=$((uncaught + 1))
    fi
    cp "$ROOT/$f" "$TMP/$f"
  done
done

echo "guard_strip_smoke: $total guard strips tested, $uncaught uncaught"
[ "$uncaught" -eq 0 ]
