#include "stream/event_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/flux.hpp"

#if defined(FLUXFP_OBS_ENABLED)
#include "obs/obs.hpp"
#endif

namespace fluxfp::stream {
namespace {

FluxEvent ev(double time, std::uint32_t node) {
  return {time, 0, 0, node, 1.0};
}

TEST(EventQueue, RejectsZeroCapacity) {
  EXPECT_THROW(EventQueue(0, QueuePolicy::kBlock), std::invalid_argument);
}

TEST(EventQueue, FifoOrderAndStats) {
  EventQueue q(8, QueuePolicy::kBlock);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.push(ev(i, static_cast<std::uint32_t>(i))));
  }
  FluxEvent out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out.node, static_cast<std::uint32_t>(i));
  }
  EXPECT_FALSE(q.try_pop(out));
  const QueueStats s = q.stats();
  EXPECT_EQ(s.pushed, 5u);
  EXPECT_EQ(s.popped, 5u);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_EQ(s.max_depth, 5u);
}

TEST(EventQueue, BlockPolicyIsLossless) {
  EventQueue q(2, QueuePolicy::kBlock);
  std::atomic<int> produced{0};
  // fluxfp-lint: allow(no-raw-thread) -- MPSC backpressure needs a real
  // competing producer thread; parallel_for cannot model it.
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) {
      q.push(ev(i, static_cast<std::uint32_t>(i)));
      produced.fetch_add(1);
    }
    q.close();
  });
  // Slow consumer: backpressure must keep every event.
  std::vector<std::uint32_t> seen;
  FluxEvent out;
  while (q.pop(out)) {
    seen.push_back(out.node);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  producer.join();
  ASSERT_EQ(seen.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(seen[i], i);
  }
  EXPECT_EQ(q.stats().dropped, 0u);
}

TEST(EventQueue, BlockPolicyActuallyBlocksProducer) {
  EventQueue q(1, QueuePolicy::kBlock);
  ASSERT_TRUE(q.push(ev(0, 0)));
  std::atomic<bool> second_done{false};
  // fluxfp-lint: allow(no-raw-thread) -- must observe a blocked push from
  // outside; only a raw thread can be parked mid-call.
  std::thread producer([&] {
    q.push(ev(1, 1));
    second_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_done.load());  // full queue held the producer
  FluxEvent out;
  ASSERT_TRUE(q.pop(out));
  producer.join();
  EXPECT_TRUE(second_done.load());
}

TEST(EventQueue, DropOldestEvictsAndCounts) {
  EventQueue q(3, QueuePolicy::kDropOldest);
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(q.push(ev(i, static_cast<std::uint32_t>(i))));
  }
  // Capacity 3: events 0..3 were evicted, 4..6 survive in order.
  FluxEvent out;
  for (std::uint32_t expect : {4u, 5u, 6u}) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out.node, expect);
  }
  const QueueStats s = q.stats();
  EXPECT_EQ(s.pushed, 7u);
  EXPECT_EQ(s.dropped, 4u);
  EXPECT_EQ(s.popped, 3u);
}

TEST(EventQueue, StatsSnapshotsStayConsistentUnderConcurrentDrops) {
  // Regression guard for the kDropOldest drop accounting: a producer
  // mutates pushed/dropped/max_depth at full speed while this thread
  // snapshots stats() — under TSan this is the tear/race probe, and the
  // invariants below catch a snapshot that mixed two states.
  EventQueue q(8, QueuePolicy::kDropOldest);
  constexpr std::uint64_t kEvents = 20000;
#if defined(FLUXFP_OBS_ENABLED)
  auto& reg = obs::MetricsRegistry::global();
  obs::Counter& obs_pushed =
      reg.counter("fluxfp_stream_queue_pushed_total", "");
  obs::Counter& obs_popped =
      reg.counter("fluxfp_stream_queue_popped_total", "");
  obs::Counter& obs_dropped = reg.counter(
      "fluxfp_stream_queue_dropped_total", "",
      obs::Determinism::kScheduling);
  const std::uint64_t pushed0 = obs_pushed.value();
  const std::uint64_t popped0 = obs_popped.value();
  const std::uint64_t dropped0 = obs_dropped.value();
#endif
  std::atomic<bool> done{false};
  // fluxfp-lint: allow(no-raw-thread) -- the race under test is a producer
  // mutating QueueStats while another thread snapshots them.
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      q.push(ev(static_cast<double>(i), static_cast<std::uint32_t>(i % 64)));
    }
    done.store(true);
  });
  FluxEvent out;
  std::uint64_t polls = 0;
  while (!done.load()) {
    const QueueStats s = q.stats();
    // Counters are taken under one lock: any snapshot, however racy the
    // surrounding traffic, must satisfy the queue's conservation laws.
    ASSERT_LE(s.popped + s.dropped, s.pushed);
    ASSERT_LE(s.pushed - s.popped - s.dropped, q.capacity());
    ASSERT_LE(s.max_depth, q.capacity());
    ++polls;
    if ((polls & 7u) == 0) {
      q.try_pop(out);  // keep the consumer half of the protocol alive
    }
  }
  producer.join();
  while (q.try_pop(out)) {
  }
  const QueueStats s = q.stats();
  EXPECT_EQ(s.pushed, kEvents);
  EXPECT_EQ(s.popped + s.dropped, s.pushed);
  EXPECT_GT(s.dropped, 0u);  // capacity 8 vs 20k pushes must evict
#if defined(FLUXFP_OBS_ENABLED)
  // The obs mirrors moved in lockstep with the QueueStats they replace.
  EXPECT_EQ(obs_pushed.value() - pushed0, s.pushed);
  EXPECT_EQ(obs_popped.value() - popped0, s.popped);
  EXPECT_EQ(obs_dropped.value() - dropped0, s.dropped);
#endif
}

TEST(EventQueue, CloseDrainsThenStops) {
  EventQueue q(4, QueuePolicy::kBlock);
  q.push(ev(0, 7));
  q.close();
  EXPECT_FALSE(q.push(ev(1, 8)));  // no new events after close
  FluxEvent out;
  EXPECT_TRUE(q.pop(out));  // but the backlog still drains
  EXPECT_EQ(out.node, 7u);
  EXPECT_FALSE(q.pop(out));
}

TEST(EventQueue, CloseWakesBlockedProducerPromptly) {
  // Shutdown-wakeup regression guard: a producer parked in a kBlock push
  // must observe close() promptly and return false — shutdown must never
  // wait for a pop that will not come.
  EventQueue q(1, QueuePolicy::kBlock);
  ASSERT_TRUE(q.push(ev(0, 0)));
  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  // fluxfp-lint: allow(no-raw-thread) -- must park a producer mid-push and
  // watch close() release it from outside.
  std::thread producer([&] {
    push_result.store(q.push(ev(1, 1)));
    push_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_FALSE(push_returned.load());  // parked on the full queue
  q.close();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!push_returned.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(push_returned.load());  // woke without a pop
  producer.join();
  EXPECT_FALSE(push_result.load());   // and reported the closure
  FluxEvent out;
  EXPECT_TRUE(q.pop(out));  // the pre-close backlog still drains
  EXPECT_EQ(out.node, 0u);
  EXPECT_FALSE(q.pop(out));
}

TEST(EventQueue, EvictOneRemovesOldestOfUserAndCounts) {
  EventQueue q(8, QueuePolicy::kBlock);
  ASSERT_TRUE(q.push({0.0, 5, 0, 10, 1.0}));
  ASSERT_TRUE(q.push({1.0, 9, 0, 11, 1.0}));
  ASSERT_TRUE(q.push({2.0, 5, 1, 12, 1.0}));
  EXPECT_FALSE(q.evict_one(77));  // no such user queued
  EXPECT_TRUE(q.evict_one(5));    // removes user 5's OLDEST event
  FluxEvent out;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out.user, 9u);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out.user, 5u);
  EXPECT_EQ(out.node, 12u);  // the newer of user 5's events survived
  EXPECT_FALSE(q.try_pop(out));
  const QueueStats s = q.stats();
  EXPECT_EQ(s.pushed, 3u);
  EXPECT_EQ(s.evicted, 1u);
  EXPECT_EQ(s.popped, 2u);
  // Conservation: pushed == popped + dropped + evicted + size().
  EXPECT_EQ(s.pushed, s.popped + s.dropped + s.evicted + q.size());
}

TEST(EventQueue, EvictOneFreesASlotForABlockedProducer) {
  EventQueue q(1, QueuePolicy::kBlock);
  ASSERT_TRUE(q.push({0.0, 4, 0, 0, 1.0}));
  std::atomic<bool> second_done{false};
  // fluxfp-lint: allow(no-raw-thread) -- a parked producer observing the
  // slot evict_one() frees is the contract under test.
  std::thread producer([&] {
    q.push({1.0, 6, 0, 1, 1.0});
    second_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_done.load());
  EXPECT_TRUE(q.evict_one(4));  // displacement frees the slot
  producer.join();
  EXPECT_TRUE(second_done.load());
  FluxEvent out;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out.user, 6u);
}

TEST(EventQueue, MultipleProducersLoseNothingUnderBlock) {
  EventQueue q(4, QueuePolicy::kBlock);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  // fluxfp-lint: allow(no-raw-thread) -- multi-producer contention test;
  // the queue's own contract is the thing under test.
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(ev(i, static_cast<std::uint32_t>(p * kPerProducer + i)));
      }
    });
  }
  // fluxfp-lint: allow(no-raw-thread) -- closes the queue only after every
  // producer exits; raw join ordering is the scenario itself.
  std::thread closer([&] {
    for (auto& t : producers) {
      t.join();
    }
    q.close();
  });
  std::vector<bool> seen(kProducers * kPerProducer, false);
  FluxEvent out;
  std::size_t total = 0;
  while (q.pop(out)) {
    EXPECT_FALSE(seen[out.node]);
    seen[out.node] = true;
    ++total;
  }
  closer.join();
  EXPECT_EQ(total, static_cast<std::size_t>(kProducers * kPerProducer));
}

}  // namespace
}  // namespace fluxfp::stream
