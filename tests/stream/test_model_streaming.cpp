// The streaming path over every observation model: events keyed by site
// index fold through the model-generic StreamTracker, and the per-session
// results are bit-identical at 1 and 4 manager workers — the same
// contract test_manager.cpp pins for flux, extended across backends.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "core/flux_model.hpp"
#include "core/observation_model.hpp"
#include "core/passive_trace_model.hpp"
#include "core/rss_link_model.hpp"
#include "geom/sampling.hpp"
#include "stream/manager.hpp"
#include "stream/stream_tracker.hpp"

namespace fluxfp::stream {
namespace {

/// A deployment of one backend: sites per the model's geometry, event
/// streams generated straight from site_shape for a drifting truth.
struct ModelBed {
  geom::RectField field{20.0, 20.0};
  std::shared_ptr<const core::ObservationModel> model;
  std::vector<core::Site> sites;
  std::vector<std::size_t> keys;  // FluxEvent::node value of site i

  ModelBed(const core::ObservationModel& m, std::uint64_t seed,
           std::size_t n = 12)
      : model(m.clone()) {
    geom::Rng rng(seed);
    std::uniform_real_distribution<double> angle(0.0, 6.283185307179586);
    for (std::size_t i = 0; i < n; ++i) {
      const geom::Vec2 a = geom::uniform_in_field(field, rng);
      geom::Vec2 b = a;
      if (m.sites_are_links()) {
        const double t = angle(rng);
        b = field.clamp({a.x + 2.0 * std::cos(t), a.y + 2.0 * std::sin(t)});
      }
      sites.push_back(core::Site{a, b});
      keys.push_back(i);
    }
  }

  StreamTracker tracker(std::uint64_t seed) const {
    StreamTrackerConfig cfg;
    cfg.smc.num_predictions = 30;
    cfg.smc.num_keep = 4;
    cfg.expected_readings = sites.size();
    return StreamTracker(*model, field, keys, sites, 1, cfg, seed);
  }

  /// `rounds` epochs of one user walking a diagonal: every site reports
  /// once per epoch, in site order within the epoch.
  std::vector<FluxEvent> session_events(std::uint32_t user,
                                        int rounds) const {
    std::vector<FluxEvent> events;
    for (int e = 0; e < rounds; ++e) {
      const double t0 =
          static_cast<double>(e) + 0.17 * static_cast<double>(user);
      const geom::Vec2 truth{2.0 + 1.5 * e + 0.3 * user,
                             3.0 + 1.2 * e - 0.2 * user};
      const geom::Vec2 p = field.clamp(truth);
      for (std::size_t i = 0; i < sites.size(); ++i) {
        const double reading = 2.0 * model->site_shape(p, sites[i]);
        events.push_back({t0 + 0.001 * static_cast<double>(i), user,
                          static_cast<std::uint32_t>(e),
                          static_cast<std::uint32_t>(keys[i]), reading});
      }
    }
    return events;
  }
};

using Fired =
    std::vector<std::vector<std::tuple<std::uint32_t, double, double>>>;

Fired run_manager(const ModelBed& bed, std::size_t num_sessions,
                  std::size_t workers) {
  ManagerConfig mc;
  mc.workers = workers;
  TrackerManager m(mc);
  for (std::uint32_t u = 0; u < num_sessions; ++u) {
    m.add_session(u, bed.tracker(1000 + u));
  }
  m.start();
  for (std::uint32_t u = 0; u < num_sessions; ++u) {
    for (const FluxEvent& e : bed.session_events(u, 8)) {
      m.push(e);
    }
  }
  m.finish();
  Fired fired(num_sessions);
  for (std::uint32_t u = 0; u < num_sessions; ++u) {
    for (const EpochResult& r : m.results(u)) {
      fired[u].emplace_back(r.epoch, r.estimates[0].x, r.estimates[0].y);
    }
  }
  return fired;
}

void expect_worker_count_invariant(const core::ObservationModel& model) {
  const ModelBed bed(model, 99);
  const Fired one = run_manager(bed, 3, 1);
  const Fired four = run_manager(bed, 3, 4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t u = 0; u < one.size(); ++u) {
    ASSERT_FALSE(one[u].empty()) << "session " << u << " fired nothing";
    EXPECT_EQ(one[u], four[u])
        << core::model_name(model.id()) << " session " << u;
  }
}

TEST(ModelStreaming, FluxWorkerCountInvariant) {
  const geom::RectField field(20.0, 20.0);
  expect_worker_count_invariant(core::FluxModel(field, 1.0));
}

TEST(ModelStreaming, RssLinkWorkerCountInvariant) {
  expect_worker_count_invariant(core::RssLinkModel(4.0, 0.05));
}

TEST(ModelStreaming, PassiveTraceWorkerCountInvariant) {
  expect_worker_count_invariant(core::PassiveTraceModel(6.0));
}

// Equal-timestamp duplicate readings for one (epoch, site) slot: the
// LAST-pushed report wins deterministically, and the outcome is
// bit-identical at 1 vs 4 workers — under kBlock each session's events
// fold in push order on its single assigned worker, so worker count can
// never become a hidden tie-break.
TEST(ModelStreaming, EqualTimestampDuplicatesFoldIdenticallyAcrossWorkers) {
  const core::RssLinkModel model(4.0, 0.05);
  const ModelBed bed(model, 42);

  std::vector<FluxEvent> events = bed.session_events(0, 6);
  // Re-report site 3 of every epoch at the SAME timestamp as the original
  // event, with a different value. Insert adjacent to the original so both
  // orderings are covered across epochs.
  std::vector<FluxEvent> with_dups;
  for (const FluxEvent& e : events) {
    FluxEvent dup = e;
    if (e.node == 3) {
      dup.reading = e.reading * 3.0;
      if (e.epoch % 2 == 0) {
        with_dups.push_back(e);
        with_dups.push_back(dup);  // duplicate last: 3x value wins
      } else {
        with_dups.push_back(dup);
        with_dups.push_back(e);  // original last: true value wins
      }
    } else {
      with_dups.push_back(e);
    }
  }

  const auto run = [&](std::size_t workers) {
    ManagerConfig mc;
    mc.workers = workers;
    TrackerManager m(mc);
    m.add_session(0, bed.tracker(1000));
    m.start();
    for (const FluxEvent& e : with_dups) {
      m.push(e);
    }
    m.finish();
    std::vector<std::tuple<std::uint32_t, double, double>> fired;
    for (const EpochResult& r : m.results(0)) {
      fired.emplace_back(r.epoch, r.estimates[0].x, r.estimates[0].y);
    }
    EXPECT_EQ(m.session(0).stats().duplicates, 6u);
    return fired;
  };
  const auto one = run(1);
  const auto four = run(4);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, four);
}

TEST(ModelStreaming, GenericCtorValidatesShapes) {
  const core::PassiveTraceModel model(6.0);
  const ModelBed bed(model, 5);
  StreamTrackerConfig cfg;
  cfg.smc.num_predictions = 10;
  cfg.smc.num_keep = 2;
  // keys/sites length mismatch must be refused.
  std::vector<std::size_t> short_keys(bed.keys.begin(), bed.keys.end() - 1);
  EXPECT_THROW(StreamTracker(model, bed.field, short_keys, bed.sites, 1, cfg,
                             1),
               std::invalid_argument);
  EXPECT_THROW(StreamTracker(model, bed.field, {}, {}, 1, cfg, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace fluxfp::stream
