#include "stream/supervisor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "net/deployment.hpp"
#include "sim/faults.hpp"
#include "sim/scenario.hpp"
#include "stream/emit.hpp"

namespace fluxfp::stream {
namespace {

/// Same small deployment as the manager tests.
struct Bed {
  geom::RectField field{20.0, 20.0};
  net::UnitDiskGraph graph;
  core::FluxModel model;
  std::vector<std::size_t> sniffers;

  Bed() : graph(make_graph()), model(field, 1.0) {
    for (std::size_t i = 0; i < graph.size(); i += 7) {
      sniffers.push_back(i);
    }
  }

  static net::UnitDiskGraph make_graph() {
    geom::Rng rng(99);
    const geom::RectField f(20.0, 20.0);
    return net::UnitDiskGraph(net::perturbed_grid(f, 8, 8, 0.3, rng), 4.0);
  }

  StreamTracker tracker(std::uint64_t seed) const {
    StreamTrackerConfig cfg;
    cfg.smc.num_predictions = 30;
    cfg.smc.num_keep = 4;
    cfg.expected_readings = sniffers.size();
    return StreamTracker(model, graph, sniffers, 1, cfg, seed);
  }

  std::vector<FluxEvent> session_events(std::uint32_t user, int rounds,
                                        std::uint64_t seed) const {
    geom::Rng rng(seed);
    sim::SimUser su;
    su.mobility = std::make_shared<sim::RandomWaypointMobility>(
        field, 0.8, static_cast<double>(rounds) + 1.0, rng);
    sim::ScenarioConfig cfg;
    cfg.rounds = rounds;
    cfg.start_time = 0.17 * static_cast<double>(user);
    const auto obs = sim::run_scenario(graph, {su}, cfg, rng);
    return scenario_events(graph, obs, sniffers, user);
  }

  Supervisor::ManagerFactory factory(std::size_t num_sessions,
                                     std::size_t workers) const {
    return [this, num_sessions, workers] {
      ManagerConfig mc;
      mc.workers = workers;
      auto m = std::make_unique<TrackerManager>(mc);
      for (std::uint32_t u = 0; u < num_sessions; ++u) {
        m->add_session(u, tracker(1000 + u));
      }
      return m;
    };
  }

  std::vector<FluxEvent> merged_stream(std::size_t num_sessions, int rounds,
                                       std::uint64_t seed) const {
    std::vector<std::vector<FluxEvent>> streams;
    for (std::uint32_t u = 0; u < num_sessions; ++u) {
      streams.push_back(session_events(u, rounds, seed + u));
    }
    return merge_by_time(
        std::span<const std::vector<FluxEvent>>(streams));
  }
};

using Fired =
    std::vector<std::vector<std::tuple<std::uint32_t, double, double>>>;

Fired run_plain(const Bed& bed, std::size_t num_sessions,
                std::size_t workers, const std::vector<FluxEvent>& events) {
  auto m = bed.factory(num_sessions, workers)();
  m->start();
  for (const FluxEvent& e : events) {
    m->push(e);
  }
  m->finish();
  Fired fired(num_sessions);
  for (std::uint32_t u = 0; u < num_sessions; ++u) {
    for (const EpochResult& r : m->results(u)) {
      fired[u].emplace_back(r.epoch, r.estimates[0].x, r.estimates[0].y);
    }
  }
  return fired;
}

Fired collect(const Supervisor& sup, std::size_t num_sessions) {
  Fired fired(num_sessions);
  for (std::uint32_t u = 0; u < num_sessions; ++u) {
    for (const EpochResult& r : sup.results(u)) {
      fired[u].emplace_back(r.epoch, r.estimates[0].x, r.estimates[0].y);
    }
  }
  return fired;
}

TEST(Supervisor, ValidatesConstructionAndLifecycle) {
  EXPECT_THROW(Supervisor(nullptr, {}), std::invalid_argument);
  SupervisorConfig bad;
  bad.backoff_factor = 0.5;
  const Bed bed;
  EXPECT_THROW(Supervisor(bed.factory(1, 1), bad), std::invalid_argument);

  Supervisor null_factory([] { return std::unique_ptr<TrackerManager>(); },
                          {});
  EXPECT_THROW(null_factory.start(), std::invalid_argument);

  Supervisor sup(bed.factory(1, 1), {});
  EXPECT_EQ(sup.offer({0.0, 0, 0, 0, 1.0}), PushStatus::kClosed);
  sup.start();
  EXPECT_THROW(sup.start(), std::logic_error);
  EXPECT_EQ(sup.users().size(), 1u);
  EXPECT_FALSE(sup.checkpoint_image().empty());  // epoch-zero baseline
  sup.finish();
  EXPECT_EQ(sup.offer({0.0, 0, 0, 0, 1.0}), PushStatus::kClosed);
  EXPECT_THROW(sup.results(9), std::invalid_argument);
}

TEST(Supervisor, NoCrashesMatchesPlainRunExactly) {
  const Bed bed;
  constexpr std::size_t kSessions = 2;
  const std::vector<FluxEvent> events = bed.merged_stream(kSessions, 5, 31);
  const Fired plain = run_plain(bed, kSessions, 2, events);

  SupervisorConfig cfg;
  cfg.checkpoint_every_events = 16;
  Supervisor sup(bed.factory(kSessions, 2), cfg);
  sup.start();
  for (const FluxEvent& e : events) {
    EXPECT_EQ(sup.offer(e), PushStatus::kAccepted);
  }
  sup.finish();
  EXPECT_EQ(collect(sup, kSessions), plain);
  const SupervisorStats st = sup.stats();
  EXPECT_EQ(st.restarts, 0u);
  EXPECT_EQ(st.stalls_detected, 0u);
  EXPECT_GT(st.checkpoints, 2u);
  EXPECT_GT(st.checkpoint_bytes, kCheckpointHeaderBytes);
}

TEST(Supervisor, InjectedCrashesRestoreBitIdentically) {
  const Bed bed;
  constexpr std::size_t kSessions = 2;
  const std::vector<FluxEvent> events = bed.merged_stream(kSessions, 6, 57);
  ASSERT_GT(events.size(), 60u);
  const Fired plain = run_plain(bed, kSessions, 1, events);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    SupervisorConfig cfg;
    cfg.checkpoint_every_events = 8;
    cfg.backoff_base = 0.0;  // restart on the next offer
    Supervisor sup(bed.factory(kSessions, workers), cfg);
    sup.start();
    // Kill at arbitrary, awkward points: right after start, mid-window,
    // twice in a row between checkpoints.
    const std::size_t kills[] = {1, events.size() / 3,
                                 events.size() / 3 + 2,
                                 events.size() - 3};
    std::size_t next_kill = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (next_kill < 4 && i == kills[next_kill]) {
        sup.inject_crash();
        EXPECT_TRUE(sup.shard_down());
        ++next_kill;
      }
      EXPECT_EQ(sup.offer(events[i]), PushStatus::kAccepted);
    }
    sup.finish();
    EXPECT_EQ(collect(sup, kSessions), plain) << "workers " << workers;
    const SupervisorStats st = sup.stats();
    EXPECT_EQ(st.crashes_injected, 4u);
    EXPECT_EQ(st.restarts, 4u);
    EXPECT_GT(st.replayed_events, 0u);
  }
}

TEST(Supervisor, FaultPlanCrashEveryNEpochsSoak) {
  // The CI soak: a fault-injected stream (transport drops/dups/stragglers)
  // into a supervised service whose shard is killed every few epochs, with
  // real backoff so events are deferred and replayed. 2 sessions x 100
  // rounds = 200 epochs end to end; the committed results must still be
  // bit-identical to a run that never crashed.
  const Bed bed;
  constexpr std::size_t kSessions = 2;
  constexpr int kRounds = 100;
  std::vector<FluxEvent> events = bed.merged_stream(kSessions, kRounds, 55);

  sim::EventFaultPlan eplan;
  eplan.seed = 4;
  eplan.drop_prob = 0.05;
  eplan.dup_prob = 0.10;
  eplan.late_prob = 0.03;
  eplan.late_delay = 2.5;
  eplan.jitter = 0.3;
  events = sim::apply_event_faults(events, eplan);

  const Fired plain = run_plain(bed, kSessions, 2, events);

  SupervisorConfig cfg;
  cfg.checkpoint_every_events = 32;
  cfg.backoff_base = 0.4;  // virtual seconds: defers a few events per kill
  cfg.backoff_factor = 2.0;
  cfg.max_restarts = 3;
  cfg.fault.crash_every_epochs = 10;
  Supervisor sup(bed.factory(kSessions, 2), cfg);
  sup.start();
  for (const FluxEvent& e : events) {
    EXPECT_EQ(sup.offer(e), PushStatus::kAccepted);
  }
  sup.finish();
  EXPECT_FALSE(sup.failed());

  EXPECT_EQ(collect(sup, kSessions), plain);
  const SupervisorStats st = sup.stats();
  EXPECT_GT(st.crashes_injected, 10u);  // ~200 epochs / every 10
  EXPECT_EQ(st.restarts, st.crashes_injected);
  EXPECT_GT(st.events_deferred, 0u);   // backoff deferred live traffic
  EXPECT_GT(st.replayed_events, 0u);
  EXPECT_EQ(st.sessions_shed, 0u);
  std::uint64_t epochs = 0;
  for (std::uint32_t u = 0; u < kSessions; ++u) {
    epochs += sup.manager()->session(u).stats().epochs_fired;
    for (const EpochResult& r : sup.results(u)) {
      EXPECT_TRUE(std::isfinite(r.estimates[0].x));
      EXPECT_TRUE(std::isfinite(r.estimates[0].y));
    }
  }
  EXPECT_EQ(epochs, static_cast<std::uint64_t>(kSessions * kRounds));
}

TEST(Supervisor, HealthProbeForcesRestartFromLastGoodImage) {
  const Bed bed;
  const std::vector<FluxEvent> events = bed.merged_stream(1, 5, 13);
  const Fired plain = run_plain(bed, 1, 1, events);

  int probes = 0;
  SupervisorConfig cfg;
  cfg.checkpoint_every_events = 8;
  cfg.backoff_base = 0.0;
  cfg.health_probe = [&probes](const TrackerManager&) {
    // Declare the shard diverged at the third supervision boundary.
    return ++probes != 3;
  };
  Supervisor sup(bed.factory(1, 1), cfg);
  sup.start();
  for (const FluxEvent& e : events) {
    sup.offer(e);
  }
  sup.finish();
  const SupervisorStats st = sup.stats();
  EXPECT_EQ(st.stalls_detected, 1u);
  EXPECT_EQ(st.restarts, 1u);
  EXPECT_FALSE(sup.failed());
  // Recovery is exact even for a probe-triggered restart.
  EXPECT_EQ(collect(sup, 1), plain);
}

TEST(Supervisor, GivesUpAfterMaxRestartsAndShedsSessions) {
  const Bed bed;
  const std::vector<FluxEvent> events = bed.merged_stream(2, 6, 17);

  SupervisorConfig cfg;
  cfg.checkpoint_every_events = 4;
  cfg.backoff_base = 0.0;
  cfg.max_restarts = 2;
  cfg.health_probe = [](const TrackerManager&) { return false; };
  Supervisor sup(bed.factory(2, 1), cfg);
  sup.start();
  bool saw_closed = false;
  for (const FluxEvent& e : events) {
    if (sup.offer(e) == PushStatus::kClosed) {
      saw_closed = true;
      break;
    }
  }
  EXPECT_TRUE(saw_closed);
  EXPECT_TRUE(sup.failed());
  const SupervisorStats st = sup.stats();
  EXPECT_EQ(st.sessions_shed, 2u);
  // Failed supervisors keep the committed prefix readable.
  sup.finish();
  EXPECT_NO_THROW(sup.results(0));
}

TEST(Supervisor, DownShardRejectsUnknownUsersWhileDeferring) {
  const Bed bed;
  const std::vector<FluxEvent> events = bed.merged_stream(1, 4, 23);
  SupervisorConfig cfg;
  cfg.checkpoint_every_events = 0;  // only the baseline image
  cfg.backoff_base = 1e6;           // stays down for the whole test
  Supervisor sup(bed.factory(1, 1), cfg);
  sup.start();
  sup.offer(events[0]);
  sup.inject_crash();
  ASSERT_TRUE(sup.shard_down());
  EXPECT_EQ(sup.offer({events[1].time, 42, 0, 0, 1.0}),
            PushStatus::kUnknownUser);
  EXPECT_EQ(sup.offer(events[1]), PushStatus::kAccepted);  // deferred
  EXPECT_EQ(sup.stats().events_deferred, 1u);
  // finish() ignores the backoff clock and drains everything.
  sup.finish();
  EXPECT_FALSE(sup.failed());
  EXPECT_EQ(sup.stats().restarts, 1u);
  EXPECT_EQ(sup.stats().replayed_events, 2u);
}

TEST(Supervisor, HeartbeatHasNoFalsePositivesOnAHealthyShard) {
  const Bed bed;
  const std::vector<FluxEvent> events = bed.merged_stream(2, 5, 41);
  SupervisorConfig cfg;
  cfg.checkpoint_every_events = 16;
  // Max-speed replay makes virtual time outrun the workers by design, so
  // a replay-safe deadline must exceed the stream's whole span (see the
  // heartbeat_deadline docs); a healthy shard must never trip it.
  cfg.heartbeat_deadline = 100.0;
  Supervisor sup(bed.factory(2, 2), cfg);
  sup.start();
  for (const FluxEvent& e : events) {
    EXPECT_EQ(sup.offer(e), PushStatus::kAccepted);
  }
  sup.finish();
  EXPECT_EQ(sup.stats().stalls_detected, 0u);
  EXPECT_EQ(sup.stats().restarts, 0u);
}

}  // namespace
}  // namespace fluxfp::stream
