#include "stream/manager.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "net/deployment.hpp"
#include "sim/faults.hpp"
#include "sim/scenario.hpp"
#include "stream/emit.hpp"
#include "stream/trace_io.hpp"

#if defined(FLUXFP_OBS_ENABLED)
#include "obs/obs.hpp"
#endif

namespace fluxfp::stream {
namespace {

/// Small shared deployment: an 8x8 perturbed grid with every 7th node
/// sniffed, and cheap SMC settings, so manager tests stay fast.
struct Bed {
  geom::RectField field{20.0, 20.0};
  net::UnitDiskGraph graph;
  core::FluxModel model;
  std::vector<std::size_t> sniffers;

  Bed() : graph(make_graph()), model(field, 1.0) {
    for (std::size_t i = 0; i < graph.size(); i += 7) {
      sniffers.push_back(i);
    }
  }

  static net::UnitDiskGraph make_graph() {
    geom::Rng rng(99);
    const geom::RectField f(20.0, 20.0);
    return net::UnitDiskGraph(net::perturbed_grid(f, 8, 8, 0.3, rng), 4.0);
  }

  StreamTracker tracker(std::uint64_t seed) const {
    StreamTrackerConfig cfg;
    cfg.smc.num_predictions = 30;
    cfg.smc.num_keep = 4;
    cfg.expected_readings = sniffers.size();
    return StreamTracker(model, graph, sniffers, 1, cfg, seed);
  }

  std::vector<FluxEvent> session_events(std::uint32_t user, int rounds,
                                        std::uint64_t seed) const {
    geom::Rng rng(seed);
    sim::SimUser su;
    su.mobility = std::make_shared<sim::RandomWaypointMobility>(
        field, 0.8, static_cast<double>(rounds) + 1.0, rng);
    sim::ScenarioConfig cfg;
    cfg.rounds = rounds;
    cfg.start_time = 0.17 * static_cast<double>(user);
    const auto obs = sim::run_scenario(graph, {su}, cfg, rng);
    return scenario_events(graph, obs, sniffers, user);
  }
};

/// Per-user fired (epoch, estimate) sequences — the bit-identity currency.
using Fired = std::vector<std::vector<std::tuple<std::uint32_t, double,
                                                 double>>>;

Fired run_manager(const Bed& bed, std::size_t num_sessions,
                  std::size_t workers,
                  const std::vector<FluxEvent>& events) {
  ManagerConfig mc;
  mc.workers = workers;
  TrackerManager m(mc);
  for (std::uint32_t u = 0; u < num_sessions; ++u) {
    m.add_session(u, bed.tracker(1000 + u));
  }
  m.start();
  for (const FluxEvent& e : events) {
    m.push(e);
  }
  m.finish();
  Fired fired(num_sessions);
  for (std::uint32_t u = 0; u < num_sessions; ++u) {
    for (const EpochResult& r : m.results(u)) {
      fired[u].emplace_back(r.epoch, r.estimates[0].x, r.estimates[0].y);
    }
  }
  return fired;
}

TEST(TrackerManager, ValidatesConfigAndLifecycle) {
  ManagerConfig bad;
  bad.workers = 0;
  EXPECT_THROW(TrackerManager m(bad), std::invalid_argument);
  bad = {};
  bad.queue_capacity = 0;
  EXPECT_THROW(TrackerManager m(bad), std::invalid_argument);

  const Bed bed;
  TrackerManager m({});
  EXPECT_THROW(m.start(), std::logic_error);  // no sessions
  m.add_session(3, bed.tracker(1));
  EXPECT_THROW(m.add_session(3, bed.tracker(2)), std::invalid_argument);
  EXPECT_FALSE(m.push({0.0, 3, 0, 0, 1.0}));  // not started yet
  m.start();
  EXPECT_THROW(m.start(), std::logic_error);
  EXPECT_THROW(m.add_session(4, bed.tracker(3)), std::logic_error);
  EXPECT_FALSE(m.push({0.0, 9, 0, 0, 1.0}));  // unknown user
  m.finish();
  EXPECT_FALSE(m.push({0.0, 3, 0, 0, 1.0}));  // shut down
  EXPECT_EQ(m.stats().unknown_user, 1u);
  EXPECT_THROW(m.results(9), std::invalid_argument);
}

TEST(TrackerManager, WorkerCountDoesNotChangeEstimates) {
  const Bed bed;
  constexpr std::size_t kSessions = 4;
  std::vector<std::vector<FluxEvent>> streams;
  for (std::uint32_t u = 0; u < kSessions; ++u) {
    streams.push_back(bed.session_events(u, 6, 77 + u));
  }
  const std::vector<FluxEvent> merged =
      merge_by_time(std::span<const std::vector<FluxEvent>>(streams));
  ASSERT_FALSE(merged.empty());

  const Fired one = run_manager(bed, kSessions, 1, merged);
  const Fired four = run_manager(bed, kSessions, 4, merged);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t u = 0; u < kSessions; ++u) {
    ASSERT_FALSE(one[u].empty());
    // Bit-identical per-session results at any worker count.
    EXPECT_EQ(one[u], four[u]) << "session " << u;
  }
}

TEST(TrackerManager, TraceReplayMatchesDirectPush) {
  const Bed bed;
  std::vector<std::vector<FluxEvent>> streams;
  for (std::uint32_t u = 0; u < 2; ++u) {
    streams.push_back(bed.session_events(u, 5, 31 + u));
  }
  const std::vector<FluxEvent> merged =
      merge_by_time(std::span<const std::vector<FluxEvent>>(streams));

  const Fired direct = run_manager(bed, 2, 2, merged);

  std::stringstream buffer;
  TraceRecorder rec(buffer);
  rec.write(std::span<const FluxEvent>(merged));
  ManagerConfig mc;
  mc.workers = 2;
  TrackerManager m(mc);
  for (std::uint32_t u = 0; u < 2; ++u) {
    m.add_session(u, bed.tracker(1000 + u));
  }
  m.start();
  TraceReplayer rep(buffer);
  EXPECT_EQ(replay_trace(rep, m), merged.size());
  m.finish();
  for (std::uint32_t u = 0; u < 2; ++u) {
    std::vector<std::tuple<std::uint32_t, double, double>> replayed;
    for (const EpochResult& r : m.results(u)) {
      replayed.emplace_back(r.epoch, r.estimates[0].x, r.estimates[0].y);
    }
    EXPECT_EQ(replayed, direct[u]) << "session " << u;
  }
}

TEST(TrackerManager, SurvivesFiftyFaultInjectedRounds) {
  const Bed bed;
  constexpr std::size_t kSessions = 2;
  constexpr int kRounds = 50;
  std::vector<std::vector<FluxEvent>> streams;
  for (std::uint32_t u = 0; u < kSessions; ++u) {
    streams.push_back(bed.session_events(u, kRounds, 55 + u));
  }
  const std::vector<FluxEvent> merged =
      merge_by_time(std::span<const std::vector<FluxEvent>>(streams));

  sim::EventFaultPlan plan;
  plan.seed = 4;
  plan.drop_prob = 0.05;
  plan.dup_prob = 0.10;
  plan.late_prob = 0.03;
  plan.late_delay = 2.5;
  plan.jitter = 0.3;
  const std::vector<FluxEvent> faulty =
      sim::apply_event_faults(merged, plan);

  ManagerConfig mc;
  mc.workers = 2;
  mc.queue_capacity = 32;
  TrackerManager m(mc);
  for (std::uint32_t u = 0; u < kSessions; ++u) {
    m.add_session(u, bed.tracker(1000 + u));
  }
  m.start();
  std::uint64_t accepted = 0;
  for (const FluxEvent& e : faulty) {
    accepted += m.push(e) ? 1 : 0;
  }
  m.finish();

  const ManagerStats stats = m.stats();
  // kBlock is lossless: everything accepted was processed.
  EXPECT_EQ(stats.events_routed, accepted);
  EXPECT_EQ(stats.events_processed, accepted);
  EXPECT_EQ(stats.events_dropped, 0u);
  EXPECT_GT(stats.epochs_fired, 0u);
  EXPECT_EQ(stats.filter_micros.size(), stats.epochs_fired);

  std::uint64_t duplicates = 0;
  std::uint64_t late = 0;
  for (std::uint32_t u = 0; u < kSessions; ++u) {
    const StreamStats& ss = m.session(u).stats();
    duplicates += ss.duplicates;
    late += ss.late;
    // Most windows made it through despite the fault storm.
    EXPECT_GT(ss.epochs_fired, static_cast<std::uint64_t>(kRounds / 2));
    for (const EpochResult& r : m.results(u)) {
      EXPECT_TRUE(std::isfinite(r.estimates[0].x));
      EXPECT_TRUE(std::isfinite(r.estimates[0].y));
    }
  }
  // The deterministic fault plan exercised both anomaly paths.
  EXPECT_GT(duplicates, 0u);
  EXPECT_GT(late, 0u);
}

/// A tracker whose every event completes a window and runs an SMC step:
/// folding is orders of magnitude slower than offering, so quota pressure
/// is sustained without sleeping in the producer.
StreamTracker slow_tracker(const Bed& bed, std::uint64_t seed,
                           std::size_t num_predictions = 30) {
  StreamTrackerConfig cfg;
  cfg.smc.num_predictions = num_predictions;
  cfg.smc.num_keep = 4;
  cfg.expected_readings = 1;
  return StreamTracker(bed.model, bed.graph, bed.sniffers, 1, cfg, seed);
}

FluxEvent epoch_event(std::uint32_t user, std::uint32_t epoch,
                      const Bed& bed) {
  return {static_cast<double>(epoch), user, epoch,
          static_cast<std::uint32_t>(bed.sniffers[0]), 1.0};
}

TEST(TrackerManager, UnknownUserAndShedCountersMatchReturnedStatuses) {
  const Bed bed;
  ManagerConfig mc;
  mc.workers = 1;
  mc.queue_capacity = 64;
  mc.tenant_quota = 1;
  mc.admission = AdmissionPolicy::kShedNewest;
  TrackerManager m(mc);
  // ~tens of ms per fold: the first accepted event pins the quota for the
  // whole (microseconds-long) offer loop, so shedding is structural, not
  // a scheduling race.
  m.add_session(0, slow_tracker(bed, 1, 50000));
#if defined(FLUXFP_OBS_ENABLED)
  auto& reg = obs::MetricsRegistry::global();
  const std::uint64_t shed0 =
      reg.counter("fluxfp_stream_quota_shed_total", "",
                  obs::Determinism::kScheduling)
          .value();
  const std::uint64_t unknown0 =
      reg.counter("fluxfp_stream_unknown_user_total", "").value();
#endif
  m.start();
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  for (std::uint32_t e = 0; e < 40; ++e) {
    switch (m.offer(epoch_event(0, e, bed))) {
      case PushStatus::kAccepted:
        ++accepted;
        break;
      case PushStatus::kShedQuota:
        ++shed;
        break;
      default:
        FAIL() << "unexpected status at epoch " << e;
    }
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(m.offer(epoch_event(99, 0, bed)), PushStatus::kUnknownUser);
  }
  m.finish();

  const ManagerStats stats = m.stats();
  // The counters ARE the returned statuses — no private second ledger.
  EXPECT_EQ(stats.events_routed, accepted);
  EXPECT_EQ(stats.events_shed, shed);
  EXPECT_EQ(stats.unknown_user, 3u);
  // Quota 1 against a flood: the policy must actually have shed, and
  // everything admitted was folded (kShedNewest loses only at admission).
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(stats.events_processed, stats.events_routed);
  EXPECT_EQ(stats.events_dropped, 0u);
  EXPECT_EQ(stats.events_evicted, 0u);
#if defined(FLUXFP_OBS_ENABLED)
  // The obs mirrors moved in lockstep with the statuses offer() returned.
  EXPECT_EQ(reg.counter("fluxfp_stream_quota_shed_total", "",
                        obs::Determinism::kScheduling)
                    .value() -
                shed0,
            shed);
  EXPECT_EQ(
      reg.counter("fluxfp_stream_unknown_user_total", "").value() - unknown0,
      3u);
#endif
}

TEST(TrackerManager, ShedLowestPriorityDisplacesForTheImportantSession) {
  const Bed bed;
  ManagerConfig mc;
  mc.workers = 1;
  mc.queue_capacity = 64;
  mc.tenant_quota = 2;
  mc.admission = AdmissionPolicy::kShedLowestPriority;
  TrackerManager m(mc);
  SessionOptions low;
  low.tenant = 7;
  low.priority = 0;
  SessionOptions high;
  high.tenant = 7;
  high.priority = 9;
  m.add_session(0, slow_tracker(bed, 1, 50000), low);
  m.add_session(1, slow_tracker(bed, 2, 50000), high);
#if defined(FLUXFP_OBS_ENABLED)
  auto& reg = obs::MetricsRegistry::global();
  const std::uint64_t shed0 =
      reg.counter("fluxfp_stream_quota_shed_total", "",
                  obs::Determinism::kScheduling)
          .value();
  const std::uint64_t evicted0 =
      reg.counter("fluxfp_stream_quota_evicted_total", "",
                  obs::Determinism::kScheduling)
          .value();
#endif
  m.start();
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  const auto offer_counted = [&](const FluxEvent& e) {
    switch (m.offer(e)) {
      case PushStatus::kAccepted:
        ++accepted;
        break;
      case PushStatus::kShedQuota:
        ++shed;
        break;
      default:
        FAIL() << "unexpected admission status";
    }
  };
  // A low-priority flood first (equal rank cannot displace itself), then
  // the high-priority session arrives and must displace queued low work.
  for (std::uint32_t e = 0; e < 20; ++e) {
    offer_counted(epoch_event(0, e, bed));
  }
  for (std::uint32_t e = 0; e < 20; ++e) {
    offer_counted(epoch_event(1, e, bed));
  }
  m.finish();

  const ManagerStats stats = m.stats();
  EXPECT_EQ(stats.events_routed, accepted);
  EXPECT_EQ(stats.events_shed, shed);
  EXPECT_GT(shed, 0u);             // the flood exceeded the quota
  EXPECT_GT(stats.events_evicted, 0u);  // and the VIP displaced queued work
  // Conservation: every routed event was folded or displaced — a
  // displaced event leaves the quota ledger AND the queue accounting.
  EXPECT_EQ(stats.events_processed + stats.events_evicted,
            stats.events_routed);
  EXPECT_EQ(stats.events_dropped, 0u);
#if defined(FLUXFP_OBS_ENABLED)
  EXPECT_EQ(reg.counter("fluxfp_stream_quota_shed_total", "",
                        obs::Determinism::kScheduling)
                    .value() -
                shed0,
            stats.events_shed);
  EXPECT_EQ(reg.counter("fluxfp_stream_quota_evicted_total", "",
                        obs::Determinism::kScheduling)
                    .value() -
                evicted0,
            stats.events_evicted);
#endif
}

TEST(TrackerManager, BlockQuotaProducerIsWokenByFinish) {
  const Bed bed;
  ManagerConfig mc;
  mc.workers = 1;
  mc.queue_capacity = 64;
  mc.tenant_quota = 2;
  mc.admission = AdmissionPolicy::kBlock;
  TrackerManager m(mc);
  // Heavy SMC settings: one fold takes hundreds of milliseconds, so the
  // quota stays saturated across the whole handshake below.
  m.add_session(0, slow_tracker(bed, 1, 500000));
  m.start();
  ASSERT_EQ(m.offer(epoch_event(0, 0, bed)), PushStatus::kAccepted);
  ASSERT_EQ(m.offer(epoch_event(0, 1, bed)), PushStatus::kAccepted);
  std::atomic<bool> offer_returned{false};
  std::atomic<PushStatus> offer_status{PushStatus::kAccepted};
  // fluxfp-lint: allow(no-raw-thread) -- must park a producer inside a
  // quota-blocked offer() and watch finish() release it from outside.
  std::thread producer([&] {
    offer_status.store(m.offer(epoch_event(0, 2, bed)));
    offer_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(offer_returned.load());  // quota held the producer
  m.finish();  // must wake the parked producer, not wait for it
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!offer_returned.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(offer_returned.load());
  producer.join();
  EXPECT_EQ(offer_status.load(), PushStatus::kClosed);
  // The two admitted events were still folded on the way out.
  EXPECT_EQ(m.stats().events_processed, 2u);
}

TEST(TrackerManager, DropOldestKeepsConservation) {
  const Bed bed;
  const std::vector<FluxEvent> events = bed.session_events(0, 8, 13);
  ManagerConfig mc;
  mc.workers = 1;
  mc.queue_capacity = 2;
  mc.policy = QueuePolicy::kDropOldest;
  TrackerManager m(mc);
  m.add_session(0, bed.tracker(5));
  m.start();
  std::uint64_t accepted = 0;
  for (const FluxEvent& e : events) {
    accepted += m.push(e) ? 1 : 0;
  }
  m.finish();
  const ManagerStats stats = m.stats();
  EXPECT_EQ(stats.events_routed, accepted);
  EXPECT_EQ(stats.events_processed + stats.events_dropped,
            stats.events_routed);
}

}  // namespace
}  // namespace fluxfp::stream
