#include "stream/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "net/deployment.hpp"
#include "net/flux.hpp"
#include "sim/scenario.hpp"
#include "stream/emit.hpp"
#include "stream/manager.hpp"

namespace fluxfp::stream {
namespace {

/// Same small deployment as the manager tests: an 8x8 perturbed grid with
/// every 7th node sniffed and cheap SMC settings.
struct Bed {
  geom::RectField field{20.0, 20.0};
  net::UnitDiskGraph graph;
  core::FluxModel model;
  std::vector<std::size_t> sniffers;

  Bed() : graph(make_graph()), model(field, 1.0) {
    for (std::size_t i = 0; i < graph.size(); i += 7) {
      sniffers.push_back(i);
    }
  }

  static net::UnitDiskGraph make_graph() {
    geom::Rng rng(99);
    const geom::RectField f(20.0, 20.0);
    return net::UnitDiskGraph(net::perturbed_grid(f, 8, 8, 0.3, rng), 4.0);
  }

  StreamTracker tracker(std::uint64_t seed) const {
    StreamTrackerConfig cfg;
    cfg.smc.num_predictions = 30;
    cfg.smc.num_keep = 4;
    cfg.expected_readings = sniffers.size();
    return StreamTracker(model, graph, sniffers, 1, cfg, seed);
  }

  std::vector<FluxEvent> session_events(std::uint32_t user, int rounds,
                                        std::uint64_t seed) const {
    geom::Rng rng(seed);
    sim::SimUser su;
    su.mobility = std::make_shared<sim::RandomWaypointMobility>(
        field, 0.8, static_cast<double>(rounds) + 1.0, rng);
    sim::ScenarioConfig cfg;
    cfg.rounds = rounds;
    cfg.start_time = 0.17 * static_cast<double>(user);
    const auto obs = sim::run_scenario(graph, {su}, cfg, rng);
    return scenario_events(graph, obs, sniffers, user);
  }
};

using Fired =
    std::vector<std::vector<std::tuple<std::uint32_t, double, double>>>;

std::unique_ptr<TrackerManager> make_manager(const Bed& bed,
                                             std::size_t num_sessions,
                                             std::size_t workers) {
  ManagerConfig mc;
  mc.workers = workers;
  auto m = std::make_unique<TrackerManager>(mc);
  for (std::uint32_t u = 0; u < num_sessions; ++u) {
    m->add_session(u, bed.tracker(1000 + u));
  }
  return m;
}

Fired collect(const TrackerManager& m, std::size_t num_sessions) {
  Fired fired(num_sessions);
  for (std::uint32_t u = 0; u < num_sessions; ++u) {
    for (const EpochResult& r : m.results(u)) {
      fired[u].emplace_back(r.epoch, r.estimates[0].x, r.estimates[0].y);
    }
  }
  return fired;
}

Fired run_uninterrupted(const Bed& bed, std::size_t num_sessions,
                        std::size_t workers,
                        const std::vector<FluxEvent>& events) {
  auto m = make_manager(bed, num_sessions, workers);
  m->start();
  for (const FluxEvent& e : events) {
    m->push(e);
  }
  m->finish();
  return collect(*m, num_sessions);
}

/// Round-trips a checkpoint through encoded FLUXFPC1 bytes.
ManagerCheckpoint through_bytes(const ManagerCheckpoint& cp) {
  std::stringstream buffer;
  const std::uint64_t bytes = write_checkpoint(buffer, cp);
  EXPECT_GE(bytes, kCheckpointHeaderBytes);
  ManagerCheckpoint out;
  const auto err = read_checkpoint(buffer, out);
  EXPECT_FALSE(err.has_value()) << (err ? err->to_string() : "");
  return out;
}

/// A valid encoded image to corrupt.
std::string valid_image(const Bed& bed) {
  auto m = make_manager(bed, 2, 1);
  m->start();
  for (const FluxEvent& e : bed.session_events(0, 3, 7)) {
    m->push(e);
  }
  const ManagerCheckpoint cp = m->checkpoint();
  m->finish();
  std::stringstream buffer;
  write_checkpoint(buffer, cp);
  return buffer.str();
}

std::optional<CheckpointError> decode(const std::string& image) {
  std::istringstream is(image);
  ManagerCheckpoint out;
  return read_checkpoint(is, out);
}

TEST(Checkpoint, RoundTripPreservesEveryFieldNaNExactly) {
  const Bed bed;
  auto m = make_manager(bed, 2, 2);
  m->start();
  // Stop mid-stream so open windows (with missing = NaN slots) exist.
  const std::vector<FluxEvent> events = bed.session_events(0, 4, 11);
  for (std::size_t i = 0; i + 3 < events.size(); ++i) {
    m->push(events[i]);
  }
  const ManagerCheckpoint cp = m->checkpoint();
  m->finish();

  const ManagerCheckpoint rt = through_bytes(cp);
  EXPECT_EQ(rt.workers, cp.workers);
  ASSERT_EQ(rt.sessions.size(), cp.sessions.size());
  for (std::size_t s = 0; s < cp.sessions.size(); ++s) {
    const SessionCheckpoint& a = cp.sessions[s];
    const SessionCheckpoint& b = rt.sessions[s];
    EXPECT_EQ(b.user, a.user);
    EXPECT_EQ(b.num_users, a.num_users);
    EXPECT_EQ(b.sniffer_nodes, a.sniffer_nodes);
    EXPECT_EQ(b.state.rng, a.state.rng);
    EXPECT_EQ(b.state.now, a.state.now);
    EXPECT_EQ(b.state.last_step_time, a.state.last_step_time);
    EXPECT_EQ(b.state.fired_any, a.state.fired_any);
    EXPECT_EQ(b.state.last_fired_epoch, a.state.last_fired_epoch);
    EXPECT_EQ(b.state.stats.events, a.state.stats.events);
    EXPECT_EQ(b.state.stats.epochs_fired, a.state.stats.epochs_fired);
    EXPECT_EQ(b.state.stats.filter_micros, a.state.stats.filter_micros);
    ASSERT_EQ(b.state.smc.users.size(), a.state.smc.users.size());
    for (std::size_t u = 0; u < a.state.smc.users.size(); ++u) {
      ASSERT_EQ(b.state.smc.users[u].particles.size(),
                a.state.smc.users[u].particles.size());
      for (std::size_t p = 0; p < a.state.smc.users[u].particles.size();
           ++p) {
        EXPECT_EQ(b.state.smc.users[u].particles[p].position.x,
                  a.state.smc.users[u].particles[p].position.x);
        EXPECT_EQ(b.state.smc.users[u].particles[p].weight,
                  a.state.smc.users[u].particles[p].weight);
      }
    }
    ASSERT_EQ(b.state.open.size(), a.state.open.size());
    for (std::size_t w = 0; w < a.state.open.size(); ++w) {
      const WindowState& wa = a.state.open[w];
      const WindowState& wb = b.state.open[w];
      EXPECT_EQ(wb.epoch, wa.epoch);
      EXPECT_EQ(wb.seen, wa.seen);
      ASSERT_EQ(wb.readings.size(), wa.readings.size());
      for (std::size_t r = 0; r < wa.readings.size(); ++r) {
        // BIT-exact f64 round-trip, including NaN payloads of missing
        // slots (operator== would reject NaN == NaN).
        std::uint64_t bits_a = 0;
        std::uint64_t bits_b = 0;
        std::memcpy(&bits_a, &wa.readings[r], 8);
        std::memcpy(&bits_b, &wb.readings[r], 8);
        EXPECT_EQ(bits_b, bits_a);
        if (!wa.seen[r]) {
          EXPECT_TRUE(std::isnan(wa.readings[r]));
        }
      }
    }
  }
}

TEST(Checkpoint, KillAtArbitraryEventRestoreIsBitIdentical) {
  const Bed bed;
  constexpr std::size_t kSessions = 3;
  std::vector<std::vector<FluxEvent>> streams;
  for (std::uint32_t u = 0; u < kSessions; ++u) {
    streams.push_back(bed.session_events(u, 6, 77 + u));
  }
  const std::vector<FluxEvent> merged =
      merge_by_time(std::span<const std::vector<FluxEvent>>(streams));
  ASSERT_GT(merged.size(), 40u);

  const Fired baseline = run_uninterrupted(bed, kSessions, 1, merged);

  // Kill the service at arbitrary event cuts — early, mid-window, late —
  // and restore THROUGH THE SERIALIZED BYTES under 1 and 4 workers. The
  // combined results must be bit-identical to the uninterrupted run.
  const std::size_t cuts[] = {1, merged.size() / 3, merged.size() / 2,
                              merged.size() - 2};
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t cut : cuts) {
      auto first = make_manager(bed, kSessions, workers);
      first->start();
      for (std::size_t i = 0; i < cut; ++i) {
        first->push(merged[i]);
      }
      const ManagerCheckpoint cp = first->checkpoint();
      const Fired committed = collect(*first, kSessions);
      first.reset();  // the kill: everything in memory is gone

      auto second = make_manager(bed, kSessions, workers);
      second->restore(through_bytes(cp));
      second->start();
      for (std::size_t i = cut; i < merged.size(); ++i) {
        second->push(merged[i]);
      }
      second->finish();
      const Fired resumed = collect(*second, kSessions);

      for (std::size_t u = 0; u < kSessions; ++u) {
        Fired::value_type combined = committed[u];
        combined.insert(combined.end(), resumed[u].begin(),
                        resumed[u].end());
        EXPECT_EQ(combined, baseline[u])
            << "session " << u << " cut " << cut << " workers " << workers;
      }
    }
  }
}

TEST(Checkpoint, RestoreValidatesDeploymentAndLifecycle) {
  const Bed bed;
  auto m = make_manager(bed, 2, 1);
  m->start();
  for (const FluxEvent& e : bed.session_events(0, 3, 5)) {
    m->push(e);
  }
  const ManagerCheckpoint cp = m->checkpoint();
  m->finish();

  // Restore after start() is a lifecycle error.
  auto running = make_manager(bed, 2, 1);
  running->start();
  EXPECT_THROW(running->restore(cp), std::logic_error);
  running->finish();

  // Session-count mismatch.
  auto fewer = make_manager(bed, 1, 1);
  EXPECT_THROW(fewer->restore(cp), std::invalid_argument);

  // Unknown user in the image.
  ManagerCheckpoint renamed = cp;
  renamed.sessions[0].user = 99;
  auto fresh = make_manager(bed, 2, 1);
  EXPECT_THROW(fresh->restore(renamed), std::invalid_argument);

  // A checkpoint taken against a different sniffer deployment.
  ManagerCheckpoint reshaped = cp;
  reshaped.sessions[0].sniffer_nodes.push_back(1);
  EXPECT_THROW(fresh->restore(reshaped), std::invalid_argument);

  // Validation is all-or-nothing: the failed restores above must not have
  // half-applied, so a clean restore still works.
  fresh->restore(cp);
  fresh->start();
  fresh->finish();
}

TEST(Checkpoint, QuiesceWhileRunningRequiresBlockPolicy) {
  const Bed bed;
  ManagerConfig mc;
  mc.policy = QueuePolicy::kDropOldest;
  TrackerManager m(mc);
  m.add_session(0, bed.tracker(1));
  // Checkpoints before start and after finish are fine under any policy;
  // a running kDropOldest service has no reachable event boundary.
  const ManagerCheckpoint cold = m.checkpoint();
  EXPECT_EQ(cold.sessions.size(), 1u);
  m.start();
  EXPECT_THROW(m.checkpoint(), std::logic_error);
  EXPECT_THROW(m.quiesce(), std::logic_error);
  m.finish();
  const ManagerCheckpoint warm = m.checkpoint();
  EXPECT_EQ(warm.sessions.size(), 1u);
}

TEST(CheckpointError, TruncatedHeaderIsTyped) {
  const Bed bed;
  const std::string image = valid_image(bed);
  const auto err = decode(image.substr(0, 10));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, CheckpointError::Kind::kTruncatedHeader);
  EXPECT_EQ(err->offset, 10u);
  EXPECT_NE(err->to_string().find("offset 10"), std::string::npos);
}

TEST(CheckpointError, BadMagicIsTyped) {
  const Bed bed;
  std::string image = valid_image(bed);
  image[0] = 'X';
  const auto err = decode(image);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, CheckpointError::Kind::kBadMagic);
  EXPECT_EQ(err->offset, 0u);
}

TEST(CheckpointError, BadVersionIsTyped) {
  const Bed bed;
  std::string image = valid_image(bed);
  image[8] = 9;  // version word little end
  const auto err = decode(image);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, CheckpointError::Kind::kBadVersion);
  EXPECT_EQ(err->offset, 8u);
}

TEST(CheckpointError, TruncatedPayloadIsTyped) {
  const Bed bed;
  const std::string image = valid_image(bed);
  const auto err = decode(image.substr(0, image.size() - 7));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, CheckpointError::Kind::kTruncatedPayload);
}

TEST(CheckpointError, CorruptPayloadFailsTheCrc) {
  const Bed bed;
  std::string image = valid_image(bed);
  // Flip one payload bit; the CRC must catch it (torn write / bit rot).
  image[kCheckpointHeaderBytes + image.size() / 2] ^= 0x40;
  const auto err = decode(image);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, CheckpointError::Kind::kCrcMismatch);
  EXPECT_EQ(err->offset, 12u);
}

TEST(CheckpointError, HugePayloadLengthDoesNotAllocate) {
  // A corrupt header length must not make the reader allocate the claimed
  // size; it reads what exists and reports truncation.
  std::string image(kCheckpointHeaderBytes, '\0');
  std::memcpy(image.data(), kCheckpointMagic, 8);
  const std::uint32_t version = kCheckpointVersion;
  std::memcpy(image.data() + 8, &version, 4);
  const std::uint64_t huge = ~std::uint64_t{0} / 2;
  std::memcpy(image.data() + 16, &huge, 8);
  const auto err = decode(image);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, CheckpointError::Kind::kTruncatedPayload);
}

TEST(CheckpointError, UnopenableFileIsBadStream) {
  ManagerCheckpoint out;
  const auto err =
      read_checkpoint_file("/nonexistent/dir/fluxfp.ckpt", out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, CheckpointError::Kind::kBadStream);
}

TEST(Checkpoint, FileRoundTripViaTempDir) {
  const Bed bed;
  auto m = make_manager(bed, 2, 1);
  m->start();
  for (const FluxEvent& e : bed.session_events(1, 3, 9)) {
    m->push(e);
  }
  const ManagerCheckpoint cp = m->checkpoint();
  m->finish();
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string path = ::testing::TempDir() + info->name() + ".ckpt";
  const std::uint64_t bytes = write_checkpoint_file(path, cp);
  EXPECT_GT(bytes, kCheckpointHeaderBytes);
  ManagerCheckpoint rt;
  const auto err = read_checkpoint_file(path, rt);
  EXPECT_FALSE(err.has_value()) << (err ? err->to_string() : "");
  ASSERT_EQ(rt.sessions.size(), cp.sessions.size());
  EXPECT_EQ(rt.sessions[1].state.rng, cp.sessions[1].state.rng);
}

TEST(StreamTracker, SaveRestoreMidStreamMatchesUninterrupted) {
  // Tracker-level bit-identity: snapshot mid-stream, rebuild with the
  // same construction inputs, restore, continue — every subsequent fold
  // must match the tracker that never stopped.
  const Bed bed;
  const std::vector<FluxEvent> events = bed.session_events(0, 6, 21);
  ASSERT_GT(events.size(), 20u);

  StreamTracker continuous = bed.tracker(42);
  StreamTracker prefix = bed.tracker(42);
  const std::size_t cut = events.size() / 2;
  std::vector<EpochResult> want;
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (EpochResult& r : continuous.on_event(events[i])) {
      if (i >= cut) {
        want.push_back(std::move(r));
      }
    }
    if (i < cut) {
      prefix.on_event(events[i]);
    }
  }
  for (EpochResult& r : continuous.flush()) {
    want.push_back(std::move(r));
  }

  StreamTracker resumed = bed.tracker(42);
  resumed.restore_state(prefix.save_state());
  std::vector<EpochResult> got;
  for (std::size_t i = cut; i < events.size(); ++i) {
    for (EpochResult& r : resumed.on_event(events[i])) {
      got.push_back(std::move(r));
    }
  }
  for (EpochResult& r : resumed.flush()) {
    got.push_back(std::move(r));
  }

  ASSERT_EQ(got.size(), want.size());
  ASSERT_FALSE(want.empty());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].epoch, want[i].epoch);
    EXPECT_EQ(got[i].time, want[i].time);
    EXPECT_EQ(got[i].estimates[0].x, want[i].estimates[0].x);
    EXPECT_EQ(got[i].estimates[0].y, want[i].estimates[0].y);
  }
  EXPECT_EQ(resumed.stats().epochs_fired, continuous.stats().epochs_fired);
}

TEST(StreamTracker, RestoreRejectsMalformedStateWithoutMutating) {
  const Bed bed;
  StreamTracker t = bed.tracker(3);
  for (const FluxEvent& e : bed.session_events(0, 3, 2)) {
    t.on_event(e);
  }
  const StreamTrackerState good = t.save_state();

  StreamTrackerState bad_rng = good;
  bad_rng.rng = "not a generator";
  StreamTracker target = bed.tracker(3);
  EXPECT_THROW(target.restore_state(bad_rng), std::invalid_argument);

  StreamTrackerState bad_window = good;
  bad_window.open.push_back(WindowState{});  // slot counts mismatch
  EXPECT_THROW(target.restore_state(bad_window), std::invalid_argument);

  // The failed restores above must not have partially applied.
  target.restore_state(good);
  EXPECT_EQ(target.stats().events, t.stats().events);
}

}  // namespace
}  // namespace fluxfp::stream
