#include "stream/stream_tracker.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/flux.hpp"

namespace fluxfp::stream {
namespace {

/// Four sniffers in the corners of a small field; cheap SMC settings.
struct Fixture {
  geom::RectField field{20.0, 20.0};
  core::FluxModel model{field, 1.0};
  std::vector<std::size_t> nodes{11, 22, 33, 44};
  std::vector<geom::Vec2> positions{{2, 2}, {2, 18}, {18, 2}, {18, 18}};

  StreamTrackerConfig config(std::size_t expected = 4) const {
    StreamTrackerConfig c;
    c.smc.num_predictions = 40;
    c.smc.num_keep = 4;
    c.expected_readings = expected;
    return c;
  }

  StreamTracker tracker(std::size_t expected = 4,
                        std::uint64_t seed = 7) const {
    return StreamTracker(model, nodes, positions, 1, config(expected), seed);
  }
};

FluxEvent ev(double time, std::uint32_t epoch, std::uint32_t node,
             double reading) {
  return {time, 0, epoch, node, reading};
}

TEST(StreamTracker, CtorValidates) {
  const Fixture fx;
  EXPECT_THROW(StreamTracker(fx.model, {}, {}, 1, fx.config(0), 1),
               std::invalid_argument);
  EXPECT_THROW(StreamTracker(fx.model, fx.nodes,
                             {fx.positions[0], fx.positions[1]}, 1,
                             fx.config(0), 1),
               std::invalid_argument);
  std::vector<std::size_t> dup = fx.nodes;
  dup[3] = dup[0];
  EXPECT_THROW(StreamTracker(fx.model, dup, fx.positions, 1, fx.config(0), 1),
               std::invalid_argument);
  StreamTrackerConfig bad = fx.config(0);
  bad.close_delay = 0.0;
  EXPECT_THROW(StreamTracker(fx.model, fx.nodes, fx.positions, 1, bad, 1),
               std::invalid_argument);
  bad = fx.config(0);
  bad.max_open_epochs = 0;
  EXPECT_THROW(StreamTracker(fx.model, fx.nodes, fx.positions, 1, bad, 1),
               std::invalid_argument);
  EXPECT_THROW(StreamTracker(fx.model, fx.nodes, fx.positions, 1,
                             fx.config(5), 1),
               std::invalid_argument);
}

TEST(StreamTracker, CompleteWindowFiresImmediately) {
  const Fixture fx;
  StreamTracker t = fx.tracker();
  EXPECT_TRUE(t.on_event(ev(0.0, 0, 11, 1.0)).empty());
  EXPECT_TRUE(t.on_event(ev(0.1, 0, 22, 0.5)).empty());
  EXPECT_TRUE(t.on_event(ev(0.2, 0, 33, 0.25)).empty());
  const auto fired = t.on_event(ev(0.3, 0, 44, 0.75));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].epoch, 0u);
  EXPECT_EQ(fired[0].readings, 4u);
  EXPECT_EQ(fired[0].estimates.size(), 1u);
  EXPECT_EQ(t.open_windows(), 0u);
  EXPECT_EQ(t.stats().epochs_fired, 1u);
}

TEST(StreamTracker, DeadlineFiresIncompleteWindow) {
  const Fixture fx;
  StreamTracker t = fx.tracker(/*expected=*/0);  // only the deadline closes
  EXPECT_TRUE(t.on_event(ev(0.0, 0, 11, 1.0)).empty());
  EXPECT_TRUE(t.on_event(ev(0.1, 0, 22, 0.5)).empty());
  // Virtual time jumps past newest(0.1) + close_delay(0.5): epoch 0 fires
  // with only its two readings; the carrier event opens epoch 1.
  const auto fired = t.on_event(ev(0.7, 1, 11, 2.0));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].epoch, 0u);
  EXPECT_EQ(fired[0].readings, 2u);
  EXPECT_EQ(t.open_windows(), 1u);
}

TEST(StreamTracker, DuplicateKeepsLatestReading) {
  const Fixture fx;
  // Tracker A hears node 11 twice (stale 9.0, then 1.0); tracker B hears
  // the final value only. The duplicate must fold to the same window.
  StreamTracker a = fx.tracker();
  StreamTracker b = fx.tracker();
  EXPECT_TRUE(a.on_event(ev(0.0, 0, 11, 9.0)).empty());
  EXPECT_TRUE(a.on_event(ev(0.1, 0, 11, 1.0)).empty());
  EXPECT_TRUE(b.on_event(ev(0.1, 0, 11, 1.0)).empty());
  for (StreamTracker* t : {&a, &b}) {
    t->on_event(ev(0.2, 0, 22, 0.5));
    t->on_event(ev(0.3, 0, 33, 0.25));
  }
  const auto fa = a.on_event(ev(0.4, 0, 44, 0.75));
  const auto fb = b.on_event(ev(0.4, 0, 44, 0.75));
  ASSERT_EQ(fa.size(), 1u);
  ASSERT_EQ(fb.size(), 1u);
  EXPECT_EQ(fa[0].readings, 4u);
  EXPECT_EQ(a.stats().duplicates, 1u);
  EXPECT_EQ(b.stats().duplicates, 0u);
  EXPECT_EQ(fa[0].estimates[0].x, fb[0].estimates[0].x);
  EXPECT_EQ(fa[0].estimates[0].y, fb[0].estimates[0].y);
}

TEST(StreamTracker, LateEventsAreCountedAndDropped) {
  const Fixture fx;
  StreamTracker t = fx.tracker();
  for (std::uint32_t node : {11u, 22u, 33u, 44u}) {
    t.on_event(ev(0.1, 0, node, 1.0));
  }
  ASSERT_EQ(t.stats().epochs_fired, 1u);
  // Epoch 0 already fired: a straggler must not reopen it.
  EXPECT_TRUE(t.on_event(ev(0.2, 0, 22, 3.0)).empty());
  EXPECT_EQ(t.stats().late, 1u);
  EXPECT_EQ(t.open_windows(), 0u);
}

TEST(StreamTracker, UnknownNodeIsCounted) {
  const Fixture fx;
  StreamTracker t = fx.tracker();
  EXPECT_TRUE(t.on_event(ev(0.0, 0, 99, 1.0)).empty());
  EXPECT_EQ(t.stats().unknown_node, 1u);
  EXPECT_EQ(t.open_windows(), 0u);
}

TEST(StreamTracker, OutOfOrderEpochsFireAscending) {
  const Fixture fx;
  StreamTracker t = fx.tracker(/*expected=*/0);
  // Events for epochs 2 and 0 interleave (reordered delivery with nearby
  // timestamps): both windows stay open.
  t.on_event(ev(2.0, 2, 11, 1.0));
  t.on_event(ev(1.9, 0, 22, 0.5));
  t.on_event(ev(2.1, 2, 33, 0.25));
  EXPECT_EQ(t.open_windows(), 2u);
  const auto fired = t.flush();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].epoch, 0u);
  EXPECT_EQ(fired[1].epoch, 2u);
  EXPECT_LT(fired[0].time, fired[1].time);  // SMC time strictly increases
}

TEST(StreamTracker, MaxOpenEpochsForcesOldestClosed) {
  const Fixture fx;
  StreamTrackerConfig cfg = fx.config(0);
  cfg.max_open_epochs = 2;
  cfg.close_delay = 100.0;  // deadline never fires in this test
  StreamTracker t(fx.model, fx.nodes, fx.positions, 1, cfg, 7);
  t.on_event(ev(0.0, 0, 11, 1.0));
  t.on_event(ev(0.1, 1, 11, 1.0));
  const auto fired = t.on_event(ev(0.2, 2, 11, 1.0));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].epoch, 0u);
  EXPECT_EQ(t.stats().forced_closes, 1u);
  EXPECT_EQ(t.open_windows(), 2u);
}

TEST(StreamTracker, ArrivalOrderInsideWindowDoesNotChangeEstimates) {
  const Fixture fx;
  StreamTracker fwd = fx.tracker();
  StreamTracker rev = fx.tracker();
  const std::vector<FluxEvent> window = {
      ev(0.0, 0, 11, 1.0), ev(0.1, 0, 22, 0.7), ev(0.2, 0, 33, 0.4),
      ev(0.3, 0, 44, 0.9)};
  std::vector<EpochResult> a;
  for (const FluxEvent& e : window) {
    for (auto& r : fwd.on_event(e)) {
      a.push_back(std::move(r));
    }
  }
  std::vector<EpochResult> b;
  for (auto it = window.rbegin(); it != window.rend(); ++it) {
    FluxEvent e = *it;
    e.time = 0.3 - e.time;  // reversed arrival, same window contents
    for (auto& r : rev.on_event(e)) {
      b.push_back(std::move(r));
    }
  }
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].estimates[0].x, b[0].estimates[0].x);
  EXPECT_EQ(a[0].estimates[0].y, b[0].estimates[0].y);
}

TEST(StreamTracker, GraphConvenienceCtorReadsPositions) {
  const Fixture fx;
  const net::UnitDiskGraph graph(
      {{2, 2}, {2, 18}, {18, 2}, {18, 18}, {10, 10}}, 30.0);
  StreamTracker t(fx.model, graph, {0, 1, 2, 3}, 1, fx.config(4), 7);
  StreamTracker direct(fx.model, {0, 1, 2, 3}, fx.positions, 1, fx.config(4),
                       7);
  std::vector<EpochResult> a;
  std::vector<EpochResult> b;
  for (std::uint32_t node : {0u, 1u, 2u, 3u}) {
    for (auto& r : t.on_event(ev(0.1 * node, 0, node, 1.0 / (node + 1)))) {
      a.push_back(std::move(r));
    }
    for (auto& r :
         direct.on_event(ev(0.1 * node, 0, node, 1.0 / (node + 1)))) {
      b.push_back(std::move(r));
    }
  }
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].estimates[0].x, b[0].estimates[0].x);
  EXPECT_EQ(a[0].estimates[0].y, b[0].estimates[0].y);
}

}  // namespace
}  // namespace fluxfp::stream
