#include "stream/trace_io.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/flux.hpp"

namespace fluxfp::stream {
namespace {

std::vector<FluxEvent> sample_events() {
  return {
      {0.0, 0, 0, 3, 1.25},
      {0.5, 1, 0, 9, 0.0},
      {1.0, 0, 1, 3, net::kMissingReading},
      {1.0, 2, 1, 4, -7.5e-3},
      {2.25, 0, 2, 1, 1e300},
  };
}

TEST(TraceIo, RoundTripIsBitExact) {
  const std::vector<FluxEvent> events = sample_events();
  std::stringstream buffer;
  TraceRecorder rec(buffer);
  rec.write(std::span<const FluxEvent>(events));
  EXPECT_EQ(rec.written(), events.size());
  EXPECT_EQ(buffer.str().size(),
            kTraceHeaderBytes + events.size() * kTraceRecordBytes);

  TraceReplayer rep(buffer);
  const std::vector<FluxEvent> back = rep.read_all();
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Bit-exact, including the NaN payload of a missing reading.
    EXPECT_EQ(std::memcmp(&back[i].time, &events[i].time, sizeof(double)),
              0);
    EXPECT_EQ(back[i].user, events[i].user);
    EXPECT_EQ(back[i].epoch, events[i].epoch);
    EXPECT_EQ(back[i].node, events[i].node);
    EXPECT_EQ(
        std::memcmp(&back[i].reading, &events[i].reading, sizeof(double)),
        0);
  }
  EXPECT_TRUE(net::is_missing(back[2].reading));
}

TEST(TraceIo, NextStreamsOneRecordAtATime) {
  const std::vector<FluxEvent> events = sample_events();
  std::stringstream buffer;
  TraceRecorder rec(buffer);
  for (const FluxEvent& e : events) {
    rec.write(e);
  }
  TraceReplayer rep(buffer);
  FluxEvent out;
  std::size_t n = 0;
  while (rep.next(out)) {
    EXPECT_EQ(out.node, events[n].node);
    ++n;
  }
  EXPECT_EQ(n, events.size());
  EXPECT_EQ(rep.read_count(), events.size());
}

TEST(TraceIo, EmptyTraceIsLegal) {
  std::stringstream buffer;
  TraceRecorder rec(buffer);
  TraceReplayer rep(buffer);
  EXPECT_TRUE(rep.read_all().empty());
}

TEST(TraceIo, RejectsBadMagicAndVersion) {
  {
    std::stringstream buffer("not a trace at all, definitely");
    EXPECT_THROW(TraceReplayer rep(buffer), std::runtime_error);
  }
  {
    std::stringstream buffer;
    TraceRecorder rec(buffer);
    std::string bytes = buffer.str();
    bytes[8] = 9;  // version field
    std::stringstream bad(bytes);
    EXPECT_THROW(TraceReplayer rep(bad), std::runtime_error);
  }
}

// ---------------------------------------------------------------------------
// The version-2 observation-model tag.
// ---------------------------------------------------------------------------

TEST(TraceModelTag, FluxTracesStayVersionOneByteIdentical) {
  const std::vector<FluxEvent> events = sample_events();
  std::stringstream legacy, tagged;
  TraceRecorder a(legacy);
  TraceRecorder b(tagged, /*model_id=*/0);
  a.write(std::span<const FluxEvent>(events));
  b.write(std::span<const FluxEvent>(events));
  // An explicit flux tag is the default: not one byte may differ, so
  // pre-model-tag readers keep reading new flux captures.
  EXPECT_EQ(legacy.str(), tagged.str());
  const std::string bytes = legacy.str();
  std::uint32_t version;
  std::memcpy(&version, bytes.data() + 8, 4);
  EXPECT_EQ(version, kTraceVersion);

  TraceReplayer rep(legacy);
  EXPECT_EQ(rep.model_id(), 0);  // v1 reads back as flux
}

TEST(TraceModelTag, NonFluxModelRoundTripsThroughVersionTwo) {
  const std::vector<FluxEvent> events = sample_events();
  std::stringstream buffer;
  TraceRecorder rec(buffer, /*model_id=*/2);
  EXPECT_EQ(rec.model_id(), 2);
  rec.write(std::span<const FluxEvent>(events));

  const std::string bytes = buffer.str();
  std::uint32_t version;
  std::memcpy(&version, bytes.data() + 8, 4);
  EXPECT_EQ(version, kTraceVersionModel);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[12]), 2);

  TraceReplayer rep(buffer);
  EXPECT_EQ(rep.model_id(), 2);
  const std::vector<FluxEvent> back = rep.read_all();
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(std::memcmp(&back[i].time, &events[i].time, sizeof(double)),
              0);
    EXPECT_EQ(back[i].user, events[i].user);
    EXPECT_EQ(back[i].epoch, events[i].epoch);
    EXPECT_EQ(back[i].node, events[i].node);
    EXPECT_EQ(
        std::memcmp(&back[i].reading, &events[i].reading, sizeof(double)),
        0);
  }
}

TEST(TraceModelTag, RecorderRejectsUnknownModelId) {
  std::stringstream buffer;
  EXPECT_THROW(TraceRecorder(buffer, 3), std::invalid_argument);
  EXPECT_THROW(TraceRecorder(buffer, 255), std::invalid_argument);
}

TEST(TraceModelTag, ReplayerRejectsUnknownModelByte) {
  std::stringstream buffer;
  TraceRecorder rec(buffer, /*model_id=*/1);
  std::string bytes = buffer.str();
  bytes[12] = 42;  // corrupt the model-id byte of a v2 header
  std::stringstream bad(bytes);
  try {
    TraceReplayer rep(bad);
    FAIL() << "unknown model byte accepted";
  } catch (const TraceFormatError& e) {
    EXPECT_EQ(e.error().kind, TraceError::Kind::kBadVersion);
    EXPECT_EQ(e.error().offset, 12u);
  }
}

TEST(TraceIo, RejectsTruncatedRecord) {
  std::stringstream buffer;
  TraceRecorder rec(buffer);
  rec.write(sample_events()[0]);
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() - 5));
  TraceReplayer rep(truncated);
  FluxEvent out;
  EXPECT_THROW(rep.next(out), std::runtime_error);
}

/// Serialized bytes of a valid trace holding `events`.
std::string trace_bytes(const std::vector<FluxEvent>& events) {
  std::stringstream buffer;
  TraceRecorder rec(buffer);
  rec.write(std::span<const FluxEvent>(events));
  return buffer.str();
}

TEST(TraceError, TruncatedHeaderIsTyped) {
  std::stringstream short_header(trace_bytes({}).substr(0, 10));
  try {
    TraceReplayer rep(short_header);
    FAIL() << "a 10-byte header must not parse";
  } catch (const TraceFormatError& e) {
    EXPECT_EQ(e.error().kind, TraceError::Kind::kTruncatedHeader);
    EXPECT_EQ(e.error().offset, 10u);  // how many bytes there were
    EXPECT_NE(std::string(e.what()).find("offset 10"), std::string::npos);
  }
}

TEST(TraceError, BadMagicIsTyped) {
  std::string bytes = trace_bytes({});
  bytes[0] = 'X';
  std::stringstream bad(bytes);
  try {
    TraceReplayer rep(bad);
    FAIL() << "a corrupt magic must not parse";
  } catch (const TraceFormatError& e) {
    EXPECT_EQ(e.error().kind, TraceError::Kind::kBadMagic);
    EXPECT_EQ(e.error().offset, 0u);
  }
}

TEST(TraceError, BadVersionIsTyped) {
  std::string bytes = trace_bytes({});
  bytes[8] = 9;  // version field
  std::stringstream bad(bytes);
  try {
    TraceReplayer rep(bad);
    FAIL() << "a future version must not parse";
  } catch (const TraceFormatError& e) {
    EXPECT_EQ(e.error().kind, TraceError::Kind::kBadVersion);
    EXPECT_EQ(e.error().offset, 8u);  // where the version field lives
    // The message names both versions so the operator can tell which side
    // is stale.
    EXPECT_NE(e.error().reason.find('9'), std::string::npos);
  }
}

TEST(TraceError, TryNextReportsTruncationWithoutThrowing) {
  // One whole record, then a record cut off mid-way — a crashed recorder's
  // typical tail.
  const std::string bytes = trace_bytes(sample_events());
  std::stringstream cut(
      bytes.substr(0, kTraceHeaderBytes + kTraceRecordBytes + 11));
  TraceReplayer rep(cut);
  FluxEvent out;
  ASSERT_TRUE(rep.try_next(out));  // the intact prefix still replays
  EXPECT_EQ(out.node, sample_events()[0].node);
  EXPECT_FALSE(rep.try_next(out));  // the torn record does not
  ASSERT_TRUE(rep.error().has_value());
  EXPECT_EQ(rep.error()->kind, TraceError::Kind::kTruncatedRecord);
  // The error pinpoints where the good bytes ended and which record tore.
  EXPECT_EQ(rep.error()->offset, kTraceHeaderBytes + kTraceRecordBytes);
  EXPECT_NE(rep.error()->reason.find("record 1"), std::string::npos);
  // The error is sticky: the reader stays ended instead of resyncing into
  // garbage, and the throwing API surfaces the SAME typed error.
  EXPECT_FALSE(rep.try_next(out));
  try {
    rep.next(out);
    FAIL() << "next() must throw on a torn record";
  } catch (const TraceFormatError& e) {
    EXPECT_EQ(e.error().kind, TraceError::Kind::kTruncatedRecord);
    EXPECT_EQ(e.error().offset, rep.error()->offset);
  }
}

TEST(TraceError, OffsetTracksBytesConsumedAndCleanEofIsNotAnError) {
  const std::vector<FluxEvent> events = sample_events();
  std::stringstream buffer(trace_bytes(events));
  TraceReplayer rep(buffer);
  EXPECT_EQ(rep.offset(), kTraceHeaderBytes);
  FluxEvent out;
  std::size_t n = 0;
  while (rep.try_next(out)) {
    ++n;
    EXPECT_EQ(rep.offset(), kTraceHeaderBytes + n * kTraceRecordBytes);
  }
  EXPECT_EQ(n, events.size());
  // End-of-trace is a normal outcome, not a TraceError.
  EXPECT_FALSE(rep.error().has_value());
  EXPECT_FALSE(rep.try_next(out));
  EXPECT_NO_THROW(rep.next(out));
}

TEST(TraceIo, FileRoundTrip) {
  const std::vector<FluxEvent> events = sample_events();
  const std::string path =
      testing::TempDir() + "/fluxfp_trace_roundtrip.trace";
  write_trace_file(path, events);
  const std::vector<FluxEvent> back = read_trace_file(path);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_TRUE(back[i] == events[i]);
  }
  std::remove(path.c_str());
  EXPECT_THROW(read_trace_file(path), std::runtime_error);
}

TEST(TraceIo, MergeByTimeInterleavesStably) {
  const std::vector<std::vector<FluxEvent>> streams = {
      {{0.0, 0, 0, 1, 1.0}, {1.0, 0, 1, 1, 2.0}, {2.0, 0, 2, 1, 3.0}},
      {{0.5, 1, 0, 2, 4.0}, {1.0, 1, 1, 2, 5.0}},
  };
  const std::vector<FluxEvent> merged =
      merge_by_time(std::span<const std::vector<FluxEvent>>(streams));
  ASSERT_EQ(merged.size(), 5u);
  const std::vector<std::uint32_t> users = {0, 1, 0, 1, 0};
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].user, users[i]) << "position " << i;
    if (i > 0) {
      EXPECT_LE(merged[i - 1].time, merged[i].time);
    }
  }
}

double seconds_of(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

TEST(ReplayPacer, MaxSpeedModeNeverSleepsOrReadsTheClock) {
  ReplayPacer pacer(0.0, 0.0);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(pacer.pace(static_cast<double>(i) * 1000.0));
  }
  // 10k deliveries spanning "10M seconds" of trace time must take
  // essentially no wall time and report no lag.
  EXPECT_LT(seconds_of(std::chrono::steady_clock::now() - start), 1.0);
  EXPECT_EQ(pacer.max_behind_seconds(), 0.0);
}

TEST(ReplayPacer, PacesAgainstAbsoluteDeadlinesFromTheEpoch) {
  // 2.0 trace-seconds at 20x → the last event is due 100 ms after the
  // first release. Loose bounds: the box is slow, never fast.
  ReplayPacer pacer(20.0, 10.0);  // epoch is the first event's timestamp
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i <= 4; ++i) {
    EXPECT_TRUE(pacer.pace(10.0 + 0.5 * static_cast<double>(i)));
  }
  const double elapsed = seconds_of(std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed, 0.08);  // cannot finish before the schedule allows
  EXPECT_LT(elapsed, 5.0);   // and must not be sleeping wildly long
}

TEST(ReplayPacer, ALateDeliveryDoesNotShiftLaterDeadlines) {
  // Deadlines are absolute (wall_origin + (t - epoch) / speed), so a stall
  // mid-replay makes later events due IMMEDIATELY rather than re-anchoring
  // the schedule — and the stall shows up in max_behind_seconds().
  ReplayPacer pacer(10.0, 0.0);
  EXPECT_TRUE(pacer.pace(0.0));  // anchors the wall origin
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  // Event at t=0.5 was due 50 ms after the origin; we are ~70 ms late.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(pacer.pace(0.5));
  EXPECT_LT(seconds_of(std::chrono::steady_clock::now() - start), 0.05);
  EXPECT_GT(pacer.max_behind_seconds(), 0.0);
}

TEST(ReplayPacer, KeepingUpReportsOnlySleepJitterAsLag) {
  // The pacer records real wake-up overshoot, so "keeping up" means lag on
  // the order of scheduler jitter — well under a pacing interval.
  ReplayPacer pacer(100.0, 0.0);
  for (int i = 0; i <= 3; ++i) {
    EXPECT_TRUE(pacer.pace(0.5 * static_cast<double>(i)));
  }
  EXPECT_LT(pacer.max_behind_seconds(), 0.004);
}

TEST(ReplayPacer, StopFlagAbortsAFarFutureDeadline) {
  ReplayPacer pacer(1.0, 0.0);
  EXPECT_TRUE(pacer.pace(0.0));
  int polls = 0;
  const auto start = std::chrono::steady_clock::now();
  // An event an hour of wall time away; the stop callback fires on the
  // second poll, so pace must return false within a few poll intervals.
  const bool delivered = pacer.pace(3600.0, [&polls] { return ++polls >= 2; });
  EXPECT_FALSE(delivered);
  EXPECT_GE(polls, 2);
  EXPECT_LT(seconds_of(std::chrono::steady_clock::now() - start), 2.0);
}

TEST(ReplayPacer, SharedEpochKeepsSeparatePacersAligned) {
  // The loadgen spawns one pacer per connection, all constructed with the
  // SAME epoch time; an event at trace time t must be released at (nearly)
  // the same wall offset by each of them.
  ReplayPacer a(50.0, 0.0);
  ReplayPacer b(50.0, 0.0);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(a.pace(0.0));
  EXPECT_TRUE(b.pace(0.0));
  EXPECT_TRUE(a.pace(2.0));  // due 40 ms after a's origin
  const double a_done = seconds_of(std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(b.pace(2.0));  // b's origin is within microseconds of a's
  const double b_done = seconds_of(std::chrono::steady_clock::now() - start);
  EXPECT_GE(a_done, 0.03);
  // b's deadline had already passed while a slept, so b releases at once.
  EXPECT_LT(b_done - a_done, 0.5);
}

}  // namespace
}  // namespace fluxfp::stream
