// Bernoulli detection sampling — the passive backend's measurement layer.
// The load-bearing invariant is RNG-draw discipline: missing entries
// consume NO draw, so a fault mask upstream cannot shift the random
// stream of the live sniffers behind it (the same rule the SMC's
// empty-window path follows).

#include "sim/detection.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/flux.hpp"

namespace fluxfp::sim {
namespace {

TEST(BernoulliDetections, ProducesBitsAndHonorsExtremes) {
  geom::Rng rng(3);
  const std::vector<double> p{0.0, 1.0, 0.5, -2.0, 7.0};
  const std::vector<double> bits = bernoulli_detections(p, rng);
  ASSERT_EQ(bits.size(), p.size());
  EXPECT_EQ(bits[0], 0.0);  // p clamped to 0
  EXPECT_EQ(bits[1], 1.0);  // p clamped to 1
  EXPECT_TRUE(bits[2] == 0.0 || bits[2] == 1.0);
  EXPECT_EQ(bits[3], 0.0);  // below range clamps to never
  EXPECT_EQ(bits[4], 1.0);  // above range clamps to always
}

TEST(BernoulliDetections, MissingEntriesConsumeNoDraw) {
  const std::vector<double> with_gap{0.5, net::kMissingReading, 0.5, 0.5};
  const std::vector<double> no_gap{0.5, 0.5, 0.5};

  geom::Rng rng_a(11);
  geom::Rng rng_b(11);
  const std::vector<double> a = bernoulli_detections(with_gap, rng_a);
  const std::vector<double> b = bernoulli_detections(no_gap, rng_b);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_TRUE(net::is_missing(a[1]));
  // Same draws land on the same live slots: the gap shifted nothing.
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[2], b[1]);
  EXPECT_EQ(a[3], b[2]);
  // And both engines end in the same state (3 draws each).
  EXPECT_TRUE(rng_a == rng_b);
}

TEST(FlipDetections, ValidatesProbabilityAndKeepsMissing) {
  geom::Rng rng(5);
  std::vector<double> bits{1.0, 0.0, net::kMissingReading};
  EXPECT_THROW(flip_detections(bits, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(flip_detections(bits, 1.5, rng), std::invalid_argument);

  // flip_prob 1 flips every live bit deterministically.
  flip_detections(bits, 1.0, rng);
  EXPECT_EQ(bits[0], 0.0);
  EXPECT_EQ(bits[1], 1.0);
  EXPECT_TRUE(net::is_missing(bits[2]));

  // flip_prob 0 leaves everything and consumes draws only for live slots.
  geom::Rng rng_a(6);
  geom::Rng rng_b(6);
  std::vector<double> with_gap{1.0, net::kMissingReading, 0.0};
  std::vector<double> no_gap{1.0, 0.0};
  flip_detections(with_gap, 0.0, rng_a);
  flip_detections(no_gap, 0.0, rng_b);
  EXPECT_EQ(with_gap[0], 1.0);
  EXPECT_EQ(with_gap[2], 0.0);
  EXPECT_TRUE(rng_a == rng_b);
}

}  // namespace
}  // namespace fluxfp::sim
