#include "sim/measurement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "net/deployment.hpp"

namespace fluxfp::sim {
namespace {

net::UnitDiskGraph paper_network(geom::Rng& rng) {
  const geom::RectField f(30.0, 30.0);
  return net::UnitDiskGraph(net::perturbed_grid(f, 30, 30, 0.5, rng), 2.4);
}

TEST(FluxEngine, EmptyWindowIsAllZero) {
  geom::Rng rng(1);
  const net::UnitDiskGraph g = paper_network(rng);
  const FluxEngine engine(g);
  const net::FluxMap flux = engine.measure({}, rng);
  EXPECT_EQ(flux.size(), g.size());
  for (double v : flux) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(FluxEngine, SingleCollectionTotalGeneratedData) {
  geom::Rng rng(2);
  const net::UnitDiskGraph g = paper_network(rng);
  const FluxEngine engine(g);
  const std::vector<Collection> cs{{0, {15.0, 15.0}, 2.0}};
  const net::FluxMap flux = engine.measure(cs, rng);
  // The root relays everything: max flux = stretch * n.
  const double peak = *std::max_element(flux.begin(), flux.end());
  EXPECT_DOUBLE_EQ(peak, 2.0 * static_cast<double>(g.size()));
}

TEST(FluxEngine, TwoCollectionsCumulate) {
  geom::Rng rng(3);
  const net::UnitDiskGraph g = paper_network(rng);
  const FluxEngine engine(g);
  const std::vector<Collection> both{{0, {5.0, 5.0}, 1.0},
                                     {1, {25.0, 25.0}, 1.0}};
  const net::FluxMap flux = engine.measure(both, rng);
  // Total flux across nodes >= each single tree's total (they sum).
  const double total = std::accumulate(flux.begin(), flux.end(), 0.0);
  geom::Rng rng2(4);
  const net::FluxMap single =
      engine.measure(std::vector<Collection>{{0, {5.0, 5.0}, 1.0}}, rng2);
  const double single_total =
      std::accumulate(single.begin(), single.end(), 0.0);
  EXPECT_GT(total, single_total);
}

TEST(FluxEngine, TracksAverageHopLength) {
  geom::Rng rng(5);
  const net::UnitDiskGraph g = paper_network(rng);
  const FluxEngine engine(g);
  EXPECT_DOUBLE_EQ(engine.last_average_hop_length(), 0.0);
  (void)engine.measure(std::vector<Collection>{{0, {15.0, 15.0}, 1.0}}, rng);
  EXPECT_GT(engine.last_average_hop_length(), 0.0);
  EXPECT_LE(engine.last_average_hop_length(), g.radius());
}

TEST(FluxNoise, NoopWhenZero) {
  net::FluxMap flux{1, 2, 3};
  geom::Rng rng(6);
  FluxEngine::apply_noise(flux, {0.0, 0.0}, rng);
  EXPECT_EQ(flux, (net::FluxMap{1, 2, 3}));
}

TEST(FluxNoise, DropoutMarksEntriesMissing) {
  net::FluxMap flux(1000, 1.0);
  geom::Rng rng(7);
  FluxEngine::apply_noise(flux, {0.0, 0.3}, rng);
  // A dropped reading is *missing* evidence, not a zero observation.
  const std::size_t missing = net::count_missing(flux);
  EXPECT_NEAR(static_cast<double>(missing), 300.0, 60.0);
  const std::size_t zeros = static_cast<std::size_t>(
      std::count(flux.begin(), flux.end(), 0.0));
  EXPECT_EQ(zeros, 0u);
}

TEST(FluxNoise, RelativeNoiseKeepsNonNegativity) {
  net::FluxMap flux(1000, 1.0);
  geom::Rng rng(8);
  FluxEngine::apply_noise(flux, {0.8, 0.0}, rng);
  for (double v : flux) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(FluxNoise, RelativeNoisePreservesMeanApproximately) {
  net::FluxMap flux(5000, 2.0);
  geom::Rng rng(9);
  FluxEngine::apply_noise(flux, {0.1, 0.0}, rng);
  const double mean =
      std::accumulate(flux.begin(), flux.end(), 0.0) / 5000.0;
  EXPECT_NEAR(mean, 2.0, 0.02);
}

}  // namespace
}  // namespace fluxfp::sim
