#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "net/deployment.hpp"
#include "net/flux.hpp"

namespace fluxfp::sim {
namespace {

net::UnitDiskGraph small_network(geom::Rng& rng) {
  const geom::RectField f(30.0, 30.0);
  return net::UnitDiskGraph(net::perturbed_grid(f, 15, 15, 0.5, rng), 4.0);
}

SimUser static_user(geom::Vec2 pos, double stretch) {
  SimUser u;
  u.stretch = stretch;
  u.mobility = std::make_shared<StaticMobility>(pos);
  return u;
}

TEST(Scenario, ProducesOneObservationPerRound) {
  geom::Rng rng(1);
  const net::UnitDiskGraph g = small_network(rng);
  ScenarioConfig cfg;
  cfg.rounds = 7;
  const auto obs = run_scenario(g, {static_user({15, 15}, 1.0)}, cfg, rng);
  ASSERT_EQ(obs.size(), 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(obs[static_cast<std::size_t>(i)].time,
                     static_cast<double>(i + 1));
  }
}

TEST(Scenario, RecordsTruePositionsOfMovingUsers) {
  geom::Rng rng(2);
  const net::UnitDiskGraph g = small_network(rng);
  SimUser u;
  u.stretch = 1.0;
  u.mobility = std::make_shared<PathMobility>(
      geom::Polyline({{0, 15}, {30, 15}}), 3.0);
  ScenarioConfig cfg;
  cfg.rounds = 3;
  const auto obs = run_scenario(g, {u}, cfg, rng);
  EXPECT_EQ(obs[0].true_positions[0], geom::Vec2(3, 15));
  EXPECT_EQ(obs[1].true_positions[0], geom::Vec2(6, 15));
  EXPECT_EQ(obs[2].true_positions[0], geom::Vec2(9, 15));
}

TEST(Scenario, InactiveUsersContributeNoFlux) {
  geom::Rng rng(3);
  const net::UnitDiskGraph g = small_network(rng);
  SimUser u = static_user({15, 15}, 1.0);
  u.is_active = [](double) { return false; };
  ScenarioConfig cfg;
  cfg.rounds = 2;
  const auto obs = run_scenario(g, {u}, cfg, rng);
  for (const auto& o : obs) {
    EXPECT_FALSE(o.active[0]);
    EXPECT_DOUBLE_EQ(std::accumulate(o.flux.begin(), o.flux.end(), 0.0), 0.0);
  }
}

TEST(Scenario, ScheduleControlsWindows) {
  geom::Rng rng(4);
  const net::UnitDiskGraph g = small_network(rng);
  SimUser u = static_user({15, 15}, 1.0);
  u.is_active = [](double t) { return t > 1.5; };  // skips round 1
  ScenarioConfig cfg;
  cfg.rounds = 3;
  const auto obs = run_scenario(g, {u}, cfg, rng);
  EXPECT_FALSE(obs[0].active[0]);
  EXPECT_TRUE(obs[1].active[0]);
  EXPECT_TRUE(obs[2].active[0]);
  EXPECT_DOUBLE_EQ(
      std::accumulate(obs[0].flux.begin(), obs[0].flux.end(), 0.0), 0.0);
  EXPECT_GT(std::accumulate(obs[1].flux.begin(), obs[1].flux.end(), 0.0),
            0.0);
}

TEST(Scenario, MultipleUsersAllObserved) {
  geom::Rng rng(5);
  const net::UnitDiskGraph g = small_network(rng);
  const std::vector<SimUser> users{static_user({5, 5}, 1.0),
                                   static_user({25, 25}, 2.0)};
  ScenarioConfig cfg;
  cfg.rounds = 1;
  const auto obs = run_scenario(g, users, cfg, rng);
  ASSERT_EQ(obs[0].true_positions.size(), 2u);
  ASSERT_EQ(obs[0].active.size(), 2u);
  // Peak flux equals total generated data of both users.
  const double peak = *std::max_element(obs[0].flux.begin(),
                                        obs[0].flux.end());
  EXPECT_LE(peak, 3.0 * static_cast<double>(g.size()));
  EXPECT_GT(peak, 2.0 * static_cast<double>(g.size()) - 1.0);
}

TEST(Scenario, RejectsUserWithoutMobility) {
  geom::Rng rng(6);
  const net::UnitDiskGraph g = small_network(rng);
  SimUser bad;
  bad.stretch = 1.0;
  ScenarioConfig cfg;
  EXPECT_THROW(run_scenario(g, {bad}, cfg, rng), std::invalid_argument);
}

TEST(Scenario, NoiseIsApplied) {
  geom::Rng rng(7);
  const net::UnitDiskGraph g = small_network(rng);
  ScenarioConfig cfg;
  cfg.rounds = 1;
  cfg.noise.dropout_prob = 1.0;  // extreme: every reading dropped
  const auto obs = run_scenario(g, {static_user({15, 15}, 1.0)}, cfg, rng);
  for (double v : obs[0].flux) {
    EXPECT_TRUE(net::is_missing(v));
  }
}

TEST(Scenario, CustomWindowLengthShiftsTimes) {
  geom::Rng rng(8);
  const net::UnitDiskGraph g = small_network(rng);
  ScenarioConfig cfg;
  cfg.rounds = 2;
  cfg.dt = 0.5;
  cfg.start_time = 10.0;
  const auto obs = run_scenario(g, {static_user({15, 15}, 1.0)}, cfg, rng);
  EXPECT_DOUBLE_EQ(obs[0].time, 10.5);
  EXPECT_DOUBLE_EQ(obs[1].time, 11.0);
}

}  // namespace
}  // namespace fluxfp::sim
