#include <gtest/gtest.h>

#include "sim/mobility.hpp"

namespace fluxfp::sim {
namespace {

TEST(GaussMarkovMobility, RejectsBadParameters) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(1);
  EXPECT_THROW(GaussMarkovMobility(f, {5, 5}, 2.0, 1.0, 0.5, 1.0, 10.0, rng),
               std::invalid_argument);  // memory must be < 1
  EXPECT_THROW(GaussMarkovMobility(f, {5, 5}, 2.0, 0.5, 0.5, 0.0, 10.0, rng),
               std::invalid_argument);  // step_dt > 0
  EXPECT_THROW(GaussMarkovMobility(f, {5, 5}, -1.0, 0.5, 0.5, 1.0, 10.0, rng),
               std::invalid_argument);  // speed >= 0
}

TEST(GaussMarkovMobility, StaysInField) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(2);
  const GaussMarkovMobility m(f, {15, 15}, 2.0, 0.8, 0.5, 0.5, 40.0, rng);
  for (double t = 0.0; t <= 40.0; t += 0.25) {
    EXPECT_TRUE(f.contains(m.position_at(t)));
  }
}

TEST(GaussMarkovMobility, ClampsBeyondDuration) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(3);
  const GaussMarkovMobility m(f, {15, 15}, 1.0, 0.5, 0.3, 1.0, 5.0, rng);
  EXPECT_EQ(m.position_at(5.0), m.position_at(100.0));
  EXPECT_EQ(m.position_at(-1.0), m.position_at(0.0));
}

TEST(GaussMarkovMobility, HighMemoryMovesRoughlyStraight) {
  // With memory -> 1 and tiny noise, the trajectory is near-linear: the
  // displacement over the full run is close to the path length.
  const geom::RectField f(100.0, 100.0);
  geom::Rng rng(4);
  const GaussMarkovMobility m(f, {50, 50}, 1.0, 0.95, 0.05, 0.5, 20.0, rng);
  double path_len = 0.0;
  for (double t = 0.0; t < 20.0; t += 0.5) {
    path_len += geom::distance(m.position_at(t), m.position_at(t + 0.5));
  }
  const double displacement =
      geom::distance(m.position_at(0.0), m.position_at(20.0));
  EXPECT_GT(displacement, 0.8 * path_len);
}

TEST(GaussMarkovMobility, ZeroMemoryIsDiffusive) {
  // memory = 0 with large noise: displacement much shorter than path.
  const geom::RectField f(100.0, 100.0);
  geom::Rng rng(5);
  const GaussMarkovMobility m(f, {50, 50}, 0.5, 0.0, 2.0, 0.5, 40.0, rng);
  double path_len = 0.0;
  for (double t = 0.0; t < 40.0; t += 0.5) {
    path_len += geom::distance(m.position_at(t), m.position_at(t + 0.5));
  }
  const double displacement =
      geom::distance(m.position_at(0.0), m.position_at(40.0));
  EXPECT_LT(displacement, 0.6 * path_len);
}

TEST(GaussMarkovMobility, MeanSpeedApproximatelyRespected) {
  const geom::RectField f(200.0, 200.0);
  geom::Rng rng(6);
  const GaussMarkovMobility m(f, {100, 100}, 2.0, 0.7, 0.2, 0.5, 30.0, rng);
  double path_len = 0.0;
  for (double t = 0.0; t < 30.0; t += 0.5) {
    path_len += geom::distance(m.position_at(t), m.position_at(t + 0.5));
  }
  EXPECT_NEAR(path_len / 30.0, 2.0, 1.0);
}

}  // namespace
}  // namespace fluxfp::sim
