#include "sim/mobility.hpp"

#include <gtest/gtest.h>

namespace fluxfp::sim {
namespace {

TEST(StaticMobility, NeverMoves) {
  const StaticMobility m({3, 4});
  EXPECT_EQ(m.position_at(0.0), geom::Vec2(3, 4));
  EXPECT_EQ(m.position_at(100.0), geom::Vec2(3, 4));
}

TEST(PathMobility, TraversesAtSpeed) {
  const PathMobility m(geom::Polyline({{0, 0}, {10, 0}}), 2.0);
  EXPECT_EQ(m.position_at(0.0), geom::Vec2(0, 0));
  EXPECT_EQ(m.position_at(1.0), geom::Vec2(2, 0));
  EXPECT_EQ(m.position_at(5.0), geom::Vec2(10, 0));
  EXPECT_EQ(m.position_at(99.0), geom::Vec2(10, 0));  // clamps at the end
}

TEST(PathMobility, StartTimeOffset) {
  const PathMobility m(geom::Polyline({{0, 0}, {10, 0}}), 1.0, 5.0);
  EXPECT_EQ(m.position_at(2.0), geom::Vec2(0, 0));
  EXPECT_EQ(m.position_at(7.0), geom::Vec2(2, 0));
}

TEST(PathMobility, RejectsBadInputs) {
  EXPECT_THROW(PathMobility(geom::Polyline(), 1.0), std::invalid_argument);
  EXPECT_THROW(PathMobility(geom::Polyline({{0, 0}}), -1.0),
               std::invalid_argument);
}

TEST(PathMobility, RespectsMaxSpeedBetweenSamples) {
  const PathMobility m(geom::Polyline({{0, 0}, {10, 0}, {10, 10}}), 3.0);
  for (double t = 0.0; t < 8.0; t += 0.25) {
    const double moved =
        geom::distance(m.position_at(t), m.position_at(t + 0.25));
    EXPECT_LE(moved, 3.0 * 0.25 + 1e-9);
  }
}

TEST(RandomWaypointMobility, StaysInField) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(1);
  const RandomWaypointMobility m(f, 2.0, 50.0, rng);
  for (double t = 0.0; t <= 50.0; t += 0.5) {
    EXPECT_TRUE(f.contains(m.position_at(t)));
  }
}

TEST(RandomWaypointMobility, CoversRequestedDuration) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(2);
  const RandomWaypointMobility m(f, 2.0, 50.0, rng);
  EXPECT_GE(m.path().length(), 2.0 * 50.0);
}

TEST(RandomWaypointMobility, SpeedBound) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(3);
  const RandomWaypointMobility m(f, 2.5, 30.0, rng);
  for (double t = 0.0; t < 30.0; t += 0.1) {
    EXPECT_LE(geom::distance(m.position_at(t), m.position_at(t + 0.1)),
              2.5 * 0.1 + 1e-9);
  }
}

TEST(RandomWaypointMobility, RejectsBadSpeed) {
  const geom::RectField f(10.0, 10.0);
  geom::Rng rng(4);
  EXPECT_THROW(RandomWaypointMobility(f, 0.0, 10.0, rng),
               std::invalid_argument);
}

TEST(RandomWalkMobility, StaysInField) {
  const geom::RectField f(20.0, 20.0);
  geom::Rng rng(5);
  const RandomWalkMobility m(f, {10, 10}, 2.0, 1.0, 40.0, rng);
  for (double t = 0.0; t <= 40.0; t += 0.3) {
    EXPECT_TRUE(f.contains(m.position_at(t)));
  }
}

TEST(RandomWalkMobility, StepBound) {
  const geom::RectField f(20.0, 20.0);
  geom::Rng rng(6);
  const RandomWalkMobility m(f, {10, 10}, 1.5, 1.0, 20.0, rng);
  for (double t = 0.0; t < 20.0; t += 1.0) {
    EXPECT_LE(geom::distance(m.position_at(t), m.position_at(t + 1.0)),
              1.5 + 1e-9);
  }
}

TEST(RandomWalkMobility, ClampsBeyondDuration) {
  const geom::RectField f(20.0, 20.0);
  geom::Rng rng(7);
  const RandomWalkMobility m(f, {10, 10}, 1.0, 1.0, 5.0, rng);
  EXPECT_EQ(m.position_at(5.0), m.position_at(500.0));
}

TEST(RandomWalkMobility, RejectsBadSteps) {
  const geom::RectField f(20.0, 20.0);
  geom::Rng rng(8);
  EXPECT_THROW(RandomWalkMobility(f, {1, 1}, 1.0, 0.0, 5.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace fluxfp::sim
