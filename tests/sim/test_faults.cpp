#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/deployment.hpp"
#include "net/routing.hpp"
#include "sim/measurement.hpp"
#include "sim/sniffer.hpp"

namespace fluxfp::sim {
namespace {

net::UnitDiskGraph small_network(geom::Rng& rng) {
  const geom::RectField f(30.0, 30.0);
  return net::UnitDiskGraph(net::perturbed_grid(f, 15, 15, 0.5, rng), 4.0);
}

std::vector<std::size_t> iota_sniffers(std::size_t n) {
  std::vector<std::size_t> s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = i;
  }
  return s;
}

TEST(FaultInjector, IsDeterministicAcrossInstances) {
  FaultPlan plan;
  plan.seed = 42;
  plan.crash_fraction = 0.1;
  plan.outage_prob = 0.2;
  plan.byzantine_fraction = 0.1;
  FaultInjector a(plan, 200, iota_sniffers(50));
  FaultInjector b(plan, 200, iota_sniffers(50));
  EXPECT_EQ(a.crashed(), b.crashed());
  EXPECT_EQ(a.byzantine(), b.byzantine());
  for (int round : {0, 3, 7}) {
    a.begin_round(round);
    b.begin_round(round);
    std::vector<double> ra(50, 1.0), rb(50, 1.0);
    a.corrupt(ra);
    b.corrupt(rb);
    for (std::size_t i = 0; i < ra.size(); ++i) {
      if (net::is_missing(ra[i])) {
        EXPECT_TRUE(net::is_missing(rb[i]));
      } else {
        EXPECT_DOUBLE_EQ(ra[i], rb[i]);
      }
    }
  }
}

TEST(FaultInjector, RoundsAreReplayableInAnyOrder) {
  FaultPlan plan;
  plan.seed = 7;
  plan.outage_prob = 0.3;
  FaultInjector inj(plan, 100, iota_sniffers(100));
  inj.begin_round(5);
  std::vector<double> first(100, 1.0);
  inj.corrupt(first);
  inj.begin_round(2);
  inj.begin_round(5);  // revisit
  std::vector<double> again(100, 1.0);
  inj.corrupt(again);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(net::is_missing(first[i]), net::is_missing(again[i]));
  }
}

TEST(FaultInjector, CrashesActivateAtCrashRound) {
  FaultPlan plan;
  plan.seed = 3;
  plan.crash_fraction = 0.25;
  plan.crash_round = 4;
  FaultInjector inj(plan, 400, iota_sniffers(10));
  EXPECT_TRUE(inj.crashed().empty());
  EXPECT_TRUE(inj.node_alive(0));
  inj.begin_round(3);
  EXPECT_TRUE(inj.crashed().empty());
  inj.begin_round(4);
  EXPECT_NEAR(static_cast<double>(inj.crashed().size()), 100.0, 1.0);
  for (std::size_t i : inj.crashed()) {
    EXPECT_FALSE(inj.node_alive(i));
  }
}

TEST(FaultInjector, OutageAndBurstProduceMissingReadings) {
  FaultPlan plan;
  plan.seed = 11;
  plan.outage_prob = 0.5;
  plan.burst_start = 2;
  plan.burst_length = 2;
  FaultInjector inj(plan, 1000, iota_sniffers(1000));

  std::vector<double> readings(1000, 3.0);
  inj.corrupt(readings);
  const std::size_t missing = net::count_missing(readings);
  EXPECT_NEAR(static_cast<double>(missing), 500.0, 60.0);
  EXPECT_FALSE(inj.burst_active());

  inj.begin_round(2);
  EXPECT_TRUE(inj.burst_active());
  std::vector<double> blackout(1000, 3.0);
  inj.corrupt(blackout);
  EXPECT_EQ(net::count_missing(blackout), blackout.size());

  inj.begin_round(4);  // burst over
  EXPECT_FALSE(inj.burst_active());
}

TEST(FaultInjector, ByzantineScalesSurvivingReadings) {
  FaultPlan plan;
  plan.seed = 5;
  plan.byzantine_fraction = 0.2;
  plan.byzantine_gain = 10.0;
  FaultInjector inj(plan, 500, iota_sniffers(500));
  std::vector<double> readings(500, 2.0);
  inj.corrupt(readings);
  std::size_t scaled = 0;
  for (std::size_t i = 0; i < readings.size(); ++i) {
    if (readings[i] == 20.0) {
      ++scaled;
      EXPECT_TRUE(inj.byzantine()[i]);
    } else {
      EXPECT_DOUBLE_EQ(readings[i], 2.0);
    }
  }
  EXPECT_NEAR(static_cast<double>(scaled), 100.0, 1.0);
}

TEST(FaultInjector, ComposesWithFluxNoiseDropout) {
  // FluxNoise dropout marks readings missing; the injector must leave
  // those missing (never scale a missing reading back into existence).
  FaultPlan plan;
  plan.seed = 9;
  plan.byzantine_fraction = 1.0;
  plan.byzantine_gain = 4.0;
  FaultInjector inj(plan, 100, iota_sniffers(100));
  net::FluxMap flux(100, 1.0);
  geom::Rng rng(1);
  FluxEngine::apply_noise(flux, {0.0, 0.5}, rng);
  std::vector<double> readings = flux;
  inj.corrupt(readings);
  for (std::size_t i = 0; i < readings.size(); ++i) {
    if (net::is_missing(flux[i])) {
      EXPECT_TRUE(net::is_missing(readings[i]));
    } else {
      EXPECT_DOUBLE_EQ(readings[i], 4.0 * flux[i]);
    }
  }
}

TEST(FaultInjector, RejectsBadInputs) {
  FaultPlan plan;
  plan.crash_fraction = 1.5;
  EXPECT_THROW(FaultInjector(plan, 10, iota_sniffers(5)),
               std::invalid_argument);
  FaultPlan ok;
  EXPECT_THROW(FaultInjector(ok, 0, {}), std::invalid_argument);
  EXPECT_THROW(FaultInjector(ok, 10, {10}), std::invalid_argument);
  FaultInjector inj(ok, 10, iota_sniffers(5));
  std::vector<double> wrong_size(4, 1.0);
  EXPECT_THROW(inj.corrupt(wrong_size), std::invalid_argument);
}

TEST(FaultInjector, NeverCrashesWholeNetwork) {
  FaultPlan plan;
  plan.seed = 2;
  plan.crash_fraction = 1.0;
  FaultInjector inj(plan, 20, {});
  inj.begin_round(0);
  EXPECT_LT(inj.crashed().size(), 20u);
}

TEST(SurvivingNetwork, MapsIndicesBothWays) {
  geom::Rng rng(4);
  const net::UnitDiskGraph g = small_network(rng);
  const std::vector<std::size_t> crashed = {0, 5, 17, 5};  // dup ignored
  const SurvivingNetwork s = surviving_network(g, crashed);
  EXPECT_EQ(s.graph.size(), g.size() - 3);
  EXPECT_EQ(s.from_original[0], net::kNoNode);
  EXPECT_EQ(s.from_original[5], net::kNoNode);
  EXPECT_EQ(s.from_original[17], net::kNoNode);
  for (std::size_t sv = 0; sv < s.graph.size(); ++sv) {
    const std::size_t orig = s.to_original[sv];
    EXPECT_EQ(s.from_original[orig], sv);
    EXPECT_DOUBLE_EQ(s.graph.position(sv).x, g.position(orig).x);
    EXPECT_DOUBLE_EQ(s.graph.position(sv).y, g.position(orig).y);
  }
  EXPECT_THROW(surviving_network(g, std::vector<std::size_t>{g.size()}),
               std::invalid_argument);
}

TEST(SurvivingNetwork, ExpandFillsCrashedNodesWithZeroFlux) {
  geom::Rng rng(6);
  const net::UnitDiskGraph g = small_network(rng);
  const std::vector<std::size_t> crashed = {1, 2, 3};
  const SurvivingNetwork s = surviving_network(g, crashed);
  net::FluxMap sub(s.graph.size(), 7.0);
  const net::FluxMap full = expand_to_original(s, sub);
  ASSERT_EQ(full.size(), g.size());
  EXPECT_DOUBLE_EQ(full[1], 0.0);
  EXPECT_DOUBLE_EQ(full[2], 0.0);
  EXPECT_DOUBLE_EQ(full[3], 0.0);
  EXPECT_DOUBLE_EQ(full[0], 7.0);
}

TEST(SurvivingNetwork, CollectionTreeOverSurvivorsYieldsPartialFlux) {
  // Crash a block of nodes; the surviving graph may be disconnected, but
  // the collection tree + flux pipeline must degrade to partial coverage
  // rather than fail.
  geom::Rng rng(8);
  const net::UnitDiskGraph g = small_network(rng);
  std::vector<std::size_t> crashed;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const geom::Vec2 p = g.position(i);
    if (p.x > 10.0 && p.x < 14.0) {
      crashed.push_back(i);  // vertical dead strip
    }
  }
  const SurvivingNetwork s = surviving_network(g, crashed);
  const net::CollectionTree tree =
      net::build_collection_tree(s.graph, {25.0, 15.0}, rng);
  const net::FluxMap flux = net::tree_flux(tree, 1.0);
  const net::FluxMap full = expand_to_original(s, flux);
  EXPECT_EQ(full.size(), g.size());
  double total = 0.0;
  for (double v : full) {
    EXPECT_TRUE(std::isfinite(v));
    total += v;
  }
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace fluxfp::sim
