#include "sim/sniffer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "net/deployment.hpp"

namespace fluxfp::sim {
namespace {

TEST(Sniffer, SampleCountAndRange) {
  geom::Rng rng(1);
  const auto s = sample_nodes(100, 10, rng);
  EXPECT_EQ(s.size(), 10u);
  for (std::size_t i : s) {
    EXPECT_LT(i, 100u);
  }
}

TEST(Sniffer, SamplesAreDistinctAndSorted) {
  geom::Rng rng(2);
  const auto s = sample_nodes(50, 25, rng);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  const std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), s.size());
}

TEST(Sniffer, FullSampleIsAllNodes) {
  geom::Rng rng(3);
  const auto s = sample_nodes(8, 8, rng);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(s[i], i);
  }
}

TEST(Sniffer, RejectsBadCounts) {
  geom::Rng rng(4);
  EXPECT_THROW(sample_nodes(5, 6, rng), std::invalid_argument);
  EXPECT_THROW(sample_nodes(5, 0, rng), std::invalid_argument);
}

TEST(Sniffer, FractionRounding) {
  geom::Rng rng(5);
  EXPECT_EQ(sample_nodes_fraction(900, 0.10, rng).size(), 90u);
  EXPECT_EQ(sample_nodes_fraction(900, 0.05, rng).size(), 45u);
  // Tiny fraction still yields at least one node.
  EXPECT_GE(sample_nodes_fraction(10, 0.01, rng).size(), 1u);
}

TEST(Sniffer, FullFractionIsAllNodes) {
  geom::Rng rng(14);
  const auto s = sample_nodes_fraction(37, 1.0, rng);
  ASSERT_EQ(s.size(), 37u);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i], i);
  }
}

TEST(Sniffer, FractionRejectsBadInputs) {
  geom::Rng rng(6);
  EXPECT_THROW(sample_nodes_fraction(10, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(sample_nodes_fraction(10, 1.5, rng), std::invalid_argument);
}

TEST(Sniffer, SamplingIsApproximatelyUniform) {
  geom::Rng rng(7);
  std::vector<int> hits(20, 0);
  for (int trial = 0; trial < 2000; ++trial) {
    for (std::size_t i : sample_nodes(20, 5, rng)) {
      ++hits[i];
    }
  }
  // Each node expected 2000 * 5/20 = 500 hits.
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h), 500.0, 100.0);
  }
}

net::UnitDiskGraph stratified_graph(geom::Rng& rng) {
  const geom::RectField f(30.0, 30.0);
  return net::UnitDiskGraph(net::perturbed_grid(f, 20, 20, 0.5, rng), 3.0);
}

TEST(StratifiedSniffer, CountDistinctSorted) {
  geom::Rng rng(10);
  const net::UnitDiskGraph g = stratified_graph(rng);
  const auto s = sample_nodes_stratified(g, 25, rng);
  EXPECT_EQ(s.size(), 25u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  const std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), s.size());
}

TEST(StratifiedSniffer, RejectsBadCounts) {
  geom::Rng rng(11);
  const net::UnitDiskGraph g = stratified_graph(rng);
  EXPECT_THROW(sample_nodes_stratified(g, 0, rng), std::invalid_argument);
  EXPECT_THROW(sample_nodes_stratified(g, g.size() + 1, rng),
               std::invalid_argument);
}

TEST(StratifiedSniffer, FullBudgetTakesAllNodes) {
  geom::Rng rng(12);
  const net::UnitDiskGraph g = stratified_graph(rng);
  const auto s = sample_nodes_stratified(g, g.size(), rng);
  EXPECT_EQ(s.size(), g.size());
}

TEST(StratifiedSniffer, CoversTheFieldBetterThanRandomWorstCase) {
  // Max distance from any field point (on a probe grid) to its nearest
  // sniffer: stratified placement bounds it deterministically.
  geom::Rng rng(13);
  const net::UnitDiskGraph g = stratified_graph(rng);
  const std::size_t budget = 16;
  auto coverage_radius = [&](const std::vector<std::size_t>& sniffers) {
    double worst = 0.0;
    for (double x = 1.0; x < 30.0; x += 2.0) {
      for (double y = 1.0; y < 30.0; y += 2.0) {
        double best = 1e18;
        for (std::size_t s : sniffers) {
          best = std::min(best, geom::distance({x, y}, g.position(s)));
        }
        worst = std::max(worst, best);
      }
    }
    return worst;
  };
  const double strat = coverage_radius(sample_nodes_stratified(g, budget, rng));
  // Average over several random placements (any one draw could be lucky).
  double rand_acc = 0.0;
  const int reps = 8;
  for (int r = 0; r < reps; ++r) {
    rand_acc += coverage_radius(sample_nodes(g.size(), budget, rng));
  }
  EXPECT_LT(strat, rand_acc / reps);
}

TEST(Gather, ReadsInOrder) {
  const net::FluxMap flux{10, 20, 30, 40};
  const std::vector<std::size_t> idx{3, 0, 2};
  const auto got = gather(flux, idx);
  EXPECT_EQ(got, (std::vector<double>{40, 10, 30}));
}

TEST(Gather, RejectsOutOfRange) {
  const net::FluxMap flux{1, 2};
  const std::vector<std::size_t> idx{5};
  EXPECT_THROW(gather(flux, idx), std::out_of_range);
}

}  // namespace
}  // namespace fluxfp::sim
