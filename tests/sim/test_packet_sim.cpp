#include "sim/packet_sim.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "net/deployment.hpp"

namespace fluxfp::sim {
namespace {

struct Fixture {
  geom::RectField field{30.0, 30.0};
  net::UnitDiskGraph graph;
  net::CollectionTree tree;

  explicit Fixture(std::uint64_t seed)
      : graph(make_graph(seed)), tree(make_tree(graph, seed)) {}

  static net::UnitDiskGraph make_graph(std::uint64_t seed) {
    geom::Rng rng(seed);
    const geom::RectField f(30.0, 30.0);
    return net::UnitDiskGraph(net::perturbed_grid(f, 15, 15, 0.5, rng), 4.0);
  }
  static net::CollectionTree make_tree(const net::UnitDiskGraph& g,
                                       std::uint64_t seed) {
    geom::Rng rng(seed + 1);
    return net::build_collection_tree(g, {15.0, 15.0}, rng);
  }
};

TEST(PacketSim, RejectsBadConfig) {
  PacketSimConfig bad;
  bad.tx_time = 0.0;
  EXPECT_THROW(PacketLevelSimulator{bad}, std::invalid_argument);
  bad = {};
  bad.loss_prob = 1.0;
  EXPECT_THROW(PacketLevelSimulator{bad}, std::invalid_argument);
  bad = {};
  bad.max_retries = -1;
  EXPECT_THROW(PacketLevelSimulator{bad}, std::invalid_argument);
}

TEST(PacketSim, RejectsBadInputs) {
  const Fixture fx(1);
  const PacketLevelSimulator sim;
  geom::Rng rng(2);
  EXPECT_THROW(sim.simulate(fx.graph, fx.tree, -1.0, rng),
               std::invalid_argument);
  net::CollectionTree small;
  small.parent.resize(3);
  small.hop.resize(3);
  EXPECT_THROW(sim.simulate(fx.graph, small, 1.0, rng),
               std::invalid_argument);
}

TEST(PacketSim, LosslessTxCountsMatchAnalyticTreeFlux) {
  // The core equivalence claim: with no losses and integer stretch, the
  // per-node frame counts reproduce stretch * |subtree| exactly for every
  // non-root node; the root absorbs for the sink.
  const Fixture fx(3);
  const PacketLevelSimulator sim;
  geom::Rng rng(4);
  const PacketSimResult res = sim.simulate(fx.graph, fx.tree, 2.0, rng);
  const net::FluxMap analytic = net::tree_flux(fx.tree, 2.0);
  for (std::size_t i = 0; i < fx.graph.size(); ++i) {
    if (i == fx.tree.root) {
      EXPECT_DOUBLE_EQ(res.tx_counts[i], 0.0);
    } else {
      EXPECT_DOUBLE_EQ(res.tx_counts[i], analytic[i]) << "node " << i;
    }
  }
}

TEST(PacketSim, LosslessEverythingDelivered) {
  const Fixture fx(5);
  const PacketLevelSimulator sim;
  geom::Rng rng(6);
  const PacketSimResult res = sim.simulate(fx.graph, fx.tree, 1.0, rng);
  EXPECT_EQ(res.generated, fx.graph.size());
  EXPECT_EQ(res.delivered, res.generated);
  EXPECT_EQ(res.dropped, 0u);
}

TEST(PacketSim, FractionalStretchGeneratesExpectedFrames) {
  const Fixture fx(7);
  const PacketLevelSimulator sim;
  geom::Rng rng(8);
  double total = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(
        sim.simulate(fx.graph, fx.tree, 1.5, rng).generated);
  }
  const double expected = 1.5 * static_cast<double>(fx.graph.size());
  EXPECT_NEAR(total / trials, expected, 0.05 * expected);
}

TEST(PacketSim, AccountingBalances) {
  // generated = delivered + dropped, under any loss rate.
  const Fixture fx(9);
  PacketSimConfig cfg;
  cfg.loss_prob = 0.2;
  cfg.max_retries = 1;
  const PacketLevelSimulator sim(cfg);
  geom::Rng rng(10);
  const PacketSimResult res = sim.simulate(fx.graph, fx.tree, 1.0, rng);
  EXPECT_EQ(res.generated, res.delivered + res.dropped);
  EXPECT_GT(res.dropped, 0u);
}

TEST(PacketSim, RetransmissionsInflateTxCounts) {
  const Fixture fx(11);
  PacketSimConfig lossy;
  lossy.loss_prob = 0.3;
  lossy.max_retries = 3;
  geom::Rng rng_a(12);
  geom::Rng rng_b(12);
  const PacketSimResult clean =
      PacketLevelSimulator{}.simulate(fx.graph, fx.tree, 1.0, rng_a);
  const PacketSimResult noisy =
      PacketLevelSimulator{lossy}.simulate(fx.graph, fx.tree, 1.0, rng_b);
  const double clean_total =
      std::accumulate(clean.tx_counts.begin(), clean.tx_counts.end(), 0.0);
  const double noisy_total =
      std::accumulate(noisy.tx_counts.begin(), noisy.tx_counts.end(), 0.0);
  // Losses remove relayed frames but retransmissions add frames; with
  // retries = 3 the per-link expected transmissions rise by ~1/(1-p)-ish.
  EXPECT_NE(noisy_total, clean_total);
}

TEST(PacketSim, MakespanFitsSecondsLevelWindow) {
  // §3.A: ΔT can be bounded at the seconds level. With 1 ms frames a full
  // 225-node collection completes well within one second.
  const Fixture fx(13);
  const PacketLevelSimulator sim;
  geom::Rng rng(14);
  const PacketSimResult res = sim.simulate(fx.graph, fx.tree, 2.0, rng);
  EXPECT_GT(res.makespan, 0.0);
  EXPECT_LT(res.makespan, 1.0);
}

TEST(PacketSim, MakespanGrowsWithStretch) {
  const Fixture fx(15);
  const PacketLevelSimulator sim;
  geom::Rng rng_a(16);
  geom::Rng rng_b(16);
  const double m1 = sim.simulate(fx.graph, fx.tree, 1.0, rng_a).makespan;
  const double m3 = sim.simulate(fx.graph, fx.tree, 3.0, rng_b).makespan;
  EXPECT_GT(m3, m1);
}

TEST(PacketSim, ZeroStretchNoTraffic) {
  const Fixture fx(17);
  const PacketLevelSimulator sim;
  geom::Rng rng(18);
  const PacketSimResult res = sim.simulate(fx.graph, fx.tree, 0.0, rng);
  EXPECT_EQ(res.generated, 0u);
  EXPECT_EQ(res.delivered, 0u);
  for (double c : res.tx_counts) {
    EXPECT_DOUBLE_EQ(c, 0.0);
  }
}

TEST(PacketSim, HeavyLossReducesDeliveredFraction) {
  const Fixture fx(19);
  PacketSimConfig heavy;
  heavy.loss_prob = 0.5;
  heavy.max_retries = 0;
  const PacketLevelSimulator sim(heavy);
  geom::Rng rng(20);
  const PacketSimResult res = sim.simulate(fx.graph, fx.tree, 1.0, rng);
  // Multi-hop delivery through p=0.5 links without retries: most packets
  // from distant nodes die; delivered fraction drops well below 1.
  EXPECT_LT(static_cast<double>(res.delivered),
            0.7 * static_cast<double>(res.generated));
}

}  // namespace
}  // namespace fluxfp::sim
