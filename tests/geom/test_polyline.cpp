#include "geom/polyline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fluxfp::geom {
namespace {

TEST(Polyline, EmptyPolyline) {
  const Polyline p;
  EXPECT_TRUE(p.empty());
  EXPECT_DOUBLE_EQ(p.length(), 0.0);
  EXPECT_THROW(p.at_arclength(0.0), std::logic_error);
  EXPECT_THROW(p.distance_to({0, 0}), std::logic_error);
}

TEST(Polyline, SinglePointIsDegenerate) {
  const Polyline p({{3, 4}});
  EXPECT_DOUBLE_EQ(p.length(), 0.0);
  EXPECT_EQ(p.at_arclength(0.0), Vec2(3, 4));
  EXPECT_EQ(p.at_arclength(5.0), Vec2(3, 4));
  EXPECT_DOUBLE_EQ(p.distance_to({0, 0}), 5.0);
}

TEST(Polyline, LengthOfSegments) {
  const Polyline p({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(p.length(), 7.0);
}

TEST(Polyline, AtArclengthInterpolates) {
  const Polyline p({{0, 0}, {10, 0}});
  EXPECT_EQ(p.at_arclength(2.5), Vec2(2.5, 0));
  EXPECT_EQ(p.at_arclength(0.0), Vec2(0, 0));
  EXPECT_EQ(p.at_arclength(10.0), Vec2(10, 0));
}

TEST(Polyline, AtArclengthClamps) {
  const Polyline p({{0, 0}, {10, 0}});
  EXPECT_EQ(p.at_arclength(-1.0), Vec2(0, 0));
  EXPECT_EQ(p.at_arclength(99.0), Vec2(10, 0));
}

TEST(Polyline, AtArclengthCrossesCorners) {
  const Polyline p({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_EQ(p.at_arclength(3.0), Vec2(3, 0));
  EXPECT_EQ(p.at_arclength(5.0), Vec2(3, 2));
}

TEST(Polyline, AtFraction) {
  const Polyline p({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_EQ(p.at_fraction(0.0), Vec2(0, 0));
  EXPECT_EQ(p.at_fraction(1.0), Vec2(3, 4));
  EXPECT_EQ(p.at_fraction(0.5), Vec2(3, 0.5));
}

TEST(Polyline, DistanceToSegmentInterior) {
  const Polyline p({{0, 0}, {10, 0}});
  EXPECT_DOUBLE_EQ(p.distance_to({5, 3}), 3.0);
  EXPECT_DOUBLE_EQ(p.distance_to({-4, 3}), 5.0);  // beyond the start cap
}

TEST(Polyline, DistanceToPicksNearestSegment) {
  const Polyline p({{0, 0}, {10, 0}, {10, 10}});
  EXPECT_DOUBLE_EQ(p.distance_to({11, 9}), 1.0);
}

TEST(Polyline, PushBackExtends) {
  Polyline p;
  p.push_back({0, 0});
  p.push_back({4, 0});
  EXPECT_DOUBLE_EQ(p.length(), 4.0);
  p.push_back({4, 3});
  EXPECT_DOUBLE_EQ(p.length(), 7.0);
  EXPECT_EQ(p.at_arclength(5.0), Vec2(4, 1));
}

TEST(Polyline, DuplicateWaypointsHandled) {
  const Polyline p({{0, 0}, {0, 0}, {2, 0}});
  EXPECT_DOUBLE_EQ(p.length(), 2.0);
  EXPECT_EQ(p.at_arclength(1.0), Vec2(1, 0));
}

}  // namespace
}  // namespace fluxfp::geom
