#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "geom/field.hpp"
#include "geom/sampling.hpp"

namespace fluxfp::geom {
namespace {

TEST(CircleField, RejectsBadRadius) {
  EXPECT_THROW(CircleField({0, 0}, 0.0), std::invalid_argument);
  EXPECT_THROW(CircleField({0, 0}, -2.0), std::invalid_argument);
}

TEST(CircleField, BasicProperties) {
  const CircleField f({10, 10}, 5.0);
  EXPECT_DOUBLE_EQ(f.radius(), 5.0);
  EXPECT_DOUBLE_EQ(f.diameter(), 10.0);
  EXPECT_NEAR(f.area(), 25.0 * std::numbers::pi, 1e-12);
  EXPECT_EQ(f.center(), Vec2(10, 10));
}

TEST(CircleField, Contains) {
  const CircleField f({0, 0}, 2.0);
  EXPECT_TRUE(f.contains({0, 0}));
  EXPECT_TRUE(f.contains({2, 0}));
  EXPECT_FALSE(f.contains({2.01, 0}));
  EXPECT_TRUE(f.contains({2.01, 0}, 0.02));
}

TEST(CircleField, ClampProjectsToDisc) {
  const CircleField f({0, 0}, 2.0);
  EXPECT_EQ(f.clamp({1, 0}), Vec2(1, 0));
  const Vec2 p = f.clamp({10, 0});
  EXPECT_NEAR(p.x, 2.0, 1e-12);
  EXPECT_NEAR(p.y, 0.0, 1e-12);
}

TEST(CircleField, BoundaryDistanceFromCenter) {
  const CircleField f({5, 5}, 3.0);
  EXPECT_NEAR(f.boundary_distance({5, 5}, {1, 0}), 3.0, 1e-12);
  EXPECT_NEAR(f.boundary_distance({5, 5}, {0.3, -0.9}), 3.0, 1e-12);
}

TEST(CircleField, BoundaryDistanceOffCenter) {
  const CircleField f({0, 0}, 2.0);
  EXPECT_NEAR(f.boundary_distance({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(f.boundary_distance({1, 0}, {-1, 0}), 3.0, 1e-12);
}

TEST(CircleField, BoundaryDistanceRejectsBadInputs) {
  const CircleField f({0, 0}, 2.0);
  EXPECT_THROW(f.boundary_distance({5, 5}, {1, 0}), std::invalid_argument);
  EXPECT_THROW(f.boundary_distance({0, 0}, {0, 0}), std::invalid_argument);
}

TEST(CircleField, NearestBoundaryDistance) {
  const CircleField f({0, 0}, 2.0);
  EXPECT_DOUBLE_EQ(f.nearest_boundary_distance({0, 0}), 2.0);
  EXPECT_DOUBLE_EQ(f.nearest_boundary_distance({1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(f.nearest_boundary_distance({5, 0}), 0.0);
}

TEST(CircleField, SamplingStaysInside) {
  const CircleField f({3, 4}, 2.5);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(f.contains(uniform_in_field(f, rng), 1e-12));
  }
}

TEST(CircleField, SamplingIsAreaUniform) {
  // Half the samples land within radius/sqrt(2).
  const CircleField f({0, 0}, 1.0);
  Rng rng(2);
  int inner = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (distance(uniform_in_field(f, rng), {0, 0}) <
        1.0 / std::numbers::sqrt2) {
      ++inner;
    }
  }
  EXPECT_NEAR(static_cast<double>(inner) / n, 0.5, 0.02);
}

// Property: the boundary-exit point lies on the circle.
class CircleBoundaryProperty : public ::testing::TestWithParam<int> {};

TEST_P(CircleBoundaryProperty, ExitPointOnCircle) {
  std::mt19937_64 rng(static_cast<unsigned long>(GetParam()));
  const CircleField f({5, 5}, 4.0);
  const Vec2 origin = uniform_in_field(f, rng);
  std::uniform_real_distribution<double> angle(0.0, 2.0 * std::numbers::pi);
  const double a = angle(rng);
  const Vec2 dir{std::cos(a), std::sin(a)};
  const double l = f.boundary_distance(origin, dir);
  const Vec2 exit = origin + dir * l;
  EXPECT_NEAR(distance(exit, f.center()), 4.0, 1e-9);
  // And l is never larger than the diameter.
  EXPECT_LE(l, f.diameter() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircleBoundaryProperty,
                         ::testing::Range(0, 30));

// The §4.A contrast: the boundary distance as a function of the direction
// angle is smooth for a circle but kinked for a rectangle. Check via the
// maximum second difference along the angle sweep.
TEST(FieldSmoothness, CircleSmootherThanRectangle) {
  const CircleField circle({15, 15}, 15.0);
  const RectField rect(30.0, 30.0);
  const Vec2 p{10.0, 7.0};
  auto max_second_difference = [&](const Field& f) {
    const int steps = 720;
    double prev2 = 0.0, prev1 = 0.0, worst = 0.0;
    for (int i = 0; i <= steps; ++i) {
      const double a = 2.0 * std::numbers::pi * i / steps;
      const double l = f.boundary_distance(p, {std::cos(a), std::sin(a)});
      if (i >= 2) {
        worst = std::max(worst, std::abs(l - 2.0 * prev1 + prev2));
      }
      prev2 = prev1;
      prev1 = l;
    }
    return worst;
  };
  EXPECT_LT(max_second_difference(circle),
            0.1 * max_second_difference(rect));
}

}  // namespace
}  // namespace fluxfp::geom
