#include "geom/field.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

namespace fluxfp::geom {
namespace {

TEST(RectField, RejectsNonPositiveDimensions) {
  EXPECT_THROW(RectField(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(RectField(10.0, -1.0), std::invalid_argument);
}

TEST(RectField, BasicProperties) {
  const RectField f(30.0, 40.0);
  EXPECT_DOUBLE_EQ(f.width(), 30.0);
  EXPECT_DOUBLE_EQ(f.height(), 40.0);
  EXPECT_DOUBLE_EQ(f.diameter(), 50.0);
  EXPECT_DOUBLE_EQ(f.area(), 1200.0);
  EXPECT_EQ(f.center(), Vec2(15, 20));
}

TEST(RectField, Contains) {
  const RectField f(10.0, 10.0);
  EXPECT_TRUE(f.contains({5, 5}));
  EXPECT_TRUE(f.contains({0, 0}));
  EXPECT_TRUE(f.contains({10, 10}));
  EXPECT_FALSE(f.contains({10.01, 5}));
  EXPECT_FALSE(f.contains({-0.01, 5}));
  EXPECT_TRUE(f.contains({10.01, 5}, 0.02));
}

TEST(RectField, Clamp) {
  const RectField f(10.0, 10.0);
  EXPECT_EQ(f.clamp({-1, 5}), Vec2(0, 5));
  EXPECT_EQ(f.clamp({11, 12}), Vec2(10, 10));
  EXPECT_EQ(f.clamp({3, 4}), Vec2(3, 4));
}

TEST(RectField, BoundaryDistanceAlongAxes) {
  const RectField f(30.0, 30.0);
  const Vec2 p{10, 10};
  EXPECT_DOUBLE_EQ(f.boundary_distance(p, {1, 0}), 20.0);
  EXPECT_DOUBLE_EQ(f.boundary_distance(p, {-1, 0}), 10.0);
  EXPECT_DOUBLE_EQ(f.boundary_distance(p, {0, 1}), 20.0);
  EXPECT_DOUBLE_EQ(f.boundary_distance(p, {0, -1}), 10.0);
}

TEST(RectField, BoundaryDistanceDiagonal) {
  const RectField f(10.0, 10.0);
  // From the center toward the corner: half the diagonal.
  EXPECT_NEAR(f.boundary_distance({5, 5}, {1, 1}),
              5.0 * std::numbers::sqrt2, 1e-12);
}

TEST(RectField, BoundaryDistanceDirectionNeedNotBeNormalized) {
  const RectField f(30.0, 30.0);
  EXPECT_DOUBLE_EQ(f.boundary_distance({10, 10}, {100, 0}),
                   f.boundary_distance({10, 10}, {0.001, 0}));
}

TEST(RectField, BoundaryDistanceFromBoundaryPointOutward) {
  const RectField f(10.0, 10.0);
  EXPECT_DOUBLE_EQ(f.boundary_distance({0, 5}, {-1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(f.boundary_distance({0, 5}, {1, 0}), 10.0);
}

TEST(RectField, BoundaryDistanceRejectsBadInputs) {
  const RectField f(10.0, 10.0);
  EXPECT_THROW(f.boundary_distance({20, 5}, {1, 0}), std::invalid_argument);
  EXPECT_THROW(f.boundary_distance({5, 5}, {0, 0}), std::invalid_argument);
}

TEST(RectField, BoundaryDistanceThroughNode) {
  const RectField f(30.0, 30.0);
  // Ray from (10,10) through (20,10) exits at x=30: distance 20.
  EXPECT_DOUBLE_EQ(f.boundary_distance_through({10, 10}, {20, 10}), 20.0);
}

TEST(RectField, BoundaryDistanceThroughDegenerateUsesNearestEdge) {
  const RectField f(30.0, 30.0);
  EXPECT_DOUBLE_EQ(f.boundary_distance_through({3, 10}, {3, 10}), 3.0);
  EXPECT_DOUBLE_EQ(f.boundary_distance_through({15, 29}, {15, 29}), 1.0);
}

// Property: the exit point really lies on the boundary and the distance is
// at least the distance to the through-point for interior nodes.
class BoundaryDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoundaryDistanceProperty, ExitPointOnBoundaryAndBeyondNode) {
  std::mt19937_64 rng(static_cast<unsigned long>(GetParam()));
  const RectField f(30.0, 20.0);
  std::uniform_real_distribution<double> ux(0.0, 30.0);
  std::uniform_real_distribution<double> uy(0.0, 20.0);
  const Vec2 origin{ux(rng), uy(rng)};
  const Vec2 through{ux(rng), uy(rng)};
  if (distance(origin, through) < 1e-9) {
    GTEST_SKIP() << "degenerate pair";
  }
  const double l = f.boundary_distance_through(origin, through);
  // l >= distance to the through point (node lies between sink & boundary).
  EXPECT_GE(l, distance(origin, through) - 1e-9);
  // The exit point lies on the boundary.
  const Vec2 exit = origin + (through - origin).normalized() * l;
  const bool on_x = std::abs(exit.x) < 1e-9 || std::abs(exit.x - 30.0) < 1e-9;
  const bool on_y = std::abs(exit.y) < 1e-9 || std::abs(exit.y - 20.0) < 1e-9;
  EXPECT_TRUE(on_x || on_y) << "exit " << exit;
  EXPECT_TRUE(f.contains(exit, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundaryDistanceProperty,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace fluxfp::geom
