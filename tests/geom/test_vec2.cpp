#include "geom/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

namespace fluxfp::geom {
namespace {

TEST(Vec2, DefaultIsZero) {
  const Vec2 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
}

TEST(Vec2, Addition) {
  EXPECT_EQ(Vec2(1, 2) + Vec2(3, 4), Vec2(4, 6));
}

TEST(Vec2, Subtraction) {
  EXPECT_EQ(Vec2(5, 7) - Vec2(2, 3), Vec2(3, 4));
}

TEST(Vec2, ScalarMultiplyBothSides) {
  EXPECT_EQ(Vec2(1, -2) * 3.0, Vec2(3, -6));
  EXPECT_EQ(3.0 * Vec2(1, -2), Vec2(3, -6));
}

TEST(Vec2, ScalarDivide) {
  EXPECT_EQ(Vec2(2, 4) / 2.0, Vec2(1, 2));
}

TEST(Vec2, Negation) {
  EXPECT_EQ(-Vec2(1, -2), Vec2(-1, 2));
}

TEST(Vec2, CompoundAssignments) {
  Vec2 v{1, 1};
  v += {2, 3};
  EXPECT_EQ(v, Vec2(3, 4));
  v -= {1, 1};
  EXPECT_EQ(v, Vec2(2, 3));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4, 6));
  v /= 4.0;
  EXPECT_EQ(v, Vec2(1, 1.5));
}

TEST(Vec2, DotProduct) {
  EXPECT_DOUBLE_EQ(dot(Vec2(1, 2), Vec2(3, 4)), 11.0);
  EXPECT_DOUBLE_EQ(dot(Vec2(1, 0), Vec2(0, 1)), 0.0);
}

TEST(Vec2, CrossProduct) {
  EXPECT_DOUBLE_EQ(cross(Vec2(1, 0), Vec2(0, 1)), 1.0);
  EXPECT_DOUBLE_EQ(cross(Vec2(0, 1), Vec2(1, 0)), -1.0);
  EXPECT_DOUBLE_EQ(cross(Vec2(2, 3), Vec2(4, 6)), 0.0);
}

TEST(Vec2, Norm) {
  EXPECT_DOUBLE_EQ(Vec2(3, 4).norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec2(3, 4).norm2(), 25.0);
  EXPECT_DOUBLE_EQ(Vec2().norm(), 0.0);
}

TEST(Vec2, NormalizedUnitLength) {
  const Vec2 u = Vec2(3, 4).normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_NEAR(u.x, 0.6, 1e-12);
  EXPECT_NEAR(u.y, 0.8, 1e-12);
}

TEST(Vec2, NormalizedZeroVectorIsZero) {
  EXPECT_EQ(Vec2().normalized(), Vec2());
}

TEST(Vec2, Distance) {
  EXPECT_DOUBLE_EQ(distance(Vec2(0, 0), Vec2(3, 4)), 5.0);
  EXPECT_DOUBLE_EQ(distance2(Vec2(1, 1), Vec2(4, 5)), 25.0);
}

TEST(Vec2, DistanceIsSymmetric) {
  const Vec2 a{1.5, -2.25};
  const Vec2 b{-0.5, 7.0};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
}

TEST(Vec2, Lerp) {
  EXPECT_EQ(lerp(Vec2(0, 0), Vec2(10, 20), 0.0), Vec2(0, 0));
  EXPECT_EQ(lerp(Vec2(0, 0), Vec2(10, 20), 1.0), Vec2(10, 20));
  EXPECT_EQ(lerp(Vec2(0, 0), Vec2(10, 20), 0.5), Vec2(5, 10));
}

TEST(Vec2, StreamOutput) {
  std::ostringstream ss;
  ss << Vec2{1.5, -2};
  EXPECT_EQ(ss.str(), "(1.5, -2)");
}

class Vec2TriangleInequality : public ::testing::TestWithParam<int> {};

TEST_P(Vec2TriangleInequality, Holds) {
  std::mt19937_64 rng(static_cast<unsigned long>(GetParam()));
  std::uniform_real_distribution<double> u(-100.0, 100.0);
  const Vec2 a{u(rng), u(rng)};
  const Vec2 b{u(rng), u(rng)};
  const Vec2 c{u(rng), u(rng)};
  EXPECT_LE(distance(a, c), distance(a, b) + distance(b, c) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Vec2TriangleInequality,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace fluxfp::geom
