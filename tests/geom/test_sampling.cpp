#include "geom/sampling.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace fluxfp::geom {
namespace {

TEST(Sampling, UniformInFieldStaysInside) {
  const RectField f(30.0, 20.0);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(f.contains(uniform_in_field(f, rng)));
  }
}

TEST(Sampling, UniformInFieldCoversQuadrants) {
  const RectField f(10.0, 10.0);
  Rng rng(11);
  int quadrant[4] = {0, 0, 0, 0};
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p = uniform_in_field(f, rng);
    quadrant[(p.x > 5.0 ? 1 : 0) + (p.y > 5.0 ? 2 : 0)]++;
  }
  for (int q = 0; q < 4; ++q) {
    EXPECT_GT(quadrant[q], 350) << "quadrant " << q << " undersampled";
  }
}

TEST(Sampling, UniformInDiscWithinRadius) {
  Rng rng(3);
  const Vec2 c{5, 5};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(distance(uniform_in_disc(c, 2.5, rng), c), 2.5 + 1e-12);
  }
}

TEST(Sampling, UniformInDiscIsAreaUniform) {
  // Half the samples should land within radius/sqrt(2) of the center.
  Rng rng(5);
  int inner = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (distance(uniform_in_disc({0, 0}, 1.0, rng), {0, 0}) <
        1.0 / std::numbers::sqrt2) {
      ++inner;
    }
  }
  EXPECT_NEAR(static_cast<double>(inner) / n, 0.5, 0.02);
}

TEST(Sampling, UniformInDiscClippedStaysInField) {
  const RectField f(10.0, 10.0);
  Rng rng(13);
  // Disc mostly outside the field.
  for (int i = 0; i < 500; ++i) {
    const Vec2 p = uniform_in_disc_clipped({0.5, 0.5}, 4.0, f, rng);
    EXPECT_TRUE(f.contains(p));
  }
}

TEST(Sampling, UniformInDiscClippedDegenerateFallsBackToClamp) {
  const RectField f(10.0, 10.0);
  Rng rng(17);
  // Center far outside: rejection always fails, clamp fallback triggers.
  const Vec2 p = uniform_in_disc_clipped({50.0, 50.0}, 1.0, f, rng, 4);
  EXPECT_TRUE(f.contains(p));
}

TEST(Sampling, UniformOnCircleExactRadius) {
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NEAR(distance(uniform_on_circle({3, 4}, 2.0, rng), {3, 4}), 2.0,
                1e-12);
  }
}

TEST(Sampling, UniformPointsCount) {
  const RectField f(5.0, 5.0);
  Rng rng(29);
  EXPECT_EQ(uniform_points(f, 37, rng).size(), 37u);
}

TEST(Sampling, Reproducibility) {
  const RectField f(10.0, 10.0);
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(uniform_in_field(f, a), uniform_in_field(f, b));
  }
}

}  // namespace
}  // namespace fluxfp::geom
