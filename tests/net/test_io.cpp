#include "net/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "net/deployment.hpp"

namespace fluxfp::net {
namespace {

TEST(NetIo, PositionsRoundTrip) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(1);
  const auto pts = uniform_random(f, 50, rng);
  std::stringstream ss;
  write_positions_csv(ss, pts);
  const auto back = read_positions_csv(ss);
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(back[i].x, pts[i].x, 1e-4);
    EXPECT_NEAR(back[i].y, pts[i].y, 1e-4);
  }
}

TEST(NetIo, PositionsHeaderWritten) {
  std::stringstream ss;
  write_positions_csv(ss, {{1, 2}});
  std::string first;
  std::getline(ss, first);
  EXPECT_EQ(first, "id,x,y");
}

TEST(NetIo, PositionsRejectMalformed) {
  std::stringstream wrong_fields("id,x,y\n0,1\n");
  EXPECT_THROW(read_positions_csv(wrong_fields), std::runtime_error);
  std::stringstream bad_num("0,abc,2\n");
  EXPECT_THROW(read_positions_csv(bad_num), std::runtime_error);
  std::stringstream bad_order("0,1,1\n2,2,2\n");
  EXPECT_THROW(read_positions_csv(bad_order), std::runtime_error);
}

TEST(NetIo, FluxRoundTrip) {
  const FluxMap flux{0.0, 1.5, 42.25, 900.0};
  std::stringstream ss;
  write_flux_csv(ss, flux);
  const FluxMap back = read_flux_csv(ss);
  ASSERT_EQ(back.size(), flux.size());
  for (std::size_t i = 0; i < flux.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i], flux[i]);
  }
}

TEST(NetIo, FluxWithoutHeaderAccepted) {
  std::stringstream ss("0,1.5\n1,2.5\n");
  const FluxMap back = read_flux_csv(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back[1], 2.5);
}

TEST(NetIo, EmptyStreamsYieldEmpty) {
  std::stringstream a(""), b("id,x,y\n"), c("id,flux\n");
  EXPECT_TRUE(read_positions_csv(a).empty());
  EXPECT_TRUE(read_positions_csv(b).empty());
  EXPECT_TRUE(read_flux_csv(c).empty());
}

}  // namespace
}  // namespace fluxfp::net
