#include "net/deployment.hpp"

#include <gtest/gtest.h>

namespace fluxfp::net {
namespace {

TEST(Deployment, PerturbedGridCountAndBounds) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(1);
  const auto pts = perturbed_grid(f, 30, 30, 0.5, rng);
  EXPECT_EQ(pts.size(), 900u);
  for (const auto& p : pts) {
    EXPECT_TRUE(f.contains(p));
  }
}

TEST(Deployment, PerturbedGridZeroJitterIsExactGrid) {
  const geom::RectField f(10.0, 10.0);
  geom::Rng rng(2);
  const auto pts = perturbed_grid(f, 2, 2, 0.0, rng);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0], geom::Vec2(2.5, 2.5));
  EXPECT_EQ(pts[3], geom::Vec2(7.5, 7.5));
}

TEST(Deployment, PerturbedGridJitterStaysInCell) {
  const geom::RectField f(10.0, 10.0);
  geom::Rng rng(3);
  const auto pts = perturbed_grid(f, 5, 5, 1.0, rng);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      const geom::Vec2 p = pts[r * 5 + c];
      EXPECT_GE(p.x, static_cast<double>(c) * 2.0 - 1e-12);
      EXPECT_LE(p.x, static_cast<double>(c + 1) * 2.0 + 1e-12);
      EXPECT_GE(p.y, static_cast<double>(r) * 2.0 - 1e-12);
      EXPECT_LE(p.y, static_cast<double>(r + 1) * 2.0 + 1e-12);
    }
  }
}

TEST(Deployment, PerturbedGridRejectsBadArgs) {
  const geom::RectField f(10.0, 10.0);
  geom::Rng rng(4);
  EXPECT_THROW(perturbed_grid(f, 0, 5, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(perturbed_grid(f, 5, 5, 1.5, rng), std::invalid_argument);
}

TEST(Deployment, UniformRandomCountAndBounds) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(5);
  const auto pts = uniform_random(f, 500, rng);
  EXPECT_EQ(pts.size(), 500u);
  for (const auto& p : pts) {
    EXPECT_TRUE(f.contains(p));
  }
}

TEST(Deployment, DeployGridApproximatesCount) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(6);
  const auto pts = deploy(DeploymentKind::kPerturbedGrid, f, 900, rng);
  EXPECT_EQ(pts.size(), 900u);  // 30x30 exactly on a square field
}

TEST(Deployment, DeployGridNonSquareField) {
  const geom::RectField f(40.0, 10.0);
  geom::Rng rng(7);
  const auto pts = deploy(DeploymentKind::kPerturbedGrid, f, 400, rng);
  // rows*cols within 15% of the request.
  EXPECT_NEAR(static_cast<double>(pts.size()), 400.0, 60.0);
}

TEST(Deployment, DeployRandomExactCount) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(8);
  EXPECT_EQ(deploy(DeploymentKind::kUniformRandom, f, 1234, rng).size(),
            1234u);
}

TEST(Deployment, ToString) {
  EXPECT_STREQ(to_string(DeploymentKind::kPerturbedGrid), "perturbed-grid");
  EXPECT_STREQ(to_string(DeploymentKind::kUniformRandom), "random");
}

}  // namespace
}  // namespace fluxfp::net
