// Link enumeration — the site-key layer of the RSS backend. Every
// downstream consumer (readings vectors, FluxEvent::node keys, trace
// records) indexes links by position in this list, so the order must be
// deterministic and the dedup exact.

#include "net/links.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "geom/field.hpp"
#include "geom/sampling.hpp"
#include "net/deployment.hpp"
#include "net/flux.hpp"

namespace fluxfp::net {
namespace {

UnitDiskGraph small_graph() {
  geom::Rng rng(7);
  const geom::RectField field(12.0, 12.0);
  return UnitDiskGraph(perturbed_grid(field, 4, 4, 0.2, rng), 4.5);
}

TEST(EnumerateLinks, DeterministicOrderAndNoDuplicates) {
  const UnitDiskGraph g = small_graph();
  const std::vector<Link> links = enumerate_links(g);
  ASSERT_FALSE(links.empty());
  for (std::size_t i = 0; i < links.size(); ++i) {
    EXPECT_LT(links[i].a, links[i].b) << "link " << i;
    EXPECT_LT(links[i].b, g.size());
    if (i > 0) {
      // Strictly ascending (a, b) lexicographic order — also proves each
      // undirected edge appears exactly once.
      const bool ascending =
          links[i - 1].a < links[i].a ||
          (links[i - 1].a == links[i].a && links[i - 1].b < links[i].b);
      EXPECT_TRUE(ascending) << "link " << i;
    }
  }
  // Two enumerations of the same graph agree exactly.
  const std::vector<Link> again = enumerate_links(g);
  ASSERT_EQ(links.size(), again.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    EXPECT_EQ(links[i].a, again[i].a);
    EXPECT_EQ(links[i].b, again[i].b);
  }
}

TEST(EnumerateLinks, MaxLengthFiltersLongLinks) {
  const UnitDiskGraph g = small_graph();
  const std::vector<Link> all = enumerate_links(g);
  const double cutoff = 3.0;
  const std::vector<Link> kept = enumerate_links(g, cutoff);
  EXPECT_LT(kept.size(), all.size());
  for (const Link& l : kept) {
    EXPECT_LE(geom::distance(g.position(l.a), g.position(l.b)), cutoff);
  }
  // The filtered list is the order-preserving subsequence of the full one.
  std::size_t j = 0;
  for (const Link& l : all) {
    if (j < kept.size() && l.a == kept[j].a && l.b == kept[j].b) {
      ++j;
    }
  }
  EXPECT_EQ(j, kept.size());
}

TEST(GatherLinkReadings, GathersInOrderAndKeepsMissing) {
  const std::vector<double> values{0.5, 1.5, kMissingReading, 3.5};
  const std::vector<std::size_t> sniffed{3, 0, 2};
  const std::vector<double> got = gather_link_readings(values, sniffed);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 3.5);
  EXPECT_EQ(got[1], 0.5);
  EXPECT_TRUE(is_missing(got[2]));
}

TEST(GatherLinkReadings, RejectsOutOfRangeIndex) {
  const std::vector<double> values{0.5, 1.5};
  const std::vector<std::size_t> bad{0, 2};
  EXPECT_THROW(gather_link_readings(values, bad), std::invalid_argument);
}

}  // namespace
}  // namespace fluxfp::net
