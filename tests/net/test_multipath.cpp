#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "net/deployment.hpp"
#include "net/flux.hpp"
#include "net/routing.hpp"
#include "numeric/stats.hpp"

namespace fluxfp::net {
namespace {

UnitDiskGraph grid_graph(geom::Rng& rng) {
  const geom::RectField f(30.0, 30.0);
  return UnitDiskGraph(perturbed_grid(f, 20, 20, 0.5, rng), 3.0);
}

TEST(MultipathFlux, RejectsBadInputs) {
  geom::Rng rng(1);
  const UnitDiskGraph g({{0, 0}, {1, 0}}, 1.5);
  EXPECT_THROW(multipath_flux(g, {0}, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(multipath_flux(g, {0, 1}, 5, 1.0), std::invalid_argument);
  EXPECT_THROW(multipath_flux(g, {0, 1}, 0, -1.0), std::invalid_argument);
}

TEST(MultipathFlux, RootCollectsEverything) {
  geom::Rng rng(2);
  const UnitDiskGraph g = grid_graph(rng);
  const std::size_t root = g.nearest_node({15, 15});
  const auto hop = hop_distances(g, root);
  const FluxMap flux = multipath_flux(g, hop, root, 2.0);
  EXPECT_NEAR(flux[root], 2.0 * static_cast<double>(g.size()), 1e-6);
}

TEST(MultipathFlux, EqualsTreeFluxOnPathGraph) {
  // On a path every node has exactly one uphill neighbor: multipath and
  // tree routing coincide.
  geom::Rng rng(3);
  const UnitDiskGraph g({{0, 0}, {1, 0}, {2, 0}, {3, 0}}, 1.1);
  const CollectionTree t = build_collection_tree(g, {0, 0}, rng);
  const auto hop = hop_distances(g, 0);
  const FluxMap multi = multipath_flux(g, hop, 0, 1.5);
  const FluxMap tree = tree_flux(t, 1.5);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(multi[i], tree[i], 1e-9) << "node " << i;
  }
}

TEST(MultipathFlux, LocallySmootherThanTreeRouting) {
  // The defense's actual effect is on *local* roughness: a node's flux
  // deviates less from its neighborhood mean than under single-parent
  // trees (which concentrate whole subtrees on arbitrary winners). The
  // ring-level geometric variation — what the model actually fits — is
  // untouched (see SameTotalAsTreeRouting).
  geom::Rng rng(4);
  const UnitDiskGraph g = grid_graph(rng);
  const std::size_t root = g.nearest_node({15, 15});
  const auto hop = hop_distances(g, root);
  const CollectionTree t = build_collection_tree(g, {15.0, 15.0}, rng);
  const FluxMap multi = multipath_flux(g, hop, root, 1.0);
  const FluxMap tree = tree_flux(t, 1.0);
  auto roughness = [&](const FluxMap& flux) {
    const FluxMap local_mean = smooth_flux(g, flux);
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (hop[i] >= 2) {  // skip the root funnel
        acc += std::abs(flux[i] - local_mean[i]) /
               std::max(local_mean[i], 1e-9);
        ++n;
      }
    }
    return acc / static_cast<double>(n);
  };
  EXPECT_LT(roughness(multi), 0.95 * roughness(tree));
}

TEST(MultipathFlux, SameTotalAsTreeRouting) {
  // Same expected spatial field: the total transported volume matches the
  // tree exactly (every packet still crosses every ring once per hop).
  geom::Rng rng(5);
  const UnitDiskGraph g = grid_graph(rng);
  const std::size_t root = g.nearest_node({10, 20});
  const auto hop = hop_distances(g, root);
  const CollectionTree t = build_collection_tree(g, {10.0, 20.0}, rng);
  const FluxMap multi = multipath_flux(g, hop, root, 1.0);
  const FluxMap tree = tree_flux(t, 1.0);
  // Per hop ring, the summed flux is identical (hop counts define both).
  const int max_hop = *std::max_element(hop.begin(), hop.end());
  for (int h = 0; h <= max_hop; ++h) {
    double m = 0.0, tr = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (hop[i] == h) {
        m += multi[i];
        tr += tree[i];
      }
    }
    EXPECT_NEAR(m, tr, 1e-6) << "ring " << h;
  }
}

TEST(MultipathFlux, UnreachableNodesCarryNothing) {
  geom::Rng rng(6);
  const UnitDiskGraph g({{0, 0}, {1, 0}, {9, 9}}, 1.5);
  const auto hop = hop_distances(g, 0);
  const FluxMap flux = multipath_flux(g, hop, 0, 1.0);
  EXPECT_DOUBLE_EQ(flux[2], 0.0);
}

}  // namespace
}  // namespace fluxfp::net
