#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/deployment.hpp"
#include "net/flux.hpp"

namespace fluxfp::net {
namespace {

UnitDiskGraph paper_network(geom::Rng& rng) {
  const geom::RectField f(30.0, 30.0);
  return UnitDiskGraph(perturbed_grid(f, 30, 30, 0.5, rng), 2.4);
}

TEST(HopDistances, LineGraph) {
  const UnitDiskGraph g({{0, 0}, {1, 0}, {2, 0}, {3, 0}}, 1.1);
  const auto hop = hop_distances(g, 0);
  EXPECT_EQ(hop, (std::vector<int>{0, 1, 2, 3}));
}

TEST(HopDistances, UnreachableMarked) {
  const UnitDiskGraph g({{0, 0}, {1, 0}, {9, 9}}, 1.1);
  const auto hop = hop_distances(g, 0);
  EXPECT_EQ(hop[0], 0);
  EXPECT_EQ(hop[1], 1);
  EXPECT_EQ(hop[2], kUnreachableHop);
}

TEST(HopDistances, RejectsBadRoot) {
  const UnitDiskGraph g({{0, 0}}, 1.0);
  EXPECT_THROW(hop_distances(g, 5), std::invalid_argument);
}

TEST(CollectionTree, RootIsNearestNode) {
  geom::Rng rng(1);
  const UnitDiskGraph g({{0, 0}, {5, 5}, {10, 10}}, 8.0);
  const CollectionTree t = build_collection_tree(g, {4.4, 4.4}, rng);
  EXPECT_EQ(t.root, 1u);
  EXPECT_EQ(t.parent[t.root], kNoNode);
  EXPECT_EQ(t.hop[t.root], 0);
}

TEST(CollectionTree, ParentsAreOneHopCloser) {
  geom::Rng rng(2);
  const UnitDiskGraph g = paper_network(rng);
  const CollectionTree t = build_collection_tree(g, {15.0, 15.0}, rng);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i == t.root) {
      continue;
    }
    ASSERT_TRUE(t.reachable(i));
    ASSERT_NE(t.parent[i], kNoNode);
    EXPECT_EQ(t.hop[t.parent[i]], t.hop[i] - 1);
    // Parent must be a real communication neighbor.
    EXPECT_LE(geom::distance(g.position(i), g.position(t.parent[i])),
              g.radius() + 1e-12);
  }
}

TEST(CollectionTree, EveryNodeReachesRootByParentChain) {
  geom::Rng rng(3);
  const UnitDiskGraph g = paper_network(rng);
  const CollectionTree t = build_collection_tree(g, {3.0, 27.0}, rng);
  for (std::size_t i = 0; i < t.size(); ++i) {
    std::size_t cur = i;
    int guard = 0;
    while (cur != t.root) {
      ASSERT_NE(t.parent[cur], kNoNode);
      cur = t.parent[cur];
      ASSERT_LT(++guard, 1000) << "parent chain loops";
    }
  }
}

TEST(CollectionTree, RandomTieBreakVariesParents) {
  geom::Rng rng(4);
  const UnitDiskGraph g = paper_network(rng);
  const CollectionTree a = build_collection_tree(g, {15.0, 15.0}, rng);
  const CollectionTree b = build_collection_tree(g, {15.0, 15.0}, rng);
  EXPECT_EQ(a.root, b.root);
  EXPECT_NE(a.parent, b.parent);  // randomized construction differs
  EXPECT_EQ(a.hop, b.hop);        // but hop structure is deterministic
}

TEST(CollectionTree, PartitionedGraphDegradesToPartialTree) {
  // Two clusters with no link between them; the sink lands in the minority
  // cluster. The tree must cover that cluster and mark the rest
  // unreachable — a partial tree, not a crash.
  geom::Rng rng(5);
  std::vector<geom::Vec2> positions;
  for (int i = 0; i < 3; ++i) {
    positions.push_back({static_cast<double>(i), 0.0});  // minority cluster
  }
  for (int i = 0; i < 9; ++i) {
    positions.push_back({20.0 + static_cast<double>(i % 3),
                         static_cast<double>(i / 3)});  // majority cluster
  }
  const UnitDiskGraph g(std::move(positions), 1.5);
  ASSERT_FALSE(g.is_connected());

  const CollectionTree t = build_collection_tree(g, {0.2, 0.1}, rng);
  EXPECT_LT(t.root, 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(t.reachable(i));
  }
  for (std::size_t i = 3; i < g.size(); ++i) {
    EXPECT_FALSE(t.reachable(i));
    EXPECT_EQ(t.parent[i], kNoNode);
  }

  // The flux pipeline over the partial tree stays finite: reachable nodes
  // carry subtree flux, unreachable nodes carry exactly zero.
  const FluxMap flux = tree_flux(t, 2.0);
  EXPECT_DOUBLE_EQ(flux[t.root], 6.0);  // 3 nodes * stretch 2
  for (std::size_t i = 3; i < g.size(); ++i) {
    EXPECT_DOUBLE_EQ(flux[i], 0.0);
  }
  const FluxMap smoothed = smooth_flux(g, flux);
  for (double v : smoothed) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(SubtreeSizes, LineGraphSizes) {
  geom::Rng rng(5);
  const UnitDiskGraph g({{0, 0}, {1, 0}, {2, 0}, {3, 0}}, 1.1);
  const CollectionTree t = build_collection_tree(g, {0, 0}, rng);
  const auto sizes = subtree_sizes(t);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{4, 3, 2, 1}));
}

TEST(SubtreeSizes, RootCountsEveryReachableNode) {
  geom::Rng rng(6);
  const UnitDiskGraph g = paper_network(rng);
  const CollectionTree t = build_collection_tree(g, {10.0, 20.0}, rng);
  EXPECT_EQ(subtree_sizes(t)[t.root], g.size());
}

TEST(SubtreeSizes, ChildrenSumInvariant) {
  geom::Rng rng(7);
  const UnitDiskGraph g = paper_network(rng);
  const CollectionTree t = build_collection_tree(g, {22.0, 8.0}, rng);
  const auto sizes = subtree_sizes(t);
  std::vector<std::size_t> child_sum(t.size(), 0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t.parent[i] != kNoNode) {
      child_sum[t.parent[i]] += sizes[i];
    }
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t.reachable(i)) {
      EXPECT_EQ(sizes[i], child_sum[i] + 1) << "node " << i;
    }
  }
}

TEST(AverageHopLength, BoundedByRadius) {
  geom::Rng rng(8);
  const UnitDiskGraph g = paper_network(rng);
  const CollectionTree t = build_collection_tree(g, {15.0, 15.0}, rng);
  const double r = average_hop_length(g, t);
  EXPECT_GT(r, 0.5);
  EXPECT_LE(r, g.radius());
}

TEST(AverageHopLength, SingleNodeIsZero) {
  geom::Rng rng(9);
  const UnitDiskGraph g({{0, 0}}, 1.0);
  const CollectionTree t = build_collection_tree(g, {0, 0}, rng);
  EXPECT_DOUBLE_EQ(average_hop_length(g, t), 0.0);
}

TEST(BottomUpOrder, ChildrenBeforeParents) {
  geom::Rng rng(10);
  const UnitDiskGraph g = paper_network(rng);
  const CollectionTree t = build_collection_tree(g, {15.0, 15.0}, rng);
  const auto order = bottom_up_order(t);
  EXPECT_EQ(order.size(), g.size());
  std::vector<std::size_t> rank(t.size(), 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    rank[order[pos]] = pos;
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t.parent[i] != kNoNode) {
      EXPECT_LT(rank[i], rank[t.parent[i]]) << "child after parent";
    }
  }
}

}  // namespace
}  // namespace fluxfp::net
