#include "net/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/deployment.hpp"

namespace fluxfp::net {
namespace {

TEST(UnitDiskGraph, RejectsBadInputs) {
  EXPECT_THROW(UnitDiskGraph({}, 1.0), std::invalid_argument);
  EXPECT_THROW(UnitDiskGraph({{0, 0}}, 0.0), std::invalid_argument);
}

TEST(UnitDiskGraph, SimpleLineTopology) {
  // Three nodes in a line, radius covers only adjacent pairs.
  const UnitDiskGraph g({{0, 0}, {1, 0}, {2, 0}}, 1.1);
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.neighbors(1), (std::vector<std::size_t>{0, 2}));
}

TEST(UnitDiskGraph, EdgeAtExactRadiusIncluded) {
  const UnitDiskGraph g({{0, 0}, {1, 0}}, 1.0);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(UnitDiskGraph, AdjacencyIsSymmetric) {
  geom::Rng rng(3);
  const geom::RectField f(20.0, 20.0);
  const UnitDiskGraph g(uniform_random(f, 300, rng), 2.0);
  for (std::size_t i = 0; i < g.size(); ++i) {
    for (std::size_t j : g.neighbors(i)) {
      const auto& back = g.neighbors(j);
      EXPECT_TRUE(std::find(back.begin(), back.end(), i) != back.end())
          << i << " <-> " << j;
    }
  }
}

TEST(UnitDiskGraph, AdjacencyMatchesBruteForce) {
  geom::Rng rng(7);
  const geom::RectField f(10.0, 10.0);
  const auto pts = uniform_random(f, 120, rng);
  const double radius = 1.7;
  const UnitDiskGraph g(pts, radius);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::vector<std::size_t> expected;
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (j != i && geom::distance(pts[i], pts[j]) <= radius) {
        expected.push_back(j);
      }
    }
    EXPECT_EQ(g.neighbors(i), expected) << "node " << i;
  }
}

TEST(UnitDiskGraph, AverageDegreeMatchesPaperSetting) {
  // §5.A: 900 nodes on 30x30, radius 2.4 -> average degree about 18.
  geom::Rng rng(42);
  const geom::RectField f(30.0, 30.0);
  const UnitDiskGraph g(perturbed_grid(f, 30, 30, 0.5, rng), 2.4);
  EXPECT_NEAR(g.average_degree(), 15.0, 3.5);
}

TEST(UnitDiskGraph, NearestNode) {
  const UnitDiskGraph g({{0, 0}, {5, 5}, {10, 0}}, 3.0);
  EXPECT_EQ(g.nearest_node({0.2, 0.3}), 0u);
  EXPECT_EQ(g.nearest_node({5.0, 4.0}), 1u);
  EXPECT_EQ(g.nearest_node({9.0, 1.0}), 2u);
}

TEST(UnitDiskGraph, NearestNodeMatchesBruteForce) {
  geom::Rng rng(9);
  const geom::RectField f(20.0, 20.0);
  const auto pts = uniform_random(f, 200, rng);
  const UnitDiskGraph g(pts, 2.0);
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Vec2 q = geom::uniform_in_field(f, rng);
    std::size_t best = 0;
    for (std::size_t j = 1; j < pts.size(); ++j) {
      if (geom::distance2(pts[j], q) < geom::distance2(pts[best], q)) {
        best = j;
      }
    }
    EXPECT_EQ(geom::distance(pts[g.nearest_node(q)], q),
              geom::distance(pts[best], q));
  }
}

TEST(UnitDiskGraph, NearestNodeOutsideField) {
  const UnitDiskGraph g({{0, 0}, {5, 5}}, 3.0);
  EXPECT_EQ(g.nearest_node({-10, -10}), 0u);
  EXPECT_EQ(g.nearest_node({100, 100}), 1u);
}

TEST(UnitDiskGraph, NodesWithin) {
  const UnitDiskGraph g({{0, 0}, {1, 0}, {2, 0}, {10, 10}}, 1.5);
  EXPECT_EQ(g.nodes_within({0, 0}, 1.2), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(g.nodes_within({0, 0}, 2.5), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(g.nodes_within({-5, -5}, 1.0).empty());
}

TEST(UnitDiskGraph, Connectivity) {
  const UnitDiskGraph connected({{0, 0}, {1, 0}, {2, 0}}, 1.1);
  EXPECT_TRUE(connected.is_connected());
  const UnitDiskGraph split({{0, 0}, {1, 0}, {9, 9}}, 1.1);
  EXPECT_FALSE(split.is_connected());
}

}  // namespace
}  // namespace fluxfp::net
