// Structural invariants of the network substrate, checked over randomized
// instances (parameterized property sweeps).
#include <gtest/gtest.h>

#include <numeric>

#include "net/deployment.hpp"
#include "net/flux.hpp"
#include "net/routing.hpp"

namespace fluxfp::net {
namespace {

class NetInvariant : public ::testing::TestWithParam<int> {
 protected:
  geom::RectField field{30.0, 30.0};
  geom::Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919 + 13};

  UnitDiskGraph make_graph() {
    return UnitDiskGraph(perturbed_grid(field, 20, 20, 0.5, rng), 3.0);
  }
};

TEST_P(NetInvariant, TotalFluxEqualsGeneratedTimesPathLength) {
  // flux_i = s * |subtree(i)|, and sum_i |subtree(i)| counts each node once
  // per ancestor (incl. itself): sum flux = s * (n + sum_i hop_i).
  const UnitDiskGraph g = make_graph();
  const geom::Vec2 sink = geom::uniform_in_field(field, rng);
  const CollectionTree t = build_collection_tree(g, sink, rng);
  const double s = 1.75;
  const FluxMap flux = tree_flux(t, s);
  double hop_sum = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    ASSERT_TRUE(t.reachable(i));
    hop_sum += t.hop[i];
  }
  const double total = std::accumulate(flux.begin(), flux.end(), 0.0);
  EXPECT_NEAR(total, s * (static_cast<double>(g.size()) + hop_sum), 1e-6);
}

TEST_P(NetInvariant, HopCountsAreLipschitzAlongEdges) {
  // Adjacent nodes differ by at most one hop.
  const UnitDiskGraph g = make_graph();
  const CollectionTree t =
      build_collection_tree(g, geom::uniform_in_field(field, rng), rng);
  for (std::size_t i = 0; i < g.size(); ++i) {
    for (std::size_t nb : g.neighbors(i)) {
      EXPECT_LE(std::abs(t.hop[i] - t.hop[nb]), 1);
    }
  }
}

TEST_P(NetInvariant, HopLowerBoundedByDistance) {
  // hop >= euclidean distance / radius (each hop covers at most radius).
  const UnitDiskGraph g = make_graph();
  const CollectionTree t =
      build_collection_tree(g, geom::uniform_in_field(field, rng), rng);
  const geom::Vec2 root_pos = g.position(t.root);
  for (std::size_t i = 0; i < g.size(); ++i) {
    const double d = geom::distance(g.position(i), root_pos);
    EXPECT_GE(static_cast<double>(t.hop[i]) + 1e-9, d / g.radius());
  }
}

TEST_P(NetInvariant, SmoothingPreservesTotalApproximately) {
  // Neighborhood averaging is not mass-preserving in general, but on a
  // quasi-regular grid the total changes by a bounded factor.
  const UnitDiskGraph g = make_graph();
  const CollectionTree t =
      build_collection_tree(g, geom::uniform_in_field(field, rng), rng);
  const FluxMap flux = tree_flux(t, 1.0);
  const FluxMap smoothed = smooth_flux(g, flux);
  const double before = std::accumulate(flux.begin(), flux.end(), 0.0);
  const double after =
      std::accumulate(smoothed.begin(), smoothed.end(), 0.0);
  EXPECT_GT(after, 0.5 * before);
  EXPECT_LT(after, 2.0 * before);
}

TEST_P(NetInvariant, SmoothingReducesPeak) {
  const UnitDiskGraph g = make_graph();
  const CollectionTree t =
      build_collection_tree(g, geom::uniform_in_field(field, rng), rng);
  const FluxMap flux = tree_flux(t, 1.0);
  const FluxMap smoothed = smooth_flux(g, flux);
  EXPECT_LT(*std::max_element(smoothed.begin(), smoothed.end()),
            *std::max_element(flux.begin(), flux.end()));
}

TEST_P(NetInvariant, TreeIsAcyclicSpanning) {
  const UnitDiskGraph g = make_graph();
  const CollectionTree t =
      build_collection_tree(g, geom::uniform_in_field(field, rng), rng);
  // n-1 parent edges for n reachable nodes (spanning tree).
  std::size_t edges = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t.parent[i] != kNoNode) {
      ++edges;
    }
  }
  EXPECT_EQ(edges, g.size() - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetInvariant, ::testing::Range(0, 12));

}  // namespace
}  // namespace fluxfp::net
