#include <gtest/gtest.h>

#include <algorithm>

#include "net/deployment.hpp"
#include "net/graph.hpp"

namespace fluxfp::net {
namespace {

TEST(ClusteredDeployment, CountAndBounds) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(1);
  const auto pts = clustered(f, 500, 6, 2.0, rng);
  EXPECT_EQ(pts.size(), 500u);
  for (const auto& p : pts) {
    EXPECT_TRUE(f.contains(p));
  }
}

TEST(ClusteredDeployment, RejectsBadArgs) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(2);
  EXPECT_THROW(clustered(f, 100, 0, 2.0, rng), std::invalid_argument);
  EXPECT_THROW(clustered(f, 100, 4, -1.0, rng), std::invalid_argument);
}

TEST(ClusteredDeployment, DensityIsActuallyClustered) {
  // Mean nearest-neighbor distance is much smaller than for a uniform
  // deployment of the same size.
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(3);
  const auto clu = clustered(f, 300, 5, 1.5, rng);
  const auto uni = uniform_random(f, 300, rng);
  auto mean_nn = [](const std::vector<geom::Vec2>& pts) {
    double acc = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      double best = 1e18;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (j != i) {
          best = std::min(best, geom::distance2(pts[i], pts[j]));
        }
      }
      acc += std::sqrt(best);
    }
    return acc / static_cast<double>(pts.size());
  };
  EXPECT_LT(mean_nn(clu), 0.7 * mean_nn(uni));
}

TEST(ClusteredDeployment, ZeroSpreadCollapsesToCenters) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(4);
  const auto pts = clustered(f, 40, 4, 0.0, rng);
  // Only 4 distinct positions.
  std::vector<geom::Vec2> distinct;
  for (const auto& p : pts) {
    bool seen = false;
    for (const auto& q : distinct) {
      seen = seen || (p == q);
    }
    if (!seen) {
      distinct.push_back(p);
    }
  }
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(ClusteredDeployment, DeployDispatch) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(5);
  const auto pts = deploy(DeploymentKind::kClustered, f, 400, rng);
  EXPECT_EQ(pts.size(), 400u);
  EXPECT_STREQ(to_string(DeploymentKind::kClustered), "clustered");
}

TEST(ClusteredDeployment, RoundRobinBalancesClusters) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(6);
  const std::size_t clusters = 5;
  const auto pts = clustered(f, 100, clusters, 0.0, rng);
  // With zero spread, count points per distinct center: 20 each.
  std::vector<geom::Vec2> centers;
  std::vector<int> counts;
  for (const auto& p : pts) {
    bool found = false;
    for (std::size_t c = 0; c < centers.size(); ++c) {
      if (p == centers[c]) {
        ++counts[c];
        found = true;
      }
    }
    if (!found) {
      centers.push_back(p);
      counts.push_back(1);
    }
  }
  for (int c : counts) {
    EXPECT_EQ(c, 20);
  }
}

}  // namespace
}  // namespace fluxfp::net
