#include "net/flux.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "net/deployment.hpp"

namespace fluxfp::net {
namespace {

UnitDiskGraph paper_network(geom::Rng& rng) {
  const geom::RectField f(30.0, 30.0);
  return UnitDiskGraph(perturbed_grid(f, 30, 30, 0.5, rng), 2.4);
}

TEST(TreeFlux, RootCarriesAllTraffic) {
  geom::Rng rng(1);
  const UnitDiskGraph g = paper_network(rng);
  const CollectionTree t = build_collection_tree(g, {15.0, 15.0}, rng);
  const FluxMap flux = tree_flux(t, 2.0);
  EXPECT_DOUBLE_EQ(flux[t.root], 2.0 * static_cast<double>(g.size()));
}

TEST(TreeFlux, LeafCarriesOwnShareOnly) {
  geom::Rng rng(2);
  const UnitDiskGraph g({{0, 0}, {1, 0}, {2, 0}}, 1.1);
  const CollectionTree t = build_collection_tree(g, {0, 0}, rng);
  const FluxMap flux = tree_flux(t, 1.5);
  EXPECT_DOUBLE_EQ(flux[2], 1.5);
}

TEST(TreeFlux, ScalesLinearlyWithStretch) {
  geom::Rng rng(3);
  const UnitDiskGraph g = paper_network(rng);
  const CollectionTree t = build_collection_tree(g, {5.0, 5.0}, rng);
  const FluxMap f1 = tree_flux(t, 1.0);
  const FluxMap f3 = tree_flux(t, 3.0);
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_DOUBLE_EQ(f3[i], 3.0 * f1[i]);
  }
}

TEST(TreeFlux, RejectsNegativeStretch) {
  geom::Rng rng(4);
  const UnitDiskGraph g({{0, 0}}, 1.0);
  const CollectionTree t = build_collection_tree(g, {0, 0}, rng);
  EXPECT_THROW(tree_flux(t, -1.0), std::invalid_argument);
}

TEST(TreeFlux, FluxDecreasesAlongPathToLeaves) {
  // Flux at a child never exceeds its parent's (subtree nesting).
  geom::Rng rng(5);
  const UnitDiskGraph g = paper_network(rng);
  const CollectionTree t = build_collection_tree(g, {15.0, 15.0}, rng);
  const FluxMap flux = tree_flux(t, 1.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t.parent[i] != kNoNode) {
      EXPECT_LT(flux[i], flux[t.parent[i]]);
    }
  }
}

TEST(Accumulate, SumsElementwise) {
  FluxMap a{1, 2, 3};
  accumulate(a, {10, 20, 30});
  EXPECT_EQ(a, (FluxMap{11, 22, 33}));
  EXPECT_THROW(accumulate(a, {1, 2}), std::invalid_argument);
}

TEST(Accumulate, MultiUserFluxIsSumOfTrees) {
  geom::Rng rng(6);
  const UnitDiskGraph g = paper_network(rng);
  geom::Rng rng_a(77);
  geom::Rng rng_b(77);
  const CollectionTree t1 = build_collection_tree(g, {5.0, 5.0}, rng_a);
  const CollectionTree t2 = build_collection_tree(g, {25.0, 25.0}, rng_a);
  FluxMap total = tree_flux(build_collection_tree(g, {5.0, 5.0}, rng_b), 1.0);
  accumulate(total,
             tree_flux(build_collection_tree(g, {25.0, 25.0}, rng_b), 2.0));
  const FluxMap f1 = tree_flux(t1, 1.0);
  const FluxMap f2 = tree_flux(t2, 2.0);
  for (std::size_t i = 0; i < total.size(); ++i) {
    EXPECT_DOUBLE_EQ(total[i], f1[i] + f2[i]);
  }
}

TEST(SmoothFlux, PreservesConstantMap) {
  geom::Rng rng(7);
  const UnitDiskGraph g = paper_network(rng);
  const FluxMap flat(g.size(), 5.0);
  const FluxMap smoothed = smooth_flux(g, flat);
  for (double v : smoothed) {
    EXPECT_DOUBLE_EQ(v, 5.0);
  }
}

TEST(SmoothFlux, AveragesNeighborhood) {
  const UnitDiskGraph g({{0, 0}, {1, 0}, {2, 0}}, 1.1);
  const FluxMap smoothed = smooth_flux(g, {3.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(smoothed[0], 1.5);  // (3+0)/2
  EXPECT_DOUBLE_EQ(smoothed[1], 1.0);  // (3+0+0)/3
  EXPECT_DOUBLE_EQ(smoothed[2], 0.0);
}

TEST(SmoothFlux, RejectsSizeMismatch) {
  const UnitDiskGraph g({{0, 0}}, 1.0);
  EXPECT_THROW(smooth_flux(g, {1.0, 2.0}), std::invalid_argument);
}

TEST(FluxEnergyFraction, PaperClaimBeyondThreeHops) {
  // §3.B: nodes >= 3 hops from the sink still carry > 70% of flux energy.
  geom::Rng rng(8);
  const UnitDiskGraph g = paper_network(rng);
  const CollectionTree t = build_collection_tree(g, {15.0, 15.0}, rng);
  const FluxMap flux = tree_flux(t, 1.0);
  const double frac = flux_energy_fraction_beyond(t, flux, 3);
  EXPECT_GT(frac, 0.5);
  EXPECT_LT(frac, 1.0);
}

TEST(FluxEnergyFraction, MonotoneInHopThreshold) {
  geom::Rng rng(9);
  const UnitDiskGraph g = paper_network(rng);
  const CollectionTree t = build_collection_tree(g, {15.0, 15.0}, rng);
  const FluxMap flux = tree_flux(t, 1.0);
  double prev = 1.0;
  for (int h = 0; h <= 8; ++h) {
    const double cur = flux_energy_fraction_beyond(t, flux, h);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(flux_energy_fraction_beyond(t, flux, 0), 1.0);
}

}  // namespace
}  // namespace fluxfp::net
