#include "numeric/stats.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

namespace fluxfp::numeric {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, Stddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, MinMaxSum) {
  const std::vector<double> xs{3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
  EXPECT_DOUBLE_EQ(sum(xs), 11.0);
  EXPECT_THROW(min_value(std::vector<double>{}), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.125), 1.5);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Stats, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile(std::vector<double>{1.0}, 1.5),
               std::invalid_argument);
}

TEST(Stats, PercentileSmallSamples) {
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 1.0), 7.0);
  const std::vector<double> two{1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(two, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(two, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(percentile(two, 0.99), 2.98);
  EXPECT_DOUBLE_EQ(percentile(two, 1.0), 3.0);
}

TEST(Stats, PercentileIgnoresNanWhereverItSits) {
  // NaN violates std::sort's strict weak order: before the filter the
  // result depended on where the NaNs sat in the input (these two inputs
  // disagreed). Both must rank the finite subset {1,2,3,5}.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> nan_mid{3.0, nan, 1.0, 2.0, nan, 5.0};
  const std::vector<double> nan_ends{nan, 1.0, 2.0, 3.0, 5.0, nan};
  EXPECT_DOUBLE_EQ(percentile(nan_mid, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile(nan_ends, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile(nan_mid, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(nan_mid, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(median(nan_ends), 2.5);
}

TEST(Stats, PercentileAllNanThrows) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(percentile(std::vector<double>{nan, nan}, 0.5),
               std::invalid_argument);
}

TEST(EmpiricalCdf, EvaluateAndQuantile) {
  const EmpiricalCdf cdf({4, 1, 3, 2});
  EXPECT_DOUBLE_EQ(cdf.evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.evaluate(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.evaluate(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.evaluate(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
  EXPECT_THROW(cdf.quantile(0.0), std::invalid_argument);
}

TEST(EmpiricalCdf, MonotonicInValue) {
  const EmpiricalCdf cdf({0.3, 0.7, 0.1, 0.9, 0.5});
  double prev = -1.0;
  for (double v = 0.0; v <= 1.0; v += 0.05) {
    const double cur = cdf.evaluate(v);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.2);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(RunningStats, MatchesBatchStats) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats rs;
  for (double x : xs) {
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace fluxfp::numeric
