#include "numeric/hungarian.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace fluxfp::numeric {
namespace {

TEST(Hungarian, TrivialSingle) {
  const Matrix cost{{5}};
  const auto a = hungarian_assign(cost);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 0u);
}

TEST(Hungarian, IdentityIsOptimalWhenDiagonalCheapest) {
  const Matrix cost{{1, 10, 10}, {10, 1, 10}, {10, 10, 1}};
  const auto a = hungarian_assign(cost);
  EXPECT_EQ(a[0], 0u);
  EXPECT_EQ(a[1], 1u);
  EXPECT_EQ(a[2], 2u);
  EXPECT_DOUBLE_EQ(assignment_cost(cost, a), 3.0);
}

TEST(Hungarian, AntiDiagonal) {
  const Matrix cost{{10, 1}, {1, 10}};
  const auto a = hungarian_assign(cost);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(a[1], 0u);
}

TEST(Hungarian, RectangularMoreColumns) {
  const Matrix cost{{9, 1, 9}, {9, 9, 2}};
  const auto a = hungarian_assign(cost);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(a[1], 2u);
}

TEST(Hungarian, RejectsBadShapes) {
  EXPECT_THROW(hungarian_assign(Matrix(3, 2)), std::invalid_argument);
  EXPECT_THROW(hungarian_assign(Matrix()), std::invalid_argument);
}

TEST(Hungarian, ColumnsAreDistinct) {
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  Matrix cost(6, 6);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      cost(r, c) = u(rng);
    }
  }
  auto a = hungarian_assign(cost);
  std::sort(a.begin(), a.end());
  EXPECT_EQ(std::unique(a.begin(), a.end()), a.end());
}

// Property: Hungarian matches brute force on random 4x4 instances.
class HungarianVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(HungarianVsBruteForce, OptimalCost) {
  std::mt19937_64 rng(static_cast<unsigned long>(GetParam()));
  std::uniform_real_distribution<double> u(0.0, 10.0);
  const std::size_t n = 4;
  Matrix cost(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      cost(r, c) = u(rng);
    }
  }
  const auto a = hungarian_assign(cost);
  const double got = assignment_cost(cost, a);

  std::vector<std::size_t> perm{0, 1, 2, 3};
  double best = 1e18;
  do {
    best = std::min(best, assignment_cost(cost, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(got, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianVsBruteForce,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace fluxfp::numeric
