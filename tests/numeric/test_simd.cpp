// Equivalence suite for the vectorized kernels (DESIGN.md section 14).
//
// Two different contracts are pinned here:
//  * shape rows are ELEMENT-WISE over lanes — when a vector backend is
//    compiled in, every output must be bit-identical to the scalar
//    FluxModel::shape formula, at every n (remainder lanes included), at
//    d -> 0 (the d_min cap), and for sinks outside the field (clamping);
//  * dot reductions use multi-lane accumulators — the summation ORDER
//    changes, so those are tolerance-tested, never bit-compared, against
//    the serial loop.
// In the scalar build the shape kernels must decline (return false) and
// the dot kernels must reproduce the serial accumulation exactly.

#include "numeric/simd/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "core/flux_model.hpp"
#include "core/nls.hpp"
#include "geom/field.hpp"
#include "geom/sampling.hpp"

namespace fluxfp {
namespace {

namespace simd = numeric::simd;

double serial_dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

std::vector<double> random_vec(std::size_t n, std::uint32_t seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> u(-3.0, 3.0);
  std::vector<double> v(n);
  for (double& x : v) {
    x = u(gen);
  }
  return v;
}

TEST(SimdKernels, BackendReportsConsistently) {
  EXPECT_GE(simd::lane_count(), 1u);
  if (simd::enabled()) {
    EXPECT_GT(simd::lane_count(), 1u);
    EXPECT_STRNE(simd::backend_name(), "scalar");
  } else {
    EXPECT_EQ(simd::lane_count(), 1u);
    EXPECT_STREQ(simd::backend_name(), "scalar");
  }
}

TEST(SimdKernels, DotMatchesSerialAccumulation) {
  // Every size from empty through several full vector groups plus every
  // possible remainder.
  for (std::size_t n = 0; n <= 67; ++n) {
    const auto a = random_vec(n, 100 + static_cast<std::uint32_t>(n));
    const auto b = random_vec(n, 200 + static_cast<std::uint32_t>(n));
    const double expected = serial_dot(a, b);
    const double got = simd::dot(a.data(), b.data(), n);
    if (simd::enabled()) {
      EXPECT_NEAR(got, expected, 1e-12 * (1.0 + std::abs(expected)))
          << "n=" << n;
    } else {
      EXPECT_EQ(got, expected) << "n=" << n;  // bit-exact in scalar mode
    }
  }
}

TEST(SimdKernels, DotSelfAndBMatchesTwoDots) {
  for (std::size_t n : {0u, 1u, 3u, 4u, 7u, 8u, 31u, 64u, 65u}) {
    const auto x = random_vec(n, 300 + static_cast<std::uint32_t>(n));
    const auto b = random_vec(n, 400 + static_cast<std::uint32_t>(n));
    double self = -1.0;
    double xb = -1.0;
    simd::dot_self_and_b(x.data(), b.data(), n, &self, &xb);
    const double self_expected = serial_dot(x, x);
    const double xb_expected = serial_dot(x, b);
    if (simd::enabled()) {
      EXPECT_NEAR(self, self_expected,
                  1e-12 * (1.0 + std::abs(self_expected)));
      EXPECT_NEAR(xb, xb_expected, 1e-12 * (1.0 + std::abs(xb_expected)));
    } else {
      EXPECT_EQ(self, self_expected);
      EXPECT_EQ(xb, xb_expected);
    }
  }
}

TEST(SimdKernels, ScaleRowsIsElementwiseExact) {
  // Element-wise multiply has no reduction: exact in every backend.
  for (std::size_t n : {0u, 1u, 5u, 8u, 13u, 32u, 33u}) {
    auto out = random_vec(n, 500 + static_cast<std::uint32_t>(n));
    const auto scale = random_vec(n, 600 + static_cast<std::uint32_t>(n));
    auto expected = out;
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] *= scale[i];
    }
    simd::scale_rows(out.data(), scale.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], expected[i]) << "n=" << n << " i=" << i;
    }
  }
}

/// Shared harness: evaluates model.shape_row against the scalar shape()
/// loop for every n in [1, qx.size()], asserting bit-exact agreement when
/// the kernel claims the row.
void check_shape_row(const core::FluxModel& model, geom::Vec2 sink,
                     const std::vector<double>& qx,
                     const std::vector<double>& qy) {
  for (std::size_t n = 1; n <= qx.size(); ++n) {
    std::vector<double> out(n, -1.0);
    const bool handled =
        model.shape_row(sink, qx.data(), qy.data(), n, out.data());
    if (!simd::enabled()) {
      EXPECT_FALSE(handled);
      continue;
    }
    ASSERT_TRUE(handled) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      const double expected = model.shape(sink, {qx[i], qy[i]});
      EXPECT_EQ(out[i], expected)
          << "n=" << n << " i=" << i << " q=(" << qx[i] << "," << qy[i]
          << ") sink=(" << sink.x << "," << sink.y << ")";
    }
  }
}

struct ShapeRowInputs {
  std::vector<double> qx;
  std::vector<double> qy;
};

ShapeRowInputs random_nodes(const geom::Field& field, std::size_t n,
                            std::uint64_t seed) {
  geom::Rng rng(seed);
  ShapeRowInputs in;
  for (const geom::Vec2 p : geom::uniform_points(field, n, rng)) {
    in.qx.push_back(p.x);
    in.qy.push_back(p.y);
  }
  return in;
}

TEST(SimdShapeRow, RectMatchesScalarShapeBitForBit) {
  const geom::RectField field(30.0, 20.0);
  const core::FluxModel model(field, 1.2);
  const auto in = random_nodes(field, 19, 7);  // covers remainder lanes
  check_shape_row(model, {11.0, 8.0}, in.qx, in.qy);
  check_shape_row(model, {0.0, 0.0}, in.qx, in.qy);      // corner sink
  check_shape_row(model, {30.0, 20.0}, in.qx, in.qy);    // far corner
  check_shape_row(model, {-4.0, 25.0}, in.qx, in.qy);    // outside: clamped
  check_shape_row(model, {15.0, -1e6}, in.qx, in.qy);    // far outside
}

TEST(SimdShapeRow, CircleMatchesScalarShapeBitForBit) {
  const geom::CircleField field({5.0, -3.0}, 12.0);
  const core::FluxModel model(field, 0.8);
  const auto in = random_nodes(field, 19, 8);
  check_shape_row(model, {5.0, -3.0}, in.qx, in.qy);     // center
  check_shape_row(model, {16.0, -3.0}, in.qx, in.qy);    // near boundary
  check_shape_row(model, {40.0, 40.0}, in.qx, in.qy);    // outside: clamped
}

TEST(SimdShapeRow, DistanceZeroHitsTheDminCap) {
  // Node exactly at the sink: d = 0, the ray direction is degenerate, and
  // the scalar formula falls back to l = nearest_boundary_distance with
  // the d_min denominator cap. The kernel must reproduce that path bit for
  // bit in every lane position.
  const geom::RectField field(30.0, 20.0);
  const core::FluxModel model(field, 1.2);
  const geom::Vec2 sink{7.25, 4.5};
  auto in = random_nodes(field, 9, 9);
  for (std::size_t hit = 0; hit < in.qx.size(); ++hit) {
    auto qx = in.qx;
    auto qy = in.qy;
    qx[hit] = sink.x;
    qy[hit] = sink.y;
    check_shape_row(model, sink, qx, qy);
  }
}

TEST(SimdShapeRow, NonFiniteNodeMakesTheKernelDecline) {
  const geom::RectField field(30.0, 20.0);
  const core::FluxModel model(field, 1.2);
  const geom::Vec2 sink{11.0, 8.0};
  const auto clean = random_nodes(field, 11, 10);
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    // A bad coordinate anywhere — full lane groups and the remainder tail
    // alike — must make shape_row return false (out is then unspecified),
    // so the caller's scalar loop can throw the documented
    // invalid_argument instead of a NaN silently entering a column.
    for (std::size_t at : {std::size_t{0}, std::size_t{4}, clean.qx.size() - 1}) {
      auto qx = clean.qx;
      auto qy = clean.qy;
      qx[at] = bad;
      std::vector<double> out(qx.size(), -7.0);
      EXPECT_FALSE(model.shape_row(sink, qx.data(), qy.data(), qx.size(),
                                   out.data()));
      qx = clean.qx;
      qy[at] = bad;
      EXPECT_FALSE(model.shape_row(sink, qx.data(), qy.data(), qx.size(),
                                   out.data()));
    }
  }
  // Non-finite sink declines too.
  std::vector<double> out(clean.qx.size(), 0.0);
  EXPECT_FALSE(model.shape_row({std::nan(""), 8.0}, clean.qx.data(),
                               clean.qy.data(), clean.qx.size(), out.data()));
}

TEST(SimdShapeRow, GenericFieldKindDeclines) {
  // A field type the kernels do not recognize must always fall back.
  class BoxyField : public geom::Field {
   public:
    bool contains(geom::Vec2 p, double eps = 0.0) const override {
      return p.x >= -eps && p.x <= 10.0 + eps && p.y >= -eps &&
             p.y <= 10.0 + eps;
    }
    geom::Vec2 clamp(geom::Vec2 p) const override {
      return {std::min(std::max(p.x, 0.0), 10.0),
              std::min(std::max(p.y, 0.0), 10.0)};
    }
    double boundary_distance(geom::Vec2, geom::Vec2) const override {
      return 1.0;
    }
    double nearest_boundary_distance(geom::Vec2) const override {
      return 1.0;
    }
    geom::Vec2 center() const override { return {5.0, 5.0}; }
    double diameter() const override { return 14.142135623730951; }
    double area() const override { return 100.0; }
    geom::Vec2 from_unit_square(double u, double v) const override {
      return {10.0 * u, 10.0 * v};
    }
  };
  const BoxyField field;
  const core::FluxModel model(field, 1.0);
  EXPECT_EQ(model.field_kind(), core::FieldKind::kGeneric);
  const double qx[2] = {1.0, 2.0};
  const double qy[2] = {3.0, 4.0};
  double out[2] = {0.0, 0.0};
  EXPECT_FALSE(model.shape_row({5.0, 5.0}, qx, qy, 2, out));
}

TEST(SimdShapeRow, SparseObjectiveColumnsMatchScalarShapeLoop) {
  // End-to-end through the objective: shape_column (kernel dispatch +
  // row scaling) must equal the hand-rolled scalar loop bit for bit, in
  // every backend — the column build has no reductions.
  const geom::RectField field(30.0, 30.0);
  const core::FluxModel model(field, 1.0);
  geom::Rng rng(11);
  const std::vector<geom::Vec2> samples =
      geom::uniform_points(field, 23, rng);
  std::vector<double> measured(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    measured[i] = 1.0 + 0.01 * static_cast<double>(i);
  }
  const core::SparseObjective obj(model, samples, measured);
  const geom::Vec2 sink{13.5, 4.25};
  const std::vector<double> col = obj.shape_column(sink);
  ASSERT_EQ(col.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(col[i], model.shape(sink, samples[i])) << "i=" << i;
  }

  // Reweighted objective: same columns scaled by sqrt(w) row factors.
  std::vector<double> weights(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    weights[i] = 0.25 + 0.05 * static_cast<double>(i);
  }
  const core::SparseObjective weighted = obj.reweighted(weights);
  const std::vector<double> wcol = weighted.shape_column(sink);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(wcol[i], std::sqrt(weights[i]) * model.shape(sink, samples[i]))
        << "i=" << i;
  }
}

}  // namespace
}  // namespace fluxfp
