#include "numeric/linalg.hpp"

#include <gtest/gtest.h>

#include <random>

namespace fluxfp::numeric {
namespace {

TEST(CholeskySolve, Solves2x2) {
  const Matrix a{{4, 2}, {2, 3}};
  const auto x = cholesky_solve(a, {10, 8});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.75, 1e-12);
  EXPECT_NEAR((*x)[1], 1.5, 1e-12);
}

TEST(CholeskySolve, SolvesIdentity) {
  const auto x = cholesky_solve(Matrix::identity(3), {1, 2, 3});
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ((*x)[1], 2.0);
}

TEST(CholeskySolve, RejectsNonSpd) {
  EXPECT_FALSE(cholesky_solve(Matrix{{0, 0}, {0, 0}}, {1, 1}).has_value());
  EXPECT_FALSE(cholesky_solve(Matrix{{1, 2}, {2, 1}}, {1, 1}).has_value());
}

TEST(CholeskySolve, RejectsDimensionMismatch) {
  EXPECT_FALSE(cholesky_solve(Matrix(2, 3), {1, 1}).has_value());
  EXPECT_FALSE(cholesky_solve(Matrix::identity(2), {1, 2, 3}).has_value());
}

TEST(QrLeastSquares, ExactSquareSystem) {
  const Matrix a{{2, 0}, {0, 3}};
  const auto x = qr_least_squares(a, {4, 9});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(QrLeastSquares, OverdeterminedRegression) {
  // Fit y = 2x + 1 over noiseless points: exact recovery.
  Matrix a(4, 2);
  std::vector<double> b(4);
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = i;
    a(i, 1) = 1.0;
    b[static_cast<std::size_t>(i)] = 2.0 * i + 1.0;
  }
  const auto x = qr_least_squares(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, 1e-10);
  EXPECT_NEAR((*x)[1], 1.0, 1e-10);
}

TEST(QrLeastSquares, ResidualOrthogonalToColumns) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Matrix a(8, 3);
  std::vector<double> b(8);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      a(r, c) = u(rng);
    }
    b[r] = u(rng);
  }
  const auto x = qr_least_squares(a, b);
  ASSERT_TRUE(x.has_value());
  const std::vector<double> res = subtract(a * *x, b);
  for (std::size_t c = 0; c < 3; ++c) {
    double acc = 0.0;
    for (std::size_t r = 0; r < 8; ++r) {
      acc += a(r, c) * res[r];
    }
    EXPECT_NEAR(acc, 0.0, 1e-9) << "column " << c;
  }
}

TEST(QrLeastSquares, RejectsRankDeficient) {
  Matrix a(3, 2);
  for (std::size_t r = 0; r < 3; ++r) {
    a(r, 0) = 1.0;
    a(r, 1) = 2.0;  // second column is a multiple of the first
  }
  EXPECT_FALSE(qr_least_squares(a, {1, 1, 1}).has_value());
}

TEST(QrLeastSquares, RejectsUnderdetermined) {
  EXPECT_FALSE(qr_least_squares(Matrix(2, 3), {1, 1}).has_value());
}

TEST(ResidualNorm, Computes) {
  const Matrix a{{1, 0}, {0, 1}};
  EXPECT_DOUBLE_EQ(residual_norm(a, {1, 1}, {4, 5}), 5.0);
}

// Property: for random SPD systems, Cholesky and QR agree.
class SolverAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreement, CholeskyMatchesQr) {
  std::mt19937_64 rng(static_cast<unsigned long>(GetParam()));
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  const std::size_t n = 4;
  Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m(r, c) = u(rng);
    }
  }
  // SPD via M^T M + I.
  Matrix a = m.transposed() * m;
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) += 1.0;
  }
  std::vector<double> b(n);
  for (auto& v : b) {
    v = u(rng);
  }
  const auto xc = cholesky_solve(a, b);
  const auto xq = qr_least_squares(a, b);
  ASSERT_TRUE(xc.has_value());
  ASSERT_TRUE(xq.has_value());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR((*xc)[i], (*xq)[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreement, ::testing::Range(0, 25));

}  // namespace
}  // namespace fluxfp::numeric
