// Cross-cutting property suites for the numeric toolbox.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "numeric/hungarian.hpp"
#include "numeric/linalg.hpp"
#include "numeric/nnls.hpp"
#include "numeric/stats.hpp"

namespace fluxfp::numeric {
namespace {

class NumericProperty : public ::testing::TestWithParam<int> {
 protected:
  std::mt19937_64 rng{static_cast<unsigned long>(GetParam())};
  std::uniform_real_distribution<double> unit{0.0, 1.0};
  std::uniform_real_distribution<double> sym{-1.0, 1.0};
};

TEST_P(NumericProperty, NnlsIsScaleEquivariant) {
  // Scaling b by c > 0 scales the NNLS solution and residual by c.
  const std::size_t n = 10, k = 3;
  Matrix a(n, k);
  std::vector<double> b(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      a(r, c) = sym(rng);
    }
    b[r] = sym(rng);
  }
  const double scale = 0.5 + 4.0 * unit(rng);
  std::vector<double> b_scaled(n);
  for (std::size_t r = 0; r < n; ++r) {
    b_scaled[r] = scale * b[r];
  }
  const NnlsResult base = nnls(a, b);
  const NnlsResult scaled = nnls(a, b_scaled);
  EXPECT_NEAR(scaled.residual, scale * base.residual, 1e-6);
  for (std::size_t c = 0; c < k; ++c) {
    EXPECT_NEAR(scaled.x[c], scale * base.x[c], 1e-5);
  }
}

TEST_P(NumericProperty, NnlsResidualNeverWorseThanZeroSolution) {
  const std::size_t n = 8, k = 4;
  Matrix a(n, k);
  std::vector<double> b(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      a(r, c) = sym(rng);
    }
    b[r] = sym(rng);
  }
  const NnlsResult res = nnls(a, b);
  EXPECT_LE(res.residual, norm(b) + 1e-12);
}

TEST_P(NumericProperty, QrMatchesNormalEquations) {
  // For well-conditioned overdetermined systems, QR least squares and the
  // normal-equations Cholesky solution agree.
  const std::size_t n = 12, k = 3;
  Matrix a(n, k);
  std::vector<double> b(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      a(r, c) = sym(rng);
    }
    b[r] = sym(rng);
  }
  const auto qr = qr_least_squares(a, b);
  ASSERT_TRUE(qr.has_value());
  const Matrix at = a.transposed();
  Matrix ata = at * a;
  for (std::size_t i = 0; i < k; ++i) {
    ata(i, i) += 1e-12;  // guard against a freak singular draw
  }
  const auto ne = cholesky_solve(ata, at * b);
  ASSERT_TRUE(ne.has_value());
  for (std::size_t c = 0; c < k; ++c) {
    EXPECT_NEAR((*qr)[c], (*ne)[c], 1e-6);
  }
}

TEST_P(NumericProperty, HungarianInvariantUnderColumnPermutation) {
  const std::size_t n = 5;
  Matrix cost(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      cost(r, c) = unit(rng);
    }
  }
  const double base =
      assignment_cost(cost, hungarian_assign(cost));
  // Permute columns: the optimal total cost is unchanged.
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  std::shuffle(perm.begin(), perm.end(), rng);
  Matrix shuffled(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      shuffled(r, c) = cost(r, perm[c]);
    }
  }
  const double permuted =
      assignment_cost(shuffled, hungarian_assign(shuffled));
  EXPECT_NEAR(base, permuted, 1e-9);
}

TEST_P(NumericProperty, CdfQuantileRoundTrip) {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(sym(rng) * 10.0);
  }
  const EmpiricalCdf cdf(xs);
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double q = cdf.quantile(p);
    EXPECT_GE(cdf.evaluate(q), p - 1e-12);
  }
}

TEST_P(NumericProperty, PercentileBounds) {
  std::vector<double> xs;
  for (int i = 0; i < 30; ++i) {
    xs.push_back(sym(rng) * 5.0);
  }
  const double lo = min_value(xs);
  const double hi = max_value(xs);
  for (double p : {0.0, 0.3, 0.6, 1.0}) {
    const double v = percentile(xs, p);
    EXPECT_GE(v, lo - 1e-12);
    EXPECT_LE(v, hi + 1e-12);
  }
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), lo);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), hi);
}

TEST_P(NumericProperty, CholeskyReconstruction) {
  // Solve then verify A x == b.
  const std::size_t n = 5;
  Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m(r, c) = sym(rng);
    }
  }
  Matrix a = m.transposed() * m;
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) += 1.0;
  }
  std::vector<double> b(n);
  for (auto& v : b) {
    v = sym(rng);
  }
  const auto x = cholesky_solve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(residual_norm(a, *x, b), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NumericProperty, ::testing::Range(0, 15));

}  // namespace
}  // namespace fluxfp::numeric
