#include "numeric/nnls.hpp"

#include <gtest/gtest.h>

#include <random>

#include "numeric/linalg.hpp"

namespace fluxfp::numeric {
namespace {

TEST(NnlsSingle, PositiveOptimum) {
  // min_s ||s*(1,1) - (2,2)|| -> s = 2.
  const std::vector<double> f{1, 1};
  const std::vector<double> b{2, 2};
  EXPECT_DOUBLE_EQ(nnls_single(f, b), 2.0);
}

TEST(NnlsSingle, ClampsNegativeOptimumToZero) {
  const std::vector<double> f{1, 1};
  const std::vector<double> b{-2, -2};
  EXPECT_DOUBLE_EQ(nnls_single(f, b), 0.0);
}

TEST(NnlsSingle, ZeroColumn) {
  const std::vector<double> f{0, 0};
  const std::vector<double> b{1, 2};
  EXPECT_DOUBLE_EQ(nnls_single(f, b), 0.0);
}

TEST(Nnls, UnconstrainedInteriorSolution) {
  // Well-conditioned with positive solution: NNLS == plain LS.
  const Matrix a{{1, 0}, {0, 1}, {1, 1}};
  const std::vector<double> b{1, 2, 3};
  const NnlsResult r = nnls(a, b);
  const auto ls = qr_least_squares(a, b);
  ASSERT_TRUE(ls.has_value());
  EXPECT_NEAR(r.x[0], (*ls)[0], 1e-9);
  EXPECT_NEAR(r.x[1], (*ls)[1], 1e-9);
}

TEST(Nnls, ActiveConstraintZerosOutColumn) {
  // b points along -col1 direction; optimal s1 = 0.
  const Matrix a{{1, 0}, {0, 1}};
  const NnlsResult r = nnls(a, {-5, 3});
  EXPECT_DOUBLE_EQ(r.x[0], 0.0);
  EXPECT_NEAR(r.x[1], 3.0, 1e-9);
  EXPECT_NEAR(r.residual, 5.0, 1e-9);
}

TEST(Nnls, AllZeroWhenBNegativeOrthant) {
  const Matrix a{{1, 0}, {0, 1}};
  const NnlsResult r = nnls(a, {-1, -2});
  EXPECT_DOUBLE_EQ(r.x[0], 0.0);
  EXPECT_DOUBLE_EQ(r.x[1], 0.0);
  EXPECT_NEAR(r.residual, norm({-1, -2}), 1e-12);
}

TEST(Nnls, SingleColumnFastPathMatchesGeneral) {
  const Matrix a{{2}, {1}, {3}};
  const NnlsResult r = nnls(a, {4, 2, 6});
  ASSERT_EQ(r.x.size(), 1u);
  EXPECT_NEAR(r.x[0], 2.0, 1e-12);
  EXPECT_NEAR(r.residual, 0.0, 1e-12);
}

TEST(Nnls, DimensionMismatchReturnsEmpty) {
  const NnlsResult r = nnls(Matrix(2, 2), {1, 2, 3});
  EXPECT_TRUE(r.x.empty());
  EXPECT_FALSE(r.converged);
}

TEST(Nnls, RecoverExactNonnegativeCombination) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const std::size_t n = 20;
  const std::size_t k = 4;
  Matrix a(n, k);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      a(r, c) = u(rng);
    }
  }
  const std::vector<double> truth{1.5, 0.0, 2.25, 0.75};
  const std::vector<double> b = a * truth;
  const NnlsResult r = nnls(a, b);
  ASSERT_EQ(r.x.size(), k);
  for (std::size_t c = 0; c < k; ++c) {
    EXPECT_NEAR(r.x[c], truth[c], 1e-6) << "column " << c;
  }
  EXPECT_NEAR(r.residual, 0.0, 1e-8);
}

// Property: NNLS solutions satisfy the KKT conditions.
class NnlsKkt : public ::testing::TestWithParam<int> {};

TEST_P(NnlsKkt, SolutionSatisfiesKkt) {
  std::mt19937_64 rng(static_cast<unsigned long>(GetParam()));
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  const std::size_t n = 12;
  const std::size_t k = 3;
  Matrix a(n, k);
  std::vector<double> b(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      a(r, c) = u(rng);
    }
    b[r] = u(rng);
  }
  const NnlsResult r = nnls(a, b);
  ASSERT_EQ(r.x.size(), k);
  // Gradient g = A^T(Ax - b): g_j >= 0 for x_j = 0, g_j ~= 0 for x_j > 0.
  const std::vector<double> res = subtract(a * r.x, b);
  for (std::size_t j = 0; j < k; ++j) {
    double g = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      g += a(i, j) * res[i];
    }
    EXPECT_GE(r.x[j], 0.0);
    if (r.x[j] > 1e-9) {
      EXPECT_NEAR(g, 0.0, 1e-6) << "active column " << j;
    } else {
      EXPECT_GE(g, -1e-6) << "inactive column " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnlsKkt, ::testing::Range(0, 30));

}  // namespace
}  // namespace fluxfp::numeric
