#include "numeric/lm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fluxfp::numeric {
namespace {

// Residuals for fitting y = a*exp(b*x) to exact data (a=2, b=0.5).
ResidualFn exponential_fit_problem() {
  return [](const std::vector<double>& p) {
    std::vector<double> r;
    for (int i = 0; i <= 8; ++i) {
      const double x = 0.25 * i;
      const double y = 2.0 * std::exp(0.5 * x);
      r.push_back(p[0] * std::exp(p[1] * x) - y);
    }
    return r;
  };
}

TEST(LevenbergMarquardt, FitsExponential) {
  const LmResult res = levenberg_marquardt(exponential_fit_problem(),
                                           {1.0, 0.0});
  EXPECT_NEAR(res.params[0], 2.0, 1e-5);
  EXPECT_NEAR(res.params[1], 0.5, 1e-5);
  EXPECT_LT(res.cost, 1e-10);
}

TEST(LevenbergMarquardt, SolvesLinearSystemInOneHop) {
  // r(p) = p - target: quadratic bowl.
  const ResidualFn fn = [](const std::vector<double>& p) {
    return std::vector<double>{p[0] - 3.0, p[1] + 2.0};
  };
  const LmResult res = levenberg_marquardt(fn, {0.0, 0.0});
  EXPECT_NEAR(res.params[0], 3.0, 1e-8);
  EXPECT_NEAR(res.params[1], -2.0, 1e-8);
  EXPECT_TRUE(res.converged);
}

TEST(LevenbergMarquardt, RosenbrockValley) {
  // Classic hard valley as least squares: r = (10(y - x^2), 1 - x).
  const ResidualFn fn = [](const std::vector<double>& p) {
    return std::vector<double>{10.0 * (p[1] - p[0] * p[0]), 1.0 - p[0]};
  };
  LmOptions opts;
  opts.max_iter = 300;
  const LmResult res = levenberg_marquardt(fn, {-1.2, 1.0}, opts);
  EXPECT_NEAR(res.params[0], 1.0, 1e-4);
  EXPECT_NEAR(res.params[1], 1.0, 1e-4);
}

TEST(LevenbergMarquardt, AlreadyAtOptimumConvergesImmediately) {
  const LmResult res = levenberg_marquardt(exponential_fit_problem(),
                                           {2.0, 0.5});
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 2);
}

TEST(LevenbergMarquardt, CostNeverIncreases) {
  const ResidualFn fn = exponential_fit_problem();
  const std::vector<double> start{0.5, 1.5};
  double prev_cost = 0.0;
  for (double r : fn(start)) {
    prev_cost += 0.5 * r * r;
  }
  const LmResult res = levenberg_marquardt(fn, start);
  EXPECT_LE(res.cost, prev_cost);
}

TEST(GaussNewton, FitsExponential) {
  const LmResult res = gauss_newton(exponential_fit_problem(), {1.5, 0.4});
  EXPECT_NEAR(res.params[0], 2.0, 1e-5);
  EXPECT_NEAR(res.params[1], 0.5, 1e-5);
}

TEST(GaussNewton, LinearProblemOneStep) {
  const ResidualFn fn = [](const std::vector<double>& p) {
    return std::vector<double>{2.0 * p[0] - 4.0};
  };
  const LmResult res = gauss_newton(fn, {0.0});
  EXPECT_NEAR(res.params[0], 2.0, 1e-8);
}

// The flux-model objective over a rectangular field is non-differentiable;
// this miniature version (|p| kinks) shows LM stalling away from the true
// minimum while remaining finite — the failure mode §4.A cites.
TEST(LevenbergMarquardt, NonDifferentiableObjectiveStaysFinite) {
  const ResidualFn fn = [](const std::vector<double>& p) {
    return std::vector<double>{std::abs(p[0] - 1.0) + 0.1,
                               std::abs(p[0] + 1.0) + 0.1};
  };
  const LmResult res = levenberg_marquardt(fn, {0.37});
  EXPECT_TRUE(std::isfinite(res.params[0]));
  EXPECT_TRUE(std::isfinite(res.cost));
}

class LmRandomStarts : public ::testing::TestWithParam<int> {};

TEST_P(LmRandomStarts, ExponentialFitFromVariedStarts) {
  const double a0 = 0.5 + 0.25 * GetParam();
  const double b0 = -0.2 + 0.1 * GetParam();
  LmOptions opts;
  opts.max_iter = 200;
  const LmResult res =
      levenberg_marquardt(exponential_fit_problem(), {a0, b0}, opts);
  EXPECT_NEAR(res.params[0], 2.0, 1e-3);
  EXPECT_NEAR(res.params[1], 0.5, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Starts, LmRandomStarts, ::testing::Range(0, 8));

}  // namespace
}  // namespace fluxfp::numeric
