#include "numeric/matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fluxfp::numeric {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  const Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, ConstructionAndFill) {
  const Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, InitializerListRejectsRagged) {
  EXPECT_THROW(Matrix({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  m.at(1, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(1, 1), 7.0);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Transpose) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, Multiply) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_EQ(c, Matrix({{19, 22}, {43, 50}}));
}

TEST(Matrix, MultiplyByIdentity) {
  const Matrix a{{1, 2}, {3, 4}};
  EXPECT_EQ(a * Matrix::identity(2), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  EXPECT_THROW(Matrix(2, 3) * Matrix(2, 3), std::invalid_argument);
}

TEST(Matrix, AddSubtract) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{4, 3}, {2, 1}};
  EXPECT_EQ(a + b, Matrix({{5, 5}, {5, 5}}));
  EXPECT_EQ(a - a, Matrix(2, 2, 0.0));
  EXPECT_THROW(a + Matrix(3, 2), std::invalid_argument);
}

TEST(Matrix, ScalarMultiply) {
  EXPECT_EQ(Matrix({{1, 2}}) * 2.0, Matrix({{2, 4}}));
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> v{1, 1};
  const std::vector<double> out = a * v;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
  const std::vector<double> wrong{1, 2, 3};
  EXPECT_THROW(a * wrong, std::invalid_argument);
}

TEST(Matrix, FrobeniusNorm) {
  EXPECT_DOUBLE_EQ(Matrix({{3, 0}, {0, 4}}).frobenius_norm(), 5.0);
}

TEST(Matrix, StreamOutput) {
  std::ostringstream ss;
  ss << Matrix{{1, 2}};
  EXPECT_EQ(ss.str(), "[1, 2]");
}

TEST(VectorOps, Norm) {
  EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm({}), 0.0);
}

TEST(VectorOps, Dot) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_THROW(dot({1}, {1, 2}), std::invalid_argument);
}

TEST(VectorOps, Subtract) {
  const std::vector<double> d = subtract({5, 7}, {2, 3});
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], 4.0);
  EXPECT_THROW(subtract({1}, {1, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace fluxfp::numeric
