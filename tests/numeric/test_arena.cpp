#include "numeric/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace fluxfp::numeric {
namespace {

bool aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
}

TEST(Arena, ReturnsCacheLineAlignedSpans) {
  Arena arena(256);
  EXPECT_TRUE(aligned64(arena.alloc<double>(3).data()));
  EXPECT_TRUE(aligned64(arena.alloc<char>(1).data()));
  EXPECT_TRUE(aligned64(arena.alloc<std::size_t>(5).data()));
}

TEST(Arena, SpansDoNotOverlapWithinAnEpoch) {
  Arena arena;
  const auto a = arena.alloc<double>(10);
  const auto b = arena.alloc<double>(10);
  ASSERT_EQ(a.size(), 10u);
  ASSERT_EQ(b.size(), 10u);
  // Writes through one span must not show through the other.
  for (std::size_t i = 0; i < 10; ++i) {
    a[i] = 1.0;
    b[i] = 2.0;
  }
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i], 1.0);
    EXPECT_EQ(b[i], 2.0);
  }
}

TEST(Arena, AllocZeroedValueInitializes) {
  Arena arena;
  // Dirty the storage first so zeroing is observable.
  auto dirty = arena.alloc<double>(64);
  for (double& v : dirty) {
    v = -1.0;
  }
  arena.reset();
  const auto z = arena.alloc_zeroed<double>(64);
  for (double v : z) {
    EXPECT_EQ(v, 0.0);
  }
}

TEST(Arena, SteadyStateEpochsReuseTheHeadBlock) {
  Arena arena(1 << 12);
  double* first_epoch = nullptr;
  for (int epoch = 0; epoch < 5; ++epoch) {
    arena.reset();
    const auto s = arena.alloc<double>(100);
    if (first_epoch == nullptr) {
      first_epoch = s.data();
    } else {
      // Same demand, same block, same address: no allocator traffic.
      EXPECT_EQ(s.data(), first_epoch);
    }
  }
  EXPECT_EQ(arena.stats().overflow_blocks, 0u);
}

TEST(Arena, OverflowGrowsAndResetCoalesces) {
  Arena arena(128);  // deliberately tiny head block
  arena.alloc<double>(8);
  arena.alloc<double>(1000);   // cannot fit: overflow block
  arena.alloc<double>(2000);   // another one
  EXPECT_GE(arena.stats().overflow_blocks, 1u);
  const std::size_t high_water = arena.stats().high_water_bytes;
  EXPECT_GE(high_water, (8 + 1000 + 2000) * sizeof(double));

  arena.reset();
  EXPECT_EQ(arena.stats().overflow_blocks, 0u);
  EXPECT_EQ(arena.stats().used_bytes, 0u);
  // After coalescing, the former worst case fits the head block whole.
  const auto a = arena.alloc<double>(8);
  const auto b = arena.alloc<double>(1000);
  const auto c = arena.alloc<double>(2000);
  EXPECT_EQ(arena.stats().overflow_blocks, 0u);
  a[0] = b[0] = c[0] = 1.0;
  EXPECT_GE(arena.stats().block_bytes, high_water);
}

TEST(Arena, StatsTrackUsage) {
  Arena arena(1 << 12);
  EXPECT_EQ(arena.stats().used_bytes, 0u);
  arena.alloc<double>(16);
  const Arena::Stats s = arena.stats();
  EXPECT_GE(s.used_bytes, 16 * sizeof(double));
  EXPECT_GE(s.high_water_bytes, s.used_bytes);
  arena.reset();
  EXPECT_EQ(arena.stats().used_bytes, 0u);
  EXPECT_GE(arena.stats().high_water_bytes, 16 * sizeof(double));
}

TEST(Arena, ZeroCountAllocIsLegal) {
  Arena arena;
  const auto s = arena.alloc<double>(0);
  EXPECT_EQ(s.size(), 0u);
}

TEST(Arena, MoveTransfersBlocks) {
  Arena a(1 << 12);
  const auto s = a.alloc<double>(4);
  s[0] = 42.0;
  Arena b = std::move(a);
  // Spans handed out before the move stay valid: the block moved, not the
  // storage.
  EXPECT_EQ(s[0], 42.0);
  const auto t = b.alloc<double>(4);
  t[0] = 7.0;
  EXPECT_EQ(s[0], 42.0);
}

}  // namespace
}  // namespace fluxfp::numeric
