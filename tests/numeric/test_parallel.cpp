#include "numeric/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fluxfp::numeric {
namespace {

/// Restores the ambient worker count when a test exits so these tests
/// cannot leak a thread-count override into the rest of the binary.
struct ThreadCountGuard {
  ~ThreadCountGuard() { set_thread_count(0); }
};

TEST(ParallelConfig, SetThreadCountRoundTrips) {
  ThreadCountGuard guard;
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
  set_thread_count(0);  // auto
  EXPECT_GE(thread_count(), 1u);
}

TEST(ParallelFor, EmptyRangeNeverInvokes) {
  ThreadCountGuard guard;
  set_thread_count(4);
  bool called = false;
  parallel_for(0, 0, [&](std::size_t) { called = true; });
  parallel_for(7, 7, [&](std::size_t) { called = true; });
  parallel_for(9, 3, [&](std::size_t) { called = true; });  // begin > end
  parallel_for_ranges(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, EveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    set_thread_count(threads);
    for (const std::size_t count : {1u, 2u, 13u, 100u, 1000u}) {
      std::vector<std::atomic<int>> hits(count);
      parallel_for(0, count, [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i].load(), 1)
            << "threads=" << threads << " count=" << count << " i=" << i;
      }
    }
  }
}

TEST(ParallelFor, NonZeroBeginCoversExactRange) {
  ThreadCountGuard guard;
  set_thread_count(4);
  const std::size_t begin = 17;
  const std::size_t end = 517;
  std::vector<std::atomic<int>> hits(end);
  parallel_for(begin, end, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < end; ++i) {
    ASSERT_EQ(hits[i].load(), i >= begin ? 1 : 0) << "i=" << i;
  }
}

TEST(ParallelForRanges, ChunksAreDisjointAndCoverRange) {
  ThreadCountGuard guard;
  set_thread_count(4);
  const std::size_t begin = 5;
  const std::size_t end = 1005;
  std::vector<std::atomic<int>> hits(end);
  parallel_for_ranges(begin, end, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LE(begin, lo);
    EXPECT_LT(lo, hi);
    EXPECT_LE(hi, end);
    for (std::size_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (std::size_t i = begin; i < end; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ParallelFor, PropagatesExceptionAndPoolSurvives) {
  ThreadCountGuard guard;
  set_thread_count(4);
  EXPECT_THROW(parallel_for(0, 1000,
                            [](std::size_t i) {
                              if (i == 437) {
                                throw std::runtime_error("boom");
                              }
                            }),
               std::runtime_error);
  // The pool must stay fully usable after a thrown region.
  std::vector<std::atomic<int>> hits(200);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST(ParallelFor, SingleThreadRunsInlineOnCaller) {
  ThreadCountGuard guard;
  set_thread_count(1);
  // fluxfp-lint: allow(no-nondeterminism) -- the test's whole point is
  // observing which thread ran; the id never feeds a result.
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> wrong_thread{0};
  parallel_for(0, 64, [&](std::size_t) {
    // fluxfp-lint: allow(no-nondeterminism) -- see above.
    if (std::this_thread::get_id() != caller) {
      wrong_thread.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong_thread.load(), 0);
}

TEST(ParallelFor, NestedCallsDegradeToSerial) {
  ThreadCountGuard guard;
  set_thread_count(4);
  const std::size_t outer = 8;
  const std::size_t inner = 50;
  std::vector<double> sums(outer, 0.0);
  parallel_for(0, outer, [&](std::size_t o) {
    // The nested region must run inline on this thread; sums[o] is only
    // ever touched by the worker that owns index o.
    parallel_for(0, inner,
                 [&](std::size_t i) { sums[o] += static_cast<double>(i); });
  });
  const double expected = static_cast<double>(inner * (inner - 1)) / 2.0;
  for (std::size_t o = 0; o < outer; ++o) {
    EXPECT_DOUBLE_EQ(sums[o], expected);
  }
}

TEST(ParallelFor, OutputsBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const auto compute = [](std::size_t threads) {
    set_thread_count(threads);
    std::vector<double> out(512);
    parallel_for(0, out.size(), [&](std::size_t i) {
      const double x = static_cast<double>(i) * 0.37 + 1.0;
      out[i] = std::sqrt(x) + std::sin(x) / x;
    });
    return out;
  };
  const std::vector<double> serial = compute(1);
  EXPECT_EQ(serial, compute(2));
  EXPECT_EQ(serial, compute(4));
  EXPECT_EQ(serial, compute(7));
}

}  // namespace
}  // namespace fluxfp::numeric
