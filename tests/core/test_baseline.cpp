#include "core/baseline.hpp"

#include <gtest/gtest.h>

#include "eval/metrics.hpp"

namespace fluxfp::core {
namespace {

struct World {
  geom::RectField field{30.0, 30.0};
  FluxModel model{field, 1.0};
  std::vector<geom::Vec2> samples;

  explicit World(std::uint64_t seed, std::size_t n = 70) {
    geom::Rng rng(seed);
    samples = geom::uniform_points(field, n, rng);
  }

  SparseObjective observe(const std::vector<geom::Vec2>& sinks,
                          const std::vector<double>& stretches) const {
    std::vector<double> measured(samples.size(), 0.0);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      for (std::size_t j = 0; j < sinks.size(); ++j) {
        measured[i] += stretches[j] * model.shape(sinks[j], samples[i]);
      }
    }
    return SparseObjective(model, samples, measured);
  }
};

LocalizerConfig fast_localizer() {
  LocalizerConfig cfg;
  cfg.candidates_per_user = 1500;
  return cfg;
}

TEST(InstantNlsTracker, LocatesStaticUser) {
  const World w(1);
  InstantNlsTracker tracker(w.field, 1, fast_localizer());
  geom::Rng rng(2);
  const auto est = tracker.step(w.observe({{10, 20}}, {2.0}), rng);
  ASSERT_EQ(est.size(), 1u);
  EXPECT_LT(geom::distance(est[0], {10, 20}), 1.5);
}

TEST(InstantNlsTracker, IdentityContinuityAcrossRounds) {
  const World w(3);
  InstantNlsTracker tracker(w.field, 2, fast_localizer());
  geom::Rng rng(4);
  // Two well-separated users: estimates[i] should stay with "its" user.
  const geom::Vec2 a0{5, 5};
  const geom::Vec2 b0{25, 25};
  auto est = tracker.step(w.observe({a0, b0}, {2.0, 2.0}), rng);
  const bool zero_is_a = geom::distance(est[0], a0) < geom::distance(est[0], b0);
  for (int round = 1; round <= 3; ++round) {
    const geom::Vec2 a{5.0 + round, 5.0};
    const geom::Vec2 b{25.0 - round, 25.0};
    est = tracker.step(w.observe({a, b}, {2.0, 2.0}), rng);
    const geom::Vec2 expect0 = zero_is_a ? a : b;
    EXPECT_LT(geom::distance(est[0], expect0), 4.0) << "round " << round;
  }
}

TEST(EkfTracker, LocatesStaticUser) {
  const World w(5);
  EkfConfig cfg;
  cfg.localizer = fast_localizer();
  EkfTracker tracker(w.field, 1, cfg);
  geom::Rng rng(6);
  std::vector<geom::Vec2> est;
  for (int round = 0; round < 5; ++round) {
    est = tracker.step(w.observe({{18, 9}}, {2.0}), 1.0, rng);
  }
  ASSERT_EQ(est.size(), 1u);
  EXPECT_LT(geom::distance(est[0], {18, 9}), 1.5);
}

TEST(EkfTracker, EstimatesStayInField) {
  const World w(7);
  EkfConfig cfg;
  cfg.localizer = fast_localizer();
  EkfTracker tracker(w.field, 1, cfg);
  geom::Rng rng(8);
  for (int round = 0; round < 6; ++round) {
    const geom::Vec2 truth{1.0, 1.0 + 0.5 * round};  // near the corner
    const auto est = tracker.step(w.observe({truth}, {2.0}), 1.0, rng);
    EXPECT_TRUE(w.field.contains(est[0]));
  }
}

TEST(EkfTracker, VelocityLearnedForLinearMotion) {
  const World w(9);
  EkfConfig cfg;
  cfg.localizer = fast_localizer();
  cfg.observation_noise = 1.0;
  EkfTracker tracker(w.field, 1, cfg);
  geom::Rng rng(10);
  geom::Vec2 truth;
  std::vector<geom::Vec2> est;
  for (int round = 0; round < 10; ++round) {
    truth = {4.0 + 2.0 * round, 15.0};
    est = tracker.step(w.observe({truth}, {2.0}), 1.0, rng);
  }
  EXPECT_LT(geom::distance(est[0], truth), 2.5);
}

TEST(EkfTracker, TwoUsersMatchedToStates) {
  const World w(11);
  EkfConfig cfg;
  cfg.localizer = fast_localizer();
  EkfTracker tracker(w.field, 2, cfg);
  geom::Rng rng(12);
  std::vector<geom::Vec2> truths{{6, 6}, {24, 22}};
  std::vector<geom::Vec2> est;
  for (int round = 0; round < 5; ++round) {
    est = tracker.step(w.observe(truths, {2.0, 2.0}), 1.0, rng);
  }
  EXPECT_LT(eval::matched_mean_error(est, truths), 2.5);
}

}  // namespace
}  // namespace fluxfp::core
