#include "core/smc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.hpp"
#include "net/flux.hpp"

namespace fluxfp::core {
namespace {

/// Synthetic observation source: measured flux generated directly from the
/// model for user positions that evolve per round.
struct World {
  geom::RectField field{30.0, 30.0};
  FluxModel model{field, 1.0};
  std::vector<geom::Vec2> samples;

  explicit World(std::uint64_t seed, std::size_t n = 80) {
    geom::Rng rng(seed);
    samples = geom::uniform_points(field, n, rng);
  }

  SparseObjective observe(const std::vector<geom::Vec2>& sinks,
                          const std::vector<double>& stretches) const {
    std::vector<double> measured(samples.size(), 0.0);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      for (std::size_t j = 0; j < sinks.size(); ++j) {
        measured[i] += stretches[j] * model.shape(sinks[j], samples[i]);
      }
    }
    return SparseObjective(model, samples, measured);
  }
};

SmcConfig fast_config() {
  SmcConfig cfg;
  cfg.num_predictions = 400;
  cfg.num_keep = 10;
  cfg.vmax = 5.0;
  return cfg;
}

TEST(SmcTracker, RejectsBadConstruction) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(1);
  EXPECT_THROW(SmcTracker(f, 0, fast_config(), rng), std::invalid_argument);
  SmcConfig bad = fast_config();
  bad.num_keep = 0;
  EXPECT_THROW(SmcTracker(f, 1, bad, rng), std::invalid_argument);
  bad = fast_config();
  bad.vmax = 0.0;
  EXPECT_THROW(SmcTracker(f, 1, bad, rng), std::invalid_argument);
}

TEST(SmcTracker, InitialParticlesUniformWeights) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(2);
  const SmcTracker t(f, 2, fast_config(), rng);
  for (std::size_t u = 0; u < 2; ++u) {
    const auto& set = t.particles(u);
    ASSERT_EQ(set.size(), 10u);
    for (const Particle& p : set) {
      EXPECT_DOUBLE_EQ(p.weight, 0.1);
      EXPECT_TRUE(f.contains(p.position));
    }
  }
}

TEST(SmcTracker, ConvergesToStaticUser) {
  const World w(3);
  geom::Rng rng(4);
  SmcTracker tracker(w.field, 1, fast_config(), rng);
  const geom::Vec2 truth{11.0, 19.0};
  double final_err = 1e18;
  for (int round = 1; round <= 8; ++round) {
    const SparseObjective obj = w.observe({truth}, {2.0});
    tracker.step(static_cast<double>(round), obj, rng);
    final_err = geom::distance(tracker.estimate(0), truth);
  }
  EXPECT_LT(final_err, 1.5);
}

TEST(SmcTracker, TracksMovingUser) {
  const World w(5);
  geom::Rng rng(6);
  SmcTracker tracker(w.field, 1, fast_config(), rng);
  // Straight line at speed 2.5 per round (< vmax = 5).
  for (int round = 1; round <= 10; ++round) {
    const geom::Vec2 truth{2.5 + 2.5 * round, 15.0};
    const SparseObjective obj = w.observe({truth}, {2.0});
    tracker.step(static_cast<double>(round), obj, rng);
  }
  const geom::Vec2 final_truth{2.5 + 2.5 * 10, 15.0};
  EXPECT_LT(geom::distance(tracker.estimate(0), final_truth), 2.5);
}

TEST(SmcTracker, TracksTwoUsers) {
  const World w(7);
  geom::Rng rng(8);
  SmcTracker tracker(w.field, 2, fast_config(), rng);
  std::vector<geom::Vec2> truths;
  for (int round = 1; round <= 10; ++round) {
    truths = {{4.0 + 2.0 * round, 8.0}, {26.0 - 2.0 * round, 24.0}};
    const SparseObjective obj = w.observe(truths, {2.0, 2.0});
    tracker.step(static_cast<double>(round), obj, rng);
  }
  const std::vector<geom::Vec2> est{tracker.estimate(0), tracker.estimate(1)};
  EXPECT_LT(eval::matched_mean_error(est, truths), 3.0);
}

TEST(SmcTracker, EmptyWindowUpdatesNobody) {
  const World w(9);
  geom::Rng rng(10);
  SmcTracker tracker(w.field, 2, fast_config(), rng);
  const SparseObjective obj = w.observe({}, {});
  const SmcStepResult res = tracker.step(1.0, obj, rng);
  EXPECT_FALSE(res.updated[0]);
  EXPECT_FALSE(res.updated[1]);
  EXPECT_DOUBLE_EQ(tracker.last_update_time(0), 0.0);
}

TEST(SmcTracker, AsynchronousInactiveUserNotUpdated) {
  const World w(11);
  geom::Rng rng(12);
  SmcTracker tracker(w.field, 2, fast_config(), rng);
  // Only user 0 collects; user 1's best-fit stretch ~ 0.
  const SparseObjective obj = w.observe({{8, 8}}, {2.0});
  const SmcStepResult res = tracker.step(1.0, obj, rng);
  EXPECT_TRUE(res.updated[0]);
  EXPECT_FALSE(res.updated[1]);
  EXPECT_DOUBLE_EQ(tracker.last_update_time(0), 1.0);
  EXPECT_DOUBLE_EQ(tracker.last_update_time(1), 0.0);
}

TEST(SmcTracker, AsynchronousUserResumesWithGrownRadius) {
  const World w(13);
  geom::Rng rng(14);
  SmcConfig cfg = fast_config();
  cfg.vmax = 2.0;
  SmcTracker tracker(w.field, 1, cfg, rng);
  // Rounds 1-4: user collects at (5,15); tracker locks on.
  for (int round = 1; round <= 4; ++round) {
    const SparseObjective obj = w.observe({{5, 15}}, {2.0});
    tracker.step(static_cast<double>(round), obj, rng);
  }
  // Rounds 5-8: silent (moves meanwhile to (17,15), 12 units away — more
  // than vmax per round but within vmax * accumulated dt = 2*5).
  for (int round = 5; round <= 8; ++round) {
    const SparseObjective obj = w.observe({}, {});
    const auto res = tracker.step(static_cast<double>(round), obj, rng);
    EXPECT_FALSE(res.updated[0]);
  }
  // Round 9: reappears far away; the enlarged disc must reach it.
  const SparseObjective obj = w.observe({{17, 15}}, {2.0});
  const auto res = tracker.step(9.0, obj, rng);
  EXPECT_TRUE(res.updated[0]);
  EXPECT_LT(geom::distance(tracker.estimate(0), {17, 15}), 4.0);
}

TEST(SmcTracker, WeightsNormalized) {
  const World w(15);
  geom::Rng rng(16);
  SmcTracker tracker(w.field, 1, fast_config(), rng);
  const SparseObjective obj = w.observe({{20, 10}}, {2.0});
  tracker.step(1.0, obj, rng);
  double sum = 0.0;
  for (const Particle& p : tracker.particles(0)) {
    sum += p.weight;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(SmcTracker, ImportanceSamplingOffGivesUniformWeights) {
  const World w(17);
  geom::Rng rng(18);
  SmcConfig cfg = fast_config();
  cfg.importance_sampling = false;
  SmcTracker tracker(w.field, 1, cfg, rng);
  const SparseObjective obj = w.observe({{20, 10}}, {2.0});
  tracker.step(1.0, obj, rng);
  for (const Particle& p : tracker.particles(0)) {
    EXPECT_NEAR(p.weight, 0.1, 1e-12);
  }
}

TEST(SmcTracker, HeadingEstimatedAfterTwoUpdates) {
  const World w(21);
  geom::Rng rng(22);
  SmcConfig cfg = fast_config();
  cfg.heading_aware = true;
  SmcTracker tracker(w.field, 1, cfg, rng);
  EXPECT_EQ(tracker.heading(0), geom::Vec2());
  for (int round = 1; round <= 6; ++round) {
    const geom::Vec2 truth{3.0 + 3.0 * round, 15.0};
    const SparseObjective obj = w.observe({truth}, {2.0});
    tracker.step(static_cast<double>(round), obj, rng);
  }
  const geom::Vec2 h = tracker.heading(0);
  ASSERT_GT(h.norm(), 0.0);
  EXPECT_NEAR(h.norm(), 1.0, 1e-9);
  // Moving in +x: heading should point mostly along +x.
  EXPECT_GT(h.x, 0.6);
}

TEST(SmcTracker, HeadingAwareTracksAtLeastAsWell) {
  const World w(23);
  auto final_error = [&](bool heading) {
    geom::Rng rng(24);
    SmcConfig cfg = fast_config();
    cfg.heading_aware = heading;
    SmcTracker tracker(w.field, 1, cfg, rng);
    geom::Vec2 truth;
    for (int round = 1; round <= 10; ++round) {
      truth = {2.0 + 2.5 * round, 12.0};
      const SparseObjective obj = w.observe({truth}, {2.0});
      tracker.step(static_cast<double>(round), obj, rng);
    }
    return geom::distance(tracker.estimate(0), truth);
  };
  // Both configurations must track; the heading prior shouldn't hurt on a
  // straight trajectory.
  EXPECT_LT(final_error(false), 3.0);
  EXPECT_LT(final_error(true), 3.0);
}

TEST(SmcTracker, HeadingConfigValidation) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(25);
  SmcConfig bad = fast_config();
  bad.heading_mix = 1.5;
  EXPECT_THROW(SmcTracker(f, 1, bad, rng), std::invalid_argument);
  bad = fast_config();
  bad.heading_half_angle = 0.0;
  EXPECT_THROW(SmcTracker(f, 1, bad, rng), std::invalid_argument);
}

TEST(SmcTracker, WorksOnCircleField) {
  // The tracker is field-shape agnostic: same pipeline on a CircleField.
  const geom::CircleField field({15, 15}, 15.0);
  FluxModel model(field, 1.0);
  geom::Rng srng(26);
  const std::vector<geom::Vec2> samples =
      geom::uniform_points(field, 80, srng);
  auto observe = [&](geom::Vec2 sink) {
    std::vector<double> measured(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      measured[i] = 2.0 * model.shape(sink, samples[i]);
    }
    return SparseObjective(model, samples, measured);
  };
  geom::Rng rng(27);
  SmcTracker tracker(field, 1, fast_config(), rng);
  geom::Vec2 truth;
  for (int round = 1; round <= 8; ++round) {
    truth = {6.0 + 2.0 * round, 15.0};
    tracker.step(static_cast<double>(round), observe(truth), rng);
  }
  EXPECT_LT(geom::distance(tracker.estimate(0), truth), 3.0);
  EXPECT_TRUE(field.contains(tracker.estimate(0), 1e-9));
}

TEST(SmcTracker, FullyDeterministicGivenSeed) {
  // Reproducibility contract: identical seeds => identical trackers,
  // bit for bit, across construction and every step.
  const World w(32);
  auto run = [&]() {
    geom::Rng rng(33);
    SmcTracker tracker(w.field, 2, fast_config(), rng);
    for (int round = 1; round <= 5; ++round) {
      const SparseObjective obj = w.observe(
          {{5.0 + round, 10.0}, {25.0 - round, 20.0}}, {2.0, 2.5});
      tracker.step(static_cast<double>(round), obj, rng);
    }
    return std::make_pair(tracker.estimate(0), tracker.estimate(1));
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(SmcTracker, CovarianceIsSymmetricPsd) {
  const World w(28);
  geom::Rng rng(29);
  SmcTracker tracker(w.field, 1, fast_config(), rng);
  const SparseObjective obj = w.observe({{12, 12}}, {2.0});
  tracker.step(1.0, obj, rng);
  const std::array<double, 4> c = tracker.covariance(0);
  EXPECT_DOUBLE_EQ(c[1], c[2]);
  EXPECT_GE(c[0], 0.0);
  EXPECT_GE(c[3], 0.0);
  // det >= 0 for a PSD 2x2.
  EXPECT_GE(c[0] * c[3] - c[1] * c[2], -1e-9);
}

TEST(SmcTracker, SpreadShrinksAsFilterConverges) {
  const World w(30);
  geom::Rng rng(31);
  SmcTracker tracker(w.field, 1, fast_config(), rng);
  const double initial = tracker.spread(0);  // uniform prior: large
  for (int round = 1; round <= 6; ++round) {
    const SparseObjective obj = w.observe({{14, 16}}, {2.0});
    tracker.step(static_cast<double>(round), obj, rng);
  }
  EXPECT_LT(tracker.spread(0), 0.8 * initial);
  EXPECT_GT(initial, 5.0);  // uniform over a 30x30 field is wide
}

// Divergence-recovery seam audit: a window with ZERO valid readings (all
// sniffers missing) must be a true no-op — no RNG draw, no divergence
// counting, no recovery grid scan, and a finite estimate — so a run that
// hits an outage round continues bit-identically to one whose outage round
// never arrived. geom::Rng is mt19937_64, so operator== compares the full
// engine state: any hidden draw on the empty path fails these directly.
TEST(SmcTracker, AllMissingWindowConsumesNoRngAndStaysFinite) {
  const World w(23);
  SmcConfig cfg = fast_config();
  cfg.divergence_recovery = true;  // the recovery path must NOT trigger
  cfg.recovery_grid = 12;
  cfg.divergence_rounds = 1;       // hair trigger: any counted bad round
  cfg.robust.loss = RobustLoss::kHuber;

  geom::Rng with_gap_rng(24);
  geom::Rng no_gap_rng(24);
  SmcTracker with_gap(w.field, 2, cfg, with_gap_rng);
  SmcTracker no_gap(w.field, 2, cfg, no_gap_rng);
  ASSERT_TRUE(with_gap_rng == no_gap_rng);

  const std::vector<geom::Vec2> truths{{8.0, 12.0}, {22.0, 18.0}};
  const SparseObjective good = w.observe(truths, {2.0, 2.5});
  with_gap.step(1.0, good, with_gap_rng);
  no_gap.step(1.0, good, no_gap_rng);

  // Round 2 of the gap run: every reading missing. The twin simply never
  // sees a round-2 window.
  std::vector<double> missing(w.samples.size(), net::kMissingReading);
  const SparseObjective empty(w.model, w.samples, std::move(missing));
  ASSERT_EQ(empty.sample_count(), 0u);
  const geom::Rng before_empty = with_gap_rng;
  const SmcStepResult gap_res = with_gap.step(2.0, empty, with_gap_rng);
  EXPECT_TRUE(with_gap_rng == before_empty) << "empty window drew from RNG";
  EXPECT_EQ(with_gap.consecutive_bad_rounds(), 0);
  for (std::size_t u = 0; u < 2; ++u) {
    EXPECT_FALSE(gap_res.updated[u]);
    EXPECT_TRUE(std::isfinite(gap_res.best[u].x));
    EXPECT_TRUE(std::isfinite(gap_res.best[u].y));
    EXPECT_EQ(gap_res.best[u], with_gap.estimate(u));
  }
  EXPECT_FALSE(gap_res.recovered);

  // Round 3 resumes: both runs must agree bit-exactly, RNG included.
  const std::vector<geom::Vec2> moved{{8.5, 12.4}, {21.5, 17.7}};
  const SparseObjective next = w.observe(moved, {2.0, 2.5});
  with_gap.step(3.0, next, with_gap_rng);
  no_gap.step(3.0, next, no_gap_rng);
  EXPECT_TRUE(with_gap_rng == no_gap_rng);
  for (std::size_t u = 0; u < 2; ++u) {
    EXPECT_EQ(with_gap.estimate(u), no_gap.estimate(u));
    EXPECT_EQ(with_gap.spread(u), no_gap.spread(u));
  }
}

TEST(SmcTracker, StepReportsStretches) {
  const World w(19);
  geom::Rng rng(20);
  SmcTracker tracker(w.field, 1, fast_config(), rng);
  SmcStepResult res;
  for (int round = 1; round <= 5; ++round) {
    const SparseObjective obj = w.observe({{15, 15}}, {2.5});
    res = tracker.step(static_cast<double>(round), obj, rng);
  }
  ASSERT_EQ(res.stretches.size(), 1u);
  EXPECT_NEAR(res.stretches[0], 2.5, 0.8);
}

}  // namespace
}  // namespace fluxfp::core
