// The ObservationModel seam: FluxModel's adapter must be a zero-cost
// rename of its legacy entry points, the two new backends must honor the
// same contract (finite non-negative shapes, throw on non-finite
// positions, row form bit-identical to the scalar form), and every
// likelihood denominator must be guarded against the r -> 0 degeneracies
// (the discrete-flux satellite audit).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/flux_model.hpp"
#include "core/nls.hpp"
#include "core/observation_model.hpp"
#include "core/passive_trace_model.hpp"
#include "core/rss_link_model.hpp"
#include "geom/field.hpp"
#include "geom/sampling.hpp"
#include "numeric/simd/kernels.hpp"

namespace fluxfp::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ModelId, NamesAndKnownIds) {
  EXPECT_STREQ(model_name(ModelId::kFlux), "flux");
  EXPECT_STREQ(model_name(ModelId::kRssLink), "rss-link");
  EXPECT_STREQ(model_name(ModelId::kPassiveTrace), "passive-trace");
  EXPECT_TRUE(known_model_id(0));
  EXPECT_TRUE(known_model_id(1));
  EXPECT_TRUE(known_model_id(2));
  EXPECT_FALSE(known_model_id(3));
  EXPECT_FALSE(known_model_id(255));
}

// -------------------------------------------------------------------------
// FluxModel through the interface: the adapter must be a pure rename.
// -------------------------------------------------------------------------

TEST(FluxModelAdapter, SiteShapeEqualsLegacyShape) {
  const geom::RectField field(30.0, 30.0);
  const FluxModel model(field, 1.2);
  EXPECT_EQ(model.id(), ModelId::kFlux);
  EXPECT_FALSE(model.sites_are_links());
  geom::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const geom::Vec2 sink = geom::uniform_in_field(field, rng);
    const geom::Vec2 node = geom::uniform_in_field(field, rng);
    // Bit-exact: site_shape must forward, not recompute differently.
    EXPECT_EQ(model.site_shape(sink, point_site(node)),
              model.shape(sink, node));
  }
}

TEST(FluxModelAdapter, SiteShapeRowForwardsToLegacyRow) {
  const geom::RectField field(30.0, 30.0);
  const FluxModel model(field, 1.2);
  geom::Rng rng(12);
  const std::size_t n = 37;  // odd: exercises the scalar tail
  std::vector<double> qx(n), qy(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Vec2 q = geom::uniform_in_field(field, rng);
    qx[i] = q.x;
    qy[i] = q.y;
  }
  const geom::Vec2 sink = geom::uniform_in_field(field, rng);
  const SiteRows rows{qx.data(), qy.data(), qx.data(), qy.data()};
  std::vector<double> via_iface(n, -1.0), via_legacy(n, -1.0);
  const bool ok_iface = model.site_shape_row(sink, rows, n, via_iface.data());
  const bool ok_legacy =
      model.shape_row(sink, qx.data(), qy.data(), n, via_legacy.data());
  ASSERT_EQ(ok_iface, ok_legacy);
  if (ok_iface) {
    EXPECT_EQ(via_iface, via_legacy);
  }
}

TEST(FluxModelAdapter, CloneIsIndependentAndEquivalent) {
  const geom::RectField field(30.0, 30.0);
  const FluxModel model(field, 1.2);
  const auto copy = model.clone();
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->id(), ModelId::kFlux);
  EXPECT_EQ(copy->site_shape({4.0, 5.0}, point_site({9.0, 9.0})),
            model.site_shape({4.0, 5.0}, point_site({9.0, 9.0})));
}

// -------------------------------------------------------------------------
// Satellite audit: the r -> 0 guard of Eq. 3.4 and its analogues in the
// new models' denominators.
// -------------------------------------------------------------------------

TEST(DiscreteFluxGuard, RejectsNonPositiveRadiusConsistently) {
  const geom::RectField field(30.0, 30.0);
  const FluxModel model(field, 1.2);
  const geom::Vec2 sink{10.0, 10.0};
  const geom::Vec2 node{12.0, 14.0};
  EXPECT_THROW(model.discrete_flux(sink, node, 2.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(model.discrete_flux(sink, node, 2.0, -1.0),
               std::invalid_argument);
  EXPECT_THROW(model.discrete_flux(sink, node, 2.0, kNan),
               std::invalid_argument);
  // r = epsilon is legal and finite: the guard rejects, never clamps, so
  // tiny-but-positive radii scale as written.
  const double eps = 1e-12;
  const double f = model.discrete_flux(sink, node, 2.0, eps);
  EXPECT_TRUE(std::isfinite(f));
  EXPECT_EQ(f, (2.0 / eps) * model.shape(sink, node));
}

TEST(RssLinkModel, ConstructorGuardsDenominators) {
  // lambda and min_link_length both sit in denominators; zero, negative,
  // and non-finite values must be refused at construction.
  EXPECT_THROW(RssLinkModel(0.0, 0.05), std::invalid_argument);
  EXPECT_THROW(RssLinkModel(-1.0, 0.05), std::invalid_argument);
  EXPECT_THROW(RssLinkModel(kNan, 0.05), std::invalid_argument);
  EXPECT_THROW(RssLinkModel(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(RssLinkModel(1.0, -0.05), std::invalid_argument);
  EXPECT_THROW(RssLinkModel(1.0, kInf), std::invalid_argument);
  EXPECT_NO_THROW(RssLinkModel(1.0, 0.05));
}

TEST(RssLinkModel, ZeroLengthLinkStaysFinite) {
  // A degenerate link (both sniffers at one point) drives |ab| to zero;
  // the min_link clamp must keep the 1/sqrt(|ab|) denominator finite.
  const RssLinkModel model(1.0, 0.04);
  const Site degenerate{{5.0, 5.0}, {5.0, 5.0}};
  const double v = model.site_shape({5.0, 6.0}, degenerate);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GE(v, 0.0);
  // Against the hand formula: excess = 2*d(sink,a), gate = max(1-2d, 0),
  // denominator = sqrt(min_link).
  EXPECT_EQ(v, std::max(1.0 - 2.0 * 1.0, 0.0) / std::sqrt(0.04));
}

TEST(RssLinkModel, EllipseGateAndScaling) {
  const RssLinkModel model(2.0, 0.05);
  EXPECT_EQ(model.id(), ModelId::kRssLink);
  EXPECT_TRUE(model.sites_are_links());
  const Site link{{0.0, 0.0}, {4.0, 0.0}};
  // On the link segment: excess 0, gate 1, value 1/sqrt(4).
  EXPECT_DOUBLE_EQ(model.site_shape({2.0, 0.0}, link), 0.5);
  // Far off the link: the ellipse gate clamps to exactly zero.
  EXPECT_EQ(model.site_shape({2.0, 50.0}, link), 0.0);
  // In between the value decays monotonically with the detour excess.
  const double near = model.site_shape({2.0, 0.5}, link);
  const double far = model.site_shape({2.0, 1.5}, link);
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.0);
}

TEST(RssLinkModel, ThrowsOnNonFinitePositions) {
  const RssLinkModel model(1.0, 0.05);
  const Site link{{0.0, 0.0}, {4.0, 0.0}};
  EXPECT_THROW(model.site_shape({kNan, 0.0}, link), std::invalid_argument);
  EXPECT_THROW(model.site_shape({1.0, 1.0}, Site{{kInf, 0.0}, {4.0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(model.site_shape({1.0, 1.0}, Site{{0.0, 0.0}, {4.0, kNan}}),
               std::invalid_argument);
}

TEST(PassiveTraceModel, ConstructorGuardsRadius) {
  EXPECT_THROW(PassiveTraceModel{0.0}, std::invalid_argument);
  EXPECT_THROW(PassiveTraceModel{-2.0}, std::invalid_argument);
  EXPECT_THROW(PassiveTraceModel{kNan}, std::invalid_argument);
  EXPECT_THROW(PassiveTraceModel{kInf}, std::invalid_argument);
  EXPECT_NO_THROW(PassiveTraceModel{1e-9});  // tiny-but-positive is legal
}

TEST(PassiveTraceModel, QuadraticFalloff) {
  const PassiveTraceModel model(4.0);
  EXPECT_EQ(model.id(), ModelId::kPassiveTrace);
  EXPECT_FALSE(model.sites_are_links());
  const Site node = point_site({10.0, 10.0});
  // Co-located: detection probability shape is exactly 1.
  EXPECT_EQ(model.site_shape({10.0, 10.0}, node), 1.0);
  // At half the radius: 1 - 1/4.
  EXPECT_DOUBLE_EQ(model.site_shape({12.0, 10.0}, node), 0.75);
  // At and beyond the radius: exactly zero, never negative.
  EXPECT_EQ(model.site_shape({14.0, 10.0}, node), 0.0);
  EXPECT_EQ(model.site_shape({24.0, 10.0}, node), 0.0);
}

TEST(PassiveTraceModel, ThrowsOnNonFinitePositions) {
  const PassiveTraceModel model(4.0);
  EXPECT_THROW(model.site_shape({kNan, 0.0}, point_site({1.0, 1.0})),
               std::invalid_argument);
  EXPECT_THROW(model.site_shape({1.0, 1.0}, point_site({kInf, 1.0})),
               std::invalid_argument);
}

// -------------------------------------------------------------------------
// Scalar vs SIMD parity for the new row kernels: whenever the row form
// reports success, its output must be BIT-identical to the scalar form.
// -------------------------------------------------------------------------

struct SiteArrays {
  std::vector<double> ax, ay, bx, by;
  std::vector<Site> sites;
};

SiteArrays random_sites(std::size_t n, bool links, std::uint64_t seed) {
  const geom::RectField field(30.0, 30.0);
  geom::Rng rng(seed);
  SiteArrays s;
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Vec2 a = geom::uniform_in_field(field, rng);
    const geom::Vec2 b = links ? geom::uniform_in_field(field, rng) : a;
    s.ax.push_back(a.x);
    s.ay.push_back(a.y);
    s.bx.push_back(b.x);
    s.by.push_back(b.y);
    s.sites.push_back(Site{a, b});
  }
  return s;
}

void expect_row_matches_scalar(const ObservationModel& model,
                               const SiteArrays& s, std::uint64_t seed) {
  const geom::RectField field(30.0, 30.0);
  geom::Rng rng(seed);
  const SiteRows rows{s.ax.data(), s.ay.data(), s.bx.data(), s.by.data()};
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Vec2 sink = geom::uniform_in_field(field, rng);
    std::vector<double> row(s.sites.size(), -1.0);
    const bool ok = model.site_shape_row(sink, rows, s.sites.size(),
                                         row.data());
    EXPECT_EQ(ok, numeric::simd::enabled());
    if (!ok) {
      continue;
    }
    for (std::size_t i = 0; i < s.sites.size(); ++i) {
      ASSERT_EQ(row[i], model.site_shape(sink, s.sites[i]))
          << "site " << i << " sink (" << sink.x << ", " << sink.y << ")";
    }
  }
}

TEST(RowParity, RssLinkRowBitIdenticalToScalar) {
  const RssLinkModel model(1.0, 0.05);
  // 53 sites: 6 full vector lanes of 8 plus a 5-wide scalar tail.
  expect_row_matches_scalar(model, random_sites(53, true, 21), 22);
}

TEST(RowParity, PassiveTraceRowBitIdenticalToScalar) {
  const PassiveTraceModel model(4.0);
  expect_row_matches_scalar(model, random_sites(53, false, 23), 24);
}

TEST(RowParity, RowFormRefusesNonFiniteSiteCoordinates) {
  if (!numeric::simd::enabled()) {
    GTEST_SKIP() << "row kernels disabled in this build";
  }
  SiteArrays s = random_sites(16, true, 25);
  s.ay[9] = kNan;  // poison inside a full vector lane group
  const RssLinkModel model(1.0, 0.05);
  const SiteRows rows{s.ax.data(), s.ay.data(), s.bx.data(), s.by.data()};
  std::vector<double> row(16, -1.0);
  EXPECT_FALSE(model.site_shape_row({5.0, 5.0}, rows, 16, row.data()));

  SiteArrays p = random_sites(11, false, 26);
  p.ax[10] = kInf;  // poison in the scalar tail
  const PassiveTraceModel passive(4.0);
  const SiteRows prow{p.ax.data(), p.ay.data(), p.bx.data(), p.by.data()};
  std::vector<double> out(11, -1.0);
  EXPECT_FALSE(passive.site_shape_row({5.0, 5.0}, prow, 11, out.data()));
}

// -------------------------------------------------------------------------
// The objective consumes any backend: link sites flow end to end.
// -------------------------------------------------------------------------

TEST(ObjectiveOverModels, LinkSitesRoundTripThroughShapeColumn) {
  const RssLinkModel model(1.0, 0.05);
  const SiteArrays s = random_sites(24, true, 31);
  std::vector<double> measured(24, 1.0);
  const SparseObjective obj(model, s.sites, measured);
  ASSERT_EQ(obj.sample_count(), 24u);
  for (std::size_t i = 0; i < 24; ++i) {
    const Site site = obj.site(i);
    EXPECT_EQ(site.a, s.sites[i].a);
    EXPECT_EQ(site.b, s.sites[i].b);
  }
  std::vector<double> col;
  const geom::Vec2 sink{14.0, 17.0};
  obj.shape_column(sink, col);
  ASSERT_EQ(col.size(), 24u);
  for (std::size_t i = 0; i < 24; ++i) {
    EXPECT_EQ(col[i], model.site_shape(sink, s.sites[i]));
  }
}

}  // namespace
}  // namespace fluxfp::core
