#include "core/smooth_localizer.hpp"

#include <gtest/gtest.h>

#include "eval/metrics.hpp"

namespace fluxfp::core {
namespace {

/// Synthetic measurements generated exactly from the model over a given
/// field shape.
struct Synthetic {
  const geom::Field& field;
  FluxModel model;
  std::vector<geom::Vec2> samples;
  std::vector<geom::Vec2> sinks;
  std::vector<double> measured;

  Synthetic(const geom::Field& f, std::uint64_t seed, std::size_t n,
            std::vector<geom::Vec2> s, std::vector<double> stretches)
      : field(f), model(f, 1.0), sinks(std::move(s)) {
    geom::Rng rng(seed);
    samples = geom::uniform_points(field, n, rng);
    measured.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < sinks.size(); ++j) {
        measured[i] += stretches[j] * model.shape(sinks[j], samples[i]);
      }
    }
  }

  SparseObjective objective() const {
    return SparseObjective(model, samples, measured);
  }
};

TEST(SmoothLocalizer, RejectsBadConfig) {
  const geom::CircleField f({15, 15}, 15.0);
  SmoothLocalizerConfig bad;
  bad.restarts = 0;
  EXPECT_THROW(SmoothLocalizer(f, bad), std::invalid_argument);
}

TEST(SmoothLocalizer, RejectsBadUserCount) {
  const geom::CircleField f({15, 15}, 15.0);
  const Synthetic syn(f, 1, 40, {{15, 15}}, {2.0});
  const SparseObjective obj = syn.objective();
  const SmoothLocalizer loc(f);
  geom::Rng rng(1);
  EXPECT_THROW(loc.localize(obj, 0, rng), std::invalid_argument);
}

TEST(SmoothLocalizer, SingleUserOnCircleField) {
  // Smooth boundary: LM converges to the true position (§4.A's "works on
  // differentiable objectives" case).
  const geom::CircleField f({15, 15}, 15.0);
  const Synthetic syn(f, 2, 60, {{11, 18}}, {2.0});
  const SparseObjective obj = syn.objective();
  const SmoothLocalizer loc(f);
  geom::Rng rng(3);
  const SmoothLocalizationResult res = loc.localize(obj, 1, rng);
  EXPECT_LT(geom::distance(res.positions[0], {11, 18}), 0.5);
  EXPECT_LT(res.residual, 1.0);
  ASSERT_EQ(res.stretches.size(), 1u);
  EXPECT_NEAR(res.stretches[0], 2.0, 0.3);
}

TEST(SmoothLocalizer, TwoUsersOnCircleField) {
  const geom::CircleField f({15, 15}, 15.0);
  const Synthetic syn(f, 4, 80, {{8, 12}, {22, 19}}, {1.5, 2.5});
  const SparseObjective obj = syn.objective();
  SmoothLocalizerConfig cfg;
  cfg.restarts = 16;
  const SmoothLocalizer loc(f, cfg);
  geom::Rng rng(5);
  const SmoothLocalizationResult res = loc.localize(obj, 2, rng);
  EXPECT_LT(eval::matched_mean_error(res.positions, syn.sinks), 1.5);
}

TEST(SmoothLocalizer, PositionsStayInsideField) {
  const geom::CircleField f({15, 15}, 15.0);
  const Synthetic syn(f, 6, 40, {{27, 15}}, {2.0});  // near the boundary
  const SparseObjective obj = syn.objective();
  const SmoothLocalizer loc(f);
  geom::Rng rng(7);
  const SmoothLocalizationResult res = loc.localize(obj, 1, rng);
  EXPECT_TRUE(f.contains(res.positions[0], 1e-9));
}

TEST(SmoothLocalizer, GaussNewtonVariantRuns) {
  const geom::CircleField f({15, 15}, 15.0);
  const Synthetic syn(f, 8, 50, {{13, 13}}, {2.0});
  const SparseObjective obj = syn.objective();
  SmoothLocalizerConfig cfg;
  cfg.use_gauss_newton = true;
  cfg.restarts = 12;
  const SmoothLocalizer loc(f, cfg);
  geom::Rng rng(9);
  const SmoothLocalizationResult res = loc.localize(obj, 1, rng);
  // GN is less reliable than LM but with restarts should land close.
  EXPECT_LT(geom::distance(res.positions[0], {13, 13}), 3.0);
}

TEST(SmoothLocalizer, RectangularFieldDegradesVersusCircle) {
  // The §4.A claim, measured: identical generative setup, but the
  // rectangular field's kinked objective stalls derivative-based fitting
  // more often. Compare mean errors across several instances.
  const geom::CircleField circle({15, 15}, 15.0);
  auto mean_error = [](const geom::Field& f, std::uint64_t salt) {
    double total = 0.0;
    const int trials = 6;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(1000 + salt * 131 + static_cast<std::uint64_t>(t));
      // Interior truths: near the boundary even the smooth objective gets
      // one-sided, which is a separate effect from the §4.A kink issue.
      const geom::Vec2 truth =
          geom::uniform_in_disc(f.center(), 0.6 * f.diameter() / 2.0, rng);
      const Synthetic syn(f, 2000 + salt * 17 + static_cast<std::uint64_t>(t),
                          60, {truth}, {2.0});
      const SparseObjective obj = syn.objective();
      SmoothLocalizerConfig cfg;
      cfg.restarts = 12;
      const SmoothLocalizer loc(f, cfg);
      const SmoothLocalizationResult res = loc.localize(obj, 1, rng);
      total += geom::distance(res.positions[0], truth);
    }
    return total / trials;
  };
  const double circle_err = mean_error(circle, 1);
  EXPECT_LT(circle_err, 1.5);  // smooth case: LM lands at the optimum
  // We don't assert the rect error is large (restarts can save it), only
  // that the smooth case is solved essentially exactly.
}

TEST(SmoothLocalizer, ConservativeKPhantomStretchesNearZero) {
  const geom::CircleField f({15, 15}, 15.0);
  const Synthetic syn(f, 10, 60, {{12, 17}}, {2.0});
  const SparseObjective obj = syn.objective();
  SmoothLocalizerConfig cfg;
  cfg.restarts = 12;
  const SmoothLocalizer loc(f, cfg);
  geom::Rng rng(11);
  const SmoothLocalizationResult res = loc.localize(obj, 2, rng);
  ASSERT_EQ(res.stretches.size(), 2u);
  const double smin = std::min(res.stretches[0], res.stretches[1]);
  EXPECT_LT(smin, 0.5);
}

}  // namespace
}  // namespace fluxfp::core
