#include "core/briefing.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "eval/metrics.hpp"
#include "net/deployment.hpp"
#include "net/routing.hpp"

namespace fluxfp::core {
namespace {

struct Fixture {
  geom::RectField field{30.0, 30.0};
  net::UnitDiskGraph graph;
  FluxModel model;

  explicit Fixture(std::uint64_t seed, double d_min = 1.0)
      : graph(make_graph(seed)), model(field, d_min) {}

  static net::UnitDiskGraph make_graph(std::uint64_t seed) {
    geom::Rng rng(seed);
    const geom::RectField f(30.0, 30.0);
    return net::UnitDiskGraph(net::perturbed_grid(f, 30, 30, 0.5, rng), 2.4);
  }

  net::FluxMap flux_for(const std::vector<geom::Vec2>& sinks,
                        const std::vector<double>& stretches,
                        std::uint64_t seed) const {
    geom::Rng rng(seed);
    net::FluxMap total(graph.size(), 0.0);
    for (std::size_t j = 0; j < sinks.size(); ++j) {
      const net::CollectionTree t =
          net::build_collection_tree(graph, sinks[j], rng);
      net::accumulate(total, net::tree_flux(t, stretches[j]));
    }
    return total;
  }
};

TEST(FluxBriefing, RejectsBadConfig) {
  const Fixture fx(1);
  BriefingConfig bad;
  bad.max_users = 0;
  EXPECT_THROW(FluxBriefing(fx.graph, fx.model, bad), std::invalid_argument);
}

TEST(FluxBriefing, RejectsSizeMismatch) {
  const Fixture fx(2);
  const FluxBriefing b(fx.graph, fx.model);
  EXPECT_THROW(b.brief(net::FluxMap{1.0, 2.0}), std::invalid_argument);
}

TEST(FluxBriefing, EmptyMapYieldsNoUsers) {
  const Fixture fx(3);
  const FluxBriefing b(fx.graph, fx.model);
  EXPECT_TRUE(b.brief(net::FluxMap(fx.graph.size(), 0.0)).empty());
}

TEST(FluxBriefing, SingleUserPeakNearSink) {
  const Fixture fx(4);
  const geom::Vec2 sink{15.0, 15.0};
  const net::FluxMap flux = fx.flux_for({sink}, {2.0}, 10);
  BriefingConfig cfg;
  cfg.max_users = 1;
  const FluxBriefing b(fx.graph, fx.model, cfg);
  const auto users = b.brief(flux);
  ASSERT_EQ(users.size(), 1u);
  EXPECT_LT(geom::distance(users[0].position, sink), 2.5);
  EXPECT_GT(users[0].stretch_over_r, 0.0);
}

TEST(FluxBriefing, ExtractDominantReducesMap) {
  const Fixture fx(5);
  net::FluxMap working = fx.flux_for({{15, 15}}, {2.0}, 11);
  const double before = *std::max_element(working.begin(), working.end());
  const FluxBriefing b(fx.graph, fx.model);
  (void)b.extract_dominant(working);
  const double after = *std::max_element(working.begin(), working.end());
  EXPECT_LT(after, 0.6 * before);
  for (double v : working) {
    EXPECT_GE(v, 0.0);  // subtraction clamps at zero
  }
}

TEST(FluxBriefing, ThreeUsersRecovered) {
  // The Fig. 1/4 scenario: three users, mixed traffic, recursive briefing.
  const Fixture fx(6);
  const std::vector<geom::Vec2> sinks{{6, 6}, {24, 9}, {13, 24}};
  const net::FluxMap flux = fx.flux_for(sinks, {2.0, 2.5, 1.5}, 12);
  BriefingConfig cfg;
  cfg.max_users = 3;
  const FluxBriefing b(fx.graph, fx.model, cfg);
  const auto users = b.brief(flux);
  ASSERT_EQ(users.size(), 3u);
  std::vector<geom::Vec2> est;
  for (const auto& u : users) {
    est.push_back(u.position);
  }
  EXPECT_LT(eval::matched_mean_error(est, sinks), 3.5);
}

TEST(FluxBriefing, StopsAtNoiseFloor) {
  // One real user but max_users = 5: the stop fraction should cut the
  // recursion well before 5 phantom users.
  const Fixture fx(7);
  const net::FluxMap flux = fx.flux_for({{15, 15}}, {2.0}, 13);
  BriefingConfig cfg;
  cfg.max_users = 5;
  cfg.stop_fraction = 0.3;
  const FluxBriefing b(fx.graph, fx.model, cfg);
  const auto users = b.brief(flux);
  EXPECT_GE(users.size(), 1u);
  EXPECT_LE(users.size(), 3u);
}

TEST(FluxBriefing, DominantUserExtractedFirst) {
  const Fixture fx(8);
  const std::vector<geom::Vec2> sinks{{7, 7}, {23, 23}};
  // Second user has triple the traffic: must be found first.
  const net::FluxMap flux = fx.flux_for(sinks, {1.0, 3.0}, 14);
  BriefingConfig cfg;
  cfg.max_users = 2;
  const FluxBriefing b(fx.graph, fx.model, cfg);
  const auto users = b.brief(flux);
  ASSERT_EQ(users.size(), 2u);
  EXPECT_LT(geom::distance(users[0].position, {23, 23}), 4.0);
  EXPECT_LT(geom::distance(users[1].position, {7, 7}), 4.0);
}

TEST(FluxBriefing, SmoothingTogglesStillFindSingleUser) {
  const Fixture fx(9);
  const net::FluxMap flux = fx.flux_for({{10, 20}}, {2.0}, 15);
  BriefingConfig no_smooth;
  no_smooth.smooth = false;
  no_smooth.max_users = 1;
  const FluxBriefing b(fx.graph, fx.model, no_smooth);
  const auto users = b.brief(flux);
  ASSERT_EQ(users.size(), 1u);
  EXPECT_LT(geom::distance(users[0].position, {10, 20}), 3.0);
}

}  // namespace
}  // namespace fluxfp::core
