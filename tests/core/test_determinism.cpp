// Determinism of the parallel candidate-evaluation engine: everything the
// thread pool touches must produce bit-identical results at any thread
// count, because all RNG stays on the calling thread and merges are by
// index. These tests pin that contract for the batch primitives and for
// the full SMC / localizer pipelines under fault injection.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "core/localizer.hpp"
#include "core/nls.hpp"
#include "core/smc.hpp"
#include "core/smooth_localizer.hpp"
#include "numeric/parallel.hpp"
#include "sim/faults.hpp"

namespace fluxfp::core {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { numeric::set_thread_count(0); }
};

/// Synthetic observation source (same idiom as test_smc.cpp): measured
/// flux generated directly from the model at fixed sample positions.
struct World {
  geom::RectField field{30.0, 30.0};
  FluxModel model{field, 1.0};
  std::vector<geom::Vec2> samples;

  explicit World(std::uint64_t seed, std::size_t n = 80) {
    geom::Rng rng(seed);
    samples = geom::uniform_points(field, n, rng);
  }

  std::vector<double> readings(const std::vector<geom::Vec2>& sinks,
                               const std::vector<double>& stretches) const {
    std::vector<double> measured(samples.size(), 0.0);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      for (std::size_t j = 0; j < sinks.size(); ++j) {
        measured[i] += stretches[j] * model.shape(sinks[j], samples[i]);
      }
    }
    return measured;
  }

  SparseObjective observe(const std::vector<geom::Vec2>& sinks,
                          const std::vector<double>& stretches) const {
    return SparseObjective(model, samples, readings(sinks, stretches));
  }
};

TEST(ColumnBlock, LayoutAndSpans) {
  ColumnBlock block(4, 3);
  EXPECT_EQ(block.rows(), 4u);
  EXPECT_EQ(block.cols(), 3u);
  // Column starts are stride() (rows rounded up to 8) doubles apart, so
  // every column begins on its own cache line.
  EXPECT_EQ(block.stride(), 8u);
  for (std::size_t c = 0; c < 3; ++c) {
    auto col = block.column(c);
    ASSERT_EQ(col.size(), 4u);
    // Columns are padded slices of one allocation.
    EXPECT_EQ(col.data(), block.data() + c * block.stride());
    for (std::size_t i = 0; i < 4; ++i) {
      col[i] = static_cast<double>(c * 10 + i);
    }
  }
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(block.column(c)[i], static_cast<double>(c * 10 + i));
    }
  }
}

TEST(ColumnBlock, ResizeRetainsCapacity) {
  ColumnBlock block(10, 100);
  const double* before = block.data();
  block.resize(10, 5);
  block.resize(10, 60);
  // Shrinking then regrowing within the high-water mark must not
  // reallocate — that is the whole point of reusing blocks across rounds.
  EXPECT_EQ(block.data(), before);
  EXPECT_EQ(block.rows(), 10u);
  EXPECT_EQ(block.cols(), 60u);
}

TEST(BatchEvaluation, ShapeColumnsMatchesPerColumnCalls) {
  ThreadCountGuard guard;
  const World w(41);
  const SparseObjective obj = w.observe({{12.0, 9.0}}, {2.0});
  geom::Rng rng(42);
  std::vector<geom::Vec2> sinks(257);
  for (geom::Vec2& s : sinks) {
    s = geom::uniform_in_field(w.field, rng);
  }

  numeric::set_thread_count(4);
  ColumnBlock block;
  obj.shape_columns(sinks, block);
  ASSERT_EQ(block.rows(), obj.sample_count());
  ASSERT_EQ(block.cols(), sinks.size());

  std::vector<double> col;
  for (std::size_t c = 0; c < sinks.size(); ++c) {
    obj.shape_column(sinks[c], col);
    for (std::size_t i = 0; i < col.size(); ++i) {
      ASSERT_EQ(block.column(c)[i], col[i]) << "c=" << c << " i=" << i;
    }
  }
}

TEST(BatchEvaluation, EvaluateBatchMatchesSerialEvaluate) {
  ThreadCountGuard guard;
  const World w(43);
  const SparseObjective obj =
      w.observe({{8.0, 8.0}, {22.0, 20.0}}, {2.0, 2.5});
  geom::Rng rng(44);

  std::vector<double> fixed_col;
  obj.shape_column({22.0, 20.0}, fixed_col);
  const std::vector<std::span<const double>> fixed{fixed_col};
  const ConditionalFit cond(obj, fixed, 0);

  std::vector<geom::Vec2> cands(123);
  for (geom::Vec2& c : cands) {
    c = geom::uniform_in_field(w.field, rng);
  }
  ColumnBlock block;
  obj.shape_columns(cands, block);

  numeric::set_thread_count(4);
  std::vector<double> residuals(cands.size());
  std::vector<double> stretches(cands.size());
  cond.evaluate_batch(block, residuals, stretches);

  for (std::size_t c = 0; c < cands.size(); ++c) {
    const StretchFit single = cond.evaluate(block.column(c));
    ASSERT_EQ(residuals[c], single.residual) << "c=" << c;
    ASSERT_EQ(stretches[c], single.stretches[0]) << "c=" << c;
    ASSERT_EQ(single.residual, cond.evaluate_residual(block.column(c)));
  }
}

TEST(BatchEvaluation, EvaluateBatchRejectsBadDimensions) {
  const World w(45);
  const SparseObjective obj = w.observe({{10.0, 10.0}}, {2.0});
  const ConditionalFit cond(obj, {}, 0);
  ColumnBlock block(obj.sample_count(), 4);
  std::vector<double> wrong(3);
  EXPECT_THROW(cond.evaluate_batch(block, wrong), std::invalid_argument);
  ColumnBlock bad_rows(obj.sample_count() + 1, 4);
  std::vector<double> out(4);
  EXPECT_THROW(cond.evaluate_batch(bad_rows, out), std::invalid_argument);
}

/// Full pipeline fingerprint of one fault-injected 50-round tracking run.
struct TrackRun {
  std::vector<geom::Vec2> estimates;  // 2 users x 50 rounds, interleaved
  std::vector<double> residuals;
  std::vector<char> recovered;
};

TrackRun run_faulty_tracking(std::size_t threads) {
  numeric::set_thread_count(threads);
  const World w(46);

  sim::FaultPlan plan;
  plan.seed = 77;
  plan.outage_prob = 0.15;
  plan.byzantine_fraction = 0.1;
  plan.byzantine_gain = 4.0;
  plan.burst_start = 20;
  plan.burst_length = 3;
  std::vector<std::size_t> sniffers(w.samples.size());
  for (std::size_t i = 0; i < sniffers.size(); ++i) {
    sniffers[i] = i;
  }
  sim::FaultInjector injector(plan, w.samples.size(), std::move(sniffers));

  SmcConfig cfg;
  cfg.num_predictions = 300;
  cfg.num_keep = 10;
  cfg.sweeps = 2;
  cfg.divergence_recovery = true;
  cfg.recovery_grid = 12;
  cfg.robust.loss = RobustLoss::kHuber;
  cfg.robust.reweight_rounds = 1;

  geom::Rng rng(47);
  SmcTracker tracker(w.field, 2, cfg, rng);

  TrackRun out;
  for (int round = 1; round <= 50; ++round) {
    const double r = static_cast<double>(round);
    const std::vector<geom::Vec2> truths{
        {3.0 + 0.45 * r, 10.0 + 0.2 * r}, {27.0 - 0.45 * r, 22.0 - 0.15 * r}};
    std::vector<double> readings = w.readings(truths, {2.0, 2.5});
    injector.begin_round(round);
    injector.corrupt(readings);
    const SparseObjective obj(w.model, w.samples, std::move(readings));
    const SmcStepResult res = tracker.step(r, obj, rng);
    out.estimates.push_back(tracker.estimate(0));
    out.estimates.push_back(tracker.estimate(1));
    out.residuals.push_back(res.residual);
    out.recovered.push_back(res.recovered ? 1 : 0);
  }
  return out;
}

TEST(PipelineDeterminism, SmcTrackerBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const TrackRun serial = run_faulty_tracking(1);
  const TrackRun parallel = run_faulty_tracking(4);
  ASSERT_EQ(serial.estimates.size(), parallel.estimates.size());
  for (std::size_t i = 0; i < serial.estimates.size(); ++i) {
    ASSERT_EQ(serial.estimates[i], parallel.estimates[i])
        << "round " << i / 2 + 1 << " user " << i % 2;
  }
  EXPECT_EQ(serial.residuals, parallel.residuals);
  EXPECT_EQ(serial.recovered, parallel.recovered);
}

TEST(PipelineDeterminism, InstantLocalizerBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const World w(48);
  const SparseObjective obj =
      w.observe({{7.0, 21.0}, {23.0, 9.0}}, {2.0, 2.5});
  LocalizerConfig cfg;
  cfg.candidates_per_user = 600;
  cfg.sweeps = 2;
  cfg.restarts = 3;
  cfg.top_m = 5;
  const InstantLocalizer loc(w.field, cfg);

  const auto run = [&](std::size_t threads) {
    numeric::set_thread_count(threads);
    geom::Rng rng(49);
    return loc.localize(obj, 2, rng);
  };
  const LocalizationResult serial = run(1);
  const LocalizationResult parallel = run(4);
  ASSERT_EQ(serial.positions.size(), parallel.positions.size());
  for (std::size_t j = 0; j < serial.positions.size(); ++j) {
    EXPECT_EQ(serial.positions[j], parallel.positions[j]);
  }
  EXPECT_EQ(serial.residual, parallel.residual);
  EXPECT_EQ(serial.stretches, parallel.stretches);
  ASSERT_EQ(serial.top_positions.size(), parallel.top_positions.size());
  for (std::size_t j = 0; j < serial.top_positions.size(); ++j) {
    ASSERT_EQ(serial.top_positions[j].size(),
              parallel.top_positions[j].size());
    for (std::size_t t = 0; t < serial.top_positions[j].size(); ++t) {
      EXPECT_EQ(serial.top_positions[j][t], parallel.top_positions[j][t]);
    }
    EXPECT_EQ(serial.top_residuals[j], parallel.top_residuals[j]);
  }
}

TEST(PipelineDeterminism, SmoothLocalizerBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const World w(50);
  const SparseObjective obj =
      w.observe({{10.0, 12.0}, {20.0, 18.0}}, {2.0, 3.0});
  SmoothLocalizerConfig cfg;
  cfg.restarts = 4;
  const SmoothLocalizer loc(w.field, cfg);

  const auto run = [&](std::size_t threads) {
    numeric::set_thread_count(threads);
    geom::Rng rng(51);
    return loc.localize(obj, 2, rng);
  };
  const SmoothLocalizationResult serial = run(1);
  const SmoothLocalizationResult parallel = run(4);
  ASSERT_EQ(serial.positions.size(), parallel.positions.size());
  for (std::size_t j = 0; j < serial.positions.size(); ++j) {
    EXPECT_EQ(serial.positions[j], parallel.positions[j]);
  }
  EXPECT_EQ(serial.residual, parallel.residual);
  EXPECT_EQ(serial.stretches, parallel.stretches);
  EXPECT_EQ(serial.converged, parallel.converged);
}

TEST(SmcConfigValidation, RejectsZeroPredictionsAndKeepOverflow) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(52);
  SmcConfig bad;
  bad.num_predictions = 0;
  EXPECT_THROW(SmcTracker(f, 1, bad, rng), std::invalid_argument);
  bad = SmcConfig{};
  bad.num_predictions = 5;
  bad.num_keep = 6;
  EXPECT_THROW(SmcTracker(f, 1, bad, rng), std::invalid_argument);
  bad = SmcConfig{};
  bad.num_predictions = 10;
  bad.num_keep = 10;  // boundary: keep == predictions is legal
  EXPECT_NO_THROW(SmcTracker(f, 1, bad, rng));
}

}  // namespace
}  // namespace fluxfp::core
