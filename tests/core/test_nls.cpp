#include "core/nls.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <span>

#include "core/rss_link_model.hpp"
#include "geom/sampling.hpp"
#include "net/flux.hpp"
#include "numeric/matrix.hpp"
#include "numeric/nnls.hpp"
#include "numeric/parallel.hpp"

namespace fluxfp::core {
namespace {

/// Synthetic fixture: sample nodes + measured flux generated exactly from
/// the model with known sinks and stretches.
struct Synthetic {
  geom::RectField field{30.0, 30.0};
  FluxModel model{field, 1.0};
  std::vector<geom::Vec2> samples;
  std::vector<geom::Vec2> sinks;
  std::vector<double> stretches;
  std::vector<double> measured;

  Synthetic(std::uint64_t seed, std::size_t n, std::vector<geom::Vec2> s,
            std::vector<double> str)
      : sinks(std::move(s)), stretches(std::move(str)) {
    geom::Rng rng(seed);
    samples = geom::uniform_points(field, n, rng);
    measured.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < sinks.size(); ++j) {
        measured[i] += stretches[j] * model.shape(sinks[j], samples[i]);
      }
    }
  }

  SparseObjective objective() const {
    return SparseObjective(model, samples, measured);
  }
};

TEST(SparseObjective, RejectsBadInputs) {
  const geom::RectField f(30.0, 30.0);
  const FluxModel m(f, 1.0);
  EXPECT_THROW(SparseObjective(m, std::vector<geom::Vec2>{}, {}),
               std::invalid_argument);
  EXPECT_THROW(SparseObjective(m, std::vector<geom::Vec2>{{1, 1}}, {1.0, 2.0}),
               std::invalid_argument);
  // The Site-vector forms reject the same bad inputs.
  EXPECT_THROW(SparseObjective(m, std::vector<Site>{}, {}),
               std::invalid_argument);
}

TEST(SparseObjective, ShapeColumnMatchesModel) {
  const Synthetic syn(1, 20, {{10, 10}}, {2.0});
  const SparseObjective obj = syn.objective();
  const auto col = obj.shape_column({7, 13});
  ASSERT_EQ(col.size(), 20u);
  for (std::size_t i = 0; i < col.size(); ++i) {
    EXPECT_DOUBLE_EQ(col[i], syn.model.shape({7, 13}, syn.samples[i]));
  }
}

TEST(SparseObjective, ZeroResidualAtTruthSingleUser) {
  const Synthetic syn(2, 40, {{12, 18}}, {2.5});
  const SparseObjective obj = syn.objective();
  const StretchFit fit = obj.fit(std::vector<geom::Vec2>{{12, 18}});
  EXPECT_NEAR(fit.residual, 0.0, 1e-9);
  ASSERT_EQ(fit.stretches.size(), 1u);
  EXPECT_NEAR(fit.stretches[0], 2.5, 1e-9);
}

TEST(SparseObjective, ZeroResidualAtTruthThreeUsers) {
  const Synthetic syn(3, 60, {{5, 5}, {25, 10}, {15, 25}}, {1.0, 2.0, 3.0});
  const SparseObjective obj = syn.objective();
  const StretchFit fit = obj.fit(syn.sinks);
  EXPECT_NEAR(fit.residual, 0.0, 1e-7);
  ASSERT_EQ(fit.stretches.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(fit.stretches[j], syn.stretches[j], 1e-6);
  }
}

TEST(SparseObjective, WrongPositionHasPositiveResidual) {
  const Synthetic syn(4, 40, {{12, 18}}, {2.5});
  const SparseObjective obj = syn.objective();
  const StretchFit truth = obj.fit(std::vector<geom::Vec2>{{12, 18}});
  const StretchFit wrong = obj.fit(std::vector<geom::Vec2>{{25, 4}});
  EXPECT_GT(wrong.residual, truth.residual + 1.0);
}

TEST(SparseObjective, EmptySinkSetResidualIsMeasuredNorm) {
  const Synthetic syn(5, 30, {{12, 18}}, {2.0});
  const SparseObjective obj = syn.objective();
  const StretchFit fit = obj.fit(std::vector<geom::Vec2>{});
  EXPECT_DOUBLE_EQ(fit.residual, obj.measured_norm());
}

TEST(SparseObjective, FitColumnsMatchesFit) {
  const Synthetic syn(6, 50, {{5, 5}, {20, 22}}, {1.5, 2.5});
  const SparseObjective obj = syn.objective();
  const std::vector<geom::Vec2> guess{{6, 4}, {21, 20}};
  const StretchFit direct = obj.fit(guess);
  const auto c0 = obj.shape_column(guess[0]);
  const auto c1 = obj.shape_column(guess[1]);
  const std::vector<std::span<const double>> cols{c0, c1};
  const StretchFit via_cols = obj.fit_columns(cols);
  EXPECT_NEAR(direct.residual, via_cols.residual, 1e-9);
  EXPECT_NEAR(direct.stretches[0], via_cols.stretches[0], 1e-9);
  EXPECT_NEAR(direct.stretches[1], via_cols.stretches[1], 1e-9);
}

TEST(SparseObjective, MissingReadingsAreMaskedOut) {
  const Synthetic syn(21, 30, {{10, 10}}, {2.0});
  std::vector<double> holed = syn.measured;
  holed[3] = net::kMissingReading;
  holed[7] = net::kMissingReading;
  holed[29] = net::kMissingReading;
  const SparseObjective obj(syn.model, syn.samples, holed);
  EXPECT_EQ(obj.sample_count(), 27u);
  EXPECT_EQ(obj.masked_count(), 3u);
  // The surviving samples are still exact model output: zero residual at
  // the truth, same fitted stretch.
  const StretchFit fit = obj.fit(syn.sinks);
  EXPECT_NEAR(fit.residual, 0.0, 1e-9);
  EXPECT_NEAR(fit.stretches[0], 2.0, 1e-9);
}

TEST(SparseObjective, DuplicateSamplePositionKeepsLatestReading) {
  const Synthetic syn(23, 20, {{10, 10}}, {2.0});
  // Re-report node 4 twice more at the end of the snapshot: a stale value
  // first, then the correct one. Only the LAST live reading must survive,
  // as a single row.
  std::vector<geom::Vec2> samples = syn.samples;
  std::vector<double> measured = syn.measured;
  samples.push_back(syn.samples[4]);
  measured.push_back(syn.measured[4] + 100.0);
  samples.push_back(syn.samples[4]);
  measured.push_back(syn.measured[4]);
  const SparseObjective obj(syn.model, samples, measured);
  EXPECT_EQ(obj.sample_count(), 20u);
  EXPECT_EQ(obj.masked_count(), 2u);
  const StretchFit fit = obj.fit(syn.sinks);
  EXPECT_NEAR(fit.residual, 0.0, 1e-9);
  EXPECT_NEAR(fit.stretches[0], 2.0, 1e-9);

  // A missing re-report does not clobber the earlier live reading.
  std::vector<geom::Vec2> samples2 = syn.samples;
  std::vector<double> measured2 = syn.measured;
  samples2.push_back(syn.samples[4]);
  measured2.push_back(net::kMissingReading);
  const SparseObjective obj2(syn.model, samples2, measured2);
  EXPECT_EQ(obj2.sample_count(), 20u);
  EXPECT_NEAR(obj2.fit(syn.sinks).residual, 0.0, 1e-9);
}

// The dedup tie-break at EQUAL timestamps: snapshot order is the only
// order — the ascending-index scan makes "latest" mean highest input
// index, never arrival thread. Pinned against measured() directly, and
// pinned to be byte-identical whether the engine runs 1 or 4 worker
// threads (construction is serial; the thread pool must not be able to
// change what the objective holds).
TEST(SparseObjective, EqualTimestampDuplicatesAreIndexOrderedAtAnyThreads) {
  const geom::RectField f(30.0, 30.0);
  const FluxModel m(f, 1.0);
  const std::vector<geom::Vec2> samples{
      {5.0, 5.0}, {9.0, 9.0}, {5.0, 5.0}, {7.0, 3.0}, {5.0, 5.0}};
  const std::vector<double> measured{1.0, 2.0, 3.0, 4.0, 5.0};

  std::vector<std::vector<double>> kept;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    numeric::set_thread_count(threads);
    const SparseObjective obj(m, samples, measured);
    EXPECT_EQ(obj.sample_count(), 3u);
    EXPECT_EQ(obj.masked_count(), 2u);
    kept.push_back(obj.measured());
  }
  numeric::set_thread_count(0);
  // Row 0 is the {5,5} survivor: its reading must be the HIGHEST-index
  // duplicate (5.0), not the first (1.0) or middle (3.0).
  ASSERT_EQ(kept[0].size(), 3u);
  EXPECT_EQ(kept[0][0], 5.0);
  EXPECT_EQ(kept[0][1], 2.0);
  EXPECT_EQ(kept[0][2], 4.0);
  EXPECT_EQ(kept[0], kept[1]);  // bit-identical across worker counts
}

// Link sites dedup on the PAIR, not the primary endpoint: two links
// sharing endpoint a are distinct rows.
TEST(SparseObjective, LinkSitesSharingOneEndpointAreNotDeduped) {
  const RssLinkModel m(1.0, 0.05);
  const std::vector<Site> sites{
      Site{{2.0, 2.0}, {6.0, 2.0}},
      Site{{2.0, 2.0}, {2.0, 6.0}},   // same a, different b: keep
      Site{{2.0, 2.0}, {6.0, 2.0}},   // exact pair duplicate: dedup
  };
  const std::vector<double> measured{1.5, 2.5, 3.5};
  const SparseObjective obj(m, sites, measured);
  EXPECT_EQ(obj.sample_count(), 2u);
  EXPECT_EQ(obj.masked_count(), 1u);
  ASSERT_EQ(obj.measured().size(), 2u);
  EXPECT_EQ(obj.measured()[0], 3.5);  // last-arrival of the duplicate pair
  EXPECT_EQ(obj.measured()[1], 2.5);
}

TEST(SparseObjective, ValidityMaskExcludesSamples) {
  const Synthetic syn(22, 10, {{15, 15}}, {1.5});
  std::vector<bool> valid(10, true);
  valid[0] = false;
  valid[9] = false;
  const SparseObjective obj(syn.model, syn.samples, syn.measured, valid);
  EXPECT_EQ(obj.sample_count(), 8u);
  EXPECT_EQ(obj.masked_count(), 2u);
  EXPECT_THROW(
      SparseObjective(syn.model, syn.samples, syn.measured,
                      std::vector<bool>(9, true)),
      std::invalid_argument);
}

TEST(SparseObjective, AllMissingWindowActsAsEmptyMeasurement) {
  const Synthetic syn(23, 5, {{15, 15}}, {1.0});
  const std::vector<double> gone(5, net::kMissingReading);
  const SparseObjective obj(syn.model, syn.samples, gone);
  EXPECT_EQ(obj.sample_count(), 0u);
  EXPECT_EQ(obj.masked_count(), 5u);
  EXPECT_DOUBLE_EQ(obj.measured_norm(), 0.0);
  const StretchFit fit = obj.fit(syn.sinks);
  EXPECT_DOUBLE_EQ(fit.residual, 0.0);
  EXPECT_DOUBLE_EQ(fit.stretches[0], 0.0);
}

TEST(SparseObjective, UnitWeightsLeaveFitUnchanged) {
  const Synthetic syn(24, 25, {{8, 20}, {22, 9}}, {1.0, 3.0});
  const SparseObjective obj = syn.objective();
  const SparseObjective same = obj.reweighted(std::vector<double>(25, 1.0));
  const std::vector<geom::Vec2> probe{{9, 19}, {21, 10}};
  const StretchFit a = obj.fit(probe);
  const StretchFit b = same.fit(probe);
  EXPECT_NEAR(a.residual, b.residual, 1e-9);
  EXPECT_NEAR(a.stretches[0], b.stretches[0], 1e-9);
  EXPECT_NEAR(a.stretches[1], b.stretches[1], 1e-9);
}

TEST(SparseObjective, ZeroWeightDropsPoisonedSample) {
  Synthetic syn(25, 30, {{10, 10}}, {2.0});
  syn.measured[4] *= 50.0;  // wildly corrupted reading
  const SparseObjective obj(syn.model, syn.samples, syn.measured);
  EXPECT_GT(obj.fit(syn.sinks).residual, 1.0);
  std::vector<double> w(30, 1.0);
  w[4] = 0.0;
  const StretchFit clean = obj.reweighted(w).fit(syn.sinks);
  EXPECT_NEAR(clean.residual, 0.0, 1e-9);
  EXPECT_NEAR(clean.stretches[0], 2.0, 1e-9);
  EXPECT_THROW(obj.reweighted(std::vector<double>(30, -1.0)),
               std::invalid_argument);
  EXPECT_THROW(obj.reweighted(std::vector<double>(29, 1.0)),
               std::invalid_argument);
}

TEST(RobustWeights, DownweightsOutliersOnly) {
  std::vector<double> r(50);
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = i % 2 == 0 ? -0.1 : 0.1;  // well inside the Huber clip
  }
  r[10] = 25.0;
  r[40] = -30.0;
  RobustFitConfig cfg;
  cfg.loss = RobustLoss::kHuber;
  const std::vector<double> w = robust_weights(r, cfg);
  EXPECT_LT(w[10], 0.1);
  EXPECT_LT(w[40], 0.1);
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i != 10 && i != 40) {
      EXPECT_DOUBLE_EQ(w[i], 1.0);
    }
  }
  cfg.loss = RobustLoss::kTrimmed;
  cfg.trim_fraction = 0.05;
  const std::vector<double> t = robust_weights(r, cfg);
  EXPECT_DOUBLE_EQ(t[10], 0.0);
  EXPECT_DOUBLE_EQ(t[40], 0.0);
  EXPECT_DOUBLE_EQ(t[0], 1.0);
}

TEST(RobustWeights, DegenerateScaleLeavesAllWeightsAtOne) {
  // More than half the residuals identical -> MAD collapses to 0; the
  // guard returns all-ones instead of nuking every slightly-off sample.
  std::vector<double> r(20, 0.5);
  r[3] = 100.0;
  RobustFitConfig cfg;
  cfg.loss = RobustLoss::kHuber;
  const std::vector<double> w = robust_weights(r, cfg);
  for (double v : w) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(SparseObjective, FitRobustRecoversFromOutliers) {
  Synthetic syn(26, 40, {{12, 18}}, {2.0});
  syn.measured[1] *= 20.0;
  syn.measured[17] *= 20.0;
  const SparseObjective obj(syn.model, syn.samples, syn.measured);
  RobustFitConfig cfg;
  cfg.loss = RobustLoss::kHuber;
  const StretchFit plain = obj.fit(syn.sinks);
  const StretchFit robust = obj.fit_robust(syn.sinks, cfg);
  // The robust stretch is much closer to the true 2.0 than the plain one.
  EXPECT_LT(std::abs(robust.stretches[0] - 2.0),
            std::abs(plain.stretches[0] - 2.0));
  EXPECT_NEAR(robust.stretches[0], 2.0, 0.2);
}

TEST(SparseObjective, ResidualsAtMatchesFitResidual) {
  const Synthetic syn(27, 15, {{10, 10}, {20, 20}}, {1.0, 2.0});
  const SparseObjective obj = syn.objective();
  const std::vector<geom::Vec2> probe{{11, 9}, {19, 21}};
  const StretchFit fit = obj.fit(probe);
  const std::vector<double> r = obj.residuals_at(probe, fit.stretches);
  ASSERT_EQ(r.size(), 15u);
  double norm2 = 0.0;
  for (double v : r) {
    norm2 += v * v;
  }
  EXPECT_NEAR(std::sqrt(norm2), fit.residual, 1e-9);
}

TEST(NnlsFromGram, RejectsBadDims) {
  EXPECT_THROW(nnls_from_gram(std::vector<double>{1.0}, 0,
                              std::vector<double>{}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(nnls_from_gram(std::vector<double>{1.0, 2.0}, 1,
                              std::vector<double>{1.0}, 1.0),
               std::invalid_argument);
}

TEST(NnlsFromGram, MatchesDirectNnlsOnRandomInstances) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 15;
    const std::size_t k = 1 + static_cast<std::size_t>(trial % 4);
    numeric::Matrix a(n, k);
    std::vector<double> b(n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < k; ++c) {
        a(r, c) = u(rng);
      }
      b[r] = u(rng);
    }
    // Build Gram inputs.
    std::vector<double> g(k * k, 0.0);
    std::vector<double> c(k, 0.0);
    double b2 = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      b2 += b[r] * b[r];
      for (std::size_t i = 0; i < k; ++i) {
        c[i] += a(r, i) * b[r];
        for (std::size_t j = 0; j < k; ++j) {
          g[i * k + j] += a(r, i) * a(r, j);
        }
      }
    }
    const StretchFit gram = nnls_from_gram(g, k, c, b2);
    const numeric::NnlsResult direct = numeric::nnls(a, b);
    EXPECT_NEAR(gram.residual, direct.residual, 1e-7)
        << "trial " << trial << " k=" << k;
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_NEAR(gram.stretches[j], direct.x[j], 1e-5)
          << "trial " << trial << " col " << j;
    }
  }
}

TEST(NnlsFromGram, ActiveSetPathMatchesDirectNnlsForLargeK) {
  // k above kGramEnumerationLimit exercises the Lawson–Hanson path.
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (std::size_t k : {8u, 12u, 20u}) {
    const std::size_t n = 3 * k;
    numeric::Matrix a(n, k);
    std::vector<double> b(n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < k; ++c) {
        a(r, c) = u(rng);
      }
      b[r] = u(rng) - 0.3;  // mixed signs force active constraints
    }
    std::vector<double> g(k * k, 0.0);
    std::vector<double> c(k, 0.0);
    double b2 = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      b2 += b[r] * b[r];
      for (std::size_t i = 0; i < k; ++i) {
        c[i] += a(r, i) * b[r];
        for (std::size_t j = 0; j < k; ++j) {
          g[i * k + j] += a(r, i) * a(r, j);
        }
      }
    }
    const StretchFit gram = nnls_from_gram(g, k, c, b2);
    const numeric::NnlsResult direct = numeric::nnls(a, b);
    EXPECT_NEAR(gram.residual, direct.residual, 1e-6) << "k=" << k;
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_NEAR(gram.stretches[j], direct.x[j], 1e-4)
          << "k=" << k << " col " << j;
    }
  }
}

TEST(ConditionalFit, MatchesFullFit) {
  const Synthetic syn(8, 45, {{5, 5}, {20, 22}, {9, 27}}, {1.0, 2.0, 1.5});
  const SparseObjective obj = syn.objective();
  const auto c0 = obj.shape_column({6, 6});
  const auto c2 = obj.shape_column({10, 26});
  const std::vector<std::span<const double>> fixed{c0, c2};
  const ConditionalFit cond(obj, fixed, 1);  // middle slot varies
  const geom::Vec2 candidate{19, 23};
  const auto c1 = obj.shape_column(candidate);
  const StretchFit via_cond = cond.evaluate(c1);
  const StretchFit direct =
      obj.fit(std::vector<geom::Vec2>{{6, 6}, candidate, {10, 26}});
  EXPECT_NEAR(via_cond.residual, direct.residual, 1e-7);
  ASSERT_EQ(via_cond.stretches.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(via_cond.stretches[j], direct.stretches[j], 1e-5);
  }
}

TEST(ConditionalFit, SingleUserNoFixedColumns) {
  const Synthetic syn(9, 30, {{12, 18}}, {2.0});
  const SparseObjective obj = syn.objective();
  const ConditionalFit cond(obj, {}, 0);
  const auto col = obj.shape_column({12, 18});
  const StretchFit fit = cond.evaluate(col);
  EXPECT_NEAR(fit.residual, 0.0, 1e-8);
  EXPECT_NEAR(fit.stretches[0], 2.0, 1e-8);
}

TEST(SparseObjective, ScaleEquivariance) {
  // Metamorphic check of the model math: scaling the whole geometry by c
  // scales shapes, measurements, and residuals by c while the fitted
  // stretch factors are unchanged (phi = (l^2-d^2)/2d is 1-homogeneous).
  const double c = 2.5;
  const geom::RectField field(30.0, 30.0);
  const geom::RectField field_scaled(30.0 * c, 30.0 * c);
  const FluxModel model(field, 1.0);
  const FluxModel model_scaled(field_scaled, c);  // d_min scales too

  geom::Rng rng(42);
  const std::vector<geom::Vec2> samples =
      geom::uniform_points(field, 40, rng);
  std::vector<geom::Vec2> samples_scaled;
  for (const geom::Vec2& p : samples) {
    samples_scaled.push_back(p * c);
  }
  const geom::Vec2 sink{11, 17};
  std::vector<double> measured(samples.size());
  std::vector<double> measured_scaled(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    measured[i] = 2.0 * model.shape(sink, samples[i]);
    measured_scaled[i] =
        2.0 * model_scaled.shape(sink * c, samples_scaled[i]);
    EXPECT_NEAR(measured_scaled[i], c * measured[i], 1e-9);
  }
  const SparseObjective obj(model, samples, measured);
  const SparseObjective obj_scaled(model_scaled, samples_scaled,
                                   measured_scaled);
  // Fit at a wrong candidate: stretches agree, residual scales by c.
  const geom::Vec2 wrong{20, 9};
  const StretchFit f = obj.fit(std::vector<geom::Vec2>{wrong});
  const StretchFit fs =
      obj_scaled.fit(std::vector<geom::Vec2>{wrong * c});
  EXPECT_NEAR(fs.stretches[0], f.stretches[0], 1e-6);
  EXPECT_NEAR(fs.residual, c * f.residual, 1e-6);
}

TEST(SparseObjective, RotationInvarianceOnCenteredCircle) {
  // Rotating sinks and samples about a circular field's center leaves
  // every shape value unchanged (the boundary is rotation-symmetric).
  const geom::CircleField field({0.0, 0.0}, 15.0);
  const FluxModel model(field, 1.0);
  geom::Rng rng(43);
  const double theta = 1.234;
  const double cs = std::cos(theta);
  const double sn = std::sin(theta);
  auto rot = [&](geom::Vec2 p) {
    return geom::Vec2{cs * p.x - sn * p.y, sn * p.x + cs * p.y};
  };
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Vec2 sink = geom::uniform_in_field(field, rng);
    const geom::Vec2 node = geom::uniform_in_field(field, rng);
    EXPECT_NEAR(model.shape(sink, node),
                model.shape(rot(sink), rot(node)), 1e-9);
  }
}

// Capacity-retaining ColumnBlock reuse must never leak stale data into
// results: after any grow/shrink sequence, a reused block's batch output
// — and everything computed FROM that block — must be bit-identical to a
// fresh block's. The sweep deliberately walks sizes across the stride
// rounding (rows padded to multiples of 8) so shrunk regions and padding
// tails hold live garbage from earlier, larger batches.
TEST(ColumnBlockReuse, GrowShrinkSequencesMatchFreshBlocksBitExactly) {
  const Synthetic syn(61, 45, {{9.0, 9.0}, {21.0, 17.0}}, {2.0, 2.5});
  const SparseObjective obj = syn.objective();
  geom::Rng rng(62);

  std::vector<double> fixed_col;
  obj.shape_column({21.0, 17.0}, fixed_col);
  const std::vector<std::span<const double>> fixed{fixed_col};
  const ConditionalFit cond(obj, fixed, 0);

  ColumnBlock reused;
  // Sizes chosen to grow, shrink sharply, regrow within capacity, and end
  // tiny — every transition capacity-retaining after the first.
  const std::size_t batch_sizes[] = {64, 7, 33, 128, 5, 97, 1};
  for (const std::size_t batch : batch_sizes) {
    std::vector<geom::Vec2> sinks(batch);
    for (geom::Vec2& s : sinks) {
      s = geom::uniform_in_field(syn.field, rng);
    }
    obj.shape_columns(sinks, reused);
    ColumnBlock fresh;
    obj.shape_columns(sinks, fresh);
    ASSERT_EQ(reused.rows(), fresh.rows());
    ASSERT_EQ(reused.cols(), fresh.cols());
    for (std::size_t c = 0; c < batch; ++c) {
      const auto rcol = reused.column(c);
      const auto fcol = fresh.column(c);
      for (std::size_t i = 0; i < rcol.size(); ++i) {
        ASSERT_EQ(rcol[i], fcol[i]) << "batch " << batch << " col " << c
                                    << " row " << i;
      }
    }
    // The downstream consumer of the block must agree too — this is what
    // would surface a padding-tail leak even if column() spans hid it.
    std::vector<double> r_res(batch), r_str(batch);
    std::vector<double> f_res(batch), f_str(batch);
    cond.evaluate_batch(reused, r_res, r_str);
    cond.evaluate_batch(fresh, f_res, f_str);
    ASSERT_EQ(r_res, f_res) << "batch " << batch;
    ASSERT_EQ(r_str, f_str) << "batch " << batch;
  }
}

TEST(ConditionalFit, RejectsTooManyUsers) {
  const Synthetic syn(10, 10, {{12, 18}}, {2.0});
  const SparseObjective obj = syn.objective();
  std::vector<std::vector<double>> cols(kMaxGramUsers,
                                        std::vector<double>(10, 1.0));
  std::vector<std::span<const double>> spans(cols.begin(), cols.end());
  EXPECT_THROW(ConditionalFit(obj, spans, 0), std::invalid_argument);
}

}  // namespace
}  // namespace fluxfp::core
