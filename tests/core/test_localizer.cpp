#include "core/localizer.hpp"

#include <gtest/gtest.h>

#include "eval/metrics.hpp"

namespace fluxfp::core {
namespace {

struct Synthetic {
  geom::RectField field{30.0, 30.0};
  FluxModel model{field, 1.0};
  std::vector<geom::Vec2> samples;
  std::vector<geom::Vec2> sinks;
  std::vector<double> measured;

  Synthetic(std::uint64_t seed, std::size_t n, std::vector<geom::Vec2> s,
            std::vector<double> stretches)
      : sinks(std::move(s)) {
    geom::Rng rng(seed);
    samples = geom::uniform_points(field, n, rng);
    measured.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < sinks.size(); ++j) {
        measured[i] += stretches[j] * model.shape(sinks[j], samples[i]);
      }
    }
  }

  SparseObjective objective() const {
    return SparseObjective(model, samples, measured);
  }
};

TEST(InstantLocalizer, RejectsBadConfig) {
  const geom::RectField f(30.0, 30.0);
  LocalizerConfig bad;
  bad.candidates_per_user = 0;
  EXPECT_THROW(InstantLocalizer(f, bad), std::invalid_argument);
  bad = {};
  bad.sweeps = 0;
  EXPECT_THROW(InstantLocalizer(f, bad), std::invalid_argument);
}

TEST(InstantLocalizer, RejectsBadUserCount) {
  const Synthetic syn(1, 30, {{15, 15}}, {2.0});
  const SparseObjective obj = syn.objective();
  const InstantLocalizer loc(syn.field);
  geom::Rng rng(1);
  EXPECT_THROW(loc.localize(obj, 0, rng), std::invalid_argument);
  EXPECT_THROW(loc.localize(obj, kMaxGramUsers + 1, rng),
               std::invalid_argument);
}

TEST(InstantLocalizer, SingleUserRecovery) {
  const Synthetic syn(2, 60, {{12, 18}}, {2.0});
  const SparseObjective obj = syn.objective();
  LocalizerConfig cfg;
  cfg.candidates_per_user = 5000;
  const InstantLocalizer loc(syn.field, cfg);
  geom::Rng rng(7);
  const LocalizationResult res = loc.localize(obj, 1, rng);
  EXPECT_LT(geom::distance(res.positions[0], {12, 18}), 1.0);
  ASSERT_EQ(res.stretches.size(), 1u);
  EXPECT_NEAR(res.stretches[0], 2.0, 0.5);
}

TEST(InstantLocalizer, TopListSortedAndBounded) {
  const Synthetic syn(3, 60, {{12, 18}}, {2.0});
  const SparseObjective obj = syn.objective();
  LocalizerConfig cfg;
  cfg.candidates_per_user = 2000;
  cfg.top_m = 10;
  const InstantLocalizer loc(syn.field, cfg);
  geom::Rng rng(8);
  const LocalizationResult res = loc.localize(obj, 1, rng);
  ASSERT_EQ(res.top_positions.size(), 1u);
  EXPECT_LE(res.top_positions[0].size(), 10u);
  EXPECT_GE(res.top_positions[0].size(), 2u);
  for (std::size_t i = 1; i < res.top_residuals[0].size(); ++i) {
    EXPECT_LE(res.top_residuals[0][i - 1], res.top_residuals[0][i]);
  }
  // All top-10 candidates concentrate around the true sink (Fig. 5(a)).
  for (const geom::Vec2& p : res.top_positions[0]) {
    EXPECT_LT(geom::distance(p, {12, 18}), 3.0);
  }
}

TEST(InstantLocalizer, TwoUserRecovery) {
  const Synthetic syn(4, 80, {{6, 6}, {24, 22}}, {1.5, 2.5});
  const SparseObjective obj = syn.objective();
  LocalizerConfig cfg;
  cfg.candidates_per_user = 4000;
  const InstantLocalizer loc(syn.field, cfg);
  geom::Rng rng(9);
  const LocalizationResult res = loc.localize(obj, 2, rng);
  const double err = eval::matched_mean_error(res.positions, syn.sinks);
  EXPECT_LT(err, 1.5);
}

TEST(InstantLocalizer, ThreeUserRecovery) {
  const Synthetic syn(5, 90, {{5, 5}, {25, 8}, {14, 25}}, {2.0, 2.0, 2.0});
  const SparseObjective obj = syn.objective();
  LocalizerConfig cfg;
  cfg.candidates_per_user = 4000;
  cfg.restarts = 4;
  const InstantLocalizer loc(syn.field, cfg);
  geom::Rng rng(10);
  const LocalizationResult res = loc.localize(obj, 3, rng);
  const double err = eval::matched_mean_error(res.positions, syn.sinks);
  EXPECT_LT(err, 2.5);
}

TEST(InstantLocalizer, ConservativeKConvergesStretchesOfPhantoms) {
  // K chosen larger than the true user count (§4.A): the extra users'
  // stretches fit to ~0.
  const Synthetic syn(6, 70, {{12, 18}}, {2.0});
  const SparseObjective obj = syn.objective();
  LocalizerConfig cfg;
  cfg.candidates_per_user = 3000;
  const InstantLocalizer loc(syn.field, cfg);
  geom::Rng rng(11);
  const LocalizationResult res = loc.localize(obj, 2, rng);
  ASSERT_EQ(res.stretches.size(), 2u);
  const double smax = std::max(res.stretches[0], res.stretches[1]);
  const double smin = std::min(res.stretches[0], res.stretches[1]);
  EXPECT_NEAR(smax, 2.0, 0.6);
  EXPECT_LT(smin, 0.5);
}

TEST(InstantLocalizer, ResidualNeverExceedsMeasuredNorm) {
  const Synthetic syn(7, 40, {{12, 18}}, {2.0});
  const SparseObjective obj = syn.objective();
  LocalizerConfig cfg;
  cfg.candidates_per_user = 500;
  const InstantLocalizer loc(syn.field, cfg);
  geom::Rng rng(12);
  const LocalizationResult res = loc.localize(obj, 1, rng);
  EXPECT_LE(res.residual, obj.measured_norm() + 1e-9);
}

TEST(InstantLocalizer, DeterministicGivenSeed) {
  const Synthetic syn(8, 50, {{12, 18}}, {2.0});
  const SparseObjective obj = syn.objective();
  LocalizerConfig cfg;
  cfg.candidates_per_user = 1000;
  const InstantLocalizer loc(syn.field, cfg);
  geom::Rng rng_a(13);
  geom::Rng rng_b(13);
  const LocalizationResult a = loc.localize(obj, 1, rng_a);
  const LocalizationResult b = loc.localize(obj, 1, rng_b);
  EXPECT_EQ(a.positions[0], b.positions[0]);
  EXPECT_DOUBLE_EQ(a.residual, b.residual);
}

}  // namespace
}  // namespace fluxfp::core
