#include "core/user_count.hpp"

#include <gtest/gtest.h>

#include "eval/metrics.hpp"
#include "geom/sampling.hpp"

namespace fluxfp::core {
namespace {

struct Synthetic {
  geom::RectField field{30.0, 30.0};
  FluxModel model{field, 1.0};
  std::vector<geom::Vec2> samples;
  std::vector<geom::Vec2> sinks;
  std::vector<double> measured;

  Synthetic(std::uint64_t seed, std::size_t n, std::vector<geom::Vec2> s,
            std::vector<double> stretches)
      : sinks(std::move(s)) {
    geom::Rng rng(seed);
    samples = geom::uniform_points(field, n, rng);
    measured.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < sinks.size(); ++j) {
        measured[i] += stretches[j] * model.shape(sinks[j], samples[i]);
      }
    }
  }

  SparseObjective objective() const {
    return SparseObjective(model, samples, measured);
  }
};

InstantLocalizer make_localizer(const geom::Field& field) {
  LocalizerConfig cfg;
  cfg.candidates_per_user = 3000;
  cfg.restarts = 4;
  return InstantLocalizer(field, cfg);
}

TEST(UserCount, RejectsBadConfig) {
  const Synthetic syn(1, 40, {{15, 15}}, {2.0});
  const SparseObjective obj = syn.objective();
  const InstantLocalizer loc = make_localizer(syn.field);
  geom::Rng rng(2);
  UserCountConfig bad;
  bad.k_max = 0;
  EXPECT_THROW(estimate_user_count(obj, loc, bad, rng),
               std::invalid_argument);
  bad = {};
  bad.stretch_floor = 1.0;
  EXPECT_THROW(estimate_user_count(obj, loc, bad, rng),
               std::invalid_argument);
}

TEST(UserCount, OneUserDetectedWithConservativeK) {
  const Synthetic syn(3, 70, {{12, 18}}, {2.0});
  const SparseObjective obj = syn.objective();
  const InstantLocalizer loc = make_localizer(syn.field);
  geom::Rng rng(4);
  UserCountConfig cfg;
  cfg.k_max = 4;
  const UserCountEstimate est = estimate_user_count(obj, loc, cfg, rng);
  EXPECT_EQ(est.count, 1u);
  ASSERT_EQ(est.positions.size(), 1u);
  EXPECT_LT(geom::distance(est.positions[0], {12, 18}), 2.0);
  EXPECT_NEAR(est.stretches[0], 2.0, 0.7);
}

TEST(UserCount, TwoSeparatedUsersDetected) {
  const Synthetic syn(5, 90, {{6, 6}, {24, 23}}, {2.0, 2.5});
  const SparseObjective obj = syn.objective();
  const InstantLocalizer loc = make_localizer(syn.field);
  geom::Rng rng(6);
  UserCountConfig cfg;
  cfg.k_max = 5;
  const UserCountEstimate est = estimate_user_count(obj, loc, cfg, rng);
  EXPECT_EQ(est.count, 2u);
  EXPECT_LT(eval::matched_mean_error(est.positions, syn.sinks), 2.5);
}

TEST(UserCount, ThreeUsersDetected) {
  const Synthetic syn(7, 110, {{5, 5}, {25, 8}, {14, 25}}, {2.0, 2.0, 2.0});
  const SparseObjective obj = syn.objective();
  const InstantLocalizer loc = make_localizer(syn.field);
  geom::Rng rng(8);
  UserCountConfig cfg;
  cfg.k_max = 6;
  const UserCountEstimate est = estimate_user_count(obj, loc, cfg, rng);
  // Allow one miss or merge, but never phantom inflation above truth+1.
  EXPECT_GE(est.count, 2u);
  EXPECT_LE(est.count, 4u);
}

TEST(UserCount, CoLocatedSlotsMergeToOneUser) {
  // Duplicate slots that converge on the same sink must merge.
  const Synthetic syn(9, 70, {{15, 15}}, {3.0});
  const SparseObjective obj = syn.objective();
  const InstantLocalizer loc = make_localizer(syn.field);
  geom::Rng rng(10);
  UserCountConfig cfg;
  cfg.k_max = 6;
  cfg.merge_radius = 4.0;
  const UserCountEstimate est = estimate_user_count(obj, loc, cfg, rng);
  EXPECT_EQ(est.count, 1u);
}

TEST(UserCount, EmptyFluxYieldsZeroOrPhantomFree) {
  const geom::RectField field(30.0, 30.0);
  const FluxModel model(field, 1.0);
  geom::Rng srng(11);
  const std::vector<geom::Vec2> samples =
      geom::uniform_points(field, 40, srng);
  const std::vector<double> zeros(samples.size(), 0.0);
  const SparseObjective obj(model, samples, zeros);
  const InstantLocalizer loc = make_localizer(field);
  geom::Rng rng(12);
  UserCountConfig cfg;
  cfg.k_max = 4;
  const UserCountEstimate est = estimate_user_count(obj, loc, cfg, rng);
  EXPECT_EQ(est.count, 0u);
}

TEST(UserCount, StretchesSumToTotalTraffic) {
  // Merged stretches should approximate the total injected stretch.
  const Synthetic syn(13, 90, {{7, 9}, {23, 22}}, {1.5, 2.5});
  const SparseObjective obj = syn.objective();
  const InstantLocalizer loc = make_localizer(syn.field);
  geom::Rng rng(14);
  UserCountConfig cfg;
  cfg.k_max = 5;
  const UserCountEstimate est = estimate_user_count(obj, loc, cfg, rng);
  double total = 0.0;
  for (double s : est.stretches) {
    total += s;
  }
  EXPECT_NEAR(total, 4.0, 1.2);
}

}  // namespace
}  // namespace fluxfp::core
