// Failure-injection tests: the attack pipeline under measurement noise and
// sniffer dropout. The paper assumes clean flux counts; these tests pin
// down that the implementation degrades gracefully rather than collapsing.
#include <gtest/gtest.h>

#include "core/localizer.hpp"
#include "core/smc.hpp"
#include "eval/experiment.hpp"
#include "sim/faults.hpp"
#include "sim/measurement.hpp"
#include "sim/sniffer.hpp"

namespace fluxfp {
namespace {

struct NoisyWorld {
  geom::RectField field{30.0, 30.0};
  net::UnitDiskGraph graph;
  core::FluxModel model;

  explicit NoisyWorld(std::uint64_t seed)
      : graph(build(seed)), model(field, 1.0) {
    geom::Rng rng(seed + 1);
    model = core::FluxModel(field, eval::estimate_d_min(graph, field, rng));
  }

  static net::UnitDiskGraph build(std::uint64_t seed) {
    geom::Rng rng(seed);
    const geom::RectField f(30.0, 30.0);
    return eval::build_connected_network({}, f, rng);
  }

  double localize_with_noise(const sim::FluxNoise& noise, int trials,
                             std::uint64_t salt) const {
    double total = 0.0;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng(eval::derive_seed(salt, {static_cast<std::uint64_t>(t)}));
      const geom::Vec2 truth = geom::uniform_in_field(field, rng);
      const sim::FluxEngine engine(graph);
      const std::vector<sim::Collection> w{{0, truth, 2.0}};
      net::FluxMap flux = engine.measure(w, rng);
      sim::FluxEngine::apply_noise(flux, noise, rng);
      const auto samples = sim::sample_nodes_fraction(graph.size(), 0.10, rng);
      const core::SparseObjective obj =
          eval::make_objective(model, graph, flux, samples);
      core::LocalizerConfig cfg;
      cfg.candidates_per_user = 4000;
      const core::InstantLocalizer loc(field, cfg);
      total += geom::distance(loc.localize(obj, 1, rng).positions[0], truth);
    }
    return total / trials;
  }
};

TEST(NoiseRobustness, ModerateRelativeNoiseBarelyHurts) {
  const NoisyWorld w(300);
  const double clean = w.localize_with_noise({0.0, 0.0}, 4, 301);
  const double noisy = w.localize_with_noise({0.10, 0.0}, 4, 301);
  EXPECT_LT(clean, 2.5);
  EXPECT_LT(noisy, clean + 2.0);  // 10% multiplicative noise: small impact
}

TEST(NoiseRobustness, HeavyNoiseDegradesButStaysBounded) {
  const NoisyWorld w(310);
  const double heavy = w.localize_with_noise({0.8, 0.0}, 4, 311);
  EXPECT_LT(heavy, w.field.diameter());  // never worse than a blind guess
}

TEST(NoiseRobustness, ModerateDropoutTolerated) {
  const NoisyWorld w(320);
  const double dropped = w.localize_with_noise({0.0, 0.2}, 4, 321);
  EXPECT_LT(dropped, 6.0);
}

TEST(NoiseRobustness, SmcSurvivesNoisyRounds) {
  const NoisyWorld w(330);
  geom::Rng rng(331);
  core::SmcConfig cfg;
  cfg.num_predictions = 400;
  core::SmcTracker tracker(w.field, 1, cfg, rng);
  const sim::FluxEngine engine(w.graph);
  const auto samples = sim::sample_nodes_fraction(w.graph.size(), 0.10, rng);
  geom::Vec2 truth;
  for (int round = 1; round <= 10; ++round) {
    truth = {3.0 + 2.4 * round, 16.0};
    const std::vector<sim::Collection> window{{0, truth, 2.0}};
    net::FluxMap flux = engine.measure(window, rng);
    sim::FluxEngine::apply_noise(flux, {0.15, 0.05}, rng);
    const core::SparseObjective obj =
        eval::make_objective(w.model, w.graph, flux, samples);
    tracker.step(static_cast<double>(round), obj, rng);
  }
  EXPECT_LT(geom::distance(tracker.estimate(0), truth), 4.0);
}

TEST(NoiseRobustness, AllZeroWindowFreezesTracker) {
  const NoisyWorld w(340);
  geom::Rng rng(341);
  core::SmcConfig cfg;
  cfg.num_predictions = 200;
  core::SmcTracker tracker(w.field, 1, cfg, rng);
  const auto samples = sim::sample_nodes_fraction(w.graph.size(), 0.10, rng);
  // Total dropout: the observation vector is all zeros.
  net::FluxMap flux(w.graph.size(), 0.0);
  const core::SparseObjective obj =
      eval::make_objective(w.model, w.graph, flux, samples);
  const auto res = tracker.step(1.0, obj, rng);
  EXPECT_FALSE(res.updated[0]);
}

TEST(NoiseRobustness, MaskedDropoutBeatsZeroPoisoning) {
  // Regression for the dropout-as-zero bug: a sniffer that dropped out of
  // the window used to report a literal 0, which the NLS fitted as a
  // trusted zero-flux measurement. With 20% of the sniffed readings
  // dropped, masking the missing readings out must beat zero-filling them.
  const NoisyWorld w(900);
  double masked_total = 0.0;
  double zeroed_total = 0.0;
  const int trials = 24;
  for (int t = 0; t < trials; ++t) {
    geom::Rng rng(eval::derive_seed(1000, {static_cast<std::uint64_t>(t)}));
    const geom::Vec2 truth = geom::uniform_in_field(w.field, rng);
    const sim::FluxEngine engine(w.graph);
    const std::vector<sim::Collection> window{{0, truth, 2.0}};
    net::FluxMap flux = engine.measure(window, rng);
    const auto samples = sim::sample_nodes_fraction(w.graph.size(), 0.10, rng);
    std::vector<double> readings =
        eval::sniffed_readings(w.graph, flux, samples);
    sim::FaultPlan plan;
    plan.seed = eval::derive_seed(1001, {static_cast<std::uint64_t>(t), 20});
    plan.outage_prob = 0.2;
    sim::FaultInjector inj(plan, w.graph.size(), samples);
    inj.corrupt(readings);
    std::vector<double> zero_filled = readings;
    net::zero_fill_missing(zero_filled);
    const auto masked_obj = eval::make_objective_from_readings(
        w.model, w.graph, samples, readings);
    const auto zeroed_obj = eval::make_objective_from_readings(
        w.model, w.graph, samples, zero_filled);
    core::LocalizerConfig cfg;
    cfg.candidates_per_user = 4000;
    const core::InstantLocalizer loc(w.field, cfg);
    geom::Rng rng_m(eval::derive_seed(1002, {static_cast<std::uint64_t>(t)}));
    geom::Rng rng_z(eval::derive_seed(1002, {static_cast<std::uint64_t>(t)}));
    masked_total +=
        geom::distance(loc.localize(masked_obj, 1, rng_m).positions[0], truth);
    zeroed_total +=
        geom::distance(loc.localize(zeroed_obj, 1, rng_z).positions[0], truth);
  }
  EXPECT_LT(masked_total / trials, zeroed_total / trials);
  EXPECT_LT(masked_total / trials, 4.0);
}

TEST(NoiseRobustness, HuberRefitResistsByzantineSniffers) {
  const NoisyWorld w(370);
  double plain_total = 0.0;
  double robust_total = 0.0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    geom::Rng rng(eval::derive_seed(371, {static_cast<std::uint64_t>(t)}));
    const geom::Vec2 truth = geom::uniform_in_field(w.field, rng);
    const sim::FluxEngine engine(w.graph);
    const std::vector<sim::Collection> window{{0, truth, 2.0}};
    net::FluxMap flux = engine.measure(window, rng);
    const auto samples = sim::sample_nodes_fraction(w.graph.size(), 0.10, rng);
    std::vector<double> readings =
        eval::sniffed_readings(w.graph, flux, samples);
    // 15% of the sniffers report 8x the true value.
    sim::FaultPlan plan;
    plan.seed = eval::derive_seed(372, {static_cast<std::uint64_t>(t)});
    plan.byzantine_fraction = 0.15;
    plan.byzantine_gain = 8.0;
    sim::FaultInjector inj(plan, w.graph.size(), samples);
    inj.corrupt(readings);
    const auto obj = eval::make_objective_from_readings(w.model, w.graph,
                                                        samples, readings);
    core::LocalizerConfig plain_cfg;
    plain_cfg.candidates_per_user = 4000;
    core::LocalizerConfig robust_cfg = plain_cfg;
    robust_cfg.robust.loss = core::RobustLoss::kHuber;
    geom::Rng rng_p(eval::derive_seed(373, {static_cast<std::uint64_t>(t)}));
    geom::Rng rng_r(eval::derive_seed(373, {static_cast<std::uint64_t>(t)}));
    plain_total += geom::distance(
        core::InstantLocalizer(w.field, plain_cfg)
            .localize(obj, 1, rng_p).positions[0], truth);
    robust_total += geom::distance(
        core::InstantLocalizer(w.field, robust_cfg)
            .localize(obj, 1, rng_r).positions[0], truth);
  }
  EXPECT_LT(robust_total / trials, plain_total / trials);
  EXPECT_LT(robust_total / trials, 5.0);
}

TEST(NoiseRobustness, SmcRecoversTrackAfterBlackoutTeleport) {
  // Three-round total sniffer blackout while the user relocates across the
  // field. The per-round motion bound traps the plain tracker far from the
  // user; divergence recovery's grid scan must re-acquire.
  const NoisyWorld w(380);
  geom::Rng rng(381);
  core::SmcConfig base;
  base.num_predictions = 500;
  core::SmcConfig rec = base;
  rec.divergence_recovery = true;
  rec.divergence_rounds = 2;
  core::SmcTracker plain(w.field, 1, base, rng);
  core::SmcTracker recovering(w.field, 1, rec, rng);
  const sim::FluxEngine engine(w.graph);
  const auto samples = sim::sample_nodes_fraction(w.graph.size(), 0.10, rng);

  bool recovered = false;
  geom::Vec2 truth{2.0, 2.0};
  for (int round = 1; round <= 11; ++round) {
    const bool blackout = round >= 6 && round <= 8;
    truth = round <= 5 ? geom::Vec2{2.0 + 0.5 * round, 2.0}
                       : geom::Vec2{28.0, 28.0};  // relocated mid-blackout
    std::vector<double> readings;
    if (blackout) {
      readings.assign(samples.size(), net::kMissingReading);
    } else {
      const std::vector<sim::Collection> window{{0, truth, 2.0}};
      const net::FluxMap flux = engine.measure(window, rng);
      readings = eval::sniffed_readings(w.graph, flux, samples);
    }
    const auto obj = eval::make_objective_from_readings(w.model, w.graph,
                                                        samples, readings);
    plain.step(static_cast<double>(round), obj, rng);
    const auto res = recovering.step(static_cast<double>(round), obj, rng);
    recovered = recovered || res.recovered;
  }
  const double rec_err = geom::distance(recovering.estimate(0), truth);
  const double plain_err = geom::distance(plain.estimate(0), truth);
  EXPECT_TRUE(recovered);
  EXPECT_LT(rec_err, 4.0);
  EXPECT_GT(plain_err, rec_err);
}

TEST(NoiseRobustness, LocalizerHandlesUniformFluxGracefully) {
  // A perfectly flat flux map (e.g. an aggressive padding defense) gives
  // the objective no gradient; the localizer must still return finite,
  // in-field output.
  const NoisyWorld w(350);
  geom::Rng rng(351);
  net::FluxMap flux(w.graph.size(), 7.0);
  const auto samples = sim::sample_nodes_fraction(w.graph.size(), 0.10, rng);
  const core::SparseObjective obj =
      eval::make_objective(w.model, w.graph, flux, samples);
  core::LocalizerConfig cfg;
  cfg.candidates_per_user = 1000;
  const core::InstantLocalizer loc(w.field, cfg);
  const auto res = loc.localize(obj, 1, rng);
  EXPECT_TRUE(w.field.contains(res.positions[0]));
  EXPECT_TRUE(std::isfinite(res.residual));
}

}  // namespace
}  // namespace fluxfp
