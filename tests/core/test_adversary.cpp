#include "core/adversary.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "eval/experiment.hpp"
#include "sim/measurement.hpp"
#include "sim/scenario.hpp"

namespace fluxfp::core {
namespace {

struct World {
  geom::RectField field{30.0, 30.0};
  net::UnitDiskGraph graph;

  explicit World(std::uint64_t seed) : graph(build(seed)) {}

  static net::UnitDiskGraph build(std::uint64_t seed) {
    geom::Rng rng(seed);
    const geom::RectField f(30.0, 30.0);
    return eval::build_connected_network({}, f, rng);
  }
};

TEST(Adversary, PicksRequestedSniffFraction) {
  const World w(600);
  geom::Rng rng(601);
  AdversaryConfig cfg;
  cfg.sniff_fraction = 0.10;
  const Adversary adv(w.field, w.graph, cfg, rng);
  EXPECT_EQ(adv.sniffed_nodes().size(), 90u);
  EXPECT_EQ(adv.num_users(), 1u);
  EXPECT_GT(adv.model().d_min(), 0.0);
}

TEST(Adversary, RejectsMismatchedFlux) {
  const World w(602);
  geom::Rng rng(603);
  Adversary adv(w.field, w.graph, {}, rng);
  EXPECT_THROW(adv.observe(1.0, net::FluxMap(3, 1.0), rng),
               std::invalid_argument);
}

TEST(Adversary, TracksAMovingUserEndToEnd) {
  const World w(604);
  geom::Rng rng(605);
  AdversaryConfig cfg;
  cfg.tracker.num_predictions = 600;
  Adversary adv(w.field, w.graph, cfg, rng);

  sim::SimUser user;
  user.stretch = 2.0;
  user.mobility = std::make_shared<sim::PathMobility>(
      geom::Polyline({{5.0, 14.0}, {25.0, 18.0}}), 2.0);
  sim::ScenarioConfig scfg;
  scfg.rounds = 10;
  const auto obs = sim::run_scenario(w.graph, {user}, scfg, rng);
  for (const auto& o : obs) {
    adv.observe(o.time, o.flux, rng);
  }
  EXPECT_LT(geom::distance(adv.estimate(0), obs.back().true_positions[0]),
            3.0);
}

TEST(Adversary, MultiUserFacade) {
  const World w(606);
  geom::Rng rng(607);
  AdversaryConfig cfg;
  cfg.num_users = 2;
  cfg.tracker.num_predictions = 500;
  Adversary adv(w.field, w.graph, cfg, rng);

  auto mk = [](geom::Vec2 from, geom::Vec2 to) {
    sim::SimUser u;
    u.stretch = 2.0;
    u.mobility = std::make_shared<sim::PathMobility>(
        geom::Polyline({from, to}), geom::distance(from, to) / 10.0);
    return u;
  };
  sim::ScenarioConfig scfg;
  scfg.rounds = 10;
  const auto obs =
      sim::run_scenario(w.graph, {mk({4, 7}, {26, 7}), mk({26, 23}, {4, 23})},
                        scfg, rng);
  SmcStepResult last;
  for (const auto& o : obs) {
    last = adv.observe(o.time, o.flux, rng);
  }
  ASSERT_EQ(last.stretches.size(), 2u);
  // Both users were active in the final window.
  EXPECT_TRUE(last.updated[0] || last.updated[1]);
  // Identity-free: each estimate near one of the true positions.
  for (std::size_t j = 0; j < 2; ++j) {
    const double d0 =
        geom::distance(adv.estimate(j), obs.back().true_positions[0]);
    const double d1 =
        geom::distance(adv.estimate(j), obs.back().true_positions[1]);
    EXPECT_LT(std::min(d0, d1), 4.0) << "slot " << j;
  }
}

TEST(Adversary, DeterministicGivenSeed) {
  const World w(610);
  auto run = [&]() {
    geom::Rng rng(611);
    AdversaryConfig cfg;
    cfg.tracker.num_predictions = 200;
    Adversary adv(w.field, w.graph, cfg, rng);
    geom::Rng sim_rng(612);
    const sim::FluxEngine engine(w.graph);
    for (int round = 1; round <= 3; ++round) {
      const std::vector<sim::Collection> window{
          {0, {5.0 + 2.0 * round, 15.0}, 2.0}};
      const net::FluxMap flux = engine.measure(window, sim_rng);
      adv.observe(static_cast<double>(round), flux, rng);
    }
    return adv.estimate(0);
  };
  EXPECT_EQ(run(), run());
}

TEST(Adversary, SmoothingOffStillRuns) {
  const World w(608);
  geom::Rng rng(609);
  AdversaryConfig cfg;
  cfg.smooth = false;
  cfg.tracker.num_predictions = 300;
  Adversary adv(w.field, w.graph, cfg, rng);
  net::FluxMap flux(w.graph.size(), 0.0);
  const auto res = adv.observe(1.0, flux, rng);
  EXPECT_FALSE(res.updated[0]);
}

}  // namespace
}  // namespace fluxfp::core
