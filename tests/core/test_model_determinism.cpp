// Cross-model determinism: the thread-count bit-identity contract pinned
// by test_determinism.cpp for the flux backend must hold for EVERY
// observation model, because the parallel engine dispatches per column and
// never per model. Each backend drives the same 50-round fault-injected
// SMC pipeline at 1 and 4 worker threads and must produce bit-identical
// estimates, residuals, and recovery flags.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/flux_model.hpp"
#include "core/nls.hpp"
#include "core/observation_model.hpp"
#include "core/passive_trace_model.hpp"
#include "core/rss_link_model.hpp"
#include "core/smc.hpp"
#include "geom/sampling.hpp"
#include "numeric/parallel.hpp"
#include "sim/faults.hpp"

namespace fluxfp::core {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { numeric::set_thread_count(0); }
};

/// Synthetic observation source over an arbitrary backend: sites laid out
/// per the model's geometry (points, or short links for the RSS backend),
/// readings generated directly from site_shape.
struct ModelWorld {
  geom::RectField field{30.0, 30.0};
  std::shared_ptr<const ObservationModel> model;
  std::vector<Site> sites;

  ModelWorld(const ObservationModel& m, std::uint64_t seed,
             std::size_t n = 80)
      : model(m.clone()) {
    geom::Rng rng(seed);
    std::uniform_real_distribution<double> angle(0.0, 6.283185307179586);
    for (std::size_t i = 0; i < n; ++i) {
      const geom::Vec2 a = geom::uniform_in_field(field, rng);
      geom::Vec2 b = a;
      if (m.sites_are_links()) {
        const double t = angle(rng);
        b = field.clamp({a.x + 2.0 * std::cos(t), a.y + 2.0 * std::sin(t)});
      }
      sites.push_back(Site{a, b});
    }
  }

  std::vector<double> readings(const std::vector<geom::Vec2>& sinks,
                               const std::vector<double>& stretches) const {
    std::vector<double> measured(sites.size(), 0.0);
    for (std::size_t i = 0; i < sites.size(); ++i) {
      for (std::size_t j = 0; j < sinks.size(); ++j) {
        measured[i] += stretches[j] * model->site_shape(sinks[j], sites[i]);
      }
    }
    return measured;
  }
};

/// Full pipeline fingerprint of one fault-injected 50-round tracking run.
struct TrackRun {
  std::vector<geom::Vec2> estimates;  // 2 users x 50 rounds, interleaved
  std::vector<double> residuals;
  std::vector<char> recovered;
};

TrackRun run_faulty_tracking(const ModelWorld& w, std::size_t threads) {
  numeric::set_thread_count(threads);

  sim::FaultPlan plan;
  plan.seed = 77;
  plan.outage_prob = 0.15;
  plan.byzantine_fraction = 0.1;
  plan.byzantine_gain = 4.0;
  plan.burst_start = 20;
  plan.burst_length = 3;
  std::vector<std::size_t> sniffers(w.sites.size());
  for (std::size_t i = 0; i < sniffers.size(); ++i) {
    sniffers[i] = i;
  }
  sim::FaultInjector injector(plan, w.sites.size(), std::move(sniffers));

  SmcConfig cfg;
  cfg.num_predictions = 300;
  cfg.num_keep = 10;
  cfg.sweeps = 2;
  cfg.divergence_recovery = true;
  cfg.recovery_grid = 12;
  cfg.robust.loss = RobustLoss::kHuber;
  cfg.robust.reweight_rounds = 1;

  geom::Rng rng(47);
  SmcTracker tracker(w.field, 2, cfg, rng);

  TrackRun out;
  for (int round = 1; round <= 50; ++round) {
    const double r = static_cast<double>(round);
    const std::vector<geom::Vec2> truths{
        {3.0 + 0.45 * r, 10.0 + 0.2 * r}, {27.0 - 0.45 * r, 22.0 - 0.15 * r}};
    std::vector<double> readings = w.readings(truths, {2.0, 2.5});
    injector.begin_round(round);
    injector.corrupt(readings);
    const SparseObjective obj(*w.model, w.sites, std::move(readings));
    const SmcStepResult res = tracker.step(r, obj, rng);
    out.estimates.push_back(tracker.estimate(0));
    out.estimates.push_back(tracker.estimate(1));
    out.residuals.push_back(res.residual);
    out.recovered.push_back(res.recovered ? 1 : 0);
  }
  return out;
}

void expect_thread_count_invariant(const ObservationModel& model) {
  ThreadCountGuard guard;
  const ModelWorld w(model, 46);
  const TrackRun serial = run_faulty_tracking(w, 1);
  const TrackRun parallel = run_faulty_tracking(w, 4);
  ASSERT_EQ(serial.estimates.size(), parallel.estimates.size());
  for (std::size_t i = 0; i < serial.estimates.size(); ++i) {
    ASSERT_EQ(serial.estimates[i], parallel.estimates[i])
        << model_name(model.id()) << " round " << i / 2 + 1 << " user "
        << i % 2;
  }
  EXPECT_EQ(serial.residuals, parallel.residuals);
  EXPECT_EQ(serial.recovered, parallel.recovered);
}

TEST(CrossModelDeterminism, FluxFaultInjectedRunThreadInvariant) {
  const geom::RectField field(30.0, 30.0);
  expect_thread_count_invariant(FluxModel(field, 1.0));
}

TEST(CrossModelDeterminism, RssLinkFaultInjectedRunThreadInvariant) {
  expect_thread_count_invariant(RssLinkModel(4.0, 0.05));
}

TEST(CrossModelDeterminism, PassiveTraceFaultInjectedRunThreadInvariant) {
  expect_thread_count_invariant(PassiveTraceModel(6.0));
}

}  // namespace
}  // namespace fluxfp::core
