#include "core/flux_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

namespace fluxfp::core {
namespace {

TEST(FluxModel, RejectsBadDmin) {
  const geom::RectField f(30.0, 30.0);
  EXPECT_THROW(FluxModel(f, 0.0), std::invalid_argument);
  EXPECT_THROW(FluxModel(f, -1.0), std::invalid_argument);
}

TEST(FluxModel, MatchesClosedFormOnAxis) {
  // Sink at the center of a 30x30 field, node at (20,15): d = 5, the ray
  // exits at x = 30 so l = 15. shape = (l^2 - d^2)/(2d) = 200/10 = 20.
  const geom::RectField f(30.0, 30.0);
  const FluxModel m(f, 1.0);
  EXPECT_DOUBLE_EQ(m.shape({15, 15}, {20, 15}), 20.0);
}

TEST(FluxModel, ContinuousAndDiscreteScaling) {
  const geom::RectField f(30.0, 30.0);
  const FluxModel m(f, 1.0);
  const double phi = m.shape({15, 15}, {20, 15});
  EXPECT_DOUBLE_EQ(m.continuous_flux({15, 15}, {20, 15}, 2.0), 2.0 * phi);
  EXPECT_DOUBLE_EQ(m.discrete_flux({15, 15}, {20, 15}, 2.0, 0.5),
                   4.0 * phi);
  EXPECT_THROW(m.discrete_flux({15, 15}, {20, 15}, 1.0, 0.0),
               std::invalid_argument);
}

TEST(FluxModel, ZeroAtBoundaryAlongRay) {
  // Node on the boundary in the ray direction: l = d, shape = 0.
  const geom::RectField f(30.0, 30.0);
  const FluxModel m(f, 1.0);
  EXPECT_DOUBLE_EQ(m.shape({15, 15}, {30, 15}), 0.0);
}

TEST(FluxModel, ClampsNearSink) {
  const geom::RectField f(30.0, 30.0);
  const FluxModel m(f, 2.0);
  // d = 1 < d_min = 2: denominator uses d_min.
  const double d = 1.0;
  const double l = 15.0;  // ray from center through (16,15) exits at x=30
  EXPECT_DOUBLE_EQ(m.shape({15, 15}, {16, 15}),
                   (l * l - d * d) / (2.0 * 2.0));
}

TEST(FluxModel, FiniteCapAtTheSinkItself) {
  // d -> 0 is the model's singularity; the d_min clamp must cap it at
  // l^2 / (2 d_min) — here l = 15 (center of a 30x30 field), d_min = 1.2,
  // cap = 93.75 — with a continuous approach from d = epsilon.
  const geom::RectField f(30.0, 30.0);
  const FluxModel m(f, 1.2);
  const double cap = 15.0 * 15.0 / (2.0 * 1.2);
  EXPECT_DOUBLE_EQ(m.shape({15, 15}, {15, 15}), cap);
  const double eps = 1e-12;
  const double near = m.shape({15, 15}, {15 + eps, 15});
  EXPECT_TRUE(std::isfinite(near));
  EXPECT_NEAR(near, cap, 1e-6);
}

TEST(FluxModel, RejectsNonFinitePositions) {
  // A NaN coordinate used to flow straight through into a NaN shape value,
  // which SparseObjective would fold into every fit without complaint.
  const geom::RectField f(30.0, 30.0);
  const FluxModel m(f, 1.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(m.shape({nan, 15}, {20, 15}), std::invalid_argument);
  EXPECT_THROW(m.shape({15, 15}, {20, nan}), std::invalid_argument);
  EXPECT_THROW(m.shape({inf, 15}, {20, 15}), std::invalid_argument);
  EXPECT_THROW(m.continuous_flux({15, nan}, {20, 15}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(m.discrete_flux({15, 15}, {inf, 15}, 1.0, 0.5),
               std::invalid_argument);
}

TEST(FluxModel, DegenerateNodeAtSink) {
  const geom::RectField f(30.0, 30.0);
  const FluxModel m(f, 1.5);
  // l falls back to the nearest-edge distance (15), d = 0 clamped to 1.5.
  EXPECT_DOUBLE_EQ(m.shape({15, 15}, {15, 15}),
                   (15.0 * 15.0) / (2.0 * 1.5));
}

TEST(FluxModel, NonNegativeEverywhere) {
  const geom::RectField f(30.0, 20.0);
  const FluxModel m(f, 1.0);
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> ux(0.0, 30.0);
  std::uniform_real_distribution<double> uy(0.0, 20.0);
  for (int i = 0; i < 500; ++i) {
    const geom::Vec2 sink{ux(rng), uy(rng)};
    const geom::Vec2 node{ux(rng), uy(rng)};
    EXPECT_GE(m.shape(sink, node), 0.0);
  }
}

TEST(FluxModel, SinkSlightlyOutsideFieldIsClamped) {
  const geom::RectField f(30.0, 30.0);
  const FluxModel m(f, 1.0);
  const double inside = m.shape({0.0, 15.0}, {10, 15});
  const double outside = m.shape({-1e-9, 15.0}, {10, 15});
  EXPECT_NEAR(inside, outside, 1e-6);
}

// Property: along a fixed ray, the shape decreases with distance (traffic
// thins toward the boundary) once beyond the clamp.
class ShapeMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(ShapeMonotonicity, DecreasesAlongRay) {
  std::mt19937_64 rng(static_cast<unsigned long>(GetParam()));
  const geom::RectField f(30.0, 30.0);
  const FluxModel m(f, 1.0);
  std::uniform_real_distribution<double> u(5.0, 25.0);
  const geom::Vec2 sink{u(rng), u(rng)};
  std::uniform_real_distribution<double> angle(0.0, 6.28318);
  const double a = angle(rng);
  const geom::Vec2 dir{std::cos(a), std::sin(a)};
  const double l = f.boundary_distance(sink, dir);
  double prev = 1e18;
  for (double d = 1.0; d < l; d += 0.5) {
    const double cur = m.shape(sink, sink + dir * d);
    EXPECT_LT(cur, prev + 1e-9) << "d=" << d;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeMonotonicity, ::testing::Range(0, 20));

}  // namespace
}  // namespace fluxfp::core
