// Bit-exact regression against a committed pre-SIMD fixture: a 50-round
// fault-injected two-user SMC run whose every estimate, residual, and final
// particle was recorded (as C99 hexfloats) from the tree BEFORE the SIMD +
// structure-of-arrays overhaul. In the scalar strict-determinism build
// (FLUXFP_SIMD=OFF) the refactored tree must reproduce the fixture bit for
// bit — the layout changes (SoA particles, arena scratch, padded column
// blocks) are storage moves, not arithmetic changes. Vector builds change
// dot-product summation order by design, so there the test skips.
//
// Regenerate tests/core/testdata/smc_scalar_baseline.txt only when a change
// is SUPPOSED to alter scalar results; the writer is the loop below with
// printf("%a") (see the file's header line for the format).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/smc.hpp"
#include "geom/sampling.hpp"
#include "numeric/simd/kernels.hpp"
#include "sim/faults.hpp"

namespace fluxfp::core {
namespace {

/// Parses one whitespace-separated token as a hexfloat ("0x1.8p+3"). The
/// fixture's %a round-trips exactly through strtod.
double parse_hex(std::istream& in) {
  std::string token;
  in >> token;
  EXPECT_FALSE(token.empty());
  return std::strtod(token.c_str(), nullptr);
}

TEST(ScalarBaseline, FaultInjectedSmcRunIsBitIdenticalToPrePrFixture) {
  if (numeric::simd::enabled()) {
    GTEST_SKIP() << "vector backend '" << numeric::simd::backend_name()
                 << "' reorders dot-product accumulation; the bit-exact "
                    "contract only binds the scalar build";
  }
  std::ifstream fixture(std::string(FLUXFP_TESTDATA_DIR) +
                        "/smc_scalar_baseline.txt");
  ASSERT_TRUE(fixture.is_open()) << "missing committed baseline fixture";
  std::string line;
  ASSERT_TRUE(std::getline(fixture, line));
  ASSERT_EQ(line, "fluxfp-smc-scalar-baseline v1");
  ASSERT_TRUE(std::getline(fixture, line));
  ASSERT_EQ(line, "rounds 50 users 2");

  // The exact scenario the fixture was recorded from (mirrors the
  // run_faulty_tracking scenario in test_determinism.cpp).
  geom::RectField field(30.0, 30.0);
  FluxModel model(field, 1.0);
  geom::Rng world_rng(46);
  const std::vector<geom::Vec2> samples =
      geom::uniform_points(field, 80, world_rng);

  sim::FaultPlan plan;
  plan.seed = 77;
  plan.outage_prob = 0.15;
  plan.byzantine_fraction = 0.1;
  plan.byzantine_gain = 4.0;
  plan.burst_start = 20;
  plan.burst_length = 3;
  std::vector<std::size_t> sniffers(samples.size());
  for (std::size_t i = 0; i < sniffers.size(); ++i) {
    sniffers[i] = i;
  }
  sim::FaultInjector injector(plan, samples.size(), std::move(sniffers));

  SmcConfig cfg;
  cfg.num_predictions = 300;
  cfg.num_keep = 10;
  cfg.sweeps = 2;
  cfg.divergence_recovery = true;
  cfg.recovery_grid = 12;
  cfg.robust.loss = RobustLoss::kHuber;
  cfg.robust.reweight_rounds = 1;

  geom::Rng rng(47);
  SmcTracker tracker(field, 2, cfg, rng);

  for (int round = 1; round <= 50; ++round) {
    const double r = static_cast<double>(round);
    const std::vector<geom::Vec2> truths{{3.0 + 0.45 * r, 10.0 + 0.2 * r},
                                         {27.0 - 0.45 * r, 22.0 - 0.15 * r}};
    std::vector<double> readings(samples.size(), 0.0);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      readings[i] = 2.0 * model.shape(truths[0], samples[i]) +
                    2.5 * model.shape(truths[1], samples[i]);
    }
    injector.begin_round(round);
    injector.corrupt(readings);
    const SparseObjective obj(model, samples, std::move(readings));
    const SmcStepResult res = tracker.step(r, obj, rng);

    std::string keyword;
    int fixture_round = 0;
    fixture >> keyword >> fixture_round;
    ASSERT_EQ(keyword, "round");
    ASSERT_EQ(fixture_round, round);
    EXPECT_EQ(tracker.estimate(0).x, parse_hex(fixture)) << "round " << round;
    EXPECT_EQ(tracker.estimate(0).y, parse_hex(fixture)) << "round " << round;
    EXPECT_EQ(tracker.estimate(1).x, parse_hex(fixture)) << "round " << round;
    EXPECT_EQ(tracker.estimate(1).y, parse_hex(fixture)) << "round " << round;
    EXPECT_EQ(res.residual, parse_hex(fixture)) << "round " << round;
    int recovered = 0;
    fixture >> recovered;
    EXPECT_EQ(res.recovered ? 1 : 0, recovered) << "round " << round;
  }

  // Final filter state: the run must not merely print the same estimates
  // but END in the same state, particle for particle, bit for bit.
  const SmcState state = tracker.save_state();
  std::string keyword;
  int bad_rounds = -1;
  fixture >> keyword >> bad_rounds;
  ASSERT_EQ(keyword, "bad_rounds");
  EXPECT_EQ(state.bad_rounds, bad_rounds);
  for (std::size_t u = 0; u < state.users.size(); ++u) {
    const SmcUserState& us = state.users[u];
    std::size_t user_index = 0;
    fixture >> keyword >> user_index;
    ASSERT_EQ(keyword, "user");
    ASSERT_EQ(user_index, u);
    fixture >> keyword;
    ASSERT_EQ(keyword, "t_last");
    EXPECT_EQ(us.t_last, parse_hex(fixture));
    fixture >> keyword;
    ASSERT_EQ(keyword, "prev");
    EXPECT_EQ(us.prev_estimate.x, parse_hex(fixture));
    EXPECT_EQ(us.prev_estimate.y, parse_hex(fixture));
    fixture >> keyword;
    ASSERT_EQ(keyword, "heading");
    EXPECT_EQ(us.heading.x, parse_hex(fixture));
    EXPECT_EQ(us.heading.y, parse_hex(fixture));
    std::size_t particle_count = 0;
    fixture >> keyword >> particle_count;
    ASSERT_EQ(keyword, "particles");
    ASSERT_EQ(us.particles.size(), particle_count);
    for (const Particle& p : us.particles) {
      fixture >> keyword;
      ASSERT_EQ(keyword, "p");
      EXPECT_EQ(p.position.x, parse_hex(fixture));
      EXPECT_EQ(p.position.y, parse_hex(fixture));
      EXPECT_EQ(p.weight, parse_hex(fixture));
    }
  }
  ASSERT_TRUE(fixture.good());
}

}  // namespace
}  // namespace fluxfp::core
