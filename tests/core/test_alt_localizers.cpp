// Tests for the alternative attackers: the naive weighted-centroid
// heuristic and the deterministic grid-refinement search.
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "eval/metrics.hpp"
#include "geom/sampling.hpp"

namespace fluxfp::core {
namespace {

struct Synthetic {
  geom::RectField field{30.0, 30.0};
  FluxModel model{field, 1.0};
  std::vector<geom::Vec2> samples;
  std::vector<geom::Vec2> sinks;
  std::vector<double> measured;

  Synthetic(std::uint64_t seed, std::size_t n, std::vector<geom::Vec2> s,
            std::vector<double> stretches)
      : sinks(std::move(s)) {
    geom::Rng rng(seed);
    samples = geom::uniform_points(field, n, rng);
    measured.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < sinks.size(); ++j) {
        measured[i] += stretches[j] * model.shape(sinks[j], samples[i]);
      }
    }
  }

  SparseObjective objective() const {
    return SparseObjective(model, samples, measured);
  }
};

TEST(CentroidLocalizer, RejectsNegativeGamma) {
  EXPECT_THROW(CentroidLocalizer(-1.0), std::invalid_argument);
}

TEST(CentroidLocalizer, RoughSingleUserEstimate) {
  const Synthetic syn(1, 120, {{15, 15}}, {2.0});
  const CentroidLocalizer loc;
  // A center-field user is the heuristic's best case.
  EXPECT_LT(geom::distance(loc.localize(syn.objective()), {15, 15}), 4.0);
}

TEST(CentroidLocalizer, BiasedTowardFieldCenterForEdgeUsers) {
  // The known flaw: for an off-center user the centroid pulls inward.
  const Synthetic syn(2, 120, {{4, 4}}, {2.0});
  const CentroidLocalizer loc;
  const geom::Vec2 est = loc.localize(syn.objective());
  const double err = geom::distance(est, {4, 4});
  EXPECT_GT(err, 1.5);  // systematically biased
  // ... and the bias points toward the center.
  EXPECT_GT(est.x, 4.0);
  EXPECT_GT(est.y, 4.0);
}

TEST(CentroidLocalizer, ThrowsOnAllZeroWindow) {
  const geom::RectField field(30.0, 30.0);
  const FluxModel model(field, 1.0);
  geom::Rng rng(3);
  const auto samples = geom::uniform_points(field, 20, rng);
  const SparseObjective obj(model, samples,
                            std::vector<double>(samples.size(), 0.0));
  EXPECT_THROW(CentroidLocalizer{}.localize(obj), std::logic_error);
}

TEST(CentroidLocalizer, HigherGammaSharpensEstimate) {
  const Synthetic syn(4, 150, {{9, 21}}, {2.0});
  const SparseObjective obj = syn.objective();
  const double e_flat = geom::distance(
      CentroidLocalizer(1.0).localize(obj), {9, 21});
  const double e_sharp = geom::distance(
      CentroidLocalizer(4.0).localize(obj), {9, 21});
  EXPECT_LT(e_sharp, e_flat);
}

TEST(GridLocalizer, RejectsBadConfig) {
  const geom::RectField field(30.0, 30.0);
  GridLocalizerConfig bad;
  bad.grid = 1;
  EXPECT_THROW(GridLocalizer(field, bad), std::invalid_argument);
  bad = {};
  bad.sweeps = 0;
  EXPECT_THROW(GridLocalizer(field, bad), std::invalid_argument);
}

TEST(GridLocalizer, SingleUserConvergesToTruth) {
  const Synthetic syn(5, 80, {{11, 19}}, {2.0});
  const GridLocalizer loc(syn.field);
  const LocalizationResult res = loc.localize(syn.objective(), 1);
  EXPECT_LT(geom::distance(res.positions[0], {11, 19}), 1.0);
  EXPECT_NEAR(res.stretches[0], 2.0, 0.4);
}

TEST(GridLocalizer, IsDeterministic) {
  const Synthetic syn(6, 60, {{20, 8}}, {2.0});
  const GridLocalizer loc(syn.field);
  const LocalizationResult a = loc.localize(syn.objective(), 1);
  const LocalizationResult b = loc.localize(syn.objective(), 1);
  EXPECT_EQ(a.positions[0], b.positions[0]);
  EXPECT_DOUBLE_EQ(a.residual, b.residual);
}

TEST(GridLocalizer, TwoUsersRecovered) {
  const Synthetic syn(7, 100, {{6, 7}, {24, 22}}, {2.0, 2.5});
  const GridLocalizer loc(syn.field);
  const LocalizationResult res = loc.localize(syn.objective(), 2);
  EXPECT_LT(eval::matched_mean_error(res.positions, syn.sinks), 2.0);
}

TEST(GridLocalizer, RefinementImprovesResolution) {
  const Synthetic syn(8, 80, {{13.37, 17.73}}, {2.0});
  GridLocalizerConfig coarse;
  coarse.refinements = 0;
  GridLocalizerConfig fine;
  fine.refinements = 4;
  const double e_coarse = geom::distance(
      GridLocalizer(syn.field, coarse).localize(syn.objective(), 1)
          .positions[0],
      {13.37, 17.73});
  const double e_fine = geom::distance(
      GridLocalizer(syn.field, fine).localize(syn.objective(), 1)
          .positions[0],
      {13.37, 17.73});
  EXPECT_LE(e_fine, e_coarse + 1e-9);
}

TEST(GridLocalizer, RejectsBadUserCount) {
  const Synthetic syn(9, 40, {{15, 15}}, {2.0});
  const GridLocalizer loc(syn.field);
  EXPECT_THROW(loc.localize(syn.objective(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace fluxfp::core
