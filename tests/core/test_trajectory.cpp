#include "core/trajectory.hpp"

#include <gtest/gtest.h>

#include "core/localizer.hpp"
#include "eval/experiment.hpp"
#include "numeric/stats.hpp"
#include "sim/scenario.hpp"
#include "sim/sniffer.hpp"

namespace fluxfp::core {
namespace {

RoundCandidates round_at(double time,
                         std::initializer_list<geom::Vec2> positions,
                         std::initializer_list<double> residuals) {
  RoundCandidates r;
  r.time = time;
  r.positions = positions;
  r.residuals = residuals;
  return r;
}

TEST(TrajectorySmoother, RejectsBadInputs) {
  EXPECT_THROW(smooth_trajectory({}), std::invalid_argument);
  const std::vector<RoundCandidates> mismatched{
      round_at(1.0, {{0, 0}, {1, 1}}, {0.5})};
  EXPECT_THROW(smooth_trajectory(mismatched), std::invalid_argument);
  const std::vector<RoundCandidates> bad_times{
      round_at(2.0, {{0, 0}}, {0.5}), round_at(1.0, {{0, 0}}, {0.5})};
  EXPECT_THROW(smooth_trajectory(bad_times), std::invalid_argument);
  TrajectoryConfig bad;
  bad.vmax = 0.0;
  EXPECT_THROW(
      smooth_trajectory({round_at(1.0, {{0, 0}}, {0.5})}, bad),
      std::invalid_argument);
}

TEST(TrajectorySmoother, SingleRoundPicksBestCandidate) {
  const std::vector<RoundCandidates> rounds{
      round_at(1.0, {{0, 0}, {5, 5}, {9, 9}}, {3.0, 1.0, 2.0})};
  const auto path = smooth_trajectory(rounds);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], geom::Vec2(5, 5));
}

TEST(TrajectorySmoother, ConsistencyBeatsPerRoundBest) {
  // Round 2's lowest-residual candidate is a far-away outlier; the
  // smoother must prefer the slightly-worse candidate on the consistent
  // path.
  TrajectoryConfig cfg;
  cfg.vmax = 3.0;
  const std::vector<RoundCandidates> rounds{
      round_at(1.0, {{0, 0}}, {1.0}),
      round_at(2.0, {{20, 20}, {2, 0}}, {0.5, 0.8}),  // outlier is "best"
      round_at(3.0, {{4, 0}}, {1.0}),
  };
  const auto path = smooth_trajectory(rounds, cfg);
  EXPECT_EQ(path[1], geom::Vec2(2, 0));
}

TEST(TrajectorySmoother, RepairsEarlyOutlierFromLaterEvidence) {
  // The very first round's best candidate is wrong; later rounds fix it
  // retroactively — the defining advantage over online filtering.
  TrajectoryConfig cfg;
  cfg.vmax = 3.0;
  const std::vector<RoundCandidates> rounds{
      round_at(1.0, {{25, 25}, {1, 1}}, {0.2, 0.6}),
      round_at(2.0, {{2, 2}}, {0.5}),
      round_at(3.0, {{3, 3}}, {0.5}),
  };
  const auto path = smooth_trajectory(rounds, cfg);
  EXPECT_EQ(path[0], geom::Vec2(1, 1));
}

TEST(TrajectorySmoother, RespectsSpeedBound) {
  TrajectoryConfig cfg;
  cfg.vmax = 2.0;
  const std::vector<RoundCandidates> rounds{
      round_at(1.0, {{0, 0}}, {0.5}),
      round_at(2.0, {{10, 0}, {1.5, 0}}, {0.1, 0.9}),
  };
  const auto path = smooth_trajectory(rounds, cfg);
  EXPECT_EQ(path[1], geom::Vec2(1.5, 0));
}

TEST(TrajectorySmoother, AsynchronousGapsEnlargeReach) {
  // With a 5-unit time gap the 8-unit jump becomes feasible and its lower
  // residual wins.
  TrajectoryConfig cfg;
  cfg.vmax = 2.0;
  const std::vector<RoundCandidates> rounds{
      round_at(1.0, {{0, 0}}, {0.5}),
      round_at(6.0, {{8, 0}, {1, 0}}, {0.1, 0.9}),
  };
  const auto path = smooth_trajectory(rounds, cfg);
  EXPECT_EQ(path[1], geom::Vec2(8, 0));
}

TEST(TrajectorySmoother, AllInfeasibleStillReturnsAPath) {
  TrajectoryConfig cfg;
  cfg.vmax = 0.5;
  const std::vector<RoundCandidates> rounds{
      round_at(1.0, {{0, 0}}, {0.5}),
      round_at(2.0, {{20, 0}, {25, 0}}, {0.3, 0.1}),
  };
  const auto path = smooth_trajectory(rounds, cfg);
  ASSERT_EQ(path.size(), 2u);
  // Picks the lesser violation (20 < 25 away).
  EXPECT_EQ(path[1], geom::Vec2(20, 0));
}

TEST(TrajectorySmoother, EndToEndBeatsOrMatchesPerRoundBest) {
  // Full pipeline: per-round top-10 lists from the instant localizer on a
  // simulated moving user; the smoothed path's mean error must not exceed
  // the naive take-the-best-per-round estimate's.
  geom::Rng rng(800);
  const geom::RectField field(30.0, 30.0);
  const net::UnitDiskGraph graph =
      eval::build_connected_network({}, field, rng);
  const core::FluxModel model(field,
                              eval::estimate_d_min(graph, field, rng));
  sim::SimUser user;
  user.stretch = 2.0;
  user.mobility = std::make_shared<sim::PathMobility>(
      geom::Polyline({{4, 8}, {26, 20}}), 2.5);
  sim::ScenarioConfig scfg;
  scfg.rounds = 10;
  const auto obs = sim::run_scenario(graph, {user}, scfg, rng);
  const auto samples = sim::sample_nodes_fraction(graph.size(), 0.05, rng);

  LocalizerConfig lcfg;
  lcfg.candidates_per_user = 3000;
  const InstantLocalizer loc(field, lcfg);
  std::vector<RoundCandidates> rounds;
  numeric::RunningStats naive_err;
  for (const auto& o : obs) {
    const SparseObjective obj =
        eval::make_objective(model, graph, o.flux, samples);
    const LocalizationResult res = loc.localize(obj, 1, rng);
    RoundCandidates rc;
    rc.time = o.time;
    rc.positions = res.top_positions[0];
    rc.residuals = res.top_residuals[0];
    rounds.push_back(std::move(rc));
    naive_err.add(geom::distance(res.positions[0], o.true_positions[0]));
  }
  TrajectoryConfig tcfg;
  tcfg.vmax = 5.0;
  const auto path = smooth_trajectory(rounds, tcfg);
  numeric::RunningStats smooth_err;
  for (std::size_t t = 0; t < path.size(); ++t) {
    smooth_err.add(geom::distance(path[t], obs[t].true_positions[0]));
  }
  EXPECT_LE(smooth_err.mean(), naive_err.mean() + 0.3);
}

}  // namespace
}  // namespace fluxfp::core
