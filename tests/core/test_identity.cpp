#include "core/identity.hpp"

#include <gtest/gtest.h>

#include "core/smc.hpp"
#include "eval/experiment.hpp"
#include "sim/scenario.hpp"
#include "sim/sniffer.hpp"

namespace fluxfp::core {
namespace {

using Detection = IdentityMaintainer::Detection;

TEST(IdentityMaintainer, RejectsBadConfig) {
  EXPECT_THROW(IdentityMaintainer(0), std::invalid_argument);
  IdentityConfig bad;
  bad.stretch_smoothing = 1.5;
  EXPECT_THROW(IdentityMaintainer(2, bad), std::invalid_argument);
}

TEST(IdentityMaintainer, FirstRoundAdoptsInOrder) {
  IdentityMaintainer m(2);
  const auto order = m.assign({{{1, 1}, 2.0, true}, {{9, 9}, 3.0, true}});
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(m.position(0), geom::Vec2(1, 1));
  EXPECT_DOUBLE_EQ(m.fingerprint(1), 3.0);
}

TEST(IdentityMaintainer, RejectsWrongDetectionCount) {
  IdentityMaintainer m(2);
  EXPECT_THROW(m.assign({{{1, 1}, 2.0, true}}), std::invalid_argument);
}

TEST(IdentityMaintainer, FollowsByPositionWhenStretchesEqual) {
  IdentityMaintainer m(2);
  m.assign({{{0, 0}, 2.0, true}, {{10, 10}, 2.0, true}});
  // Both move a little; detections arrive in swapped order.
  const auto order = m.assign({{{9.5, 10}, 2.0, true}, {{0.5, 0}, 2.0, true}});
  EXPECT_EQ(order[0], 1u);  // track 0 takes the detection near (0,0)
  EXPECT_EQ(order[1], 0u);
}

TEST(IdentityMaintainer, StretchFingerprintResolvesCrossing) {
  // Two users meet at the same spot; identical positions, different
  // stretches. Position alone is ambiguous; the fingerprint decides.
  IdentityConfig cfg;
  cfg.stretch_weight = 3.0;
  IdentityMaintainer m(2, cfg);
  m.assign({{{5, 5}, 1.0, true}, {{15, 15}, 3.0, true}});
  // At the crossing both detections sit at (10,10) but carry stretches in
  // swapped order relative to the detection indices.
  const auto order =
      m.assign({{{10, 10}, 3.0, true}, {{10.1, 10}, 1.0, true}});
  EXPECT_EQ(order[0], 1u);  // track 0 (fingerprint 1.0) takes stretch-1.0
  EXPECT_EQ(order[1], 0u);
}

TEST(IdentityMaintainer, FingerprintSmoothingConverges) {
  IdentityConfig cfg;
  cfg.stretch_smoothing = 0.5;
  IdentityMaintainer m(1, cfg);
  m.assign({{{0, 0}, 2.0, true}});
  for (int i = 0; i < 10; ++i) {
    m.assign({{{0, 0}, 3.0, true}});
  }
  EXPECT_NEAR(m.fingerprint(0), 3.0, 0.01);
}

TEST(IdentityMaintainer, NonUpdatedDetectionKeepsFingerprint) {
  IdentityMaintainer m(1);
  m.assign({{{0, 0}, 2.0, true}});
  m.assign({{{0, 0}, 0.0, false}});  // silent round
  EXPECT_DOUBLE_EQ(m.fingerprint(0), 2.0);
}

TEST(IdentityMaintainer, EndToEndCrossingWithDistinctStretches) {
  // Full pipeline: two users with very different stretches cross paths;
  // the maintainer keeps each track on its own trajectory where raw SMC
  // slots may swap.
  geom::Rng rng(700);
  const geom::RectField field(30.0, 30.0);
  const net::UnitDiskGraph graph =
      eval::build_connected_network({}, field, rng);
  const core::FluxModel model(field,
                              eval::estimate_d_min(graph, field, rng));

  auto mk = [](geom::Vec2 from, geom::Vec2 to, double stretch) {
    sim::SimUser u;
    u.stretch = stretch;
    u.mobility = std::make_shared<sim::PathMobility>(
        geom::Polyline({from, to}), geom::distance(from, to) / 12.0);
    return u;
  };
  // User A: stretch 1, diagonal up; user B: stretch 3, diagonal down.
  const std::vector<sim::SimUser> users{mk({3, 3}, {27, 27}, 1.0),
                                        mk({27, 3}, {3, 27}, 3.0)};
  sim::ScenarioConfig scfg;
  scfg.rounds = 12;
  const auto obs = sim::run_scenario(graph, users, scfg, rng);
  const auto samples = sim::sample_nodes_fraction(graph.size(), 0.15, rng);

  core::SmcConfig tcfg;
  tcfg.num_predictions = 600;
  core::SmcTracker tracker(field, 2, tcfg, rng);
  IdentityMaintainer ids(2);
  std::vector<std::size_t> order{0, 1};
  for (const auto& o : obs) {
    const core::SparseObjective obj =
        eval::make_objective(model, graph, o.flux, samples);
    const auto res = tracker.step(o.time, obj, rng);
    std::vector<Detection> dets(2);
    for (std::size_t s = 0; s < 2; ++s) {
      dets[s] = {tracker.estimate(s), res.stretches[s], res.updated[s]};
    }
    order = ids.assign(dets);
  }
  // Which track learned the light user's fingerprint is arbitrary (first
  // detection order), but after the crossing the small-fingerprint track
  // must sit near the stretch-1 user and the large-fingerprint track near
  // the stretch-3 user: identities preserved via traffic fingerprints.
  const std::size_t light =
      ids.fingerprint(0) < ids.fingerprint(1) ? 0u : 1u;
  const std::size_t heavy = 1u - light;
  EXPECT_LT(ids.fingerprint(light), ids.fingerprint(heavy));
  EXPECT_LT(geom::distance(ids.position(light),
                           obs.back().true_positions[0]),
            6.0);
  EXPECT_LT(geom::distance(ids.position(heavy),
                           obs.back().true_positions[1]),
            6.0);
}

}  // namespace
}  // namespace fluxfp::core
