#include "privacy/countermeasure.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "net/deployment.hpp"

namespace fluxfp::privacy {
namespace {

net::UnitDiskGraph small_graph(geom::Rng& rng) {
  const geom::RectField f(30.0, 30.0);
  return net::UnitDiskGraph(net::perturbed_grid(f, 15, 15, 0.5, rng), 4.0);
}

TEST(Countermeasure, NoneLeavesFluxUntouched) {
  geom::Rng rng(1);
  const net::UnitDiskGraph g = small_graph(rng);
  net::FluxMap flux(g.size(), 3.0);
  const net::FluxMap before = flux;
  const Countermeasure cm({});
  cm.apply(flux, g, rng);
  EXPECT_EQ(flux, before);
  EXPECT_DOUBLE_EQ(cm.last_overhead(), 0.0);
}

TEST(Countermeasure, PaddingRaisesFloor) {
  geom::Rng rng(2);
  const net::UnitDiskGraph g = small_graph(rng);
  net::FluxMap flux(g.size(), 0.0);
  flux[0] = 10.0;
  CountermeasureConfig cfg;
  cfg.kind = CountermeasureKind::kConstantPadding;
  cfg.pad_level = 4.0;
  const Countermeasure cm(cfg);
  cm.apply(flux, g, rng);
  EXPECT_DOUBLE_EQ(flux[0], 10.0);  // already above the floor
  for (std::size_t i = 1; i < flux.size(); ++i) {
    EXPECT_DOUBLE_EQ(flux[i], 4.0);
  }
  EXPECT_DOUBLE_EQ(cm.last_overhead(),
                   4.0 * static_cast<double>(g.size() - 1));
}

TEST(Countermeasure, DummyTreesAddChaff) {
  geom::Rng rng(3);
  const net::UnitDiskGraph g = small_graph(rng);
  net::FluxMap flux(g.size(), 0.0);
  CountermeasureConfig cfg;
  cfg.kind = CountermeasureKind::kDummyTrees;
  cfg.dummy_count = 2;
  cfg.dummy_stretch = 1.0;
  const Countermeasure cm(cfg);
  cm.apply(flux, g, rng);
  const double total = std::accumulate(flux.begin(), flux.end(), 0.0);
  EXPECT_GT(total, 0.0);
  EXPECT_DOUBLE_EQ(cm.last_overhead(), total);
}

TEST(Countermeasure, DummyTreesZeroCountNoop) {
  geom::Rng rng(4);
  const net::UnitDiskGraph g = small_graph(rng);
  net::FluxMap flux(g.size(), 1.0);
  CountermeasureConfig cfg;
  cfg.kind = CountermeasureKind::kDummyTrees;
  cfg.dummy_count = 0;
  const Countermeasure cm(cfg);
  cm.apply(flux, g, rng);
  for (double v : flux) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(Countermeasure, JitterPreservesNonNegativityAndRoughScale) {
  geom::Rng rng(5);
  const net::UnitDiskGraph g = small_graph(rng);
  net::FluxMap flux(g.size(), 2.0);
  CountermeasureConfig cfg;
  cfg.kind = CountermeasureKind::kStretchJitter;
  cfg.jitter_sigma = 0.5;
  const Countermeasure cm(cfg);
  cm.apply(flux, g, rng);
  double mean = 0.0;
  for (double v : flux) {
    EXPECT_GE(v, 0.0);
    mean += v;
  }
  mean /= static_cast<double>(flux.size());
  EXPECT_NEAR(mean, 2.0, 0.5);  // unit-mean lognormal factor
}

TEST(Countermeasure, JitterZeroSigmaNoop) {
  geom::Rng rng(6);
  const net::UnitDiskGraph g = small_graph(rng);
  net::FluxMap flux(g.size(), 2.0);
  CountermeasureConfig cfg;
  cfg.kind = CountermeasureKind::kStretchJitter;
  cfg.jitter_sigma = 0.0;
  const Countermeasure cm(cfg);
  cm.apply(flux, g, rng);
  for (double v : flux) {
    EXPECT_DOUBLE_EQ(v, 2.0);
  }
}

TEST(Countermeasure, RejectsBadConfigs) {
  CountermeasureConfig cfg;
  cfg.kind = CountermeasureKind::kConstantPadding;
  cfg.pad_level = -1.0;
  EXPECT_THROW(Countermeasure{cfg}, std::invalid_argument);
  cfg = {};
  cfg.kind = CountermeasureKind::kStretchJitter;
  cfg.jitter_sigma = -0.1;
  EXPECT_THROW(Countermeasure{cfg}, std::invalid_argument);
}

TEST(Countermeasure, RejectsSizeMismatch) {
  geom::Rng rng(7);
  const net::UnitDiskGraph g = small_graph(rng);
  net::FluxMap flux(3, 1.0);
  const Countermeasure cm({});
  EXPECT_THROW(cm.apply(flux, g, rng), std::invalid_argument);
}

TEST(Countermeasure, ToString) {
  EXPECT_STREQ(to_string(CountermeasureKind::kNone), "none");
  EXPECT_STREQ(to_string(CountermeasureKind::kConstantPadding),
               "constant-padding");
  EXPECT_STREQ(to_string(CountermeasureKind::kDummyTrees), "dummy-trees");
  EXPECT_STREQ(to_string(CountermeasureKind::kStretchJitter),
               "stretch-jitter");
}

}  // namespace
}  // namespace fluxfp::privacy
