#include "trace/ap.hpp"

#include <gtest/gtest.h>

namespace fluxfp::trace {
namespace {

TEST(AccessPoints, GridCountAndIds) {
  const geom::RectField f(30.0, 30.0);
  const auto aps = grid_aps(f, 5, 10);
  ASSERT_EQ(aps.size(), 50u);
  for (std::size_t i = 0; i < aps.size(); ++i) {
    EXPECT_EQ(aps[i].id, i);
    EXPECT_TRUE(f.contains(aps[i].position));
  }
  EXPECT_EQ(aps[0].name, "AP0-0");
  EXPECT_EQ(aps[49].name, "AP4-9");
}

TEST(AccessPoints, GridInsetFromBoundary) {
  const geom::RectField f(10.0, 10.0);
  const auto aps = grid_aps(f, 2, 2);
  EXPECT_EQ(aps[0].position, geom::Vec2(2.5, 2.5));
  EXPECT_EQ(aps[3].position, geom::Vec2(7.5, 7.5));
}

TEST(AccessPoints, GridRejectsZero) {
  const geom::RectField f(10.0, 10.0);
  EXPECT_THROW(grid_aps(f, 0, 5), std::invalid_argument);
}

TEST(AccessPoints, RandomApsInsideField) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(1);
  const auto aps = random_aps(f, 20, rng);
  ASSERT_EQ(aps.size(), 20u);
  for (const auto& ap : aps) {
    EXPECT_TRUE(f.contains(ap.position));
  }
}

TEST(AccessPoints, NearestAp) {
  const geom::RectField f(10.0, 10.0);
  const auto aps = grid_aps(f, 2, 2);
  EXPECT_EQ(nearest_ap(aps, {0, 0}), 0u);
  EXPECT_EQ(nearest_ap(aps, {9.9, 9.9}), 3u);
  EXPECT_EQ(nearest_ap(aps, {7.4, 2.6}), 1u);
}

TEST(AccessPoints, NearestApRejectsEmpty) {
  EXPECT_THROW(nearest_ap({}, {0, 0}), std::invalid_argument);
}

TEST(AccessPoints, ApNeighborsWithinRadius) {
  const geom::RectField f(10.0, 10.0);
  const auto aps = grid_aps(f, 2, 2);  // spacing 5
  const auto nb = ap_neighbors(aps, 0, 5.5);
  EXPECT_EQ(nb, (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(ap_neighbors(aps, 0, 1.0).empty());
}

TEST(AccessPoints, ApNeighborsRejectsOutOfRange) {
  const geom::RectField f(10.0, 10.0);
  const auto aps = grid_aps(f, 2, 2);
  EXPECT_THROW(ap_neighbors(aps, 9, 1.0), std::out_of_range);
}

}  // namespace
}  // namespace fluxfp::trace
