#include "trace/format.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fluxfp::trace {
namespace {

Trace sample_trace() {
  Trace t;
  const geom::RectField f(10.0, 10.0);
  t.aps = grid_aps(f, 2, 2);
  t.events = {{"alice", 0.0, 0},
              {"bob", 1.5, 2},
              {"alice", 3.0, 1},
              {"bob", 4.25, 3}};
  return t;
}

TEST(TraceFormat, UsersInFirstAppearanceOrder) {
  const Trace t = sample_trace();
  EXPECT_EQ(t.users(), (std::vector<std::string>{"alice", "bob"}));
}

TEST(TraceFormat, EventsOfUserTimeOrdered) {
  Trace t = sample_trace();
  t.events.push_back({"alice", 0.5, 3});
  const auto ev = t.events_of("alice");
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_DOUBLE_EQ(ev[0].time, 0.0);
  EXPECT_DOUBLE_EQ(ev[1].time, 0.5);
  EXPECT_DOUBLE_EQ(ev[2].time, 3.0);
}

TEST(TraceFormat, EventsOfUnknownUserEmpty) {
  EXPECT_TRUE(sample_trace().events_of("nobody").empty());
}

TEST(TraceFormat, CsvRoundTrip) {
  const Trace t = sample_trace();
  std::stringstream ss;
  write_events_csv(ss, t);
  const auto events = read_events_csv(ss);
  ASSERT_EQ(events.size(), t.events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].user, t.events[i].user);
    EXPECT_DOUBLE_EQ(events[i].time, t.events[i].time);
    EXPECT_EQ(events[i].ap, t.events[i].ap);
  }
}

TEST(TraceFormat, CsvHeaderWritten) {
  std::stringstream ss;
  write_events_csv(ss, sample_trace());
  std::string first;
  std::getline(ss, first);
  EXPECT_EQ(first, "user,time,ap");
}

TEST(TraceFormat, ReadSkipsEmptyLinesAndHeader) {
  std::stringstream ss("user,time,ap\n\nalice,1.5,3\n\n");
  const auto events = read_events_csv(ss);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].user, "alice");
}

TEST(TraceFormat, ReadWithoutHeader) {
  std::stringstream ss("alice,1.5,3\n");
  const auto events = read_events_csv(ss);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ap, 3u);
}

TEST(TraceFormat, ReadRejectsMalformed) {
  std::stringstream missing("alice,1.5\n");
  EXPECT_THROW(read_events_csv(missing), std::runtime_error);
  std::stringstream bad_number("alice,xyz,3\n");
  EXPECT_THROW(read_events_csv(bad_number), std::runtime_error);
}

}  // namespace
}  // namespace fluxfp::trace
