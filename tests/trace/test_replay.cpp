#include "trace/replay.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace fluxfp::trace {
namespace {

TEST(TraceMobility, InterpolatesBetweenAps) {
  const TraceMobility m({0.0, 10.0}, {{0, 0}, {10, 0}});
  EXPECT_EQ(m.position_at(-1.0), geom::Vec2(0, 0));
  EXPECT_EQ(m.position_at(0.0), geom::Vec2(0, 0));
  EXPECT_EQ(m.position_at(5.0), geom::Vec2(5, 0));
  EXPECT_EQ(m.position_at(10.0), geom::Vec2(10, 0));
  EXPECT_EQ(m.position_at(42.0), geom::Vec2(10, 0));
}

TEST(TraceMobility, SingleEventIsStatic) {
  const TraceMobility m({5.0}, {{3, 4}});
  EXPECT_EQ(m.position_at(0.0), geom::Vec2(3, 4));
  EXPECT_EQ(m.position_at(99.0), geom::Vec2(3, 4));
}

TEST(TraceMobility, RejectsBadSequences) {
  EXPECT_THROW(TraceMobility({}, {}), std::invalid_argument);
  EXPECT_THROW(TraceMobility({0.0, 0.0}, {{0, 0}, {1, 1}}),
               std::invalid_argument);
  EXPECT_THROW(TraceMobility({1.0, 0.5}, {{0, 0}, {1, 1}}),
               std::invalid_argument);
}

Trace synthetic_trace() {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(11);
  TraceGenConfig cfg;
  cfg.num_users = 6;
  cfg.duration = 100000.0;
  return generate_trace(grid_aps(f, 5, 10), cfg, rng);
}

TEST(ReplayUsers, OnePerTraceUser) {
  geom::Rng rng(1);
  const auto users = replay_users(synthetic_trace(), {}, rng);
  EXPECT_EQ(users.size(), 6u);
}

TEST(ReplayUsers, CompressionScalesTimes) {
  const Trace t = synthetic_trace();
  geom::Rng rng_a(2);
  geom::Rng rng_b(2);
  ReplayConfig c100;
  c100.compression = 100.0;
  ReplayConfig c50;
  c50.compression = 50.0;
  const auto u100 = replay_users(t, c100, rng_a);
  const auto u50 = replay_users(t, c50, rng_b);
  EXPECT_NEAR(compressed_end_time(u50), 2.0 * compressed_end_time(u100),
              1e-6);
}

TEST(ReplayUsers, EarliestEventLandsAtZero) {
  geom::Rng rng(3);
  const auto users = replay_users(synthetic_trace(), {}, rng);
  double earliest = 1e18;
  for (const auto& u : users) {
    ASSERT_FALSE(u.event_times.empty());
    earliest = std::min(earliest, u.event_times.front());
  }
  EXPECT_NEAR(earliest, 0.0, 1e-9);
}

TEST(ReplayUsers, StretchesInRange) {
  geom::Rng rng(4);
  ReplayConfig cfg;
  cfg.stretch_lo = 1.0;
  cfg.stretch_hi = 3.0;
  for (const auto& u : replay_users(synthetic_trace(), cfg, rng)) {
    EXPECT_GE(u.sim.stretch, 1.0);
    EXPECT_LE(u.sim.stretch, 3.0);
  }
}

TEST(ReplayUsers, ScheduleMatchesEventWindows) {
  geom::Rng rng(5);
  ReplayConfig cfg;
  cfg.window = 1.0;
  const auto users = replay_users(synthetic_trace(), cfg, rng);
  for (const auto& u : users) {
    // Active exactly at a window that ends on an event time.
    const double t0 = u.event_times.front();
    EXPECT_TRUE(u.sim.is_active(t0));
    EXPECT_TRUE(u.sim.is_active(t0 + 0.5));   // event in (t-1, t]
    EXPECT_FALSE(u.sim.is_active(t0 - 0.01)); // event after window end
  }
}

TEST(ReplayUsers, MobilityFollowsApPath) {
  // Hand-built trace: alice goes AP0 (t=0s) -> AP3 (t=100s), compression 100
  // puts the compressed trajectory between t=0 and t=1.
  Trace t;
  const geom::RectField f(10.0, 10.0);
  t.aps = grid_aps(f, 2, 2);
  t.events = {{"alice", 0.0, 0}, {"alice", 100.0, 3}};
  geom::Rng rng(6);
  ReplayConfig cfg;
  cfg.compression = 100.0;
  const auto users = replay_users(t, cfg, rng);
  ASSERT_EQ(users.size(), 1u);
  const auto& m = *users[0].sim.mobility;
  EXPECT_EQ(m.position_at(0.0), t.aps[0].position);
  EXPECT_EQ(m.position_at(1.0), t.aps[3].position);
  const geom::Vec2 mid = m.position_at(0.5);
  EXPECT_NEAR(mid.x, 5.0, 1e-9);
  EXPECT_NEAR(mid.y, 5.0, 1e-9);
}

TEST(ReplayUsers, DuplicateTimestampsDropped) {
  Trace t;
  const geom::RectField f(10.0, 10.0);
  t.aps = grid_aps(f, 2, 2);
  t.events = {{"alice", 0.0, 0}, {"alice", 0.0, 1}, {"alice", 100.0, 3}};
  geom::Rng rng(7);
  const auto users = replay_users(t, {}, rng);
  ASSERT_EQ(users.size(), 1u);
  EXPECT_EQ(users[0].event_times.size(), 2u);
}

TEST(ReplayUsers, RejectsBadConfig) {
  geom::Rng rng(8);
  ReplayConfig bad;
  bad.compression = 0.0;
  EXPECT_THROW(replay_users(synthetic_trace(), bad, rng),
               std::invalid_argument);
}

TEST(ReplayUsers, UnknownApThrows) {
  Trace t;
  const geom::RectField f(10.0, 10.0);
  t.aps = grid_aps(f, 2, 2);
  t.events = {{"alice", 0.0, 99}};
  geom::Rng rng(9);
  EXPECT_THROW(replay_users(t, {}, rng), std::invalid_argument);
}

TEST(CompressedEndTime, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(compressed_end_time({}), 0.0);
}

}  // namespace
}  // namespace fluxfp::trace
