#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace fluxfp::trace {
namespace {

Trace make_trace(std::uint64_t seed, TraceGenConfig cfg = {}) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(seed);
  return generate_trace(grid_aps(f, 5, 10), cfg, rng);
}

TEST(TraceGenerator, ProducesAllUsers) {
  TraceGenConfig cfg;
  cfg.num_users = 20;
  const Trace t = make_trace(1, cfg);
  EXPECT_EQ(t.users().size(), 20u);
}

TEST(TraceGenerator, EventsAreTimeOrdered) {
  const Trace t = make_trace(2);
  for (std::size_t i = 1; i < t.events.size(); ++i) {
    EXPECT_LE(t.events[i - 1].time, t.events[i].time);
  }
}

TEST(TraceGenerator, EventsWithinDuration) {
  TraceGenConfig cfg;
  cfg.duration = 50000.0;
  const Trace t = make_trace(3, cfg);
  for (const TraceEvent& e : t.events) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LT(e.time, cfg.duration);
  }
}

TEST(TraceGenerator, EveryUserHasAtLeastOneEvent) {
  const Trace t = make_trace(4);
  for (const std::string& u : t.users()) {
    EXPECT_FALSE(t.events_of(u).empty());
  }
}

TEST(TraceGenerator, ApIdsAreValid) {
  const Trace t = make_trace(5);
  for (const TraceEvent& e : t.events) {
    EXPECT_LT(e.ap, t.aps.size());
  }
}

TEST(TraceGenerator, MovementsPreferNearbyAps) {
  TraceGenConfig cfg;
  cfg.jump_prob = 0.0;
  cfg.hop_radius = 8.0;
  const Trace t = make_trace(6, cfg);
  // With jump_prob 0 every consecutive hop of a user is within hop_radius.
  for (const std::string& u : t.users()) {
    const auto ev = t.events_of(u);
    for (std::size_t i = 1; i < ev.size(); ++i) {
      const double d = geom::distance(t.aps[ev[i - 1].ap].position,
                                      t.aps[ev[i].ap].position);
      EXPECT_LE(d, 8.0 + 1e-9);
    }
  }
}

TEST(TraceGenerator, UsersAreAsynchronous) {
  // Distinct users should not share all event times.
  const Trace t = make_trace(7);
  const auto a = t.events_of("user0");
  const auto b = t.events_of("user1");
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_NE(a.front().time, b.front().time);
}

TEST(TraceGenerator, DwellTimesAreHeavyTailed) {
  TraceGenConfig cfg;
  cfg.num_users = 5;
  cfg.duration = 500000.0;
  const Trace t = make_trace(8, cfg);
  std::vector<double> dwells;
  for (const std::string& u : t.users()) {
    const auto ev = t.events_of(u);
    for (std::size_t i = 1; i < ev.size(); ++i) {
      dwells.push_back(ev[i].time - ev[i - 1].time);
    }
  }
  ASSERT_GT(dwells.size(), 50u);
  std::sort(dwells.begin(), dwells.end());
  const double median = dwells[dwells.size() / 2];
  const double p95 = dwells[dwells.size() * 95 / 100];
  // Lognormal sigma=1.2: the 95th percentile is several times the median.
  EXPECT_GT(p95, 2.5 * median);
}

TEST(TraceGenerator, Deterministic) {
  const Trace a = make_trace(9);
  const Trace b = make_trace(9);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].user, b.events[i].user);
    EXPECT_DOUBLE_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].ap, b.events[i].ap);
  }
}

TEST(TraceGenerator, RejectsBadInputs) {
  geom::Rng rng(10);
  TraceGenConfig cfg;
  EXPECT_THROW(generate_trace({}, cfg, rng), std::invalid_argument);
  cfg.num_users = 0;
  const geom::RectField f(10.0, 10.0);
  EXPECT_THROW(generate_trace(grid_aps(f, 2, 2), cfg, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace fluxfp::trace
