#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/deployment.hpp"
#include "obs/obs.hpp"
#include "sim/scenario.hpp"
#include "stream/emit.hpp"
#include "stream/manager.hpp"

namespace fluxfp::obs {
namespace {

/// Stream bed mirroring tests/stream/test_manager.cpp: an 8x8 perturbed
/// grid, every 7th node sniffed, cheap SMC settings.
struct Bed {
  geom::RectField field{20.0, 20.0};
  net::UnitDiskGraph graph;
  core::FluxModel model;
  std::vector<std::size_t> sniffers;

  Bed() : graph(make_graph()), model(field, 1.0) {
    for (std::size_t i = 0; i < graph.size(); i += 7) {
      sniffers.push_back(i);
    }
  }

  static net::UnitDiskGraph make_graph() {
    geom::Rng rng(99);
    const geom::RectField f(20.0, 20.0);
    return net::UnitDiskGraph(net::perturbed_grid(f, 8, 8, 0.3, rng), 4.0);
  }

  stream::StreamTracker tracker(std::uint64_t seed) const {
    stream::StreamTrackerConfig cfg;
    cfg.smc.num_predictions = 30;
    cfg.smc.num_keep = 4;
    cfg.expected_readings = sniffers.size();
    return stream::StreamTracker(model, graph, sniffers, 1, cfg, seed);
  }

  std::vector<stream::FluxEvent> session_events(std::uint32_t user,
                                                int rounds,
                                                std::uint64_t seed) const {
    geom::Rng rng(seed);
    sim::SimUser su;
    su.mobility = std::make_shared<sim::RandomWaypointMobility>(
        field, 0.8, static_cast<double>(rounds) + 1.0, rng);
    sim::ScenarioConfig cfg;
    cfg.rounds = rounds;
    cfg.start_time = 0.17 * static_cast<double>(user);
    const auto obs = sim::run_scenario(graph, {su}, cfg, rng);
    return stream::scenario_events(graph, obs, sniffers, user);
  }
};

/// One full manager run against the given worker count, then a snapshot of
/// the stable exports. reset_values() first so each run starts from zero.
struct StableSnapshot {
  std::string text;
  std::string json;
};

StableSnapshot run_and_snapshot(const Bed& bed, std::size_t workers,
                                const std::vector<stream::FluxEvent>& events) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.reset_values();
  stream::ManagerConfig mc;
  mc.workers = workers;
  stream::TrackerManager m(mc);
  constexpr std::uint32_t kSessions = 3;
  for (std::uint32_t u = 0; u < kSessions; ++u) {
    m.add_session(u, bed.tracker(1000 + u));
  }
  m.start();
  for (const stream::FluxEvent& e : events) {
    m.push(e);
  }
  m.finish();
  return {reg.export_text(false), reg.export_json(false)};
}

TEST(ObsDeterminism, StableExportsAreByteIdenticalAcrossRunsAndWorkers) {
  const bool was_enabled = enabled();
  set_enabled(true);
  const Bed bed;
  std::vector<std::vector<stream::FluxEvent>> streams;
  for (std::uint32_t u = 0; u < 3; ++u) {
    streams.push_back(bed.session_events(u, 5, 77 + u));
  }
  const std::vector<stream::FluxEvent> merged = stream::merge_by_time(
      std::span<const std::vector<stream::FluxEvent>>(streams));
  ASSERT_FALSE(merged.empty());

  // Identical replay, twice: stable exports must be byte-identical.
  const StableSnapshot first = run_and_snapshot(bed, 1, merged);
  const StableSnapshot again = run_and_snapshot(bed, 1, merged);
  EXPECT_EQ(first.text, again.text);
  EXPECT_EQ(first.json, again.json);

  // Worker count is a scheduling knob: it must not move a stable metric.
  const StableSnapshot four = run_and_snapshot(bed, 4, merged);
  EXPECT_EQ(first.text, four.text);
  EXPECT_EQ(first.json, four.json);

  // Sanity: the snapshot is not trivially empty — kBlock is lossless, so
  // the (stable) push counter must equal the replayed trace exactly.
  EXPECT_NE(first.text.find("fluxfp_stream_queue_pushed_total " +
                            std::to_string(merged.size())),
            std::string::npos);
  EXPECT_NE(first.text.find("fluxfp_stream_epochs_fired_total"),
            std::string::npos);
  set_enabled(was_enabled);
}

}  // namespace
}  // namespace fluxfp::obs
