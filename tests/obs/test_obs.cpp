#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/instrument.hpp"

namespace fluxfp::obs {
namespace {

/// Restores the process-wide enabled flag and span clock, so tests that
/// flip either cannot leak state into later tests in this binary.
class ObsStateGuard {
 public:
  ObsStateGuard() : was_enabled_(enabled()) {}
  ~ObsStateGuard() {
    set_enabled(was_enabled_);
    MetricsRegistry::global().set_clock(nullptr);
  }

 private:
  bool was_enabled_;
};

TEST(Obs, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.record_max(10.0);
  g.record_max(4.0);  // lower value must not win
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Obs, HistogramBucketBoundariesAreInclusiveUpperEdges) {
  const std::vector<std::uint64_t> bounds{10, 100};
  Histogram h{std::span<const std::uint64_t>(bounds)};
  // "le" semantics: v lands in the first bucket whose bound satisfies
  // v <= bound; above the last bound is the implicit +Inf bucket.
  h.observe(0);
  h.observe(10);  // edge value belongs to the le=10 bucket
  h.observe(11);
  h.observe(100);  // edge value belongs to the le=100 bucket
  h.observe(101);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);  // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 222u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bounds(), bounds);  // registration survives reset

  const std::vector<std::uint64_t> empty;
  EXPECT_THROW(Histogram{std::span<const std::uint64_t>(empty)},
               std::invalid_argument);
  const std::vector<std::uint64_t> flat{5, 5};
  EXPECT_THROW(Histogram{std::span<const std::uint64_t>(flat)},
               std::invalid_argument);
}

TEST(Obs, RegistryDedupesAndRejectsConflicts) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("test_obs_requests_total", "help");
  Counter& c2 = reg.counter("test_obs_requests_total", "other help");
  EXPECT_EQ(&c1, &c2);  // same name -> same object; first help wins
  c1.inc();
  EXPECT_EQ(c2.value(), 1u);

  // A name cannot change kind after registration.
  EXPECT_THROW(reg.gauge("test_obs_requests_total", ""),
               std::invalid_argument);
  const std::vector<std::uint64_t> b1{1, 2};
  EXPECT_THROW(
      reg.histogram("test_obs_requests_total", "",
                    std::span<const std::uint64_t>(b1)),
      std::invalid_argument);

  // Histogram boundaries are fixed at first registration.
  reg.histogram("test_obs_hist", "", std::span<const std::uint64_t>(b1));
  const std::vector<std::uint64_t> b2{1, 2, 3};
  EXPECT_THROW(reg.histogram("test_obs_hist", "",
                             std::span<const std::uint64_t>(b2)),
               std::invalid_argument);

  EXPECT_THROW(reg.counter("Bad-Name", ""), std::invalid_argument);
  EXPECT_THROW(reg.counter("", ""), std::invalid_argument);
  EXPECT_THROW(reg.counter("9starts_with_digit", ""), std::invalid_argument);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Obs, ExportTextIsNameSortedWithCumulativeBuckets) {
  MetricsRegistry reg;
  // Register out of name order on purpose: export must sort.
  reg.counter("test_obs_zz_total", "last by name").inc(7);
  const std::vector<std::uint64_t> bounds{10, 100};
  Histogram& h = reg.histogram("test_obs_mm_micros", "middle",
                               std::span<const std::uint64_t>(bounds));
  h.observe(10);
  h.observe(11);
  h.observe(500);
  reg.gauge("test_obs_aa_level", "first by name").set(1.5);

  const std::string text = reg.export_text();
  const std::size_t aa = text.find("test_obs_aa_level");
  const std::size_t mm = text.find("test_obs_mm_micros");
  const std::size_t zz = text.find("test_obs_zz_total");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(mm, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, mm);
  EXPECT_LT(mm, zz);

  EXPECT_NE(text.find("# HELP test_obs_aa_level first by name"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_obs_mm_micros histogram"),
            std::string::npos);
  // Cumulative counts in the text exposition: 1, then 1+1, then all 3.
  EXPECT_NE(text.find("test_obs_mm_micros_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_mm_micros_bucket{le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_mm_micros_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_mm_micros_sum 521"), std::string::npos);
  EXPECT_NE(text.find("test_obs_mm_micros_count 3"), std::string::npos);
  EXPECT_NE(text.find("test_obs_zz_total 7"), std::string::npos);
}

TEST(Obs, StableExportExcludesSchedulingMetrics) {
  MetricsRegistry reg;
  reg.counter("test_obs_stable_total", "content-driven").inc(3);
  reg.counter("test_obs_sched_total", "interleaving-driven",
              Determinism::kScheduling)
      .inc(5);

  const std::string full = reg.export_text(true);
  EXPECT_NE(full.find("test_obs_stable_total"), std::string::npos);
  EXPECT_NE(full.find("test_obs_sched_total"), std::string::npos);

  const std::string stable = reg.export_text(false);
  EXPECT_NE(stable.find("test_obs_stable_total"), std::string::npos);
  EXPECT_EQ(stable.find("test_obs_sched_total"), std::string::npos);

  const std::string stable_json = reg.export_json(false);
  EXPECT_NE(stable_json.find("test_obs_stable_total"), std::string::npos);
  EXPECT_EQ(stable_json.find("test_obs_sched_total"), std::string::npos);
}

TEST(Obs, ExportJsonCarriesValuesAndPerBucketCounts) {
  MetricsRegistry reg;
  reg.counter("test_obs_json_total", "").inc(9);
  reg.gauge("test_obs_json_level", "").set(2.5);
  const std::vector<std::uint64_t> bounds{10, 100};
  Histogram& h = reg.histogram("test_obs_json_micros", "",
                               std::span<const std::uint64_t>(bounds));
  h.observe(10);
  h.observe(11);
  h.observe(500);

  const std::string json = reg.export_json();
  EXPECT_NE(json.find("\"name\": \"test_obs_json_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"value\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"value\": 2.5"), std::string::npos);
  // Per-bucket (non-cumulative) counts in the JSON snapshot.
  EXPECT_NE(json.find("{\"le\": \"10\", \"count\": 1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": \"100\", \"count\": 1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": \"+Inf\", \"count\": 1}"),
            std::string::npos);
  EXPECT_NE(json.find("\"sum\": 521"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
}

TEST(Obs, ResetValuesZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test_obs_reset_total", "");
  Gauge& g = reg.gauge("test_obs_reset_level", "");
  const std::vector<std::uint64_t> bounds{10};
  Histogram& h = reg.histogram("test_obs_reset_micros", "",
                               std::span<const std::uint64_t>(bounds));
  c.inc(5);
  g.set(2.0);
  h.observe(3);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(reg.size(), 3u);
  // Same names still resolve to the same objects.
  EXPECT_EQ(&reg.counter("test_obs_reset_total", ""), &c);
}

TEST(Obs, SpanObservesManualClockDelta) {
  ObsStateGuard guard;
  set_enabled(true);
  MetricsRegistry& reg = MetricsRegistry::global();
  ManualClock clock;
  clock.set_micros(1000);
  reg.set_clock(&clock);

  Histogram& h = reg.latency_histogram("test_obs_span_micros", "");
  const std::uint64_t count0 = h.count();
  const std::uint64_t sum0 = h.sum();
  // 42us falls in the le=50 bucket: bounds 1,2,5,10,20,50 -> index 5.
  const std::uint64_t b50 = h.bucket_count(5);
  {
    ObsSpan span(h);
    clock.advance_micros(42);
  }
  EXPECT_EQ(h.count(), count0 + 1);
  EXPECT_EQ(h.sum(), sum0 + 42);
  EXPECT_EQ(h.bucket_count(5), b50 + 1);
}

TEST(Obs, DisabledSpanRecordsNothing) {
  ObsStateGuard guard;
  MetricsRegistry& reg = MetricsRegistry::global();
  ManualClock clock;
  reg.set_clock(&clock);
  Histogram& h = reg.latency_histogram("test_obs_disabled_micros", "");
  set_enabled(false);
  const std::uint64_t count0 = h.count();
  {
    ObsSpan span(h);
    clock.advance_micros(42);
  }
  EXPECT_EQ(h.count(), count0);  // span never touched the histogram
}

TEST(Obs, InstrumentMacroRespectsEnabledFlag) {
  ObsStateGuard guard;
  MetricsRegistry& reg = MetricsRegistry::global();
  set_enabled(true);
  FLUXFP_OBS_COUNTER_INC("test_obs_macro_total", "macro-registered");
  Counter& c = reg.counter("test_obs_macro_total", "");
  const std::uint64_t after_one = c.value();
  EXPECT_GE(after_one, 1u);
  set_enabled(false);
  FLUXFP_OBS_COUNTER_INC("test_obs_macro_total", "macro-registered");
  EXPECT_EQ(c.value(), after_one);  // disabled call sites mutate nothing
}

}  // namespace
}  // namespace fluxfp::obs
