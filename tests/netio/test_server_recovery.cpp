// Checkpoint/restore through the socket path: a supervised shard killed
// mid-connection must restore behind the live connections — no accepted
// event is lost, the connection never notices beyond latency, and the
// final estimates are bit-identical to a run that never crashed, at 1 and
// at 4 workers.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "netio/client.hpp"
#include "netio/server.hpp"
#include "test_bed.hpp"

namespace fluxfp::netio {
namespace {

using testing::Bed;
using testing::unix_endpoint;

struct SessionCut {
  std::uint64_t epochs_fired = 0;
  std::uint64_t events_folded = 0;
  std::vector<geom::Vec2> estimates;
};

/// Drives `events` through a freshly started server in thirds over one
/// connection, optionally killing the shard between thirds, and returns
/// the quiesced per-session cut plus the restart count.
std::vector<SessionCut> drive(const Bed& bed, std::size_t sessions,
                              std::size_t workers,
                              const std::vector<stream::FluxEvent>& events,
                              bool crash, const char* tag,
                              std::uint64_t* restarts_out) {
  stream::ManagerConfig mc;
  mc.workers = workers;
  stream::SupervisorConfig scfg;
  scfg.checkpoint_every_epochs = 2;  // keep the journal short
  // Restart is gated on virtual time (restart_at_ = crash time + backoff),
  // and virtual time only advances with offered event timestamps — so keep
  // the backoff tiny or the whole tail of the stream gets deferred.
  scfg.backoff_base = 0.01;
  ServerConfig cfg;
  cfg.endpoint = unix_endpoint(tag);
  Server server(bed.factory(sessions, 1, mc), scfg, cfg);
  server.start();

  Client client;
  EXPECT_TRUE(client.connect(server.endpoint(), 0)) << client.last_error();
  const std::size_t third = events.size() / 3;
  std::uint64_t accepted = 0;
  for (int part = 0; part < 3; ++part) {
    const std::size_t begin = part * third;
    const std::size_t end =
        part == 2 ? events.size() : (part + 1) * third;
    const std::span<const stream::FluxEvent> slice(events.data() + begin,
                                                   end - begin);
    BatchAckMsg ack;
    EXPECT_TRUE(client.send_batch(slice, ack)) << client.last_error();
    accepted += ack.accepted;
    if (crash && part < 2) {
      server.inject_crash();  // shard dies; the connection must survive
    }
  }
  EXPECT_EQ(accepted, events.size())
      << "kBlock + journaled deferral: nothing accepted may be lost";

  std::vector<SessionCut> cuts(sessions);
  for (std::uint32_t u = 0; u < sessions; ++u) {
    EstimateMsg est;
    EXPECT_TRUE(client.query_estimate(u, est)) << client.last_error();
    cuts[u].epochs_fired = est.epochs_fired;
    cuts[u].events_folded = est.events_folded;
    cuts[u].estimates = est.estimates;
  }
  MetricsMsg m;
  EXPECT_TRUE(client.metrics(m)) << client.last_error();
  if (restarts_out != nullptr) {
    *restarts_out = m.restarts;
  }
  EXPECT_EQ(m.events_processed, m.events_accepted);
  client.goodbye();
  server.stop();
  return cuts;
}

void expect_bit_identical(const std::vector<SessionCut>& a,
                          const std::vector<SessionCut>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t u = 0; u < a.size(); ++u) {
    EXPECT_EQ(a[u].epochs_fired, b[u].epochs_fired) << what << " user " << u;
    EXPECT_EQ(a[u].events_folded, b[u].events_folded)
        << what << " user " << u;
    ASSERT_EQ(a[u].estimates.size(), b[u].estimates.size());
    for (std::size_t s = 0; s < a[u].estimates.size(); ++s) {
      EXPECT_EQ(std::memcmp(&a[u].estimates[s].x, &b[u].estimates[s].x,
                            sizeof(double)),
                0)
          << what << " user " << u;
      EXPECT_EQ(std::memcmp(&a[u].estimates[s].y, &b[u].estimates[s].y,
                            sizeof(double)),
                0)
          << what << " user " << u;
    }
  }
}

TEST(ServerRecovery, CrashMidConnectionReconstructsBitIdentically) {
  Bed bed;
  const std::size_t kSessions = 2;
  const auto events = bed.merged_stream(kSessions, 4, 4200);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    std::uint64_t restarts_clean = 0;
    const auto clean = drive(bed, kSessions, workers, events, false,
                             workers == 1 ? "rc1" : "rc4", &restarts_clean);
    EXPECT_EQ(restarts_clean, 0u);

    std::uint64_t restarts_crashed = 0;
    const auto crashed =
        drive(bed, kSessions, workers, events, true,
              workers == 1 ? "rx1" : "rx4", &restarts_crashed);
    EXPECT_GE(restarts_crashed, 1u) << "injected crashes must restart";

    expect_bit_identical(clean, crashed,
                         workers == 1 ? "workers=1" : "workers=4");
  }
}

TEST(ServerRecovery, QueryWhileShardDownGetsUnavailableButIngestSurvives) {
  Bed bed;
  stream::ManagerConfig mc;
  mc.workers = 1;
  // Default backoff: the shard stays down until an offer arrives whose
  // timestamp is at least backoff_base (1.0) past the crash point, so the
  // window where queries see kUnavailable is deterministic.
  stream::SupervisorConfig scfg;
  ServerConfig cfg;
  cfg.endpoint = unix_endpoint("down");
  Server server(bed.factory(1, 1, mc), scfg, cfg);
  server.start();
  const auto events = bed.session_events(0, 3, 4300);

  Client ingest;
  ASSERT_TRUE(ingest.connect(server.endpoint(), 0)) << ingest.last_error();
  BatchAckMsg ack;
  ASSERT_TRUE(ingest.send_batch(events, ack)) << ingest.last_error();
  ASSERT_EQ(ack.accepted, events.size());

  server.inject_crash();

  // Queries cannot advance virtual time, so while the shard is down the
  // refusal must be the typed kUnavailable — and because ERROR frames are
  // terminal, it costs the prober its connection, never the server.
  Client query;
  ASSERT_TRUE(query.connect(server.endpoint(), 0)) << query.last_error();
  EstimateMsg est;
  ASSERT_FALSE(query.query_estimate(0, est));
  ASSERT_TRUE(query.server_error().has_value()) << query.last_error();
  EXPECT_EQ(query.server_error()->code, ErrorCode::kUnavailable);

  // Ingest on the surviving connection keeps being accepted (journaled
  // deferral) and, once the event clock moves past the backoff window,
  // heals the shard: restore + replay, then queries work again.
  std::vector<stream::FluxEvent> later = events;
  for (auto& e : later) {
    e.time += 2.0;  // > backoff_base, so the first offer triggers restart
  }
  BatchAckMsg ack2;
  ASSERT_TRUE(ingest.send_batch(later, ack2)) << ingest.last_error();
  EXPECT_EQ(ack2.accepted, later.size());
  EstimateMsg healed;
  ASSERT_TRUE(ingest.query_estimate(0, healed)) << ingest.last_error();
  EXPECT_GT(healed.events_folded, 0u);
  ingest.goodbye();
  server.stop();
}

}  // namespace
}  // namespace fluxfp::netio
