// FXN1 codec coverage: round-trips for every message payload (bit-exact
// doubles including NaN readings), frame-stream decoding over an in-memory
// ByteSource, and the hostile-input contract — truncated headers/payloads,
// bad magic, unknown types, oversized declared lengths, and inconsistent
// payload internals must all come back as typed WireErrors, never as a
// crash, a throw, or an over-allocation.

#include "netio/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "net/flux.hpp"

namespace fluxfp::netio {
namespace {

/// ByteSource over a string, delivering at most `chunk` bytes per read —
/// small chunks exercise the reader's partial-read loop the way a real
/// socket does.
class StringSource : public ByteSource {
 public:
  explicit StringSource(std::string data, std::size_t chunk = 3)
      : data_(std::move(data)), chunk_(chunk) {}

  long read_some(char* buf, std::size_t n) override {
    if (pos_ >= data_.size()) {
      return 0;
    }
    const std::size_t take = std::min({n, chunk_, data_.size() - pos_});
    std::memcpy(buf, data_.data() + pos_, take);
    pos_ += take;
    return static_cast<long>(take);
  }

 private:
  std::string data_;
  std::size_t chunk_;
  std::size_t pos_ = 0;
};

/// ByteSource that fails mid-stream (transport error, not clean close).
class FailingSource : public ByteSource {
 public:
  explicit FailingSource(std::string prefix) : prefix_(std::move(prefix)) {}

  long read_some(char* buf, std::size_t n) override {
    if (pos_ >= prefix_.size()) {
      return -1;
    }
    const std::size_t take = std::min(n, prefix_.size() - pos_);
    std::memcpy(buf, prefix_.data() + pos_, take);
    pos_ += take;
    return static_cast<long>(take);
  }

 private:
  std::string prefix_;
  std::size_t pos_ = 0;
};

std::vector<stream::FluxEvent> sample_events() {
  std::vector<stream::FluxEvent> events;
  for (std::uint32_t i = 0; i < 5; ++i) {
    stream::FluxEvent e;
    e.time = 0.25 * i;
    e.user = i % 2;
    e.epoch = i;
    e.node = 100 + i;
    e.reading = 1.5 * i;
    events.push_back(e);
  }
  events[3].reading = net::kMissingReading;  // NaN must survive the wire
  return events;
}

// ---------------------------------------------------------------------------
// Message payload round-trips
// ---------------------------------------------------------------------------

TEST(WireCodec, HelloRoundTrips) {
  HelloMsg in;
  in.version = 7;
  in.tenant = 42;
  in.token = 0xdeadbeefcafe1234ull;
  HelloMsg out;
  ASSERT_EQ(decode_hello(encode_hello(in), out), std::nullopt);
  EXPECT_EQ(out.version, in.version);
  EXPECT_EQ(out.tenant, in.tenant);
  EXPECT_EQ(out.token, in.token);
  EXPECT_EQ(out.model, 0);
}

TEST(WireCodec, HelloModelByteIsOptionalAndBackwardCompatible) {
  // A flux HELLO (model 0) must stay byte-identical to the pre-model-tag
  // 16-byte payload: old servers keep decoding new flux clients.
  HelloMsg flux;
  flux.tenant = 3;
  flux.token = 77;
  EXPECT_EQ(encode_hello(flux).size(), 16u);

  // A non-flux HELLO appends exactly one byte and round-trips.
  HelloMsg rss;
  rss.tenant = 3;
  rss.token = 77;
  rss.model = 1;
  const std::string payload = encode_hello(rss);
  EXPECT_EQ(payload.size(), 17u);
  HelloMsg out;
  ASSERT_EQ(decode_hello(payload, out), std::nullopt);
  EXPECT_EQ(out.tenant, rss.tenant);
  EXPECT_EQ(out.token, rss.token);
  EXPECT_EQ(out.model, 1);

  // A bare 16-byte payload decodes as model 0 even into a reused struct.
  out.model = 9;
  ASSERT_EQ(decode_hello(encode_hello(flux), out), std::nullopt);
  EXPECT_EQ(out.model, 0);
}

TEST(WireCodec, HelloRejectsUnknownModelByte) {
  HelloMsg in;
  in.model = 2;
  std::string payload = encode_hello(in);
  payload.back() = static_cast<char>(99);
  HelloMsg out;
  const auto err = decode_hello(payload, out);
  ASSERT_NE(err, std::nullopt);
  EXPECT_EQ(err->kind, WireError::Kind::kMalformedPayload);
}

TEST(WireCodec, WelcomeRoundTrips) {
  WelcomeMsg in;
  in.version = kWireVersion;
  in.sessions = 9;
  in.connection_id = 77;
  WelcomeMsg out;
  ASSERT_EQ(decode_welcome(encode_welcome(in), out), std::nullopt);
  EXPECT_EQ(out.sessions, 9u);
  EXPECT_EQ(out.connection_id, 77u);
}

TEST(WireCodec, EventBatchRoundTripsBitExactIncludingNaN) {
  const auto events = sample_events();
  std::vector<stream::FluxEvent> out;
  ASSERT_EQ(decode_event_batch(encode_event_batch(events), WireLimits{}, out),
            std::nullopt);
  ASSERT_EQ(out.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(out[i].user, events[i].user);
    EXPECT_EQ(out[i].epoch, events[i].epoch);
    EXPECT_EQ(out[i].node, events[i].node);
    // Bit-compare so the NaN payload counts too.
    EXPECT_EQ(std::memcmp(&out[i].time, &events[i].time, sizeof(double)), 0);
    EXPECT_EQ(
        std::memcmp(&out[i].reading, &events[i].reading, sizeof(double)), 0);
  }
  EXPECT_TRUE(std::isnan(out[3].reading));
}

TEST(WireCodec, BatchAckRoundTrips) {
  BatchAckMsg in;
  in.accepted = 10;
  in.shed = 2;
  in.unknown = 3;
  in.foreign = 4;
  in.closed = 5;
  BatchAckMsg out;
  ASSERT_EQ(decode_batch_ack(encode_batch_ack(in), out), std::nullopt);
  EXPECT_EQ(out.accepted, 10u);
  EXPECT_EQ(out.shed, 2u);
  EXPECT_EQ(out.unknown, 3u);
  EXPECT_EQ(out.foreign, 4u);
  EXPECT_EQ(out.closed, 5u);
}

TEST(WireCodec, EstimateRoundTrips) {
  EstimateMsg in;
  in.user = 3;
  in.epochs_fired = 21;
  in.events_folded = 999;
  in.time = 8.125;
  in.estimates = {{1.5, -2.25}, {0.0, 19.75}};
  EstimateMsg out;
  ASSERT_EQ(decode_estimate(encode_estimate(in), out), std::nullopt);
  EXPECT_EQ(out.user, 3u);
  EXPECT_EQ(out.epochs_fired, 21u);
  EXPECT_EQ(out.events_folded, 999u);
  EXPECT_EQ(out.time, 8.125);
  ASSERT_EQ(out.estimates.size(), 2u);
  EXPECT_EQ(out.estimates[0].x, 1.5);
  EXPECT_EQ(out.estimates[1].y, 19.75);
}

TEST(WireCodec, MetricsRoundTrips) {
  MetricsMsg in;
  in.events_accepted = 1;
  in.events_processed = 2;
  in.events_shed = 3;
  in.events_unknown = 4;
  in.events_foreign = 5;
  in.batches = 6;
  in.frames_in = 7;
  in.error_frames = 8;
  in.connections_opened = 9;
  in.connections_active = 10;
  in.checkpoints = 11;
  in.restarts = 12;
  in.sessions = 13;
  in.wall_seconds = 1.5;
  in.events_per_second = 2000.25;
  in.ingest_p50_us = 120.0;
  in.ingest_p99_us = 900.0;
  in.ingest_max_us = 1500.0;
  in.ingest_samples = 64;
  MetricsMsg out;
  ASSERT_EQ(decode_metrics(encode_metrics(in), out), std::nullopt);
  EXPECT_EQ(out.events_accepted, 1u);
  EXPECT_EQ(out.events_foreign, 5u);
  EXPECT_EQ(out.error_frames, 8u);
  EXPECT_EQ(out.restarts, 12u);
  EXPECT_EQ(out.wall_seconds, 1.5);
  EXPECT_EQ(out.ingest_p99_us, 900.0);
  EXPECT_EQ(out.ingest_samples, 64u);
}

TEST(WireCodec, ErrorRoundTrips) {
  ErrorMsg in;
  in.code = ErrorCode::kAuthFailed;
  in.offset = 1234;
  in.message = "unknown tenant or wrong token";
  ErrorMsg out;
  ASSERT_EQ(decode_error(encode_error(in), out), std::nullopt);
  EXPECT_EQ(out.code, ErrorCode::kAuthFailed);
  EXPECT_EQ(out.offset, 1234u);
  EXPECT_EQ(out.message, in.message);
}

// ---------------------------------------------------------------------------
// Hostile message payloads
// ---------------------------------------------------------------------------

TEST(WireCodecHostile, TruncatedPayloadsReportMalformed) {
  const std::string hello = encode_hello(HelloMsg{});
  for (std::size_t cut = 0; cut < hello.size(); ++cut) {
    HelloMsg out;
    const auto err = decode_hello(hello.substr(0, cut), out);
    ASSERT_TRUE(err.has_value()) << "cut=" << cut;
    EXPECT_EQ(err->kind, WireError::Kind::kMalformedPayload);
  }
}

TEST(WireCodecHostile, EventBatchCountFieldMustMatchBytes) {
  const auto events = sample_events();
  std::string payload = encode_event_batch(events);
  // Claim one more record than the payload carries.
  const std::uint32_t lied = static_cast<std::uint32_t>(events.size()) + 1;
  std::memcpy(payload.data(), &lied, sizeof(lied));
  std::vector<stream::FluxEvent> out;
  const auto err = decode_event_batch(payload, WireLimits{}, out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, WireError::Kind::kMalformedPayload);
  EXPECT_TRUE(out.empty());
}

TEST(WireCodecHostile, EventBatchCountOverLimitRejectedBeforeAllocating) {
  std::string payload = encode_event_batch(sample_events());
  const std::uint32_t huge = 0x7fffffff;  // would be ~56 GB of records
  std::memcpy(payload.data(), &huge, sizeof(huge));
  WireLimits limits;
  std::vector<stream::FluxEvent> out;
  const auto err = decode_event_batch(payload, limits, out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, WireError::Kind::kMalformedPayload);
  EXPECT_EQ(out.capacity(), 0u) << "decoder reserved off a hostile count";
}

TEST(WireCodecHostile, ErrorCodeOutOfRangeRejected) {
  ErrorMsg in;
  in.code = ErrorCode::kInternal;
  std::string payload = encode_error(in);
  const std::uint32_t bogus = 999;
  std::memcpy(payload.data(), &bogus, sizeof(bogus));
  ErrorMsg out;
  const auto err = decode_error(payload, out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, WireError::Kind::kMalformedPayload);
}

// ---------------------------------------------------------------------------
// Frame stream decoding
// ---------------------------------------------------------------------------

TEST(FrameReader, DecodesASequenceThenCleanEnd) {
  std::string wire;
  wire += encode_frame(FrameType::kHello, encode_hello(HelloMsg{}));
  wire += encode_frame(FrameType::kEventBatch,
                       encode_event_batch(sample_events()));
  wire += encode_frame(FrameType::kGoodbye, "");
  StringSource src(wire);
  FrameReader reader(src);
  Frame frame;
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kHello);
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kEventBatch);
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kGoodbye);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(reader.read(frame), FrameReader::Status::kEnd);
  EXPECT_EQ(reader.offset(), wire.size());
}

TEST(FrameReader, BadMagicIsTypedAndSticky) {
  std::string wire = encode_frame(FrameType::kHello, encode_hello(HelloMsg{}));
  wire[0] = 'Z';
  StringSource src(wire);
  FrameReader reader(src);
  Frame frame;
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kError);
  ASSERT_TRUE(reader.error().has_value());
  EXPECT_EQ(reader.error()->kind, WireError::Kind::kBadMagic);
  // Sticky: the stream is over, repeated reads do not "resynchronize".
  EXPECT_EQ(reader.read(frame), FrameReader::Status::kError);
  EXPECT_EQ(reader.error()->kind, WireError::Kind::kBadMagic);
}

TEST(FrameReader, UnknownFrameTypeRejected) {
  std::string wire = encode_frame(FrameType::kHello, "");
  const std::uint16_t bogus = 999;
  std::memcpy(wire.data() + 4, &bogus, sizeof(bogus));
  StringSource src(wire);
  FrameReader reader(src);
  Frame frame;
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kError);
  EXPECT_EQ(reader.error()->kind, WireError::Kind::kUnknownType);
}

TEST(FrameReader, OversizedDeclaredLengthRejectedBeforeAllocation) {
  std::string wire = encode_frame(FrameType::kEventBatch, "abc");
  const std::uint32_t huge = 0xffffffff;
  std::memcpy(wire.data() + 8, &huge, sizeof(huge));
  StringSource src(wire);
  FrameReader reader(src);
  Frame frame;
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kError);
  EXPECT_EQ(reader.error()->kind, WireError::Kind::kOversized);
}

TEST(FrameReader, TruncatedHeaderMidFrameIsTyped) {
  const std::string whole =
      encode_frame(FrameType::kHello, encode_hello(HelloMsg{}));
  StringSource src(whole.substr(0, kFrameHeaderBytes / 2));
  FrameReader reader(src);
  Frame frame;
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kError);
  EXPECT_EQ(reader.error()->kind, WireError::Kind::kTruncatedHeader);
}

TEST(FrameReader, TruncatedPayloadMidFrameIsTyped) {
  const std::string whole =
      encode_frame(FrameType::kHello, encode_hello(HelloMsg{}));
  StringSource src(whole.substr(0, whole.size() - 1));
  FrameReader reader(src);
  Frame frame;
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kError);
  EXPECT_EQ(reader.error()->kind, WireError::Kind::kTruncatedPayload);
  EXPECT_GT(reader.error()->offset, 0u);
}

TEST(FrameReader, TransportFailureIsBadStream) {
  FailingSource src(
      encode_frame(FrameType::kHello, encode_hello(HelloMsg{})).substr(0, 6));
  FrameReader reader(src);
  Frame frame;
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kError);
  EXPECT_EQ(reader.error()->kind, WireError::Kind::kBadStream);
}

TEST(FrameReader, EveryTruncationPointOfAFrameIsAnErrorNeverACrash) {
  const std::string whole = encode_frame(
      FrameType::kEventBatch, encode_event_batch(sample_events()));
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    StringSource src(whole.substr(0, cut), 5);
    FrameReader reader(src);
    Frame frame;
    if (cut == 0) {
      EXPECT_EQ(reader.read(frame), FrameReader::Status::kEnd);
    } else {
      EXPECT_EQ(reader.read(frame), FrameReader::Status::kError)
          << "cut=" << cut;
      EXPECT_TRUE(reader.error().has_value());
    }
  }
}

TEST(FrameReader, EncodeFrameRefusesPayloadBeyondU32) {
  // Can't build a >4GB string in a unit test; the guard is exercised via
  // the documented contract on the exact boundary arithmetic instead:
  // anything that fits in u32 encodes, and the header length matches.
  const std::string frame = encode_frame(FrameType::kGoodbye, "xyz");
  std::uint32_t len = 0;
  std::memcpy(&len, frame.data() + 8, sizeof(len));
  EXPECT_EQ(len, 3u);
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + 3);
}

TEST(WireError, ToStringCarriesOffsetAndReason) {
  WireError err;
  err.kind = WireError::Kind::kBadMagic;
  err.offset = 24;
  err.reason = "header does not start with FXN1";
  const std::string s = err.to_string();
  EXPECT_NE(s.find("24"), std::string::npos) << s;
  EXPECT_NE(s.find("FXN1"), std::string::npos) << s;
}

}  // namespace
}  // namespace fluxfp::netio
