// End-to-end loopback coverage of the FXN1 server through the blocking
// Client: handshake and auth, batch admission tallies, tenant isolation,
// quiesced queries that are bit-identical to an in-process supervised run
// at any worker count, snapshots, metrics, and shed-mode backpressure.

#include "netio/server.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "netio/client.hpp"
#include "test_bed.hpp"

namespace fluxfp::netio {
namespace {

using testing::Bed;
using testing::unix_endpoint;

ServerConfig server_config(const Endpoint& ep) {
  ServerConfig cfg;
  cfg.endpoint = ep;
  return cfg;
}

TEST(Server, HandshakeReportsTenantSessionCount) {
  Bed bed;
  stream::ManagerConfig mc;
  // 3 sessions over 2 tenants: tenant 0 owns users {0, 2}, tenant 1 {1}.
  Server server(bed.factory(3, 2, mc), {}, server_config(
                    unix_endpoint("hello")));
  server.start();

  Client c0;
  ASSERT_TRUE(c0.connect(server.endpoint(), 0)) << c0.last_error();
  EXPECT_EQ(c0.welcome().version, kWireVersion);
  EXPECT_EQ(c0.welcome().sessions, 2u);
  EXPECT_GT(c0.welcome().connection_id, 0u);
  EXPECT_TRUE(c0.goodbye());

  Client c1;
  ASSERT_TRUE(c1.connect(server.endpoint(), 1)) << c1.last_error();
  EXPECT_EQ(c1.welcome().sessions, 1u);
  c1.goodbye();
  server.stop();
}

TEST(Server, RejectsWrongTokenAndUnknownTenant) {
  Bed bed;
  stream::ManagerConfig mc;
  ServerConfig cfg = server_config(unix_endpoint("auth"));
  cfg.tenant_tokens = {{0, 111}, {1, 222}};
  Server server(bed.factory(2, 2, mc), {}, cfg);
  server.start();

  Client good;
  EXPECT_TRUE(good.connect(server.endpoint(), 0, 111)) << good.last_error();
  good.goodbye();

  Client wrong;
  EXPECT_FALSE(wrong.connect(server.endpoint(), 0, 999));
  ASSERT_TRUE(wrong.server_error().has_value()) << wrong.last_error();
  EXPECT_EQ(wrong.server_error()->code, ErrorCode::kAuthFailed);

  Client unknown;
  EXPECT_FALSE(unknown.connect(server.endpoint(), 7, 111));
  ASSERT_TRUE(unknown.server_error().has_value());
  // Deliberately the same code: the refusal must not reveal whether the
  // tenant exists.
  EXPECT_EQ(unknown.server_error()->code, ErrorCode::kAuthFailed);
  server.stop();
}

TEST(Server, FirstFrameMustBeHello) {
  Bed bed;
  stream::ManagerConfig mc;
  Server server(bed.factory(1, 1, mc), {},
                server_config(unix_endpoint("nothello")));
  server.start();

  std::string why;
  Socket raw = connect_to(server.endpoint(), &why);
  ASSERT_TRUE(raw.valid()) << why;
  ASSERT_TRUE(raw.write_all(encode_frame(FrameType::kQueryEstimate,
                                         encode_query(QueryMsg{}))));
  FrameReader reader(raw);
  Frame frame;
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kFrame);
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorMsg err;
  ASSERT_EQ(decode_error(frame.payload, err), std::nullopt);
  EXPECT_EQ(err.code, ErrorCode::kNotAuthenticated);
  // Typed reason, then close.
  EXPECT_EQ(reader.read(frame), FrameReader::Status::kEnd);
  server.stop();
}

TEST(Server, ObservationModelMismatchRefused) {
  Bed bed;
  stream::ManagerConfig mc;
  ServerConfig cfg = server_config(unix_endpoint("model"));
  cfg.model = 1;  // this service folds rss-link readings
  Server server(bed.factory(1, 1, mc), {}, cfg);
  server.start();

  // A client declaring the matching model is welcome.
  Client good;
  ASSERT_TRUE(good.connect(server.endpoint(), 0, 0, /*model=*/1))
      << good.last_error();
  EXPECT_TRUE(good.goodbye());

  // A legacy flux client (no model byte on the wire) is refused with the
  // typed code — before auth, like the version check.
  Client flux;
  ASSERT_FALSE(flux.connect(server.endpoint(), 0));
  ASSERT_TRUE(flux.server_error().has_value());
  EXPECT_EQ(flux.server_error()->code, ErrorCode::kModelMismatch);

  Client passive;
  ASSERT_FALSE(passive.connect(server.endpoint(), 0, 0, /*model=*/2));
  ASSERT_TRUE(passive.server_error().has_value());
  EXPECT_EQ(passive.server_error()->code, ErrorCode::kModelMismatch);
  server.stop();
}

TEST(Server, UnsupportedHelloVersionRefused) {
  Bed bed;
  stream::ManagerConfig mc;
  Server server(bed.factory(1, 1, mc), {},
                server_config(unix_endpoint("version")));
  server.start();

  std::string why;
  Socket raw = connect_to(server.endpoint(), &why);
  ASSERT_TRUE(raw.valid()) << why;
  HelloMsg hello;
  hello.version = 99;
  ASSERT_TRUE(
      raw.write_all(encode_frame(FrameType::kHello, encode_hello(hello))));
  FrameReader reader(raw);
  Frame frame;
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kFrame);
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorMsg err;
  ASSERT_EQ(decode_error(frame.payload, err), std::nullopt);
  EXPECT_EQ(err.code, ErrorCode::kUnsupportedVersion);
  server.stop();
}

TEST(Server, BatchTalliesAcceptedUnknownAndForeign) {
  Bed bed;
  stream::ManagerConfig mc;
  Server server(bed.factory(2, 2, mc), {},
                server_config(unix_endpoint("tally")));
  server.start();

  auto events = bed.session_events(0, 3, 500);  // tenant 0's user
  const std::size_t own = events.size();
  {
    auto foreign = bed.session_events(1, 3, 501);  // tenant 1's user
    events.insert(events.end(), foreign.begin(), foreign.end());
  }
  stream::FluxEvent ghost = events.front();
  ghost.user = 42;  // registered nowhere
  events.push_back(ghost);

  Client client;
  ASSERT_TRUE(client.connect(server.endpoint(), 0)) << client.last_error();
  BatchAckMsg ack;
  ASSERT_TRUE(client.send_batch(events, ack)) << client.last_error();
  EXPECT_EQ(ack.accepted, own);
  EXPECT_EQ(ack.foreign, events.size() - own - 1);
  EXPECT_EQ(ack.unknown, 1u);
  EXPECT_EQ(ack.shed, 0u);

  // Tenant isolation: the foreign events were never offered — tenant 1's
  // session still has nothing folded.
  Client other;
  ASSERT_TRUE(other.connect(server.endpoint(), 1)) << other.last_error();
  EstimateMsg est;
  ASSERT_TRUE(other.query_estimate(1, est)) << other.last_error();
  EXPECT_EQ(est.events_folded, 0u);
  EXPECT_EQ(est.epochs_fired, 0u);
  other.goodbye();
  client.goodbye();
  server.stop();
}

TEST(Server, ForeignQueryIsIndistinguishableFromUnknownUser) {
  Bed bed;
  stream::ManagerConfig mc;
  Server server(bed.factory(2, 2, mc), {},
                server_config(unix_endpoint("fquery")));
  server.start();

  Client client;
  ASSERT_TRUE(client.connect(server.endpoint(), 0)) << client.last_error();
  EstimateMsg est;
  ASSERT_FALSE(client.query_estimate(1, est));  // tenant 1's session
  ASSERT_TRUE(client.server_error().has_value()) << client.last_error();
  const ErrorCode foreign_code = client.server_error()->code;

  Client client2;
  ASSERT_TRUE(client2.connect(server.endpoint(), 0)) << client2.last_error();
  ASSERT_FALSE(client2.query_estimate(42, est));  // truly unknown
  ASSERT_TRUE(client2.server_error().has_value());
  EXPECT_EQ(foreign_code, client2.server_error()->code)
      << "foreign and unknown must be indistinguishable to the client";
  EXPECT_EQ(foreign_code, ErrorCode::kUnknownUser);
  server.stop();
}

/// The service contract inherited from the stream layer: under kBlock the
/// wire path folds exactly what an in-process supervised run folds, at any
/// worker count — estimates are compared bit-for-bit.
TEST(Server, QueriedEstimatesBitIdenticalToInProcessRunAtAnyWorkerCount) {
  Bed bed;
  const std::size_t kSessions = 2;
  const auto events = bed.merged_stream(kSessions, 4, 700);

  // Reference: supervised in-process run, one worker.
  std::vector<EstimateMsg> reference(kSessions);
  {
    stream::ManagerConfig mc;
    mc.workers = 1;
    stream::Supervisor sup(bed.factory(kSessions, 1, mc), {});
    sup.start();
    for (const auto& e : events) {
      sup.offer(e);
    }
    ASSERT_TRUE(sup.quiesce());
    for (std::uint32_t u = 0; u < kSessions; ++u) {
      const auto& tracker = sup.manager()->session(u);
      reference[u].epochs_fired = tracker.stats().epochs_fired;
      reference[u].events_folded = tracker.stats().events;
      reference[u].time = tracker.now();
      for (std::size_t s = 0; s < tracker.num_users(); ++s) {
        reference[u].estimates.push_back(tracker.estimate(s));
      }
    }
    sup.finish();
  }

  for (const std::size_t workers : {1u, 4u}) {
    stream::ManagerConfig mc;
    mc.workers = workers;
    Server server(bed.factory(kSessions, 1, mc), {},
                  server_config(unix_endpoint(
                      workers == 1 ? "bitid1" : "bitid4")));
    server.start();
    Client client;
    ASSERT_TRUE(client.connect(server.endpoint(), 0)) << client.last_error();
    BatchAckMsg ack;
    ASSERT_TRUE(client.send_batch(events, ack)) << client.last_error();
    ASSERT_EQ(ack.accepted, events.size());
    for (std::uint32_t u = 0; u < kSessions; ++u) {
      EstimateMsg est;
      ASSERT_TRUE(client.query_estimate(u, est)) << client.last_error();
      EXPECT_EQ(est.epochs_fired, reference[u].epochs_fired);
      EXPECT_EQ(est.events_folded, reference[u].events_folded);
      ASSERT_EQ(est.estimates.size(), reference[u].estimates.size());
      for (std::size_t s = 0; s < est.estimates.size(); ++s) {
        EXPECT_EQ(std::memcmp(&est.estimates[s].x,
                              &reference[u].estimates[s].x, sizeof(double)),
                  0)
            << "workers=" << workers << " user=" << u;
        EXPECT_EQ(std::memcmp(&est.estimates[s].y,
                              &reference[u].estimates[s].y, sizeof(double)),
                  0);
      }
    }
    client.goodbye();
    server.stop();
  }
}

TEST(Server, SnapshotReturnsCommittedCheckpointImage) {
  Bed bed;
  stream::ManagerConfig mc;
  Server server(bed.factory(1, 1, mc), {},
                server_config(unix_endpoint("snap")));
  server.start();
  Client client;
  ASSERT_TRUE(client.connect(server.endpoint(), 0)) << client.last_error();
  std::string image;
  ASSERT_TRUE(client.snapshot(image)) << client.last_error();
  ASSERT_GE(image.size(), 8u);
  EXPECT_EQ(image.substr(0, 8), "FLUXFPC1");
  client.goodbye();
  server.stop();
}

TEST(Server, MetricsCountEverything) {
  Bed bed;
  stream::ManagerConfig mc;
  Server server(bed.factory(2, 1, mc), {},
                server_config(unix_endpoint("metrics")));
  server.start();
  const auto events = bed.merged_stream(2, 3, 800);
  Client client;
  ASSERT_TRUE(client.connect(server.endpoint(), 0)) << client.last_error();
  BatchAckMsg ack;
  ASSERT_TRUE(client.send_batch(events, ack)) << client.last_error();
  MetricsMsg m;
  ASSERT_TRUE(client.metrics(m)) << client.last_error();
  EXPECT_EQ(m.events_accepted, events.size());
  EXPECT_EQ(m.events_processed, events.size()) << "metrics must quiesce";
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.error_frames, 0u);
  EXPECT_EQ(m.sessions, 2u);
  EXPECT_EQ(m.connections_opened, 1u);
  EXPECT_EQ(m.connections_active, 1u);
  EXPECT_GT(m.ingest_samples, 0u);
  EXPECT_GE(m.ingest_p99_us, m.ingest_p50_us);
  EXPECT_GE(m.ingest_max_us, m.ingest_p99_us);
  client.goodbye();
  server.stop();
}

TEST(Server, ShedNewestPolicyReportsShedOnAck) {
  Bed bed;
  stream::ManagerConfig mc;
  mc.workers = 1;
  mc.queue_capacity = 64;
  mc.tenant_quota = 1;
  mc.admission = stream::AdmissionPolicy::kShedNewest;
  // Every event completes an epoch and each fold takes tens of ms
  // (num_predictions cranked way up), so the one-slot quota stays pinned
  // across the whole burst: shedding is structural, not a scheduling race.
  auto factory = [&bed, mc] {
    auto m = std::make_unique<stream::TrackerManager>(mc);
    stream::StreamTrackerConfig cfg;
    cfg.smc.num_predictions = 50000;
    cfg.smc.num_keep = 4;
    cfg.expected_readings = 1;
    m->add_session(0,
                   stream::StreamTracker(bed.model, bed.graph, bed.sniffers,
                                         1, cfg, 7),
                   stream::SessionOptions{});
    return m;
  };
  Server server(factory, {}, server_config(unix_endpoint("shed")));
  server.start();
  std::vector<stream::FluxEvent> events;
  for (std::uint32_t e = 0; e < 80; ++e) {
    events.push_back({static_cast<double>(e), 0, e,
                      static_cast<std::uint32_t>(bed.sniffers[0]), 1.0});
  }
  Client client;
  ASSERT_TRUE(client.connect(server.endpoint(), 0)) << client.last_error();
  BatchAckMsg ack;
  ASSERT_TRUE(client.send_batch(events, ack)) << client.last_error();
  // Every record lands in exactly one bucket; with a tiny quota and a
  // one-shot burst, at least one must have been shed.
  EXPECT_EQ(ack.accepted + ack.shed + ack.unknown + ack.foreign + ack.closed,
            events.size());
  EXPECT_GT(ack.shed, 0u);
  MetricsMsg m;
  ASSERT_TRUE(client.metrics(m)) << client.last_error();
  EXPECT_EQ(m.events_shed, ack.shed);
  EXPECT_EQ(m.events_processed, ack.accepted) << "all accepted events fold";
  client.goodbye();
  server.stop();
}

TEST(Server, StopWhileConnectionsOpenIsClean) {
  Bed bed;
  stream::ManagerConfig mc;
  Server server(bed.factory(1, 1, mc), {},
                server_config(unix_endpoint("stop")));
  server.start();
  Client client;
  ASSERT_TRUE(client.connect(server.endpoint(), 0)) << client.last_error();
  server.stop();  // must shut the socket and join without the goodbye
  EXPECT_FALSE(server.running());
  // The client observes a clean close (or reset), not a hang.
  EstimateMsg est;
  EXPECT_FALSE(client.query_estimate(0, est));
}

}  // namespace
}  // namespace fluxfp::netio
