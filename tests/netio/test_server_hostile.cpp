// Hostile-input coverage at the socket level: truncated frames, oversized
// declared lengths, bad magic, mid-frame disconnects, malformed payloads
// inside well-formed frames, and seeded random-byte fuzzing. The contract
// under test: the server never crashes, answers decodable garbage with a
// typed ERROR frame then a close, treats undecodable garbage as a dead
// connection — and keeps serving well-formed clients afterwards.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "netio/client.hpp"
#include "netio/server.hpp"
#include "test_bed.hpp"

namespace fluxfp::netio {
namespace {

using testing::Bed;
using testing::unix_endpoint;

class HostileServer : public ::testing::Test {
 protected:
  void SetUp() override {
    stream::ManagerConfig mc;
    ServerConfig cfg;
    cfg.endpoint = unix_endpoint("hostile");
    server_ = std::make_unique<Server>(bed_.factory(1, 1, mc),
                                       stream::SupervisorConfig{}, cfg);
    server_->start();
  }

  void TearDown() override { server_->stop(); }

  Socket raw_connection() {
    std::string why;
    Socket s = connect_to(server_->endpoint(), &why);
    EXPECT_TRUE(s.valid()) << why;
    return s;
  }

  /// Reads frames until the peer closes; returns the last ERROR payload
  /// seen, if any.
  std::optional<ErrorMsg> drain_for_error(Socket& s) {
    FrameReader reader(s);
    Frame frame;
    std::optional<ErrorMsg> last;
    while (reader.read(frame) == FrameReader::Status::kFrame) {
      if (frame.type == FrameType::kError) {
        ErrorMsg err;
        if (decode_error(frame.payload, err) == std::nullopt) {
          last = err;
        }
      }
    }
    return last;
  }

  /// The recovery probe: after whatever abuse a test inflicted, a
  /// well-formed client must still get full service.
  void assert_still_serving() {
    Client client;
    ASSERT_TRUE(client.connect(server_->endpoint(), 0))
        << client.last_error();
    const auto events = bed_.session_events(0, 2, 300);
    BatchAckMsg ack;
    ASSERT_TRUE(client.send_batch(events, ack)) << client.last_error();
    EXPECT_EQ(ack.accepted, events.size());
    client.goodbye();
  }

  Bed bed_;
  std::unique_ptr<Server> server_;
};

TEST_F(HostileServer, GarbageBytesGetTypedErrorThenClose) {
  Socket s = raw_connection();
  ASSERT_TRUE(s.write_all("this is definitely not an FXN1 frame header"));
  const auto err = drain_for_error(s);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ErrorCode::kMalformedFrame);
  assert_still_serving();
}

TEST_F(HostileServer, OversizedDeclaredLengthRefusedWithoutAllocation) {
  // Valid magic and type, length field claiming 4 GB.
  std::string header = encode_frame(FrameType::kEventBatch, "");
  const std::uint32_t huge = 0xfffffff0;
  std::memcpy(header.data() + 8, &huge, sizeof(huge));
  Socket s = raw_connection();
  ASSERT_TRUE(s.write_all(header));
  const auto err = drain_for_error(s);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ErrorCode::kMalformedFrame);
  EXPECT_NE(err->message.find("oversized"), std::string::npos)
      << err->message;
  assert_still_serving();
}

TEST_F(HostileServer, MidHeaderDisconnectLeavesServerServing) {
  {
    Socket s = raw_connection();
    ASSERT_TRUE(s.write_all("FXN1"));  // 4 of 12 header bytes, then gone
  }
  assert_still_serving();
}

TEST_F(HostileServer, MidPayloadDisconnectLeavesServerServing) {
  const std::string whole =
      encode_frame(FrameType::kHello, encode_hello(HelloMsg{}));
  {
    Socket s = raw_connection();
    ASSERT_TRUE(s.write_all(whole.substr(0, whole.size() - 3)));
  }
  assert_still_serving();
}

TEST_F(HostileServer, MalformedPayloadInsideValidFrameIsTypedError) {
  // A perfectly framed HELLO whose payload is too short to decode.
  Socket s = raw_connection();
  ASSERT_TRUE(s.write_all(encode_frame(FrameType::kHello, "ab")));
  const auto err = drain_for_error(s);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ErrorCode::kMalformedFrame);
  assert_still_serving();
}

TEST_F(HostileServer, LyingBatchCountIsTypedError) {
  // Authenticate properly, then send an EVENT_BATCH whose count field
  // claims more records than the payload carries.
  Socket s = raw_connection();
  ASSERT_TRUE(
      s.write_all(encode_frame(FrameType::kHello, encode_hello(HelloMsg{}))));
  FrameReader reader(s);
  Frame frame;
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kFrame);
  ASSERT_EQ(frame.type, FrameType::kWelcome);

  std::string payload = encode_event_batch(bed_.session_events(0, 2, 310));
  const std::uint32_t lied = 60000;
  std::memcpy(payload.data(), &lied, sizeof(lied));
  ASSERT_TRUE(s.write_all(encode_frame(FrameType::kEventBatch, payload)));
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kFrame);
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorMsg err;
  ASSERT_EQ(decode_error(frame.payload, err), std::nullopt);
  EXPECT_EQ(err.code, ErrorCode::kMalformedFrame);
  assert_still_serving();
}

TEST_F(HostileServer, ServerToClientFrameTypesFromClientAreRejected) {
  Socket s = raw_connection();
  ASSERT_TRUE(
      s.write_all(encode_frame(FrameType::kHello, encode_hello(HelloMsg{}))));
  FrameReader reader(s);
  Frame frame;
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kFrame);
  ASSERT_EQ(frame.type, FrameType::kWelcome);
  ASSERT_TRUE(s.write_all(
      encode_frame(FrameType::kBatchAck, encode_batch_ack(BatchAckMsg{}))));
  ASSERT_EQ(reader.read(frame), FrameReader::Status::kFrame);
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorMsg err;
  ASSERT_EQ(decode_error(frame.payload, err), std::nullopt);
  EXPECT_EQ(err.code, ErrorCode::kMalformedFrame);
  assert_still_serving();
}

TEST_F(HostileServer, SeededFuzzConnectionsNeverKillTheServer) {
  geom::Rng rng(20260809);
  for (int round = 0; round < 40; ++round) {
    Socket s = raw_connection();
    ASSERT_TRUE(s.valid());
    // Random length 0..199 of random bytes; sometimes led by real magic so
    // the fuzz also explores the post-magic header states.
    std::string junk;
    const std::size_t n = static_cast<std::size_t>(rng() % 200);
    if (round % 3 == 0) {
      junk.append(kFrameMagic, sizeof(kFrameMagic));
    }
    for (std::size_t i = 0; i < n; ++i) {
      junk.push_back(static_cast<char>(rng() & 0xff));
    }
    if (!junk.empty()) {
      s.write_all(junk);  // peer may already have closed on us — fine
    }
    if (round % 2 == 0) {
      drain_for_error(s);  // half the time, read whatever came back
    }
  }
  assert_still_serving();
  // And the metrics path still works after the abuse.
  Client client;
  ASSERT_TRUE(client.connect(server_->endpoint(), 0)) << client.last_error();
  MetricsMsg m;
  ASSERT_TRUE(client.metrics(m)) << client.last_error();
  EXPECT_GT(m.connections_opened, 40u);
  client.goodbye();
}

}  // namespace
}  // namespace fluxfp::netio
