#pragma once

// Shared test bed of the netio server tests: one small seeded deployment,
// a Supervisor factory that registers sessions across tenants, and a
// merged multi-session event stream — the same construction idiom as the
// stream-layer tests, plus the tenant wiring the wire protocol needs.

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/deployment.hpp"
#include "netio/server.hpp"
#include "sim/scenario.hpp"
#include "stream/emit.hpp"
#include "stream/manager.hpp"
#include "stream/supervisor.hpp"

namespace fluxfp::netio::testing {

struct Bed {
  geom::RectField field{20.0, 20.0};
  net::UnitDiskGraph graph;
  core::FluxModel model;
  std::vector<std::size_t> sniffers;

  Bed() : graph(make_graph()), model(field, 1.0) {
    for (std::size_t i = 0; i < graph.size(); i += 7) {
      sniffers.push_back(i);
    }
  }

  static net::UnitDiskGraph make_graph() {
    geom::Rng rng(99);
    const geom::RectField f(20.0, 20.0);
    return net::UnitDiskGraph(net::perturbed_grid(f, 8, 8, 0.3, rng), 4.0);
  }

  stream::StreamTracker tracker(std::uint64_t seed) const {
    stream::StreamTrackerConfig cfg;
    cfg.smc.num_predictions = 30;
    cfg.smc.num_keep = 4;
    cfg.expected_readings = sniffers.size();
    return stream::StreamTracker(model, graph, sniffers, 1, cfg, seed);
  }

  /// Factory registering `sessions` users; user u belongs to tenant
  /// u % tenants with priority u — the same map stream_daemon serve uses.
  stream::Supervisor::ManagerFactory factory(std::size_t sessions,
                                             std::size_t tenants,
                                             stream::ManagerConfig mc) const {
    return [this, sessions, tenants, mc] {
      auto m = std::make_unique<stream::TrackerManager>(mc);
      for (std::uint32_t u = 0; u < sessions; ++u) {
        stream::SessionOptions opts;
        opts.tenant = static_cast<std::uint32_t>(u % tenants);
        opts.priority = u;
        m->add_session(u, tracker(1000 + u), opts);
      }
      return m;
    };
  }

  std::vector<stream::FluxEvent> session_events(std::uint32_t user,
                                                int rounds,
                                                std::uint64_t seed) const {
    geom::Rng rng(seed);
    sim::SimUser su;
    su.mobility = std::make_shared<sim::RandomWaypointMobility>(
        field, 0.8, static_cast<double>(rounds) + 1.0, rng);
    sim::ScenarioConfig cfg;
    cfg.rounds = rounds;
    cfg.start_time = 0.17 * static_cast<double>(user);
    const auto obs = sim::run_scenario(graph, {su}, cfg, rng);
    return stream::scenario_events(graph, obs, sniffers, user);
  }

  std::vector<stream::FluxEvent> merged_stream(std::size_t sessions,
                                               int rounds,
                                               std::uint64_t seed) const {
    std::vector<std::vector<stream::FluxEvent>> streams;
    for (std::uint32_t u = 0; u < sessions; ++u) {
      streams.push_back(session_events(u, rounds, seed + u));
    }
    return stream::merge_by_time(streams);
  }
};

/// A per-test Unix-socket endpoint under /tmp. gtest tests may run as
/// separate processes in parallel, so the path carries the pid; within one
/// process the tag keeps tests apart.
inline Endpoint unix_endpoint(const char* tag) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "unix:/tmp/fxn_%s_%d.sock", tag,
                static_cast<int>(::getpid()));
  std::string why;
  auto ep = Endpoint::parse(buf, &why);
  if (!ep) {
    throw std::runtime_error(why);
  }
  return *ep;
}

}  // namespace fluxfp::netio::testing
