#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

namespace fluxfp::eval {
namespace {

using geom::Vec2;

TEST(Metrics, SingleTargetDistance) {
  const std::vector<Vec2> est{{0, 0}};
  const std::vector<Vec2> truth{{3, 4}};
  EXPECT_DOUBLE_EQ(matched_mean_error(est, truth), 5.0);
  EXPECT_DOUBLE_EQ(matched_max_error(est, truth), 5.0);
}

TEST(Metrics, RejectsBadSizes) {
  const std::vector<Vec2> a{{0, 0}};
  const std::vector<Vec2> b{{1, 1}, {2, 2}};
  EXPECT_THROW(matched_mean_error(a, b), std::invalid_argument);
  EXPECT_THROW(matched_mean_error({}, {}), std::invalid_argument);
}

TEST(Metrics, IdentityFreeMatching) {
  // Estimates listed in swapped order must still score zero error.
  const std::vector<Vec2> est{{10, 10}, {0, 0}};
  const std::vector<Vec2> truth{{0, 0}, {10, 10}};
  EXPECT_DOUBLE_EQ(matched_mean_error(est, truth), 0.0);
}

TEST(Metrics, MatchingIsOptimal) {
  // Greedy nearest-first would pair est0->truth0 (cost 1) then est1->truth1
  // (cost 9); optimal crossing pairing costs 4+4.
  const std::vector<Vec2> est{{1, 0}, {11, 0}};
  const std::vector<Vec2> truth{{0, 0}, {20, 0}};
  const auto errors = matched_errors(est, truth);
  EXPECT_DOUBLE_EQ(errors[0] + errors[1], 10.0);
}

TEST(Metrics, MatchedErrorsAlignedWithEstimates) {
  const std::vector<Vec2> est{{0, 0}, {10, 0}};
  const std::vector<Vec2> truth{{10, 1}, {0, 1}};
  const auto errors = matched_errors(est, truth);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_DOUBLE_EQ(errors[0], 1.0);
  EXPECT_DOUBLE_EQ(errors[1], 1.0);
}

TEST(Metrics, MatchAssignmentIsPermutation) {
  const std::vector<Vec2> est{{1, 2}, {3, 4}, {5, 6}};
  const std::vector<Vec2> truth{{5, 6}, {1, 2}, {3, 4}};
  auto assign = match_estimates(est, truth);
  std::sort(assign.begin(), assign.end());
  EXPECT_EQ(assign, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Metrics, SummarizeBasics) {
  const std::vector<double> errors{1.0, 2.0, 3.0};
  const ErrorSummary s = summarize(errors);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
}

TEST(Metrics, SummarizeEmpty) {
  const ErrorSummary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Metrics, SummarizeLatencies) {
  std::vector<double> samples(100);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<double>(99 - i);  // 99..0, unsorted input
  }
  const LatencySummary s = summarize_latencies(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 49.5);
  EXPECT_NEAR(s.p50, 49.5, 1e-12);
  EXPECT_NEAR(s.p99, 98.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.max, 99.0);

  const LatencySummary empty = summarize_latencies(std::vector<double>{});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p99, 0.0);
}

TEST(Metrics, SummarizeLatenciesDropsNanSamples) {
  // A kMissingReading leaking into a latency feed is NaN; before the
  // filter it silently corrupted the percentile sort (the result depended
  // on where the NaNs sat). Only the finite subset {1,2,3,5} may count.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> samples{3.0, nan, 1.0, 2.0, nan, 5.0};
  const LatencySummary s = summarize_latencies(samples);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.75);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);
  EXPECT_DOUBLE_EQ(s.max, 5.0);

  const LatencySummary all_nan =
      summarize_latencies(std::vector<double>{nan, nan});
  EXPECT_EQ(all_nan.count, 0u);
  EXPECT_DOUBLE_EQ(all_nan.p50, 0.0);
  EXPECT_DOUBLE_EQ(all_nan.max, 0.0);
}

}  // namespace
}  // namespace fluxfp::eval
