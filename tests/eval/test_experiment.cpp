#include "eval/experiment.hpp"

#include <gtest/gtest.h>

#include "net/flux.hpp"
#include "net/routing.hpp"
#include "sim/measurement.hpp"
#include "sim/sniffer.hpp"

namespace fluxfp::eval {
namespace {

TEST(Experiment, BuildConnectedNetworkPaperSpec) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(1);
  const net::UnitDiskGraph g = build_connected_network({}, f, rng);
  EXPECT_EQ(g.size(), 900u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_NEAR(g.average_degree(), 15.0, 4.0);
}

TEST(Experiment, BuildConnectedNetworkThrowsWhenImpossible) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(2);
  NetworkSpec spec;
  spec.kind = net::DeploymentKind::kUniformRandom;
  spec.nodes = 30;
  spec.radius = 0.5;  // hopelessly sparse
  EXPECT_THROW(build_connected_network(spec, f, rng, 3), std::runtime_error);
}

TEST(Experiment, EstimateDminWithinRadius) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(3);
  const net::UnitDiskGraph g = build_connected_network({}, f, rng);
  const double d = estimate_d_min(g, f, rng);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, g.radius());
}

TEST(Experiment, MakeObjectiveGathersSampledNodes) {
  const geom::RectField f(30.0, 30.0);
  geom::Rng rng(4);
  NetworkSpec spec;
  spec.nodes = 225;
  spec.radius = 4.0;
  const net::UnitDiskGraph g = build_connected_network(spec, f, rng);
  const sim::FluxEngine engine(g);
  const std::vector<sim::Collection> cs{{0, {15, 15}, 2.0}};
  const net::FluxMap flux = engine.measure(cs, rng);
  const auto samples = sim::sample_nodes(g.size(), 40, rng);
  const core::FluxModel model(f, 1.0);
  const core::SparseObjective raw =
      make_objective(model, g, flux, samples, /*smooth=*/false);
  EXPECT_EQ(raw.sample_count(), 40u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(raw.sample_positions()[i], g.position(samples[i]));
    EXPECT_DOUBLE_EQ(raw.measured()[i], flux[samples[i]]);
  }
  // Default smoothing averages each reading over its 1-hop neighborhood.
  const core::SparseObjective smoothed = make_objective(model, g, flux, samples);
  const net::FluxMap expect = net::smooth_flux(g, flux);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(smoothed.measured()[i], expect[samples[i]]);
  }
}

TEST(Experiment, DeriveSeedDeterministic) {
  EXPECT_EQ(derive_seed(1, {2, 3}), derive_seed(1, {2, 3}));
}

TEST(Experiment, DeriveSeedSensitiveToSalts) {
  EXPECT_NE(derive_seed(1, {2, 3}), derive_seed(1, {3, 2}));
  EXPECT_NE(derive_seed(1, {2}), derive_seed(2, {2}));
  EXPECT_NE(derive_seed(1, {}), derive_seed(1, {0}));
}

}  // namespace
}  // namespace fluxfp::eval
