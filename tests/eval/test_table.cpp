#include "eval/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace fluxfp::eval {
namespace {

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsWrongCellCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, CountsRows) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "v"});
  t.add_row({"x", "1.00"});
  t.add_row({"longer", "2.50"});
  std::ostringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Every line has the same length (fixed-width columns).
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) {
      width = line.size();
    }
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, WriteCsvBasic) {
  Table t({"a", "b"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  std::ostringstream ss;
  t.write_csv(ss);
  EXPECT_EQ(ss.str(), "a,b\n1,x\n2,y\n");
}

TEST(Table, WriteCsvQuotesSpecialCells) {
  Table t({"name", "note"});
  t.add_row({"alpha,beta", "he said \"hi\""});
  std::ostringstream ss;
  t.write_csv(ss);
  EXPECT_EQ(ss.str(),
            "name,note\n\"alpha,beta\",\"he said \"\"hi\"\"\"\n");
}

TEST(Table, WriteCsvHeaderOnlyWhenEmpty) {
  Table t({"col"});
  std::ostringstream ss;
  t.write_csv(ss);
  EXPECT_EQ(ss.str(), "col\n");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(1.0, 0), "1");
  EXPECT_EQ(Table::fmt(-0.5, 1), "-0.5");
}

TEST(Table, FmtPinsNonFiniteTokens) {
  // One spelling per special value, regardless of sign bit or platform —
  // recorded CSVs must diff cleanly across machines.
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(Table::fmt(qnan), "nan");
  EXPECT_EQ(Table::fmt(-qnan), "nan");
  EXPECT_EQ(Table::fmt(std::copysign(qnan, -1.0), 5), "nan");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Table::fmt(inf), "inf");
  EXPECT_EQ(Table::fmt(-inf), "-inf");
  // And the tokens survive the CSV writer untouched.
  Table t({"a", "b"});
  t.add_row({Table::fmt(qnan), Table::fmt(-inf)});
  std::ostringstream ss;
  t.write_csv(ss);
  EXPECT_EQ(ss.str(), "a,b\nnan,-inf\n");
}

TEST(Table, BannerFormat) {
  std::ostringstream ss;
  print_banner(ss, "Figure 5");
  EXPECT_EQ(ss.str(), "\n== Figure 5 ==\n");
}

}  // namespace
}  // namespace fluxfp::eval
