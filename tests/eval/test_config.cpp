#include "eval/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fluxfp::eval {
namespace {

TEST(Config, ParseStreamBasics) {
  std::istringstream in(
      "nodes = 900\n"
      "radius=2.4\n"
      "  deployment =  grid  \n"
      "# full-line comment\n"
      "users = 3   # trailing comment\n"
      "\n");
  const Config cfg = Config::parse_stream(in);
  EXPECT_EQ(cfg.get_int("nodes", 0), 900);
  EXPECT_DOUBLE_EQ(cfg.get_double("radius", 0.0), 2.4);
  EXPECT_EQ(cfg.get_string("deployment"), "grid");
  EXPECT_EQ(cfg.get_int("users", 0), 3);
}

TEST(Config, LaterKeysOverride) {
  std::istringstream in("a = 1\na = 2\n");
  EXPECT_EQ(Config::parse_stream(in).get_int("a", 0), 2);
}

TEST(Config, ParseStreamRejectsMalformed) {
  std::istringstream missing_eq("novalue\n");
  EXPECT_THROW(Config::parse_stream(missing_eq), std::runtime_error);
  std::istringstream empty_key("= 3\n");
  EXPECT_THROW(Config::parse_stream(empty_key), std::runtime_error);
}

TEST(Config, TypedGettersFallbacksAndErrors) {
  std::istringstream in("x = abc\nn = 5\nf = 1.5\nb = yes\n");
  const Config cfg = Config::parse_stream(in);
  EXPECT_EQ(cfg.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 2.5), 2.5);
  EXPECT_TRUE(cfg.get_bool("missing", true));
  EXPECT_THROW(cfg.get_int("x", 0), std::runtime_error);
  EXPECT_THROW(cfg.get_double("x", 0.0), std::runtime_error);
  EXPECT_THROW(cfg.get_bool("x", false), std::runtime_error);
  EXPECT_EQ(cfg.get_int("n", 0), 5);
  EXPECT_DOUBLE_EQ(cfg.get_double("n", 0.0), 5.0);
  EXPECT_TRUE(cfg.get_bool("b", false));
}

TEST(Config, IntRejectsTrailingGarbage) {
  std::istringstream in("n = 5x\n");
  const Config cfg = Config::parse_stream(in);
  EXPECT_THROW(cfg.get_int("n", 0), std::runtime_error);
}

TEST(Config, BooleanSpellings) {
  std::istringstream in("a=1\nb=true\nc=ON\nd=0\ne=False\nf=off\n");
  const Config cfg = Config::parse_stream(in);
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
  EXPECT_FALSE(cfg.get_bool("e", true));
  EXPECT_FALSE(cfg.get_bool("f", true));
}

TEST(Config, ParseArgs) {
  // Note: a bare --flag greedily consumes a following non-option token as
  // its value, so boolean flags should use --flag=true or come last.
  const char* argv[] = {"prog",      "--nodes",  "900",
                        "--radius=2.4", "input.cfg", "--verbose"};
  const Config cfg = Config::parse_args(6, argv);
  EXPECT_EQ(cfg.get_int("nodes", 0), 900);
  EXPECT_DOUBLE_EQ(cfg.get_double("radius", 0.0), 2.4);
  EXPECT_TRUE(cfg.get_bool("verbose", false));
  ASSERT_EQ(cfg.positional().size(), 1u);
  EXPECT_EQ(cfg.positional()[0], "input.cfg");
}

TEST(Config, ParseArgsFlagAtEnd) {
  const char* argv[] = {"prog", "--quick"};
  const Config cfg = Config::parse_args(2, argv);
  EXPECT_TRUE(cfg.get_bool("quick", false));
}

TEST(Config, MergeOverrides) {
  std::istringstream base_in("a = 1\nb = 2\n");
  Config base = Config::parse_stream(base_in);
  std::istringstream over_in("b = 3\nc = 4\n");
  base.merge(Config::parse_stream(over_in));
  EXPECT_EQ(base.get_int("a", 0), 1);
  EXPECT_EQ(base.get_int("b", 0), 3);
  EXPECT_EQ(base.get_int("c", 0), 4);
}

TEST(Config, KeysSorted) {
  std::istringstream in("zeta = 1\nalpha = 2\nmid = 3\n");
  const Config cfg = Config::parse_stream(in);
  EXPECT_EQ(cfg.keys(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(Config, ParseFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fluxfp_config_test.cfg";
  {
    std::ofstream out(path);
    out << "nodes = 1200\nfraction = 0.1\n";
  }
  const Config cfg = Config::parse_file(path);
  EXPECT_EQ(cfg.get_int("nodes", 0), 1200);
  EXPECT_DOUBLE_EQ(cfg.get_double("fraction", 0.0), 0.1);
  std::remove(path.c_str());
}

TEST(Config, ParseFileMissingThrows) {
  EXPECT_THROW(Config::parse_file("/nonexistent/definitely_missing.cfg"),
               std::runtime_error);
}

TEST(Config, SetAndHas) {
  Config cfg;
  EXPECT_FALSE(cfg.has("k"));
  cfg.set("k", "v");
  EXPECT_TRUE(cfg.has("k"));
  EXPECT_EQ(cfg.get_string("k"), "v");
}

}  // namespace
}  // namespace fluxfp::eval
