#pragma once

#include <vector>

#include "geom/vec2.hpp"

namespace fluxfp::geom {

/// A piecewise-linear path through a sequence of waypoints, parameterized by
/// arc length. Used to describe ground-truth trajectories of mobile users
/// and the AP-derived mobility paths of the trace-driven experiment.
class Polyline {
 public:
  Polyline() = default;
  /// Builds a polyline over `points`. A single point yields a degenerate
  /// (zero-length) path that always evaluates to that point.
  explicit Polyline(std::vector<Vec2> points);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  const std::vector<Vec2>& points() const { return points_; }

  /// Total arc length.
  double length() const;

  /// Point at arc length `s` from the start; clamped to [0, length()].
  /// Throws std::logic_error on an empty polyline.
  Vec2 at_arclength(double s) const;

  /// Point at normalized parameter `t` in [0,1] (clamped), proportional to
  /// arc length.
  Vec2 at_fraction(double t) const;

  /// Distance from `p` to the nearest point on the polyline. Throws
  /// std::logic_error on an empty polyline.
  double distance_to(Vec2 p) const;

  /// Appends a waypoint.
  void push_back(Vec2 p);

 private:
  std::vector<Vec2> points_;
  std::vector<double> cum_;  // cumulative arc length, cum_[0] == 0
};

}  // namespace fluxfp::geom
