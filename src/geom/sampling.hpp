#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "geom/field.hpp"
#include "geom/vec2.hpp"

namespace fluxfp::geom {

/// The RNG engine used throughout the library. All stochastic components
/// take an engine (or a seed) explicitly so experiments are reproducible.
using Rng = std::mt19937_64;

/// Uniform point in the rectangle [0,w] x [0,h].
Vec2 uniform_in_field(const Field& field, Rng& rng);

/// Uniform point in the closed disc of radius `radius` around `center`
/// (area-uniform, via sqrt radius sampling).
Vec2 uniform_in_disc(Vec2 center, double radius, Rng& rng);

/// Uniform point in the disc around `center` intersected with `field`.
/// Rejection-samples; falls back to clamping after `max_tries` rejections
/// (only reachable when the intersection is a sliver).
Vec2 uniform_in_disc_clipped(Vec2 center, double radius,
                             const Field& field, Rng& rng,
                             int max_tries = 64);

/// Uniform point on the circle of radius `radius` around `center`.
Vec2 uniform_on_circle(Vec2 center, double radius, Rng& rng);

/// `count` i.i.d. uniform points in the field.
std::vector<Vec2> uniform_points(const Field& field, std::size_t count,
                                 Rng& rng);

}  // namespace fluxfp::geom
