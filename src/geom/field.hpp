#pragma once

#include <stdexcept>

#include "geom/vec2.hpp"

namespace fluxfp::geom {

/// A bounded deployment region. The flux model's geometric input is the
/// distance `l` from a sink to the field boundary along a ray (Eq. 3.2/3.4
/// of the paper); everything else the algorithms need from the region is
/// collected here.
///
/// The paper points out (§4.A) that the *shape* of the boundary decides
/// whether the NLS objective is differentiable: a rectangle makes l(·)
/// piecewise and the objective non-smooth (classical Gauss–Newton /
/// Levenberg–Marquardt inapplicable), while a smooth boundary like a
/// circle keeps it differentiable. Both implementations are provided:
/// RectField (the paper's evaluation setting) and CircleField (the smooth
/// comparator used by the LM-based localizer).
class Field {
 public:
  virtual ~Field() = default;

  /// True if `p` lies inside the field (boundary inclusive, within eps).
  virtual bool contains(Vec2 p, double eps = 0.0) const = 0;

  /// Closest point inside the field.
  virtual Vec2 clamp(Vec2 p) const = 0;

  /// Distance from `origin` (inside the field) to the boundary along
  /// direction `dir` (need not be normalized). Throws std::invalid_argument
  /// on a zero direction or an origin outside the field.
  virtual double boundary_distance(Vec2 origin, Vec2 dir) const = 0;

  /// Distance from `p` to the nearest boundary point (the infimum of
  /// boundary_distance over directions).
  virtual double nearest_boundary_distance(Vec2 p) const = 0;

  /// Largest distance between two field points.
  virtual double diameter() const = 0;
  virtual double area() const = 0;
  /// A reference interior point (centroid).
  virtual Vec2 center() const = 0;

  /// Area-uniform map from the unit square onto the field: feeding two
  /// i.i.d. U(0,1) variates yields a uniform field point. Lets the sampling
  /// helpers stay ignorant of the concrete shape.
  virtual Vec2 from_unit_square(double u, double v) const = 0;

  /// Convenience: boundary distance from `origin` along the ray through
  /// `through`; for the degenerate origin == through ray, falls back to
  /// the nearest-boundary distance.
  double boundary_distance_through(Vec2 origin, Vec2 through) const {
    const Vec2 d = through - origin;
    if (d.norm2() > 0.0) {
      return boundary_distance(origin, d);
    }
    return nearest_boundary_distance(clamp(origin));
  }
};

/// An axis-aligned rectangular field [0,width] x [0,height] — the paper's
/// evaluation setting (30 x 30 in §5). Its boundary-distance function is
/// piecewise linear in the direction, making the NLS objective
/// non-differentiable.
class RectField final : public Field {
 public:
  /// Constructs a `width` x `height` field. Throws std::invalid_argument on
  /// non-positive dimensions.
  RectField(double width, double height);

  double width() const { return width_; }
  double height() const { return height_; }

  bool contains(Vec2 p, double eps = 0.0) const override;
  Vec2 clamp(Vec2 p) const override;
  double boundary_distance(Vec2 origin, Vec2 dir) const override;
  double nearest_boundary_distance(Vec2 p) const override;
  double diameter() const override;
  double area() const override { return width_ * height_; }
  Vec2 center() const override { return {width_ / 2.0, height_ / 2.0}; }
  Vec2 from_unit_square(double u, double v) const override {
    return {u * width_, v * height_};
  }

 private:
  double width_;
  double height_;
};

/// A circular field of radius `radius` around `center` — the smooth
/// boundary for which the NLS objective is differentiable and classical
/// Levenberg–Marquardt fitting applies (§4.A's contrast case).
class CircleField final : public Field {
 public:
  /// Throws std::invalid_argument for radius <= 0.
  CircleField(Vec2 center, double radius);

  double radius() const { return radius_; }

  bool contains(Vec2 p, double eps = 0.0) const override;
  Vec2 clamp(Vec2 p) const override;
  double boundary_distance(Vec2 origin, Vec2 dir) const override;
  double nearest_boundary_distance(Vec2 p) const override;
  double diameter() const override { return 2.0 * radius_; }
  double area() const override;
  Vec2 center() const override { return center_; }
  Vec2 from_unit_square(double u, double v) const override;

 private:
  Vec2 center_;
  double radius_;
};

}  // namespace fluxfp::geom
