#include "geom/polyline.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace fluxfp::geom {

Polyline::Polyline(std::vector<Vec2> points) : points_(std::move(points)) {
  cum_.reserve(points_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) {
      total += distance(points_[i - 1], points_[i]);
    }
    cum_.push_back(total);
  }
}

double Polyline::length() const { return cum_.empty() ? 0.0 : cum_.back(); }

Vec2 Polyline::at_arclength(double s) const {
  if (points_.empty()) {
    throw std::logic_error("Polyline::at_arclength on empty polyline");
  }
  if (points_.size() == 1 || s <= 0.0) {
    return points_.front();
  }
  if (s >= length()) {
    return points_.back();
  }
  // First segment end with cumulative length >= s.
  const auto it = std::lower_bound(cum_.begin(), cum_.end(), s);
  const std::size_t i = static_cast<std::size_t>(it - cum_.begin());
  const double seg_len = cum_[i] - cum_[i - 1];
  if (seg_len == 0.0) {
    return points_[i];
  }
  const double t = (s - cum_[i - 1]) / seg_len;
  return lerp(points_[i - 1], points_[i], t);
}

Vec2 Polyline::at_fraction(double t) const {
  return at_arclength(std::clamp(t, 0.0, 1.0) * length());
}

double Polyline::distance_to(Vec2 p) const {
  if (points_.empty()) {
    throw std::logic_error("Polyline::distance_to on empty polyline");
  }
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    const Vec2 a = points_[i];
    const Vec2 b = points_[i + 1];
    const Vec2 ab = b - a;
    const double len2 = ab.norm2();
    double t = len2 > 0.0 ? dot(p - a, ab) / len2 : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    best = std::min(best, distance(p, a + ab * t));
  }
  if (points_.size() == 1) {
    best = distance(p, points_.front());
  }
  return best;
}

void Polyline::push_back(Vec2 p) {
  double total = cum_.empty() ? 0.0 : cum_.back();
  if (!points_.empty()) {
    total += distance(points_.back(), p);
  }
  points_.push_back(p);
  cum_.push_back(total);
}

}  // namespace fluxfp::geom
