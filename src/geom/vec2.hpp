#pragma once

#include <cmath>
#include <iosfwd>

namespace fluxfp::geom {

/// A 2-D point/vector with double coordinates. Value type, trivially
/// copyable; all arithmetic is component-wise.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2& operator+=(Vec2 rhs) {
    x += rhs.x;
    y += rhs.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 rhs) {
    x -= rhs.x;
    y -= rhs.y;
    return *this;
  }
  constexpr Vec2& operator*=(double k) {
    x *= k;
    y *= k;
    return *this;
  }
  constexpr Vec2& operator/=(double k) {
    x /= k;
    y /= k;
    return *this;
  }

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return a += b; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return a -= b; }
  friend constexpr Vec2 operator*(Vec2 a, double k) { return a *= k; }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return a *= k; }
  friend constexpr Vec2 operator/(Vec2 a, double k) { return a /= k; }
  friend constexpr Vec2 operator-(Vec2 a) { return {-a.x, -a.y}; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) {
    return a.x == b.x && a.y == b.y;
  }

  /// Dot product.
  friend constexpr double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }
  /// z-component of the 3-D cross product (signed parallelogram area).
  friend constexpr double cross(Vec2 a, Vec2 b) {
    return a.x * b.y - a.y * b.x;
  }

  /// Squared Euclidean norm.
  constexpr double norm2() const { return x * x + y * y; }
  /// Euclidean norm. Plain sqrt, not std::hypot: coordinates in this
  /// library are field-scale (no overflow risk) and this sits in the
  /// innermost model-evaluation loops.
  double norm() const { return std::sqrt(x * x + y * y); }

  /// Unit vector in the same direction; returns (0,0) for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

/// Euclidean distance between two points.
inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Squared Euclidean distance between two points.
constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// Linear interpolation: `a` at t=0, `b` at t=1.
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace fluxfp::geom
