#include "geom/sampling.hpp"

#include <cmath>
#include <numbers>

namespace fluxfp::geom {

Vec2 uniform_in_field(const Field& field, Rng& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double u = unit(rng);
  const double v = unit(rng);
  return field.from_unit_square(u, v);
}

Vec2 uniform_in_disc(Vec2 center, double radius, Rng& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double r = radius * std::sqrt(unit(rng));
  const double theta = 2.0 * std::numbers::pi * unit(rng);
  return center + Vec2{r * std::cos(theta), r * std::sin(theta)};
}

Vec2 uniform_in_disc_clipped(Vec2 center, double radius,
                             const Field& field, Rng& rng, int max_tries) {
  for (int i = 0; i < max_tries; ++i) {
    const Vec2 p = uniform_in_disc(center, radius, rng);
    if (field.contains(p)) {
      return p;
    }
  }
  return field.clamp(uniform_in_disc(center, radius, rng));
}

Vec2 uniform_on_circle(Vec2 center, double radius, Rng& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double theta = 2.0 * std::numbers::pi * unit(rng);
  return center + Vec2{radius * std::cos(theta), radius * std::sin(theta)};
}

std::vector<Vec2> uniform_points(const Field& field, std::size_t count,
                                 Rng& rng) {
  std::vector<Vec2> pts;
  pts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pts.push_back(uniform_in_field(field, rng));
  }
  return pts;
}

}  // namespace fluxfp::geom
