#include "geom/field.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <ostream>

namespace fluxfp::geom {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

RectField::RectField(double width, double height)
    : width_(width), height_(height) {
  if (!(width > 0.0) || !(height > 0.0)) {
    throw std::invalid_argument("RectField: dimensions must be positive");
  }
}

double RectField::diameter() const { return std::hypot(width_, height_); }

bool RectField::contains(Vec2 p, double eps) const {
  return p.x >= -eps && p.x <= width_ + eps && p.y >= -eps &&
         p.y <= height_ + eps;
}

Vec2 RectField::clamp(Vec2 p) const {
  return {std::clamp(p.x, 0.0, width_), std::clamp(p.y, 0.0, height_)};
}

double RectField::boundary_distance(Vec2 origin, Vec2 dir) const {
  if (!contains(origin, 1e-9)) {
    throw std::invalid_argument(
        "RectField::boundary_distance: origin outside field");
  }
  const double n = dir.norm();
  if (n == 0.0) {
    throw std::invalid_argument(
        "RectField::boundary_distance: zero direction");
  }
  const Vec2 u = dir / n;
  // Ray/slab exit parameter: smallest positive t where origin + t*u leaves
  // [0,width] x [0,height].
  double t_exit = std::numeric_limits<double>::infinity();
  if (u.x > 0.0) {
    t_exit = std::min(t_exit, (width_ - origin.x) / u.x);
  } else if (u.x < 0.0) {
    t_exit = std::min(t_exit, -origin.x / u.x);
  }
  if (u.y > 0.0) {
    t_exit = std::min(t_exit, (height_ - origin.y) / u.y);
  } else if (u.y < 0.0) {
    t_exit = std::min(t_exit, -origin.y / u.y);
  }
  return std::max(t_exit, 0.0);
}

double RectField::nearest_boundary_distance(Vec2 p) const {
  const Vec2 q = clamp(p);
  return std::min(std::min(q.x, width_ - q.x), std::min(q.y, height_ - q.y));
}

CircleField::CircleField(Vec2 center, double radius)
    : center_(center), radius_(radius) {
  if (!(radius > 0.0)) {
    throw std::invalid_argument("CircleField: radius must be positive");
  }
}

bool CircleField::contains(Vec2 p, double eps) const {
  return distance(p, center_) <= radius_ + eps;
}

Vec2 CircleField::clamp(Vec2 p) const {
  const Vec2 d = p - center_;
  const double n = d.norm();
  return n <= radius_ ? p : center_ + d * (radius_ / n);
}

double CircleField::boundary_distance(Vec2 origin, Vec2 dir) const {
  if (!contains(origin, 1e-9)) {
    throw std::invalid_argument(
        "CircleField::boundary_distance: origin outside field");
  }
  const double n = dir.norm();
  if (n == 0.0) {
    throw std::invalid_argument(
        "CircleField::boundary_distance: zero direction");
  }
  const Vec2 u = dir / n;
  // Exit parameter of |origin + t u - center|^2 = R^2: the positive root
  // t = -b + sqrt(b^2 - c) with b = u . (origin - center),
  // c = |origin - center|^2 - R^2 (<= 0 inside the field).
  const Vec2 oc = origin - center_;
  const double b = dot(u, oc);
  const double c = oc.norm2() - radius_ * radius_;
  const double disc = std::max(b * b - c, 0.0);
  return std::max(-b + std::sqrt(disc), 0.0);
}

double CircleField::nearest_boundary_distance(Vec2 p) const {
  return std::max(radius_ - distance(clamp(p), center_), 0.0);
}

double CircleField::area() const {
  return std::numbers::pi * radius_ * radius_;
}

Vec2 CircleField::from_unit_square(double u, double v) const {
  const double r = radius_ * std::sqrt(u);
  const double theta = 2.0 * std::numbers::pi * v;
  return center_ + Vec2{r * std::cos(theta), r * std::sin(theta)};
}

}  // namespace fluxfp::geom
