#include "core/smc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/instrument.hpp"

namespace fluxfp::core {

SmcTracker::SmcTracker(const geom::Field& field, std::size_t num_users,
                       SmcConfig config, geom::Rng& rng)
    : field_(&field), config_(config) {
  if (num_users == 0 || num_users > kMaxGramUsers) {
    throw std::invalid_argument("SmcTracker: bad user count");
  }
  if (config_.num_predictions == 0) {
    throw std::invalid_argument(
        "SmcTracker: num_predictions (N) must be > 0 — an empty prediction "
        "set leaves every filtering sweep with nothing to rank");
  }
  if (config_.num_keep == 0) {
    throw std::invalid_argument(
        "SmcTracker: num_keep (M) must be > 0 — the tracker needs at least "
        "one surviving sample per user");
  }
  if (config_.num_keep > config_.num_predictions) {
    throw std::invalid_argument(
        "SmcTracker: num_keep (M) must not exceed num_predictions (N) — "
        "filtering cannot keep more samples than were predicted");
  }
  if (config_.sweeps <= 0 || !(config_.vmax > 0.0)) {
    throw std::invalid_argument("SmcTracker: bad config");
  }
  if (config_.heading_mix < 0.0 || config_.heading_mix > 1.0 ||
      config_.heading_half_angle <= 0.0) {
    throw std::invalid_argument("SmcTracker: bad heading config");
  }
  if (config_.divergence_recovery &&
      (config_.divergence_fraction <= 0.0 ||
       config_.divergence_fraction > 1.0 || config_.divergence_rounds <= 0 ||
       config_.recovery_grid == 0)) {
    throw std::invalid_argument("SmcTracker: bad divergence config");
  }
  particles_.resize(num_users);
  t_last_.assign(num_users, 0.0);
  prev_estimate_.assign(num_users, geom::Vec2{});
  heading_.assign(num_users, geom::Vec2{});
  rep_cols_.resize(num_users);
  cand_cols_.resize(num_users);
  const double w0 = 1.0 / static_cast<double>(config_.num_keep);
  for (ParticleSet& set : particles_) {
    set.x.reserve(config_.num_keep);
    set.y.reserve(config_.num_keep);
    set.w.reserve(config_.num_keep);
    for (std::size_t i = 0; i < config_.num_keep; ++i) {
      const geom::Vec2 p = geom::uniform_in_field(*field_, rng);
      set.x.push_back(p.x);
      set.y.push_back(p.y);
      set.w.push_back(w0);
    }
  }
}

std::vector<Particle> SmcTracker::particles(std::size_t user) const {
  const ParticleSet& set = particles_.at(user);
  std::vector<Particle> out(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    out[i] = {{set.x[i], set.y[i]}, set.w[i]};
  }
  return out;
}

SmcState SmcTracker::save_state() const {
  SmcState state;
  state.users.resize(particles_.size());
  for (std::size_t u = 0; u < particles_.size(); ++u) {
    SmcUserState& us = state.users[u];
    us.particles = particles(u);
    us.t_last = t_last_[u];
    us.prev_estimate = prev_estimate_[u];
    us.heading = heading_[u];
  }
  state.bad_rounds = bad_rounds_;
  return state;
}

void SmcTracker::restore_state(const SmcState& state) {
  if (state.users.size() != particles_.size()) {
    throw std::invalid_argument(
        "SmcTracker: snapshot user count does not match this tracker");
  }
  for (const SmcUserState& us : state.users) {
    if (us.particles.empty() ||
        us.particles.size() > config_.num_predictions) {
      throw std::invalid_argument(
          "SmcTracker: snapshot particle set empty or larger than "
          "num_predictions");
    }
  }
  for (std::size_t u = 0; u < particles_.size(); ++u) {
    const SmcUserState& us = state.users[u];
    ParticleSet& set = particles_[u];
    const std::size_t m = us.particles.size();
    set.x.resize(m);
    set.y.resize(m);
    set.w.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      set.x[i] = us.particles[i].position.x;
      set.y[i] = us.particles[i].position.y;
      set.w[i] = us.particles[i].weight;
    }
    t_last_[u] = us.t_last;
    prev_estimate_[u] = us.prev_estimate;
    heading_[u] = us.heading;
  }
  bad_rounds_ = state.bad_rounds;
}

geom::Vec2 SmcTracker::estimate(std::size_t user) const {
  const ParticleSet& set = particles_.at(user);
  geom::Vec2 acc;
  double wsum = 0.0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    acc += geom::Vec2{set.x[i], set.y[i]} * set.w[i];
    wsum += set.w[i];
  }
  return wsum > 0.0 ? acc / wsum : geom::Vec2{set.x.front(), set.y.front()};
}

std::array<double, 4> SmcTracker::covariance(std::size_t user) const {
  const ParticleSet& set = particles_.at(user);
  const geom::Vec2 mean = estimate(user);
  double xx = 0.0, xy = 0.0, yy = 0.0, wsum = 0.0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    const geom::Vec2 d = geom::Vec2{set.x[i], set.y[i]} - mean;
    xx += set.w[i] * d.x * d.x;
    xy += set.w[i] * d.x * d.y;
    yy += set.w[i] * d.y * d.y;
    wsum += set.w[i];
  }
  if (wsum <= 0.0) {
    return {0.0, 0.0, 0.0, 0.0};
  }
  return {xx / wsum, xy / wsum, xy / wsum, yy / wsum};
}

double SmcTracker::spread(std::size_t user) const {
  const std::array<double, 4> c = covariance(user);
  return std::sqrt(std::max(c[0] + c[3], 0.0));
}

void SmcTracker::predict(std::size_t user, double radius, geom::Rng& rng,
                         std::span<double> weights_scratch,
                         std::span<Prediction> out) const {
  const ParticleSet& set = particles_[user];
  for (std::size_t i = 0; i < set.size(); ++i) {
    weights_scratch[i] = config_.importance_sampling ? set.w[i] : 1.0;
  }
  std::discrete_distribution<std::size_t> origin_dist(weights_scratch.begin(),
                                                      weights_scratch.end());
  const geom::Vec2 h = heading_[user];
  const bool use_cone =
      config_.heading_aware && h.norm2() > 0.0 && config_.heading_mix > 0.0;
  const double base_angle = std::atan2(h.y, h.x);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::size_t o = origin_dist(rng);
    const geom::Vec2 origin{set.x[o], set.y[o]};
    geom::Vec2 p;
    if (use_cone && unit(rng) < config_.heading_mix) {
      // Area-uniform sample in the cone of half-angle around the heading.
      const double r = radius * std::sqrt(unit(rng));
      const double a =
          base_angle + (2.0 * unit(rng) - 1.0) * config_.heading_half_angle;
      p = field_->clamp(origin + geom::Vec2{r * std::cos(a), r * std::sin(a)});
    } else {
      p = geom::uniform_in_disc_clipped(origin, radius, *field_, rng);
    }
    out[i] = {p, o};
  }
}

SmcStepResult SmcTracker::step(double time,
                               const SparseObjective& objective,
                               geom::Rng& rng) {
  return step(time, objective, rng, arena_);
}

SmcStepResult SmcTracker::step(double time,
                               const SparseObjective& raw_objective,
                               geom::Rng& rng, numeric::Arena& arena) {
  arena.reset();
  const std::size_t k = num_users();
  SmcStepResult result;
  result.updated.assign(k, false);
  result.stretches.assign(k, 0.0);
  result.best.resize(k);

  FLUXFP_OBS_COUNTER_INC("fluxfp_core_smc_steps_total",
                         "SMC filtering rounds executed");

  // Empty window (including all readings missing): nothing to fit, nobody
  // moves, and divergence counting is suspended — no evidence either way.
  if (raw_objective.measured_norm() < config_.empty_measurement_tol) {
    for (std::size_t j = 0; j < k; ++j) {
      result.best[j] = estimate(j);
    }
    result.residual = raw_objective.measured_norm();
    FLUXFP_OBS_COUNTER_INC("fluxfp_core_smc_empty_windows_total",
                           "Steps skipped on an all-missing window");
    return result;
  }

  // --- Optional robust reweighting against the current estimates ---
  // Byzantine readings get large residuals at the incumbent fit; one IRLS
  // pass removes most of their pull before the filtering sweeps see them.
  const SparseObjective* obj_ptr = &raw_objective;
  if (config_.robust.loss != RobustLoss::kNone &&
      raw_objective.sample_count() > 0) {
    const std::span<geom::Vec2> current = arena.alloc<geom::Vec2>(k);
    for (std::size_t j = 0; j < k; ++j) {
      current[j] = estimate(j);
    }
    const StretchFit incumbent = raw_objective.fit(current);
    raw_objective.residuals_at(current, incumbent.stretches, robust_r_);
    robust_weights(robust_r_, config_.robust, robust_w_);
    if (!robust_storage_) {
      robust_storage_.emplace(raw_objective.reweighted(robust_w_));
    } else {
      raw_objective.reweighted_into(robust_w_, *robust_storage_);
    }
    obj_ptr = &*robust_storage_;
  }
  const SparseObjective& objective = *obj_ptr;

  // --- Prediction (Eq. 4.2) ---
  const std::size_t n_pred = config_.num_predictions;
  const std::span<Prediction> predictions_flat =
      arena.alloc<Prediction>(k * n_pred);
  const auto predictions = [&](std::size_t j) {
    return predictions_flat.subspan(j * n_pred, n_pred);
  };
  for (std::size_t j = 0; j < k; ++j) {
    const double dt = std::max(time - t_last_[j], 0.0);
    const double radius =
        std::clamp(config_.vmax * dt, 1e-6, field_->diameter());
    const std::span<double> weights_scratch =
        arena.alloc<double>(particles_[j].size());
    predict(j, radius, rng, weights_scratch, predictions(j));
  }

  // --- Filtering: conditional sweeps over users ---
  const std::span<geom::Vec2> reps = arena.alloc<geom::Vec2>(k);
  for (std::size_t j = 0; j < k; ++j) {
    reps[j] = estimate(j);
    objective.shape_column(reps[j], rep_cols_[j]);
  }

  // Per-user scores of the *last* sweep; index into predictions(j).
  //
  // Scaling note: the conditional NNLS is pruned to the joint fit's
  // *support* — the users whose fitted s/r is currently non-zero. With
  // asynchronous schedules (20 tracked users, 2-4 active per window, §5.C)
  // this turns each candidate evaluation from a K-dimensional NNLS into a
  // (active+1)-dimensional one; columns outside the support are zero in
  // the full fit anyway, so the pruned fit is exact at the current point.
  const std::span<double> last_residuals_flat =
      arena.alloc<double>(k * n_pred);
  const auto last_residuals = [&](std::size_t j) {
    return last_residuals_flat.subspan(j * n_pred, n_pred);
  };
  // Candidate shape columns are fixed for the round; build them once per
  // user into a contiguous ColumnBlock. The batch build and the per-sweep
  // scoring below fan out over the thread pool, while every RNG draw
  // (prediction sampling above, resampling below) stays on this thread —
  // so step() output is bit-identical at any thread count.
  {
    const std::span<geom::Vec2> cand_pos = arena.alloc<geom::Vec2>(n_pred);
    for (std::size_t j = 0; j < k; ++j) {
      for (std::size_t c = 0; c < n_pred; ++c) {
        cand_pos[c] = predictions(j)[c].position;
      }
      objective.shape_columns(cand_pos, cand_cols_[j]);
    }
  }
  for (int sweep = 0; sweep < config_.sweeps; ++sweep) {
    // Support of the joint fit at the current representatives. Columns
    // whose stretch is a sliver of the largest are noise-absorbers (stale
    // reps soaking up model misfit), not users — drop them too.
    const StretchFit sweep_fit = objective.fit(reps);
    double max_stretch = 0.0;
    for (double s : sweep_fit.stretches) {
      max_stretch = std::max(max_stretch, s);
    }
    std::array<std::size_t, kMaxGramUsers> support;
    std::size_t support_count = 0;
    for (std::size_t o = 0; o < k; ++o) {
      if (sweep_fit.stretches[o] > 0.02 * max_stretch) {
        support[support_count++] = o;
      }
    }
    for (std::size_t j = 0; j < k; ++j) {
      std::array<std::span<const double>, kMaxGramUsers> fixed;
      std::size_t nf = 0;
      for (std::size_t s = 0; s < support_count; ++s) {
        if (support[s] != j) {
          fixed[nf++] = rep_cols_[support[s]];
        }
      }
      // Candidate column sits in the last slot of the pruned fit.
      const ConditionalFit cond(
          objective, std::span<const std::span<const double>>(fixed.data(), nf),
          nf);
      const std::span<double> residuals = last_residuals(j);
      cond.evaluate_batch(cand_cols_[j], residuals);
      // Serial argmin in index order: ties break to the lowest candidate
      // index exactly as the serial loop did.
      double best_res = std::numeric_limits<double>::infinity();
      std::size_t best_idx = 0;
      for (std::size_t c = 0; c < residuals.size(); ++c) {
        if (residuals[c] < best_res) {
          best_res = residuals[c];
          best_idx = c;
        }
      }
      reps[j] = predictions(j)[best_idx].position;
      const std::span<const double> best_col = cand_cols_[j].column(best_idx);
      rep_cols_[j].assign(best_col.begin(), best_col.end());
    }
  }

  // --- Joint stretch fit at the best combination (asynchronism test) ---
  StretchFit joint = objective.fit(reps);
  result.stretches = joint.stretches;
  result.residual = joint.residual;
  result.best.assign(reps.begin(), reps.end());

  // --- Asynchronous updating + importance sampling (Eq. 4.3) ---
  for (std::size_t j = 0; j < k; ++j) {
    // Leave-one-out activity test: how much worse does the fit get without
    // user j's column? Users outside the joint fit's support contribute
    // nothing (dropping their zero-stretch column leaves the residual
    // unchanged), so only support members need the refit.
    double improvement = 0.0;
    if (joint.stretches[j] > 0.0) {
      std::array<std::span<const double>, kMaxGramUsers> without;
      std::size_t nw = 0;
      for (std::size_t o = 0; o < k; ++o) {
        if (o != j && joint.stretches[o] > 0.0) {
          without[nw++] = rep_cols_[o];
        }
      }
      const double residual_without =
          objective
              .fit_columns(
                  std::span<const std::span<const double>>(without.data(), nw))
              .residual;
      improvement =
          (residual_without - joint.residual) / objective.measured_norm();
    }
    const bool active = improvement > config_.inactive_improvement_tol;
    if (!active) {
      continue;  // s/r -> 0: leave samples and t_last untouched (§4.E)
    }

    // Rank this user's predictions by the last sweep's residuals, keep M.
    const std::span<std::size_t> order = arena.alloc<std::size_t>(n_pred);
    std::iota(order.begin(), order.end(), std::size_t{0});
    const std::size_t keep = std::min(config_.num_keep, order.size());
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        return last_residuals(j)[a] < last_residuals(j)[b];
                      });

    const double eps = 1e-9 * (1.0 + objective.measured_norm());
    // Build the surviving set in arena scratch first: the importance
    // weights read the *current* particle weights via pred.origin, so the
    // SoA arrays cannot be overwritten in place.
    const std::span<Prediction> kept = arena.alloc<Prediction>(keep);
    const std::span<double> next_w = arena.alloc<double>(keep);
    double wsum = 0.0;
    for (std::size_t t = 0; t < keep; ++t) {
      const Prediction& pred = predictions(j)[order[t]];
      double w = 1.0;
      if (config_.importance_sampling) {
        const double w_origin = particles_[j].w[pred.origin];
        w = w_origin / (last_residuals(j)[order[t]] + eps);
      }
      kept[t] = pred;
      next_w[t] = w;
      wsum += w;
    }
    if (wsum <= 0.0) {
      // Degenerate weights (all origins at weight 0): fall back to uniform.
      for (double& w : next_w) {
        w = 1.0 / static_cast<double>(keep);
      }
    } else {
      for (double& w : next_w) {
        w /= wsum;
      }
    }
    ParticleSet& set = particles_[j];
    set.x.resize(keep);
    set.y.resize(keep);
    set.w.resize(keep);
    for (std::size_t t = 0; t < keep; ++t) {
      set.x[t] = kept[t].position.x;
      set.y[t] = kept[t].position.y;
      set.w[t] = next_w[t];
    }
#if defined(FLUXFP_OBS_ENABLED)
    // Effective sample size 1/sum(w^2) of the refreshed weights: a
    // degeneracy monitor (ESS -> 1 means one particle carries all mass).
    // Pure function of the weights, so it stays in the stable export.
    if (obs::enabled()) {
      double sum_sq = 0.0;
      for (double w : set.w) {
        sum_sq += w * w;
      }
      if (sum_sq > 0.0) {
        const double ess = 1.0 / sum_sq;
        FLUXFP_OBS_COUNT_OBSERVE("fluxfp_core_smc_ess",
                                 "Effective sample size after each update",
                                 std::llround(ess));
        FLUXFP_OBS_GAUGE_MAX("fluxfp_core_smc_ess_max",
                             "Largest effective sample size seen", ess);
      }
    }
#endif
    const bool had_prior_update = t_last_[j] > 0.0;
    t_last_[j] = time;
    result.updated[j] = true;
    if (config_.heading_aware) {
      const geom::Vec2 now = estimate(j);
      if (had_prior_update) {
        heading_[j] = (now - prev_estimate_[j]).normalized();
      }
      prev_estimate_[j] = now;
    }
  }

  // --- Divergence detection + recovery ---
  // A round is "bad" when the best combination still leaves most of the
  // measured norm unexplained, or when nobody accepted an update despite a
  // non-empty window. After divergence_rounds consecutive bad rounds the
  // track is lost: re-acquire from a coarse grid scan instead of letting
  // the per-round motion bound trap the filter on a dead track.
  if (config_.divergence_recovery) {
    bool any_updated = false;
    for (std::size_t j = 0; j < k; ++j) {
      any_updated = any_updated || result.updated[j];
    }
    const bool bad = result.residual > config_.divergence_fraction *
                                           objective.measured_norm() ||
                     !any_updated;
    bad_rounds_ = bad ? bad_rounds_ + 1 : 0;
    if (bad) {
      FLUXFP_OBS_COUNTER_INC("fluxfp_core_smc_bad_rounds_total",
                             "Rounds flagged by divergence detection");
    }
    if (bad_rounds_ >= config_.divergence_rounds) {
      FLUXFP_OBS_COUNTER_INC("fluxfp_core_smc_recoveries_total",
                             "Grid-scan re-acquisitions of a lost track");
      reseed_from_grid(time, objective, reps, arena);
      const StretchFit refit = objective.fit(reps);
      result.stretches = refit.stretches;
      result.residual = refit.residual;
      result.best.assign(reps.begin(), reps.end());
      result.updated.assign(k, true);
      result.recovered = true;
      bad_rounds_ = 0;
    }
  }
  return result;
}

void SmcTracker::reseed_from_grid(double time,
                                  const SparseObjective& objective,
                                  std::span<geom::Vec2> reps,
                                  numeric::Arena& arena) {
  const std::size_t g = config_.recovery_grid;
  const std::span<geom::Vec2> grid = arena.alloc<geom::Vec2>(g * g);
  for (std::size_t iy = 0; iy < g; ++iy) {
    for (std::size_t ix = 0; ix < g; ++ix) {
      grid[iy * g + ix] = field_->from_unit_square(
          (static_cast<double>(ix) + 0.5) / static_cast<double>(g),
          (static_cast<double>(iy) + 0.5) / static_cast<double>(g));
    }
  }
  ColumnBlock grid_cols;
  objective.shape_columns(grid, grid_cols);
  const std::size_t k = num_users();
  const std::span<double> scores = arena.alloc<double>(grid.size());
  const std::span<std::size_t> order = arena.alloc<std::size_t>(grid.size());
  for (std::size_t j = 0; j < k; ++j) {
    std::array<std::span<const double>, kMaxGramUsers> fixed;
    std::size_t nf = 0;
    for (std::size_t o = 0; o < k; ++o) {
      if (o != j) {
        fixed[nf++] = rep_cols_[o];
      }
    }
    const ConditionalFit cond(
        objective, std::span<const std::span<const double>>(fixed.data(), nf),
        nf);
    cond.evaluate_batch(grid_cols, scores);
    std::iota(order.begin(), order.end(), std::size_t{0});
    const std::size_t keep = std::min(config_.num_keep, order.size());
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        return scores[a] < scores[b];
                      });
    ParticleSet& set = particles_[j];
    set.x.resize(keep);
    set.y.resize(keep);
    set.w.resize(keep);
    for (std::size_t t = 0; t < keep; ++t) {
      set.x[t] = grid[order[t]].x;
      set.y[t] = grid[order[t]].y;
      set.w[t] = 1.0 / static_cast<double>(keep);
    }
    reps[j] = grid[order[0]];
    const std::span<const double> best_col = grid_cols.column(order[0]);
    rep_cols_[j].assign(best_col.begin(), best_col.end());
    t_last_[j] = time;
    heading_[j] = geom::Vec2{};
    prev_estimate_[j] = estimate(j);
  }
}

}  // namespace fluxfp::core
