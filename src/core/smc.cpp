#include "core/smc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "obs/instrument.hpp"

namespace fluxfp::core {

SmcTracker::SmcTracker(const geom::Field& field, std::size_t num_users,
                       SmcConfig config, geom::Rng& rng)
    : field_(&field), config_(config) {
  if (num_users == 0 || num_users > kMaxGramUsers) {
    throw std::invalid_argument("SmcTracker: bad user count");
  }
  if (config_.num_predictions == 0) {
    throw std::invalid_argument(
        "SmcTracker: num_predictions (N) must be > 0 — an empty prediction "
        "set leaves every filtering sweep with nothing to rank");
  }
  if (config_.num_keep == 0) {
    throw std::invalid_argument(
        "SmcTracker: num_keep (M) must be > 0 — the tracker needs at least "
        "one surviving sample per user");
  }
  if (config_.num_keep > config_.num_predictions) {
    throw std::invalid_argument(
        "SmcTracker: num_keep (M) must not exceed num_predictions (N) — "
        "filtering cannot keep more samples than were predicted");
  }
  if (config_.sweeps <= 0 || !(config_.vmax > 0.0)) {
    throw std::invalid_argument("SmcTracker: bad config");
  }
  if (config_.heading_mix < 0.0 || config_.heading_mix > 1.0 ||
      config_.heading_half_angle <= 0.0) {
    throw std::invalid_argument("SmcTracker: bad heading config");
  }
  if (config_.divergence_recovery &&
      (config_.divergence_fraction <= 0.0 ||
       config_.divergence_fraction > 1.0 || config_.divergence_rounds <= 0 ||
       config_.recovery_grid == 0)) {
    throw std::invalid_argument("SmcTracker: bad divergence config");
  }
  particles_.resize(num_users);
  t_last_.assign(num_users, 0.0);
  prev_estimate_.assign(num_users, geom::Vec2{});
  heading_.assign(num_users, geom::Vec2{});
  const double w0 = 1.0 / static_cast<double>(config_.num_keep);
  for (auto& set : particles_) {
    set.reserve(config_.num_keep);
    for (std::size_t i = 0; i < config_.num_keep; ++i) {
      set.push_back({geom::uniform_in_field(*field_, rng), w0});
    }
  }
}

SmcState SmcTracker::save_state() const {
  SmcState state;
  state.users.resize(particles_.size());
  for (std::size_t u = 0; u < particles_.size(); ++u) {
    SmcUserState& us = state.users[u];
    us.particles = particles_[u];
    us.t_last = t_last_[u];
    us.prev_estimate = prev_estimate_[u];
    us.heading = heading_[u];
  }
  state.bad_rounds = bad_rounds_;
  return state;
}

void SmcTracker::restore_state(const SmcState& state) {
  if (state.users.size() != particles_.size()) {
    throw std::invalid_argument(
        "SmcTracker: snapshot user count does not match this tracker");
  }
  for (const SmcUserState& us : state.users) {
    if (us.particles.empty() ||
        us.particles.size() > config_.num_predictions) {
      throw std::invalid_argument(
          "SmcTracker: snapshot particle set empty or larger than "
          "num_predictions");
    }
  }
  for (std::size_t u = 0; u < particles_.size(); ++u) {
    const SmcUserState& us = state.users[u];
    particles_[u] = us.particles;
    t_last_[u] = us.t_last;
    prev_estimate_[u] = us.prev_estimate;
    heading_[u] = us.heading;
  }
  bad_rounds_ = state.bad_rounds;
}

geom::Vec2 SmcTracker::estimate(std::size_t user) const {
  const auto& set = particles_.at(user);
  geom::Vec2 acc;
  double wsum = 0.0;
  for (const Particle& p : set) {
    acc += p.position * p.weight;
    wsum += p.weight;
  }
  return wsum > 0.0 ? acc / wsum : set.front().position;
}

std::array<double, 4> SmcTracker::covariance(std::size_t user) const {
  const auto& set = particles_.at(user);
  const geom::Vec2 mean = estimate(user);
  double xx = 0.0, xy = 0.0, yy = 0.0, wsum = 0.0;
  for (const Particle& p : set) {
    const geom::Vec2 d = p.position - mean;
    xx += p.weight * d.x * d.x;
    xy += p.weight * d.x * d.y;
    yy += p.weight * d.y * d.y;
    wsum += p.weight;
  }
  if (wsum <= 0.0) {
    return {0.0, 0.0, 0.0, 0.0};
  }
  return {xx / wsum, xy / wsum, xy / wsum, yy / wsum};
}

double SmcTracker::spread(std::size_t user) const {
  const std::array<double, 4> c = covariance(user);
  return std::sqrt(std::max(c[0] + c[3], 0.0));
}

std::vector<SmcTracker::Prediction> SmcTracker::predict(std::size_t user,
                                                        double radius,
                                                        geom::Rng& rng) const {
  const auto& set = particles_[user];
  std::vector<double> weights(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    weights[i] = config_.importance_sampling ? set[i].weight : 1.0;
  }
  std::discrete_distribution<std::size_t> origin_dist(weights.begin(),
                                                      weights.end());
  const geom::Vec2 h = heading_[user];
  const bool use_cone =
      config_.heading_aware && h.norm2() > 0.0 && config_.heading_mix > 0.0;
  const double base_angle = std::atan2(h.y, h.x);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  std::vector<Prediction> out;
  out.reserve(config_.num_predictions);
  for (std::size_t i = 0; i < config_.num_predictions; ++i) {
    const std::size_t o = origin_dist(rng);
    geom::Vec2 p;
    if (use_cone && unit(rng) < config_.heading_mix) {
      // Area-uniform sample in the cone of half-angle around the heading.
      const double r = radius * std::sqrt(unit(rng));
      const double a =
          base_angle + (2.0 * unit(rng) - 1.0) * config_.heading_half_angle;
      p = field_->clamp(set[o].position +
                        geom::Vec2{r * std::cos(a), r * std::sin(a)});
    } else {
      p = geom::uniform_in_disc_clipped(set[o].position, radius, *field_,
                                        rng);
    }
    out.push_back({p, o});
  }
  return out;
}

SmcStepResult SmcTracker::step(double time, const SparseObjective& raw_objective,
                               geom::Rng& rng) {
  const std::size_t k = num_users();
  SmcStepResult result;
  result.updated.assign(k, false);
  result.stretches.assign(k, 0.0);
  result.best.resize(k);

  FLUXFP_OBS_COUNTER_INC("fluxfp_core_smc_steps_total",
                         "SMC filtering rounds executed");

  // Empty window (including all readings missing): nothing to fit, nobody
  // moves, and divergence counting is suspended — no evidence either way.
  if (raw_objective.measured_norm() < config_.empty_measurement_tol) {
    for (std::size_t j = 0; j < k; ++j) {
      result.best[j] = estimate(j);
    }
    result.residual = raw_objective.measured_norm();
    FLUXFP_OBS_COUNTER_INC("fluxfp_core_smc_empty_windows_total",
                           "Steps skipped on an all-missing window");
    return result;
  }

  // --- Optional robust reweighting against the current estimates ---
  // Byzantine readings get large residuals at the incumbent fit; one IRLS
  // pass removes most of their pull before the filtering sweeps see them.
  std::optional<SparseObjective> robust_storage;
  const SparseObjective* obj_ptr = &raw_objective;
  if (config_.robust.loss != RobustLoss::kNone &&
      raw_objective.sample_count() > 0) {
    std::vector<geom::Vec2> current(k);
    for (std::size_t j = 0; j < k; ++j) {
      current[j] = estimate(j);
    }
    const StretchFit incumbent = raw_objective.fit(current);
    const std::vector<double> r =
        raw_objective.residuals_at(current, incumbent.stretches);
    robust_storage.emplace(
        raw_objective.reweighted(robust_weights(r, config_.robust)));
    obj_ptr = &*robust_storage;
  }
  const SparseObjective& objective = *obj_ptr;

  // --- Prediction (Eq. 4.2) ---
  std::vector<std::vector<Prediction>> predictions(k);
  for (std::size_t j = 0; j < k; ++j) {
    const double dt = std::max(time - t_last_[j], 0.0);
    const double radius =
        std::clamp(config_.vmax * dt, 1e-6, field_->diameter());
    predictions[j] = predict(j, radius, rng);
  }

  // --- Filtering: conditional sweeps over users ---
  std::vector<geom::Vec2> reps(k);
  std::vector<std::vector<double>> rep_cols(k);
  for (std::size_t j = 0; j < k; ++j) {
    reps[j] = estimate(j);
    objective.shape_column(reps[j], rep_cols[j]);
  }

  // Per-user scores of the *last* sweep; index into predictions[j].
  //
  // Scaling note: the conditional NNLS is pruned to the joint fit's
  // *support* — the users whose fitted s/r is currently non-zero. With
  // asynchronous schedules (20 tracked users, 2-4 active per window, §5.C)
  // this turns each candidate evaluation from a K-dimensional NNLS into a
  // (active+1)-dimensional one; columns outside the support are zero in
  // the full fit anyway, so the pruned fit is exact at the current point.
  std::vector<std::vector<double>> last_residuals(k);
  // Candidate shape columns are fixed for the round; build them once per
  // user into a contiguous ColumnBlock. The batch build and the per-sweep
  // scoring below fan out over the thread pool, while every RNG draw
  // (prediction sampling above, resampling below) stays on this thread —
  // so step() output is bit-identical at any thread count.
  std::vector<ColumnBlock> cand_cols(k);
  {
    std::vector<geom::Vec2> cand_pos;
    for (std::size_t j = 0; j < k; ++j) {
      cand_pos.resize(predictions[j].size());
      for (std::size_t c = 0; c < predictions[j].size(); ++c) {
        cand_pos[c] = predictions[j][c].position;
      }
      objective.shape_columns(cand_pos, cand_cols[j]);
    }
  }
  for (int sweep = 0; sweep < config_.sweeps; ++sweep) {
    // Support of the joint fit at the current representatives. Columns
    // whose stretch is a sliver of the largest are noise-absorbers (stale
    // reps soaking up model misfit), not users — drop them too.
    const StretchFit sweep_fit = objective.fit(reps);
    double max_stretch = 0.0;
    for (double s : sweep_fit.stretches) {
      max_stretch = std::max(max_stretch, s);
    }
    std::vector<std::size_t> support;
    for (std::size_t o = 0; o < k; ++o) {
      if (sweep_fit.stretches[o] > 0.02 * max_stretch) {
        support.push_back(o);
      }
    }
    for (std::size_t j = 0; j < k; ++j) {
      std::vector<const std::vector<double>*> fixed;
      fixed.reserve(support.size());
      for (std::size_t o : support) {
        if (o != j) {
          fixed.push_back(&rep_cols[o]);
        }
      }
      // Candidate column sits in the last slot of the pruned fit.
      const ConditionalFit cond(objective, fixed, fixed.size());
      std::vector<double>& residuals = last_residuals[j];
      residuals.resize(predictions[j].size());
      cond.evaluate_batch(cand_cols[j], residuals);
      // Serial argmin in index order: ties break to the lowest candidate
      // index exactly as the serial loop did.
      double best_res = std::numeric_limits<double>::infinity();
      std::size_t best_idx = 0;
      for (std::size_t c = 0; c < residuals.size(); ++c) {
        if (residuals[c] < best_res) {
          best_res = residuals[c];
          best_idx = c;
        }
      }
      reps[j] = predictions[j][best_idx].position;
      const std::span<const double> best_col = cand_cols[j].column(best_idx);
      rep_cols[j].assign(best_col.begin(), best_col.end());
    }
  }

  // --- Joint stretch fit at the best combination (asynchronism test) ---
  StretchFit joint = objective.fit(reps);
  result.stretches = joint.stretches;
  result.residual = joint.residual;
  result.best = reps;

  // --- Asynchronous updating + importance sampling (Eq. 4.3) ---
  for (std::size_t j = 0; j < k; ++j) {
    // Leave-one-out activity test: how much worse does the fit get without
    // user j's column? Users outside the joint fit's support contribute
    // nothing (dropping their zero-stretch column leaves the residual
    // unchanged), so only support members need the refit.
    double improvement = 0.0;
    if (joint.stretches[j] > 0.0) {
      std::vector<const std::vector<double>*> without;
      without.reserve(k - 1);
      for (std::size_t o = 0; o < k; ++o) {
        if (o != j && joint.stretches[o] > 0.0) {
          without.push_back(&rep_cols[o]);
        }
      }
      const double residual_without =
          objective.fit_columns(without).residual;
      improvement =
          (residual_without - joint.residual) / objective.measured_norm();
    }
    const bool active = improvement > config_.inactive_improvement_tol;
    if (!active) {
      continue;  // s/r -> 0: leave samples and t_last untouched (§4.E)
    }

    // Rank this user's predictions by the last sweep's residuals, keep M.
    std::vector<std::size_t> order(predictions[j].size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    const std::size_t keep = std::min(config_.num_keep, order.size());
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        return last_residuals[j][a] < last_residuals[j][b];
                      });

    const double eps = 1e-9 * (1.0 + objective.measured_norm());
    std::vector<Particle> next;
    next.reserve(keep);
    double wsum = 0.0;
    for (std::size_t t = 0; t < keep; ++t) {
      const Prediction& pred = predictions[j][order[t]];
      double w = 1.0;
      if (config_.importance_sampling) {
        const double w_origin = particles_[j][pred.origin].weight;
        w = w_origin / (last_residuals[j][order[t]] + eps);
      }
      next.push_back({pred.position, w});
      wsum += w;
    }
    if (wsum <= 0.0) {
      // Degenerate weights (all origins at weight 0): fall back to uniform.
      for (Particle& p : next) {
        p.weight = 1.0 / static_cast<double>(next.size());
      }
    } else {
      for (Particle& p : next) {
        p.weight /= wsum;
      }
    }
    particles_[j] = std::move(next);
#if defined(FLUXFP_OBS_ENABLED)
    // Effective sample size 1/sum(w^2) of the refreshed weights: a
    // degeneracy monitor (ESS -> 1 means one particle carries all mass).
    // Pure function of the weights, so it stays in the stable export.
    if (obs::enabled()) {
      double sum_sq = 0.0;
      for (const Particle& p : particles_[j]) {
        sum_sq += p.weight * p.weight;
      }
      if (sum_sq > 0.0) {
        const double ess = 1.0 / sum_sq;
        FLUXFP_OBS_COUNT_OBSERVE("fluxfp_core_smc_ess",
                                 "Effective sample size after each update",
                                 std::llround(ess));
        FLUXFP_OBS_GAUGE_MAX("fluxfp_core_smc_ess_max",
                             "Largest effective sample size seen", ess);
      }
    }
#endif
    const bool had_prior_update = t_last_[j] > 0.0;
    t_last_[j] = time;
    result.updated[j] = true;
    if (config_.heading_aware) {
      const geom::Vec2 now = estimate(j);
      if (had_prior_update) {
        heading_[j] = (now - prev_estimate_[j]).normalized();
      }
      prev_estimate_[j] = now;
    }
  }

  // --- Divergence detection + recovery ---
  // A round is "bad" when the best combination still leaves most of the
  // measured norm unexplained, or when nobody accepted an update despite a
  // non-empty window. After divergence_rounds consecutive bad rounds the
  // track is lost: re-acquire from a coarse grid scan instead of letting
  // the per-round motion bound trap the filter on a dead track.
  if (config_.divergence_recovery) {
    bool any_updated = false;
    for (std::size_t j = 0; j < k; ++j) {
      any_updated = any_updated || result.updated[j];
    }
    const bool bad = result.residual > config_.divergence_fraction *
                                           objective.measured_norm() ||
                     !any_updated;
    bad_rounds_ = bad ? bad_rounds_ + 1 : 0;
    if (bad) {
      FLUXFP_OBS_COUNTER_INC("fluxfp_core_smc_bad_rounds_total",
                             "Rounds flagged by divergence detection");
    }
    if (bad_rounds_ >= config_.divergence_rounds) {
      FLUXFP_OBS_COUNTER_INC("fluxfp_core_smc_recoveries_total",
                             "Grid-scan re-acquisitions of a lost track");
      reseed_from_grid(time, objective, reps, rep_cols);
      const StretchFit refit = objective.fit(reps);
      result.stretches = refit.stretches;
      result.residual = refit.residual;
      result.best = reps;
      result.updated.assign(k, true);
      result.recovered = true;
      bad_rounds_ = 0;
    }
  }
  return result;
}

void SmcTracker::reseed_from_grid(double time,
                                  const SparseObjective& objective,
                                  std::vector<geom::Vec2>& reps,
                                  std::vector<std::vector<double>>& rep_cols) {
  const std::size_t g = config_.recovery_grid;
  std::vector<geom::Vec2> grid;
  grid.reserve(g * g);
  for (std::size_t iy = 0; iy < g; ++iy) {
    for (std::size_t ix = 0; ix < g; ++ix) {
      grid.push_back(field_->from_unit_square(
          (static_cast<double>(ix) + 0.5) / static_cast<double>(g),
          (static_cast<double>(iy) + 0.5) / static_cast<double>(g)));
    }
  }
  ColumnBlock grid_cols;
  objective.shape_columns(grid, grid_cols);
  const std::size_t k = num_users();
  std::vector<double> scores(grid.size());
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<const std::vector<double>*> fixed;
    fixed.reserve(k - 1);
    for (std::size_t o = 0; o < k; ++o) {
      if (o != j) {
        fixed.push_back(&rep_cols[o]);
      }
    }
    const ConditionalFit cond(objective, fixed, fixed.size());
    cond.evaluate_batch(grid_cols, scores);
    std::vector<std::size_t> order(grid.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    const std::size_t keep = std::min(config_.num_keep, order.size());
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        return scores[a] < scores[b];
                      });
    std::vector<Particle> next;
    next.reserve(keep);
    for (std::size_t t = 0; t < keep; ++t) {
      next.push_back({grid[order[t]], 1.0 / static_cast<double>(keep)});
    }
    particles_[j] = std::move(next);
    reps[j] = grid[order[0]];
    const std::span<const double> best_col = grid_cols.column(order[0]);
    rep_cols[j].assign(best_col.begin(), best_col.end());
    t_last_[j] = time;
    heading_[j] = geom::Vec2{};
    prev_estimate_[j] = estimate(j);
  }
}

}  // namespace fluxfp::core
