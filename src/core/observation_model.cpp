#include "core/observation_model.hpp"

namespace fluxfp::core {

const char* model_name(ModelId id) {
  switch (id) {
    case ModelId::kFlux:
      return "flux";
    case ModelId::kRssLink:
      return "rss-link";
    case ModelId::kPassiveTrace:
      return "passive-trace";
  }
  return "unknown";
}

bool known_model_id(std::uint8_t raw) {
  return raw <= static_cast<std::uint8_t>(ModelId::kPassiveTrace);
}

}  // namespace fluxfp::core
