#pragma once

#include <array>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "core/flux_model.hpp"
#include "geom/vec2.hpp"

namespace fluxfp::core {

/// Contiguous structure-of-arrays storage for a batch of shape columns:
/// C columns in one 64-byte-aligned allocation, column c occupying
/// data()[c * stride()] onward. stride() is rows() rounded up to a
/// multiple of 8 doubles so every column starts on its own cache line;
/// the padding tail of a column is never read or written by the kernels.
/// The candidate-evaluation engine fills one block per user per round
/// (SparseObjective::shape_columns) and scores it in cache-friendly chunks
/// (ConditionalFit::evaluate_batch), replacing the per-candidate
/// vector<vector<double>> heap churn of the serial implementation.
class ColumnBlock {
 public:
  ColumnBlock() = default;
  ColumnBlock(std::size_t rows, std::size_t cols) { resize(rows, cols); }

  /// Reshapes to rows x cols; existing contents are unspecified afterwards.
  /// Capacity is retained across shrinks (high-water semantics), so a
  /// reused block stops allocating once it has seen its largest batch.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    stride_ = (rows + 7) / 8 * 8;
    const std::size_t need = stride_ * cols;
    if (need > capacity_) {
      data_.reset(new (std::align_val_t{64}) double[need]());
      capacity_ = need;
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Doubles between consecutive column starts; >= rows(), multiple of 8.
  std::size_t stride() const { return stride_; }

  std::span<double> column(std::size_t c) {
    return {data_.get() + c * stride_, rows_};
  }
  std::span<const double> column(std::size_t c) const {
    return {data_.get() + c * stride_, rows_};
  }

  double* data() { return data_.get(); }
  const double* data() const { return data_.get(); }

 private:
  struct AlignedFree {
    void operator()(double* p) const {
      ::operator delete[](p, std::align_val_t{64});
    }
  };

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  std::size_t capacity_ = 0;  // allocated doubles
  std::unique_ptr<double[], AlignedFree> data_;
};

/// Result of fitting stretch factors for one candidate set of sink
/// positions.
struct StretchFit {
  double residual = 0.0;             ///< ||F - F'||_2 at the optimum
  std::vector<double> stretches;     ///< fitted s_j / r, all >= 0
};

/// Robust-fitting options: an optional IRLS reweighting of the NLS samples
/// so a few wildly wrong readings (byzantine sniffers) cannot hijack the
/// profiled NNLS fit.
enum class RobustLoss {
  kNone,     ///< plain least squares
  kHuber,    ///< Huber weights w = min(1, k*sigma/|r|), sigma from the MAD
  kTrimmed,  ///< hard-drop the worst trim_fraction of samples
};

struct RobustFitConfig {
  RobustLoss loss = RobustLoss::kNone;
  /// Huber clip point in multiples of the robust residual scale.
  double huber_k = 1.345;
  /// Fraction of worst-residual samples given zero weight (kTrimmed).
  double trim_fraction = 0.15;
  /// Reweight-and-refit iterations on top of the initial plain fit.
  int reweight_rounds = 2;
};

/// Per-sample IRLS weights in [0, 1] for the given fit residuals. The
/// residual scale is the normalized MAD; with a degenerate scale (more
/// than half the residuals identical) all weights are 1.
std::vector<double> robust_weights(std::span<const double> residuals,
                                   const RobustFitConfig& config);
/// In-place variant (out resized to residuals.size()) for the IRLS loops.
void robust_weights(std::span<const double> residuals,
                    const RobustFitConfig& config, std::vector<double>& out);

/// The sparse-sampling NLS objective of §4.A.
///
/// Fix n sniffed nodes with positions q_1..q_n and measured flux F'. For
/// candidate sink positions p_1..p_K, the model predicts
///   F_i = Σ_j (s_j/r) * phi(p_j, q_i)
/// which is *linear* in the integrated factors s_j/r. The objective
/// therefore profiles them out: for any candidate position set the optimal
/// non-negative stretches solve an n x K NNLS, and the candidate's score is
/// the remaining residual ||F - F'||. The position search on top of this is
/// what the localizer / SMC tracker implement.
///
/// Missingness is first-class: readings equal to net::kMissingReading (or
/// masked out via the validity-vector constructor) are excluded from the
/// fit entirely — the objective compacts itself to the live samples, so a
/// failed sniffer contributes *no* evidence instead of a poisoned zero.
/// An all-missing window is legal and behaves as an empty measurement
/// (sample_count() == 0, measured_norm() == 0).
///
/// The objective is model-polymorphic: any ObservationModel backend
/// (flux, RSS link-attenuation, passive traces) plugs in, with virtual
/// dispatch at COLUMN granularity (one site_shape_row call per column) so
/// the SIMD/SoA hot path is untouched. Point-model callers keep the
/// Vec2-vector constructors; link models use the Site-vector ones.
class SparseObjective {
 public:
  /// `model` is cloned (the objective owns an immutable copy);
  /// `sample_positions` are the sniffed nodes' positions (point sites);
  /// `measured` is F' (same length). Readings that are missing
  /// (net::is_missing) are masked out. Exact-duplicate sample positions
  /// (one sniffer reported twice in a snapshot — duplicated delivery in
  /// the streaming runtime) collapse to a single row carrying the LATEST
  /// live reading, so a re-report updates the evidence instead of
  /// double-weighting it. Throws std::invalid_argument on size mismatch
  /// or empty inputs.
  SparseObjective(const ObservationModel& model,
                  std::vector<geom::Vec2> sample_positions,
                  std::vector<double> measured);

  /// As above with an explicit observation mask: sample i participates in
  /// the fit only when valid[i] is true AND the reading is not missing.
  /// `valid` must match the sample count.
  SparseObjective(const ObservationModel& model,
                  std::vector<geom::Vec2> sample_positions,
                  std::vector<double> measured, const std::vector<bool>& valid);

  /// Site-vector forms for link models (and uniformly for any backend):
  /// site i carries both endpoints. Duplicate collapse compares BOTH
  /// endpoints, so distinct links sharing one sniffer stay distinct rows.
  SparseObjective(const ObservationModel& model, std::vector<Site> sites,
                  std::vector<double> measured);
  SparseObjective(const ObservationModel& model, std::vector<Site> sites,
                  std::vector<double> measured, const std::vector<bool>& valid);

  /// Sharing form for per-epoch hot loops (the streaming runtime): the
  /// model is shared, not cloned, so building an objective per epoch costs
  /// no model copy. `model` must be non-null.
  SparseObjective(std::shared_ptr<const ObservationModel> model,
                  std::vector<Site> sites, std::vector<double> measured,
                  const std::vector<bool>& valid);

  /// Live (unmasked) samples — the n the fit actually uses.
  std::size_t sample_count() const { return sample_positions_.size(); }
  /// Samples excluded as missing/invalid/duplicate at construction.
  std::size_t masked_count() const { return masked_count_; }
  /// Live sites' primary endpoints (the sniffer position for point models).
  const std::vector<geom::Vec2>& sample_positions() const {
    return sample_positions_;
  }
  /// Live site i with both endpoints (b == a for point models).
  Site site(std::size_t i) const {
    return Site{sample_positions_[i], positions_b_[i]};
  }
  const std::vector<double>& measured() const { return measured_; }
  double measured_norm() const { return measured_norm_; }
  const ObservationModel& model() const { return *model_; }

  /// The model shape column [phi(sink, q_1) ... phi(sink, q_n)] over the
  /// live samples (scaled by the row weights for a reweighted objective).
  std::vector<double> shape_column(geom::Vec2 sink) const;
  /// In-place variant (out resized to n) to avoid allocation in hot loops.
  void shape_column(geom::Vec2 sink, std::vector<double>& out) const;
  /// Span variant for arena-backed scratch: `out` must already have
  /// sample_count() entries.
  void shape_column(geom::Vec2 sink, std::span<double> out) const {
    shape_column_into(sink, out);
  }

  /// Batch column build: `out` is resized to n x sinks.size() and column c
  /// is filled with shape_column(sinks[c]). The work fans out over the
  /// thread pool (numeric::parallel_for); each column is a pure function
  /// of its sink, so the block is bit-identical at any thread count.
  void shape_columns(std::span<const geom::Vec2> sinks,
                     ColumnBlock& out) const;

  /// Full fit for K candidate sinks.
  StretchFit fit(std::span<const geom::Vec2> sinks) const;

  /// Fit from precomputed shape columns (all length n). Used by the search
  /// loops where K-1 columns stay fixed while one candidate varies.
  StretchFit fit_columns(std::span<const std::span<const double>> columns) const;

  /// Per-live-sample signed residuals F(sinks, stretches) - F' (length
  /// sample_count()). Throws std::invalid_argument on size mismatch.
  std::vector<double> residuals_at(std::span<const geom::Vec2> sinks,
                                   std::span<const double> stretches) const;
  /// In-place variant (out resized to n) for the IRLS loops.
  void residuals_at(std::span<const geom::Vec2> sinks,
                    std::span<const double> stretches,
                    std::vector<double>& out) const;

  /// Weighted copy of this objective: row i of the least-squares system is
  /// scaled by sqrt(weights[i]) (weights.size() == sample_count(), all
  /// >= 0). Zero-weight rows stay present but contribute nothing. This is
  /// how the robust IRLS loop downweights outlier readings while reusing
  /// every fit path (Gram NNLS, ConditionalFit) unchanged.
  SparseObjective reweighted(std::span<const double> weights) const;

  /// In-place variant for the per-epoch IRLS loop: overwrites `out` with
  /// the weighted copy, reusing its vector capacity so steady-state rounds
  /// allocate nothing. `out` is typically optional<SparseObjective>
  /// storage seeded once via reweighted().
  void reweighted_into(std::span<const double> weights,
                       SparseObjective& out) const;

  /// Convenience robust fit: plain fit, then config.reweight_rounds of
  /// (residuals -> robust_weights -> reweighted fit). The returned
  /// residual/stretches are evaluated on the *unweighted* objective so
  /// they stay comparable with plain fit() results.
  StretchFit fit_robust(std::span<const geom::Vec2> sinks,
                        const RobustFitConfig& config) const;

 private:
  /// Fills exactly out.size() == sample_count() entries; no resize.
  void shape_column_into(geom::Vec2 sink, std::span<double> out) const;

  /// Shared constructor tail: masks, dedups (both endpoints), compacts to
  /// the live sites and builds the SoA coordinate rows. Expects
  /// sample_positions_ / positions_b_ / measured_ to hold the raw inputs.
  void compact(const std::vector<bool>& valid);

  /// Shared immutable model: copies of the objective (reweighted IRLS)
  /// share the backend instead of cloning it per round.
  std::shared_ptr<const ObservationModel> model_;
  /// Primary endpoints of the live sites (== the site.a coordinates).
  std::vector<geom::Vec2> sample_positions_;
  /// Secondary endpoints (== sample_positions_ values for point models).
  std::vector<geom::Vec2> positions_b_;
  /// Structure-of-arrays mirror of the site endpoints (built once at
  /// construction, after compaction) — the contiguous coordinate rows the
  /// SIMD shape kernels consume.
  std::vector<double> qx_;
  std::vector<double> qy_;
  std::vector<double> bx_;
  std::vector<double> by_;
  std::vector<double> measured_;
  double measured_norm_ = 0.0;
  std::size_t masked_count_ = 0;
  /// sqrt of the per-row weights; empty means all-ones (unweighted).
  std::vector<double> row_scale_;
};

/// Maximum K supported by the Gram-space NNLS.
inline constexpr std::size_t kMaxGramUsers = 32;
/// Up to this K, support subsets are enumerated exhaustively (2^K - 1
/// Cholesky solves — exact and branch-free); above it, a Lawson–Hanson
/// active-set iteration in Gram space takes over.
inline constexpr std::size_t kGramEnumerationLimit = 6;

/// NNLS in Gram space: minimizes ||A s - b|| over s >= 0 given
/// G = A^T A (k x k), c = A^T b, and b2 = ||b||^2. For k <=
/// kGramEnumerationLimit every support subset is solved (the global
/// optimum's support is one of them, so the minimum-residual feasible
/// subset solution is the global optimum); for larger k a Lawson–Hanson
/// active-set loop is used. Throws std::invalid_argument for
/// k > kMaxGramUsers.
StretchFit nnls_from_gram(std::span<const double> g, std::size_t k,
                          std::span<const double> c, double b2);

/// Incremental candidate evaluator for the conditional search loops: K-1
/// shape columns stay fixed while the column of one user sweeps over
/// candidates. Precomputes the fixed Gram block and fixed c entries so each
/// candidate costs O(n*K) flops plus a tiny Gram-space NNLS.
class ConditionalFit {
 public:
  /// `fixed_columns` are the K-1 other users' shape columns (each length
  /// n); `vary_index` in [0, K) is the slot of the varying user in the
  /// output stretch vector. The objective and the storage the spans view
  /// must outlive this; the span-of-spans itself is copied.
  ConditionalFit(const SparseObjective& obj,
                 std::span<const std::span<const double>> fixed_columns,
                 std::size_t vary_index);

  /// Fit with the varying user's column = `candidate_column` (length n).
  StretchFit evaluate(std::span<const double> candidate_column) const;

  /// Residual-only evaluation — the hot-loop form. Identical arithmetic to
  /// evaluate().residual with zero heap allocation.
  double evaluate_residual(std::span<const double> candidate_column) const;

  /// Scores every column of `block` (block.rows() must equal the
  /// objective's sample count): residuals_out[c] receives the fit residual
  /// of candidate column c, and — when non-empty — vary_stretch_out[c] the
  /// varying user's fitted stretch. Both spans must have block.cols()
  /// entries. Candidates fan out over the thread pool; each evaluation is
  /// independent and writes only its own slot, so the outputs are
  /// bit-identical to a serial evaluate() loop at any thread count.
  void evaluate_batch(const ColumnBlock& block,
                      std::span<double> residuals_out,
                      std::span<double> vary_stretch_out = {}) const;

  std::size_t user_count() const { return fixed_count_ + 1; }

 private:
  /// Shared core: fit with the candidate column, writing the full stretch
  /// vector (user_count() entries) to `stretches`; returns the residual.
  double evaluate_into(std::span<const double> candidate_column,
                       double* stretches) const;

  const SparseObjective* obj_;
  std::size_t fixed_count_;
  std::size_t vary_index_;
  // Fixed-size storage (kMaxGramUsers bounds K) so constructing a
  // ConditionalFit per sweep allocates nothing.
  std::array<std::span<const double>, kMaxGramUsers> fixed_;
  std::array<double, kMaxGramUsers * kMaxGramUsers> fixed_gram_;  // row-major
  std::array<double, kMaxGramUsers> fixed_c_;
};

}  // namespace fluxfp::core
