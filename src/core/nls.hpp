#pragma once

#include <span>
#include <vector>

#include "core/flux_model.hpp"
#include "geom/vec2.hpp"

namespace fluxfp::core {

/// Result of fitting stretch factors for one candidate set of sink
/// positions.
struct StretchFit {
  double residual = 0.0;             ///< ||F - F'||_2 at the optimum
  std::vector<double> stretches;     ///< fitted s_j / r, all >= 0
};

/// The sparse-sampling NLS objective of §4.A.
///
/// Fix n sniffed nodes with positions q_1..q_n and measured flux F'. For
/// candidate sink positions p_1..p_K, the model predicts
///   F_i = Σ_j (s_j/r) * phi(p_j, q_i)
/// which is *linear* in the integrated factors s_j/r. The objective
/// therefore profiles them out: for any candidate position set the optimal
/// non-negative stretches solve an n x K NNLS, and the candidate's score is
/// the remaining residual ||F - F'||. The position search on top of this is
/// what the localizer / SMC tracker implement.
class SparseObjective {
 public:
  /// `model` is copied; `sample_positions` are the sniffed nodes' positions;
  /// `measured` is F' (same length). Throws std::invalid_argument on
  /// size mismatch or empty samples.
  SparseObjective(const FluxModel& model,
                  std::vector<geom::Vec2> sample_positions,
                  std::vector<double> measured);

  std::size_t sample_count() const { return sample_positions_.size(); }
  const std::vector<geom::Vec2>& sample_positions() const {
    return sample_positions_;
  }
  const std::vector<double>& measured() const { return measured_; }
  double measured_norm() const { return measured_norm_; }
  const FluxModel& model() const { return model_; }

  /// The model shape column [phi(sink, q_1) ... phi(sink, q_n)].
  std::vector<double> shape_column(geom::Vec2 sink) const;
  /// In-place variant (out resized to n) to avoid allocation in hot loops.
  void shape_column(geom::Vec2 sink, std::vector<double>& out) const;

  /// Full fit for K candidate sinks.
  StretchFit fit(std::span<const geom::Vec2> sinks) const;

  /// Fit from precomputed shape columns (all length n). Used by the search
  /// loops where K-1 columns stay fixed while one candidate varies.
  StretchFit fit_columns(
      std::span<const std::vector<double>* const> columns) const;

 private:
  FluxModel model_;
  std::vector<geom::Vec2> sample_positions_;
  std::vector<double> measured_;
  double measured_norm_ = 0.0;
};

/// Maximum K supported by the Gram-space NNLS.
inline constexpr std::size_t kMaxGramUsers = 32;
/// Up to this K, support subsets are enumerated exhaustively (2^K - 1
/// Cholesky solves — exact and branch-free); above it, a Lawson–Hanson
/// active-set iteration in Gram space takes over.
inline constexpr std::size_t kGramEnumerationLimit = 6;

/// NNLS in Gram space: minimizes ||A s - b|| over s >= 0 given
/// G = A^T A (k x k), c = A^T b, and b2 = ||b||^2. For k <=
/// kGramEnumerationLimit every support subset is solved (the global
/// optimum's support is one of them, so the minimum-residual feasible
/// subset solution is the global optimum); for larger k a Lawson–Hanson
/// active-set loop is used. Throws std::invalid_argument for
/// k > kMaxGramUsers.
StretchFit nnls_from_gram(std::span<const double> g, std::size_t k,
                          std::span<const double> c, double b2);

/// Incremental candidate evaluator for the conditional search loops: K-1
/// shape columns stay fixed while the column of one user sweeps over
/// candidates. Precomputes the fixed Gram block and fixed c entries so each
/// candidate costs O(n*K) flops plus a tiny Gram-space NNLS.
class ConditionalFit {
 public:
  /// `fixed_columns` are the K-1 other users' shape columns (each length
  /// n); `vary_index` in [0, K) is the slot of the varying user in the
  /// output stretch vector. The objective and columns must outlive this.
  ConditionalFit(const SparseObjective& obj,
                 std::span<const std::vector<double>* const> fixed_columns,
                 std::size_t vary_index);

  /// Fit with the varying user's column = `candidate_column` (length n).
  StretchFit evaluate(std::span<const double> candidate_column) const;

  std::size_t user_count() const { return fixed_.size() + 1; }

 private:
  const SparseObjective* obj_;
  std::vector<const std::vector<double>*> fixed_;
  std::size_t vary_index_;
  std::vector<double> fixed_gram_;  // (K-1)^2 row-major
  std::vector<double> fixed_c_;     // K-1
};

}  // namespace fluxfp::core
