#pragma once

#include <vector>

#include "geom/vec2.hpp"

namespace fluxfp::core {

/// Options for the identity maintainer.
struct IdentityConfig {
  /// Relative weight of stretch disagreement vs position distance in the
  /// association cost (field-units per unit of s/r difference).
  double stretch_weight = 3.0;
  /// Exponential smoothing factor for each track's stretch fingerprint
  /// (0 = frozen first estimate, 1 = always the latest observation).
  double stretch_smoothing = 0.3;
};

/// Resolves the identity-mixing problem the paper leaves open (Fig. 7(d):
/// "our algorithm ... can only detect the locations of them but cannot
/// distinguish their identities"). Pure flux observations carry no IDs —
/// but each user's *traffic stretch* is a behavioral fingerprint. This
/// post-processor maintains stable track identities by min-cost matching
/// of per-round detections (position, fitted s/r) against the tracks'
/// smoothed fingerprints: when two users cross paths, their distinct
/// stretches keep the tracks from swapping; with identical stretches it
/// degrades gracefully to nearest-position matching (which may swap, as
/// the paper observes).
class IdentityMaintainer {
 public:
  /// `num_tracks` identities to maintain. Throws std::invalid_argument on
  /// a bad config.
  IdentityMaintainer(std::size_t num_tracks, IdentityConfig config = {});

  /// One detection as produced by the tracker for a round.
  struct Detection {
    geom::Vec2 position;
    double stretch = 0.0;  ///< fitted s/r this round
    bool updated = true;   ///< false: the slot did not move this round
  };

  /// Consumes one round of detections (size must equal num_tracks) and
  /// returns `order` with order[track] = detection index assigned to that
  /// track. Non-updated detections keep their previous assignment
  /// preference (zero extra cost at their last position).
  std::vector<std::size_t> assign(const std::vector<Detection>& detections);

  /// Position of `track` after the last assign().
  geom::Vec2 position(std::size_t track) const;
  /// Smoothed stretch fingerprint of `track`.
  double fingerprint(std::size_t track) const;
  std::size_t num_tracks() const { return positions_.size(); }

 private:
  IdentityConfig config_;
  std::vector<geom::Vec2> positions_;
  std::vector<double> fingerprints_;
  std::vector<bool> initialized_;
};

}  // namespace fluxfp::core
