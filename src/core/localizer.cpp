#include "core/localizer.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace fluxfp::core {
namespace {

struct ScoredCandidate {
  geom::Vec2 position;
  double residual;
  double stretch;  ///< fitted s/r of the candidate's own user
};

/// Keeps the `m` lowest-residual candidates, best first. Candidates whose
/// fitted stretch collapsed to ~0 are dropped first (when possible): their
/// residual is insensitive to position, so they rank arbitrarily — the
/// "outlier reports" the paper filters out by majority (§5.A).
void keep_top(std::vector<ScoredCandidate>& cands, std::size_t m) {
  double max_stretch = 0.0;
  for (const ScoredCandidate& c : cands) {
    max_stretch = std::max(max_stretch, c.stretch);
  }
  const double floor = 0.02 * max_stretch;
  std::vector<ScoredCandidate> filtered;
  filtered.reserve(cands.size());
  for (const ScoredCandidate& c : cands) {
    if (c.stretch > floor) {
      filtered.push_back(c);
    }
  }
  if (!filtered.empty()) {
    cands = std::move(filtered);
  }
  const std::size_t keep = std::min(m, cands.size());
  std::partial_sort(cands.begin(), cands.begin() + static_cast<long>(keep),
                    cands.end(), [](const auto& a, const auto& b) {
                      return a.residual < b.residual;
                    });
  cands.resize(keep);
}

}  // namespace

InstantLocalizer::InstantLocalizer(const geom::Field& field,
                                   LocalizerConfig config)
    : field_(&field), config_(config) {
  if (config_.candidates_per_user == 0 || config_.top_m == 0 ||
      config_.sweeps <= 0 || config_.restarts <= 0) {
    throw std::invalid_argument("InstantLocalizer: bad config");
  }
}

LocalizationResult InstantLocalizer::localize(
    const SparseObjective& objective, std::size_t num_users,
    geom::Rng& rng) const {
  if (num_users == 0 || num_users > kMaxGramUsers) {
    throw std::invalid_argument("InstantLocalizer: bad user count");
  }
  LocalizationResult result = search(objective, num_users, rng);
  if (config_.robust.loss == RobustLoss::kNone ||
      objective.sample_count() == 0) {
    return result;
  }
  // Robust refinement: downweight outlier readings at the current best and
  // re-run the search on the reweighted objective. Byzantine sniffers get
  // huge residuals at a near-correct fit, so a round or two of IRLS
  // removes their pull on the position estimates.
  for (int round = 0; round < config_.robust.reweight_rounds; ++round) {
    const std::vector<double> r =
        objective.residuals_at(result.positions, result.stretches);
    const SparseObjective weighted =
        objective.reweighted(robust_weights(r, config_.robust));
    result = search(weighted, num_users, rng);
  }
  // Report stretches/residual on the unweighted objective for
  // comparability; positions come from the robust search.
  StretchFit plain = objective.fit(result.positions);
  result.stretches = std::move(plain.stretches);
  result.residual = plain.residual;
  return result;
}

LocalizationResult InstantLocalizer::search(
    const SparseObjective& objective, std::size_t num_users,
    geom::Rng& rng) const {
  LocalizationResult best_result;
  best_result.residual = std::numeric_limits<double>::infinity();

  const int restarts = num_users == 1 ? 1 : config_.restarts;
  const int sweeps = num_users == 1 ? 1 : config_.sweeps;
  const std::size_t per_sweep =
      std::max<std::size_t>(config_.candidates_per_user /
                                static_cast<std::size_t>(sweeps),
                            1);

  std::vector<double> candidate_col;
  for (int restart = 0; restart < restarts; ++restart) {
    // Current combination and cached shape columns.
    std::vector<geom::Vec2> positions(num_users);
    std::vector<std::vector<double>> columns(num_users);
    for (std::size_t j = 0; j < num_users; ++j) {
      positions[j] = geom::uniform_in_field(*field_, rng);
      objective.shape_column(positions[j], columns[j]);
    }

    std::vector<std::vector<ScoredCandidate>> last_scores(num_users);
    double current_residual = std::numeric_limits<double>::infinity();

    for (int sweep = 0; sweep < sweeps; ++sweep) {
      for (std::size_t j = 0; j < num_users; ++j) {
        // Fix all other users' columns; sweep user j's candidates.
        std::vector<const std::vector<double>*> fixed;
        fixed.reserve(num_users - 1);
        for (std::size_t o = 0; o < num_users; ++o) {
          if (o != j) {
            fixed.push_back(&columns[o]);
          }
        }
        const ConditionalFit cond(objective, fixed, j);

        std::vector<ScoredCandidate> scored;
        scored.reserve(per_sweep + 1);
        // Keep the incumbent so a sweep can never regress.
        const StretchFit inc = cond.evaluate(columns[j]);
        scored.push_back({positions[j], inc.residual, inc.stretches[j]});
        for (std::size_t c = 0; c < per_sweep; ++c) {
          const geom::Vec2 p = geom::uniform_in_field(*field_, rng);
          objective.shape_column(p, candidate_col);
          const StretchFit fit = cond.evaluate(candidate_col);
          scored.push_back({p, fit.residual, fit.stretches[j]});
        }
        keep_top(scored, std::max(config_.top_m, std::size_t{1}));

        positions[j] = scored.front().position;
        objective.shape_column(positions[j], columns[j]);
        current_residual = scored.front().residual;
        if (sweep == sweeps - 1) {
          last_scores[j] = std::move(scored);
        }
      }
    }

    if (current_residual < best_result.residual) {
      StretchFit fit = objective.fit(positions);
      best_result.positions = positions;
      best_result.stretches = std::move(fit.stretches);
      best_result.residual = fit.residual;
      best_result.top_positions.assign(num_users, {});
      best_result.top_residuals.assign(num_users, {});
      for (std::size_t j = 0; j < num_users; ++j) {
        for (const ScoredCandidate& s : last_scores[j]) {
          best_result.top_positions[j].push_back(s.position);
          best_result.top_residuals[j].push_back(s.residual);
        }
      }
    }
  }
  return best_result;
}

}  // namespace fluxfp::core
