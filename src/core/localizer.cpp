#include "core/localizer.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

#include "numeric/arena.hpp"
#include "numeric/parallel.hpp"
#include "obs/instrument.hpp"

namespace fluxfp::core {
namespace {

struct ScoredCandidate {
  geom::Vec2 position;
  double residual;
  double stretch;  ///< fitted s/r of the candidate's own user
};

/// Keeps the `m` lowest-residual candidates, best first. Candidates whose
/// fitted stretch collapsed to ~0 are dropped first (when possible): their
/// residual is insensitive to position, so they rank arbitrarily — the
/// "outlier reports" the paper filters out by majority (§5.A).
void keep_top(std::vector<ScoredCandidate>& cands, std::size_t m) {
  double max_stretch = 0.0;
  for (const ScoredCandidate& c : cands) {
    max_stretch = std::max(max_stretch, c.stretch);
  }
  const double floor = 0.02 * max_stretch;
  std::vector<ScoredCandidate> filtered;
  filtered.reserve(cands.size());
  for (const ScoredCandidate& c : cands) {
    if (c.stretch > floor) {
      filtered.push_back(c);
    }
  }
  if (!filtered.empty()) {
    cands = std::move(filtered);
  }
  const std::size_t keep = std::min(m, cands.size());
  std::partial_sort(cands.begin(), cands.begin() + static_cast<long>(keep),
                    cands.end(), [](const auto& a, const auto& b) {
                      return a.residual < b.residual;
                    });
  cands.resize(keep);
}

}  // namespace

InstantLocalizer::InstantLocalizer(const geom::Field& field,
                                   LocalizerConfig config)
    : field_(&field), config_(config) {
  if (config_.candidates_per_user == 0 || config_.top_m == 0 ||
      config_.sweeps <= 0 || config_.restarts <= 0) {
    throw std::invalid_argument("InstantLocalizer: bad config");
  }
}

LocalizationResult InstantLocalizer::localize(
    const SparseObjective& objective, std::size_t num_users,
    geom::Rng& rng) const {
  if (num_users == 0 || num_users > kMaxGramUsers) {
    throw std::invalid_argument("InstantLocalizer: bad user count");
  }
  LocalizationResult result = search(objective, num_users, rng);
  if (config_.robust.loss == RobustLoss::kNone ||
      objective.sample_count() == 0) {
    return result;
  }
  // Robust refinement: downweight outlier readings at the current best and
  // re-run the search on the reweighted objective. Byzantine sniffers get
  // huge residuals at a near-correct fit, so a round or two of IRLS
  // removes their pull on the position estimates.
  FLUXFP_OBS_COUNTER_INC("fluxfp_core_localizer_robust_refits_total",
                         "Localizations that entered IRLS refinement");
  for (int round = 0; round < config_.robust.reweight_rounds; ++round) {
    FLUXFP_OBS_COUNTER_INC("fluxfp_core_localizer_irls_rounds_total",
                           "IRLS reweight-and-research rounds run");
    const std::vector<double> r =
        objective.residuals_at(result.positions, result.stretches);
    const SparseObjective weighted =
        objective.reweighted(robust_weights(r, config_.robust));
    result = search(weighted, num_users, rng);
  }
  // Report stretches/residual on the unweighted objective for
  // comparability; positions come from the robust search.
  StretchFit plain = objective.fit(result.positions);
  result.stretches = std::move(plain.stretches);
  result.residual = plain.residual;
  return result;
}

LocalizationResult InstantLocalizer::search(
    const SparseObjective& objective, std::size_t num_users,
    geom::Rng& rng) const {
  const int restarts = num_users == 1 ? 1 : config_.restarts;
  const int sweeps = num_users == 1 ? 1 : config_.sweeps;
  const std::size_t per_sweep =
      std::max<std::size_t>(config_.candidates_per_user /
                                static_cast<std::size_t>(sweeps),
                            1);

  // Pre-draw every random position on the calling thread, in exactly the
  // order the serial search historically consumed the stream (restart
  // init, then sweep-by-sweep, user-by-user candidates). The draws never
  // depended on evaluation results, so the pre-drawn plan reproduces the
  // serial implementation's stream bit for bit — and frees the restarts
  // to run in parallel with purely deterministic work.
  struct RestartPlan {
    std::vector<geom::Vec2> init;                     // one per user
    std::vector<std::vector<geom::Vec2>> candidates;  // [sweep*K + j]
  };
  std::vector<RestartPlan> plans(restarts);
  for (RestartPlan& plan : plans) {
    plan.init.resize(num_users);
    for (std::size_t j = 0; j < num_users; ++j) {
      plan.init[j] = geom::uniform_in_field(*field_, rng);
    }
    plan.candidates.resize(static_cast<std::size_t>(sweeps) * num_users);
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      for (std::size_t j = 0; j < num_users; ++j) {
        std::vector<geom::Vec2>& cand =
            plan.candidates[static_cast<std::size_t>(sweep) * num_users + j];
        cand.resize(per_sweep);
        for (std::size_t c = 0; c < per_sweep; ++c) {
          cand[c] = geom::uniform_in_field(*field_, rng);
        }
      }
    }
  }

  struct RestartOutcome {
    std::vector<geom::Vec2> positions;
    std::vector<std::vector<ScoredCandidate>> last_scores;
    double residual = std::numeric_limits<double>::infinity();
  };
  std::vector<RestartOutcome> outcomes(restarts);

  // Multi-start search: restarts fan out over the thread pool (nested
  // batch evaluation degrades to serial inside a worker; with a single
  // restart the inner candidate batches parallelize instead).
  numeric::parallel_for(0, static_cast<std::size_t>(restarts),
                        [&](std::size_t restart) {
    const RestartPlan& plan = plans[restart];
    RestartOutcome& outcome = outcomes[restart];
    // Per-worker scratch arena, reset at each restart: the columns and
    // batch-score buffers below live for one restart and then vanish
    // without ever hitting the heap.
    thread_local numeric::Arena arena;
    arena.reset();
    const std::size_t n = objective.sample_count();
    // Current combination and cached shape columns.
    std::vector<geom::Vec2> positions = plan.init;
    const std::span<double> col_storage = arena.alloc<double>(num_users * n);
    std::array<std::span<double>, kMaxGramUsers> columns;
    for (std::size_t j = 0; j < num_users; ++j) {
      columns[j] = col_storage.subspan(j * n, n);
      objective.shape_column(positions[j], columns[j]);
    }

    outcome.last_scores.resize(num_users);
    ColumnBlock block;
    const std::span<double> residuals = arena.alloc<double>(per_sweep);
    const std::span<double> stretches = arena.alloc<double>(per_sweep);

    for (int sweep = 0; sweep < sweeps; ++sweep) {
      for (std::size_t j = 0; j < num_users; ++j) {
        // Fix all other users' columns; sweep user j's candidates.
        std::array<std::span<const double>, kMaxGramUsers> fixed;
        std::size_t nf = 0;
        for (std::size_t o = 0; o < num_users; ++o) {
          if (o != j) {
            fixed[nf++] = columns[o];
          }
        }
        const ConditionalFit cond(
            objective,
            std::span<const std::span<const double>>(fixed.data(), nf), j);

        const std::vector<geom::Vec2>& cand =
            plan.candidates[static_cast<std::size_t>(sweep) * num_users + j];
        objective.shape_columns(cand, block);
        cond.evaluate_batch(block, residuals, stretches);

        std::vector<ScoredCandidate> scored;
        scored.reserve(per_sweep + 1);
        // Keep the incumbent so a sweep can never regress.
        const StretchFit inc = cond.evaluate(columns[j]);
        scored.push_back({positions[j], inc.residual, inc.stretches[j]});
        for (std::size_t c = 0; c < per_sweep; ++c) {
          scored.push_back({cand[c], residuals[c], stretches[c]});
        }
        keep_top(scored, std::max(config_.top_m, std::size_t{1}));

        positions[j] = scored.front().position;
        objective.shape_column(positions[j],
                               std::span<double>(columns[j]));
        outcome.residual = scored.front().residual;
        if (sweep == sweeps - 1) {
          outcome.last_scores[j] = std::move(scored);
        }
      }
    }
    outcome.positions = std::move(positions);
  });

  // Winner selection stays serial and in restart order — including the
  // historical quirk that a restart's sweep residual is compared against
  // the incumbent winner's *joint-fit* residual — so the selected restart
  // matches the serial implementation exactly.
  LocalizationResult best_result;
  best_result.residual = std::numeric_limits<double>::infinity();
  for (RestartOutcome& outcome : outcomes) {
    if (outcome.residual < best_result.residual) {
      StretchFit fit = objective.fit(outcome.positions);
      best_result.positions = outcome.positions;
      best_result.stretches = std::move(fit.stretches);
      best_result.residual = fit.residual;
      best_result.top_positions.assign(num_users, {});
      best_result.top_residuals.assign(num_users, {});
      for (std::size_t j = 0; j < num_users; ++j) {
        for (const ScoredCandidate& s : outcome.last_scores[j]) {
          best_result.top_positions[j].push_back(s.position);
          best_result.top_residuals[j].push_back(s.residual);
        }
      }
    }
  }
  return best_result;
}

}  // namespace fluxfp::core
