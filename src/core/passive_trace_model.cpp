#include "core/passive_trace_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/simd/kernels.hpp"

namespace fluxfp::core {

PassiveTraceModel::PassiveTraceModel(double detection_radius)
    : radius_(detection_radius) {
  if (!std::isfinite(detection_radius) || !(detection_radius > 0.0)) {
    throw std::invalid_argument(
        "PassiveTraceModel: detection_radius must be positive");
  }
  inv_r2_ = 1.0 / (detection_radius * detection_radius);
}

double PassiveTraceModel::site_shape(geom::Vec2 sink, const Site& site) const {
  if (!std::isfinite(sink.x) || !std::isfinite(sink.y) ||
      !std::isfinite(site.a.x) || !std::isfinite(site.a.y)) {
    throw std::invalid_argument(
        "PassiveTraceModel::site_shape: non-finite position");
  }
  const double dx = sink.x - site.a.x;
  const double dy = sink.y - site.a.y;
  const double d2 = dx * dx + dy * dy;
  return std::max(1.0 - d2 * inv_r2_, 0.0);
}

bool PassiveTraceModel::site_shape_row(geom::Vec2 sink, const SiteRows& sites,
                                       std::size_t n, double* out) const {
  if (!numeric::simd::enabled() || !std::isfinite(sink.x) ||
      !std::isfinite(sink.y)) {
    return false;
  }
  return numeric::simd::detect_shape_row(sink.x, sink.y, inv_r2_, sites.ax,
                                         sites.ay, n, out);
}

}  // namespace fluxfp::core
