#pragma once

#include <vector>

#include "core/nls.hpp"
#include "geom/sampling.hpp"

namespace fluxfp::core {

/// Configuration of the instant (single-window) localizer.
struct LocalizerConfig {
  /// Random location samples tested per user (paper §5.A uses 10,000).
  std::size_t candidates_per_user = 10000;
  /// Size of the kept top list per user (paper: top 10 combinations).
  std::size_t top_m = 10;
  /// Conditional sweeps over users for K > 1 (each sweep spends
  /// candidates_per_user / sweeps samples per user).
  int sweeps = 3;
  /// Independent random restarts for K > 1; the best-residual restart wins.
  int restarts = 3;
  /// Optional robust refit: after the plain search, outlier readings are
  /// downweighted (IRLS with the configured loss) and the search re-runs
  /// on the reweighted objective. Guards the fit against byzantine
  /// sniffers; a no-op at RobustLoss::kNone.
  RobustFitConfig robust;
};

/// Output of one localization: the best position/stretch combination plus
/// the per-user top-M candidate lists (best first) from the final sweep.
struct LocalizationResult {
  std::vector<geom::Vec2> positions;               ///< best combination
  std::vector<double> stretches;                   ///< fitted s_j/r
  double residual = 0.0;                           ///< ||F - F'|| at best
  std::vector<std::vector<geom::Vec2>> top_positions;  ///< per user, <= top_m
  std::vector<std::vector<double>> top_residuals;      ///< aligned with above
};

/// Instant localization by NLS candidate search (§4.A, evaluated in §5.A):
/// draws uniform candidate positions per user, profiles out the stretch
/// factors with the exact Gram-space NNLS, and — for multiple users —
/// refines by iterated conditional sweeps (the tractable stand-in for the
/// paper's N^K combination ranking; exact for K = 1).
class InstantLocalizer {
 public:
  /// `field` must outlive the localizer.
  InstantLocalizer(const geom::Field& field, LocalizerConfig config = {});

  /// Localizes `num_users` sinks against the sampled flux in `objective`.
  /// With config().robust enabled, reweighted search passes follow the
  /// plain one; the returned residual/stretches are evaluated on the
  /// unweighted objective either way. Throws std::invalid_argument for
  /// num_users == 0 or num_users > kMaxGramUsers.
  LocalizationResult localize(const SparseObjective& objective,
                              std::size_t num_users, geom::Rng& rng) const;

  const LocalizerConfig& config() const { return config_; }

 private:
  LocalizationResult search(const SparseObjective& objective,
                            std::size_t num_users, geom::Rng& rng) const;

  const geom::Field* field_;
  LocalizerConfig config_;
};

}  // namespace fluxfp::core
