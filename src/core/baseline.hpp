#pragma once

#include <optional>
#include <vector>

#include "core/localizer.hpp"
#include "core/nls.hpp"
#include "geom/sampling.hpp"

namespace fluxfp::core {

/// Memoryless baseline: localizes every window independently with the
/// instant NLS localizer and keeps identities consistent across rounds by
/// minimum-cost matching of the new estimates to the previous ones. No
/// motion model, no sample reuse — the straw man the SMC tracker is
/// compared against in the ablation bench.
class InstantNlsTracker {
 public:
  InstantNlsTracker(const geom::Field& field, std::size_t num_users,
                    LocalizerConfig config = {});

  /// Processes one observation window; returns the per-user estimates.
  std::vector<geom::Vec2> step(const SparseObjective& objective,
                               geom::Rng& rng);

  const std::vector<geom::Vec2>& estimates() const { return estimates_; }

 private:
  InstantLocalizer localizer_;
  std::size_t num_users_;
  std::vector<geom::Vec2> estimates_;
  bool has_previous_ = false;
};

/// Configuration of the extended-Kalman-filter baseline.
struct EkfConfig {
  LocalizerConfig localizer;     ///< produces raw position observations
  double process_noise = 1.0;    ///< accel. spectral density of the CV model
  double observation_noise = 2.0;  ///< std-dev of the instant NLS estimate
};

/// The naive attacker: no flux model at all — estimate the sink as the
/// flux-weighted centroid of the sniffed nodes, with weights F'^gamma
/// (gamma > 1 emphasizes the traffic peak). Works only for a single user
/// and biases toward the field center; the ablation bench quantifies how
/// much the model-fitting attack gains over this heuristic.
class CentroidLocalizer {
 public:
  /// gamma >= 0 is the weight exponent (2 by default).
  explicit CentroidLocalizer(double gamma = 2.0);

  /// Single-user estimate; throws std::logic_error if all readings are 0.
  geom::Vec2 localize(const SparseObjective& objective) const;

  double gamma() const { return gamma_; }

 private:
  double gamma_;
};

/// Deterministic coarse-to-fine search: evaluate the objective on a g x g
/// grid of the field's bounding structure, then repeatedly re-grid around
/// the incumbent at 1/3 scale. An alternative to random candidates with
/// reproducible output and no RNG; supports multiple users through the
/// same conditional-sweep structure as InstantLocalizer.
struct GridLocalizerConfig {
  std::size_t grid = 24;        ///< cells per side at every level
  int refinements = 3;          ///< zoom levels after the coarse pass
  int sweeps = 2;               ///< conditional sweeps over users (K > 1)
};

class GridLocalizer {
 public:
  /// `field` must outlive the localizer.
  explicit GridLocalizer(const geom::Field& field,
                         GridLocalizerConfig config = {});

  /// Localizes `num_users` sinks. Throws std::invalid_argument for
  /// num_users == 0 or > kMaxGramUsers.
  LocalizationResult localize(const SparseObjective& objective,
                              std::size_t num_users) const;

 private:
  const geom::Field* field_;
  GridLocalizerConfig config_;
};

/// Constant-velocity Kalman tracker over instant-NLS observations — the
/// classical remote-tracking recipe the related work (§2) applies (CNLS +
/// EKF). State per user: [x y vx vy]. Observations are matched to predicted
/// positions by minimum-cost assignment before the update.
class EkfTracker {
 public:
  EkfTracker(const geom::Field& field, std::size_t num_users,
             EkfConfig config = {});

  /// One predict-update cycle over the window ending Δt after the previous
  /// one; returns per-user position estimates.
  std::vector<geom::Vec2> step(const SparseObjective& objective, double dt,
                               geom::Rng& rng);

  std::vector<geom::Vec2> estimates() const;

 private:
  struct State {
    double x[4] = {0, 0, 0, 0};    // x, y, vx, vy
    double p[16] = {0};            // covariance, row-major 4x4
    bool initialized = false;
  };

  const geom::Field* field_;
  InstantLocalizer localizer_;
  EkfConfig config_;
  std::vector<State> states_;

  void predict_state(State& s, double dt) const;
  void update_state(State& s, geom::Vec2 obs) const;
};

}  // namespace fluxfp::core
