#pragma once

#include <array>
#include <optional>
#include <vector>

#include "core/nls.hpp"
#include "geom/sampling.hpp"
#include "numeric/arena.hpp"

namespace fluxfp::core {

/// A weighted position sample <P(i), w(i)> (§4.D).
struct Particle {
  geom::Vec2 position;
  double weight = 0.0;
};

/// Configuration of the Sequential Monte Carlo tracker (Algorithm 4.1).
///
/// Threading: candidate evaluation inside step() fans out over the process
/// thread pool — set it with numeric::set_thread_count() or the
/// FLUXFP_THREADS env var (0 = hardware concurrency, 1 = serial). All RNG
/// draws stay on the calling thread, so tracker output is bit-identical at
/// any thread count; the knob trades wall-clock only.
struct SmcConfig {
  std::size_t num_predictions = 1000;  ///< N samples drawn per user per round
  std::size_t num_keep = 10;  ///< M samples kept after filtering (<= N)
  double vmax = 5.0;                   ///< max speed (distance per unit time)
  int sweeps = 2;                      ///< conditional sweeps in filtering
  /// Asynchronous-updating test (§4.E): a user is "active" in a round only
  /// if removing its column from the joint fit worsens the residual by more
  /// than this fraction of the measured norm. This detects the paper's
  /// "best fit s/r -> 0" users and additionally phantom users that merely
  /// duplicate another user's position (whose marginal contribution is 0).
  double inactive_improvement_tol = 0.02;
  /// Absolute floor: when the measured flux norm is below this the whole
  /// round is considered empty.
  double empty_measurement_tol = 1e-9;
  /// Importance weights w_t = w_{t-1} * 1/||F-F'|| (Eq. 4.3). When false,
  /// kept samples get equal weights (ablation of §4.D).
  bool importance_sampling = true;
  /// §4.C's suggested refinement: once a user's heading can be estimated
  /// from its last two accepted updates, bias part of the prediction
  /// samples into a cone around that heading instead of the full disc.
  bool heading_aware = false;
  /// Fraction of predictions drawn from the heading cone (rest stay
  /// uniform in the disc, keeping the filter able to recover from turns).
  double heading_mix = 0.5;
  /// Half-angle of the heading cone, radians.
  double heading_half_angle = 0.7;
  /// Optional robust observation fit: each round, readings are IRLS-
  /// reweighted against the fit at the current estimates before the
  /// filtering sweeps, so byzantine sniffers can't steer the particles.
  /// No-op at RobustLoss::kNone.
  RobustFitConfig robust;
  /// Divergence detection + recovery: when a round's best residual stays
  /// above divergence_fraction * ||F'|| (or no user accepts an update on a
  /// non-empty window) for divergence_rounds consecutive non-empty rounds,
  /// the track is declared lost and every user's particle set is re-seeded
  /// from a coarse recovery_grid x recovery_grid scan of the field —
  /// instead of drifting forever on a dead track.
  bool divergence_recovery = false;
  double divergence_fraction = 0.5;
  int divergence_rounds = 3;
  std::size_t recovery_grid = 16;
};

/// Per-round output of the tracker.
struct SmcStepResult {
  std::vector<bool> updated;       ///< per user: did this round move its samples
  std::vector<double> stretches;   ///< fitted s_j/r at the best combination
  double residual = 0.0;           ///< ||F - F'|| at the best combination
  std::vector<geom::Vec2> best;    ///< best filtered position per user
  bool recovered = false;          ///< divergence recovery re-seeded this round
};

/// Serializable mutable state of one tracked user — the checkpoint currency
/// of the streaming runtime (FLUXFPC1, DESIGN.md §13). Everything step()
/// mutates per user is here; copying it out and back is bit-exact.
struct SmcUserState {
  std::vector<Particle> particles;
  double t_last = 0.0;
  geom::Vec2 prev_estimate;
  geom::Vec2 heading;
};

/// Complete mutable state of an SmcTracker. Configuration and the field are
/// deliberately absent: a restore target must be constructed with the same
/// inputs, and restore_state() only validates shapes.
struct SmcState {
  std::vector<SmcUserState> users;
  int bad_rounds = 0;
};

/// Sequential Monte Carlo estimation of mobile-user positions from a time
/// series of sparse flux observations (§4.B–E, Algorithm 4.1):
///
///  * prediction — N samples per user drawn uniformly from discs of radius
///    v_max * Δt_i around (weight-sampled) previous samples (Eq. 4.2);
///  * filtering — candidates ranked by the NLS objective with the other
///    users held at their current best (conditional sweeps stand in for
///    the paper's N^K combination enumeration); the top M survive;
///  * importance sampling — surviving samples weighted by the reciprocal
///    objective value, cumulated over rounds (Eq. 4.3);
///  * asynchronous updating — users whose best-fit s/r ≈ 0 are left
///    untouched and their Δt keeps growing until their next collection.
class SmcTracker {
 public:
  /// Initializes each user's sample set with `config.num_keep` uniform
  /// positions at weight 1/M (the "no knowledge" prior). `field` must
  /// outlive the tracker. Throws std::invalid_argument on a bad config or
  /// num_users outside (0, kMaxGramUsers].
  SmcTracker(const geom::Field& field, std::size_t num_users,
             SmcConfig config, geom::Rng& rng);

  /// Processes the observation window ending at `time` (must increase
  /// across calls). `objective` wraps this window's sniffed flux.
  SmcStepResult step(double time, const SparseObjective& objective,
                     geom::Rng& rng);

  /// As above, drawing all per-step scratch (prediction sets, candidate
  /// residuals, orderings) from `arena`, which is reset on entry — the
  /// streaming runtime threads one epoch arena through every step so the
  /// hot path stops allocating. Arena choice never affects results: the
  /// scratch holds the same values wherever it lives.
  SmcStepResult step(double time, const SparseObjective& objective,
                     geom::Rng& rng, numeric::Arena& arena);

  std::size_t num_users() const { return particles_.size(); }
  const SmcConfig& config() const { return config_; }

  /// Current weighted-mean position estimate for `user`.
  geom::Vec2 estimate(std::size_t user) const;
  /// Weighted 2x2 sample covariance of the user's particle set, row-major
  /// [xx, xy, yx, yy]. Shrinks as the filter converges.
  std::array<double, 4> covariance(std::size_t user) const;
  /// Scalar uncertainty: RMS particle spread around the estimate
  /// (sqrt of the covariance trace).
  double spread(std::size_t user) const;
  /// Current sample set for `user` (weights sum to 1). Materialized from
  /// the tracker's structure-of-arrays storage; bind the result to a
  /// (const) reference or iterate it directly.
  std::vector<Particle> particles(std::size_t user) const;
  /// Time of the user's last accepted update (0 before the first).
  double last_update_time(std::size_t user) const { return t_last_[user]; }

  /// Unit heading estimated from the last two accepted updates; zero
  /// vector while unknown. Only maintained when config().heading_aware.
  geom::Vec2 heading(std::size_t user) const { return heading_[user]; }

  /// Consecutive non-empty rounds the fit has looked divergent (resets to
  /// 0 on a good round or after a recovery re-seed).
  int consecutive_bad_rounds() const { return bad_rounds_; }

  /// Snapshot of every mutable filter variable (particles, weights, update
  /// times, headings, divergence counter). A tracker constructed with the
  /// same inputs and restored from the snapshot continues bit-identically
  /// to one that never stopped — the checkpoint half of the streaming
  /// runtime's durability contract.
  SmcState save_state() const;
  /// Restores a snapshot taken from a tracker constructed with the same
  /// inputs. Throws std::invalid_argument on a shape mismatch (wrong user
  /// count, empty particle sets, or sets larger than num_predictions).
  void restore_state(const SmcState& state);

 private:
  /// Structure-of-arrays particle storage: positions and weights of one
  /// user's sample set in three parallel arrays (the layout half of the
  /// SIMD + SoA overhaul; estimate/covariance/prediction sweep these
  /// contiguously). Particle i is {x[i], y[i]} at weight w[i].
  struct ParticleSet {
    std::vector<double> x;
    std::vector<double> y;
    std::vector<double> w;
    std::size_t size() const { return x.size(); }
  };

  const geom::Field* field_;
  SmcConfig config_;
  std::vector<ParticleSet> particles_;
  std::vector<double> t_last_;
  std::vector<geom::Vec2> prev_estimate_;  // estimate at the last update
  std::vector<geom::Vec2> heading_;        // unit heading, zero if unknown
  int bad_rounds_ = 0;

  /// Default scratch arena for the 3-argument step() overload.
  numeric::Arena arena_;
  /// Round-persistent scratch reused across steps (capacity high-water):
  /// the robust-reweighting buffers and the per-user representative /
  /// candidate columns.
  std::optional<SparseObjective> robust_storage_;
  std::vector<double> robust_r_;
  std::vector<double> robust_w_;
  std::vector<std::vector<double>> rep_cols_;
  std::vector<ColumnBlock> cand_cols_;

  struct Prediction {
    geom::Vec2 position;
    std::size_t origin;  // index of the particle it was drawn from
  };
  /// Fills `out` (num_predictions entries) with motion-model samples;
  /// `weights_scratch` must hold particles_[user].size() entries.
  void predict(std::size_t user, double radius, geom::Rng& rng,
               std::span<double> weights_scratch,
               std::span<Prediction> out) const;

  /// Coarse-grid re-seed of every user's particle set against `objective`
  /// (divergence recovery). Updates reps/rep_cols_ in place. Grid scoring
  /// runs through the parallel batch evaluator; no RNG involved.
  void reseed_from_grid(double time, const SparseObjective& objective,
                        std::span<geom::Vec2> reps, numeric::Arena& arena);
};

}  // namespace fluxfp::core
