#include "core/identity.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/hungarian.hpp"
#include "numeric/matrix.hpp"

namespace fluxfp::core {

IdentityMaintainer::IdentityMaintainer(std::size_t num_tracks,
                                       IdentityConfig config)
    : config_(config),
      positions_(num_tracks),
      fingerprints_(num_tracks, 0.0),
      initialized_(num_tracks, false) {
  if (num_tracks == 0 || config_.stretch_weight < 0.0 ||
      config_.stretch_smoothing < 0.0 || config_.stretch_smoothing > 1.0) {
    throw std::invalid_argument("IdentityMaintainer: bad config");
  }
}

std::vector<std::size_t> IdentityMaintainer::assign(
    const std::vector<Detection>& detections) {
  const std::size_t k = num_tracks();
  if (detections.size() != k) {
    throw std::invalid_argument("IdentityMaintainer: detection count");
  }

  // First round: adopt detections in order.
  bool any_initialized = false;
  for (bool b : initialized_) {
    any_initialized = any_initialized || b;
  }
  std::vector<std::size_t> order(k);
  if (!any_initialized) {
    for (std::size_t t = 0; t < k; ++t) {
      order[t] = t;
      positions_[t] = detections[t].position;
      fingerprints_[t] = detections[t].stretch;
      initialized_[t] = true;
    }
    return order;
  }

  // Min-cost assignment on position distance + fingerprint disagreement.
  numeric::Matrix cost(k, k);
  for (std::size_t t = 0; t < k; ++t) {
    for (std::size_t d = 0; d < k; ++d) {
      double c = geom::distance(positions_[t], detections[d].position);
      if (detections[d].updated && detections[d].stretch > 0.0) {
        c += config_.stretch_weight *
             std::abs(fingerprints_[t] - detections[d].stretch);
      }
      cost(t, d) = c;
    }
  }
  order = numeric::hungarian_assign(cost);

  for (std::size_t t = 0; t < k; ++t) {
    const Detection& det = detections[order[t]];
    positions_[t] = det.position;
    if (det.updated && det.stretch > 0.0) {
      fingerprints_[t] =
          (1.0 - config_.stretch_smoothing) * fingerprints_[t] +
          config_.stretch_smoothing * det.stretch;
    }
  }
  return order;
}

geom::Vec2 IdentityMaintainer::position(std::size_t track) const {
  return positions_.at(track);
}

double IdentityMaintainer::fingerprint(std::size_t track) const {
  return fingerprints_.at(track);
}

}  // namespace fluxfp::core
